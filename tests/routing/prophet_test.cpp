#include "routing/prophet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace photodtn {
namespace {

constexpr ProphetConfig kCfg{};  // Table I: 0.75 / 0.25 / 0.98

TEST(Prophet, UnknownNodesHaveZeroProbability) {
  const ProphetTable t(kCfg, 1);
  EXPECT_EQ(t.delivery_prob(2), 0.0);
  EXPECT_EQ(t.delivery_prob(1), 1.0);  // self
}

TEST(Prophet, EncounterSetsPInit) {
  ProphetTable a(kCfg, 1), b(kCfg, 2);
  ProphetTable::encounter(a, b, 0.0);
  EXPECT_DOUBLE_EQ(a.delivery_prob(2), 0.75);
  EXPECT_DOUBLE_EQ(b.delivery_prob(1), 0.75);
}

TEST(Prophet, RepeatedEncountersApproachOne) {
  ProphetTable a(kCfg, 1), b(kCfg, 2);
  double prev = 0.0;
  for (int i = 0; i < 6; ++i) {
    ProphetTable::encounter(a, b, i * 1.0);
    const double p = a.delivery_prob(2);
    EXPECT_GT(p, prev);
    prev = p;
  }
  // P after two encounters: 0.75 + 0.25*0.75 = 0.9375 (aging over 1 s with a
  // 600 s unit is negligible but nonzero).
  EXPECT_LT(prev, 1.0);
  EXPECT_GT(prev, 0.99);
}

TEST(Prophet, AgingDecaysExponentially) {
  ProphetTable a(kCfg, 1), b(kCfg, 2);
  ProphetTable::encounter(a, b, 0.0);
  a.age(600.0);  // one time unit
  EXPECT_NEAR(a.delivery_prob(2), 0.75 * 0.98, 1e-12);
  a.age(600.0 * 11.0);  // ten more units
  EXPECT_NEAR(a.delivery_prob(2), 0.75 * std::pow(0.98, 11.0), 1e-12);
}

TEST(Prophet, AgingIsIdempotentAtSameTime) {
  ProphetTable a(kCfg, 1), b(kCfg, 2);
  ProphetTable::encounter(a, b, 0.0);
  a.age(1200.0);
  const double p = a.delivery_prob(2);
  a.age(1200.0);
  EXPECT_DOUBLE_EQ(a.delivery_prob(2), p);
}

TEST(Prophet, AgingRejectsTimeTravel) {
  ProphetTable a(kCfg, 1);
  a.age(100.0);
  EXPECT_THROW(a.age(50.0), std::logic_error);
}

TEST(Prophet, TransitivityPropagates) {
  // b has met the command center (0); when a meets b, a gains an indirect
  // path: P(a,0) = P(a,b) * P(b,0) * beta.
  ProphetTable a(kCfg, 1), b(kCfg, 2), cc(kCfg, 0);
  ProphetTable::encounter(b, cc, 0.0);
  const double p_b0 = b.delivery_prob(0);
  ProphetTable::encounter(a, b, 0.0);
  EXPECT_NEAR(a.delivery_prob(0), 0.75 * p_b0 * 0.25, 1e-12);
}

TEST(Prophet, TransitivityUsesPreEncounterSnapshot) {
  // The transitive rule must not feed on the just-updated direct entries:
  // a's new knowledge of b must come from b's pre-encounter table.
  ProphetTable a(kCfg, 1), b(kCfg, 2);
  ProphetTable::encounter(a, b, 0.0);
  // b knew nothing about node 3, so a must not either.
  EXPECT_EQ(a.delivery_prob(3), 0.0);
}

TEST(Prophet, EncounterRejectsSelf) {
  ProphetTable a(kCfg, 1), also_a(kCfg, 1);
  EXPECT_THROW(ProphetTable::encounter(a, also_a, 0.0), std::logic_error);
}

TEST(Prophet, ProbabilitiesStayInUnitInterval) {
  ProphetTable a(kCfg, 1), b(kCfg, 2), c(kCfg, 3);
  for (int i = 0; i < 50; ++i) {
    ProphetTable::encounter(a, b, i * 10.0);
    ProphetTable::encounter(b, c, i * 10.0 + 5.0);
    for (const auto& [node, p] : a.entries()) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(ProphetAudit, HoldsUnderLongEncounterChains) {
  // Property: after arbitrarily many encounter/age cycles, every delivery
  // predictability is a finite probability, the table never acquires a self
  // entry, and aging stays monotone — the invariants audit() asserts.
  std::vector<ProphetTable> nodes;
  for (NodeId id = 0; id < 6; ++id) nodes.emplace_back(kCfg, id);
  double now = 0.0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t i = static_cast<std::size_t>(round) % nodes.size();
    const std::size_t j = (i + 1 + static_cast<std::size_t>(round / 7) % 4) % nodes.size();
    if (i == j) continue;
    now += 37.0;
    ProphetTable::encounter(nodes[i], nodes[j], now);
    ASSERT_NO_THROW(nodes[i].audit());
    ASSERT_NO_THROW(nodes[j].audit());
  }
  for (auto& n : nodes) {
    n.age(now + 1e6);  // deep aging decays toward 0 but must stay in range
    ASSERT_NO_THROW(n.audit());
  }
}

TEST(ProphetAudit, RejectsNonDecayingGamma) {
  ProphetConfig bad = kCfg;
  bad.gamma = 1.5;  // gamma > 1 would make "aging" amplify predictabilities
  const ProphetTable t(bad, 1);
  EXPECT_THROW(t.audit(), std::logic_error);
}

TEST(ProphetAudit, ExtremeConfigStaysClamped) {
  // p_init = 1 drives entries to exactly 1.0; repeated updates must not
  // round above it.
  ProphetConfig cfg = kCfg;
  cfg.p_init = 1.0;
  ProphetTable a(cfg, 1), b(cfg, 2);
  for (int i = 0; i < 20; ++i) {
    ProphetTable::encounter(a, b, i * 1.0);
    ASSERT_NO_THROW(a.audit());
  }
  EXPECT_DOUBLE_EQ(a.delivery_prob(2), 1.0);
}

}  // namespace
}  // namespace photodtn
