#include "routing/spray_counter.h"

#include <gtest/gtest.h>

namespace photodtn {
namespace {

TEST(SprayCounter, CreateGivesInitialCopies) {
  SprayCounter c(4);
  c.on_create(10);
  EXPECT_EQ(c.copies(10), 4u);
  EXPECT_TRUE(c.can_spray(10));
}

TEST(SprayCounter, UnknownPhotoHasNoCopies) {
  const SprayCounter c(4);
  EXPECT_EQ(c.copies(99), 0u);
  EXPECT_FALSE(c.can_spray(99));
}

TEST(SprayCounter, BinarySplit) {
  SprayCounter c(4);
  c.on_create(1);
  EXPECT_EQ(c.spray(1), 2u);  // gives floor(4/2)
  EXPECT_EQ(c.copies(1), 2u);
  EXPECT_EQ(c.spray(1), 1u);  // gives floor(2/2)
  EXPECT_EQ(c.copies(1), 1u);
  EXPECT_FALSE(c.can_spray(1));  // wait phase
}

TEST(SprayCounter, OddCopiesKeepCeil) {
  SprayCounter c(5);
  c.on_create(1);
  EXPECT_EQ(c.spray(1), 2u);
  EXPECT_EQ(c.copies(1), 3u);
}

TEST(SprayCounter, SprayInWaitPhaseIsAnError) {
  SprayCounter c(1);
  c.on_create(1);
  EXPECT_THROW(c.spray(1), std::logic_error);
}

TEST(SprayCounter, ReceiveAccumulates) {
  SprayCounter c(4);
  c.on_receive(7, 2);
  EXPECT_EQ(c.copies(7), 2u);
  c.on_receive(7, 1);
  EXPECT_EQ(c.copies(7), 3u);
}

TEST(SprayCounter, DropForgets) {
  SprayCounter c(4);
  c.on_create(3);
  c.on_drop(3);
  EXPECT_EQ(c.copies(3), 0u);
}

TEST(SprayCounter, TotalCopiesConservedAcrossSplits) {
  // Spraying moves copies, never creates them: source + given == before.
  SprayCounter src(8), dst(8);
  src.on_create(1);
  std::uint32_t total = src.copies(1);
  while (src.can_spray(1)) {
    const std::uint32_t given = src.spray(1);
    dst.on_receive(1, given);
    EXPECT_EQ(src.copies(1) + dst.copies(1), total);
  }
  EXPECT_EQ(src.copies(1), 1u);
}

}  // namespace
}  // namespace photodtn
