#include "routing/rate_estimator.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace photodtn {
namespace {

TEST(RateEstimator, ZeroBeforeAnyObservation) {
  const RateEstimator e;
  EXPECT_EQ(e.rate_with(1, 100.0), 0.0);
  EXPECT_EQ(e.aggregate_rate(100.0), 0.0);
}

TEST(RateEstimator, PoissonMle) {
  RateEstimator e(0.0);
  for (int i = 1; i <= 10; ++i) e.record_contact(1, i * 100.0);
  // 10 contacts in 1000 s -> 0.01 contacts/s.
  EXPECT_NEAR(e.rate_with(1, 1000.0), 0.01, 1e-12);
}

TEST(RateEstimator, AggregateIsSumOfPairRates) {
  RateEstimator e(0.0);
  e.record_contact(1, 10.0);
  e.record_contact(2, 20.0);
  e.record_contact(1, 30.0);
  const double now = 100.0;
  EXPECT_NEAR(e.aggregate_rate(now), e.rate_with(1, now) + e.rate_with(2, now), 1e-12);
}

TEST(RateEstimator, RespectsStartTime) {
  RateEstimator e(1000.0);
  e.record_contact(1, 1500.0);
  // One contact in 500 s of observation.
  EXPECT_NEAR(e.rate_with(1, 1500.0), 1.0 / 500.0, 1e-12);
}

TEST(RateEstimator, ConvergesToTrueRate) {
  Rng rng(42);
  RateEstimator e(0.0);
  const double lambda = 0.002;  // one contact every 500 s
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.exponential(lambda);
    e.record_contact(1, t);
  }
  EXPECT_NEAR(e.rate_with(1, t), lambda, lambda * 0.1);
}

TEST(RateEstimator, FloorsObservationTime) {
  RateEstimator e(0.0);
  e.record_contact(1, 0.0);
  // now == start: denominator floored at 1 s, no division blowup.
  EXPECT_LE(e.aggregate_rate(0.0), 1.0);
}

}  // namespace
}  // namespace photodtn
