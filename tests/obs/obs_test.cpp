// Tests for the obs layer: metrics registry semantics, snapshot merge
// determinism, the deterministic trace recorder, the Chrome trace sink, and
// the end-to-end guarantees the rest of the repo relies on — obs on/off
// never changes simulation results, and metrics/traces are byte-identical
// across thread-pool sizes.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace_recorder.h"
#include "sim/experiment.h"
#include "sim/result_io.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace photodtn {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceEvent;
using obs::TraceRecorder;

std::string snapshot_json(const MetricsSnapshot& s) {
  JsonWriter w;
  s.write_json(w);
  return w.str();
}

TEST(MetricsRegistry, CountersGaugesAndHandleReuse) {
  MetricsRegistry reg;
  const auto c = reg.counter("sim.contacts");
  ASSERT_TRUE(c.valid());
  reg.add(c);
  reg.add(c, 41);
  EXPECT_EQ(reg.value(c), 42u);
  // Find-or-create: same name, same handle, same value.
  const auto c2 = reg.counter("sim.contacts");
  EXPECT_EQ(c2.idx, c.idx);
  EXPECT_EQ(reg.value(c2), 42u);

  const auto g = reg.gauge("pool.load");
  reg.set(g, 0.75);
  EXPECT_DOUBLE_EQ(reg.value(g), 0.75);

  EXPECT_EQ(reg.counter_count(), 1u);
  EXPECT_EQ(reg.gauge_count(), 1u);
  reg.audit();
}

TEST(MetricsRegistry, HistogramBucketEdges) {
  MetricsRegistry reg;
  const auto h = reg.histogram("x", {10, 100});
  // counts[i] counts v <= bounds[i]; the last slot is the overflow bucket.
  for (const std::uint64_t v : {0ull, 10ull, 11ull, 100ull, 101ull}) reg.record(h, v);
  const MetricsSnapshot s = reg.snapshot();
  const auto& hs = s.histograms.at("x");
  ASSERT_EQ(hs.counts.size(), 3u);
  EXPECT_EQ(hs.counts[0], 2u);  // 0, 10
  EXPECT_EQ(hs.counts[1], 2u);  // 11, 100
  EXPECT_EQ(hs.counts[2], 1u);  // 101 overflows
  EXPECT_EQ(hs.count, 5u);
  EXPECT_EQ(hs.sum, 222u);
  EXPECT_EQ(hs.min, 0u);
  EXPECT_EQ(hs.max, 101u);
  reg.audit();
}

TEST(MetricsRegistry, ExpBoundsStrictlyIncreasing) {
  const auto b = MetricsRegistry::exp_bounds(1, 2.0, 12);
  ASSERT_EQ(b.size(), 12u);
  EXPECT_EQ(b.front(), 1u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  // A factor so close to 1 that rounding collides still yields strictly
  // increasing bounds (equal neighbors are bumped).
  const auto tight = MetricsRegistry::exp_bounds(5, 1.01, 8);
  for (std::size_t i = 1; i < tight.size(); ++i) EXPECT_LT(tight[i - 1], tight[i]);
}

TEST(MetricsRegistry, HistogramBoundsMismatchThrows) {
  MetricsRegistry a, b;
  a.histogram("x", {1, 2});
  b.histogram("x", {1, 3});
  MetricsSnapshot sa = a.snapshot(), sb = b.snapshot();
  EXPECT_THROW(sa.merge(sb), std::logic_error);
}

TEST(MetricsSnapshot, MergeIsOrderInvariant) {
  MetricsRegistry ra, rb;
  for (MetricsRegistry* r : {&ra, &rb}) {
    r->counter("c");
    r->gauge("g");
    r->histogram("h", {2, 8, 32});
  }
  ra.add(ra.counter("c"), 7);
  ra.set(ra.gauge("g"), 1.5);
  ra.record(ra.histogram("h", {2, 8, 32}), 3);
  rb.add(rb.counter("c"), 5);
  rb.add(rb.counter("only_b"), 1);
  rb.set(rb.gauge("g"), 2.5);
  rb.record(rb.histogram("h", {2, 8, 32}), 100);

  MetricsSnapshot ab = ra.snapshot();
  ab.merge(rb.snapshot());
  MetricsSnapshot ba = rb.snapshot();
  ba.merge(ra.snapshot());
  // Counters and histograms are integer-valued, gauges sum: both merge
  // orders must serialize identically, byte for byte.
  EXPECT_EQ(snapshot_json(ab), snapshot_json(ba));
  EXPECT_EQ(ab.runs, 2u);
  EXPECT_EQ(ab.counters.at("c"), 12u);
  EXPECT_EQ(ab.counters.at("only_b"), 1u);
  EXPECT_EQ(ab.histograms.at("h").count, 2u);

  // Merging into a fresh (empty) snapshot copies the other side.
  MetricsSnapshot empty;
  EXPECT_TRUE(empty.empty());
  empty.merge(ab);
  EXPECT_EQ(snapshot_json(empty), snapshot_json(ab));
}

TEST(TraceRecorder, MergeSortsByTimestampThenSeq) {
  TraceRecorder rec;
  rec.instant("late", "t", 5.0, 1);
  rec.complete("early", "t", 1.0, 0.5, 2, {{"bytes", 128.0}});
  rec.instant("tie_a", "t", 3.0, 3);
  rec.instant("tie_b", "t", 3.0, 4);
  const std::vector<TraceEvent> ev = rec.merged();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_STREQ(ev[0].name, "early");
  EXPECT_STREQ(ev[1].name, "tie_a");  // same ts: emission (seq) order
  EXPECT_STREQ(ev[2].name, "tie_b");
  EXPECT_STREQ(ev[3].name, "late");
  EXPECT_EQ(ev[0].phase, TraceEvent::Phase::kComplete);
  EXPECT_EQ(ev[0].nargs, 1u);
  EXPECT_DOUBLE_EQ(ev[0].args[0].second, 128.0);
  rec.audit();
}

TEST(ChromeTrace, DocumentShapeAndDeterminism) {
  TraceRecorder rec;
  rec.instant("capture", "photo", 10.0, 3, {{"photo", 7.0}});
  rec.complete("contact", "contact", 20.0, 4.0, 1, {{"peer", 2.0}});
  rec.counter("delivered", 30.0, 5.0);
  MetricsRegistry reg;
  reg.add(reg.counter("sim.contacts"), 3);
  const MetricsSnapshot snap = reg.snapshot();

  const std::string doc = obs::chrome_trace_json(rec.merged(), &snap);
  for (const char* needle :
       {"\"displayTimeUnit\":\"ms\"", "\"traceEvents\":", "\"ph\":\"M\"",
        "\"ph\":\"i\"", "\"ph\":\"X\"", "\"ph\":\"C\"", "\"dur\":",
        "\"photodtnMetrics\":", "\"sim.contacts\":3"}) {
    EXPECT_NE(doc.find(needle), std::string::npos) << needle;
  }
  // No wallPerf unless explicitly passed.
  EXPECT_EQ(doc.find("wallPerf"), std::string::npos);
  // Re-rendering the same inputs is byte-identical.
  EXPECT_EQ(doc, obs::chrome_trace_json(rec.merged(), &snap));

  obs::WallPerfSection wall;
  wall.lanes.push_back({"worker-0", 4, 1000});
  const std::string with_wall = obs::chrome_trace_json(rec.merged(), &snap, &wall);
  EXPECT_NE(with_wall.find("\"wallPerf\":"), std::string::npos);
  EXPECT_NE(with_wall.find("\"worker-0\""), std::string::npos);
}

TEST(Obs, ConfigGatesRecording) {
  obs::Obs off;
  EXPECT_FALSE(off.metrics_on());
  EXPECT_FALSE(off.trace_on());
  obs::Obs on(obs::ObsConfig{true, true});
  EXPECT_TRUE(on.metrics_on());
  EXPECT_TRUE(on.trace_on());
  on.registry().add(on.registry().counter("c"));
  on.trace().instant("e", "t", 1.0, 0);
  on.audit();
}

/// Tiny fixed-seed experiment spec shared by the integration tests below.
ExperimentSpec small_spec(bool with_obs) {
  ExperimentSpec spec;
  spec.scenario = ScenarioConfig::mit(1);
  spec.scenario.num_pois = 20;
  spec.scenario.photo_rate_per_hour = 40.0;
  spec.scenario.trace.num_participants = 10;
  spec.scenario.trace.duration_s = 12.0 * 3600.0;
  spec.scenario.trace.base_pair_rate_per_hour = 0.4;
  spec.scenario.sim.sample_interval_s = 3.0 * 3600.0;
  spec.scenario.sim.faults.contact_interrupt_prob = 0.2;
  spec.scenario.sim.faults.gossip_loss_prob = 0.1;
  spec.scheme = "OurScheme";
  spec.runs = 2;
  spec.scenario.sim.obs.metrics = with_obs;
  spec.scenario.sim.obs.trace = with_obs;
  return spec;
}

TEST(ObsIntegration, ObsOnDoesNotPerturbSimulation) {
  const SimResult off = run_single(small_spec(false), 7);
  const SimResult on = run_single(small_spec(true), 7);
  // Golden equivalence: every scheme-visible outcome identical.
  EXPECT_EQ(off.delivered_photos, on.delivered_photos);
  EXPECT_EQ(off.final_point_norm, on.final_point_norm);
  EXPECT_EQ(off.final_aspect_norm, on.final_aspect_norm);
  EXPECT_EQ(off.counters.contacts, on.counters.contacts);
  EXPECT_EQ(off.counters.transfers, on.counters.transfers);
  EXPECT_EQ(off.counters.bytes_transferred, on.counters.bytes_transferred);
  EXPECT_EQ(off.counters.drops, on.counters.drops);
  EXPECT_EQ(off.counters.interrupted_contacts, on.counters.interrupted_contacts);
  EXPECT_EQ(off.counters.gossip_losses, on.counters.gossip_losses);
  ASSERT_EQ(off.samples.size(), on.samples.size());
  for (std::size_t i = 0; i < off.samples.size(); ++i) {
    EXPECT_EQ(off.samples[i].point_coverage, on.samples[i].point_coverage);
    EXPECT_EQ(off.samples[i].delivered_photos, on.samples[i].delivered_photos);
  }
  // Off carries no payloads; on carries both.
  EXPECT_TRUE(off.obs.metrics.empty());
  EXPECT_TRUE(off.obs.trace_events.empty());
  EXPECT_FALSE(on.obs.metrics.empty());
  EXPECT_FALSE(on.obs.trace_events.empty());
  // The registry mirrors the legacy counters exactly.
  EXPECT_EQ(on.obs.metrics.counters.at("sim.contacts"), on.counters.contacts);
  EXPECT_EQ(on.obs.metrics.counters.at("sim.transfers"), on.counters.transfers);
  // And the scheme hooks recorded real work.
  EXPECT_GT(on.obs.metrics.counters.at("selection.gain_evals"), 0u);
  EXPECT_GT(on.obs.metrics.counters.at("scheme.engine_syncs"), 0u);
  EXPECT_GT(on.obs.metrics.histograms.at("selection.pool_size").count, 0u);
}

TEST(ObsIntegration, MetricsAndTraceIdenticalAcrossPoolSizes) {
  const ExperimentSpec spec = small_spec(true);
  ThreadPool pool1(1), pool4(4);
  const ExperimentResult r1 = run_experiment(spec, &pool1);
  const ExperimentResult r4 = run_experiment(spec, &pool4);
  // Histogram/counter merges are integer-valued and folded in seed order:
  // the serialized snapshots must match byte for byte, as must the traces.
  const std::vector<ExperimentResult> v1{r1}, v4{r4};
  EXPECT_EQ(metrics_to_json(v1), metrics_to_json(v4));
  EXPECT_EQ(obs::chrome_trace_json(r1.trace_events, &r1.metrics),
            obs::chrome_trace_json(r4.trace_events, &r4.metrics));
  EXPECT_FALSE(r1.trace_events.empty());
}

}  // namespace
}  // namespace photodtn
