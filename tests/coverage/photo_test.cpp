#include "coverage/photo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/angle.h"
#include "test_util.h"

namespace photodtn {
namespace {

TEST(Photo, SectorReflectsMetadata) {
  const PhotoMeta p = test::make_photo(10.0, 20.0, 90.0, 150.0, 45.0);
  const Sector s = p.sector();
  EXPECT_EQ(s.apex(), Vec2(10.0, 20.0));
  EXPECT_DOUBLE_EQ(s.range(), 150.0);
  EXPECT_NEAR(s.fov(), deg_to_rad(45.0), 1e-12);
  EXPECT_NEAR(s.orientation(), deg_to_rad(90.0), 1e-12);
}

TEST(Photo, CoverageRangeFromFovMatchesCotFormula) {
  // r = c * cot(fov/2). For fov = 60 deg, cot(30 deg) = sqrt(3).
  EXPECT_NEAR(coverage_range_from_fov(deg_to_rad(60.0), 50.0), 50.0 * std::sqrt(3.0),
              1e-9);
  // Narrower fov -> longer range (zoom lens sees farther).
  EXPECT_GT(coverage_range_from_fov(deg_to_rad(30.0), 50.0),
            coverage_range_from_fov(deg_to_rad(60.0), 50.0));
}

TEST(Photo, TableIRangeBand) {
  // Table I: r in [50, 100] * cot(fov/2); for fov in [30, 60] degrees this
  // spans roughly [87 m, 373 m].
  const double r_min = coverage_range_from_fov(deg_to_rad(60.0), 50.0);
  const double r_max = coverage_range_from_fov(deg_to_rad(30.0), 100.0);
  EXPECT_NEAR(r_min, 86.6, 0.1);
  EXPECT_NEAR(r_max, 373.2, 0.1);
}

TEST(Photo, CommandCenterIdIsZero) {
  EXPECT_EQ(kCommandCenter, 0);
  const PhotoMeta p = test::make_photo(0, 0, 0);
  EXPECT_NE(p.taken_by, kCommandCenter);
}

}  // namespace
}  // namespace photodtn
