#include "coverage/coverage_model.h"

#include <gtest/gtest.h>

#include "geometry/angle.h"
#include "test_util.h"

namespace photodtn {
namespace {

using test::make_photo;
using test::make_poi;
using test::photo_viewing;

TEST(CoverageModel, FootprintEmptyWhenNoPoiInSector) {
  const CoverageModel model({make_poi(1000.0, 1000.0)}, deg_to_rad(30.0));
  const PhotoMeta p = make_photo(0.0, 0.0, 0.0, 100.0);
  EXPECT_FALSE(model.footprint(p).relevant());
}

TEST(CoverageModel, FootprintCoversPoiInSector) {
  const CoverageModel model({make_poi(50.0, 0.0)}, deg_to_rad(30.0));
  const PhotoMeta p = make_photo(0.0, 0.0, 0.0, 100.0, 60.0);  // looking east
  const PhotoFootprint fp = model.footprint(p);
  ASSERT_TRUE(fp.relevant());
  ASSERT_EQ(fp.arcs.size(), 1u);
  EXPECT_EQ(fp.arcs[0].poi_index, 0u);
}

TEST(CoverageModel, ArcCenteredOnPoiToCameraDirection) {
  // Camera is 100 m EAST of the PoI looking west at it; the viewing vector
  // x->l points east (heading 0), so the covered aspect arc is centered at 0
  // with half-width theta.
  const PointOfInterest poi = make_poi(0.0, 0.0);
  const CoverageModel model({poi}, deg_to_rad(30.0));
  const PhotoMeta p = photo_viewing(poi, /*from_direction_deg=*/0.0);
  const PhotoFootprint fp = model.footprint(p);
  ASSERT_EQ(fp.arcs.size(), 1u);
  const Arc arc = fp.arcs[0].arc;
  EXPECT_NEAR(arc.length, deg_to_rad(60.0), 1e-9);  // 2 * theta
  // Arc spans [-30, +30] degrees around heading 0.
  const double start = normalize_angle(arc.start);
  EXPECT_NEAR(start, kTwoPi - deg_to_rad(30.0), 1e-9);
}

TEST(CoverageModel, MultiplePoisInOneSector) {
  const CoverageModel model({make_poi(60.0, 5.0, 0), make_poi(80.0, -5.0, 1),
                             make_poi(5000.0, 0.0, 2)},
                            deg_to_rad(30.0));
  const PhotoMeta p = make_photo(0.0, 0.0, 0.0, 150.0, 60.0);
  const PhotoFootprint fp = model.footprint(p);
  ASSERT_EQ(fp.arcs.size(), 2u);
  EXPECT_EQ(fp.arcs[0].poi_index, 0u);
  EXPECT_EQ(fp.arcs[1].poi_index, 1u);
}

TEST(CoverageModel, CoversAgreesWithFootprint) {
  const PointOfInterest poi = make_poi(70.0, 10.0);
  const CoverageModel model({poi}, deg_to_rad(30.0));
  const PhotoMeta in = make_photo(0.0, 0.0, 10.0, 150.0, 60.0);
  const PhotoMeta out = make_photo(0.0, 0.0, 180.0, 150.0, 60.0);
  EXPECT_TRUE(model.covers(in, poi));
  EXPECT_TRUE(model.footprint(in).relevant());
  EXPECT_FALSE(model.covers(out, poi));
  EXPECT_FALSE(model.footprint(out).relevant());
}

TEST(CoverageModel, CachedFootprintIsStableAndIdentical) {
  const CoverageModel model({make_poi(50.0, 0.0)}, deg_to_rad(30.0));
  const PhotoMeta p = make_photo(0.0, 0.0, 0.0, 100.0, 60.0, /*id=*/77);
  const PhotoFootprint& a = model.footprint_cached(p);
  const PhotoFootprint direct = model.footprint(p);
  EXPECT_EQ(a.arcs.size(), direct.arcs.size());
  // Pointer stability across further insertions (unordered_map guarantees).
  const PhotoFootprint* addr = &a;
  for (PhotoId id = 100; id < 300; ++id) {
    PhotoMeta q = p;
    q.id = id;
    model.footprint_cached(q);
  }
  EXPECT_EQ(addr, &model.footprint_cached(p));
}

TEST(CoverageModel, EffectiveAngleValidation) {
  EXPECT_THROW(CoverageModel({make_poi(0, 0)}, 0.0), std::logic_error);
  EXPECT_THROW(CoverageModel({make_poi(0, 0)}, kTwoPi + 1.0), std::logic_error);
}

class ThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThetaSweep, ArcWidthIsTwiceTheta) {
  const double theta_deg = GetParam();
  const PointOfInterest poi = make_poi(0.0, 0.0);
  const CoverageModel model({poi}, deg_to_rad(theta_deg));
  const PhotoFootprint fp = model.footprint(photo_viewing(poi, 45.0));
  ASSERT_EQ(fp.arcs.size(), 1u);
  EXPECT_NEAR(fp.arcs[0].arc.length, 2.0 * deg_to_rad(theta_deg), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ThetaSweep, ::testing::Values(10.0, 20.0, 30.0, 40.0, 60.0, 90.0));

}  // namespace
}  // namespace photodtn
