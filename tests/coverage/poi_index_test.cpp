#include "coverage/poi_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "coverage/coverage_model.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"

namespace photodtn {
namespace {

TEST(PoiIndex, EmptyListYieldsNothing) {
  const PoiIndex idx(PoiList{});
  std::vector<std::size_t> out{42};
  idx.query({0.0, 0.0}, 100.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(PoiIndex, FindsPointsInsideRadius) {
  PoiList pois{test::make_poi(0.0, 0.0, 0), test::make_poi(100.0, 0.0, 1),
               test::make_poi(0.0, 300.0, 2)};
  const PoiIndex idx(pois, 50.0);
  std::vector<std::size_t> out;
  idx.query({10.0, 0.0}, 150.0, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 1}));
}

TEST(PoiIndex, NeverMissesAgainstBruteForce) {
  Rng rng(77);
  const PoiList pois = generate_uniform_pois(400, 6300.0, rng);
  const PoiIndex idx(pois, 250.0);
  std::vector<std::size_t> out;
  for (int trial = 0; trial < 300; ++trial) {
    const Vec2 c{rng.uniform(-200.0, 6500.0), rng.uniform(-200.0, 6500.0)};
    const double r = rng.uniform(10.0, 600.0);
    idx.query(c, r, out);
    const std::set<std::size_t> got(out.begin(), out.end());
    for (std::size_t i = 0; i < pois.size(); ++i) {
      const bool inside = pois[i].location.distance_to(c) <= r;
      if (inside) {
        EXPECT_TRUE(got.contains(i)) << "missed poi " << i;
      }
      if (got.contains(i)) {
        EXPECT_LE(pois[i].location.distance_to(c), r + 1e-9) << "false hit " << i;
      }
    }
  }
}

TEST(PoiIndex, ModelFootprintsIdenticalToBruteForceScan) {
  // The indexed footprint path must produce byte-identical footprints to a
  // full scan (same PoIs, same order, same arcs).
  Rng rng(88);
  const PoiList pois = generate_uniform_pois(300, 6300.0, rng);
  const CoverageModel model(pois, deg_to_rad(30.0));
  ScenarioConfig cfg = ScenarioConfig::mit(1);
  PhotoGenerator gen(cfg, pois);
  Rng prng(89);
  for (int i = 0; i < 300; ++i) {
    const PhotoMeta photo = gen.generate_one(0.0, 1, prng).photo;
    const PhotoFootprint fp = model.footprint(photo);
    // Brute force reference.
    std::vector<PoiArc> expected;
    const Sector sector = photo.sector();
    for (std::size_t p = 0; p < pois.size(); ++p) {
      if (!sector.contains(pois[p].location)) continue;
      expected.push_back(
          PoiArc{p, Arc::centered((photo.location - pois[p].location).heading(),
                                  deg_to_rad(30.0))});
    }
    ASSERT_EQ(fp.arcs.size(), expected.size()) << "photo " << i;
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(fp.arcs[k].poi_index, expected[k].poi_index);
      EXPECT_DOUBLE_EQ(fp.arcs[k].arc.start, expected[k].arc.start);
      EXPECT_DOUBLE_EQ(fp.arcs[k].arc.length, expected[k].arc.length);
    }
  }
}

}  // namespace
}  // namespace photodtn
