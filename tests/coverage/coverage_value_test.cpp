#include "coverage/coverage_value.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "geometry/angle.h"
#include "util/rng.h"

namespace photodtn {
namespace {

TEST(CoverageValue, LexicographicPointDominates) {
  // Definition 1: any point-coverage advantage beats any aspect advantage.
  const CoverageValue more_points{2.0, 0.0};
  const CoverageValue more_aspect{1.0, 100.0};
  EXPECT_GT(more_points, more_aspect);
  EXPECT_LT(more_aspect, more_points);
}

TEST(CoverageValue, AspectBreaksTies) {
  const CoverageValue a{2.0, 3.0};
  const CoverageValue b{2.0, 4.0};
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
}

TEST(CoverageValue, EqualityAndArithmetic) {
  const CoverageValue a{1.0, 2.0};
  const CoverageValue b{0.5, 1.5};
  EXPECT_EQ(a + b, (CoverageValue{1.5, 3.5}));
  EXPECT_EQ(a - b, (CoverageValue{0.5, 0.5}));
  EXPECT_EQ(a * 2.0, (CoverageValue{2.0, 4.0}));
  CoverageValue c = a;
  c += b;
  EXPECT_EQ(c, a + b);
}

TEST(CoverageValue, IsZero) {
  EXPECT_TRUE((CoverageValue{}.is_zero()));
  EXPECT_FALSE((CoverageValue{0.0, 0.1}.is_zero()));
  EXPECT_FALSE((CoverageValue{0.1, 0.0}.is_zero()));
}

TEST(CoverageValue, ExceedsUsesSlack) {
  const CoverageValue a{1.0, 1.0};
  EXPECT_FALSE(a.exceeds({1.0, 1.0}));
  EXPECT_FALSE((CoverageValue{1.0, 1.0 + 1e-12}).exceeds(a));  // below slack
  EXPECT_TRUE((CoverageValue{1.0, 1.1}).exceeds(a));
  EXPECT_TRUE((CoverageValue{1.1, 0.0}).exceeds(a));   // point dominates
  EXPECT_FALSE((CoverageValue{0.9, 99.0}).exceeds(a));  // point dominates
}

TEST(CoverageValue, OrderingIsTotalOnSamples) {
  const CoverageValue vals[] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}};
  for (std::size_t i = 0; i < std::size(vals); ++i)
    for (std::size_t j = 0; j < std::size(vals); ++j) {
      if (i < j) {
        EXPECT_LT(vals[i], vals[j]);
      } else if (i == j) {
        EXPECT_EQ(vals[i], vals[j]);
      } else {
        EXPECT_GT(vals[i], vals[j]);
      }
    }
}

TEST(CoverageValueAudit, FiniteValuesPassUnderArithmeticChains) {
  // Property: sums, differences, and scalings of finite values stay finite,
  // and audit() accepts every intermediate. The lexicographic comparison
  // stays consistent with exceeds() throughout.
  Rng rng(424242);
  CoverageValue acc;
  for (int i = 0; i < 200; ++i) {
    const CoverageValue v{rng.uniform(-5.0, 5.0), rng.uniform(0.0, kTwoPi)};
    ASSERT_NO_THROW(v.audit());
    acc += v * rng.uniform(0.0, 2.0);
    ASSERT_NO_THROW(acc.audit());
    // Ordering consistency: strictly exceeding with zero slack implies
    // strictly greater in the lexicographic order, and vice versa.
    ASSERT_EQ(acc.exceeds(v, 0.0), acc > v);
  }
}

TEST(CoverageValueAudit, RejectsNonFiniteComponents) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((CoverageValue{nan, 0.0}.audit()), std::logic_error);
  EXPECT_THROW((CoverageValue{0.0, nan}.audit()), std::logic_error);
  EXPECT_THROW((CoverageValue{inf, 0.0}.audit()), std::logic_error);
  EXPECT_THROW((CoverageValue{0.0, -inf}.audit()), std::logic_error);
  EXPECT_NO_THROW((CoverageValue{-1.0, 3.5}.audit()));
}

}  // namespace
}  // namespace photodtn
