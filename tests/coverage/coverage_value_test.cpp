#include "coverage/coverage_value.h"

#include <gtest/gtest.h>

namespace photodtn {
namespace {

TEST(CoverageValue, LexicographicPointDominates) {
  // Definition 1: any point-coverage advantage beats any aspect advantage.
  const CoverageValue more_points{2.0, 0.0};
  const CoverageValue more_aspect{1.0, 100.0};
  EXPECT_GT(more_points, more_aspect);
  EXPECT_LT(more_aspect, more_points);
}

TEST(CoverageValue, AspectBreaksTies) {
  const CoverageValue a{2.0, 3.0};
  const CoverageValue b{2.0, 4.0};
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
}

TEST(CoverageValue, EqualityAndArithmetic) {
  const CoverageValue a{1.0, 2.0};
  const CoverageValue b{0.5, 1.5};
  EXPECT_EQ(a + b, (CoverageValue{1.5, 3.5}));
  EXPECT_EQ(a - b, (CoverageValue{0.5, 0.5}));
  EXPECT_EQ(a * 2.0, (CoverageValue{2.0, 4.0}));
  CoverageValue c = a;
  c += b;
  EXPECT_EQ(c, a + b);
}

TEST(CoverageValue, IsZero) {
  EXPECT_TRUE((CoverageValue{}.is_zero()));
  EXPECT_FALSE((CoverageValue{0.0, 0.1}.is_zero()));
  EXPECT_FALSE((CoverageValue{0.1, 0.0}.is_zero()));
}

TEST(CoverageValue, ExceedsUsesSlack) {
  const CoverageValue a{1.0, 1.0};
  EXPECT_FALSE(a.exceeds({1.0, 1.0}));
  EXPECT_FALSE((CoverageValue{1.0, 1.0 + 1e-12}).exceeds(a));  // below slack
  EXPECT_TRUE((CoverageValue{1.0, 1.1}).exceeds(a));
  EXPECT_TRUE((CoverageValue{1.1, 0.0}).exceeds(a));   // point dominates
  EXPECT_FALSE((CoverageValue{0.9, 99.0}).exceeds(a));  // point dominates
}

TEST(CoverageValue, OrderingIsTotalOnSamples) {
  const CoverageValue vals[] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}};
  for (std::size_t i = 0; i < std::size(vals); ++i)
    for (std::size_t j = 0; j < std::size(vals); ++j) {
      if (i < j) {
        EXPECT_LT(vals[i], vals[j]);
      } else if (i == j) {
        EXPECT_EQ(vals[i], vals[j]);
      } else {
        EXPECT_GT(vals[i], vals[j]);
      }
    }
}

}  // namespace
}  // namespace photodtn
