#include "coverage/coverage_map.h"

#include <gtest/gtest.h>

#include "geometry/angle.h"
#include "test_util.h"
#include "util/rng.h"

namespace photodtn {
namespace {

using test::make_poi;
using test::photo_viewing;

TEST(CoverageMap, EmptyMapHasZeroCoverage) {
  const CoverageModel model = test::single_poi_model();
  const CoverageMap map(model);
  EXPECT_TRUE(map.total().is_zero());
  EXPECT_EQ(map.normalized_point(), 0.0);
  EXPECT_FALSE(map.poi_covered(0));
}

TEST(CoverageMap, SinglePhotoGivesPointAndAspect) {
  const CoverageModel model = test::single_poi_model(30.0);
  CoverageMap map(model);
  const auto fp = model.footprint(photo_viewing(model.pois()[0], 0.0));
  const CoverageValue g = map.add(fp);
  EXPECT_DOUBLE_EQ(g.point, 1.0);
  EXPECT_NEAR(g.aspect, deg_to_rad(60.0), 1e-9);
  EXPECT_TRUE(map.poi_covered(0));
  EXPECT_NEAR(map.poi_aspect(0), deg_to_rad(60.0), 1e-9);
  EXPECT_DOUBLE_EQ(map.normalized_point(), 1.0);
}

TEST(CoverageMap, DuplicatePhotoAddsNothing) {
  const CoverageModel model = test::single_poi_model(30.0);
  CoverageMap map(model);
  const auto fp = model.footprint(photo_viewing(model.pois()[0], 0.0));
  map.add(fp);
  const CoverageValue g = map.add(fp);
  EXPECT_TRUE(g.is_zero());
}

TEST(CoverageMap, OppositeViewsSumAspect) {
  const CoverageModel model = test::single_poi_model(30.0);
  CoverageMap map(model);
  map.add(model.footprint(photo_viewing(model.pois()[0], 0.0)));
  const CoverageValue g2 = map.add(model.footprint(photo_viewing(model.pois()[0], 180.0)));
  EXPECT_DOUBLE_EQ(g2.point, 0.0);  // already point-covered
  EXPECT_NEAR(g2.aspect, deg_to_rad(60.0), 1e-9);
  EXPECT_NEAR(map.total().aspect, deg_to_rad(120.0), 1e-9);
}

TEST(CoverageMap, PartiallyOverlappingViews) {
  const CoverageModel model = test::single_poi_model(30.0);
  CoverageMap map(model);
  map.add(model.footprint(photo_viewing(model.pois()[0], 0.0)));   // [-30, 30]
  map.add(model.footprint(photo_viewing(model.pois()[0], 40.0)));  // [10, 70]
  EXPECT_NEAR(map.total().aspect, deg_to_rad(100.0), 1e-9);        // union [-30, 70]
}

TEST(CoverageMap, GainPredictsAddExactly) {
  const PoiList pois{make_poi(0.0, 0.0, 0), make_poi(300.0, 0.0, 1),
                     make_poi(-200.0, 100.0, 2)};
  const CoverageModel model(pois, deg_to_rad(25.0));
  CoverageMap map(model);
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    const auto& poi = pois[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    const auto fp =
        model.footprint(photo_viewing(poi, rng.uniform(0.0, 360.0), 120.0));
    const CoverageValue predicted = map.gain(fp);
    const CoverageValue actual = map.add(fp);
    EXPECT_NEAR(predicted.point, actual.point, 1e-9);
    EXPECT_NEAR(predicted.aspect, actual.aspect, 1e-9);
  }
}

TEST(CoverageMap, WeightsScaleBothComponents) {
  const CoverageModel model = test::single_poi_model(30.0, /*weight=*/2.5);
  CoverageMap map(model);
  const CoverageValue g = map.add(model.footprint(photo_viewing(model.pois()[0], 0.0)));
  EXPECT_DOUBLE_EQ(g.point, 2.5);
  EXPECT_NEAR(g.aspect, 2.5 * deg_to_rad(60.0), 1e-9);
  // Normalization divides the weight out again.
  EXPECT_DOUBLE_EQ(map.normalized_point(), 1.0);
  EXPECT_NEAR(map.normalized_aspect(), deg_to_rad(60.0), 1e-9);
}

TEST(CoverageMap, NormalizedPointIsFractionOfPois) {
  const PoiList pois{make_poi(0.0, 0.0, 0), make_poi(5000.0, 5000.0, 1)};
  const CoverageModel model(pois, deg_to_rad(30.0));
  CoverageMap map(model);
  map.add(model.footprint(photo_viewing(pois[0], 0.0)));
  EXPECT_DOUBLE_EQ(map.normalized_point(), 0.5);
}

TEST(CoverageMap, ClearResets) {
  const CoverageModel model = test::single_poi_model();
  CoverageMap map(model);
  map.add(model.footprint(photo_viewing(model.pois()[0], 0.0)));
  map.clear();
  EXPECT_TRUE(map.total().is_zero());
  EXPECT_FALSE(map.poi_covered(0));
  EXPECT_EQ(map.poi_aspect(0), 0.0);
}

TEST(CoverageMap, CoverageOfMatchesIncremental) {
  const CoverageModel model = test::single_poi_model(30.0);
  std::vector<PhotoFootprint> fps;
  for (const double dir : {0.0, 90.0, 180.0, 200.0})
    fps.push_back(model.footprint(photo_viewing(model.pois()[0], dir)));
  CoverageMap map(model);
  for (const auto& fp : fps) map.add(fp);
  const CoverageValue direct = coverage_of(model, fps);
  EXPECT_NEAR(direct.point, map.total().point, 1e-12);
  EXPECT_NEAR(direct.aspect, map.total().aspect, 1e-12);
}

}  // namespace
}  // namespace photodtn
