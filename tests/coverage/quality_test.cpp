// The Section II-C binary quality gate: "use a binary threshold to filter
// out unqualified photos before using our model."
#include <gtest/gtest.h>

#include "coverage/coverage_map.h"
#include "coverage/coverage_model.h"
#include "test_util.h"

namespace photodtn {
namespace {

using test::photo_viewing;

TEST(QualityGate, DefaultAdmitsEverything) {
  const CoverageModel model = test::single_poi_model(30.0);
  PhotoMeta p = photo_viewing(model.pois()[0], 0.0);
  p.quality = 0.0;
  EXPECT_TRUE(model.footprint(p).relevant());
}

TEST(QualityGate, BelowThresholdPhotosHaveEmptyFootprints) {
  CoverageModel model = test::single_poi_model(30.0);
  model.set_quality_threshold(0.5);
  PhotoMeta good = photo_viewing(model.pois()[0], 0.0);
  good.quality = 0.7;
  PhotoMeta blurred = photo_viewing(model.pois()[0], 90.0);
  blurred.quality = 0.3;
  EXPECT_TRUE(model.footprint(good).relevant());
  EXPECT_FALSE(model.footprint(blurred).relevant());
  EXPECT_TRUE(model.covers(good, model.pois()[0]));
  EXPECT_FALSE(model.covers(blurred, model.pois()[0]));
}

TEST(QualityGate, ExactThresholdAdmits) {
  CoverageModel model = test::single_poi_model(30.0);
  model.set_quality_threshold(0.5);
  PhotoMeta p = photo_viewing(model.pois()[0], 0.0);
  p.quality = 0.5;
  EXPECT_TRUE(model.footprint(p).relevant());
}

TEST(QualityGate, DisqualifiedPhotosEarnNoCoverage) {
  CoverageModel model = test::single_poi_model(30.0);
  model.set_quality_threshold(0.5);
  CoverageMap map(model);
  PhotoMeta blurred = photo_viewing(model.pois()[0], 0.0);
  blurred.quality = 0.1;
  EXPECT_TRUE(map.add(model.footprint(blurred)).is_zero());
  EXPECT_FALSE(map.poi_covered(0));
}

TEST(QualityGate, ValidatesConfiguration) {
  CoverageModel model = test::single_poi_model(30.0);
  EXPECT_THROW(model.set_quality_threshold(-0.1), std::logic_error);
  EXPECT_THROW(model.set_quality_threshold(1.5), std::logic_error);
  // Must be set before the footprint cache is populated.
  model.footprint_cached(photo_viewing(model.pois()[0], 0.0));
  EXPECT_THROW(model.set_quality_threshold(0.5), std::logic_error);
}

}  // namespace
}  // namespace photodtn
