#include "coverage/aspect_profile.h"

#include <gtest/gtest.h>

#include "coverage/coverage_map.h"
#include "geometry/angle.h"
#include "test_util.h"

namespace photodtn {
namespace {

using test::photo_viewing;

TEST(AspectProfile, UniformByDefault) {
  const AspectProfile p;
  EXPECT_TRUE(p.is_uniform());
  EXPECT_DOUBLE_EQ(p.weight_at(1.0), 1.0);
  EXPECT_NEAR(p.total(), kTwoPi, 1e-12);
}

TEST(AspectProfile, SetBandOverridesWeight) {
  AspectProfile p;
  p.set_band(Arc{0.0, 1.0}, 3.0);  // [0, 1] -> weight 3
  EXPECT_DOUBLE_EQ(p.weight_at(0.5), 3.0);
  EXPECT_DOUBLE_EQ(p.weight_at(2.0), 1.0);
  EXPECT_NEAR(p.total(), kTwoPi - 1.0 + 3.0, 1e-9);
}

TEST(AspectProfile, LaterBandsWin) {
  AspectProfile p;
  p.set_band(Arc{0.0, 2.0}, 3.0);
  p.set_band(Arc{1.0, 0.5}, 0.0);  // carve a zero-weight notch
  EXPECT_DOUBLE_EQ(p.weight_at(0.5), 3.0);
  EXPECT_DOUBLE_EQ(p.weight_at(1.2), 0.0);
  EXPECT_DOUBLE_EQ(p.weight_at(1.8), 3.0);
  EXPECT_NEAR(p.total(), kTwoPi - 2.0 + 1.5 * 3.0, 1e-9);
}

TEST(AspectProfile, WrappingBand) {
  AspectProfile p;
  p.set_band(Arc::centered(0.0, 0.5), 2.0);  // [-0.5, 0.5] wraps
  EXPECT_DOUBLE_EQ(p.weight_at(0.2), 2.0);
  EXPECT_DOUBLE_EQ(p.weight_at(kTwoPi - 0.2), 2.0);
  EXPECT_DOUBLE_EQ(p.weight_at(1.0), 1.0);
  EXPECT_NEAR(p.total(), kTwoPi - 1.0 + 2.0, 1e-9);
}

TEST(AspectProfile, IntegrateExcluding) {
  AspectProfile p;
  p.set_band(Arc{1.0, 1.0}, 4.0);  // [1, 2] -> 4
  ArcSet excl;
  excl.add(Arc{1.5, 1.0});  // [1.5, 2.5] excluded
  // Integral over [0, 3]: [0,1]*1 + [1,1.5]*4 + excluded[1.5,2.5] + [2.5,3]*1.
  EXPECT_NEAR(p.integrate_excluding(0.0, 3.0, excl), 1.0 + 2.0 + 0.5, 1e-9);
}

TEST(AspectProfile, IntegrateSet) {
  AspectProfile p;
  p.set_band(Arc{0.0, 1.0}, 5.0);
  ArcSet set;
  set.add(Arc{0.5, 1.0});  // [0.5, 1.5]
  // [0.5,1]*5 + [1,1.5]*1.
  EXPECT_NEAR(p.integrate_set(set), 2.5 + 0.5, 1e-9);
}

TEST(AspectProfile, ProfileGainMatchesUnweightedWhenUniform) {
  const AspectProfile uniform;
  ArcSet existing;
  existing.add(Arc{0.0, 1.0});
  const Arc probe{0.5, 1.0};
  EXPECT_NEAR(profile_gain(&uniform, probe, existing), existing.gain(probe), 1e-12);
  EXPECT_NEAR(profile_gain(nullptr, probe, existing), existing.gain(probe), 1e-12);
}

TEST(AspectProfile, ProfileGainWeighted) {
  AspectProfile p;
  p.set_band(Arc{0.0, 1.0}, 10.0);
  ArcSet existing;  // empty
  // Arc [0.5, 1.5]: [0.5,1] at weight 10 + [1,1.5] at weight 1.
  EXPECT_NEAR(profile_gain(&p, Arc{0.5, 1.0}, existing), 5.0 + 0.5, 1e-9);
}

TEST(AspectProfile, RejectsNegativeWeight) {
  AspectProfile p;
  EXPECT_THROW(p.set_band(Arc{0.0, 1.0}, -1.0), std::logic_error);
}

TEST(AspectProfileCoverage, EntranceWeightingChangesPhotoValue) {
  // A PoI whose "entrance" faces east (aspect 0) with weight 5: an east-side
  // photo is worth far more aspect coverage than a west-side one.
  auto profile = std::make_shared<AspectProfile>();
  profile->set_band(Arc::centered(0.0, deg_to_rad(45.0)), 5.0);
  PointOfInterest poi{0, {0.0, 0.0}, 1.0, profile};
  const CoverageModel model({poi}, deg_to_rad(30.0));
  CoverageMap map(model);
  const auto east = model.footprint(photo_viewing(poi, 0.0));    // arc [-30, 30]
  const auto west = model.footprint(photo_viewing(poi, 180.0));  // arc [150, 210]
  const CoverageValue g_east = map.gain(east);
  const CoverageValue g_west = map.gain(west);
  EXPECT_NEAR(g_east.aspect, 5.0 * deg_to_rad(60.0), 1e-9);
  EXPECT_NEAR(g_west.aspect, deg_to_rad(60.0), 1e-9);
  EXPECT_GT(g_east.aspect, g_west.aspect);
}

TEST(AspectProfileCoverage, FullViewFraction) {
  const CoverageModel model = test::single_poi_model(30.0);
  CoverageMap map(model);
  // Six 60-degree views tile the circle.
  for (int d = 0; d < 360; d += 60)
    map.add(model.footprint(photo_viewing(model.pois()[0], d)));
  EXPECT_TRUE(map.poi_full_view(0));
  EXPECT_DOUBLE_EQ(map.full_view_fraction(), 1.0);
}

TEST(AspectProfileCoverage, PartialViewIsNotFullView) {
  const CoverageModel model = test::single_poi_model(30.0);
  CoverageMap map(model);
  map.add(model.footprint(photo_viewing(model.pois()[0], 0.0)));
  map.add(model.footprint(photo_viewing(model.pois()[0], 180.0)));
  EXPECT_FALSE(map.poi_full_view(0));
  EXPECT_DOUBLE_EQ(map.full_view_fraction(), 0.0);
}

}  // namespace
}  // namespace photodtn
