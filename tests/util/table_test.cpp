#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace photodtn {
namespace {

TEST(Table, PrintsAlignedHeadersAndRows) {
  Table t({"scheme", "coverage"});
  t.add_row({std::string("ours"), 0.75});
  t.add_row({std::string("spray"), 0.25});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("scheme"), std::string::npos);
  EXPECT_NE(s.find("ours"), std::string::npos);
  EXPECT_NE(s.find("0.7500"), std::string::npos);
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), std::logic_error);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"name", "v"});
  t.add_row({std::string("has,comma"), std::int64_t{3}});
  t.add_row({std::string("has\"quote"), std::int64_t{4}});
  std::ostringstream os;
  t.write_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, PrecisionControlsDoubles) {
  Table t({"x"});
  t.set_precision(1);
  t.add_row({3.14159});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("3.1"), std::string::npos);
  EXPECT_EQ(os.str().find("3.14"), std::string::npos);
}

TEST(Table, IntsRenderWithoutDecimals) {
  Table t({"n"});
  t.add_row({std::int64_t{42}});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\n42\n"), std::string::npos);
}

}  // namespace
}  // namespace photodtn
