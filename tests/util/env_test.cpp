#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace photodtn {
namespace {

TEST(Env, FallbackWhenUnset) {
  unsetenv("PHOTODTN_TEST_UNSET");
  EXPECT_EQ(env_int("PHOTODTN_TEST_UNSET", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("PHOTODTN_TEST_UNSET", 2.5), 2.5);
}

TEST(Env, ParsesValidValues) {
  setenv("PHOTODTN_TEST_INT", "123", 1);
  setenv("PHOTODTN_TEST_DBL", "0.75", 1);
  EXPECT_EQ(env_int("PHOTODTN_TEST_INT", 0), 123);
  EXPECT_DOUBLE_EQ(env_double("PHOTODTN_TEST_DBL", 0.0), 0.75);
  unsetenv("PHOTODTN_TEST_INT");
  unsetenv("PHOTODTN_TEST_DBL");
}

TEST(Env, FallbackOnGarbage) {
  setenv("PHOTODTN_TEST_BAD", "12abc", 1);
  EXPECT_EQ(env_int("PHOTODTN_TEST_BAD", -1), -1);
  EXPECT_DOUBLE_EQ(env_double("PHOTODTN_TEST_BAD", -2.0), -2.0);
  unsetenv("PHOTODTN_TEST_BAD");
}

TEST(Env, EmptyStringFallsBack) {
  setenv("PHOTODTN_TEST_EMPTY", "", 1);
  EXPECT_EQ(env_int("PHOTODTN_TEST_EMPTY", 9), 9);
  unsetenv("PHOTODTN_TEST_EMPTY");
}

}  // namespace
}  // namespace photodtn
