#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace photodtn {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.7) * 10.0;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(SeriesStats, AveragesAcrossRuns) {
  SeriesStats s;
  s.add_series({1.0, 2.0, 3.0});
  s.add_series({3.0, 4.0, 5.0});
  EXPECT_EQ(s.runs(), 2u);
  const auto m = s.means();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 3.0);
  EXPECT_DOUBLE_EQ(m[2], 4.0);
}

TEST(SeriesStats, RejectsLengthMismatch) {
  SeriesStats s;
  s.add_series({1.0, 2.0});
  EXPECT_THROW(s.add_series({1.0}), std::logic_error);
}

TEST(SeriesStats, Ci95ShrinksWithRuns) {
  SeriesStats few, many;
  for (int r = 0; r < 3; ++r) few.add_series({static_cast<double>(r)});
  for (int r = 0; r < 30; ++r) many.add_series({static_cast<double>(r % 3)});
  EXPECT_GT(few.ci95()[0], many.ci95()[0]);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  std::vector<double> neg;
  for (const double v : y) neg.push_back(-v);
  EXPECT_NEAR(pearson_correlation(x, neg), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputsReturnZero) {
  EXPECT_EQ(pearson_correlation({1.0}, {2.0}), 0.0);
  EXPECT_EQ(pearson_correlation({1, 1, 1}, {1, 2, 3}), 0.0);
}

}  // namespace
}  // namespace photodtn
