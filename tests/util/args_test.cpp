#include "util/args.h"

#include <gtest/gtest.h>

#include <array>

namespace photodtn {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, CommandAndPositionals) {
  const Args a = parse({"trace-stats", "file1.csv", "file2.csv"});
  EXPECT_EQ(a.command(), "trace-stats");
  ASSERT_EQ(a.positionals().size(), 2u);
  EXPECT_EQ(a.positionals()[0], "file1.csv");
}

TEST(Args, KeyValueOptions) {
  const Args a = parse({"simulate", "--runs", "5", "--scheme", "OurScheme"});
  EXPECT_EQ(a.get_int("runs", 1), 5);
  EXPECT_EQ(a.get("scheme", ""), "OurScheme");
  EXPECT_EQ(a.get("missing", "dflt"), "dflt");
}

TEST(Args, BooleanFlags) {
  const Args a = parse({"simulate", "--verbose", "--runs", "2"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get("verbose", ""), "true");
  EXPECT_EQ(a.get_int("runs", 0), 2);
}

TEST(Args, TrailingFlagIsBoolean) {
  const Args a = parse({"simulate", "--dry-run"});
  EXPECT_TRUE(a.has("dry-run"));
}

TEST(Args, TypedGettersValidate) {
  const Args a = parse({"simulate", "--runs", "abc", "--scale", "0.5x"});
  EXPECT_THROW(a.get_int("runs", 1), std::exception);
  EXPECT_THROW(a.get_double("scale", 1.0), std::exception);
}

TEST(Args, DoubleParsing) {
  const Args a = parse({"simulate", "--scale", "0.25"});
  EXPECT_DOUBLE_EQ(a.get_double("scale", 1.0), 0.25);
}

TEST(Args, UnusedKeysDetectTypos) {
  const Args a = parse({"simulate", "--runs", "3", "--typo-flag", "x"});
  (void)a.get_int("runs", 1);
  const auto unused = a.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo-flag");
}

TEST(Args, EmptyOptionNameRejected) {
  EXPECT_THROW(parse({"cmd", "--"}), std::runtime_error);
}

TEST(Args, NoArguments) {
  const Args a = parse({});
  EXPECT_TRUE(a.command().empty());
  EXPECT_TRUE(a.positionals().empty());
}

TEST(Args, SingleDashOptionsRejected) {
  // Options are spelled --name; a single-dash token is a typo, not a
  // positional, and must fail parsing rather than ride along silently.
  EXPECT_THROW(parse({"simulate", "-runs", "3"}), std::runtime_error);
  EXPECT_THROW(parse({"simulate", "-h"}), std::runtime_error);
  try {
    parse({"simulate", "-x"});
    FAIL() << "single-dash option was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("-x"), std::string::npos);
  }
}

TEST(Args, LoneDashIsAPositional) {
  // A bare "-" conventionally means stdin/stdout; keep it as a positional.
  const Args a = parse({"cmd", "-"});
  ASSERT_EQ(a.positionals().size(), 1u);
  EXPECT_EQ(a.positionals()[0], "-");
}

TEST(Args, MalformedValuesNameTheOption) {
  const Args a = parse({"simulate", "--runs", "1x", "--scale", "zero"});
  try {
    (void)a.get_int("runs", 1);
    FAIL() << "trailing junk accepted as integer";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--runs"), std::string::npos);
    EXPECT_NE(what.find("1x"), std::string::npos);
  }
  try {
    (void)a.get_double("scale", 1.0);
    FAIL() << "non-numeric accepted as double";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--scale"), std::string::npos);
    EXPECT_NE(what.find("zero"), std::string::npos);
  }
}

TEST(Args, IntegerOverflowRejected) {
  const Args a = parse({"simulate", "--runs", "99999999999999999999999999"});
  EXPECT_THROW(a.get_int("runs", 1), std::runtime_error);
}

}  // namespace
}  // namespace photodtn
