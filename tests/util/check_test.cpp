#include "util/check.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace photodtn {
namespace {

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(PHOTODTN_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(PHOTODTN_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailureThrowsLogicErrorWithExpressionAndLocation) {
  try {
    PHOTODTN_CHECK(2 + 2 == 5);
    FAIL() << "check did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
  }
}

TEST(Check, FailureMessageIncludesCustomText) {
  try {
    PHOTODTN_CHECK_MSG(false, "probability drifted");
    FAIL() << "check did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("probability drifted"), std::string::npos);
  }
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int evals = 0;
  PHOTODTN_CHECK([&] { ++evals; return true; }());
  EXPECT_EQ(evals, 1);
}

TEST(Dcheck, ActiveExactlyWhenBuildSaysSo) {
  if (dchecks_enabled()) {
    EXPECT_THROW(PHOTODTN_DCHECK(false), std::logic_error);
    EXPECT_THROW(PHOTODTN_DCHECK_MSG(false, "debug only"), std::logic_error);
  } else {
    EXPECT_NO_THROW(PHOTODTN_DCHECK(false));
    EXPECT_NO_THROW(PHOTODTN_DCHECK_MSG(false, "debug only"));
  }
}

TEST(Dcheck, CompiledOutVariantDoesNotEvaluateTheExpression) {
  int evals = 0;
  PHOTODTN_DCHECK([&] { ++evals; return true; }());
  EXPECT_EQ(evals, dchecks_enabled() ? 1 : 0);
}

TEST(Dcheck, PassingConditionIsAlwaysSilent) {
  EXPECT_NO_THROW(PHOTODTN_DCHECK(true));
  EXPECT_NO_THROW(PHOTODTN_DCHECK_MSG(true, "fine"));
}

TEST(Audit, RunsExactlyWhenAuditBuild) {
  int evals = 0;
  PHOTODTN_AUDIT([&] { ++evals; }());
  EXPECT_EQ(evals, audits_enabled() ? 1 : 0);
}

TEST(Audit, PropagatesAuditFailureInAuditBuilds) {
  auto failing_audit = [] { PHOTODTN_CHECK_MSG(false, "deep invariant broken"); };
  if (audits_enabled()) {
    EXPECT_THROW(PHOTODTN_AUDIT(failing_audit()), std::logic_error);
  } else {
    EXPECT_NO_THROW(PHOTODTN_AUDIT(failing_audit()));
  }
}

TEST(Audit, EnabledFlagsAreConsistent) {
  // Audit builds imply dchecks: PHOTODTN_AUDIT_INVARIANTS turns both on.
  if (audits_enabled()) {
    EXPECT_TRUE(dchecks_enabled());
  }
}

}  // namespace
}  // namespace photodtn
