#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace photodtn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsWellMixed) {
  Rng r(0);
  // A poorly seeded xoshiro (all-zero state) returns zeros forever.
  EXPECT_NE(r.next(), 0u);
  EXPECT_NE(r.next(), r.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversAllValuesInclusively) {
  Rng r(11);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = r.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) EXPECT_GT(c, 800) << "roughly uniform";
}

TEST(Rng, UniformIntSingleton) {
  Rng r(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(4, 4), 4);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(13);
  const double lambda = 0.25;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.exponential(lambda);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.15);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(17);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, BernoulliEdgesAndRate) {
  Rng r(19);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(Rng, SplitStreamsAreDecorrelatedAndDeterministic) {
  Rng parent1(5), parent2(5);
  Rng a1 = parent1.split("alpha");
  Rng a2 = parent2.split("alpha");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a1.next(), a2.next());

  Rng parent3(5);
  Rng b = parent3.split("beta");
  Rng a3 = Rng(5).split("alpha");
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a3.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShufflePermutes) {
  Rng r(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, HashTagDistinguishesStrings) {
  EXPECT_NE(hash_tag("a"), hash_tag("b"));
  EXPECT_NE(hash_tag(""), hash_tag("a"));
  EXPECT_EQ(hash_tag("photos"), hash_tag("photos"));
}

}  // namespace
}  // namespace photodtn
