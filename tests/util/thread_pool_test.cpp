// Tests for the deterministic shared thread pool: chunk coverage (each
// chunk exactly once), inline edge cases, nesting, exception propagation,
// grain-fixed chunk boundaries, and the ordered reduction contract that the
// selection and experiment layers build their bit-identity on.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace photodtn {
namespace {

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  for (std::size_t conc : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(conc);
    EXPECT_EQ(pool.concurrency(), conc);
    std::vector<std::atomic<int>> hits(97);
    pool.parallel_chunks(hits.size(),
                         [&](std::size_t c) { hits[c].fetch_add(1); });
    for (std::size_t c = 0; c < hits.size(); ++c)
      EXPECT_EQ(hits[c].load(), 1) << "chunk " << c << " conc " << conc;
  }
}

TEST(ThreadPool, ZeroChunksIsANoOpAndZeroConcurrencyClamps) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.concurrency(), 1u);
  bool ran = false;
  pool.parallel_chunks(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleChunkRunsInline) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_chunks(1, [&](std::size_t c) {
    EXPECT_EQ(c, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, ParallelForBoundariesDependOnGrainNotPoolSize) {
  // The per-chunk [begin, end) pairs must be a pure function of (n, grain);
  // every accumulation the repo runs on the pool relies on this.
  const std::size_t n = 103, grain = 16;
  auto boundaries = [&](ThreadPool& pool) {
    std::vector<std::pair<std::size_t, std::size_t>> out(
        (n + grain - 1) / grain);
    pool.parallel_for(n, grain, [&](std::size_t b, std::size_t e) {
      out[b / grain] = {b, e};
    });
    return out;
  };
  ThreadPool serial(1), wide(4);
  const auto a = boundaries(serial), b = boundaries(wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  std::size_t covered = 0;
  for (const auto& [lo, hi] : a) {
    EXPECT_EQ(lo, covered);
    EXPECT_GT(hi, lo);
    covered = hi;
  }
  EXPECT_EQ(covered, n);
}

TEST(ThreadPool, OrderedReduceFoldsInChunkOrder) {
  // String concatenation is non-commutative: any fold-order deviation under
  // concurrency changes the result.
  ThreadPool serial(1), wide(4);
  auto run = [](ThreadPool& pool) {
    return pool.parallel_reduce(
        26, std::string{},
        [](std::size_t c) { return std::string(1, static_cast<char>('a' + c)); },
        [](std::string acc, std::string part) { return acc + part; });
  };
  EXPECT_EQ(run(serial), "abcdefghijklmnopqrstuvwxyz");
  EXPECT_EQ(run(wide), "abcdefghijklmnopqrstuvwxyz");
}

TEST(ThreadPool, NestedParallelChunksMakesProgress) {
  // A chunk body may re-enter the same pool (selection inside an experiment
  // run); the caller drains its own job, so this must not deadlock even
  // when every worker is busy with outer chunks.
  ThreadPool pool(2);
  std::atomic<int> inner_hits{0};
  pool.parallel_chunks(4, [&](std::size_t) {
    pool.parallel_chunks(8, [&](std::size_t) { inner_hits.fetch_add(1); });
  });
  EXPECT_EQ(inner_hits.load(), 32);
}

TEST(ThreadPool, FirstChunkExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  auto boom = [](std::size_t c) {
    if (c == 5) throw std::runtime_error("chunk 5 failed");
  };
  EXPECT_THROW(pool.parallel_chunks(16, boom), std::runtime_error);
  // The pool stays usable after a failed job.
  std::atomic<int> hits{0};
  pool.parallel_chunks(16, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPool, PerSlotWritesAreIdenticalAcrossPoolSizes) {
  // The canonical usage pattern: each chunk writes its own slot. The filled
  // vector must be bit-identical for any pool size.
  auto fill = [](ThreadPool& pool) {
    std::vector<double> out(257);
    pool.parallel_for(out.size(), 32, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i)
        out[i] = 1.0 / (1.0 + static_cast<double>(i) * 0.37);
    });
    return out;
  };
  ThreadPool serial(1), wide(4);
  const auto a = fill(serial), b = fill(wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);  // exact: same expression, same slot
  }
}

TEST(ThreadPool, SharedPoolIsASingletonWithPositiveConcurrency) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.concurrency(), 1u);
}

TEST(ThreadPool, ParallelForRejectsZeroGrain) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(8, 0, [](std::size_t, std::size_t) {}),
               std::logic_error);
}

}  // namespace
}  // namespace photodtn
