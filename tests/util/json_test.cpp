#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace photodtn {
namespace {

TEST(Json, EmptyObjectAndArray) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
  JsonWriter a;
  a.begin_array().end_array();
  EXPECT_EQ(a.str(), "[]");
}

TEST(Json, KeyValuePairsWithCommas) {
  JsonWriter w;
  w.begin_object().kv("a", std::int64_t{1}).kv("b", std::string("x")).end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"x\"}");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("list").begin_array().value(std::int64_t{1}).value(std::int64_t{2}).end_array();
  w.key("obj").begin_object().kv("c", true).end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"list\":[1,2],\"obj\":{\"c\":true}}");
}

TEST(Json, StringEscaping) {
  JsonWriter w;
  w.begin_object().kv("s", std::string("a\"b\\c\nd\te")).end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, ControlCharactersBecomeUnicodeEscapes) {
  JsonWriter w;
  w.begin_object().kv("s", std::string("x\x01y")).end_object();
  EXPECT_NE(w.str().find("\\u0001"), std::string::npos);
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::nan(""))
      .value(std::numeric_limits<double>::infinity())
      .value(1.5)
      .end_array();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(Json, DoubleRoundTripPrecision) {
  JsonWriter w;
  const double v = 0.1 + 0.2;
  w.begin_array().value(v).end_array();
  const std::string s = w.str();
  const double back = std::stod(s.substr(1, s.size() - 2));
  EXPECT_EQ(back, v);
}

TEST(Json, KvArrayHelper) {
  JsonWriter w;
  w.begin_object().kv_array("xs", {1.0, 2.5}).end_object();
  EXPECT_EQ(w.str(), "{\"xs\":[1,2.5]}");
}

TEST(Json, BoolAndNull) {
  JsonWriter w;
  w.begin_array().value(false).null().value(true).end_array();
  EXPECT_EQ(w.str(), "[false,null,true]");
}

}  // namespace
}  // namespace photodtn
