#include "trace/contact_trace.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace photodtn {
namespace {

ContactTrace simple_trace() {
  return ContactTrace{{{100.0, 60.0, 1, 2},
                       {50.0, 30.0, 0, 1},
                       {200.0, 10.0, 2, 3},
                       {300.0, 60.0, 1, 2}},
                      /*num_nodes=*/4,
                      /*horizon=*/1000.0};
}

TEST(ContactTrace, SortsByStartTime) {
  const ContactTrace t = simple_trace();
  ASSERT_EQ(t.size(), 4u);
  for (std::size_t i = 1; i < t.size(); ++i)
    EXPECT_LE(t.contacts()[i - 1].start, t.contacts()[i].start);
  EXPECT_DOUBLE_EQ(t.contacts().front().start, 50.0);
}

TEST(ContactTrace, ValidatesEndpoints) {
  EXPECT_THROW((ContactTrace{{{0.0, 1.0, 1, 1}}, 3, 10.0}), std::logic_error);
  EXPECT_THROW((ContactTrace{{{0.0, 1.0, 1, 5}}, 3, 10.0}), std::logic_error);
  EXPECT_THROW((ContactTrace{{{-1.0, 1.0, 1, 2}}, 3, 10.0}), std::logic_error);
  EXPECT_THROW((ContactTrace{{}, 1, 10.0}), std::logic_error);
}

TEST(ContactTrace, StatsCountCommandCenterContacts) {
  const TraceStats s = simple_trace().stats();
  EXPECT_EQ(s.contacts, 4u);
  EXPECT_EQ(s.command_center_contacts, 1u);
  EXPECT_EQ(s.pairs_with_contact, 3u);
  EXPECT_DOUBLE_EQ(s.mean_duration, 40.0);
  // Only pair (1,2) repeats: inter-contact 300 - 100 = 200.
  EXPECT_DOUBLE_EQ(s.mean_inter_contact, 200.0);
}

TEST(ContactTrace, ContactsOfFiltersAndOrders) {
  const auto cs = simple_trace().contacts_of(1);
  ASSERT_EQ(cs.size(), 3u);
  for (const Contact& c : cs) EXPECT_TRUE(c.involves(1));
}

TEST(ContactTrace, WindowRebasesTimes) {
  const ContactTrace w = simple_trace().window(100.0, 250.0);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.contacts()[0].start, 0.0);    // was 100
  EXPECT_DOUBLE_EQ(w.contacts()[1].start, 100.0);  // was 200
  EXPECT_DOUBLE_EQ(w.horizon(), 150.0);
}

TEST(ContactTrace, WithMaxDurationCaps) {
  const ContactTrace capped = simple_trace().with_max_duration(20.0);
  for (const Contact& c : capped.contacts()) EXPECT_LE(c.duration, 20.0);
  // Shorter contacts are untouched.
  EXPECT_DOUBLE_EQ(capped.contacts()[2].duration, 10.0);
}

TEST(Contact, Helpers) {
  const Contact c{10.0, 5.0, 3, 7};
  EXPECT_DOUBLE_EQ(c.end(), 15.0);
  EXPECT_TRUE(c.involves(3));
  EXPECT_TRUE(c.involves(7));
  EXPECT_FALSE(c.involves(1));
}

}  // namespace
}  // namespace photodtn
