#include "trace/trace_analysis.h"

#include <gtest/gtest.h>

#include "trace/synthetic_trace.h"
#include "util/rng.h"

namespace photodtn {
namespace {

TEST(TraceAnalysis, PairwiseRatesCountAndScale) {
  const ContactTrace t{{{100.0, 10.0, 1, 2},
                        {200.0, 10.0, 2, 1},   // same pair, either order
                        {300.0, 10.0, 1, 3}},
                       4,
                       1000.0};
  const auto rates = pairwise_rates(t);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[0].a, 1);
  EXPECT_EQ(rates[0].b, 2);
  EXPECT_EQ(rates[0].contacts, 2u);
  EXPECT_DOUBLE_EQ(rates[0].rate, 2.0 / 1000.0);
  EXPECT_EQ(rates[1].contacts, 1u);
}

TEST(TraceAnalysis, NodeDegrees) {
  const ContactTrace t{{{1.0, 1.0, 0, 1}, {2.0, 1.0, 1, 2}, {3.0, 1.0, 1, 2}}, 4, 10.0};
  const auto deg = node_degrees(t);
  ASSERT_EQ(deg.size(), 4u);
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[1], 2u);
  EXPECT_EQ(deg[2], 1u);
  EXPECT_EQ(deg[3], 0u);
}

TEST(TraceAnalysis, ExponentialGapsPassTheDiagnostics) {
  // Build a trace with genuinely exponential pairwise gaps; the KS distance
  // against Exp(1) must be small and CV near 1.
  Rng rng(42);
  std::vector<Contact> contacts;
  for (NodeId a = 1; a <= 6; ++a) {
    for (NodeId b = a + 1; b <= 6; ++b) {
      const double rate = rng.uniform(0.5, 3.0) / 3600.0;  // heterogeneous!
      double t = rng.exponential(rate);
      while (t < 400.0 * 3600.0) {
        contacts.push_back(Contact{t, 60.0, a, b});
        t += rng.exponential(rate);
      }
    }
  }
  const ContactTrace trace{std::move(contacts), 7, 400.0 * 3600.0};
  const auto d = inter_contact_diagnostics(trace);
  ASSERT_GT(d.samples, 2000u);
  EXPECT_LT(d.ks_distance, 0.05);
  // Raw CV exceeds 1 because rates are heterogeneous; the KS statistic
  // normalizes that out, which is exactly why we pool normalized gaps.
}

TEST(TraceAnalysis, RegularGapsFailTheDiagnostics) {
  // Perfectly periodic contacts are maximally non-exponential.
  std::vector<Contact> contacts;
  for (int i = 0; i < 200; ++i) contacts.push_back(Contact{i * 100.0, 10.0, 1, 2});
  const ContactTrace trace{std::move(contacts), 3, 20000.0};
  const auto d = inter_contact_diagnostics(trace);
  EXPECT_GT(d.ks_distance, 0.3);
  EXPECT_LT(d.cv, 0.1);
}

TEST(TraceAnalysis, SyntheticGeneratorSatisfiesEquationOnePremise) {
  // The substitution argument of DESIGN.md: our synthetic traces must have
  // (approximately) exponential pairwise inter-contact times, because
  // that's the assumption behind the metadata-validity rule.
  SyntheticTraceConfig cfg;
  cfg.num_participants = 24;
  cfg.duration_s = 400.0 * 3600.0;
  cfg.base_pair_rate_per_hour = 0.05;
  cfg.seed = 3;
  const ContactTrace trace = generate_synthetic_trace(cfg);
  const auto d = inter_contact_diagnostics(trace);
  ASSERT_GT(d.samples, 1000u);
  // Scan-interval quantization and duration-censoring perturb the tail a
  // little; the distance should still be small.
  EXPECT_LT(d.ks_distance, 0.12);
}

TEST(TraceAnalysis, EmptyishTraceIsHandled) {
  const ContactTrace t{{{1.0, 1.0, 0, 1}}, 2, 10.0};
  const auto d = inter_contact_diagnostics(t);
  EXPECT_EQ(d.samples, 0u);
  EXPECT_EQ(d.ks_distance, 1.0);
}

}  // namespace
}  // namespace photodtn
