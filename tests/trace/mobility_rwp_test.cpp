#include "trace/mobility_rwp.h"

#include <gtest/gtest.h>

namespace photodtn {
namespace {

RwpConfig small_config(std::uint64_t seed = 1) {
  RwpConfig cfg;
  cfg.num_participants = 10;
  cfg.region_m = 1000.0;
  cfg.duration_s = 4.0 * 3600.0;
  cfg.comm_range_m = 80.0;
  cfg.scan_interval_s = 60.0;
  cfg.seed = seed;
  return cfg;
}

TEST(RwpMobility, PositionsInsideRegion) {
  const RwpMobility m(small_config());
  for (NodeId n = 1; n <= 10; ++n) {
    for (double t = 0.0; t <= 4.0 * 3600.0; t += 600.0) {
      const Vec2 p = m.position(n, t);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1000.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1000.0);
    }
  }
}

TEST(RwpMobility, MovementRespectsSpeedBound) {
  const RwpConfig cfg = small_config();
  const RwpMobility m(cfg);
  for (NodeId n = 1; n <= 5; ++n) {
    for (double t = 0.0; t < cfg.duration_s - 10.0; t += 100.0) {
      const double moved = m.position(n, t).distance_to(m.position(n, t + 10.0));
      EXPECT_LE(moved, cfg.speed_max * 10.0 + 1e-6);
    }
  }
}

TEST(RwpMobility, PositionDeterministicAndContinuous) {
  const RwpMobility a(small_config(5));
  const RwpMobility b(small_config(5));
  for (double t = 0.0; t < 3600.0; t += 123.4) {
    EXPECT_EQ(a.position(3, t), b.position(3, t));
    // Continuity: nearby times give nearby positions.
    const double d = a.position(3, t).distance_to(a.position(3, t + 1.0));
    EXPECT_LE(d, small_config().speed_max + 1e-9);
  }
}

TEST(RwpMobility, ContactsMatchGeometry) {
  const RwpConfig cfg = small_config(9);
  const RwpMobility m(cfg);
  const ContactTrace t = m.extract_contacts();
  // Every participant-participant contact implies proximity at its start.
  std::size_t checked = 0;
  for (const Contact& c : t.contacts()) {
    if (c.involves(kCommandCenter)) continue;
    const double d = m.position(c.a, c.start).distance_to(m.position(c.b, c.start));
    EXPECT_LE(d, cfg.comm_range_m + 1e-6);
    ++checked;
  }
  EXPECT_GT(checked, 0u) << "dense small region should produce contacts";
}

TEST(RwpMobility, GatewaysSelectedAndContactCenter) {
  const RwpConfig cfg = small_config();
  const RwpMobility m(cfg);
  EXPECT_GE(m.gateways().size(), 1u);
  const ContactTrace t = m.extract_contacts();
  bool has_cc_contact = false;
  for (const Contact& c : t.contacts())
    if (c.involves(kCommandCenter)) has_cc_contact = true;
  EXPECT_TRUE(has_cc_contact);
}

TEST(RwpMobility, PositionClampedOutsideHorizon) {
  const RwpMobility m(small_config());
  EXPECT_EQ(m.position(1, -5.0), m.position(1, 0.0));
  const Vec2 end = m.position(1, small_config().duration_s * 10.0);
  EXPECT_GE(end.x, 0.0);
  EXPECT_LE(end.x, 1000.0);
}

}  // namespace
}  // namespace photodtn
