#include "trace/temporal_reachability.h"

#include <gtest/gtest.h>

#include <limits>
#include <unordered_set>

#include "schemes/best_possible.h"
#include "test_util.h"
#include "trace/synthetic_trace.h"
#include "util/rng.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"

namespace photodtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(TemporalReachability, DirectContactDelivers) {
  const ContactTrace t{{{100.0, 10.0, 0, 1}}, 2, 200.0};
  EXPECT_DOUBLE_EQ(earliest_arrival_from(t, 1, 0.0, 0), 100.0);
  EXPECT_DOUBLE_EQ(earliest_arrival_from(t, 1, 100.0, 0), 100.0);  // exists at start
  EXPECT_EQ(earliest_arrival_from(t, 1, 101.0, 0), kInf);          // created too late
}

TEST(TemporalReachability, TimeRespectingPathsOnly) {
  // 1 meets 2 at t=200, 2 meets 0 at t=100: the relay happens too early.
  const ContactTrace t{{{200.0, 10.0, 1, 2}, {100.0, 10.0, 0, 2}}, 3, 300.0};
  EXPECT_EQ(earliest_arrival_from(t, 1, 0.0, 0), kInf);
  // Node 2's own data makes it.
  EXPECT_DOUBLE_EQ(earliest_arrival_from(t, 2, 0.0, 0), 100.0);
}

TEST(TemporalReachability, MultiHopChain) {
  const ContactTrace t{{{100.0, 10.0, 1, 2}, {200.0, 10.0, 2, 3}, {300.0, 10.0, 0, 3}},
                       4,
                       400.0};
  EXPECT_DOUBLE_EQ(earliest_arrival_from(t, 1, 0.0, 0), 300.0);
  EXPECT_DOUBLE_EQ(earliest_arrival_from(t, 1, 50.0, 0), 300.0);
  EXPECT_EQ(earliest_arrival_from(t, 1, 150.0, 0), kInf);  // missed the 1-2 hop
}

TEST(TemporalReachability, SelfIsImmediate) {
  const ContactTrace t{{{1.0, 1.0, 0, 1}}, 2, 10.0};
  EXPECT_DOUBLE_EQ(earliest_arrival_from(t, 0, 5.0, 0), 5.0);
}

TEST(TemporalReachability, EqualTimeChainFollowsDeterministicOrder) {
  // Both contacts at t=100. Sorted order is (0,2) before (1,2), so data
  // 1 -> 2 arrives after the (0,2) contact was processed: NOT delivered.
  const ContactTrace t{{{100.0, 10.0, 1, 2}, {100.0, 10.0, 0, 2}}, 3, 300.0};
  EXPECT_EQ(earliest_arrival_from(t, 1, 0.0, 0), kInf);
  // The reverse chain works: (0,1) sorts before (1,2)? No — we test the
  // working direction explicitly: (0,2) first means 2's data is delivered.
  EXPECT_DOUBLE_EQ(earliest_arrival_from(t, 2, 0.0, 0), 100.0);
}

TEST(TemporalReachability, BatchMatchesPerItemQueries) {
  Rng rng(9);
  SyntheticTraceConfig cfg;
  cfg.num_participants = 12;
  cfg.duration_s = 30.0 * 3600.0;
  cfg.base_pair_rate_per_hour = 0.3;
  cfg.seed = 4;
  const ContactTrace trace = generate_synthetic_trace(cfg);
  std::vector<std::pair<NodeId, double>> items;
  for (int i = 0; i < 200; ++i)
    items.push_back({static_cast<NodeId>(rng.uniform_int(1, 12)),
                     rng.uniform(0.0, cfg.duration_s)});
  const auto batch = reachable_to_center(trace, items);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const bool single =
        earliest_arrival_from(trace, items[i].first, items[i].second, kCommandCenter) <
        kInf;
    EXPECT_EQ(batch[i], single) << "item " << i;
  }
}

TEST(TemporalReachability, EarliestArrivalVectorConsistent) {
  const ContactTrace t{{{100.0, 10.0, 1, 2}, {200.0, 10.0, 0, 2}}, 3, 300.0};
  const auto arrivals = earliest_arrival(t, 0);
  EXPECT_DOUBLE_EQ(arrivals[0], 0.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 200.0);
  EXPECT_DOUBLE_EQ(arrivals[2], 200.0);
}

TEST(TemporalReachability, BestPossibleDeliversExactlyTheReachableSet) {
  // Differential oracle for the whole simulator: with unlimited storage and
  // bandwidth, BestPossible must deliver a relevant photo iff a
  // time-respecting contact path exists from its owner at its capture time.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng root(seed);
    Rng poi_rng = root.split("pois");
    const PoiList pois = generate_uniform_pois(40, 3000.0, poi_rng);
    const CoverageModel model(pois, deg_to_rad(30.0));

    SyntheticTraceConfig tc;
    tc.num_participants = 15;
    tc.duration_s = 30.0 * 3600.0;
    tc.base_pair_rate_per_hour = 0.2;
    tc.seed = seed;
    const ContactTrace trace = generate_synthetic_trace(tc);

    ScenarioConfig sc = ScenarioConfig::mit(seed);
    sc.region_m = 3000.0;
    sc.num_pois = pois.size();
    sc.photo_rate_per_hour = 80.0;
    PhotoGenerator gen(sc, pois);
    Rng photo_rng = root.split("photos");
    std::vector<PhotoEvent> events = gen.generate(trace.horizon(), 15, photo_rng);

    SimConfig cfg;
    cfg.unlimited_storage = true;
    cfg.unlimited_bandwidth = true;
    cfg.sample_interval_s = 1e9;
    Simulator sim(model, trace, events, cfg);
    BestPossibleScheme scheme;
    const SimResult r = sim.run(scheme);

    std::vector<std::pair<NodeId, double>> items;
    std::vector<PhotoId> ids;
    for (const PhotoEvent& e : events) {
      if (!model.footprint_cached(e.photo).relevant()) continue;
      items.push_back({e.node, e.time});
      ids.push_back(e.photo.id);
    }
    const auto reachable = reachable_to_center(trace, items);
    std::unordered_set<PhotoId> expected;
    for (std::size_t i = 0; i < ids.size(); ++i)
      if (reachable[i]) expected.insert(ids[i]);

    const std::unordered_set<PhotoId> delivered(r.delivered_ids.begin(),
                                                r.delivered_ids.end());
    EXPECT_EQ(delivered, expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace photodtn
