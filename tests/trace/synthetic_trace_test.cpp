#include "trace/synthetic_trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace photodtn {
namespace {

SyntheticTraceConfig small_config(std::uint64_t seed = 1) {
  SyntheticTraceConfig cfg;
  cfg.num_participants = 20;
  cfg.duration_s = 50.0 * 3600.0;
  cfg.scan_interval_s = 300.0;
  cfg.base_pair_rate_per_hour = 0.05;
  cfg.seed = seed;
  return cfg;
}

TEST(SyntheticTrace, DeterministicForSeed) {
  const ContactTrace a = generate_synthetic_trace(small_config(7));
  const ContactTrace b = generate_synthetic_trace(small_config(7));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.contacts()[i], b.contacts()[i]);
}

TEST(SyntheticTrace, DifferentSeedsDiffer) {
  const ContactTrace a = generate_synthetic_trace(small_config(1));
  const ContactTrace b = generate_synthetic_trace(small_config(2));
  bool differ = a.size() != b.size();
  if (!differ) {
    for (std::size_t i = 0; i < a.size(); ++i)
      if (!(a.contacts()[i] == b.contacts()[i])) {
        differ = true;
        break;
      }
  }
  EXPECT_TRUE(differ);
}

TEST(SyntheticTrace, StartTimesQuantizedToScanInterval) {
  const SyntheticTraceConfig cfg = small_config();
  const ContactTrace t = generate_synthetic_trace(cfg);
  ASSERT_GT(t.size(), 0u);
  for (const Contact& c : t.contacts()) {
    const double q = std::fmod(c.start, cfg.scan_interval_s);
    EXPECT_NEAR(q, 0.0, 1e-6);
    EXPECT_GE(c.duration, cfg.scan_interval_s);
  }
}

TEST(SyntheticTrace, GatewayContactsTouchCommandCenter) {
  const SyntheticTraceConfig cfg = small_config();
  const ContactTrace t = generate_synthetic_trace(cfg);
  const auto gateways = synthetic_gateways(cfg);
  ASSERT_FALSE(gateways.empty());
  std::set<NodeId> cc_peers;
  for (const Contact& c : t.contacts())
    if (c.involves(kCommandCenter)) cc_peers.insert(c.a == kCommandCenter ? c.b : c.a);
  // Every node with a command-center contact is a designated gateway.
  for (const NodeId n : cc_peers)
    EXPECT_NE(std::find(gateways.begin(), gateways.end(), n), gateways.end());
  EXPECT_FALSE(cc_peers.empty());
}

TEST(SyntheticTrace, GatewayFractionRoundsUp) {
  SyntheticTraceConfig cfg = small_config();
  cfg.gateway_fraction = 0.02;  // 2% of 20 -> rounds to at least 1
  EXPECT_GE(synthetic_gateways(cfg).size(), 1u);
  cfg.gateway_fraction = 0.25;
  EXPECT_EQ(synthetic_gateways(cfg).size(), 5u);
}

TEST(SyntheticTrace, IntraTeamPairsContactMoreOften) {
  SyntheticTraceConfig cfg = small_config(3);
  cfg.duration_s = 200.0 * 3600.0;
  cfg.intra_team_boost = 20.0;
  cfg.activity_sigma = 0.0;  // isolate the team effect
  const ContactTrace t = generate_synthetic_trace(cfg);
  auto team_of = [&](NodeId n) { return (n - 1) / cfg.team_size; };
  std::size_t intra = 0, inter = 0, intra_pairs = 0, inter_pairs = 0;
  for (NodeId a = 1; a <= cfg.num_participants; ++a)
    for (NodeId b = a + 1; b <= cfg.num_participants; ++b)
      (team_of(a) == team_of(b) ? intra_pairs : inter_pairs) += 1;
  for (const Contact& c : t.contacts()) {
    if (c.involves(kCommandCenter)) continue;
    (team_of(c.a) == team_of(c.b) ? intra : inter) += 1;
  }
  const double intra_rate = static_cast<double>(intra) / static_cast<double>(intra_pairs);
  const double inter_rate = static_cast<double>(inter) / static_cast<double>(inter_pairs);
  EXPECT_GT(intra_rate, 5.0 * inter_rate);
}

TEST(SyntheticTrace, MitPresetMatchesTableI) {
  const auto cfg = SyntheticTraceConfig::mit_reality(1);
  EXPECT_EQ(cfg.num_participants, 97);
  EXPECT_DOUBLE_EQ(cfg.duration_s, 300.0 * 3600.0);
  EXPECT_DOUBLE_EQ(cfg.scan_interval_s, 300.0);
}

TEST(SyntheticTrace, CambridgePresetMatchesTableI) {
  const auto cfg = SyntheticTraceConfig::cambridge06(1);
  EXPECT_EQ(cfg.num_participants, 54);
  EXPECT_DOUBLE_EQ(cfg.duration_s, 200.0 * 3600.0);
  EXPECT_DOUBLE_EQ(cfg.scan_interval_s, 120.0);
}

TEST(SyntheticTrace, InterContactTimesRoughlyExponential) {
  // For a homogeneous pairwise Poisson process the coefficient of variation
  // of inter-contact times is near 1 (the exponential signature eq. (1)
  // relies on).
  SyntheticTraceConfig cfg = small_config(11);
  cfg.activity_sigma = 0.0;
  cfg.intra_team_boost = 1.0;
  cfg.duration_s = 500.0 * 3600.0;
  const ContactTrace t = generate_synthetic_trace(cfg);
  std::vector<double> gaps;
  std::map<std::pair<NodeId, NodeId>, double> last;
  for (const Contact& c : t.contacts()) {
    if (c.involves(kCommandCenter)) continue;
    const auto key = std::minmax(c.a, c.b);
    const auto it = last.find({key.first, key.second});
    if (it != last.end()) gaps.push_back(c.start - it->second);
    last[{key.first, key.second}] = c.start;
  }
  ASSERT_GT(gaps.size(), 300u);
  double mean = 0.0;
  for (const double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (const double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size() - 1);
  const double cv = std::sqrt(var) / mean;
  EXPECT_NEAR(cv, 1.0, 0.3);
}

}  // namespace
}  // namespace photodtn
