#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/synthetic_trace.h"

namespace photodtn {
namespace {

ContactTrace sample() {
  return ContactTrace{{{10.5, 60.0, 0, 1}, {20.25, 120.0, 1, 2}}, 3, 500.0};
}

TEST(TraceIo, RoundTripPreservesEverything) {
  std::stringstream ss;
  write_trace(ss, sample());
  const ContactTrace back = read_trace(ss);
  EXPECT_EQ(back.num_nodes(), 3);
  EXPECT_DOUBLE_EQ(back.horizon(), 500.0);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.contacts()[0], (Contact{10.5, 60.0, 0, 1}));
  EXPECT_EQ(back.contacts()[1], (Contact{20.25, 120.0, 1, 2}));
}

TEST(TraceIo, RejectsEmptyInput) {
  std::stringstream ss;
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMissingHeaderFields) {
  std::stringstream ss("# photodtn-trace v1 horizon=10\nstart,duration,a,b\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedRow) {
  std::stringstream ss(
      "# photodtn-trace v1 nodes=3 horizon=10\nstart,duration,a,b\nnot-a-number\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "# photodtn-trace v1 nodes=3 horizon=10\nstart,duration,a,b\n"
      "# comment\n\n1.0,2.0,0,1\n");
  const ContactTrace t = read_trace(ss);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/photodtn_trace_test.csv";
  ASSERT_TRUE(write_trace_file(path, sample()));
  const ContactTrace back = read_trace_file(path);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_THROW(read_trace_file("/nonexistent/nope.csv"), std::runtime_error);
}

TEST(TraceIo, SyntheticTraceSurvivesRoundTrip) {
  SyntheticTraceConfig cfg;
  cfg.num_participants = 8;
  cfg.duration_s = 10.0 * 3600.0;
  cfg.base_pair_rate_per_hour = 0.2;
  const ContactTrace t = generate_synthetic_trace(cfg);
  std::stringstream ss;
  write_trace(ss, t);
  const ContactTrace back = read_trace(ss);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(back.contacts()[i], t.contacts()[i]);
}

}  // namespace
}  // namespace photodtn
