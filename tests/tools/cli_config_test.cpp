#include "cli_config.h"

#include <gtest/gtest.h>

#include "geometry/angle.h"

namespace photodtn::cli {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"photodtn_cli"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliConfig, DefaultsMatchScaledMit) {
  const Args a = parse({"simulate"});
  const ScenarioConfig sc = scenario_from(a);
  EXPECT_EQ(sc.trace.num_participants, 29);  // 97 * 0.3
  EXPECT_NEAR(sc.trace.duration_s, 90.0 * 3600.0, 1.0);
  EXPECT_NEAR(sc.photo_rate_per_hour, 75.0, 1e-9);
  EXPECT_EQ(sc.num_pois, 250u);
}

TEST(CliConfig, CambridgePreset) {
  const Args a = parse({"simulate", "--trace", "cambridge", "--scale", "1.0"});
  const ScenarioConfig sc = scenario_from(a);
  EXPECT_EQ(sc.trace.num_participants, 54);
  EXPECT_NEAR(sc.trace.duration_s, 200.0 * 3600.0, 1.0);
}

TEST(CliConfig, ExplicitOverridesScaleCorrectly) {
  const Args a = parse({"simulate", "--scale", "0.5", "--rate", "100",
                        "--storage-gb", "1.2", "--pois", "80", "--theta-deg", "40"});
  const ScenarioConfig sc = scenario_from(a);
  EXPECT_NEAR(sc.photo_rate_per_hour, 50.0, 1e-9);  // 100 * 0.5
  EXPECT_EQ(sc.sim.node_storage_bytes, static_cast<std::uint64_t>(1.2e9 * 0.5));
  EXPECT_EQ(sc.num_pois, 80u);
  EXPECT_NEAR(sc.effective_angle, deg_to_rad(40.0), 1e-12);
}

TEST(CliConfig, HoursOverrideIsUnscaled) {
  const Args a = parse({"simulate", "--hours", "24"});
  const ScenarioConfig sc = scenario_from(a);
  EXPECT_NEAR(sc.trace.duration_s, 24.0 * 3600.0, 1e-9);
}

TEST(CliConfig, RejectsBadValues) {
  EXPECT_THROW(scenario_from(parse({"simulate", "--trace", "haggle"})),
               std::runtime_error);
  EXPECT_THROW(scenario_from(parse({"simulate", "--scale", "0"})), std::runtime_error);
  EXPECT_THROW(scenario_from(parse({"simulate", "--scale", "1.5"})), std::runtime_error);
  EXPECT_THROW(scenario_from(parse({"simulate", "--p-thld", "1.5"})),
               std::runtime_error);
  EXPECT_THROW(scenario_from(parse({"simulate", "--hours", "-3"})), std::runtime_error);
}

TEST(CliConfig, SpecCarriesRunsSeedAndCap) {
  const Args a = parse({"simulate", "--runs", "7", "--seed", "42",
                        "--max-contact-s", "45", "--trace-file", "t.csv"});
  const ExperimentSpec spec = spec_from(a);
  EXPECT_EQ(spec.runs, 7u);
  EXPECT_EQ(spec.seed_base, 42u);
  ASSERT_TRUE(spec.max_contact_duration_s.has_value());
  EXPECT_DOUBLE_EQ(*spec.max_contact_duration_s, 45.0);
  EXPECT_EQ(spec.trace_file, "t.csv");
  EXPECT_EQ(spec.photo_options.location_hotspots, 0u);
}

TEST(CliConfig, CalibratedFlagAppliesSubstitute) {
  const ExperimentSpec spec = spec_from(parse({"simulate", "--calibrated"}));
  EXPECT_GT(spec.photo_options.location_hotspots, 0u);
  EXPECT_GT(spec.scenario.trace.mean_on_s, 0.0);
}

TEST(CliConfig, SchemeListParsing) {
  EXPECT_EQ(schemes_from(parse({"simulate"})),
            (std::vector<std::string>{"OurScheme", "Spray&Wait"}));
  EXPECT_EQ(schemes_from(parse({"simulate", "--scheme", "Epidemic,PROPHET"})),
            (std::vector<std::string>{"Epidemic", "PROPHET"}));
  EXPECT_THROW(schemes_from(parse({"simulate", "--scheme", ","})), std::runtime_error);
}

TEST(CliConfig, UnknownOptionRejected) {
  const Args a = parse({"simulate", "--runz", "3"});
  (void)spec_from(a);
  (void)schemes_from(a);
  EXPECT_THROW(reject_unknown_options(a), std::runtime_error);
}

TEST(CliConfig, StrayPositionalsRejected) {
  const Args a = parse({"simulate", "oops.json"});
  try {
    reject_stray_positionals(a, 0);
    FAIL() << "stray positional was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("oops.json"), std::string::npos);
  }
  EXPECT_NO_THROW(reject_stray_positionals(parse({"simulate"}), 0));
  EXPECT_NO_THROW(reject_stray_positionals(parse({"trace-stats", "t.csv"}), 1));
}

TEST(CliConfig, PersistenceFlagsValidated) {
  // Disabled when no flag is given.
  EXPECT_FALSE(persistence_from(parse({"simulate"}), 1, 1).enabled());
  // Both checkpoint flags together, exactly one run and one scheme: ok.
  {
    const RunPersistence p = persistence_from(
        parse({"simulate", "--checkpoint-every", "500", "--checkpoint-out",
               "s.snap"}),
        1, 1);
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(p.checkpoint_every, 500u);
    EXPECT_EQ(p.checkpoint_path, "s.snap");
  }
  // Restore alone is a valid persistence mode.
  EXPECT_TRUE(
      persistence_from(parse({"simulate", "--restore-from", "s.snap"}), 1, 1)
          .enabled());
  // Each checkpoint flag requires the other.
  EXPECT_THROW(
      persistence_from(parse({"simulate", "--checkpoint-every", "500"}), 1, 1),
      std::runtime_error);
  EXPECT_THROW(
      persistence_from(parse({"simulate", "--checkpoint-out", "s.snap"}), 1, 1),
      std::runtime_error);
  // Negative interval.
  EXPECT_THROW(persistence_from(parse({"simulate", "--checkpoint-every", "-5",
                                       "--checkpoint-out", "s.snap"}),
                                1, 1),
               std::runtime_error);
  // Persistence is single-run, single-scheme only.
  const Args multi = parse({"simulate", "--checkpoint-every", "500",
                            "--checkpoint-out", "s.snap"});
  EXPECT_THROW(persistence_from(multi, 3, 1), std::runtime_error);
  EXPECT_THROW(persistence_from(multi, 1, 2), std::runtime_error);
}

}  // namespace
}  // namespace photodtn::cli
