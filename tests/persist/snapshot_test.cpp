// Checkpoint/restore contract tests (persist/snapshot.h): resume equals
// continuous, re-checkpoint after restore is byte-identical, and the guard
// rails (wrong scheme, wrong scenario, already-run simulator) fail cleanly.
#include "persist/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dtn/simulator.h"
#include "persist/codec.h"
#include "schemes/factory.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"
#include "workload/scenario.h"

namespace photodtn {
namespace {

/// Everything a run needs, with the model/trace owned so simulators can be
/// constructed repeatedly against identical inputs (the restore contract:
/// same scenario, fresh simulator).
struct Rig {
  explicit Rig(std::uint64_t seed = 11, bool obs_on = false) {
    ScenarioConfig sc = ScenarioConfig::mit(seed);
    sc.num_pois = 20;
    sc.photo_rate_per_hour = 40.0;
    sc.trace.num_participants = 10;
    sc.trace.duration_s = 12.0 * 3600.0;
    sc.trace.seed = seed ^ 0x7ace5eedULL;
    sc.sim.sample_interval_s = 2.0 * 3600.0;
    sc.sim.node_storage_bytes = 40'000'000;
    sc.sim.faults.contact_interrupt_prob = 0.15;
    sc.sim.faults.crash_rate_per_hour = 0.02;
    sc.sim.seed = seed ^ 0x51eedbeefULL;
    if (obs_on) {
      sc.sim.obs.metrics = true;
      sc.sim.obs.trace = true;
    }

    Rng root(seed);
    Rng poi_rng = root.split("pois");
    Rng photo_rng = root.split("photos");
    pois = generate_uniform_pois(sc.num_pois, sc.region_m, poi_rng);
    model = std::make_unique<CoverageModel>(pois, sc.effective_angle);
    model->set_quality_threshold(sc.quality_threshold);
    trace = generate_synthetic_trace(sc.trace);
    PhotoGenerator gen(sc, pois, PhotoGenOptions{});
    events = gen.generate(trace.horizon(), trace.num_nodes() - 1, photo_rng);
    cfg = sc.sim;
    p_thld = sc.p_thld;
  }

  std::unique_ptr<Simulator> make_sim() const {
    return std::make_unique<Simulator>(*model, trace, events, cfg);
  }
  std::unique_ptr<Scheme> make_scheme(const std::string& name) const {
    SchemeOptions opts;
    opts.p_thld = p_thld;
    return ::photodtn::make_scheme(name, opts);
  }

  PoiList pois;
  std::unique_ptr<CoverageModel> model;
  ContactTrace trace;
  std::vector<PhotoEvent> events;
  SimConfig cfg;
  double p_thld = 0.8;
};

/// Runs to completion, capturing a snapshot at event `at` on the way.
SimResult run_capturing(const Rig& rig, const std::string& scheme_name,
                        std::uint64_t at, std::string* snapshot) {
  auto sim = rig.make_sim();
  auto scheme = rig.make_scheme(scheme_name);
  sim->set_checkpoint_hook([&](std::uint64_t event) {
    if (event == at) *snapshot = persist::checkpoint(*sim, *scheme);
  });
  return sim->run(*scheme);
}

void expect_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].time, b.samples[i].time) << "sample " << i;
    EXPECT_EQ(a.samples[i].point_coverage, b.samples[i].point_coverage)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].aspect_coverage, b.samples[i].aspect_coverage)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].full_view_coverage, b.samples[i].full_view_coverage)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].delivered_photos, b.samples[i].delivered_photos)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].bytes_transferred, b.samples[i].bytes_transferred)
        << "sample " << i;
  }
  EXPECT_EQ(a.final_coverage.point, b.final_coverage.point);
  EXPECT_EQ(a.final_coverage.aspect, b.final_coverage.aspect);
  EXPECT_EQ(a.final_point_norm, b.final_point_norm);
  EXPECT_EQ(a.final_aspect_norm, b.final_aspect_norm);
  EXPECT_EQ(a.delivered_photos, b.delivered_photos);
  EXPECT_EQ(a.delivered_ids, b.delivered_ids);
  EXPECT_EQ(a.counters.contacts, b.counters.contacts);
  EXPECT_EQ(a.counters.photos_taken, b.counters.photos_taken);
  EXPECT_EQ(a.counters.transfers, b.counters.transfers);
  EXPECT_EQ(a.counters.bytes_transferred, b.counters.bytes_transferred);
  EXPECT_EQ(a.counters.failed_transfers, b.counters.failed_transfers);
  EXPECT_EQ(a.counters.drops, b.counters.drops);
  EXPECT_EQ(a.counters.interrupted_contacts, b.counters.interrupted_contacts);
  EXPECT_EQ(a.counters.interrupted_transfers, b.counters.interrupted_transfers);
  EXPECT_EQ(a.counters.partial_bytes, b.counters.partial_bytes);
  EXPECT_EQ(a.counters.missed_contacts, b.counters.missed_contacts);
  EXPECT_EQ(a.counters.node_crashes, b.counters.node_crashes);
  EXPECT_EQ(a.counters.photos_lost_to_crash, b.counters.photos_lost_to_crash);
  EXPECT_EQ(a.counters.photos_missed_down, b.counters.photos_missed_down);
  EXPECT_EQ(a.counters.gossip_losses, b.counters.gossip_losses);
}

class SnapshotSchemes : public ::testing::TestWithParam<const char*> {};

TEST_P(SnapshotSchemes, ResumeEqualsContinuous) {
  const Rig rig;
  // Total event count of this scenario, to place the late checkpoint.
  std::uint64_t total = 0;
  {
    auto sim = rig.make_sim();
    auto scheme = rig.make_scheme(GetParam());
    sim->run(*scheme);
    total = sim->event_index();
  }
  ASSERT_GT(total, 10u);
  // k = 1 (almost nothing happened), a mid-run point, and a late point.
  for (const std::uint64_t at : {std::uint64_t{1}, total / 2, total - 2}) {
    std::string snap;
    const SimResult continuous = run_capturing(rig, GetParam(), at, &snap);
    ASSERT_FALSE(snap.empty()) << "checkpoint at event " << at
                               << " never fired (run too short?)";
    auto sim = rig.make_sim();
    auto scheme = rig.make_scheme(GetParam());
    persist::restore(*sim, *scheme, snap);
    EXPECT_EQ(sim->event_index(), at);
    const SimResult resumed = sim->run(*scheme);
    expect_identical(continuous, resumed);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStatefulSchemes, SnapshotSchemes,
                         ::testing::Values("OurScheme", "NoMetadata",
                                           "Spray&Wait", "ModifiedSpray",
                                           "PROPHET", "Epidemic"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '&') c = '_';
                           return n;
                         });

TEST(Snapshot, ReCheckpointAfterRestoreIsByteIdentical) {
  const Rig rig(/*seed=*/11, /*obs_on=*/true);
  std::string snap;
  run_capturing(rig, "OurScheme", 300, &snap);
  ASSERT_FALSE(snap.empty());

  auto sim = rig.make_sim();
  auto scheme = rig.make_scheme("OurScheme");
  persist::restore(*sim, *scheme, snap);
  const std::string again = persist::checkpoint(*sim, *scheme);
  EXPECT_EQ(snap, again);
}

TEST(Snapshot, ResumeEqualsContinuousWithObs) {
  const Rig rig(/*seed=*/13, /*obs_on=*/true);
  std::string snap;
  const SimResult continuous = run_capturing(rig, "OurScheme", 250, &snap);
  ASSERT_FALSE(snap.empty());

  auto sim = rig.make_sim();
  auto scheme = rig.make_scheme("OurScheme");
  persist::restore(*sim, *scheme, snap);
  const SimResult resumed = sim->run(*scheme);
  expect_identical(continuous, resumed);

  // The metrics snapshot and merged trace must also agree exactly.
  EXPECT_EQ(continuous.obs.metrics.counters, resumed.obs.metrics.counters);
  EXPECT_EQ(continuous.obs.metrics.gauges, resumed.obs.metrics.gauges);
  ASSERT_EQ(continuous.obs.trace_events.size(), resumed.obs.trace_events.size());
  for (std::size_t i = 0; i < continuous.obs.trace_events.size(); ++i) {
    EXPECT_EQ(std::string(continuous.obs.trace_events[i].name),
              std::string(resumed.obs.trace_events[i].name));
    EXPECT_EQ(continuous.obs.trace_events[i].ts_s, resumed.obs.trace_events[i].ts_s);
    EXPECT_EQ(continuous.obs.trace_events[i].seq, resumed.obs.trace_events[i].seq);
  }
}

TEST(Snapshot, PeekMetaDescribesTheCheckpoint) {
  const Rig rig;
  std::string snap;
  run_capturing(rig, "OurScheme", 150, &snap);
  ASSERT_FALSE(snap.empty());
  const persist::SnapshotMeta meta = persist::peek_meta(snap);
  EXPECT_EQ(meta.version, persist::kSnapshotVersion);
  EXPECT_EQ(meta.scheme, "OurScheme");
  EXPECT_EQ(meta.event_index, 150u);
  EXPECT_EQ(meta.seed, rig.cfg.seed);
}

TEST(Snapshot, RestoreRejectsWrongScheme) {
  const Rig rig;
  std::string snap;
  run_capturing(rig, "OurScheme", 100, &snap);
  auto sim = rig.make_sim();
  auto other = rig.make_scheme("Epidemic");
  EXPECT_THROW(persist::restore(*sim, *other, snap), persist::SnapshotError);
}

TEST(Snapshot, RestoreRejectsDifferentScenario) {
  const Rig rig;
  std::string snap;
  run_capturing(rig, "OurScheme", 100, &snap);
  Rig other_rig(/*seed=*/99);
  auto sim = other_rig.make_sim();
  auto scheme = other_rig.make_scheme("OurScheme");
  EXPECT_THROW(persist::restore(*sim, *scheme, snap), persist::SnapshotError);
}

TEST(Snapshot, RestoreRejectsUsedSimulator) {
  const Rig rig;
  std::string snap;
  run_capturing(rig, "OurScheme", 100, &snap);
  auto sim = rig.make_sim();
  auto scheme = rig.make_scheme("OurScheme");
  sim->run(*scheme);  // single-shot: this simulator has already run
  auto scheme2 = rig.make_scheme("OurScheme");
  EXPECT_THROW(persist::restore(*sim, *scheme2, snap), persist::SnapshotError);
}

TEST(Snapshot, CheckpointBeforeRunCapturesTheStart) {
  const Rig rig;
  auto sim = rig.make_sim();
  auto scheme = rig.make_scheme("Spray&Wait");
  scheme->init(*sim);
  const std::string snap = persist::checkpoint(*sim, *scheme);
  EXPECT_EQ(persist::peek_meta(snap).event_index, 0u);
}

}  // namespace
}  // namespace photodtn
