// Adversarial snapshot corpus (registered as persist.corruption in ctest):
// every truncation, bit flip, version skew, and targeted semantic
// inconsistency must surface as a diagnostic SnapshotError — never a crash,
// an out-of-bounds read (ASan/UBSan watch the corpus run), or a restore
// that silently installs wrong state.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dtn/simulator.h"
#include "persist/codec.h"
#include "persist/snapshot.h"
#include "schemes/factory.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"
#include "workload/scenario.h"

namespace photodtn {
namespace {

/// A deliberately tiny scenario so the corpus (quadratic in snapshot size
/// for the exhaustive truncation sweep) stays fast.
struct TinyRig {
  TinyRig() {
    ScenarioConfig sc = ScenarioConfig::mit(5);
    sc.num_pois = 8;
    sc.photo_rate_per_hour = 12.0;
    sc.trace.num_participants = 6;
    sc.trace.duration_s = 6.0 * 3600.0;
    sc.trace.seed = 5 ^ 0x7ace5eedULL;
    sc.sim.sample_interval_s = 2.0 * 3600.0;
    sc.sim.node_storage_bytes = 40'000'000;
    sc.sim.obs.metrics = true;  // populate the OBS and TRCE sections too
    sc.sim.obs.trace = true;
    sc.sim.seed = 5 ^ 0x51eedbeefULL;

    Rng root(5);
    Rng poi_rng = root.split("pois");
    Rng photo_rng = root.split("photos");
    pois = generate_uniform_pois(sc.num_pois, sc.region_m, poi_rng);
    model = std::make_unique<CoverageModel>(pois, sc.effective_angle);
    model->set_quality_threshold(sc.quality_threshold);
    trace = generate_synthetic_trace(sc.trace);
    PhotoGenerator gen(sc, pois, PhotoGenOptions{});
    events = gen.generate(trace.horizon(), trace.num_nodes() - 1, photo_rng);
    cfg = sc.sim;
  }

  std::unique_ptr<Simulator> make_sim() const {
    return std::make_unique<Simulator>(*model, trace, events, cfg);
  }
  std::unique_ptr<Scheme> make_scheme() const {
    return ::photodtn::make_scheme("OurScheme", SchemeOptions{});
  }

  /// A mid-run snapshot of this scenario.
  std::string make_snapshot(std::uint64_t at = 60) const {
    auto sim = make_sim();
    auto scheme = make_scheme();
    std::string snap;
    sim->set_checkpoint_hook([&](std::uint64_t event) {
      if (event == at) snap = persist::checkpoint(*sim, *scheme);
    });
    sim->run(*scheme);
    EXPECT_FALSE(snap.empty());
    return snap;
  }

  PoiList pois;
  std::unique_ptr<CoverageModel> model;
  ContactTrace trace;
  std::vector<PhotoEvent> events;
  SimConfig cfg;
};

const TinyRig& rig() {
  static const TinyRig* r = new TinyRig();
  return *r;
}

const std::string& snapshot() {
  static const std::string* s = new std::string(rig().make_snapshot());
  return *s;
}

/// Restoring `data` into a fresh simulator must throw SnapshotError (and
/// nothing else).
void expect_rejected(const std::string& data, const std::string& what) {
  auto sim = rig().make_sim();
  auto scheme = rig().make_scheme();
  try {
    persist::restore(*sim, *scheme, data);
    FAIL() << what << ": corrupt snapshot was accepted";
  } catch (const persist::SnapshotError& e) {
    EXPECT_STRNE(e.what(), "") << what;
  } catch (const std::exception& e) {
    FAIL() << what << ": wrong exception type: " << e.what();
  }
}

/// Container layout constants (persist/snapshot.h).
constexpr std::size_t kMagicBytes = 8;
constexpr std::size_t kVersionBytes = 4;
constexpr std::size_t kSectionHeaderBytes = 4 + 8 + 4;  // fourcc + len + crc

std::uint64_t read_u64(const std::string& data, std::size_t at) {
  std::uint64_t v = 0;
  std::memcpy(&v, data.data() + at, sizeof v);
  return v;
}

void write_u32(std::string& data, std::size_t at, std::uint32_t v) {
  std::memcpy(data.data() + at, &v, sizeof v);
}

/// Offsets of each section header in the container, in order.
std::vector<std::size_t> section_offsets(const std::string& data) {
  std::vector<std::size_t> offsets;
  std::size_t pos = kMagicBytes + kVersionBytes;
  while (pos + kSectionHeaderBytes <= data.size()) {
    offsets.push_back(pos);
    const std::uint64_t len = read_u64(data, pos + 4);
    pos += kSectionHeaderBytes + static_cast<std::size_t>(len);
  }
  return offsets;
}

TEST(PersistCorruption, TruncationAtEveryLength) {
  const std::string& good = snapshot();
  ASSERT_GT(good.size(), 100u);
  // Exhaustive: every proper prefix must be rejected, which covers every
  // section boundary plus every interior byte.
  for (std::size_t len = 0; len < good.size(); ++len) {
    expect_rejected(good.substr(0, len),
                    "truncation to " + std::to_string(len) + " bytes");
  }
}

TEST(PersistCorruption, TrailingGarbage) {
  expect_rejected(snapshot() + std::string(1, '\0'), "one trailing byte");
  expect_rejected(snapshot() + "extra", "trailing bytes");
}

TEST(PersistCorruption, BitFlipAtEveryByte) {
  const std::string& good = snapshot();
  for (std::size_t at = 0; at < good.size(); ++at) {
    std::string bad = good;
    bad[at] = static_cast<char>(bad[at] ^ 0x40);
    expect_rejected(bad, "bit flip at offset " + std::to_string(at));
  }
}

TEST(PersistCorruption, WrongMagic) {
  std::string bad = snapshot();
  bad[0] = 'X';
  expect_rejected(bad, "wrong magic");
  expect_rejected("", "empty input");
  expect_rejected("PDTN", "short magic");
}

TEST(PersistCorruption, VersionSkew) {
  std::string bad = snapshot();
  write_u32(bad, kMagicBytes, persist::kSnapshotVersion + 1);
  expect_rejected(bad, "future version");
  write_u32(bad, kMagicBytes, 0);
  expect_rejected(bad, "version zero");
}

// An adversary who also fixes the section CRC gets past the checksum; the
// deep validation layer must still reject the payload cleanly.
TEST(PersistCorruption, CrcFixedSemanticCorruption) {
  const std::string& good = snapshot();
  const std::vector<std::size_t> sections = section_offsets(good);
  ASSERT_EQ(sections.size(), 7u);  // META SIM NODE OBS TRCE SCHM END

  // NODE section: smash the leading node-count u64 to a huge value. The
  // allocation-bomb guard must trip before any multi-gigabyte reserve.
  {
    std::string bad = good;
    const std::size_t node_hdr = sections[2];
    const std::size_t payload = node_hdr + kSectionHeaderBytes;
    const std::uint64_t len = read_u64(bad, node_hdr + 4);
    ASSERT_GE(len, 8u);
    for (std::size_t i = 0; i < 8; ++i) bad[payload + i] = '\xff';
    const std::uint32_t crc = persist::crc32(
        std::string_view(bad).substr(payload, static_cast<std::size_t>(len)));
    write_u32(bad, node_hdr + 12, crc);
    expect_rejected(bad, "CRC-fixed node-count bomb");
  }

  // SCHM section: replace the whole payload with noise bytes and fix the
  // CRC; the scheme's loader must fail validation, not install garbage.
  {
    std::string bad = good;
    const std::size_t schm_hdr = sections[5];
    const std::size_t payload = schm_hdr + kSectionHeaderBytes;
    const std::uint64_t len = read_u64(bad, schm_hdr + 4);
    ASSERT_GE(len, 8u);
    for (std::size_t i = 0; i < len; ++i)
      bad[payload + i] = static_cast<char>(0xa5u ^ (i * 7));
    const std::uint32_t crc = persist::crc32(
        std::string_view(bad).substr(payload, static_cast<std::size_t>(len)));
    write_u32(bad, schm_hdr + 12, crc);
    expect_rejected(bad, "CRC-fixed scheme payload noise");
  }
}

TEST(PersistCorruption, PeekMetaRejectsCorruptInput) {
  const std::string& good = snapshot();
  EXPECT_NO_THROW(persist::peek_meta(good));
  EXPECT_THROW(persist::peek_meta(good.substr(0, good.size() / 2)),
               persist::SnapshotError);
  std::string bad = good;
  bad[kMagicBytes + kVersionBytes + kSectionHeaderBytes] ^= 0x01;
  EXPECT_THROW(persist::peek_meta(bad), persist::SnapshotError);
}

}  // namespace
}  // namespace photodtn
