// Unit tests for the snapshot codec (persist/codec.h): little-endian
// layout, double bit-pattern round trips, bounds-checked reads, and the
// allocation-bomb count guard.
#include "persist/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace photodtn::persist {
namespace {

TEST(Codec, Crc32KnownVectors) {
  // Standard zlib CRC-32 check values.
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"), 0x414fa339u);
}

TEST(Codec, RoundTripsEveryPrimitive) {
  StateWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i32(-7);
  w.i64(-1234567890123LL);
  w.f64(3.141592653589793);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.str("");

  StateReader r(w.bytes(), "test");
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Codec, LittleEndianLayout) {
  StateWriter w;
  w.u32(0x04030201u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], '\x01');
  EXPECT_EQ(w.bytes()[3], '\x04');
}

TEST(Codec, DoubleBitPatternsSurvive) {
  const double values[] = {0.0, -0.0, 1e-300, -1e300,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min()};
  StateWriter w;
  for (const double v : values) w.f64(v);
  w.f64(std::nan(""));
  StateReader r(w.bytes(), "test");
  for (const double v : values) EXPECT_EQ(r.f64(), v);
  EXPECT_TRUE(std::isnan(r.f64()));
  // -0.0 must round-trip as -0.0, not 0.0 (bit pattern, not value).
  StateWriter w2;
  w2.f64(-0.0);
  StateReader r2(w2.bytes(), "test");
  EXPECT_TRUE(std::signbit(r2.f64()));
}

TEST(Codec, TruncatedReadsThrowWithContext) {
  StateWriter w;
  w.u32(7);
  StateReader r(std::string_view(w.bytes()).substr(0, 2), "my section");
  try {
    r.u32();
    FAIL() << "truncated read was accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("my section"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(Codec, StringLengthIsBoundsChecked) {
  StateWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.raw("abc");
  StateReader r(w.bytes(), "test");
  EXPECT_THROW(r.str(), SnapshotError);
}

TEST(Codec, ExpectEndRejectsTrailingBytes) {
  StateWriter w;
  w.u8(1);
  w.u8(2);
  StateReader r(w.bytes(), "test");
  r.u8();
  EXPECT_THROW(r.expect_end(), SnapshotError);
}

TEST(Codec, CountGuardsAgainstAllocationBombs) {
  StateWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max());
  StateReader r(w.bytes(), "test");
  // Claims ~2^64 elements of >= 8 bytes with zero bytes remaining.
  EXPECT_THROW(r.count(8), SnapshotError);

  StateWriter ok;
  ok.u64(2);
  ok.u64(10);
  ok.u64(20);
  StateReader r2(ok.bytes(), "test");
  EXPECT_EQ(r2.count(8), 2u);
  EXPECT_EQ(r2.u64(), 10u);
  EXPECT_EQ(r2.u64(), 20u);
}

TEST(Codec, FailReportsContextAndOffset) {
  StateReader r("abcd", "NODE section");
  try {
    r.fail("bad things");
    FAIL();
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("NODE section"), std::string::npos);
    EXPECT_NE(what.find("bad things"), std::string::npos);
    EXPECT_NE(what.find("offset 0"), std::string::npos);
  }
}

}  // namespace
}  // namespace photodtn::persist
