#include <gtest/gtest.h>

#include "schemes/epidemic.h"
#include "schemes/factory.h"
#include "schemes/prophet_routing.h"
#include "test_util.h"

namespace photodtn {
namespace {

using test::make_poi;
using test::photo_viewing;

CoverageModel probe_model() {
  return CoverageModel{{make_poi(0.0, 0.0)}, deg_to_rad(30.0)};
}

PhotoEvent capture(double t, NodeId node, PhotoMeta p) {
  p.taken_by = node;
  p.taken_at = t;
  return PhotoEvent{t, node, p};
}

SimConfig small_config(std::uint64_t storage_photos = 5) {
  SimConfig cfg;
  cfg.node_storage_bytes = storage_photos * 4'000'000;
  cfg.bandwidth_bytes_per_s = 2.0e6;
  cfg.sample_interval_s = 1e9;
  return cfg;
}

TEST(Factory, CreatesExtraBaselines) {
  EXPECT_EQ(make_scheme("Epidemic")->name(), "Epidemic");
  EXPECT_EQ(make_scheme("PROPHET")->name(), "PROPHET");
}

TEST(Epidemic, FloodsEverythingWithinConstraints) {
  const CoverageModel model = probe_model();
  const ContactTrace trace{{{100.0, 600.0, 1, 2}, {200.0, 600.0, 0, 2}}, 3, 1000.0};
  Simulator sim(model, trace,
                {capture(1.0, 1, photo_viewing(model.pois()[0], 0.0)),
                 capture(2.0, 1, test::make_photo(5000.0, 5000.0, 0.0))},
                small_config());
  EpidemicScheme scheme;
  const SimResult r = sim.run(scheme);
  // Both photos (useful AND irrelevant) replicate to node 2 and then reach
  // the center — epidemic is content-blind.
  EXPECT_EQ(r.delivered_photos, 2u);
  EXPECT_EQ(r.counters.transfers, 4u);
}

TEST(Epidemic, ReceiverStorageStopsFlood) {
  const CoverageModel model = probe_model();
  const ContactTrace trace{{{100.0, 600.0, 1, 2}}, 3, 1000.0};
  SimConfig cfg = small_config(/*storage_photos=*/2);
  std::vector<PhotoEvent> events;
  for (PhotoId i = 1; i <= 4; ++i)
    events.push_back(capture(static_cast<double>(i), 1, test::make_photo(0, 0, 0)));
  // Node 1 can only keep 2 of its own photos anyway; node 2 accepts 2.
  Simulator sim(model, trace, std::move(events), cfg);
  EpidemicScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_LE(r.counters.transfers, 2u);
}

TEST(Epidemic, DeliveryReleasesCustody) {
  const CoverageModel model = probe_model();
  const ContactTrace trace{{{100.0, 600.0, 0, 1}}, 2, 1000.0};
  Simulator sim(model, trace,
                {capture(1.0, 1, photo_viewing(model.pois()[0], 0.0))}, small_config());
  EpidemicScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.delivered_photos, 1u);
  // keep_source=false on delivery: the relay's buffer is freed.
  EXPECT_EQ(sim.node(1).store().size(), 0u);
}

TEST(ProphetRouting, ForwardsOnlyTowardBetterCustodians) {
  test::reset_photo_ids();
  const CoverageModel model = probe_model();
  // Node 2 has met the center (high predictability); node 1 has not.
  // Contact order: (2,0) warms node 2, then (1,2): 1 -> 2 forwards, 2 -> 1
  // must not.
  const ContactTrace trace{{{50.0, 600.0, 0, 2}, {100.0, 600.0, 1, 2}}, 3, 1000.0};
  Simulator sim(model, trace,
                {capture(1.0, 1, photo_viewing(model.pois()[0], 0.0)),
                 capture(2.0, 2, photo_viewing(model.pois()[0], 90.0))},
                small_config());
  ProphetRoutingScheme scheme;
  const SimResult r = sim.run(scheme);
  // Node 2 delivered its photo at t=50; at t=100 node 1 replicates its
  // photo to node 2 (better custodian) but not vice versa.
  EXPECT_EQ(r.counters.transfers, 2u);  // delivery at 50 + forward at 100
  EXPECT_TRUE(sim.node(2).store().contains(1));
  EXPECT_FALSE(sim.node(1).store().contains(2));
}

TEST(ProphetRouting, DirectDeliveryDrainsBuffer) {
  const CoverageModel model = probe_model();
  const ContactTrace trace{{{100.0, 600.0, 0, 1}}, 2, 1000.0};
  Simulator sim(model, trace,
                {capture(1.0, 1, photo_viewing(model.pois()[0], 0.0)),
                 capture(2.0, 1, photo_viewing(model.pois()[0], 90.0))},
                small_config());
  ProphetRoutingScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.delivered_photos, 2u);
  EXPECT_EQ(sim.node(1).store().size(), 0u);
}

TEST(ProphetRouting, NoForwardingBetweenCenterlessStrangers) {
  const CoverageModel model = probe_model();
  const ContactTrace trace{{{100.0, 600.0, 1, 2}}, 3, 1000.0};
  Simulator sim(model, trace,
                {capture(1.0, 1, photo_viewing(model.pois()[0], 0.0))}, small_config());
  ProphetRoutingScheme scheme;
  const SimResult r = sim.run(scheme);
  // Neither node has any predictability toward the center: no transfers.
  EXPECT_EQ(r.counters.transfers, 0u);
}

}  // namespace
}  // namespace photodtn
