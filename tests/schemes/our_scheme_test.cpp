#include "schemes/our_scheme.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace photodtn {
namespace {

using test::make_poi;
using test::photo_viewing;

/// Builds a simulator over a single-PoI model with the given contacts and
/// photo events; 4 MB photos, generous defaults.
struct Rig {
  Rig(std::vector<Contact> contacts, NodeId nodes, double horizon,
      std::vector<PhotoEvent> events, SimConfig cfg = default_config())
      : model({make_poi(0.0, 0.0)}, deg_to_rad(30.0)),
        trace(std::move(contacts), nodes, horizon),
        sim(model, trace, std::move(events), cfg) {}

  static SimConfig default_config() {
    SimConfig cfg;
    cfg.node_storage_bytes = 20'000'000;  // five 4 MB photos
    cfg.bandwidth_bytes_per_s = 2.0e6;
    cfg.sample_interval_s = 1e9;  // effectively: only the final sample
    return cfg;
  }

  static PhotoEvent capture(double t, NodeId node, const PhotoMeta& meta) {
    PhotoMeta p = meta;
    p.taken_by = node;
    p.taken_at = t;
    return PhotoEvent{t, node, p};
  }

  CoverageModel model;
  ContactTrace trace;
  Simulator sim;
};

TEST(OurScheme, DeliversUsefulPhotoViaGateway) {
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  std::vector<PhotoEvent> events{
      Rig::capture(10.0, 1, photo_viewing(probe.pois()[0], 0.0))};
  Rig rig({{100.0, 600.0, 1, 2}, {200.0, 600.0, 0, 2}}, 3, 1000.0, std::move(events));
  OurScheme scheme;
  const SimResult r = rig.sim.run(scheme);
  EXPECT_EQ(r.delivered_photos, 1u);
  EXPECT_DOUBLE_EQ(r.final_point_norm, 1.0);
}

TEST(OurScheme, DropsIrrelevantPhotosAtContact) {
  // Node 1 has one useful and one irrelevant photo; after a contact the
  // reallocation should purge the irrelevant one from both nodes.
  std::vector<PhotoEvent> events{
      Rig::capture(1.0, 1, photo_viewing(CoverageModel({make_poi(0.0, 0.0)},
                                                       deg_to_rad(30.0)).pois()[0], 0.0)),
      Rig::capture(2.0, 1, test::make_photo(5000.0, 5000.0, 0.0))};
  Rig rig({{100.0, 600.0, 1, 2}}, 3, 1000.0, std::move(events));
  OurScheme scheme;
  const SimResult r = rig.sim.run(scheme);
  EXPECT_GE(r.counters.drops, 1u);
}

TEST(OurScheme, RedundantCopiesPrunedButUsefulSpread) {
  // Two nodes meet holding the same view plus a distinct view: afterwards
  // the pair should jointly hold both views; the simulation must not lose
  // the distinct one.
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  const PhotoMeta front = photo_viewing(probe.pois()[0], 0.0);
  const PhotoMeta back = photo_viewing(probe.pois()[0], 180.0);
  std::vector<PhotoEvent> events{Rig::capture(1.0, 1, front), Rig::capture(2.0, 2, back)};
  Rig rig({{100.0, 600.0, 1, 2}}, 3, 1000.0, std::move(events));
  OurScheme scheme;
  rig.sim.run(scheme);
}

TEST(OurScheme, AcknowledgedPhotosAreEvictedAfterDelivery) {
  // Node 1 delivers its photo to the center, then (same contact) reselects
  // its own storage: the delivered photo has no residual value and is
  // dropped locally.
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  std::vector<PhotoEvent> events{Rig::capture(1.0, 1, photo_viewing(probe.pois()[0], 0.0))};
  Rig rig({{100.0, 600.0, 0, 1}}, 2, 1000.0, std::move(events));
  OurScheme scheme;
  const SimResult r = rig.sim.run(scheme);
  EXPECT_EQ(r.delivered_photos, 1u);
  EXPECT_EQ(r.counters.drops, 1u);  // local copy released after the ack
}

TEST(OurScheme, CapturePolicyKeepsBetterPhotoWhenFull) {
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  SimConfig cfg = Rig::default_config();
  cfg.node_storage_bytes = 4'000'000;  // exactly one photo
  // First photo: irrelevant. Second: useful. The useful one must win.
  std::vector<PhotoEvent> events{
      Rig::capture(1.0, 1, test::make_photo(5000.0, 5000.0, 0.0)),
      Rig::capture(2.0, 1, photo_viewing(probe.pois()[0], 0.0))};
  Rig rig({{100.0, 600.0, 0, 1}}, 2, 1000.0, std::move(events), cfg);
  OurScheme scheme;
  const SimResult r = rig.sim.run(scheme);
  EXPECT_EQ(r.delivered_photos, 1u);
  EXPECT_DOUBLE_EQ(r.final_point_norm, 1.0);
}

TEST(OurScheme, CapturePolicyDiscardsIrrelevantWhenFull) {
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  SimConfig cfg = Rig::default_config();
  cfg.node_storage_bytes = 4'000'000;
  std::vector<PhotoEvent> events{
      Rig::capture(1.0, 1, photo_viewing(probe.pois()[0], 0.0)),
      Rig::capture(2.0, 1, test::make_photo(5000.0, 5000.0, 0.0))};
  Rig rig({{100.0, 600.0, 0, 1}}, 2, 1000.0, std::move(events), cfg);
  OurScheme scheme;
  const SimResult r = rig.sim.run(scheme);
  EXPECT_EQ(r.delivered_photos, 1u);  // the useful one survived
}

TEST(OurScheme, MetadataCachePopulatedByContacts) {
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  std::vector<PhotoEvent> events{Rig::capture(1.0, 1, photo_viewing(probe.pois()[0], 0.0))};
  Rig rig({{100.0, 600.0, 1, 2}}, 3, 1000.0, std::move(events));
  OurScheme scheme;
  rig.sim.run(scheme);
  // Node 2 cached node 1's metadata (post-contact snapshot).
  const MetadataCache& c2 = scheme.cache_of(2);
  ASSERT_NE(c2.find(1), nullptr);
  EXPECT_EQ(c2.find(1)->photos.size(), 1u);
  EXPECT_DOUBLE_EQ(c2.find(1)->observed_at, 100.0);
}

TEST(OurScheme, GossipSpreadsThirdPartyMetadata) {
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  std::vector<PhotoEvent> events{Rig::capture(1.0, 1, photo_viewing(probe.pois()[0], 0.0))};
  // 1 meets 2, then 2 meets 3 shortly after: 3 learns about 1 via gossip.
  // (The gap must stay below the eq. (1) validity horizon: node 1's rate is
  // estimated as 1 contact / 100 s, so its entry expires ~160 s after the
  // snapshot at the P_thld = 0.8 default.)
  Rig rig({{100.0, 600.0, 1, 2}, {150.0, 600.0, 2, 3}}, 4, 2000.0, std::move(events));
  OurScheme scheme;
  rig.sim.run(scheme);
  const MetadataCache& c3 = scheme.cache_of(3);
  EXPECT_NE(c3.find(1), nullptr);
}

TEST(OurScheme, NoMetadataVariantKeepsNoCaches) {
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  std::vector<PhotoEvent> events{Rig::capture(1.0, 1, photo_viewing(probe.pois()[0], 0.0))};
  Rig rig({{100.0, 600.0, 1, 2}, {200.0, 600.0, 0, 2}}, 3, 1000.0, std::move(events));
  auto scheme = OurScheme::no_metadata();
  EXPECT_EQ(scheme->name(), "NoMetadata");
  const SimResult r = rig.sim.run(*scheme);
  // Still functions and delivers (just without acknowledgment knowledge).
  EXPECT_EQ(r.delivered_photos, 1u);
  EXPECT_THROW(scheme->cache_of(2), std::logic_error);
}

TEST(OurScheme, TruncatedContactNeverLosesUniqueUsefulPhotos) {
  // Budget allows zero transfers between two participants holding distinct
  // useful views; the contact must not drop anything (the paper's "any
  // unfinished transmission will be discarded" cannot destroy data).
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  SimConfig cfg = Rig::default_config();
  cfg.bandwidth_bytes_per_s = 10.0;  // 6 KB per 10-min contact: nothing fits
  std::vector<PhotoEvent> events{
      Rig::capture(1.0, 1, photo_viewing(probe.pois()[0], 0.0)),
      Rig::capture(2.0, 2, photo_viewing(probe.pois()[0], 180.0))};
  Rig rig({{100.0, 600.0, 1, 2}}, 3, 1000.0, std::move(events), cfg);
  OurScheme scheme;
  rig.sim.run(scheme);
  // Each node still holds its own photo.
  EXPECT_EQ(rig.sim.node(1).store().size(), 1u);
  EXPECT_EQ(rig.sim.node(2).store().size(), 1u);
}

TEST(OurScheme, FullViewReachedWithEnoughViews) {
  // Twelve views tiling the circle, long contact, direct center link: the
  // center should end with the full 2*pi ring.
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  SimConfig cfg = Rig::default_config();
  cfg.node_storage_bytes = 12ULL * 4'000'000;
  cfg.sample_interval_s = 1000.0;  // make sure a sample lands after the contact
  std::vector<PhotoEvent> events;
  for (int d = 0; d < 360; d += 30)
    events.push_back(Rig::capture(1.0 + d, 1, photo_viewing(probe.pois()[0], d)));
  Rig rig({{500.0, 3600.0, 0, 1}}, 2, 5000.0, std::move(events), cfg);
  OurScheme scheme;
  const SimResult r = rig.sim.run(scheme);
  // The twelve 60-degree views overlap by half; the center needs only the
  // coverage-increasing subset (6-7 photos), and its ring must be complete.
  EXPECT_GE(r.delivered_photos, 6u);
  EXPECT_LT(r.delivered_photos, 12u);
  ASSERT_FALSE(r.samples.empty());
  EXPECT_DOUBLE_EQ(r.samples.back().full_view_coverage, 1.0);
}

TEST(OurScheme, CrashPurgesCachedEntryAndRebootGossipRepopulates) {
  // Node 1 is cached by node 2 at the first contact, then crashes (storage
  // wiped). The crash must purge node 1's entry from every cache at once —
  // not linger until the eq. (1) validity timer kills it — and node 1's own
  // cache/engine must go with the wipe. After the reboot a second contact
  // repopulates node 2's cache with a *fresh* snapshot of the post-crash
  // collection only; revision stamps must not resurrect pre-crash engine
  // state (exercised implicitly: sync_engine reconciles by revision and
  // audit()s under the audit preset).
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  SimConfig cfg = Rig::default_config();
  cfg.faults.scripted_downtime = {{1, 200.0, 400.0}};
  // Starve the payload path (6 KB per contact: nothing fits) so collections
  // never change via transfers and the snapshots are exactly the captures.
  cfg.bandwidth_bytes_per_s = 10.0;
  PhotoMeta pre = photo_viewing(probe.pois()[0], 0.0);
  PhotoMeta post = photo_viewing(probe.pois()[0], 180.0);
  std::vector<PhotoEvent> events{Rig::capture(1.0, 1, pre),
                                 Rig::capture(410.0, 1, post)};
  const PhotoId post_id = post.id;
  Rig rig({{100.0, 600.0, 1, 2}, {450.0, 600.0, 1, 2}}, 3, 1000.0,
          std::move(events), cfg);
  OurScheme scheme;
  std::vector<SimEvent> events_seen;
  rig.sim.set_event_listener([&](const SimEvent& e) { events_seen.push_back(e); });
  const SimResult r = rig.sim.run(scheme);

  EXPECT_EQ(r.counters.node_crashes, 1u);
  EXPECT_EQ(r.counters.photos_lost_to_crash, 1u);  // the pre-crash photo

  // Snapshot taken during the kNodeDown event: node 2's cached view of node
  // 1 must already be gone at crash time (we can't observe mid-run state
  // from outside, so assert on the final state plus the crash ordering).
  const MetadataCache& c2 = scheme.cache_of(2);
  ASSERT_NE(c2.find(1), nullptr);
  EXPECT_DOUBLE_EQ(c2.find(1)->observed_at, 450.0);  // post-reboot snapshot
  ASSERT_EQ(c2.find(1)->photos.size(), 1u);
  EXPECT_EQ(c2.find(1)->photos[0].id, post_id);  // pre-crash photo is gone

  // Node 1's own cache was rebuilt from scratch after the wipe.
  const MetadataCache& c1 = scheme.cache_of(1);
  ASSERT_NE(c1.find(2), nullptr);
  EXPECT_DOUBLE_EQ(c1.find(2)->observed_at, 450.0);
}

TEST(OurScheme, DownPeerEntryPurgedBeforeValidityTimerExpires) {
  // Node 3 never meets node 1 again after the crash, so nothing repopulates
  // its cache: the purge at crash time must leave it empty of node 1 even
  // though the eq. (1) timer alone would still consider the entry valid.
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  SimConfig cfg = Rig::default_config();
  cfg.faults.scripted_downtime = {{1, 200.0, 10000.0}};  // down to the horizon
  std::vector<PhotoEvent> events{
      Rig::capture(1.0, 1, photo_viewing(probe.pois()[0], 0.0))};
  Rig rig({{100.0, 600.0, 1, 3}}, 4, 1000.0, std::move(events), cfg);
  OurScheme scheme;
  rig.sim.run(scheme);
  EXPECT_EQ(scheme.cache_of(3).find(1), nullptr);
}

TEST(OurScheme, GossipLossLeavesReceiverCacheStale) {
  // Deterministic per-direction gossip loss: with gossip_loss_prob = 1 both
  // directions always drop, so no contact ever populates a cache, while the
  // payload path keeps working.
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  SimConfig cfg = Rig::default_config();
  cfg.faults.gossip_loss_prob = 1.0;
  std::vector<PhotoEvent> events{
      Rig::capture(1.0, 1, photo_viewing(probe.pois()[0], 0.0))};
  Rig rig({{100.0, 600.0, 1, 2}, {200.0, 600.0, 0, 2}}, 3, 1000.0,
          std::move(events), cfg);
  OurScheme scheme;
  const SimResult r = rig.sim.run(scheme);
  EXPECT_EQ(scheme.cache_of(2).find(1), nullptr);
  EXPECT_GE(r.counters.gossip_losses, 2u);
  // Payload still flows on the (un-severed) link even when gossip is lost.
  EXPECT_EQ(r.delivered_photos, 1u);
}

TEST(OurScheme, ShortContactStillMovesMostValuablePhotoFirst) {
  // Budget fits exactly one photo; node 1 holds a redundant clone and one
  // distinct view; the center must receive a useful photo, not a clone.
  const CoverageModel probe({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  SimConfig cfg = Rig::default_config();
  cfg.bandwidth_bytes_per_s = 4'000'000.0;  // 1 photo per second of contact
  std::vector<PhotoEvent> events{
      Rig::capture(1.0, 1, photo_viewing(probe.pois()[0], 0.0)),
      Rig::capture(2.0, 1, photo_viewing(probe.pois()[0], 1.0)),   // near-clone
      Rig::capture(3.0, 1, photo_viewing(probe.pois()[0], 180.0))};
  Rig rig({{100.0, 1.0, 0, 1}}, 2, 1000.0, std::move(events), cfg);
  OurScheme scheme;
  const SimResult r = rig.sim.run(scheme);
  EXPECT_EQ(r.delivered_photos, 1u);
  EXPECT_DOUBLE_EQ(r.final_point_norm, 1.0);
}

}  // namespace
}  // namespace photodtn
