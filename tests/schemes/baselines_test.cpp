#include <gtest/gtest.h>

#include "schemes/best_possible.h"
#include "schemes/factory.h"
#include "schemes/modified_spray.h"
#include "schemes/photonet.h"
#include "schemes/spray_and_wait.h"
#include "test_util.h"

namespace photodtn {
namespace {

using test::make_poi;
using test::photo_viewing;

CoverageModel probe_model() {
  return CoverageModel{{make_poi(0.0, 0.0)}, deg_to_rad(30.0)};
}

PhotoEvent capture(double t, NodeId node, PhotoMeta p) {
  p.taken_by = node;
  p.taken_at = t;
  return PhotoEvent{t, node, p};
}

SimConfig small_config(std::uint64_t storage_photos = 5) {
  SimConfig cfg;
  cfg.node_storage_bytes = storage_photos * 4'000'000;
  cfg.bandwidth_bytes_per_s = 2.0e6;
  cfg.sample_interval_s = 1e9;
  return cfg;
}

TEST(Factory, CreatesAllSchemes) {
  for (const char* name :
       {"OurScheme", "NoMetadata", "Spray&Wait", "ModifiedSpray", "PhotoNet",
        "BestPossible"}) {
    const auto s = make_scheme(name);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), name);
  }
  EXPECT_THROW(make_scheme("Nonsense"), std::invalid_argument);
  EXPECT_EQ(simulation_scheme_names().size(), 5u);
  EXPECT_EQ(demo_scheme_names().size(), 3u);
}

TEST(SprayAndWait, DeliversDirectlyAndViaRelay) {
  const CoverageModel model = probe_model();
  const ContactTrace trace{{{100.0, 600.0, 1, 2}, {200.0, 600.0, 0, 2}}, 3, 1000.0};
  Simulator sim(model, trace,
                {capture(1.0, 1, photo_viewing(model.pois()[0], 0.0))}, small_config());
  SprayAndWaitScheme scheme(4);
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.delivered_photos, 1u);
}

TEST(SprayAndWait, WaitPhaseBlocksFurtherSpraying) {
  // With L = 1 the source is immediately in the wait phase: a relay never
  // receives the photo; only a direct center contact delivers it.
  const CoverageModel model = probe_model();
  const ContactTrace trace{{{100.0, 600.0, 1, 2}}, 3, 1000.0};
  Simulator sim(model, trace,
                {capture(1.0, 1, photo_viewing(model.pois()[0], 0.0))}, small_config());
  SprayAndWaitScheme scheme(1);
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.transfers, 0u);
}

TEST(SprayAndWait, ContentAgnostic) {
  // An irrelevant photo is sprayed exactly like a useful one.
  const CoverageModel model = probe_model();
  const ContactTrace trace{{{100.0, 600.0, 1, 2}}, 3, 1000.0};
  Simulator sim(model, trace, {capture(1.0, 1, test::make_photo(5000.0, 5000.0, 0.0))},
                small_config());
  SprayAndWaitScheme scheme(4);
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.transfers, 1u);
}

TEST(ModifiedSpray, TransmitsHighestCoverageFirst) {
  // Budget fits one photo: the useful one must be sprayed, not the
  // irrelevant one taken earlier.
  const CoverageModel model = probe_model();
  SimConfig cfg = small_config();
  cfg.bandwidth_bytes_per_s = 4'000'000.0;
  const ContactTrace trace{{{100.0, 1.0, 1, 2}}, 3, 1000.0};
  Simulator sim(model, trace,
                {capture(1.0, 1, test::make_photo(5000.0, 5000.0, 0.0)),
                 capture(2.0, 1, photo_viewing(model.pois()[0], 0.0))},
                cfg);
  ModifiedSprayScheme scheme(4);
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.transfers, 1u);
  // The receiving node 2 must now hold the *useful* photo. We can't look
  // into node 2 after run(), but delivery at a later center contact would
  // prove it; instead assert via bytes: exactly one 4 MB photo moved.
  EXPECT_EQ(r.counters.bytes_transferred, 4'000'000u);
}

TEST(ModifiedSpray, EvictsLowestCoverageWhenFull) {
  // Receiver full of an irrelevant photo must evict it for a useful one.
  const CoverageModel model = probe_model();
  SimConfig cfg = small_config(/*storage_photos=*/1);
  const ContactTrace trace{{{100.0, 600.0, 1, 2}, {200.0, 600.0, 0, 2}}, 3, 1000.0};
  Simulator sim(model, trace,
                {capture(1.0, 1, photo_viewing(model.pois()[0], 0.0)),
                 capture(2.0, 2, test::make_photo(5000.0, 5000.0, 0.0))},
                cfg);
  ModifiedSprayScheme scheme(4);
  const SimResult r = sim.run(scheme);
  EXPECT_GE(r.counters.drops, 1u);
  EXPECT_EQ(r.delivered_photos, 1u);  // the useful photo reached the center
  EXPECT_DOUBLE_EQ(r.final_point_norm, 1.0);
}

TEST(BestPossible, RequestsUnconstrainedResources) {
  BestPossibleScheme s;
  EXPECT_TRUE(s.wants_unlimited_storage());
  EXPECT_TRUE(s.wants_unlimited_bandwidth());
}

TEST(BestPossible, IgnoresIrrelevantPhotos) {
  const CoverageModel model = probe_model();
  const ContactTrace trace{{{100.0, 1.0, 1, 2}}, 3, 1000.0};
  SimConfig cfg = small_config();
  cfg.unlimited_bandwidth = true;
  cfg.unlimited_storage = true;
  Simulator sim(model, trace, {capture(1.0, 1, test::make_photo(5000.0, 5000.0, 0.0))},
                cfg);
  BestPossibleScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.transfers, 0u);  // irrelevant photo never stored
}

TEST(BestPossible, ReplicatesEverythingUseful) {
  const CoverageModel model = probe_model();
  const ContactTrace trace{{{100.0, 1.0, 1, 2}, {200.0, 1.0, 0, 2}}, 3, 1000.0};
  SimConfig cfg = small_config();
  cfg.unlimited_bandwidth = true;
  cfg.unlimited_storage = true;
  Simulator sim(model, trace,
                {capture(1.0, 1, photo_viewing(model.pois()[0], 0.0)),
                 capture(2.0, 1, photo_viewing(model.pois()[0], 90.0)),
                 capture(3.0, 1, photo_viewing(model.pois()[0], 180.0))},
                cfg);
  BestPossibleScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.delivered_photos, 3u);
  EXPECT_DOUBLE_EQ(r.final_point_norm, 1.0);
}

TEST(PhotoNet, FeaturesDeterministicPerPhoto) {
  PhotoNetScheme s;
  const PhotoMeta p = test::make_photo(100.0, 200.0, 0.0);
  const auto f1 = s.features(p);
  const auto f2 = s.features(p);
  EXPECT_EQ(f1, f2);
  PhotoMeta q = p;
  q.id += 1;
  EXPECT_NE(s.features(q), f1);  // synthetic color differs by id
}

TEST(PhotoNet, PrefersDiversePhotos) {
  // Sender holds two photos at the same spot/time and one far away; with
  // budget for two transfers the far one must be among them.
  const CoverageModel model = probe_model();
  SimConfig cfg = small_config();
  cfg.bandwidth_bytes_per_s = 8'000'000.0;  // 2 photos in 1 s
  const ContactTrace trace{{{100.0, 1.0, 1, 2}}, 3, 1000.0};
  test::reset_photo_ids();
  PhotoMeta near1 = test::make_photo(10.0, 10.0, 0.0);
  PhotoMeta near2 = test::make_photo(11.0, 10.0, 0.0);
  PhotoMeta far = test::make_photo(5000.0, 5000.0, 0.0);
  Simulator sim(model, trace,
                {capture(1.0, 1, near1), capture(2.0, 1, near2), capture(3.0, 1, far)},
                cfg);
  PhotoNetScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.transfers, 2u);
  // First transfer is the remote-first pick; we can't observe node 2's
  // contents directly, but both near-duplicates cannot both have moved:
  // the greedy max-min picks `far` plus one of the near photos.
}

TEST(PhotoNet, EvictsLeastDiverseWhenFull) {
  // Receiver holds two near-identical photos and is full; an incoming
  // distant photo must displace one of the near-duplicates.
  const CoverageModel model = probe_model();
  SimConfig cfg = small_config(/*storage_photos=*/2);
  const ContactTrace trace{{{100.0, 600.0, 1, 2}}, 3, 1000.0};
  test::reset_photo_ids();
  PhotoMeta near1 = test::make_photo(10.0, 10.0, 0.0);
  PhotoMeta near2 = test::make_photo(12.0, 10.0, 0.0);
  PhotoMeta far = test::make_photo(4000.0, 4000.0, 0.0);
  Simulator sim(model, trace,
                {capture(1.0, 2, near1), capture(2.0, 2, near2), capture(3.0, 1, far)},
                cfg);
  PhotoNetScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.drops, 1u);
  EXPECT_TRUE(sim.node(2).store().contains(far.id));
  // Exactly one of the near-duplicates survived.
  EXPECT_NE(sim.node(2).store().contains(near1.id),
            sim.node(2).store().contains(near2.id));
}

TEST(OurSchemeVictims, EvictionPrefersPhotosNoPlanWants) {
  // Node 2 is full of irrelevant photos; node 1 brings a useful one. The
  // reallocation must evict an irrelevant photo at node 2, never the
  // incoming useful one, and never lose node 1's copy.
  const CoverageModel model = probe_model();
  SimConfig cfg = small_config(/*storage_photos=*/2);
  const ContactTrace trace{{{100.0, 600.0, 1, 2}}, 3, 1000.0};
  test::reset_photo_ids();
  const PhotoMeta useful = photo_viewing(model.pois()[0], 0.0);
  Simulator sim(model, trace,
                {capture(1.0, 1, useful),
                 capture(2.0, 2, test::make_photo(5000.0, 5000.0, 0.0)),
                 capture(3.0, 2, test::make_photo(5200.0, 5000.0, 0.0))},
                cfg);
  auto scheme = make_scheme("OurScheme");
  const SimResult r = sim.run(*scheme);
  EXPECT_TRUE(sim.node(1).store().contains(useful.id));
  EXPECT_TRUE(sim.node(2).store().contains(useful.id));
  EXPECT_GE(r.counters.drops, 1u);
}

TEST(PhotoNet, DeliversToCenter) {
  const CoverageModel model = probe_model();
  const ContactTrace trace{{{100.0, 600.0, 0, 1}}, 2, 1000.0};
  Simulator sim(model, trace,
                {capture(1.0, 1, photo_viewing(model.pois()[0], 0.0))}, small_config());
  PhotoNetScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.delivered_photos, 1u);
}

}  // namespace
}  // namespace photodtn
