#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "test_util.h"
#include "viz/coverage_scene.h"
#include "viz/svg_canvas.h"

namespace photodtn {
namespace {

using test::photo_viewing;

TEST(SvgCanvas, CoordinateTransformFlipsY) {
  const SvgCanvas c({0.0, 0.0}, {100.0, 100.0}, /*width=*/120.0, /*margin=*/10.0);
  const Vec2 origin = c.to_pixels({0.0, 0.0});
  const Vec2 top_right = c.to_pixels({100.0, 100.0});
  EXPECT_DOUBLE_EQ(origin.x, 10.0);
  EXPECT_DOUBLE_EQ(origin.y, 110.0);  // bottom-left world -> bottom-left px
  EXPECT_DOUBLE_EQ(top_right.x, 110.0);
  EXPECT_DOUBLE_EQ(top_right.y, 10.0);
}

TEST(SvgCanvas, EmitsWellFormedDocument) {
  SvgCanvas c({0.0, 0.0}, {100.0, 100.0});
  c.circle({50.0, 50.0}, 10.0, SvgStyle{});
  c.line({0.0, 0.0}, {100.0, 100.0}, SvgStyle{});
  c.text({10.0, 10.0}, "hello");
  const std::string svg = c.str();
  EXPECT_NE(svg.find("<?xml"), std::string::npos);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("hello"), std::string::npos);
  // Every opened element is self-closed or closed.
  EXPECT_EQ(svg.find("<circle cx"), svg.rfind("<circle cx"));
}

TEST(SvgCanvas, SectorAndRingProducePaths) {
  SvgCanvas c({-200.0, -200.0}, {200.0, 200.0});
  c.sector({0.0, 0.0}, 100.0, deg_to_rad(60.0), 0.0, SvgStyle{});
  ArcSet covered;
  covered.add(Arc::centered(0.0, deg_to_rad(40.0)));
  c.aspect_ring({0.0, 0.0}, 40.0, covered, 10.0, SvgStyle{});
  const std::string svg = c.str();
  EXPECT_NE(svg.find("<path"), std::string::npos);
  EXPECT_NE(svg.find(" A "), std::string::npos);  // arc commands present
}

TEST(SvgCanvas, FullRingBecomesCircle) {
  SvgCanvas c({-100.0, -100.0}, {100.0, 100.0});
  ArcSet full;
  full.add({0.0, kTwoPi});
  c.aspect_ring({0.0, 0.0}, 40.0, full, 10.0, SvgStyle{});
  EXPECT_NE(c.str().find("<circle"), std::string::npos);
}

TEST(SvgCanvas, RejectsDegenerateWorld) {
  EXPECT_THROW(SvgCanvas({0.0, 0.0}, {0.0, 10.0}), std::logic_error);
  EXPECT_THROW(SvgCanvas({0.0, 0.0}, {10.0, 10.0}, 10.0, 20.0), std::logic_error);
}

TEST(CoverageScene, RendersPhotosAndPois) {
  const CoverageModel model = test::single_poi_model(30.0);
  std::vector<PhotoMeta> photos{photo_viewing(model.pois()[0], 0.0),
                                photo_viewing(model.pois()[0], 180.0)};
  CoverageMap map(model);
  for (const auto& p : photos) map.add(model.footprint_cached(p));
  const SvgCanvas canvas = render_coverage_scene(model, photos, &map);
  const std::string svg = canvas.str();
  // Two wedges + two axis lines + PoI cross + ring segments + label.
  EXPECT_NE(svg.find("PoI 0"), std::string::npos);
  EXPECT_GE(std::count(svg.begin(), svg.end(), '\n'), 8);
}

TEST(CoverageScene, FileRoundTrip) {
  const CoverageModel model = test::single_poi_model(30.0);
  std::vector<PhotoMeta> photos{photo_viewing(model.pois()[0], 90.0)};
  const SvgCanvas canvas = render_coverage_scene(model, photos, nullptr);
  const std::string path = ::testing::TempDir() + "/photodtn_scene.svg";
  ASSERT_TRUE(canvas.write_file(path));
  std::ifstream f(path);
  std::string contents((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace photodtn
