#include "geometry/angle.h"

#include <gtest/gtest.h>

#include <cmath>

namespace photodtn {
namespace {

TEST(Angle, NormalizeIdentityInRange) {
  EXPECT_DOUBLE_EQ(normalize_angle(0.0), 0.0);
  EXPECT_DOUBLE_EQ(normalize_angle(1.5), 1.5);
}

TEST(Angle, NormalizeWrapsPositive) {
  EXPECT_NEAR(normalize_angle(kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(normalize_angle(5.0 * kTwoPi + 1.0), 1.0, 1e-12);
}

TEST(Angle, NormalizeWrapsNegative) {
  EXPECT_NEAR(normalize_angle(-0.5), kTwoPi - 0.5, 1e-12);
  EXPECT_NEAR(normalize_angle(-kTwoPi - 0.25), kTwoPi - 0.25, 1e-12);
}

TEST(Angle, NormalizeNeverReturnsTwoPi) {
  // Values just below a multiple of 2*pi can round up; result must stay
  // in [0, 2*pi).
  for (const double v : {kTwoPi, -kTwoPi, 2 * kTwoPi, std::nextafter(kTwoPi, 0.0)}) {
    const double n = normalize_angle(v);
    EXPECT_GE(n, 0.0) << v;
    EXPECT_LT(n, kTwoPi) << v;
  }
}

TEST(Angle, DistanceSymmetricAndBounded) {
  EXPECT_NEAR(angle_distance(0.1, 0.4), 0.3, 1e-12);
  EXPECT_NEAR(angle_distance(0.4, 0.1), 0.3, 1e-12);
  // Across the wrap point.
  EXPECT_NEAR(angle_distance(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  // Antipodal: exactly pi.
  EXPECT_NEAR(angle_distance(0.0, std::numbers::pi), std::numbers::pi, 1e-12);
}

TEST(Angle, DegRadRoundTrip) {
  EXPECT_NEAR(rad_to_deg(deg_to_rad(37.5)), 37.5, 1e-12);
  EXPECT_NEAR(deg_to_rad(180.0), std::numbers::pi, 1e-12);
}

class AngleDistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(AngleDistanceSweep, InvariantUnderFullRotations) {
  const double a = GetParam();
  for (const double b : {0.0, 1.0, 3.0, 6.0}) {
    const double base = angle_distance(a, b);
    EXPECT_NEAR(angle_distance(a + kTwoPi, b), base, 1e-9);
    EXPECT_NEAR(angle_distance(a, b - kTwoPi), base, 1e-9);
    EXPECT_LE(base, std::numbers::pi + 1e-12);
    EXPECT_GE(base, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Angles, AngleDistanceSweep,
                         ::testing::Values(0.0, 0.3, 1.57, 3.14, 4.0, 6.28, -2.5, 9.9));

}  // namespace
}  // namespace photodtn
