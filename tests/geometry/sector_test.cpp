#include "geometry/sector.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "geometry/angle.h"

namespace photodtn {
namespace {

TEST(Sector, ContainsPointStraightAhead) {
  const Sector s({0.0, 0.0}, 100.0, deg_to_rad(60.0), 0.0);  // looking east
  EXPECT_TRUE(s.contains({50.0, 0.0}));
  EXPECT_TRUE(s.contains({99.0, 0.0}));
  EXPECT_FALSE(s.contains({101.0, 0.0}));  // beyond range
}

TEST(Sector, RejectsPointsOutsideFov) {
  const Sector s({0.0, 0.0}, 100.0, deg_to_rad(60.0), 0.0);
  // 30 degrees half-angle: (50, 30) is at ~31 degrees.
  EXPECT_FALSE(s.contains({50.0, 31.0}));
  EXPECT_TRUE(s.contains({50.0, 27.0}));
  EXPECT_FALSE(s.contains({-10.0, 0.0}));  // behind
}

TEST(Sector, ApexIsCovered) {
  const Sector s({5.0, 5.0}, 10.0, deg_to_rad(30.0), 1.0);
  EXPECT_TRUE(s.contains({5.0, 5.0}));
}

TEST(Sector, BoundaryInclusive) {
  const Sector s({0.0, 0.0}, 100.0, deg_to_rad(90.0), 0.0);
  // Exactly on the 45-degree edge.
  EXPECT_TRUE(s.contains({50.0, 50.0}));
  // Exactly at range along the axis.
  EXPECT_TRUE(s.contains({100.0, 0.0}));
}

TEST(Sector, OrientationWrapsAcrossZero) {
  // Looking east with fov straddling the 0/2*pi seam.
  const Sector s({0.0, 0.0}, 100.0, deg_to_rad(40.0), deg_to_rad(350.0));
  EXPECT_TRUE(s.contains({80.0, -20.0}));   // ~-14 degrees
  EXPECT_TRUE(s.contains({80.0, 8.0}));     // ~+5.7 degrees, inside [330, 10]
  EXPECT_FALSE(s.contains({80.0, 40.0}));   // ~27 degrees, outside
}

TEST(Sector, AreaFormula) {
  const Sector s({0.0, 0.0}, 10.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(s.area(), 50.0);  // fov/2 * r^2
}

TEST(Sector, RejectsInvalidParameters) {
  EXPECT_THROW(Sector({0, 0}, -1.0, 1.0, 0.0), std::logic_error);
  EXPECT_THROW(Sector({0, 0}, 1.0, 0.0, 0.0), std::logic_error);
  EXPECT_THROW(Sector({0, 0}, 1.0, kTwoPi + 0.1, 0.0), std::logic_error);
}

TEST(Sector, FullCircleFovSeesAllDirections) {
  const Sector s({0.0, 0.0}, 50.0, kTwoPi, 0.0);
  EXPECT_TRUE(s.contains({-30.0, 0.0}));
  EXPECT_TRUE(s.contains({0.0, -30.0}));
  EXPECT_TRUE(s.contains({20.0, 20.0}));
  EXPECT_FALSE(s.contains({40.0, 40.0}));  // outside range
}

class SectorRotationSweep : public ::testing::TestWithParam<double> {};

TEST_P(SectorRotationSweep, ContainmentRotatesWithOrientation) {
  const double orient = deg_to_rad(GetParam());
  const Sector s({0.0, 0.0}, 100.0, deg_to_rad(50.0), orient);
  // A point 60 m along the optical axis is always inside.
  const Vec2 on_axis = Vec2::from_heading(orient) * 60.0;
  EXPECT_TRUE(s.contains(on_axis));
  // A point 60 m along the opposite direction never is.
  const Vec2 behind = Vec2::from_heading(orient + std::numbers::pi) * 60.0;
  EXPECT_FALSE(s.contains(behind));
}

INSTANTIATE_TEST_SUITE_P(Rotations, SectorRotationSweep,
                         ::testing::Values(0.0, 45.0, 90.0, 135.0, 180.0, 225.0, 270.0,
                                           315.0, 359.0));

}  // namespace
}  // namespace photodtn
