#include "geometry/vec2.h"

#include <gtest/gtest.h>

#include "geometry/angle.h"

namespace photodtn {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);  // b is CCW from a
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);
}

TEST(Vec2, NormAndDistance) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(a.distance_to({0.0, 0.0}), 5.0);
}

TEST(Vec2, NormalizedZeroVectorIsSafe) {
  const Vec2 z{0.0, 0.0};
  const Vec2 n = z.normalized();
  EXPECT_EQ(n, Vec2(1.0, 0.0));
  EXPECT_DOUBLE_EQ(z.heading(), 0.0);
}

TEST(Vec2, HeadingConventions) {
  EXPECT_NEAR(Vec2(1.0, 0.0).heading(), 0.0, 1e-12);
  EXPECT_NEAR(Vec2(0.0, 1.0).heading(), std::numbers::pi / 2.0, 1e-12);
  EXPECT_NEAR(Vec2(-1.0, 0.0).heading(), std::numbers::pi, 1e-12);
  EXPECT_NEAR(Vec2(0.0, -1.0).heading(), 3.0 * std::numbers::pi / 2.0, 1e-12);
}

TEST(Vec2, FromHeadingRoundTrip) {
  for (const double h : {0.0, 0.5, 1.5, 3.0, 5.5}) {
    const Vec2 v = Vec2::from_heading(h);
    EXPECT_NEAR(v.norm(), 1.0, 1e-12);
    EXPECT_NEAR(v.heading(), h, 1e-9);
  }
}

}  // namespace
}  // namespace photodtn
