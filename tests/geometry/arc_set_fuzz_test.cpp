// Randomized differential test: ArcSet against a dumb-but-obviously-correct
// bitmap model of the circle. Catches canonicalization, wrap, and merge
// bugs that hand-picked cases miss.
#include <gtest/gtest.h>

#include <bitset>

#include "geometry/angle.h"
#include "geometry/arc_set.h"
#include "util/rng.h"

namespace photodtn {
namespace {

constexpr int kBins = 1 << 14;  // ~0.022 degrees per bin

class BitmapCircle {
 public:
  void add(Arc arc) {
    if (arc.length <= 0.0) return;
    const double start = normalize_angle(arc.start);
    const double len = std::min(arc.length, kTwoPi);
    for (int i = 0; i < kBins; ++i) {
      const double a = (i + 0.5) * kTwoPi / kBins;
      // Is `a` within [start, start+len] on the circle?
      double rel = a - start;
      if (rel < 0.0) rel += kTwoPi;
      if (rel <= len) bits_.set(static_cast<std::size_t>(i));
    }
  }

  double measure() const {
    return static_cast<double>(bits_.count()) * kTwoPi / kBins;
  }

  bool contains(double angle) const {
    const double a = normalize_angle(angle);
    const auto i = std::min<std::size_t>(
        kBins - 1, static_cast<std::size_t>(a / kTwoPi * kBins));
    return bits_.test(i);
  }

 private:
  std::bitset<kBins> bits_;
};

TEST(ArcSetFuzz, MeasureMatchesBitmapModel) {
  Rng rng(20260704);
  const double tol = kTwoPi / kBins * 24;  // bin-resolution slack per arc
  for (int trial = 0; trial < 60; ++trial) {
    ArcSet set;
    BitmapCircle ref;
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < n; ++i) {
      const Arc arc{rng.uniform(-kTwoPi, 2.0 * kTwoPi), rng.uniform(0.0, kTwoPi)};
      set.add(arc);
      ref.add(arc);
    }
    EXPECT_NEAR(set.measure(), ref.measure(), tol) << "trial " << trial;
  }
}

TEST(ArcSetFuzz, ContainsMatchesBitmapModel) {
  Rng rng(99887766);
  for (int trial = 0; trial < 40; ++trial) {
    ArcSet set;
    BitmapCircle ref;
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < n; ++i) {
      const Arc arc{rng.uniform(0.0, kTwoPi), rng.uniform(0.05, 3.0)};
      set.add(arc);
      ref.add(arc);
    }
    int disagreements = 0;
    for (int q = 0; q < 500; ++q) {
      const double a = rng.uniform(0.0, kTwoPi);
      if (set.contains(a) != ref.contains(a)) ++disagreements;
    }
    // Disagreement is only tolerable within bin resolution of a boundary;
    // random probes land there with negligible probability.
    EXPECT_LE(disagreements, 2) << "trial " << trial;
  }
}

TEST(ArcSetFuzz, GainIsConsistentWithUnionMeasure) {
  Rng rng(555);
  for (int trial = 0; trial < 100; ++trial) {
    ArcSet set;
    const int n = static_cast<int>(rng.uniform_int(0, 10));
    for (int i = 0; i < n; ++i)
      set.add({rng.uniform(0.0, kTwoPi), rng.uniform(0.0, 2.5)});
    const Arc probe{rng.uniform(-10.0, 10.0), rng.uniform(0.0, kTwoPi)};
    ArcSet with = set;
    with.add(probe);
    EXPECT_NEAR(set.measure() + set.gain(probe), with.measure(), 1e-7)
        << "trial " << trial;
    // Gains are bounded by the probe length and never negative.
    EXPECT_GE(set.gain(probe), 0.0);
    EXPECT_LE(set.gain(probe), std::min(probe.length, kTwoPi) + 1e-9);
  }
}

TEST(ArcSetFuzz, OverlapPlusGainEqualsLength) {
  // For a non-wrapping probe: overlap_linear + gain == length.
  Rng rng(31337);
  for (int trial = 0; trial < 100; ++trial) {
    ArcSet set;
    const int n = static_cast<int>(rng.uniform_int(0, 8));
    for (int i = 0; i < n; ++i)
      set.add({rng.uniform(0.0, kTwoPi), rng.uniform(0.0, 2.0)});
    const double lo = rng.uniform(0.0, kTwoPi - 0.5);
    const double len = rng.uniform(0.0, kTwoPi - lo);
    EXPECT_NEAR(set.overlap_linear(lo, lo + len) + set.gain({lo, len}), len, 1e-7)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace photodtn
