#include "geometry/arc_set.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/angle.h"
#include "util/rng.h"

namespace photodtn {
namespace {

constexpr double kTol = 1e-9;

TEST(ArcSet, EmptyHasZeroMeasure) {
  ArcSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.measure(), 0.0);
  EXPECT_FALSE(s.contains(1.0));
  EXPECT_FALSE(s.full());
}

TEST(ArcSet, SingleArc) {
  ArcSet s;
  s.add({1.0, 0.5});
  EXPECT_NEAR(s.measure(), 0.5, kTol);
  EXPECT_TRUE(s.contains(1.25));
  EXPECT_TRUE(s.contains(1.0));   // boundary inclusive
  EXPECT_TRUE(s.contains(1.5));   // boundary inclusive
  EXPECT_FALSE(s.contains(0.9));
  EXPECT_FALSE(s.contains(1.6));
}

TEST(ArcSet, OverlappingArcsMerge) {
  ArcSet s;
  s.add({1.0, 0.5});
  s.add({1.3, 0.5});
  EXPECT_NEAR(s.measure(), 0.8, kTol);
  EXPECT_EQ(s.intervals().size(), 1u);
}

TEST(ArcSet, DisjointArcsStaySeparate) {
  ArcSet s;
  s.add({0.0, 0.5});
  s.add({2.0, 0.5});
  EXPECT_NEAR(s.measure(), 1.0, kTol);
  EXPECT_EQ(s.intervals().size(), 2u);
  EXPECT_FALSE(s.contains(1.0));
}

TEST(ArcSet, WrappingArcCoversBothSides) {
  ArcSet s;
  s.add({kTwoPi - 0.2, 0.5});  // wraps: [2*pi-0.2, 2*pi) U [0, 0.3)
  EXPECT_NEAR(s.measure(), 0.5, kTol);
  EXPECT_TRUE(s.contains(kTwoPi - 0.1));
  EXPECT_TRUE(s.contains(0.1));
  EXPECT_FALSE(s.contains(1.0));
}

TEST(ArcSet, NegativeStartNormalizes) {
  ArcSet s;
  s.add(Arc::centered(0.0, 0.25));  // [-0.25, 0.25]
  EXPECT_NEAR(s.measure(), 0.5, kTol);
  EXPECT_TRUE(s.contains(kTwoPi - 0.1));
  EXPECT_TRUE(s.contains(0.1));
}

TEST(ArcSet, FullCircle) {
  ArcSet s;
  s.add({0.3, kTwoPi});
  EXPECT_TRUE(s.full());
  EXPECT_NEAR(s.measure(), kTwoPi, kTol);
  for (const double a : {0.0, 1.0, 3.0, 6.0}) EXPECT_TRUE(s.contains(a));
}

TEST(ArcSet, ZeroLengthArcIgnored) {
  ArcSet s;
  s.add({1.0, 0.0});
  EXPECT_TRUE(s.empty());
}

TEST(ArcSet, MeasureNeverExceedsTwoPi) {
  ArcSet s;
  for (int i = 0; i < 20; ++i) s.add({i * 0.3, 1.0});
  EXPECT_LE(s.measure(), kTwoPi + kTol);
  EXPECT_TRUE(s.full());
}

TEST(ArcSet, GainOfDisjointArcIsItsLength) {
  ArcSet s;
  s.add({0.0, 0.5});
  EXPECT_NEAR(s.gain({2.0, 0.7}), 0.7, kTol);
}

TEST(ArcSet, GainOfContainedArcIsZero) {
  ArcSet s;
  s.add({1.0, 1.0});
  EXPECT_NEAR(s.gain({1.2, 0.5}), 0.0, kTol);
}

TEST(ArcSet, GainOfPartialOverlap) {
  ArcSet s;
  s.add({1.0, 1.0});  // [1, 2]
  EXPECT_NEAR(s.gain({1.5, 1.0}), 0.5, kTol);  // [1.5, 2.5] adds [2, 2.5]
}

TEST(ArcSet, GainMatchesAddDelta) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    ArcSet s;
    const int n = static_cast<int>(rng.uniform_int(0, 6));
    for (int i = 0; i < n; ++i)
      s.add({rng.uniform(0.0, kTwoPi), rng.uniform(0.0, 2.0)});
    const Arc a{rng.uniform(-kTwoPi, 2 * kTwoPi), rng.uniform(0.0, kTwoPi)};
    const double predicted = s.gain(a);
    const double before = s.measure();
    s.add(a);
    EXPECT_NEAR(s.measure() - before, predicted, 1e-7) << "trial " << trial;
  }
}

TEST(ArcSet, UniteEqualsSequentialAdds) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    ArcSet a, b, both;
    for (int i = 0; i < 4; ++i) {
      const Arc arc{rng.uniform(0.0, kTwoPi), rng.uniform(0.0, 1.5)};
      a.add(arc);
      both.add(arc);
    }
    for (int i = 0; i < 4; ++i) {
      const Arc arc{rng.uniform(0.0, kTwoPi), rng.uniform(0.0, 1.5)};
      b.add(arc);
      both.add(arc);
    }
    a.unite(b);
    EXPECT_NEAR(a.measure(), both.measure(), 1e-9);
  }
}

TEST(ArcSet, OverlapLinearBasics) {
  ArcSet s;
  s.add({1.0, 1.0});  // [1, 2]
  EXPECT_NEAR(s.overlap_linear(0.0, 3.0), 1.0, kTol);
  EXPECT_NEAR(s.overlap_linear(1.5, 3.0), 0.5, kTol);
  EXPECT_NEAR(s.overlap_linear(0.0, 0.5), 0.0, kTol);
  EXPECT_NEAR(s.overlap_linear(1.2, 1.4), 0.2, kTol);
}

TEST(ArcSet, BoundariesSortedAndNormalized) {
  ArcSet s;
  s.add({5.5, 1.5});  // wraps
  s.add({2.0, 0.5});
  const auto b = s.boundaries();
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  for (const double v : b) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, kTwoPi);
  }
}

TEST(ArcSet, ContainmentConsistentWithMeasureViaSampling) {
  // Property: measure == integral of the indicator function (within grid
  // resolution) for random sets.
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    ArcSet s;
    const int n = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < n; ++i)
      s.add({rng.uniform(0.0, kTwoPi), rng.uniform(0.1, 2.0)});
    const int grid = 3000;
    int covered = 0;
    for (int g = 0; g < grid; ++g)
      if (s.contains((g + 0.5) * kTwoPi / grid)) ++covered;
    const double sampled = covered * kTwoPi / grid;
    EXPECT_NEAR(sampled, s.measure(), kTwoPi / grid * n * 2 + 1e-6) << trial;
  }
}

struct ArcCase {
  double center_deg;
  double half_width_deg;
};

class ArcCenteredSweep : public ::testing::TestWithParam<ArcCase> {};

TEST_P(ArcCenteredSweep, CenteredArcContainsCenterAndHasWidth) {
  const auto [center_deg, half_deg] = GetParam();
  const double c = deg_to_rad(center_deg);
  const double h = deg_to_rad(half_deg);
  ArcSet s;
  s.add(Arc::centered(c, h));
  EXPECT_TRUE(s.contains(c));
  EXPECT_TRUE(s.contains(c + h * 0.99));
  EXPECT_TRUE(s.contains(c - h * 0.99));
  if (2 * h < kTwoPi - 1e-6) {
    EXPECT_FALSE(s.contains(c + h + 0.01));
  }
  EXPECT_NEAR(s.measure(), std::min(2 * h, kTwoPi), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Arcs, ArcCenteredSweep,
                         ::testing::Values(ArcCase{0.0, 30.0}, ArcCase{90.0, 30.0},
                                           ArcCase{180.0, 45.0}, ArcCase{359.0, 30.0},
                                           ArcCase{5.0, 40.0}, ArcCase{270.0, 90.0},
                                           ArcCase{45.0, 180.0}));

TEST(ArcSetAudit, HoldsUnderRandomAddsAndUnions) {
  // Property: after any sequence of adds (including wrapping and tiny arcs)
  // the canonical form stays sorted, disjoint, normalized, and bounded by the
  // circle — the invariants audit() asserts.
  Rng rng(20260806);
  for (int rep = 0; rep < 50; ++rep) {
    ArcSet s;
    for (int i = 0; i < 40; ++i) {
      const double start = rng.uniform(-10.0, 10.0);  // any finite start
      const double length = rng.bernoulli(0.1) ? rng.uniform(0.0, 1e-11)
                                               : rng.uniform(0.0, kTwoPi * 1.2);
      s.add(Arc{start, length});
      ASSERT_NO_THROW(s.audit());
    }
    ArcSet other;
    for (int i = 0; i < 10; ++i)
      other.add(Arc::centered(rng.uniform(0.0, kTwoPi), rng.uniform(0.0, 1.5)));
    s.unite(other);
    ASSERT_NO_THROW(s.audit());
    ASSERT_NO_THROW(other.audit());
  }
}

TEST(ArcSetAudit, EmptyAndFullSetsPass) {
  ArcSet empty;
  EXPECT_NO_THROW(empty.audit());
  ArcSet full;
  full.add(Arc{0.3, kTwoPi + 1.0});
  EXPECT_TRUE(full.full());
  EXPECT_NO_THROW(full.audit());
}

}  // namespace
}  // namespace photodtn
