#include "test_util.h"

namespace photodtn::test {

namespace {
PhotoId g_next_id = 1;
}

void reset_photo_ids(PhotoId next) { g_next_id = next; }

PhotoMeta make_photo(double x, double y, double orientation_deg, double range,
                     double fov_deg, PhotoId id, NodeId taken_by, std::uint64_t size,
                     double taken_at) {
  PhotoMeta p;
  p.id = id == 0 ? g_next_id++ : id;
  p.taken_by = taken_by;
  p.location = {x, y};
  p.range = range;
  p.fov = deg_to_rad(fov_deg);
  p.orientation = deg_to_rad(orientation_deg);
  p.size_bytes = size;
  p.taken_at = taken_at;
  return p;
}

PointOfInterest make_poi(double x, double y, std::int32_t id, double weight) {
  PointOfInterest poi;
  poi.id = id;
  poi.location = {x, y};
  poi.weight = weight;
  return poi;
}

PhotoMeta photo_viewing(const PointOfInterest& poi, double from_direction_deg,
                        double dist, double fov_deg, double range) {
  const double dir = deg_to_rad(from_direction_deg);
  const Vec2 cam = poi.location + Vec2::from_heading(dir) * dist;
  // The camera looks back toward the PoI: opposite of `dir`.
  const double look = rad_to_deg(normalize_angle(dir + std::numbers::pi));
  return make_photo(cam.x, cam.y, look, range, fov_deg);
}

CoverageModel single_poi_model(double theta_deg, double weight) {
  return CoverageModel{{make_poi(0.0, 0.0, 0, weight)}, deg_to_rad(theta_deg)};
}

}  // namespace photodtn::test
