// Golden end-to-end regression: a fixed-seed tiny experiment for OurScheme
// and Epidemic, serialized key=value and compared against a checked-in
// golden file. Any change to the selection engine, the simulator loop, or
// the schemes that alters observable behavior shows up as a diff here —
// floating-point keys compare with 1e-9 relative tolerance so pure
// summation-order dust does not trip it.
//
// Regenerate after an *intended* behavior change with
//   PHOTODTN_REGEN_GOLDEN=1 ./photodtn_tests --gtest_filter='GoldenExperiment.*'
// and review the golden diff like any other code change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.h"

#ifndef PHOTODTN_TEST_SOURCE_DIR
#error "PHOTODTN_TEST_SOURCE_DIR must point at the tests/ source directory"
#endif

namespace photodtn {
namespace {

const char* golden_path() {
  return PHOTODTN_TEST_SOURCE_DIR "/integration/golden/experiment_golden.txt";
}

ExperimentSpec golden_spec(const std::string& scheme) {
  ExperimentSpec spec;
  spec.scenario = ScenarioConfig::mit(1);
  spec.scenario.num_pois = 24;
  spec.scenario.photo_rate_per_hour = 60.0;
  spec.scenario.trace.num_participants = 10;
  spec.scenario.trace.duration_s = 20.0 * 3600.0;
  spec.scenario.trace.base_pair_rate_per_hour = 0.3;
  spec.scenario.sim.sample_interval_s = 5.0 * 3600.0;
  spec.scenario.sim.node_storage_bytes = 40'000'000;  // 10 photos
  spec.scheme = scheme;
  return spec;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The fixed disruption plan for the faulted golden runs: every fault class
/// active at once (interruptions, churn, jitter, gossip loss) so a behavior
/// change anywhere in the fault layer shows up as a diff.
FaultConfig golden_fault_plan() {
  FaultConfig f;
  f.contact_interrupt_prob = 0.25;
  f.interrupt_fraction_min = 0.2;
  f.interrupt_fraction_max = 0.9;
  f.crash_rate_per_hour = 0.05;
  f.mean_downtime_s = 2.0 * 3600.0;
  f.bandwidth_jitter = 0.3;
  f.gossip_loss_prob = 0.15;
  return f;
}

/// Ordered key=value serialization of the golden runs: each scheme once
/// clean and once under golden_fault_plan() (key prefix "<scheme>@faults").
std::vector<std::pair<std::string, std::string>> compute_lines() {
  std::vector<std::pair<std::string, std::string>> lines;
  for (const bool faulted : {false, true}) {
  for (const std::string scheme : {"OurScheme", "Epidemic"}) {
    ExperimentSpec spec = golden_spec(scheme);
    if (faulted) spec.scenario.sim.faults = golden_fault_plan();
    const SimResult r = run_single(spec, 42);
    const std::string prefix = faulted ? scheme + "@faults" : scheme;
    auto put = [&](const std::string& key, const std::string& val) {
      lines.emplace_back(prefix + "." + key, val);
    };
    put("final_point", fmt(r.final_coverage.point));
    put("final_aspect", fmt(r.final_coverage.aspect));
    put("final_point_norm", fmt(r.final_point_norm));
    put("final_aspect_norm", fmt(r.final_aspect_norm));
    put("delivered_photos", std::to_string(r.delivered_photos));
    put("contacts", std::to_string(r.counters.contacts));
    put("photos_taken", std::to_string(r.counters.photos_taken));
    put("transfers", std::to_string(r.counters.transfers));
    put("bytes_transferred", std::to_string(r.counters.bytes_transferred));
    put("drops", std::to_string(r.counters.drops));
    put("samples", std::to_string(r.samples.size()));
    for (std::size_t i = 0; i < r.samples.size(); ++i) {
      const std::string p = "sample" + std::to_string(i) + ".";
      put(p + "time", fmt(r.samples[i].time));
      put(p + "point", fmt(r.samples[i].point_coverage));
      put(p + "aspect", fmt(r.samples[i].aspect_coverage));
      put(p + "delivered", std::to_string(r.samples[i].delivered_photos));
    }
    if (faulted) {
      // The realized disruption is part of the faulted contract: any drift
      // in the injector's sampling or the partial-transfer semantics moves
      // these before it moves coverage.
      put("interrupted_contacts", std::to_string(r.counters.interrupted_contacts));
      put("interrupted_transfers", std::to_string(r.counters.interrupted_transfers));
      put("partial_bytes", std::to_string(r.counters.partial_bytes));
      put("missed_contacts", std::to_string(r.counters.missed_contacts));
      put("node_crashes", std::to_string(r.counters.node_crashes));
      put("photos_missed_down", std::to_string(r.counters.photos_missed_down));
      put("gossip_losses", std::to_string(r.counters.gossip_losses));
    }
    // The delivery order itself is part of the contract (selection order
    // drives transmissions); record a digest rather than every id.
    std::uint64_t order_digest = 1469598103934665603ULL;  // FNV-1a
    for (const PhotoId id : r.delivered_ids) {
      order_digest ^= static_cast<std::uint64_t>(id);
      order_digest *= 1099511628211ULL;
    }
    put("delivery_order_digest", std::to_string(order_digest));
  }
  }
  return lines;
}

bool is_float_key(const std::string& key) {
  return key.find("point") != std::string::npos ||
         key.find("aspect") != std::string::npos ||
         key.find("time") != std::string::npos;
}

TEST(GoldenExperiment, MatchesCheckedInGolden) {
  const auto lines = compute_lines();

  if (const char* regen = std::getenv("PHOTODTN_REGEN_GOLDEN");
      regen != nullptr && std::string(regen) == "1") {
    std::ofstream out(golden_path(), std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << "# Golden results for GoldenExperiment.MatchesCheckedInGolden.\n"
        << "# Regenerate with PHOTODTN_REGEN_GOLDEN=1 (see the test header).\n";
    for (const auto& [key, val] : lines) out << key << "=" << val << "\n";
    GTEST_SKIP() << "golden regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in) << "missing golden file " << golden_path()
                  << " — run with PHOTODTN_REGEN_GOLDEN=1 to create it";
  std::map<std::string, std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    ASSERT_NE(eq, std::string::npos) << "malformed golden line: " << line;
    golden.emplace(line.substr(0, eq), line.substr(eq + 1));
  }
  EXPECT_EQ(golden.size(), lines.size()) << "golden key set drifted — regenerate";

  for (const auto& [key, val] : lines) {
    const auto it = golden.find(key);
    ASSERT_NE(it, golden.end()) << "key missing from golden: " << key;
    if (is_float_key(key)) {
      const double want = std::strtod(it->second.c_str(), nullptr);
      const double got = std::strtod(val.c_str(), nullptr);
      EXPECT_NEAR(got, want, 1e-9 * std::max(1.0, std::fabs(want))) << key;
    } else {
      EXPECT_EQ(val, it->second) << key;
    }
  }
}

}  // namespace
}  // namespace photodtn
