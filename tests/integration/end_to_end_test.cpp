// End-to-end properties of the full pipeline on a small but non-trivial
// scenario: the qualitative claims of Section V must hold (scheme ordering,
// resource-constraint effects, conservation invariants).
#include <gtest/gtest.h>

#include "schemes/factory.h"
#include "sim/experiment.h"

namespace photodtn {
namespace {

ExperimentSpec scenario(std::size_t runs = 3) {
  ExperimentSpec spec;
  spec.scenario = ScenarioConfig::mit(1);
  spec.scenario.num_pois = 60;
  spec.scenario.photo_rate_per_hour = 120.0;
  spec.scenario.trace.num_participants = 24;
  spec.scenario.trace.duration_s = 40.0 * 3600.0;
  spec.scenario.trace.base_pair_rate_per_hour = 0.25;
  spec.scenario.trace.team_size = 6;
  spec.scenario.trace.gateway_fraction = 0.1;
  spec.scenario.trace.gateway_mean_interval_s = 2.0 * 3600.0;
  spec.scenario.sim.node_storage_bytes = 48'000'000;  // 12 photos
  spec.scenario.sim.sample_interval_s = 4.0 * 3600.0;
  spec.runs = runs;
  return spec;
}

ExperimentResult run_scheme(const std::string& name, std::size_t runs = 3) {
  ExperimentSpec spec = scenario(runs);
  spec.scheme = name;
  return run_experiment(spec);
}

TEST(EndToEnd, SchemeOrderingMatchesFigureFive) {
  const ExperimentResult best = run_scheme("BestPossible");
  const ExperimentResult ours = run_scheme("OurScheme");
  const ExperimentResult spray = run_scheme("Spray&Wait");

  // BestPossible is the upper bound.
  EXPECT_GE(best.final_point.mean() + 1e-9, ours.final_point.mean());
  EXPECT_GE(best.final_aspect.mean() + 1e-9, ours.final_aspect.mean());
  // Ours clearly beats the content-agnostic baseline on aspect coverage.
  EXPECT_GT(ours.final_aspect.mean(), spray.final_aspect.mean());
  EXPECT_GE(ours.final_point.mean(), spray.final_point.mean());
}

TEST(EndToEnd, OursDeliversFarFewerPhotosThanFlooding) {
  const ExperimentResult ours = run_scheme("OurScheme");
  const ExperimentResult best = run_scheme("BestPossible");
  const ExperimentResult spray = run_scheme("Spray&Wait");
  // Ours can never deliver more distinct photos than the unconstrained
  // flooding bound (it delivers a subset: only coverage-increasing ones).
  EXPECT_LE(ours.final_delivered.mean(), best.final_delivered.mean() + 1e-9);
  // Fig. 7(c): content-agnostic routing ships piles of irrelevant photos;
  // coverage-aware selection delivers far fewer.
  EXPECT_LT(ours.final_delivered.mean(), 0.5 * spray.final_delivered.mean());
}

TEST(EndToEnd, MoreStorageNeverHurtsOurScheme) {
  ExperimentSpec small = scenario();
  small.scheme = "OurScheme";
  small.scenario.sim.node_storage_bytes = 12'000'000;  // 3 photos
  ExperimentSpec large = small;
  large.scenario.sim.node_storage_bytes = 96'000'000;  // 24 photos
  const ExperimentResult rs = run_experiment(small);
  const ExperimentResult rl = run_experiment(large);
  // Fig. 7 trend (allow tiny noise from greedy tie-breaks).
  EXPECT_GE(rl.final_aspect.mean() * 1.1 + 1e-6, rs.final_aspect.mean());
}

TEST(EndToEnd, ShortContactsDegradeGracefully) {
  ExperimentSpec full = scenario();
  full.scheme = "OurScheme";
  ExperimentSpec mid = full;
  mid.max_contact_duration_s = 120.0;
  ExperimentSpec tiny = full;
  // Below one photo per contact: only direct captures at gateways can ever
  // reach the center.
  tiny.max_contact_duration_s = 1.0;
  const double f = run_experiment(full).final_aspect.mean();
  const double m = run_experiment(mid).final_aspect.mean();
  const double t = run_experiment(tiny).final_aspect.mean();
  // Fig. 6 shape: mild loss at moderate truncation, large loss at extreme.
  EXPECT_LE(t, m + 1e-9);
  EXPECT_LE(m, f + 1e-9);
  EXPECT_LT(t, 0.9 * f + 1e-9);
}

TEST(EndToEnd, CoverageCurvesAreMonotone) {
  for (const std::string& name : simulation_scheme_names()) {
    ExperimentSpec spec = scenario(1);
    spec.scheme = name;
    const ExperimentResult r = run_experiment(spec);
    const auto pt = r.point.means();
    const auto as = r.aspect.means();
    for (std::size_t i = 1; i < pt.size(); ++i) {
      EXPECT_GE(pt[i] + 1e-12, pt[i - 1]) << name;
      EXPECT_GE(as[i] + 1e-12, as[i - 1]) << name;
    }
  }
}

/// The qualitative ordering must hold on both Table I trace presets, not
/// just the MIT-like default the other tests use.
class TracePresetSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(TracePresetSweep, OrderingHoldsOnBothTraces) {
  const bool cambridge = std::string(GetParam()) == "cambridge";
  ExperimentSpec spec;
  spec.scenario = cambridge ? ScenarioConfig::cambridge(1) : ScenarioConfig::mit(1);
  spec.scenario.num_pois = 50;
  spec.scenario.photo_rate_per_hour = 100.0;
  spec.scenario.trace.num_participants = 20;
  spec.scenario.trace.duration_s = 30.0 * 3600.0;
  spec.scenario.trace.base_pair_rate_per_hour = 0.3;
  spec.scenario.trace.gateway_fraction = 0.1;
  spec.scenario.trace.gateway_mean_interval_s = 2.0 * 3600.0;
  spec.scenario.sim.node_storage_bytes = 40'000'000;
  spec.scenario.sim.sample_interval_s = 6.0 * 3600.0;
  spec.runs = 2;

  auto final_aspect = [&](const char* scheme) {
    ExperimentSpec s = spec;
    s.scheme = scheme;
    return run_experiment(s).final_aspect.mean();
  };
  const double best = final_aspect("BestPossible");
  const double ours = final_aspect("OurScheme");
  const double spray = final_aspect("Spray&Wait");
  EXPECT_GE(best + 1e-9, ours) << GetParam();
  EXPECT_GT(ours, spray) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Traces, TracePresetSweep, ::testing::Values("mit", "cambridge"));

TEST(EndToEnd, NoMetadataUnderperformsFullScheme) {
  const ExperimentResult ours = run_scheme("OurScheme", 4);
  const ExperimentResult nometa = run_scheme("NoMetadata", 4);
  // The ablation shouldn't beat the full scheme by any meaningful margin
  // (Fig. 5 shows it strictly below; small scenarios are noisier).
  EXPECT_LE(nometa.final_aspect.mean(), ours.final_aspect.mean() * 1.05 + 1e-6);
}

}  // namespace
}  // namespace photodtn
