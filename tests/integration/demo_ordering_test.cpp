// Regression net for the Section IV demo claim: under the prototype's
// constraints (one target, <=3 photos per contact, <=5 stored, 4 mule
// visits), our scheme must beat both demo baselines on target aspect
// coverage while delivering no more photos.
#include <gtest/gtest.h>

#include "dtn/simulator.h"
#include "geometry/angle.h"
#include "schemes/factory.h"
#include "test_util.h"
#include "util/rng.h"

namespace photodtn {
namespace {

struct DemoOutcome {
  std::uint64_t delivered = 0;
  double aspect_deg = 0.0;
};

DemoOutcome run_demo(const std::string& scheme_name, std::uint64_t seed) {
  Rng rng(seed);
  // Contacts: learning prefix + 48 demo contacts with 4 center visits.
  std::vector<Contact> contacts;
  const double history_h = 150.0;
  for (int i = 0; i < 150; ++i) {
    const double t = rng.uniform(0.0, history_h * 3600.0);
    NodeId a = 0, b = 0;
    if (i % 15 == 0) {
      b = static_cast<NodeId>(rng.uniform_int(1, 2));
    } else {
      a = static_cast<NodeId>(rng.uniform_int(1, 8));
      do {
        b = static_cast<NodeId>(rng.uniform_int(1, 8));
      } while (b == a);
    }
    contacts.push_back(Contact{t, 600.0, a, b});
  }
  int mule = 0;
  for (int i = 0; i < 48; ++i) {
    const double t = (history_h + 1.0 + i) * 3600.0;
    NodeId a = 0, b = 0;
    if (mule < 4 && i % 12 == 10) {
      b = static_cast<NodeId>(rng.uniform_int(1, 2));
      ++mule;
    } else {
      a = static_cast<NodeId>(rng.uniform_int(1, 8));
      do {
        b = static_cast<NodeId>(rng.uniform_int(1, 8));
      } while (b == a);
    }
    contacts.push_back(Contact{t, 600.0, a, b});
  }
  const ContactTrace trace{std::move(contacts), 9, (history_h + 50.0) * 3600.0};

  // 40 photos, 5 per participant, roughly half framing the target.
  const Vec2 church{0.0, 0.0};
  const CoverageModel model({PointOfInterest{0, church, 1.0, nullptr}}, deg_to_rad(40.0));
  std::vector<PhotoEvent> events;
  PhotoId id = 1;
  const double t0 = history_h * 3600.0;
  for (NodeId node = 1; node <= 8; ++node) {
    for (int k = 0; k < 5; ++k) {
      PhotoMeta p;
      p.id = id++;
      p.taken_by = node;
      p.taken_at = t0;
      p.size_bytes = 4'000'000;
      p.fov = deg_to_rad(rng.uniform(40.0, 60.0));
      p.range = 200.0;
      if (rng.bernoulli(0.5)) {
        const double dir = rng.uniform(0.0, kTwoPi);
        p.location = church + Vec2::from_heading(dir) * rng.uniform(60.0, 150.0);
        p.orientation = normalize_angle(dir + std::numbers::pi);
      } else {
        p.location = church + Vec2{rng.uniform(400.0, 900.0), rng.uniform(400.0, 900.0)};
        p.orientation = rng.uniform(0.0, kTwoPi);
      }
      events.push_back(PhotoEvent{t0, node, p});
    }
  }

  SimConfig cfg;
  cfg.node_storage_bytes = 5ULL * 4'000'000;
  cfg.bandwidth_bytes_per_s = 3.0 * 4'000'000.0 / 600.0;
  cfg.sample_interval_s = 1e9;
  Simulator sim(model, trace, std::move(events), cfg);
  auto scheme = make_scheme(scheme_name);
  const SimResult r = sim.run(*scheme);
  return {r.delivered_photos, rad_to_deg(r.final_coverage.aspect)};
}

TEST(DemoOrdering, OurSchemeBeatsBaselinesOnTargetAspect) {
  // Average three seeds to keep the assertion robust to layout luck.
  double ours = 0.0, photonet = 0.0, spray = 0.0;
  double ours_n = 0.0, spray_n = 0.0;
  for (const std::uint64_t seed : {7ull, 8ull, 9ull}) {
    const DemoOutcome o = run_demo("OurScheme", seed);
    const DemoOutcome p = run_demo("PhotoNet", seed);
    const DemoOutcome s = run_demo("Spray&Wait", seed);
    ours += o.aspect_deg;
    photonet += p.aspect_deg;
    spray += s.aspect_deg;
    ours_n += static_cast<double>(o.delivered);
    spray_n += static_cast<double>(s.delivered);
  }
  // Paper: 346 deg vs 160/171 deg. Require a decisive margin, not equality.
  EXPECT_GT(ours, 1.3 * photonet);
  EXPECT_GT(ours, 1.2 * spray);
  // And no more photos delivered than the content-blind baseline.
  EXPECT_LE(ours_n, spray_n + 1e-9);
}

}  // namespace
}  // namespace photodtn
