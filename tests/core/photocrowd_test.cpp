#include "core/photocrowd.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace photodtn {
namespace {

using test::make_poi;
using test::photo_viewing;

PhotoCrowdTask simple_task() {
  return PhotoCrowdTask{{make_poi(0.0, 0.0, 0), make_poi(2000.0, 0.0, 1)},
                        deg_to_rad(30.0), 48.0 * 3600.0};
}

TEST(PhotoCrowdTask, CoverageOfCollection) {
  const PhotoCrowdTask task = simple_task();
  std::vector<PhotoMeta> photos{photo_viewing(task.model().pois()[0], 0.0),
                                photo_viewing(task.model().pois()[0], 180.0)};
  const CoverageValue c = task.coverage(photos);
  EXPECT_DOUBLE_EQ(c.point, 1.0);
  EXPECT_NEAR(c.aspect, deg_to_rad(120.0), 1e-9);
  const auto [pt, as] = task.normalized_coverage(photos);
  EXPECT_DOUBLE_EQ(pt, 0.5);  // 1 of 2 PoIs
  EXPECT_NEAR(as, deg_to_rad(60.0), 1e-9);
}

TEST(PhotoCrowdTask, RelevanceFilter) {
  const PhotoCrowdTask task = simple_task();
  EXPECT_TRUE(task.is_relevant(photo_viewing(task.model().pois()[1], 90.0)));
  EXPECT_FALSE(task.is_relevant(test::make_photo(4000.0, 4000.0, 0.0)));
  EXPECT_DOUBLE_EQ(task.deadline(), 48.0 * 3600.0);
}

TEST(DeviceAgent, SelectStorageKeepsValuablePhotos) {
  const PhotoCrowdTask task = simple_task();
  DeviceAgent agent(task, /*self=*/1, /*storage=*/2 * 4'000'000);
  test::reset_photo_ids();
  std::vector<PhotoMeta> pool{
      photo_viewing(task.model().pois()[0], 0.0),
      photo_viewing(task.model().pois()[0], 1.0),    // near-duplicate
      photo_viewing(task.model().pois()[1], 90.0)};  // second PoI
  const auto keep = agent.select_storage(pool, 0.5, /*now=*/0.0);
  ASSERT_EQ(keep.size(), 2u);
  // Must keep one photo per PoI, not the duplicate pair.
  EXPECT_NE(std::find(keep.begin(), keep.end(), pool[2].id), keep.end());
}

TEST(DeviceAgent, LearnedCenterMetadataActsAsAck) {
  const PhotoCrowdTask task = simple_task();
  DeviceAgent agent(task, 1, 10 * 4'000'000);
  const PhotoMeta view = photo_viewing(task.model().pois()[0], 0.0);
  MetadataEntry center;
  center.owner = kCommandCenter;
  center.photos = {view};
  center.observed_at = 10.0;
  agent.learn_metadata(center);
  // The same view is now worthless; a distinct view is still selected.
  PhotoMeta other = photo_viewing(task.model().pois()[0], 180.0);
  const auto keep = agent.select_storage(std::vector<PhotoMeta>{view, other}, 0.9, 20.0);
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(keep[0], other.id);
}

TEST(DeviceAgent, RefusesOwnMetadata) {
  const PhotoCrowdTask task = simple_task();
  DeviceAgent agent(task, 1, 4'000'000);
  MetadataEntry self_entry;
  self_entry.owner = 1;
  EXPECT_THROW(agent.learn_metadata(self_entry), std::logic_error);
}

TEST(DeviceAgent, PlanContactSplitsViewsAcrossPeers) {
  const PhotoCrowdTask task = simple_task();
  DeviceAgent agent(task, 1, 2 * 4'000'000);
  test::reset_photo_ids();
  const PhotoMeta mine = photo_viewing(task.model().pois()[0], 0.0);
  const PhotoMeta theirs1 = photo_viewing(task.model().pois()[0], 180.0);
  const PhotoMeta theirs2 = photo_viewing(task.model().pois()[1], 0.0);
  PeerView peer;
  peer.id = 2;
  peer.delivery_prob = 0.2;
  peer.photos = {theirs1, theirs2};
  peer.storage_bytes = 2 * 4'000'000;
  const ContactDecision d =
      agent.plan_contact(std::vector<PhotoMeta>{mine}, /*own_p=*/0.8, peer, 0.0);
  EXPECT_EQ(d.keep_in_order.size(), 2u);
  // Everything we keep that we don't own must be fetched.
  for (const PhotoId id : d.fetch_from_peer)
    EXPECT_NE(std::find(d.keep_in_order.begin(), d.keep_in_order.end(), id),
              d.keep_in_order.end());
  EXPECT_FALSE(d.fetch_from_peer.empty());
}

TEST(DeviceAgent, CacheValidityExpires) {
  const PhotoCrowdTask task = simple_task();
  DeviceAgent agent(task, 1, 4'000'000, /*p_thld=*/0.8);
  MetadataEntry e;
  e.owner = 2;
  e.observed_at = 0.0;
  e.lambda = 0.01;  // invalid after ~161 s
  e.delivery_prob = 0.9;
  e.photos = {photo_viewing(task.model().pois()[0], 0.0)};
  agent.learn_metadata(e);
  EXPECT_EQ(agent.cache().valid_entries(100.0).size(), 1u);
  EXPECT_TRUE(agent.cache().valid_entries(500.0).empty());
}

}  // namespace
}  // namespace photodtn
