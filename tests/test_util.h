// Shared builders for tests: compact ways to make photos, PoIs, traces and
// small simulations with known geometry.
#pragma once

#include <vector>

#include "coverage/coverage_model.h"
#include "coverage/photo.h"
#include "coverage/poi.h"
#include "geometry/angle.h"
#include "trace/contact_trace.h"

namespace photodtn::test {

/// A photo at (x, y) looking along `orientation_deg` with the given range
/// and field-of-view (degrees). Ids auto-increment unless specified.
PhotoMeta make_photo(double x, double y, double orientation_deg, double range = 200.0,
                     double fov_deg = 60.0, PhotoId id = 0, NodeId taken_by = 1,
                     std::uint64_t size = 4'000'000, double taken_at = 0.0);

/// Resets the auto-increment id counter (call in SetUp when ids matter).
void reset_photo_ids(PhotoId next = 1);

/// A PoI at (x, y) with the given id/weight.
PointOfInterest make_poi(double x, double y, std::int32_t id = 0, double weight = 1.0);

/// A photo placed `dist` meters from `poi` in compass direction
/// `from_direction_deg` (0 = east of the PoI), looking straight at the PoI.
/// Such a photo covers the PoI's aspect arc centered at `from_direction_deg`.
PhotoMeta photo_viewing(const PointOfInterest& poi, double from_direction_deg,
                        double dist = 100.0, double fov_deg = 60.0, double range = 200.0);

/// Model over a single PoI at the origin with theta (degrees).
CoverageModel single_poi_model(double theta_deg = 30.0, double weight = 1.0);

}  // namespace photodtn::test
