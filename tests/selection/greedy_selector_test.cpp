#include "selection/greedy_selector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "test_util.h"
#include "util/rng.h"

namespace photodtn {
namespace {

using test::make_poi;
using test::photo_viewing;

/// Effectively unlimited storage for tests that exercise value, not space.
constexpr std::uint64_t kBigCap = ~0ULL;

std::uint64_t bytes_of(const std::vector<PhotoMeta>& pool,
                       const std::vector<PhotoId>& chosen) {
  std::uint64_t total = 0;
  for (const PhotoId id : chosen)
    for (const PhotoMeta& p : pool)
      if (p.id == id) total += p.size_bytes;
  return total;
}

TEST(GreedySelector, PicksDiverseViewsOverRedundantOnes) {
  // Pool: three near-identical views of the PoI plus one opposite view.
  // With capacity for two photos, greedy must take one of the clones and
  // the opposite view — individual-utility ranking would take two clones.
  const CoverageModel model = test::single_poi_model(30.0);
  test::reset_photo_ids();
  std::vector<PhotoMeta> pool{
      photo_viewing(model.pois()[0], 0.0), photo_viewing(model.pois()[0], 2.0),
      photo_viewing(model.pois()[0], 4.0), photo_viewing(model.pois()[0], 180.0)};
  SelectionEnvironment env(model, {});
  GreedyPhase phase(env, 1.0);
  const GreedySelector sel;
  const auto chosen = sel.select(model, pool, 2 * 4'000'000, phase);
  ASSERT_EQ(chosen.size(), 2u);
  const PhotoId opposite = pool[3].id;
  EXPECT_NE(std::find(chosen.begin(), chosen.end(), opposite), chosen.end());
}

TEST(GreedySelector, RespectsCapacity) {
  const CoverageModel model = test::single_poi_model(30.0);
  std::vector<PhotoMeta> pool;
  for (int d = 0; d < 360; d += 30) pool.push_back(photo_viewing(model.pois()[0], d));
  SelectionEnvironment env(model, {});
  GreedyPhase phase(env, 1.0);
  const GreedySelector sel;
  const auto chosen = sel.select(model, pool, 3 * 4'000'000, phase);
  EXPECT_EQ(chosen.size(), 3u);
  EXPECT_LE(bytes_of(pool, chosen), 3ull * 4'000'000);
}

TEST(GreedySelector, StopsWhenNoMoreBenefit) {
  // Two identical photos: only one has positive gain.
  const CoverageModel model = test::single_poi_model(30.0);
  const PhotoMeta a = photo_viewing(model.pois()[0], 0.0);
  PhotoMeta b = a;
  b.id = a.id + 1000;
  SelectionEnvironment env(model, {});
  GreedyPhase phase(env, 1.0);
  const GreedySelector sel;
  const auto chosen = sel.select(model, std::vector<PhotoMeta>{a, b},
                                 kBigCap, phase);
  EXPECT_EQ(chosen.size(), 1u);
}

TEST(GreedySelector, IgnoresIrrelevantPhotos) {
  const CoverageModel model = test::single_poi_model(30.0);
  test::reset_photo_ids();
  const PhotoMeta useful = photo_viewing(model.pois()[0], 0.0);
  const PhotoMeta useless = test::make_photo(5000.0, 5000.0, 0.0);
  SelectionEnvironment env(model, {});
  GreedyPhase phase(env, 1.0);
  const GreedySelector sel;
  const auto chosen =
      sel.select(model, std::vector<PhotoMeta>{useless, useful}, kBigCap, phase);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0], useful.id);
}

TEST(GreedySelector, SelectionOrderIsByMarginalValue) {
  // First pick must be the photo covering a *new* PoI even if another photo
  // has a wider arc on an already-covered PoI — point dominates (Def. 1).
  const PoiList pois{make_poi(0.0, 0.0, 0), make_poi(1000.0, 0.0, 1)};
  const CoverageModel model(pois, deg_to_rad(30.0));
  test::reset_photo_ids();
  std::vector<PhotoMeta> pool{photo_viewing(pois[0], 0.0), photo_viewing(pois[0], 180.0),
                              photo_viewing(pois[1], 90.0)};
  SelectionEnvironment env(model, {});
  GreedyPhase phase(env, 1.0);
  const GreedySelector sel;
  const auto chosen = sel.select(model, pool, kBigCap, phase);
  ASSERT_EQ(chosen.size(), 3u);
  // The first two picks each cover a distinct PoI.
  std::unordered_set<PhotoId> first_two{chosen[0], chosen[1]};
  EXPECT_TRUE(first_two.contains(pool[2].id));
}

TEST(GreedySelector, LazyMatchesPlainGreedy) {
  // Property: lazy evaluation must produce exactly the plain-greedy result.
  Rng rng(2024);
  for (int trial = 0; trial < 15; ++trial) {
    PoiList pois;
    const int npois = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < npois; ++i)
      pois.push_back(make_poi(rng.uniform(-300.0, 300.0), rng.uniform(-300.0, 300.0), i));
    const CoverageModel model(pois, deg_to_rad(25.0));
    std::vector<PhotoMeta> pool;
    const int n = static_cast<int>(rng.uniform_int(5, 25));
    for (int k = 0; k < n; ++k) {
      const auto& poi = pois[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pois.size()) - 1))];
      pool.push_back(photo_viewing(poi, rng.uniform(0.0, 360.0)));
    }
    const std::uint64_t cap = static_cast<std::uint64_t>(rng.uniform_int(2, 10)) * 4'000'000;

    GreedyParams lazy_params, plain_params;
    lazy_params.lazy = true;
    plain_params.lazy = false;
    SelectionEnvironment env(model, {});
    GreedyPhase phase_lazy(env, 0.7);
    GreedyPhase phase_plain(env, 0.7);
    const auto a = GreedySelector(lazy_params).select(model, pool, cap, phase_lazy);
    const auto b = GreedySelector(plain_params).select(model, pool, cap, phase_plain);
    EXPECT_EQ(a, b) << "trial " << trial;
  }
}

TEST(GreedySelector, ReallocateHigherProbabilityNodeSelectsFirst) {
  const CoverageModel model = test::single_poi_model(30.0);
  test::reset_photo_ids();
  std::vector<PhotoMeta> pool{photo_viewing(model.pois()[0], 0.0),
                              photo_viewing(model.pois()[0], 180.0)};
  const GreedySelector sel;
  const ReallocationPlan plan =
      sel.reallocate(model, pool, /*a=*/1, 0.2, kBigCap, /*b=*/2, 0.9,
                     kBigCap, {});
  EXPECT_EQ(plan.first, 2);
  EXPECT_EQ(plan.second, 1);
  EXPECT_EQ(plan.first_target.size(), 2u);
}

TEST(GreedySelector, SecondNodeAvoidsDuplicatingWhenFirstIsReliable) {
  // First node (p ~ 1) takes both useful views; the second node then gains
  // almost nothing from repeating them and selects nothing.
  const CoverageModel model = test::single_poi_model(30.0);
  std::vector<PhotoMeta> pool{photo_viewing(model.pois()[0], 0.0),
                              photo_viewing(model.pois()[0], 180.0)};
  GreedyParams params;
  params.eps = 1e-3;  // treat the tiny residual gain as "no benefit"
  const GreedySelector sel(params);
  const ReallocationPlan plan = sel.reallocate(model, pool, 1, 0.999, kBigCap,
                                               2, 0.5, kBigCap, {});
  EXPECT_EQ(plan.first_target.size(), 2u);
  EXPECT_TRUE(plan.second_target.empty());
}

TEST(GreedySelector, SecondNodeDuplicatesWhenFirstIsUnreliable) {
  // Paper: "It is possible that n_b selects a photo already stored in n_a —
  // when n_a cannot deliver it with a high probability."
  const CoverageModel model = test::single_poi_model(30.0);
  std::vector<PhotoMeta> pool{photo_viewing(model.pois()[0], 0.0),
                              photo_viewing(model.pois()[0], 180.0)};
  const GreedySelector sel;
  const ReallocationPlan plan = sel.reallocate(model, pool, 1, 0.05, kBigCap,
                                               2, 0.04, kBigCap, {});
  EXPECT_EQ(plan.first_target.size(), 2u);
  EXPECT_EQ(plan.second_target.size(), 2u);
}

TEST(GreedySelector, EnvironmentSuppressesAcknowledgedPhotos) {
  // A command-center environment entry holding the same view makes the
  // photo worthless: nothing gets selected.
  const CoverageModel model = test::single_poi_model(30.0);
  const PhotoMeta view = photo_viewing(model.pois()[0], 0.0);
  const PhotoFootprint fp = model.footprint(view);
  std::vector<NodeCollection> env_nodes{{kCommandCenter, 1.0, {&fp}}};
  SelectionEnvironment env(model, env_nodes);
  GreedyPhase phase(env, 0.9);
  const GreedySelector sel;
  const auto chosen =
      sel.select(model, std::vector<PhotoMeta>{view}, kBigCap, phase);
  EXPECT_TRUE(chosen.empty());
}

TEST(GreedySelector, PfloorKeepsSelectionAliveAtZeroDeliveryProbability) {
  // A node that has never met the center (p = 0) must still select photos:
  // the floor keeps gains positive without changing their order.
  const CoverageModel model = test::single_poi_model(30.0);
  std::vector<PhotoMeta> pool{photo_viewing(model.pois()[0], 0.0),
                              photo_viewing(model.pois()[0], 180.0)};
  const GreedySelector sel;
  const ReallocationPlan plan =
      sel.reallocate(model, pool, 1, 0.0, kBigCap, 2, 0.0, kBigCap, {});
  EXPECT_EQ(plan.first_target.size(), 2u);
  // With p truly 0 on both sides, the second node duplicates everything —
  // the first node's copies are worthless as an environment.
  EXPECT_EQ(plan.second_target.size(), 2u);
}

TEST(GreedySelector, PfloorDoesNotReorderCandidates) {
  // Selection order must be identical for p = 0 (floored) and any real p:
  // a common factor cannot reorder marginal gains.
  const CoverageModel model = test::single_poi_model(30.0);
  std::vector<PhotoMeta> pool;
  for (int d = 0; d < 360; d += 45) pool.push_back(photo_viewing(model.pois()[0], d));
  const GreedySelector sel;
  SelectionEnvironment env(model, {});
  GreedyPhase low(env, sel.params().p_floor);
  GreedyPhase high(env, 0.9);
  const auto a = sel.select(model, pool, kBigCap, low);
  const auto b = sel.select(model, pool, kBigCap, high);
  EXPECT_EQ(a, b);
}

TEST(GreedySelector, TiesBreakByPhotoIdRegardlessOfPoolOrder) {
  // Regression: identical-gain candidates used to be taken in pool order,
  // so shuffling the pool (or switching lazy <-> plain) changed the
  // selection. Ties now break toward the lower PhotoId on every path.
  const CoverageModel model = test::single_poi_model(30.0);
  test::reset_photo_ids();
  // Four byte-identical views: every one has exactly the same gain, and
  // after the first commit the rest gain nothing.
  std::vector<PhotoMeta> pool{
      photo_viewing(model.pois()[0], 0.0), photo_viewing(model.pois()[0], 0.0),
      photo_viewing(model.pois()[0], 0.0), photo_viewing(model.pois()[0], 0.0)};
  const std::vector<PhotoId> ids{pool[0].id, pool[1].id, pool[2].id, pool[3].id};
  std::vector<std::size_t> order{0, 1, 2, 3};
  for (int perm = 0; perm < 24; ++perm) {
    std::vector<PhotoMeta> shuffled;
    for (const std::size_t i : order) shuffled.push_back(pool[i]);
    for (const bool lazy : {false, true}) {
      GreedyParams params;
      params.lazy = lazy;
      SelectionEnvironment env(model, {});
      GreedyPhase phase(env, 1.0);
      const auto chosen =
          GreedySelector(params).select(model, shuffled, 2 * 4'000'000, phase);
      // The pick is always the lowest id; the clones then gain nothing, so
      // selection stops after one.
      EXPECT_EQ(chosen, std::vector<PhotoId>{ids[0]})
          << "perm " << perm << " lazy " << lazy;
    }
    std::next_permutation(order.begin(), order.end());
  }
}

TEST(GreedySelector, TiedDistinctGainsSelectSameSequenceOnBothPaths) {
  // Two disjoint pairs of byte-identical views (the two pairs have the same
  // gain mathematically, but the 0-degree arc wraps 0/2pi so its integral
  // can differ from the 180-degree one by ulps — which pair wins first is
  // therefore not pinned here). What IS pinned: every pool order and both
  // greedy paths produce the same sequence, and within each bitwise-tied
  // pair the lower PhotoId wins.
  const CoverageModel model = test::single_poi_model(30.0);
  test::reset_photo_ids();
  std::vector<PhotoMeta> pool{
      photo_viewing(model.pois()[0], 0.0), photo_viewing(model.pois()[0], 0.0),
      photo_viewing(model.pois()[0], 180.0), photo_viewing(model.pois()[0], 180.0)};
  std::vector<PhotoId> reference;
  std::vector<std::size_t> order{0, 1, 2, 3};
  for (int perm = 0; perm < 24; ++perm) {
    std::vector<PhotoMeta> shuffled;
    for (const std::size_t i : order) shuffled.push_back(pool[i]);
    for (const bool lazy : {false, true}) {
      GreedyParams params;
      params.lazy = lazy;
      SelectionEnvironment env(model, {});
      GreedyPhase phase(env, 1.0);
      const auto chosen =
          GreedySelector(params).select(model, shuffled, kBigCap, phase);
      if (reference.empty()) {
        reference = chosen;
        // One pick per pair, each the lower id of its pair (the clone gains
        // exactly zero afterwards and ids break the bitwise tie).
        ASSERT_EQ(reference.size(), 2u);
        EXPECT_TRUE((reference[0] == pool[0].id && reference[1] == pool[2].id) ||
                    (reference[0] == pool[2].id && reference[1] == pool[0].id))
            << reference[0] << "," << reference[1];
      }
      EXPECT_EQ(chosen, reference) << "perm " << perm << " lazy " << lazy;
    }
    std::next_permutation(order.begin(), order.end());
  }
}

TEST(GreedySelector, EpsBoundaryGainsTerminateWithoutStalling) {
  // Gains exactly at GreedyParams::eps sit on the exclusive stop boundary:
  // "no more benefit". A pool full of such candidates must terminate with
  // an empty selection on both paths instead of churning through ties.
  const CoverageModel model = test::single_poi_model(30.0);
  test::reset_photo_ids();
  std::vector<PhotoMeta> pool{photo_viewing(model.pois()[0], 0.0),
                              photo_viewing(model.pois()[0], 90.0)};
  for (const bool lazy : {false, true}) {
    GreedyParams params;
    params.lazy = lazy;
    // Raise eps beyond any attainable gain (point <= 1, aspect <= 2*pi
    // weighted by w = 1): every candidate is at-or-below the boundary.
    params.eps = 10.0;
    SelectionEnvironment env(model, {});
    GreedyPhase phase(env, 1.0);
    const auto chosen = GreedySelector(params).select(model, pool, kBigCap, phase);
    EXPECT_TRUE(chosen.empty()) << "lazy " << lazy;
  }
}

TEST(GreedySelector, SkipsPhotosTooLargeForRemainingCapacity) {
  const CoverageModel model = test::single_poi_model(30.0);
  test::reset_photo_ids();
  PhotoMeta big = photo_viewing(model.pois()[0], 0.0);
  big.size_bytes = 10'000'000;
  PhotoMeta small = photo_viewing(model.pois()[0], 180.0);
  small.size_bytes = 1'000'000;
  SelectionEnvironment env(model, {});
  GreedyPhase phase(env, 1.0);
  const GreedySelector sel;
  // Capacity fits only the small photo even though the big one also has a
  // 60-degree arc (ties broken by heap order; the big one simply can't fit).
  const auto chosen = sel.select(model, std::vector<PhotoMeta>{big, small}, 2'000'000, phase);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0], small.id);
}

}  // namespace
}  // namespace photodtn
