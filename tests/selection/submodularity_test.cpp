// The lazy greedy path (Minoux) is only correct because marginal gains are
// submodular: committing photos never increases any other candidate's gain.
// This battery pins that property — componentwise, on both the point and
// aspect terms — plus non-negativity, on seeded random instances, with the
// deep audit() invariants of the engine, the phase and the piecewise miss
// functions exercised directly along the way.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "geometry/angle.h"
#include "selection/expected_coverage.h"
#include "selection/selection_env.h"
#include "test_util.h"
#include "util/rng.h"

namespace photodtn {
namespace {

using test::photo_viewing;

struct Scenario {
  explicit Scenario(CoverageModel m) : model(std::move(m)) {}
  CoverageModel model;
  std::vector<NodeCollection> others;
  std::vector<std::unique_ptr<PhotoFootprint>> fps;
};

Scenario random_scenario(Rng& rng) {
  const int npois = rng.uniform_int(1, 8);
  PoiList pois;
  for (int i = 0; i < npois; ++i) {
    std::shared_ptr<AspectProfile> profile;
    if (rng.bernoulli(0.25)) {
      profile = std::make_shared<AspectProfile>();
      profile->set_band(Arc{rng.uniform(0.0, kTwoPi), rng.uniform(0.3, 2.0)},
                        rng.uniform(0.0, 4.0));
    }
    pois.push_back(PointOfInterest{i,
                                   {rng.uniform(-200.0, 200.0), rng.uniform(-200.0, 200.0)},
                                   rng.uniform(0.5, 2.0),
                                   std::move(profile)});
  }
  Scenario s(CoverageModel{pois, deg_to_rad(30.0)});
  const int m = rng.uniform_int(0, 4);
  for (int n = 0; n < m; ++n) {
    NodeCollection nc;
    nc.node = static_cast<NodeId>(n + 10);
    nc.delivery_prob = rng.uniform(0.05, 1.0);
    for (int k = 0; k < rng.uniform_int(0, 3); ++k) {
      const auto& poi =
          s.model.pois()[static_cast<std::size_t>(rng.uniform_int(0, npois - 1))];
      s.fps.push_back(std::make_unique<PhotoFootprint>(
          s.model.footprint(photo_viewing(poi, rng.uniform(0.0, 360.0)))));
      nc.footprints.push_back(s.fps.back().get());
    }
    s.others.push_back(std::move(nc));
  }
  return s;
}

TEST(Submodularity, MarginalGainsNeverIncreaseUnderCommits) {
  for (int seed = 0; seed < 300; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) + 1);
    Scenario s = random_scenario(rng);
    const int npois = static_cast<int>(s.model.pois().size());

    // Candidate pool watched for monotonicity; commit sequence drawn
    // separately so watched candidates stay un-selected.
    std::vector<PhotoFootprint> watched;
    for (int k = 0; k < 6; ++k) {
      const auto& poi =
          s.model.pois()[static_cast<std::size_t>(rng.uniform_int(0, npois - 1))];
      watched.push_back(s.model.footprint(photo_viewing(poi, rng.uniform(0.0, 360.0))));
    }

    SelectionEnvironment env(s.model, s.others);
    // GreedyParams::p_floor guards callers against p == 0; anything the
    // floor lets through must yield strictly finite, non-negative gains.
    GreedyPhase phase(env, std::max(rng.uniform(0.0, 1.0), 0.02));

    std::vector<CoverageValue> prev;
    for (const PhotoFootprint& fp : watched) prev.push_back(phase.gain(fp));

    for (int step = 0; step < 5; ++step) {
      const auto& poi =
          s.model.pois()[static_cast<std::size_t>(rng.uniform_int(0, npois - 1))];
      const PhotoFootprint committed =
          s.model.footprint(photo_viewing(poi, rng.uniform(0.0, 360.0)));
      phase.commit(committed);
      ASSERT_NO_THROW(phase.audit()) << "seed " << seed << " step " << step;
      ASSERT_NO_THROW(env.audit()) << "seed " << seed << " step " << step;

      for (std::size_t c = 0; c < watched.size(); ++c) {
        const CoverageValue g = phase.gain(watched[c]);
        // Componentwise monotone non-increasing (1e-9 arithmetic slack) and
        // non-negative: the floored p and clamped integrals keep every
        // marginal gain a real (>= 0) coverage increment.
        EXPECT_LE(g.point, prev[c].point + 1e-9)
            << "seed " << seed << " step " << step << " cand " << c;
        EXPECT_LE(g.aspect, prev[c].aspect + 1e-9)
            << "seed " << seed << " step " << step << " cand " << c;
        EXPECT_GE(g.point, -1e-12) << "seed " << seed;
        EXPECT_GE(g.aspect, -1e-12) << "seed " << seed;
        EXPECT_TRUE(std::isfinite(g.point) && std::isfinite(g.aspect))
            << "seed " << seed;
        prev[c] = g;
      }
    }
  }
}

TEST(Submodularity, PiecewiseMissAuditsPassOnRandomEnvironments) {
  // Direct deep-audit sweep: every per-PoI miss function an environment can
  // produce (uniform and weighted, dense and empty) must satisfy its
  // structural invariants, and the prefix-sum path must agree with the
  // legacy full-scan integration on random queries.
  for (int seed = 0; seed < 200; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) + 40'000);
    Scenario s = random_scenario(rng);
    SelectionEnvironment env(s.model, s.others);
    for (std::size_t poi = 0; poi < s.model.pois().size(); ++poi) {
      const PiecewiseMiss& pm = env.aspect_miss(poi);
      ASSERT_NO_THROW(pm.audit()) << "seed " << seed << " poi " << poi;
      ArcSet exclude;
      for (int k = 0; k < rng.uniform_int(0, 3); ++k) {
        const double start = rng.uniform(0.0, kTwoPi);
        exclude.add(Arc{start, rng.uniform(0.05, 2.0)});
      }
      for (int q = 0; q < 4; ++q) {
        const double x = rng.uniform(0.0, kTwoPi);
        const double y = rng.uniform(0.0, kTwoPi);
        const double lo = std::min(x, y), hi = std::max(x, y);
        const double fast = pm.integrate_excluding(lo, hi, exclude);
        const double scan = pm.integrate_excluding_scan(lo, hi, exclude);
        EXPECT_NEAR(fast, scan, 1e-9 * std::max(1.0, std::fabs(scan)))
            << "seed " << seed << " poi " << poi;
      }
    }
    ASSERT_NO_THROW(env.audit()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace photodtn
