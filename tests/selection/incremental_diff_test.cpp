// Differential battery locking the incremental per-PoI engine to the two
// reference evaluators: on seeded random instances,
//   expected_coverage_incremental == expected_coverage_exact
//                                 == expected_coverage_enumerate
// to 1e-12 (relative), including after engine churn (collections added,
// extended and removed in arbitrary order), and the lazy greedy path picks
// exactly the same photo sequence as plain greedy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geometry/angle.h"
#include "selection/expected_coverage.h"
#include "selection/greedy_selector.h"
#include "selection/selection_env.h"
#include "test_util.h"
#include "util/rng.h"

namespace photodtn {
namespace {

using test::make_photo;
using test::photo_viewing;

/// One random instance: a model of up to 16 PoIs (some aspect-weighted) and
/// up to `max_nodes` collections with random delivery probabilities.
struct Instance {
  explicit Instance(CoverageModel m) : model(std::move(m)) {}

  CoverageModel model;
  std::vector<NodeCollection> nodes;
  std::vector<std::unique_ptr<PhotoFootprint>> fps;
};

PoiList random_pois(Rng& rng, int max_pois) {
  const int n = rng.uniform_int(1, max_pois);
  PoiList pois;
  for (int i = 0; i < n; ++i) {
    std::shared_ptr<AspectProfile> profile;
    if (rng.bernoulli(0.3)) {
      profile = std::make_shared<AspectProfile>();
      const int bands = rng.uniform_int(1, 3);
      for (int b = 0; b < bands; ++b)
        profile->set_band(Arc{rng.uniform(0.0, kTwoPi), rng.uniform(0.2, 3.0)},
                          rng.uniform(0.0, 4.0));
    }
    pois.push_back(PointOfInterest{i,
                                   {rng.uniform(-250.0, 250.0), rng.uniform(-250.0, 250.0)},
                                   rng.uniform(0.25, 3.0),
                                   std::move(profile)});
  }
  return pois;
}

Instance random_instance(Rng& rng, int max_pois, int max_nodes) {
  Instance inst(CoverageModel{random_pois(rng, max_pois), deg_to_rad(30.0)});
  const int m = rng.uniform_int(1, max_nodes);
  const int npois = static_cast<int>(inst.model.pois().size());
  for (int n = 0; n < m; ++n) {
    NodeCollection nc;
    nc.node = static_cast<NodeId>(n + 1);
    // Occasionally pin the endpoints: p = 1 exercises the zero-count sweep
    // (command center), p = 0 a collection that can never deliver.
    const double roll = rng.uniform(0.0, 1.0);
    nc.delivery_prob = roll < 0.05 ? 1.0 : roll < 0.10 ? 0.0 : rng.uniform(0.01, 0.99);
    const int photos = rng.uniform_int(0, 4);
    for (int k = 0; k < photos; ++k) {
      PhotoMeta ph;
      if (rng.bernoulli(0.8)) {
        const auto& poi =
            inst.model.pois()[static_cast<std::size_t>(rng.uniform_int(0, npois - 1))];
        ph = photo_viewing(poi, rng.uniform(0.0, 360.0), rng.uniform(40.0, 180.0));
      } else {
        // Free-floating photo: may cover several PoIs, or none at all.
        ph = make_photo(rng.uniform(-300.0, 300.0), rng.uniform(-300.0, 300.0),
                        rng.uniform(0.0, 360.0));
      }
      inst.fps.push_back(std::make_unique<PhotoFootprint>(inst.model.footprint(ph)));
      nc.footprints.push_back(inst.fps.back().get());
    }
    inst.nodes.push_back(std::move(nc));
  }
  return inst;
}

void expect_close(const CoverageValue& got, const CoverageValue& want,
                  const char* what, int seed) {
  EXPECT_NEAR(got.point, want.point, 1e-12 * std::max(1.0, std::fabs(want.point)))
      << what << " point, seed " << seed;
  EXPECT_NEAR(got.aspect, want.aspect, 1e-12 * std::max(1.0, std::fabs(want.aspect)))
      << what << " aspect, seed " << seed;
}

TEST(IncrementalDiff, EngineMatchesExactAndEnumerateOnRandomInstances) {
  // >= 1000 seeded instances; every one is checked three ways.
  for (int seed = 0; seed < 1000; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) + 1);
    const Instance inst = random_instance(rng, /*max_pois=*/16, /*max_nodes=*/10);
    const CoverageValue exact = expected_coverage_exact(inst.model, inst.nodes);
    const CoverageValue enumerated = expected_coverage_enumerate(inst.model, inst.nodes);
    const CoverageValue incremental =
        expected_coverage_incremental(inst.model, inst.nodes);
    expect_close(exact, enumerated, "exact vs enumerate", seed);
    expect_close(incremental, enumerated, "incremental vs enumerate", seed);
    expect_close(incremental, exact, "incremental vs exact", seed);
  }
}

TEST(IncrementalDiff, ChurnedEngineMatchesCleanEvaluators) {
  // The engine must land on the same value regardless of how its state was
  // reached: collections split into add + extend, junk collections added and
  // removed mid-stream, queries interleaved to force partial refreshes.
  for (int seed = 0; seed < 300; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) + 50'000);
    Instance inst = random_instance(rng, /*max_pois=*/12, /*max_nodes=*/8);
    SelectionEnvironment env(inst.model);

    // Junk collections that will be removed again before the comparison.
    std::vector<std::unique_ptr<PhotoFootprint>> junk_fps;
    auto add_junk = [&](NodeId id) {
      NodeCollection junk;
      junk.node = id;
      junk.delivery_prob = rng.uniform(0.05, 0.95);
      const int npois = static_cast<int>(inst.model.pois().size());
      for (int k = 0; k < rng.uniform_int(1, 3); ++k) {
        const auto& poi =
            inst.model.pois()[static_cast<std::size_t>(rng.uniform_int(0, npois - 1))];
        junk_fps.push_back(std::make_unique<PhotoFootprint>(
            inst.model.footprint(photo_viewing(poi, rng.uniform(0.0, 360.0)))));
        junk.footprints.push_back(junk_fps.back().get());
      }
      env.add_collection(junk);
    };

    add_junk(900);
    for (const NodeCollection& nc : inst.nodes) {
      if (nc.footprints.size() >= 2 && rng.bernoulli(0.5)) {
        // Split: add the first half, extend with the rest.
        const std::size_t half = nc.footprints.size() / 2;
        NodeCollection head = nc;
        head.footprints.assign(nc.footprints.begin(),
                               nc.footprints.begin() + static_cast<std::ptrdiff_t>(half));
        env.add_collection(head);
        env.extend_collection(
            nc.node, nc.delivery_prob,
            std::span<const PhotoFootprint* const>(nc.footprints).subspan(half));
      } else {
        env.add_collection(nc);
      }
      // Interleaved query forces a partial refresh so later invalidations
      // hit already-built PoI state.
      if (!inst.model.pois().empty() && rng.bernoulli(0.5))
        (void)env.point_miss(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(inst.model.pois().size()) - 1)));
    }
    add_junk(901);
    ASSERT_TRUE(env.remove_collection(900));
    ASSERT_TRUE(env.remove_collection(901));
    EXPECT_FALSE(env.remove_collection(902));  // never added
    ASSERT_NO_THROW(env.audit());

    const CoverageValue churned = env.total();
    expect_close(churned, expected_coverage_exact(inst.model, inst.nodes),
                 "churned engine vs exact", seed);
    expect_close(churned, expected_coverage_enumerate(inst.model, inst.nodes),
                 "churned engine vs enumerate", seed);
  }
}

TEST(IncrementalDiff, LazyAndPlainGreedySelectIdenticalSequences) {
  for (int seed = 0; seed < 200; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) + 100'000);
    Instance inst = random_instance(rng, /*max_pois=*/12, /*max_nodes=*/6);
    const int npois = static_cast<int>(inst.model.pois().size());

    std::vector<PhotoMeta> pool;
    const int pool_size = rng.uniform_int(1, 12);
    for (int k = 0; k < pool_size; ++k) {
      const auto& poi =
          inst.model.pois()[static_cast<std::size_t>(rng.uniform_int(0, npois - 1))];
      PhotoMeta ph = photo_viewing(poi, rng.uniform(0.0, 360.0));
      ph.id = static_cast<PhotoId>(k + 1);
      ph.size_bytes = static_cast<std::uint64_t>(rng.uniform_int(1, 4)) * 1'000'000;
      pool.push_back(ph);
    }
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(rng.uniform_int(2, 20)) * 1'000'000;
    const double p_self = rng.uniform(0.05, 1.0);

    GreedyParams plain_params;
    plain_params.lazy = false;
    GreedyParams lazy_params;
    lazy_params.lazy = true;

    SelectionEnvironment env_plain(inst.model, inst.nodes);
    GreedyPhase phase_plain(env_plain, p_self);
    const auto plain =
        GreedySelector(plain_params).select(inst.model, pool, capacity, phase_plain);

    SelectionEnvironment env_lazy(inst.model, inst.nodes);
    GreedyPhase phase_lazy(env_lazy, p_self);
    const auto lazy =
        GreedySelector(lazy_params).select(inst.model, pool, capacity, phase_lazy);

    EXPECT_EQ(plain, lazy) << "seed " << seed;
  }
}

TEST(IncrementalDiff, ReallocatePersistentEngineMatchesThrowawayPath) {
  // The span overload builds a fresh engine; a persistent engine reused
  // across calls (with phase-2 churn in between) must produce the same plans.
  for (int seed = 0; seed < 100; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) + 200'000);
    Instance inst = random_instance(rng, /*max_pois=*/12, /*max_nodes=*/5);
    const int npois = static_cast<int>(inst.model.pois().size());

    std::vector<PhotoMeta> pool;
    for (int k = 0; k < rng.uniform_int(2, 10); ++k) {
      const auto& poi =
          inst.model.pois()[static_cast<std::size_t>(rng.uniform_int(0, npois - 1))];
      PhotoMeta ph = photo_viewing(poi, rng.uniform(0.0, 360.0));
      ph.id = static_cast<PhotoId>(k + 1);
      ph.size_bytes = 1'000'000;
      pool.push_back(ph);
    }
    const NodeId a = 101, b = 102;
    const double pa = rng.uniform(0.0, 1.0);
    const double pb = rng.uniform(0.0, 1.0);
    const std::uint64_t cap_a = static_cast<std::uint64_t>(rng.uniform_int(1, 8)) * 1'000'000;
    const std::uint64_t cap_b = static_cast<std::uint64_t>(rng.uniform_int(1, 8)) * 1'000'000;

    GreedySelector selector;
    const ReallocationPlan via_span = selector.reallocate(
        inst.model, pool, a, pa, cap_a, b, pb, cap_b, inst.nodes);

    SelectionEnvironment env(inst.model, inst.nodes);
    const ReallocationPlan first_pass = selector.reallocate(
        inst.model, pool, a, pa, cap_a, b, pb, cap_b, env);
    // Second pass on the same engine: phase 2's temporary collection must
    // have been fully removed, so the result is reproducible.
    const ReallocationPlan second_pass = selector.reallocate(
        inst.model, pool, a, pa, cap_a, b, pb, cap_b, env);
    ASSERT_NO_THROW(env.audit());

    EXPECT_EQ(via_span.first, first_pass.first) << "seed " << seed;
    EXPECT_EQ(via_span.second, first_pass.second) << "seed " << seed;
    EXPECT_EQ(via_span.first_target, first_pass.first_target) << "seed " << seed;
    EXPECT_EQ(via_span.second_target, first_pass.second_target) << "seed " << seed;
    EXPECT_EQ(first_pass.first_target, second_pass.first_target) << "seed " << seed;
    EXPECT_EQ(first_pass.second_target, second_pass.second_target) << "seed " << seed;
    EXPECT_EQ(env.collection_count(), inst.nodes.size()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace photodtn
