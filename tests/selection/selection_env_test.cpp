#include "selection/selection_env.h"

#include <gtest/gtest.h>

#include "geometry/angle.h"
#include "selection/expected_coverage.h"
#include "test_util.h"
#include "util/rng.h"

namespace photodtn {
namespace {

using test::make_poi;
using test::photo_viewing;

struct EnvFixture {
  explicit EnvFixture(CoverageModel m) : model(std::move(m)) { others.reserve(16); }

  void add_other(NodeId id, double p, std::vector<PhotoMeta> photos) {
    others.push_back(NodeCollection{id, p, {}});
    for (const PhotoMeta& ph : photos) {
      fps.push_back(std::make_unique<PhotoFootprint>(model.footprint(ph)));
      others.back().footprints.push_back(fps.back().get());
    }
  }

  CoverageModel model;
  std::vector<NodeCollection> others;
  std::vector<std::unique_ptr<PhotoFootprint>> fps;
};

TEST(SelectionEnv, EmptyEnvironmentGivesFullGain) {
  EnvFixture f(test::single_poi_model(30.0));
  SelectionEnvironment env(f.model, f.others);
  GreedyPhase phase(env, 1.0);
  const auto fp = f.model.footprint(photo_viewing(f.model.pois()[0], 0.0));
  const CoverageValue g = phase.gain(fp);
  EXPECT_NEAR(g.point, 1.0, 1e-12);
  EXPECT_NEAR(g.aspect, deg_to_rad(60.0), 1e-9);
}

TEST(SelectionEnv, GainScalesWithOwnDeliveryProbability) {
  EnvFixture f(test::single_poi_model(30.0));
  SelectionEnvironment env(f.model, f.others);
  GreedyPhase phase(env, 0.25);
  const auto fp = f.model.footprint(photo_viewing(f.model.pois()[0], 0.0));
  const CoverageValue g = phase.gain(fp);
  EXPECT_NEAR(g.point, 0.25, 1e-12);
  EXPECT_NEAR(g.aspect, 0.25 * deg_to_rad(60.0), 1e-9);
}

TEST(SelectionEnv, EnvironmentDiscountsCoveredAspects) {
  // Another node (p = 0.8) already covers the same arc; our photo's aspect
  // gain there shrinks to the environment's miss probability 0.2.
  EnvFixture f(test::single_poi_model(30.0));
  const PhotoMeta same_view = photo_viewing(f.model.pois()[0], 0.0);
  f.add_other(2, 0.8, {same_view});
  SelectionEnvironment env(f.model, f.others);
  GreedyPhase phase(env, 1.0);
  const CoverageValue g = phase.gain(f.model.footprint(same_view));
  EXPECT_NEAR(g.point, 0.2, 1e-12);
  EXPECT_NEAR(g.aspect, 0.2 * deg_to_rad(60.0), 1e-9);
}

TEST(SelectionEnv, DisjointAspectUnaffectedByEnvironment) {
  EnvFixture f(test::single_poi_model(30.0));
  f.add_other(2, 0.8, {photo_viewing(f.model.pois()[0], 180.0)});
  SelectionEnvironment env(f.model, f.others);
  GreedyPhase phase(env, 1.0);
  const CoverageValue g = phase.gain(f.model.footprint(photo_viewing(f.model.pois()[0], 0.0)));
  // Point gain discounted (the PoI is probably covered), aspect gain full
  // (the arcs do not overlap).
  EXPECT_NEAR(g.point, 0.2, 1e-12);
  EXPECT_NEAR(g.aspect, deg_to_rad(60.0), 1e-9);
}

TEST(SelectionEnv, CommitReducesSubsequentGains) {
  EnvFixture f(test::single_poi_model(30.0));
  SelectionEnvironment env(f.model, f.others);
  GreedyPhase phase(env, 1.0);
  const auto fp1 = f.model.footprint(photo_viewing(f.model.pois()[0], 0.0));
  const auto fp2 = f.model.footprint(photo_viewing(f.model.pois()[0], 20.0));
  phase.commit(fp1);
  const CoverageValue g = phase.gain(fp2);
  EXPECT_NEAR(g.point, 0.0, 1e-12);  // own selection already covers the PoI
  // Views from 0 and 20 degrees overlap by 40 degrees: only 20 remain.
  EXPECT_NEAR(g.aspect, deg_to_rad(20.0), 1e-9);
}

TEST(SelectionEnv, GainPlusCommitTracksExpectedCoverageDelta) {
  // Property: the incremental gain equals the difference of exact expected
  // coverage with and without the photo, for random environments.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    PoiList pois;
    for (int i = 0; i < 3; ++i)
      pois.push_back(make_poi(rng.uniform(-150.0, 150.0), rng.uniform(-150.0, 150.0), i));
    EnvFixture f(CoverageModel{pois, deg_to_rad(30.0)});
    for (int n = 0; n < 3; ++n) {
      std::vector<PhotoMeta> photos;
      for (int k = 0; k < 2; ++k) {
        const auto& poi = pois[static_cast<std::size_t>(rng.uniform_int(0, 2))];
        photos.push_back(photo_viewing(poi, rng.uniform(0.0, 360.0)));
      }
      f.add_other(static_cast<NodeId>(n + 2), rng.uniform(0.1, 0.9), photos);
    }
    const double p_self = rng.uniform(0.1, 1.0);

    SelectionEnvironment env(f.model, f.others);
    GreedyPhase phase(env, p_self);

    // Self collection grows photo by photo; compare against the oracle.
    std::vector<NodeCollection> oracle_nodes = f.others;
    oracle_nodes.push_back(NodeCollection{1, p_self, {}});
    std::vector<std::unique_ptr<PhotoFootprint>> own_fps;
    CoverageValue prev = expected_coverage_exact(f.model, oracle_nodes);
    for (int k = 0; k < 4; ++k) {
      const auto& poi = pois[static_cast<std::size_t>(rng.uniform_int(0, 2))];
      own_fps.push_back(std::make_unique<PhotoFootprint>(
          f.model.footprint(photo_viewing(poi, rng.uniform(0.0, 360.0)))));
      const CoverageValue g = phase.gain(*own_fps.back());
      phase.commit(*own_fps.back());
      oracle_nodes.back().footprints.push_back(own_fps.back().get());
      const CoverageValue now = expected_coverage_exact(f.model, oracle_nodes);
      EXPECT_NEAR(g.point, now.point - prev.point, 1e-9) << trial << "," << k;
      EXPECT_NEAR(g.aspect, now.aspect - prev.aspect, 1e-9) << trial << "," << k;
      prev = now;
    }
  }
}

TEST(SelectionEnv, GainTracksExpectedCoverageDeltaWithProfiles) {
  // The incremental gain must equal the exact expected-coverage delta when
  // PoIs carry aspect-weight profiles.
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    PoiList pois;
    for (int i = 0; i < 2; ++i) {
      auto profile = std::make_shared<AspectProfile>();
      profile->set_band(Arc{rng.uniform(0.0, kTwoPi), rng.uniform(0.3, 2.0)},
                        rng.uniform(0.0, 5.0));
      pois.push_back(PointOfInterest{i,
                                     {rng.uniform(-150.0, 150.0), rng.uniform(-150.0, 150.0)},
                                     1.0,
                                     std::move(profile)});
    }
    EnvFixture f(CoverageModel{pois, deg_to_rad(30.0)});
    f.add_other(5, rng.uniform(0.2, 0.9),
                {photo_viewing(pois[0], rng.uniform(0.0, 360.0)),
                 photo_viewing(pois[1], rng.uniform(0.0, 360.0))});
    const double p_self = rng.uniform(0.2, 1.0);

    SelectionEnvironment env(f.model, f.others);
    GreedyPhase phase(env, p_self);
    std::vector<NodeCollection> oracle = f.others;
    oracle.push_back(NodeCollection{1, p_self, {}});
    std::vector<std::unique_ptr<PhotoFootprint>> own;
    CoverageValue prev = expected_coverage_exact(f.model, oracle);
    for (int k = 0; k < 3; ++k) {
      const auto& poi = pois[static_cast<std::size_t>(rng.uniform_int(0, 1))];
      own.push_back(std::make_unique<PhotoFootprint>(
          f.model.footprint(photo_viewing(poi, rng.uniform(0.0, 360.0)))));
      const CoverageValue g = phase.gain(*own.back());
      phase.commit(*own.back());
      oracle.back().footprints.push_back(own.back().get());
      const CoverageValue now = expected_coverage_exact(f.model, oracle);
      EXPECT_NEAR(g.point, now.point - prev.point, 1e-9) << trial << "," << k;
      EXPECT_NEAR(g.aspect, now.aspect - prev.aspect, 1e-9) << trial << "," << k;
      prev = now;
    }
  }
}

TEST(SelectionEnv, PiecewiseMissValueAt) {
  EnvFixture f(test::single_poi_model(30.0));
  f.add_other(2, 0.6, {photo_viewing(f.model.pois()[0], 0.0)});  // arc [-30, 30]
  SelectionEnvironment env(f.model, f.others);
  const PiecewiseMiss& pm = env.aspect_miss(0);
  EXPECT_NEAR(pm.value_at(0.0), 0.4, 1e-12);
  EXPECT_NEAR(pm.value_at(deg_to_rad(29.0)), 0.4, 1e-12);
  EXPECT_NEAR(pm.value_at(deg_to_rad(31.0)), 1.0, 1e-12);
  EXPECT_NEAR(pm.value_at(deg_to_rad(180.0)), 1.0, 1e-12);
  EXPECT_NEAR(pm.value_at(deg_to_rad(331.0)), 0.4, 1e-12);
}

TEST(SelectionEnv, RejectsZeroDeliveryProbability) {
  EnvFixture f(test::single_poi_model(30.0));
  SelectionEnvironment env(f.model, f.others);
  EXPECT_THROW(GreedyPhase(env, 0.0), std::logic_error);
  EXPECT_THROW(GreedyPhase(env, 1.5), std::logic_error);
}

}  // namespace
}  // namespace photodtn
