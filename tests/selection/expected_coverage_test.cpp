#include "selection/expected_coverage.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"
#include "util/rng.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"

namespace photodtn {
namespace {

using test::make_poi;
using test::photo_viewing;

/// Owns footprints so NodeCollection pointers stay valid.
struct Fixture {
  explicit Fixture(CoverageModel m) : model(std::move(m)) {
    nodes.reserve(32);  // keep add_node references stable
  }

  NodeCollection& add_node(NodeId id, double p) {
    nodes.push_back(NodeCollection{id, p, {}});
    return nodes.back();
  }

  void give(NodeCollection& nc, const PhotoMeta& photo) {
    footprints.push_back(std::make_unique<PhotoFootprint>(model.footprint(photo)));
    nc.footprints.push_back(footprints.back().get());
  }

  CoverageModel model;
  std::vector<NodeCollection> nodes;
  std::vector<std::unique_ptr<PhotoFootprint>> footprints;
};

TEST(ExpectedCoverage, SingleCertainNodeEqualsPlainCoverage) {
  Fixture f(test::single_poi_model(30.0));
  auto& n = f.add_node(1, 1.0);
  f.give(n, photo_viewing(f.model.pois()[0], 0.0));
  const CoverageValue ex = expected_coverage_exact(f.model, f.nodes);
  EXPECT_NEAR(ex.point, 1.0, 1e-12);
  EXPECT_NEAR(ex.aspect, deg_to_rad(60.0), 1e-9);
}

TEST(ExpectedCoverage, SingleUncertainNodeScalesByP) {
  Fixture f(test::single_poi_model(30.0));
  auto& n = f.add_node(1, 0.3);
  f.give(n, photo_viewing(f.model.pois()[0], 0.0));
  const CoverageValue ex = expected_coverage_exact(f.model, f.nodes);
  EXPECT_NEAR(ex.point, 0.3, 1e-12);
  EXPECT_NEAR(ex.aspect, 0.3 * deg_to_rad(60.0), 1e-9);
}

TEST(ExpectedCoverage, TwoNodesSamePhotoComplementaryProbability) {
  // Both nodes carry an identical view: the PoI is covered unless both fail.
  Fixture f(test::single_poi_model(30.0));
  const PhotoMeta p = photo_viewing(f.model.pois()[0], 0.0);
  auto& n1 = f.add_node(1, 0.5);
  f.give(n1, p);
  auto& n2 = f.add_node(2, 0.5);
  f.give(n2, p);
  const CoverageValue ex = expected_coverage_exact(f.model, f.nodes);
  EXPECT_NEAR(ex.point, 0.75, 1e-12);  // 1 - 0.5 * 0.5
  EXPECT_NEAR(ex.aspect, 0.75 * deg_to_rad(60.0), 1e-9);
}

TEST(ExpectedCoverage, PaperExampleFormulaTwo) {
  // Formula (2): M = {n_0, n_a, n_b} with the center's fixed collection.
  const PointOfInterest poi = make_poi(0.0, 0.0);
  Fixture f(CoverageModel{{poi}, deg_to_rad(30.0)});
  const double pa = 0.7, pb = 0.4;
  auto& n0 = f.add_node(kCommandCenter, 1.0);
  f.give(n0, photo_viewing(poi, 0.0));  // already delivered: arc at 0
  auto& na = f.add_node(1, pa);
  f.give(na, photo_viewing(poi, 90.0));
  auto& nb = f.add_node(2, pb);
  f.give(nb, photo_viewing(poi, 180.0));
  const CoverageValue ex = expected_coverage_exact(f.model, f.nodes);
  // Hand computation: F0 alone covers 60 deg; each additional disjoint view
  // adds 60 deg with its probability.
  EXPECT_NEAR(ex.point, 1.0, 1e-12);
  const double expected_aspect =
      deg_to_rad(60.0) * (1.0 + pa + pb);  // disjoint arcs: linearity
  EXPECT_NEAR(ex.aspect, expected_aspect, 1e-9);
}

TEST(ExpectedCoverage, ExactMatchesEnumerationOnRandomInstances) {
  // The polynomial-time evaluator must agree with the literal 2^m sum of
  // Definition 2 on arbitrary instances.
  Rng rng(1234);
  for (int trial = 0; trial < 25; ++trial) {
    PoiList pois;
    const int npois = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < npois; ++i)
      pois.push_back(make_poi(rng.uniform(-200.0, 200.0), rng.uniform(-200.0, 200.0), i,
                              rng.uniform(0.5, 2.0)));
    Fixture f(CoverageModel{pois, deg_to_rad(rng.uniform(15.0, 45.0))});
    const int m = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < m; ++i) {
      auto& n = f.add_node(static_cast<NodeId>(i), rng.uniform(0.0, 1.0));
      const int photos = static_cast<int>(rng.uniform_int(0, 4));
      for (int k = 0; k < photos; ++k) {
        const auto& poi = pois[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pois.size()) - 1))];
        f.give(n, photo_viewing(poi, rng.uniform(0.0, 360.0),
                                rng.uniform(50.0, 150.0)));
      }
    }
    const CoverageValue exact = expected_coverage_exact(f.model, f.nodes);
    const CoverageValue enumerated = expected_coverage_enumerate(f.model, f.nodes);
    EXPECT_NEAR(exact.point, enumerated.point, 1e-9) << "trial " << trial;
    EXPECT_NEAR(exact.aspect, enumerated.aspect, 1e-9) << "trial " << trial;
  }
}

TEST(ExpectedCoverage, ExactMatchesEnumerationWithAspectProfiles) {
  // The weighted-aspect extension must agree between the fast evaluator and
  // the literal Definition 2 sum (CoverageMap honours profiles, so the
  // enumeration oracle is weighted automatically).
  Rng rng(4321);
  for (int trial = 0; trial < 15; ++trial) {
    PoiList pois;
    const int npois = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < npois; ++i) {
      auto profile = std::make_shared<AspectProfile>();
      const int bands = static_cast<int>(rng.uniform_int(0, 3));
      for (int b = 0; b < bands; ++b)
        profile->set_band(Arc{rng.uniform(0.0, kTwoPi), rng.uniform(0.2, 2.0)},
                          rng.uniform(0.0, 4.0));
      pois.push_back(PointOfInterest{i,
                                     {rng.uniform(-200.0, 200.0), rng.uniform(-200.0, 200.0)},
                                     rng.uniform(0.5, 2.0),
                                     std::move(profile)});
    }
    Fixture f(CoverageModel{pois, deg_to_rad(rng.uniform(15.0, 45.0))});
    const int m = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < m; ++i) {
      auto& n = f.add_node(static_cast<NodeId>(i), rng.uniform(0.0, 1.0));
      const int photos = static_cast<int>(rng.uniform_int(0, 3));
      for (int k = 0; k < photos; ++k) {
        const auto& poi = pois[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pois.size()) - 1))];
        f.give(n, photo_viewing(poi, rng.uniform(0.0, 360.0), rng.uniform(50.0, 150.0)));
      }
    }
    const CoverageValue exact = expected_coverage_exact(f.model, f.nodes);
    const CoverageValue enumerated = expected_coverage_enumerate(f.model, f.nodes);
    EXPECT_NEAR(exact.point, enumerated.point, 1e-9) << "trial " << trial;
    EXPECT_NEAR(exact.aspect, enumerated.aspect, 1e-9) << "trial " << trial;
  }
}

TEST(ExpectedCoverage, MonteCarloConvergesToExact) {
  Fixture f(test::single_poi_model(30.0));
  auto& n1 = f.add_node(1, 0.6);
  f.give(n1, photo_viewing(f.model.pois()[0], 0.0));
  f.give(n1, photo_viewing(f.model.pois()[0], 90.0));
  auto& n2 = f.add_node(2, 0.3);
  f.give(n2, photo_viewing(f.model.pois()[0], 45.0));
  const CoverageValue exact = expected_coverage_exact(f.model, f.nodes);
  Rng rng(77);
  const CoverageValue mc = expected_coverage_monte_carlo(f.model, f.nodes, rng, 20000);
  EXPECT_NEAR(mc.point, exact.point, 0.02);
  EXPECT_NEAR(mc.aspect, exact.aspect, 0.05);
}

TEST(ExpectedCoverage, EmptyNodeSetIsZero) {
  Fixture f(test::single_poi_model());
  EXPECT_TRUE(expected_coverage_exact(f.model, f.nodes).is_zero());
  EXPECT_TRUE(expected_coverage_enumerate(f.model, f.nodes).is_zero());
}

TEST(ExpectedCoverage, EnumerationRejectsLargeSets) {
  Fixture f(test::single_poi_model());
  for (int i = 0; i < 21; ++i) f.add_node(static_cast<NodeId>(i), 0.5);
  EXPECT_THROW(expected_coverage_enumerate(f.model, f.nodes), std::logic_error);
}

TEST(ExpectedCoverage, MonotoneInDeliveryProbability) {
  for (const double p : {0.1, 0.3, 0.5, 0.9}) {
    Fixture lo(test::single_poi_model(30.0));
    auto& nl = lo.add_node(1, p);
    nl.delivery_prob = p;
    lo.give(nl, photo_viewing(lo.model.pois()[0], 0.0));
    Fixture hi(test::single_poi_model(30.0));
    auto& nh = hi.add_node(1, std::min(1.0, p + 0.05));
    hi.give(nh, photo_viewing(hi.model.pois()[0], 0.0));
    EXPECT_LT(expected_coverage_exact(lo.model, lo.nodes).aspect,
              expected_coverage_exact(hi.model, hi.nodes).aspect);
  }
}

}  // namespace
}  // namespace photodtn
