#include "selection/metadata_cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <utility>

#include "test_util.h"
#include "util/check.h"
#include "util/rng.h"

namespace photodtn {
namespace {

MetadataEntry entry(NodeId owner, double observed_at, double lambda, double p = 0.5) {
  MetadataEntry e;
  e.owner = owner;
  e.observed_at = observed_at;
  e.lambda = lambda;
  e.delivery_prob = p;
  e.photos = {test::make_photo(0, 0, 0)};
  return e;
}

TEST(MetadataCache, StalenessProbabilityMatchesEquationOne) {
  // P{T_a < t} = 1 - exp(-lambda t).
  EXPECT_NEAR(MetadataCache::staleness_probability(0.01, 100.0), 1.0 - std::exp(-1.0),
              1e-12);
  EXPECT_EQ(MetadataCache::staleness_probability(0.01, 0.0), 0.0);
  EXPECT_EQ(MetadataCache::staleness_probability(0.0, 100.0), 0.0);
}

TEST(MetadataCache, ValidityThreshold) {
  const MetadataCache cache(0.8);
  // lambda = 0.01/s: entry crosses P = 0.8 at t = -ln(0.2)/0.01 = 160.9 s.
  const MetadataEntry e = entry(1, 0.0, 0.01);
  EXPECT_TRUE(cache.is_valid(e, 100.0));
  EXPECT_TRUE(cache.is_valid(e, 160.0));
  EXPECT_FALSE(cache.is_valid(e, 162.0));
}

TEST(MetadataCache, CommandCenterAlwaysValid) {
  const MetadataCache cache(0.8);
  const MetadataEntry e = entry(kCommandCenter, 0.0, 100.0);
  EXPECT_TRUE(cache.is_valid(e, 1e9));
}

TEST(MetadataCache, UpdateKeepsFresher) {
  MetadataCache cache(0.8);
  EXPECT_TRUE(cache.update(entry(1, 10.0, 0.01)));
  EXPECT_FALSE(cache.update(entry(1, 5.0, 0.01)));   // older rejected
  EXPECT_FALSE(cache.update(entry(1, 10.0, 0.01)));  // same age rejected
  EXPECT_TRUE(cache.update(entry(1, 20.0, 0.02)));
  EXPECT_DOUBLE_EQ(cache.find(1)->lambda, 0.02);
}

TEST(MetadataCache, PruneRemovesInvalid) {
  MetadataCache cache(0.8);
  cache.update(entry(1, 0.0, 1.0));     // goes stale almost immediately
  cache.update(entry(2, 0.0, 1e-9));    // stays valid for ages
  cache.update(entry(kCommandCenter, 0.0, 1.0));
  cache.prune(100.0);
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_NE(cache.find(2), nullptr);
  EXPECT_NE(cache.find(kCommandCenter), nullptr);
}

TEST(MetadataCache, ValidEntriesFiltersWithoutPruning) {
  MetadataCache cache(0.8);
  cache.update(entry(1, 0.0, 1.0));
  cache.update(entry(2, 0.0, 1e-9));
  const auto valid = cache.valid_entries(100.0);
  ASSERT_EQ(valid.size(), 1u);
  EXPECT_EQ(valid[0]->owner, 2);
  EXPECT_EQ(cache.size(), 2u);  // nothing removed
}

TEST(MetadataCache, ValidEntriesAreOwnerSortedRegardlessOfInsertionOrder) {
  // valid_entries() feeds selection environments, where the order of
  // floating-point miss-product updates must not depend on hash layout:
  // the contract is canonical owner order. Insert owners scrambled.
  MetadataCache cache(0.8);
  for (const NodeId owner : {41, 7, 29, 3, 53, 17, 11, 47, 23, 5, 37, 13})
    cache.update(entry(owner, 0.0, 1e-9));
  const auto valid = cache.valid_entries(100.0);
  ASSERT_EQ(valid.size(), 12u);
  for (std::size_t i = 1; i < valid.size(); ++i)
    EXPECT_LT(valid[i - 1]->owner, valid[i]->owner)
        << "valid_entries() not owner-sorted at " << i;
}

TEST(MetadataCache, MergeTakesFresherAndSkipsSelf) {
  MetadataCache mine(0.8), theirs(0.8);
  mine.update(entry(2, 10.0, 0.01));
  theirs.update(entry(2, 20.0, 0.05));  // fresher view of node 2
  theirs.update(entry(1, 30.0, 0.01));  // their view of *me*
  theirs.update(entry(3, 5.0, 0.01));
  mine.merge_from(theirs, /*self=*/1);
  EXPECT_DOUBLE_EQ(mine.find(2)->lambda, 0.05);
  EXPECT_EQ(mine.find(1), nullptr);  // own entry never cached
  EXPECT_NE(mine.find(3), nullptr);
}

TEST(MetadataCache, EraseAndOwnerValidation) {
  MetadataCache cache(0.8);
  cache.update(entry(1, 0.0, 0.01));
  cache.erase(1);
  EXPECT_EQ(cache.find(1), nullptr);
  MetadataEntry bad;
  bad.owner = -1;
  EXPECT_THROW(cache.update(bad), std::logic_error);
}

class PthldSweep : public ::testing::TestWithParam<double> {};

TEST_P(PthldSweep, ValidityHorizonGrowsWithThreshold) {
  const double p_thld = GetParam();
  const MetadataCache cache(p_thld);
  const double lambda = 0.01;
  const MetadataEntry e = entry(1, 0.0, lambda);
  const double horizon = -std::log(1.0 - p_thld) / lambda;
  EXPECT_TRUE(cache.is_valid(e, horizon * 0.99));
  EXPECT_FALSE(cache.is_valid(e, horizon * 1.01));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PthldSweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 0.9, 0.95));

TEST(MetadataCacheAudit, HoldsUnderRandomUpdatePruneMergeTraffic) {
  // Property: any sequence of update/prune/merge_from operations leaves the
  // cache in a state audit() accepts — owners keyed correctly, lambda >= 0,
  // delivery probabilities in [0, 1], timestamps finite.
  Rng rng(0xC0FFEE);
  MetadataCache a(0.8), b(0.8);
  for (int step = 0; step < 300; ++step) {
    const NodeId owner = static_cast<NodeId>(rng.uniform_int(0, 9));
    MetadataEntry e = entry(owner, rng.uniform(0.0, 1000.0),
                            rng.uniform(0.0, 0.05), rng.uniform(0.0, 1.0));
    (rng.bernoulli(0.5) ? a : b).update(std::move(e));
    if (step % 17 == 0) a.prune(rng.uniform(0.0, 2000.0));
    if (step % 29 == 0) a.merge_from(b, /*self=*/1);
    ASSERT_NO_THROW(a.audit());
    ASSERT_NO_THROW(b.audit());
  }
}

TEST(MetadataCacheAudit, UpdateMonotonicityKeepsFreshestSnapshot) {
  // Expiry/freshness monotonicity: a stale snapshot can never replace a
  // fresher one, so observed_at per owner is non-decreasing over time.
  MetadataCache cache(0.8);
  EXPECT_TRUE(cache.update(entry(3, 100.0, 0.01)));
  EXPECT_FALSE(cache.update(entry(3, 50.0, 0.01)));  // older: rejected
  EXPECT_EQ(cache.find(3)->observed_at, 100.0);
  EXPECT_TRUE(cache.update(entry(3, 150.0, 0.01)));  // fresher: accepted
  EXPECT_EQ(cache.find(3)->observed_at, 150.0);
  EXPECT_NO_THROW(cache.audit());
}

TEST(MetadataCacheAudit, ClearKeepsRevisionStampsMonotone) {
  // A crash wipes the cache via clear(), but the revision counter must
  // survive: engines that loaded pre-crash collections identify them by
  // revision, and a restarted counter would let a post-crash entry alias a
  // pre-crash engine load.
  MetadataCache cache(0.8);
  cache.update(entry(2, 10.0, 0.01));
  cache.update(entry(3, 20.0, 0.01));
  const std::uint64_t pre = cache.find(3)->revision;
  cache.clear();
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_EQ(cache.find(3), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_NO_THROW(cache.audit());
  cache.update(entry(2, 30.0, 0.01));
  EXPECT_GT(cache.find(2)->revision, pre);
  EXPECT_NO_THROW(cache.audit());
}

TEST(MetadataCacheAudit, ClearForgetsFreshnessSoRebootGossipRepopulates) {
  // After a wipe the cache has no memory of pre-crash observation times; the
  // first post-reboot snapshot repopulates even if its timestamp is older
  // than what the cache once held.
  MetadataCache cache(0.8);
  cache.update(entry(2, 100.0, 0.01));
  cache.clear();
  EXPECT_TRUE(cache.update(entry(2, 50.0, 0.01)));
  EXPECT_DOUBLE_EQ(cache.find(2)->observed_at, 50.0);
}

TEST(MetadataCacheAudit, FlagsInvalidEntryFields) {
  // A negative inter-contact rate is meaningless (eq. 1 needs lambda >= 0).
  // Debug/audit builds reject it at the update() boundary (DCHECK); release
  // builds accept the entry, and audit() then reports the corrupted state.
  MetadataCache cache(0.8);
  MetadataEntry bad = entry(2, 10.0, /*lambda=*/-0.5);
  if (dchecks_enabled()) {
    EXPECT_THROW(cache.update(std::move(bad)), std::logic_error);
  } else {
    cache.update(std::move(bad));
    EXPECT_THROW(cache.audit(), std::logic_error);
  }
}

}  // namespace
}  // namespace photodtn
