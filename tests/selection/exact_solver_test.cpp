// The greedy selector against the exhaustive reference: on tiny instances
// greedy should be optimal or near-optimal (the reallocation problem is
// NP-hard, so greedy carries no worst-case guarantee — but a large gap on
// random instances would indicate a bug, not hardness).
#include "selection/exact_solver.h"

#include <gtest/gtest.h>

#include "selection/greedy_selector.h"
#include "test_util.h"
#include "util/rng.h"

namespace photodtn {
namespace {

using test::make_poi;
using test::photo_viewing;

constexpr std::uint64_t kPhoto = 4'000'000;

TEST(ExactSolver, SingleNodeTrivialInstance) {
  const CoverageModel model = test::single_poi_model(30.0);
  test::reset_photo_ids();
  std::vector<PhotoMeta> pool{photo_viewing(model.pois()[0], 0.0),
                              photo_viewing(model.pois()[0], 0.5),   // clone
                              photo_viewing(model.pois()[0], 180.0)};
  const ExactSelection best =
      exact_select(model, pool, 1, 1.0, 2 * kPhoto, {});
  ASSERT_EQ(best.chosen.size(), 2u);
  // Optimal: one of the front views + the back view.
  EXPECT_NE(std::find(best.chosen.begin(), best.chosen.end(), pool[2].id),
            best.chosen.end());
  EXPECT_NEAR(best.value.aspect, deg_to_rad(120.0) - 0.0, 1e-6);
}

TEST(ExactSolver, GreedyMatchesExactOnEasyInstances) {
  // Disjoint arcs: greedy is provably optimal.
  const CoverageModel model = test::single_poi_model(30.0);
  std::vector<PhotoMeta> pool;
  for (int d = 0; d < 360; d += 90) pool.push_back(photo_viewing(model.pois()[0], d));
  SelectionEnvironment env(model, {});
  GreedyPhase phase(env, 0.8);
  const GreedySelector sel;
  const auto greedy = sel.select(model, pool, 3 * kPhoto, phase);
  const ExactSelection best = exact_select(model, pool, 1, 0.8, 3 * kPhoto, {});
  EXPECT_EQ(greedy.size(), best.chosen.size());
  // Same value, possibly different photo choice among symmetric options.
  std::vector<PhotoId> g = greedy;
  const CoverageValue gv = allocation_value(model, pool, g, 0.8, {}, 0.5, 1, 2, {});
  EXPECT_NEAR(gv.aspect, best.value.aspect, 1e-9);
}

TEST(ExactSolver, GreedySelectionNearOptimalOnRandomInstances) {
  Rng rng(555);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 12; ++trial) {
    PoiList pois;
    const int npois = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < npois; ++i)
      pois.push_back(make_poi(rng.uniform(-150.0, 150.0), rng.uniform(-150.0, 150.0), i));
    const CoverageModel model(pois, deg_to_rad(30.0));
    std::vector<PhotoMeta> pool;
    const int k = static_cast<int>(rng.uniform_int(4, 8));
    for (int i = 0; i < k; ++i) {
      const auto& poi = pois[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pois.size()) - 1))];
      pool.push_back(photo_viewing(poi, rng.uniform(0.0, 360.0)));
    }
    const std::uint64_t cap = static_cast<std::uint64_t>(rng.uniform_int(2, 4)) * kPhoto;
    const double p = rng.uniform(0.3, 1.0);

    SelectionEnvironment env(model, {});
    GreedyPhase phase(env, p);
    const GreedySelector sel;
    const auto greedy = sel.select(model, pool, cap, phase);
    const CoverageValue gv = allocation_value(model, pool, greedy, p, {}, 0.5, 1, 2, {});
    const ExactSelection best = exact_select(model, pool, 1, p, cap, {});
    ASSERT_GE(best.value.aspect + best.value.point, gv.aspect + gv.point - 1e-9);
    if (best.value.aspect > 1e-9)
      worst_ratio = std::min(worst_ratio, gv.aspect / best.value.aspect);
    // Point coverage: greedy always matches the optimum here (point gains
    // dominate lexicographically and are matroid-like).
    EXPECT_NEAR(gv.point, best.value.point, 1e-9) << trial;
  }
  // Greedy on submodular aspect coverage guarantees (1 - 1/e) ~ 0.632 under
  // a cardinality constraint; observed worst cases on random instances sit
  // around 0.8 (the lexicographic point-priority can sacrifice aspect).
  EXPECT_GT(worst_ratio, 0.70);
}

TEST(ExactSolver, GreedyReallocationNearOptimal) {
  Rng rng(808);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 8; ++trial) {
    PoiList pois{make_poi(0.0, 0.0, 0), make_poi(250.0, 100.0, 1)};
    const CoverageModel model(pois, deg_to_rad(30.0));
    std::vector<PhotoMeta> pool;
    const int k = 6;
    for (int i = 0; i < k; ++i) {
      const auto& poi = pois[static_cast<std::size_t>(rng.uniform_int(0, 1))];
      pool.push_back(photo_viewing(poi, rng.uniform(0.0, 360.0)));
    }
    const double pa = rng.uniform(0.4, 1.0);
    const double pb = rng.uniform(0.1, 0.5);
    const std::uint64_t cap = 3 * kPhoto;

    const GreedySelector sel;
    const ReallocationPlan plan =
        sel.reallocate(model, pool, 1, pa, cap, 2, pb, cap, {});
    const std::vector<PhotoId>& at_a = plan.first == 1 ? plan.first_target
                                                       : plan.second_target;
    const std::vector<PhotoId>& at_b = plan.first == 1 ? plan.second_target
                                                       : plan.first_target;
    const CoverageValue gv = allocation_value(model, pool, at_a, pa, at_b, pb, 1, 2, {});
    const ExactReallocation best =
        exact_reallocate(model, pool, 1, pa, cap, 2, pb, cap, {});
    ASSERT_GE(best.value.point + 1e-9, gv.point);
    const double denom = best.value.point + best.value.aspect;
    if (denom > 1e-9)
      worst_ratio = std::min(worst_ratio, (gv.point + gv.aspect) / denom);
  }
  EXPECT_GT(worst_ratio, 0.8);
}

TEST(ExactSolver, RespectsSizeLimits) {
  const CoverageModel model = test::single_poi_model();
  std::vector<PhotoMeta> pool(21, photo_viewing(model.pois()[0], 0.0));
  EXPECT_THROW(exact_select(model, pool, 1, 0.5, 1, {}), std::logic_error);
  std::vector<PhotoMeta> pool11(11, photo_viewing(model.pois()[0], 0.0));
  EXPECT_THROW(exact_reallocate(model, pool11, 1, 0.5, 1, 2, 0.5, 1, {}),
               std::logic_error);
}

TEST(ExactSolver, EnvironmentShiftsTheOptimum) {
  // With the center already holding the front view, the optimum flips to
  // the back view.
  const CoverageModel model = test::single_poi_model(30.0);
  test::reset_photo_ids();
  const PhotoMeta front = photo_viewing(model.pois()[0], 0.0);
  const PhotoMeta back = photo_viewing(model.pois()[0], 180.0);
  const PhotoFootprint fp_front = model.footprint(front);
  std::vector<NodeCollection> env{{kCommandCenter, 1.0, {&fp_front}}};
  const ExactSelection best = exact_select(
      model, std::vector<PhotoMeta>{front, back}, 1, 0.9, kPhoto, env);
  ASSERT_EQ(best.chosen.size(), 1u);
  EXPECT_EQ(best.chosen[0], back.id);
}

}  // namespace
}  // namespace photodtn
