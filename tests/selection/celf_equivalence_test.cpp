// CELF / batched-kernel equivalence suite. The optimization contract of the
// selection layer is *bitwise*: lazy (CELF) and plain greedy pick identical
// photos in identical order; gains_batch returns exactly the values the
// per-candidate gain() would; and a thread pool of any size changes nothing
// but wall-clock time. These tests pin that contract across 1000 random
// scenarios plus adversarial tie and eps-boundary constructions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "selection/greedy_selector.h"
#include "selection/selection_env.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace photodtn {
namespace {

using test::make_poi;
using test::photo_viewing;

constexpr std::uint64_t kPhotoBytes = 4'000'000;

/// One random scenario: a handful of PoIs, a photo pool aimed at them, and
/// an optional set of environment collections.
struct Scenario {
  PoiList pois;
  CoverageModel model;
  std::vector<PhotoMeta> pool;
  std::vector<NodeCollection> collections;

  Scenario(Rng& rng, std::size_t npois, std::size_t nphotos, std::size_t nenv)
      : pois(random_pois(rng, npois)), model(pois, deg_to_rad(25.0)) {
    for (std::size_t k = 0; k < nphotos; ++k)
      pool.push_back(photo_viewing(random_poi(rng), rng.uniform(0.0, 360.0),
                                   rng.uniform(60.0, 150.0)));
    std::vector<std::size_t> counts;
    for (std::size_t n = 0; n < nenv; ++n) {
      counts.push_back(static_cast<std::size_t>(rng.uniform_int(1, 4)));
      for (std::size_t k = 0; k < counts.back(); ++k)
        env_photos.push_back(
            photo_viewing(random_poi(rng), rng.uniform(0.0, 360.0)));
    }
    // Resolve environment footprints only after env_photos stops growing
    // (footprint_cached pointers are stable, but the vector isn't).
    std::size_t next = 0;
    for (std::size_t n = 0; n < nenv; ++n) {
      NodeCollection nc;
      nc.node = static_cast<NodeId>(100 + n);
      nc.delivery_prob = rng.uniform(0.1, 0.9);
      for (std::size_t k = 0; k < counts[n]; ++k, ++next)
        nc.footprints.push_back(&model.footprint_cached(env_photos[next]));
      collections.push_back(std::move(nc));
    }
  }

  std::vector<PhotoMeta> env_photos;

 private:
  static PoiList random_pois(Rng& rng, std::size_t npois) {
    PoiList out;
    for (std::size_t i = 0; i < npois; ++i)
      out.push_back(make_poi(rng.uniform(-250.0, 250.0), rng.uniform(-250.0, 250.0),
                             static_cast<std::int32_t>(i),
                             rng.uniform(0.5, 2.0)));
    return out;
  }
  const PointOfInterest& random_poi(Rng& rng) const {
    return pois[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pois.size()) - 1))];
  }
};

std::vector<PhotoId> run_select(const Scenario& sc, bool lazy, std::uint64_t cap,
                                ThreadPool* pool = nullptr, double eps = 1e-9) {
  GreedyParams params;
  params.lazy = lazy;
  params.pool = pool;
  params.eps = eps;
  SelectionEnvironment env(sc.model, sc.collections);
  GreedyPhase phase(env, 0.7);
  return GreedySelector(params).select(sc.model, sc.pool, cap, phase);
}

TEST(CelfEquivalence, ThousandSeedsLazyEqualsPlainIdenticalSetsAndOrder) {
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    Rng rng(seed);
    test::reset_photo_ids();
    const Scenario sc(rng,
                      static_cast<std::size_t>(rng.uniform_int(2, 7)),
                      static_cast<std::size_t>(rng.uniform_int(4, 18)),
                      static_cast<std::size_t>(rng.uniform_int(0, 3)));
    const std::uint64_t cap =
        static_cast<std::uint64_t>(rng.uniform_int(2, 8)) * kPhotoBytes;
    const auto lazy = run_select(sc, /*lazy=*/true, cap);
    const auto plain = run_select(sc, /*lazy=*/false, cap);
    ASSERT_EQ(lazy, plain) << "seed " << seed;  // ids AND order
  }
}

TEST(CelfEquivalence, GainsBatchMatchesPerCandidateGainBitwise) {
  Rng rng(77);
  test::reset_photo_ids();
  const Scenario sc(rng, 6, 96, 3);  // > one pool grain of candidates
  SelectionEnvironment env(sc.model, sc.collections);
  GreedyPhase phase(env, 0.7);
  std::vector<const PhotoFootprint*> fps;
  sc.model.footprints_cached(sc.pool, fps);
  // Commit a few photos so gains are true marginals over a non-empty set.
  phase.commit(*fps[0]);
  phase.commit(*fps[1]);

  std::vector<CoverageValue> serial(fps.size());
  phase.gains_batch(fps, serial, nullptr);
  for (std::size_t i = 0; i < fps.size(); ++i)
    ASSERT_EQ(serial[i], phase.gain(*fps[i])) << "candidate " << i;

  ThreadPool pool(4);
  std::vector<CoverageValue> pooled(fps.size());
  phase.gains_batch(fps, pooled, &pool);
  for (std::size_t i = 0; i < fps.size(); ++i)
    ASSERT_EQ(pooled[i], serial[i]) << "candidate " << i;
}

TEST(CelfEquivalence, PooledSelectionIsBitIdenticalToSerial) {
  Rng rng(123);
  test::reset_photo_ids();
  const Scenario sc(rng, 6, 96, 2);
  const std::uint64_t cap = 20 * kPhotoBytes;
  ThreadPool pool(4);
  for (const bool lazy : {false, true}) {
    const auto serial = run_select(sc, lazy, cap, nullptr);
    const auto pooled = run_select(sc, lazy, cap, &pool);
    EXPECT_EQ(serial, pooled) << "lazy " << lazy;
  }
}

TEST(CelfEquivalence, AdversarialClonePoolTiesBreakByLowestIdOnBothPaths) {
  // Clones tie *exactly* (same footprint, same arithmetic); among tied
  // candidates the lowest PhotoId must win on every path, whatever the pool
  // permutation.
  const CoverageModel model = test::single_poi_model(30.0);
  test::reset_photo_ids();
  const PhotoMeta base_a = photo_viewing(model.pois()[0], 0.0);
  const PhotoMeta base_b = photo_viewing(model.pois()[0], 180.0);
  std::vector<PhotoMeta> pool;
  for (PhotoId c = 0; c < 3; ++c) {
    PhotoMeta a = base_a, b = base_b;
    a.id = 10 + c;
    b.id = 20 + c;
    pool.push_back(a);
    pool.push_back(b);
  }
  std::sort(pool.begin(), pool.end(),
            [](const PhotoMeta& x, const PhotoMeta& y) { return x.id < y.id; });
  for (int perm = 0; perm < 6; ++perm) {
    std::vector<PhotoMeta> shuffled = pool;
    Rng rng(static_cast<std::uint64_t>(perm) + 1);
    for (std::size_t i = shuffled.size(); i > 1; --i)
      std::swap(shuffled[i - 1],
                shuffled[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    std::vector<std::vector<PhotoId>> results;
    for (const bool lazy : {false, true}) {
      GreedyParams params;
      params.lazy = lazy;
      SelectionEnvironment env(model, {});
      GreedyPhase phase(env, 1.0);
      results.push_back(
          GreedySelector(params).select(model, shuffled, 2 * kPhotoBytes, phase));
    }
    ASSERT_EQ(results[0], results[1]) << "perm " << perm;
    // Two photos fit; each clone group contributes its lowest id.
    ASSERT_EQ(results[0].size(), 2u) << "perm " << perm;
    EXPECT_EQ(std::min(results[0][0], results[0][1]), 10u) << "perm " << perm;
    EXPECT_EQ(std::max(results[0][0], results[0][1]), 20u) << "perm " << perm;
  }
}

TEST(CelfEquivalence, EpsBoundaryIsExclusiveOnBothPaths) {
  // eps equal to the best candidate's larger gain component must terminate
  // immediately (the boundary is exclusive); one ulp below it must select.
  const CoverageModel model = test::single_poi_model(30.0);
  test::reset_photo_ids();
  std::vector<PhotoMeta> pool{photo_viewing(model.pois()[0], 0.0)};
  CoverageValue g;
  {
    SelectionEnvironment env(model, {});
    GreedyPhase phase(env, 1.0);
    g = phase.gain(model.footprint_cached(pool[0]));
  }
  const double top = std::max(g.point, g.aspect);
  ASSERT_GT(top, 0.0);
  for (const bool lazy : {false, true}) {
    GreedyParams params;
    params.lazy = lazy;
    params.eps = top;  // both components <= eps -> nothing worth taking
    SelectionEnvironment env(model, {});
    GreedyPhase phase(env, 1.0);
    EXPECT_TRUE(GreedySelector(params)
                    .select(model, pool, kPhotoBytes, phase)
                    .empty())
        << "lazy " << lazy;
    params.eps = std::nextafter(top, 0.0);  // strictly below -> selects
    SelectionEnvironment env2(model, {});
    GreedyPhase phase2(env2, 1.0);
    EXPECT_EQ(GreedySelector(params).select(model, pool, kPhotoBytes, phase2).size(),
              1u)
        << "lazy " << lazy;
  }
}

TEST(CelfEquivalence, StatsCountCommitsAndReevals) {
  Rng rng(9);
  test::reset_photo_ids();
  const Scenario sc(rng, 5, 40, 2);
  GreedyParams params;
  params.lazy = true;
  const GreedySelector sel(params);
  SelectionEnvironment env(sc.model, sc.collections);
  GreedyPhase phase(env, 0.7);
  const auto chosen = sel.select(sc.model, sc.pool, 10 * kPhotoBytes, phase);
  const SelectionStats& st = sel.last_stats();
  EXPECT_EQ(st.commits, chosen.size());
  EXPECT_GE(st.gain_evals, sc.pool.size());  // at least the seeding sweep
  EXPECT_LE(st.reevals, st.gain_evals);
}

}  // namespace
}  // namespace photodtn
