#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <string>

#include "sim/result_io.h"
#include "trace/trace_io.h"
#include "util/thread_pool.h"

namespace photodtn {
namespace {

/// A scenario small enough for unit tests: 12 nodes, 20 hours, dense
/// contacts, few PoIs.
ExperimentSpec tiny_spec(const std::string& scheme, std::size_t runs = 2) {
  ExperimentSpec spec;
  spec.scenario = ScenarioConfig::mit(1);
  spec.scenario.num_pois = 30;
  spec.scenario.photo_rate_per_hour = 60.0;
  spec.scenario.trace.num_participants = 12;
  spec.scenario.trace.duration_s = 20.0 * 3600.0;
  spec.scenario.trace.base_pair_rate_per_hour = 0.3;
  spec.scenario.trace.gateway_fraction = 0.15;
  spec.scenario.trace.gateway_mean_interval_s = 3600.0;
  spec.scenario.sim.sample_interval_s = 2.0 * 3600.0;
  spec.scenario.sim.node_storage_bytes = 40'000'000;  // 10 photos
  spec.scheme = scheme;
  spec.runs = runs;
  return spec;
}

TEST(Experiment, SingleRunIsReproducible) {
  const ExperimentSpec spec = tiny_spec("OurScheme");
  const SimResult a = run_single(spec, 42);
  const SimResult b = run_single(spec, 42);
  EXPECT_EQ(a.delivered_photos, b.delivered_photos);
  EXPECT_EQ(a.counters.transfers, b.counters.transfers);
  EXPECT_DOUBLE_EQ(a.final_point_norm, b.final_point_norm);
  EXPECT_DOUBLE_EQ(a.final_aspect_norm, b.final_aspect_norm);
  ASSERT_EQ(a.samples.size(), b.samples.size());
}

TEST(Experiment, DifferentSeedsProduceDifferentRuns) {
  const ExperimentSpec spec = tiny_spec("OurScheme");
  const SimResult a = run_single(spec, 1);
  const SimResult b = run_single(spec, 2);
  EXPECT_NE(a.counters.photos_taken, b.counters.photos_taken);
}

TEST(Experiment, AggregatesRuns) {
  const ExperimentResult r = run_experiment(tiny_spec("Spray&Wait", 3));
  EXPECT_EQ(r.scheme, "Spray&Wait");
  EXPECT_EQ(r.point.runs(), 3u);
  EXPECT_EQ(r.final_point.count(), 3u);
  ASSERT_FALSE(r.sample_times.empty());
  // Samples cover [0, horizon].
  EXPECT_DOUBLE_EQ(r.sample_times.front(), 0.0);
  EXPECT_NEAR(r.sample_times.back(), 20.0 * 3600.0, 2.0 * 3600.0 + 1.0);
  // Coverage curves are monotone (the center never loses photos).
  const auto means = r.point.means();
  for (std::size_t i = 1; i < means.size(); ++i) EXPECT_GE(means[i] + 1e-12, means[i - 1]);
}

TEST(Experiment, BestPossibleGetsUnlimitedResources) {
  // BestPossible must at least match every constrained scheme.
  const ExperimentResult best = run_experiment(tiny_spec("BestPossible", 2));
  const ExperimentResult spray = run_experiment(tiny_spec("Spray&Wait", 2));
  EXPECT_GE(best.final_point.mean() + 1e-9, spray.final_point.mean());
  EXPECT_GE(best.final_aspect.mean() + 1e-9, spray.final_aspect.mean());
}

TEST(Experiment, ComparisonRunsAllSchemes) {
  const auto results = run_comparison(tiny_spec("OurScheme", 1),
                                      {"OurScheme", "Spray&Wait"});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].scheme, "OurScheme");
  EXPECT_EQ(results[1].scheme, "Spray&Wait");
}

TEST(Experiment, ParallelAggregationIsDeterministic) {
  // Runs execute on worker threads; the aggregate statistics must not
  // depend on completion order.
  const ExperimentSpec spec = tiny_spec("OurScheme", 4);
  const ExperimentResult a = run_experiment(spec);
  const ExperimentResult b = run_experiment(spec);
  EXPECT_DOUBLE_EQ(a.final_point.mean(), b.final_point.mean());
  EXPECT_DOUBLE_EQ(a.final_aspect.mean(), b.final_aspect.mean());
  EXPECT_DOUBLE_EQ(a.final_delivered.mean(), b.final_delivered.mean());
  EXPECT_EQ(a.point.means(), b.point.means());
}

TEST(Experiment, PoolSizeDoesNotChangeAnyAggregateByte) {
  // The whole determinism contract in one assertion: a serial pool and a
  // 4-thread pool must yield byte-identical serialized results — every
  // float, every counter, every curve.
  const ExperimentSpec spec = tiny_spec("OurScheme", 4);
  ThreadPool serial(1), wide(4);
  const std::string a = experiment_result_to_json(run_experiment(spec, &serial));
  const std::string b = experiment_result_to_json(run_experiment(spec, &wide));
  EXPECT_EQ(a, b);
}

TEST(Experiment, NullPoolUsesTheSharedPool) {
  const ExperimentSpec spec = tiny_spec("OurScheme", 2);
  ThreadPool serial(1);
  const std::string a = experiment_result_to_json(run_experiment(spec, &serial));
  const std::string b = experiment_result_to_json(run_experiment(spec, nullptr));
  EXPECT_EQ(a, b);
}

TEST(Experiment, DeliveredIdSequenceIsReproducible) {
  const ExperimentSpec spec = tiny_spec("OurScheme");
  const SimResult a = run_single(spec, 9);
  const SimResult b = run_single(spec, 9);
  EXPECT_EQ(a.delivered_ids, b.delivered_ids);
}

TEST(Experiment, TraceFileReplayMatchesInMemoryTrace) {
  // Writing the synthetic trace to disk and replaying it through
  // spec.trace_file must give the same simulation as the generated one.
  const ExperimentSpec base = tiny_spec("OurScheme");
  SyntheticTraceConfig tc = base.scenario.trace;
  tc.seed = 5 ^ 0x7ace5eedULL;  // run_single's per-seed trace derivation
  const ContactTrace trace = generate_synthetic_trace(tc);
  const std::string path = ::testing::TempDir() + "/photodtn_replay.csv";
  ASSERT_TRUE(write_trace_file(path, trace));

  ExperimentSpec from_file = base;
  from_file.trace_file = path;
  const SimResult generated = run_single(base, 5);
  const SimResult replayed = run_single(from_file, 5);
  EXPECT_EQ(generated.delivered_ids, replayed.delivered_ids);
  EXPECT_EQ(generated.counters.transfers, replayed.counters.transfers);
}

TEST(Experiment, ContactDurationCapReducesOrEqualsCoverage) {
  ExperimentSpec full = tiny_spec("OurScheme", 2);
  ExperimentSpec capped = full;
  capped.max_contact_duration_s = 30.0;
  const ExperimentResult rf = run_experiment(full);
  const ExperimentResult rc = run_experiment(capped);
  EXPECT_LE(rc.final_aspect.mean(), rf.final_aspect.mean() + 1e-9);
}

}  // namespace
}  // namespace photodtn
