#include "sim/result_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

namespace photodtn {
namespace {

ExperimentResult tiny_result() {
  ExperimentSpec spec;
  spec.scenario = ScenarioConfig::mit(1);
  spec.scenario.num_pois = 20;
  spec.scenario.photo_rate_per_hour = 40.0;
  spec.scenario.trace.num_participants = 10;
  spec.scenario.trace.duration_s = 10.0 * 3600.0;
  spec.scenario.trace.base_pair_rate_per_hour = 0.4;
  spec.scenario.sim.sample_interval_s = 2.0 * 3600.0;
  spec.scheme = "Spray&Wait";
  spec.runs = 2;
  return run_experiment(spec);
}

TEST(ResultIo, SingleResultContainsAllSections) {
  const std::string json = experiment_result_to_json(tiny_result());
  for (const char* field :
       {"\"scheme\":\"Spray&Wait\"", "\"runs\":2", "\"sample_times_s\":",
        "\"point_mean\":", "\"point_ci95\":", "\"aspect_mean\":",
        "\"delivered_mean\":", "\"final\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ResultIo, ComparisonWrapsResultsArray) {
  const ExperimentResult r = tiny_result();
  const std::vector<ExperimentResult> results{r, r};
  const std::string json = comparison_to_json(results);
  EXPECT_EQ(json.rfind("{\"results\":[", 0), 0u);
  // Two scheme entries.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"scheme\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

TEST(ResultIo, MetricsBlockAbsentWhenObsOff) {
  // An obs-off run must serialize without any "metrics" key so golden
  // comparison files are unchanged by the obs layer's existence.
  const std::string json = experiment_result_to_json(tiny_result());
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
}

TEST(ResultIo, MetricsBlockRoundTrip) {
  ExperimentResult r = tiny_result();
  // Empty-but-present snapshot (runs counted, nothing recorded): the block
  // appears with empty sections.
  r.metrics.runs = 1;
  std::string json = experiment_result_to_json(r);
  EXPECT_NE(json.find("\"metrics\":{\"runs\":1,\"counters\":{}"), std::string::npos);

  // Populated snapshot: counters, gauges, and a histogram all serialize.
  obs::MetricsRegistry reg;
  reg.add(reg.counter("sim.contacts"), 9);
  reg.set(reg.gauge("pool.load"), 0.5);
  reg.record(reg.histogram("selection.pool_size", {2, 8}), 3);
  r.metrics = reg.snapshot();
  json = experiment_result_to_json(r);
  for (const char* field :
       {"\"metrics\":", "\"sim.contacts\":9", "\"pool.load\":0.5",
        "\"selection.pool_size\":", "\"bounds\":[2,8]", "\"counts\":[0,1,0]"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // The metrics-only export wraps the same block under the schema tag.
  const std::vector<ExperimentResult> results{r};
  const std::string metrics_json = metrics_to_json(results);
  EXPECT_EQ(metrics_json.rfind("{\"schema\":\"photodtn-metrics/1\"", 0), 0u);
  EXPECT_NE(metrics_json.find("\"sim.contacts\":9"), std::string::npos);
}

TEST(ResultIo, WritesFile) {
  const ExperimentResult r = tiny_result();
  const std::string path = ::testing::TempDir() + "/photodtn_results.json";
  ASSERT_TRUE(write_comparison_json(path, std::vector<ExperimentResult>{r}));
  std::ifstream f(path);
  std::string contents((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"results\""), std::string::npos);
  EXPECT_FALSE(write_comparison_json("/nonexistent/dir/x.json",
                                     std::vector<ExperimentResult>{r}));
}

}  // namespace
}  // namespace photodtn
