#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geometry/angle.h"
#include "test_util.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"
#include "workload/scenario.h"
#include "workload/sensor_model.h"

namespace photodtn {
namespace {

TEST(PoiGen, UniformInsideRegionWithUnitWeights) {
  Rng rng(1);
  const PoiList pois = generate_uniform_pois(250, 6300.0, rng);
  ASSERT_EQ(pois.size(), 250u);
  for (const auto& p : pois) {
    EXPECT_GE(p.location.x, 0.0);
    EXPECT_LE(p.location.x, 6300.0);
    EXPECT_GE(p.location.y, 0.0);
    EXPECT_LE(p.location.y, 6300.0);
    EXPECT_DOUBLE_EQ(p.weight, 1.0);
  }
  // Ids are sequential.
  EXPECT_EQ(pois.front().id, 0);
  EXPECT_EQ(pois.back().id, 249);
}

TEST(PoiGen, ClusteredPoisAreDenserNearHubs) {
  Rng rng(2);
  const PoiList pois = generate_clustered_pois(200, 6300.0, 3, 150.0, rng);
  ASSERT_EQ(pois.size(), 200u);
  // Mean nearest-neighbor distance must be far below the uniform baseline.
  double nn_sum = 0.0;
  for (const auto& a : pois) {
    double best = 1e18;
    for (const auto& b : pois) {
      if (a.id == b.id) continue;
      best = std::min(best, a.location.distance_to(b.location));
    }
    nn_sum += best;
  }
  Rng rng2(3);
  const PoiList uniform = generate_uniform_pois(200, 6300.0, rng2);
  double nn_uniform = 0.0;
  for (const auto& a : uniform) {
    double best = 1e18;
    for (const auto& b : uniform) {
      if (a.id == b.id) continue;
      best = std::min(best, a.location.distance_to(b.location));
    }
    nn_uniform += best;
  }
  EXPECT_LT(nn_sum, 0.5 * nn_uniform);
}

TEST(PoiGen, RandomizeWeights) {
  Rng rng(4);
  PoiList pois = generate_uniform_pois(50, 1000.0, rng);
  randomize_weights(pois, 1.0, 5.0, rng);
  for (const auto& p : pois) {
    EXPECT_GE(p.weight, 1.0);
    EXPECT_LE(p.weight, 5.0);
  }
}

TEST(PhotoGen, RateAndAssignment) {
  const ScenarioConfig cfg = ScenarioConfig::mit(1);
  Rng rng(5);
  const PoiList pois = generate_uniform_pois(cfg.num_pois, cfg.region_m, rng);
  PhotoGenerator gen(cfg, pois);
  Rng ev_rng(6);
  const double horizon = 10.0 * 3600.0;
  const auto events = gen.generate(horizon, 97, ev_rng);
  // 250 photos/hour for 10 hours: ~2500 events.
  EXPECT_NEAR(static_cast<double>(events.size()), 2500.0, 250.0);
  for (const auto& e : events) {
    EXPECT_GE(e.node, 1);
    EXPECT_LE(e.node, 97);
    EXPECT_EQ(e.photo.taken_by, e.node);
    EXPECT_DOUBLE_EQ(e.photo.taken_at, e.time);
    EXPECT_EQ(e.photo.size_bytes, cfg.photo_size_bytes);
    EXPECT_GE(e.photo.fov, cfg.fov_min);
    EXPECT_LE(e.photo.fov, cfg.fov_max);
    // Range follows r = c cot(fov/2) with c in [50, 100].
    const double c = e.photo.range * std::tan(e.photo.fov / 2.0);
    EXPECT_GE(c, cfg.range_coeff_min_m - 1e-6);
    EXPECT_LE(c, cfg.range_coeff_max_m + 1e-6);
  }
  // Ids unique and nonzero.
  std::set<PhotoId> ids;
  for (const auto& e : events) ids.insert(e.photo.id);
  EXPECT_EQ(ids.size(), events.size());
  EXPECT_EQ(ids.count(0), 0u);
}

TEST(PhotoGen, AimedPhotosPointAtPois) {
  ScenarioConfig cfg = ScenarioConfig::mit(1);
  cfg.num_pois = 50;
  Rng rng(7);
  const PoiList pois = generate_uniform_pois(cfg.num_pois, cfg.region_m, rng);
  PhotoGenOptions opts;
  opts.aimed_fraction = 1.0;
  opts.aim_search_radius_m = 1e9;  // always find a target
  PhotoGenerator gen(cfg, pois, opts);
  Rng ev_rng(8);
  const auto events = gen.generate(3600.0, 10, ev_rng);
  ASSERT_GT(events.size(), 100u);
  // Aimed photos have their optical axis within ~5 degrees of some PoI.
  std::size_t aligned = 0;
  for (const auto& e : events) {
    for (const auto& poi : pois) {
      const double heading = (poi.location - e.photo.location).heading();
      if (angle_distance(heading, e.photo.orientation) <= deg_to_rad(5.1)) {
        ++aligned;
        break;
      }
    }
  }
  EXPECT_EQ(aligned, events.size());
}

TEST(PhotoGen, DeterministicForSeed) {
  const ScenarioConfig cfg = ScenarioConfig::mit(1);
  Rng rng(9);
  const PoiList pois = generate_uniform_pois(10, cfg.region_m, rng);
  PhotoGenerator g1(cfg, pois), g2(cfg, pois);
  Rng r1(42), r2(42);
  const auto e1 = g1.generate(3600.0, 5, r1);
  const auto e2 = g2.generate(3600.0, 5, r2);
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) EXPECT_EQ(e1[i].photo, e2[i].photo);
}

TEST(PhotoGen, QualityBandsFollowLowQualityFraction) {
  ScenarioConfig cfg = ScenarioConfig::mit(1);
  Rng rng(12);
  const PoiList pois = generate_uniform_pois(10, cfg.region_m, rng);
  PhotoGenOptions opts;
  opts.low_quality_fraction = 0.4;
  PhotoGenerator gen(cfg, pois, opts);
  Rng ev_rng(13);
  const auto events = gen.generate(20.0 * 3600.0, 10, ev_rng);
  ASSERT_GT(events.size(), 500u);
  std::size_t low = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.photo.quality, 0.0);
    EXPECT_LE(e.photo.quality, 1.0);
    if (e.photo.quality < 0.5) ++low;
  }
  const double frac = static_cast<double>(low) / static_cast<double>(events.size());
  EXPECT_NEAR(frac, 0.4, 0.06);
}

TEST(PhotoGen, DefaultQualityIsAlwaysAcceptable) {
  ScenarioConfig cfg = ScenarioConfig::mit(1);
  Rng rng(14);
  const PoiList pois = generate_uniform_pois(10, cfg.region_m, rng);
  PhotoGenerator gen(cfg, pois);
  Rng ev_rng(15);
  for (const auto& e : gen.generate(5.0 * 3600.0, 5, ev_rng))
    EXPECT_GE(e.photo.quality, 0.5);
}

TEST(PhotoGen, BurstsClusterInTimeSpaceAndHeading) {
  ScenarioConfig cfg = ScenarioConfig::mit(1);
  Rng rng(21);
  const PoiList pois = generate_uniform_pois(10, cfg.region_m, rng);
  PhotoGenOptions opts;
  opts.burst_size = 4;
  opts.burst_spread_s = 20.0;
  opts.burst_location_jitter_m = 5.0;
  PhotoGenerator gen(cfg, pois, opts);
  Rng ev_rng(22);
  const auto events = gen.generate(40.0 * 3600.0, 10, ev_rng);
  ASSERT_GT(events.size(), 100u);
  // Events are time-sorted.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].time, events[i].time);
  // A photo taken within 20 s of another by the same node should be nearby:
  // count pairs and verify the overwhelming majority cluster.
  std::size_t close_pairs = 0, near_pairs = 0;
  for (std::size_t i = 1; i < events.size(); ++i) {
    for (std::size_t j = i; j-- > 0;) {
      if (events[i].time - events[j].time > 25.0) break;
      if (events[i].node != events[j].node) continue;
      ++close_pairs;
      if (events[i].photo.location.distance_to(events[j].photo.location) < 50.0)
        ++near_pairs;
    }
  }
  ASSERT_GT(close_pairs, 50u);
  // Same-node close-in-time pairs are nearly always burst-mates (a small
  // minority are coincidental independent bursts at distinct spots).
  EXPECT_GT(static_cast<double>(near_pairs) / static_cast<double>(close_pairs), 0.8);
}

TEST(PhotoGen, BurstModePreservesTotalRate) {
  ScenarioConfig cfg = ScenarioConfig::mit(1);
  cfg.photo_rate_per_hour = 120.0;
  Rng rng(23);
  const PoiList pois = generate_uniform_pois(10, cfg.region_m, rng);
  PhotoGenOptions opts;
  opts.burst_size = 5;
  PhotoGenerator gen(cfg, pois, opts);
  Rng ev_rng(24);
  const double horizon = 100.0 * 3600.0;
  const auto events = gen.generate(horizon, 10, ev_rng);
  EXPECT_NEAR(static_cast<double>(events.size()), 120.0 * 100.0, 120.0 * 100.0 * 0.15);
}

TEST(PhotoGen, HotspotPlacementClustersPhotos) {
  ScenarioConfig cfg = ScenarioConfig::mit(1);
  Rng rng(31);
  const PoiList pois = generate_uniform_pois(10, cfg.region_m, rng);
  PhotoGenOptions opts;
  opts.location_hotspots = 5;
  opts.hotspot_sigma_m = 150.0;
  PhotoGenerator gen(cfg, pois, opts);
  Rng ev_rng(32);
  const auto events = gen.generate(40.0 * 3600.0, 20, ev_rng);
  ASSERT_GT(events.size(), 500u);
  ASSERT_EQ(gen.hotspots().size(), 5u);
  // Nearly all photos within 4 sigma of some hotspot (clamping at the
  // region border can stretch a few).
  std::size_t near = 0;
  for (const auto& e : events) {
    for (const Vec2 h : gen.hotspots()) {
      if (e.photo.location.distance_to(h) <= 4.0 * 150.0) {
        ++near;
        break;
      }
    }
  }
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(events.size()), 0.95);
}

TEST(PhotoGen, CalibrationSetsHotspotsAndDutyCycle) {
  ScenarioConfig sc = ScenarioConfig::mit(1);
  PhotoGenOptions po;
  apply_mit_calibration(sc, po);
  EXPECT_GT(sc.trace.mean_on_s, 0.0);
  EXPECT_GT(sc.trace.mean_off_s, 0.0);
  EXPECT_GT(po.location_hotspots, 0u);
}

TEST(SyntheticTraceDuty, DutyCyclingThinsContacts) {
  SyntheticTraceConfig on_cfg;
  on_cfg.num_participants = 30;
  on_cfg.duration_s = 100.0 * 3600.0;
  on_cfg.base_pair_rate_per_hour = 0.05;
  on_cfg.seed = 5;
  SyntheticTraceConfig duty_cfg = on_cfg;
  duty_cfg.mean_on_s = 8.0 * 3600.0;
  duty_cfg.mean_off_s = 16.0 * 3600.0;  // duty 1/3: both-on prob ~1/9
  const auto full = generate_synthetic_trace(on_cfg);
  const auto thinned = generate_synthetic_trace(duty_cfg);
  ASSERT_GT(full.size(), 200u);
  const double ratio =
      static_cast<double>(thinned.size()) / static_cast<double>(full.size());
  EXPECT_LT(ratio, 0.25);
  EXPECT_GT(ratio, 0.02);
}

TEST(SyntheticTraceDuty, GatewayContactsOnlyNeedTheGatewayOn) {
  // The command center is always on: the thinning factor for gateway
  // contacts is ~duty, not ~duty^2. With duty 0.5 a good share survives.
  SyntheticTraceConfig cfg;
  cfg.num_participants = 20;
  cfg.duration_s = 300.0 * 3600.0;
  cfg.base_pair_rate_per_hour = 0.0;  // isolate gateway contacts
  cfg.gateway_fraction = 0.5;
  cfg.gateway_mean_interval_s = 3600.0;
  cfg.mean_on_s = 6.0 * 3600.0;
  cfg.mean_off_s = 6.0 * 3600.0;
  cfg.seed = 6;
  const auto trace = generate_synthetic_trace(cfg);
  const TraceStats s = trace.stats();
  EXPECT_EQ(s.contacts, s.command_center_contacts);
  // ~10 gateways x 300 contacts x duty 0.5 ~ 1500; assert the right order.
  EXPECT_GT(s.command_center_contacts, 800u);
  EXPECT_LT(s.command_center_contacts, 2200u);
}

TEST(PhotoGen, MobilityCoupledPhotosAreTakenWhereThePhotographerIs) {
  RwpConfig mob_cfg;
  mob_cfg.num_participants = 5;
  mob_cfg.region_m = 1000.0;
  mob_cfg.duration_s = 6.0 * 3600.0;
  mob_cfg.seed = 3;
  const RwpMobility mobility(mob_cfg);
  ScenarioConfig cfg = ScenarioConfig::mit(1);
  cfg.region_m = 1000.0;
  Rng rng(41);
  const PoiList pois = generate_uniform_pois(5, 1000.0, rng);
  PhotoGenOptions opts;
  opts.mobility = &mobility;
  PhotoGenerator gen(cfg, pois, opts);
  Rng ev_rng(42);
  const auto events = gen.generate(mob_cfg.duration_s, 5, ev_rng);
  ASSERT_GT(events.size(), 20u);
  for (const auto& e : events) {
    EXPECT_EQ(e.photo.location, mobility.position(e.node, e.time))
        << "photo not taken at the photographer's position";
  }
}

TEST(SensorModel, NoiseStaysWithinSpec) {
  Rng rng(10);
  const SensorNoise noise;
  const PhotoMeta truth = test::make_photo(100.0, 100.0, 90.0);
  for (int i = 0; i < 500; ++i) {
    const PhotoMeta noisy = apply_sensor_noise(truth, noise, rng);
    EXPECT_EQ(noisy.id, truth.id);
    EXPECT_EQ(noisy.size_bytes, truth.size_bytes);
    EXPECT_LE(angle_distance(noisy.orientation, truth.orientation),
              deg_to_rad(5.0) + 1e-9);
    // GPS error is unbounded in principle; 6 sigma is a sane envelope.
    EXPECT_LE(noisy.location.distance_to(truth.location), 6.0 * 4.0 * 1.5);
  }
}

TEST(SensorModel, ZeroNoiseIsIdentity) {
  Rng rng(11);
  SensorNoise none;
  none.gps_sigma_m = 0.0;
  none.orientation_max_err_rad = 0.0;
  none.fov_rel_sigma = 0.0;
  const PhotoMeta truth = test::make_photo(10.0, 20.0, 30.0);
  EXPECT_EQ(apply_sensor_noise(truth, none, rng), truth);
}

TEST(Scenario, TableIPresets) {
  const ScenarioConfig mit = ScenarioConfig::mit(1);
  EXPECT_DOUBLE_EQ(mit.region_m, 6300.0);
  EXPECT_EQ(mit.num_pois, 250u);
  EXPECT_NEAR(mit.effective_angle, deg_to_rad(30.0), 1e-12);
  EXPECT_DOUBLE_EQ(mit.photo_rate_per_hour, 250.0);
  EXPECT_EQ(mit.photo_size_bytes, 4'000'000u);
  EXPECT_DOUBLE_EQ(mit.p_thld, 0.8);
  EXPECT_EQ(mit.trace.num_participants, 97);
  EXPECT_DOUBLE_EQ(mit.sim.prophet.p_init, 0.75);
  EXPECT_DOUBLE_EQ(mit.sim.prophet.beta, 0.25);
  EXPECT_DOUBLE_EQ(mit.sim.prophet.gamma, 0.98);
  EXPECT_EQ(mit.sim.node_storage_bytes, 600'000'000u);

  const ScenarioConfig cam = ScenarioConfig::cambridge(1);
  EXPECT_EQ(cam.trace.num_participants, 54);
  EXPECT_DOUBLE_EQ(cam.trace.duration_s, 200.0 * 3600.0);
}

}  // namespace
}  // namespace photodtn
