// Failure-injection / fuzz test for the DTN substrate: a hostile scheme
// issues random (often invalid) operations; the simulator must keep its
// invariants — storage budgets never exceeded, byte accounting consistent,
// deliveries monotone, the command center never drops — and never crash.
#include <gtest/gtest.h>

#include "dtn/simulator.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"

namespace photodtn {
namespace {

class ChaosScheme : public Scheme {
 public:
  explicit ChaosScheme(std::uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "Chaos"; }

  void on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) override {
    switch (rng_.uniform_int(0, 2)) {
      case 0:
        ctx.store_photo(node, photo);
        break;
      case 1:  // store then immediately drop
        ctx.store_photo(node, photo);
        ctx.drop_photo(node, photo.id);
        break;
      default:  // discard
        break;
    }
    check_invariants(ctx);
  }

  void on_contact(SimContext& ctx, ContactSession& s) override {
    for (int op = 0; op < 20; ++op) {
      const bool a_to_b = rng_.bernoulli(0.5);
      const NodeId from = a_to_b ? s.a() : s.b();
      const NodeId to = a_to_b ? s.b() : s.a();
      switch (rng_.uniform_int(0, 3)) {
        case 0: {  // transfer a random stored photo (may duplicate/overflow)
          const auto photos = ctx.node(from).store().photos();
          if (photos.empty()) break;
          const auto& p = photos[static_cast<std::size_t>(
              rng_.uniform_int(0, static_cast<std::int64_t>(photos.size()) - 1))];
          s.transfer(p.id, from, to, rng_.bernoulli(0.7));
          break;
        }
        case 1:  // transfer a bogus photo id
          s.transfer(999999 + static_cast<PhotoId>(op), from, to, true);
          break;
        case 2: {  // drop something random (possibly from the center)
          const auto photos = ctx.node(to).store().photos();
          if (photos.empty()) break;
          ctx.drop_photo(to, photos.front().id);
          break;
        }
        default: {  // try to drop from the command center explicitly
          const auto cc = ctx.node(kCommandCenter).store().photos();
          if (!cc.empty()) {
            EXPECT_FALSE(ctx.drop_photo(kCommandCenter, cc.front().id));
          }
          break;
        }
      }
      check_invariants(ctx);
    }
  }

 private:
  void check_invariants(SimContext& ctx) {
    for (NodeId n = 0; n < ctx.num_nodes(); ++n) {
      const PhotoStore& st = ctx.node(n).store();
      if (st.capacity_bytes() != PhotoStore::kUnlimited) {
        ASSERT_LE(st.used_bytes(), st.capacity_bytes()) << "node " << n;
      }
    }
  }

  Rng rng_;
};

TEST(SimulatorFuzz, SurvivesChaosSchemeWithInvariantsIntact) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Rng poi_rng = rng.split("pois");
    const PoiList pois = generate_uniform_pois(20, 2000.0, poi_rng);
    const CoverageModel model(pois, deg_to_rad(30.0));

    SyntheticTraceConfig tc;
    tc.num_participants = 8;
    tc.duration_s = 20.0 * 3600.0;
    tc.base_pair_rate_per_hour = 0.5;
    tc.seed = seed;
    const ContactTrace trace = generate_synthetic_trace(tc);

    ScenarioConfig sc = ScenarioConfig::mit(seed);
    sc.region_m = 2000.0;
    sc.num_pois = pois.size();
    sc.photo_rate_per_hour = 40.0;
    PhotoGenerator gen(sc, pois);
    Rng photo_rng = rng.split("photos");
    std::vector<PhotoEvent> events = gen.generate(trace.horizon(), 8, photo_rng);

    SimConfig cfg;
    cfg.node_storage_bytes = 3 * 4'000'000;  // tiny: overflow paths exercised
    cfg.bandwidth_bytes_per_s = 5'000.0;     // tiny: budget paths exercised
    cfg.sample_interval_s = 4.0 * 3600.0;
    Simulator sim(model, trace, std::move(events), cfg);
    ChaosScheme chaos(seed * 101);
    const SimResult r = sim.run(chaos);

    // Deliveries are monotone and the counters are self-consistent.
    for (std::size_t i = 1; i < r.samples.size(); ++i) {
      EXPECT_GE(r.samples[i].delivered_photos, r.samples[i - 1].delivered_photos);
      EXPECT_GE(r.samples[i].bytes_transferred, r.samples[i - 1].bytes_transferred);
    }
    EXPECT_EQ(r.delivered_ids.size(), r.delivered_photos);
    EXPECT_LE(r.delivered_photos, r.counters.transfers);
    // Every delivered id is unique (the center accepts each photo once).
    std::set<PhotoId> unique(r.delivered_ids.begin(), r.delivered_ids.end());
    EXPECT_EQ(unique.size(), r.delivered_ids.size());
  }
}

}  // namespace
}  // namespace photodtn
