// Failure-injection / fuzz tests for the DTN substrate.
//
// Part 1 (ChaosScheme): a hostile scheme issues random (often invalid)
// operations; the simulator must keep its invariants — storage budgets never
// exceeded, byte accounting consistent, deliveries monotone, the command
// center never drops — and never crash.
//
// Part 2 (chaos matrix): every production scheme from the factory runs under
// randomly sampled FaultConfigs (interrupted contacts, churn with and
// without wipes, bandwidth jitter, gossip loss). No scheme may violate the
// simulator's global invariants no matter how hostile the fault plan, and
// identical (seed, FaultConfig) pairs must reproduce byte-identical results.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dtn/simulator.h"
#include "schemes/factory.h"
#include "test_util.h"
#include "trace/synthetic_trace.h"
#include "util/rng.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"
#include "workload/scenario.h"

namespace photodtn {
namespace {

class ChaosScheme : public Scheme {
 public:
  explicit ChaosScheme(std::uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "Chaos"; }

  void on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) override {
    switch (rng_.uniform_int(0, 2)) {
      case 0:
        ctx.store_photo(node, photo);
        break;
      case 1:  // store then immediately drop
        ctx.store_photo(node, photo);
        ctx.drop_photo(node, photo.id);
        break;
      default:  // discard
        break;
    }
    check_invariants(ctx);
  }

  void on_contact(SimContext& ctx, ContactSession& s) override {
    for (int op = 0; op < 20; ++op) {
      const bool a_to_b = rng_.bernoulli(0.5);
      const NodeId from = a_to_b ? s.a() : s.b();
      const NodeId to = a_to_b ? s.b() : s.a();
      switch (rng_.uniform_int(0, 3)) {
        case 0: {  // transfer a random stored photo (may duplicate/overflow)
          const auto photos = ctx.node(from).store().photos();
          if (photos.empty()) break;
          const auto& p = photos[static_cast<std::size_t>(
              rng_.uniform_int(0, static_cast<std::int64_t>(photos.size()) - 1))];
          s.transfer(p.id, from, to, rng_.bernoulli(0.7));
          break;
        }
        case 1:  // transfer a bogus photo id
          s.transfer(999999 + static_cast<PhotoId>(op), from, to, true);
          break;
        case 2: {  // drop something random (possibly from the center)
          const auto photos = ctx.node(to).store().photos();
          if (photos.empty()) break;
          ctx.drop_photo(to, photos.front().id);
          break;
        }
        default: {  // try to drop from the command center explicitly
          const auto cc = ctx.node(kCommandCenter).store().photos();
          if (!cc.empty()) {
            EXPECT_FALSE(ctx.drop_photo(kCommandCenter, cc.front().id));
          }
          break;
        }
      }
      check_invariants(ctx);
    }
  }

 private:
  void check_invariants(SimContext& ctx) {
    for (NodeId n = 0; n < ctx.num_nodes(); ++n) {
      const PhotoStore& st = ctx.node(n).store();
      if (st.capacity_bytes() != PhotoStore::kUnlimited) {
        ASSERT_LE(st.used_bytes(), st.capacity_bytes()) << "node " << n;
      }
    }
  }

  Rng rng_;
};

TEST(SimulatorFuzz, SurvivesChaosSchemeWithInvariantsIntact) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Rng poi_rng = rng.split("pois");
    const PoiList pois = generate_uniform_pois(20, 2000.0, poi_rng);
    const CoverageModel model(pois, deg_to_rad(30.0));

    SyntheticTraceConfig tc;
    tc.num_participants = 8;
    tc.duration_s = 20.0 * 3600.0;
    tc.base_pair_rate_per_hour = 0.5;
    tc.seed = seed;
    const ContactTrace trace = generate_synthetic_trace(tc);

    ScenarioConfig sc = ScenarioConfig::mit(seed);
    sc.region_m = 2000.0;
    sc.num_pois = pois.size();
    sc.photo_rate_per_hour = 40.0;
    PhotoGenerator gen(sc, pois);
    Rng photo_rng = rng.split("photos");
    std::vector<PhotoEvent> events = gen.generate(trace.horizon(), 8, photo_rng);

    SimConfig cfg;
    cfg.node_storage_bytes = 3 * 4'000'000;  // tiny: overflow paths exercised
    cfg.bandwidth_bytes_per_s = 5'000.0;     // tiny: budget paths exercised
    cfg.sample_interval_s = 4.0 * 3600.0;
    Simulator sim(model, trace, std::move(events), cfg);
    ChaosScheme chaos(seed * 101);
    const SimResult r = sim.run(chaos);

    // Deliveries are monotone and the counters are self-consistent.
    for (std::size_t i = 1; i < r.samples.size(); ++i) {
      EXPECT_GE(r.samples[i].delivered_photos, r.samples[i - 1].delivered_photos);
      EXPECT_GE(r.samples[i].bytes_transferred, r.samples[i - 1].bytes_transferred);
    }
    EXPECT_EQ(r.delivered_ids.size(), r.delivered_photos);
    EXPECT_LE(r.delivered_photos, r.counters.transfers);
    // Every delivered id is unique (the center accepts each photo once).
    std::set<PhotoId> unique(r.delivered_ids.begin(), r.delivered_ids.end());
    EXPECT_EQ(unique.size(), r.delivered_ids.size());
  }
}

// ------------------------------------------------------------ chaos matrix

/// All production schemes the factory can build (see factory.cpp).
const std::vector<std::string>& all_factory_schemes() {
  static const std::vector<std::string> names = {
      "OurScheme", "NoMetadata",   "Spray&Wait", "ModifiedSpray",
      "PhotoNet",  "BestPossible", "Epidemic",   "PROPHET"};
  return names;
}

/// A random but valid fault plan: every knob drawn from its legal range,
/// occasionally pinned to an extreme so the matrix hits the edges too.
FaultConfig random_fault_plan(Rng& rng, std::uint64_t salt) {
  FaultConfig f;
  f.contact_interrupt_prob = rng.bernoulli(0.15) ? 1.0 : rng.uniform(0.0, 0.6);
  f.interrupt_fraction_min = rng.uniform(0.0, 0.5);
  f.interrupt_fraction_max = f.interrupt_fraction_min + rng.uniform(0.0, 0.5);
  f.crash_rate_per_hour = rng.bernoulli(0.2) ? 0.0 : rng.uniform(0.0, 1.5);
  f.mean_downtime_s = rng.uniform(600.0, 3.0 * 3600.0);
  f.crash_wipes_storage = rng.bernoulli(0.5);
  f.bandwidth_jitter = rng.uniform(0.0, 0.8);
  f.gossip_loss_prob = rng.bernoulli(0.1) ? 1.0 : rng.uniform(0.0, 0.5);
  f.salt = salt;
  return f;
}

struct ChaosScenario {
  PoiList pois;
  ContactTrace trace;
  std::vector<PhotoEvent> events;
};

ChaosScenario build_chaos_scenario(std::uint64_t seed) {
  ChaosScenario s;
  Rng rng(seed);
  Rng poi_rng = rng.split("pois");
  s.pois = generate_uniform_pois(8, 1500.0, poi_rng);

  SyntheticTraceConfig tc;
  tc.num_participants = 5;
  tc.duration_s = 12.0 * 3600.0;
  tc.base_pair_rate_per_hour = 0.6;
  tc.seed = seed;
  s.trace = generate_synthetic_trace(tc);

  ScenarioConfig sc = ScenarioConfig::mit(seed);
  sc.region_m = 1500.0;
  sc.num_pois = s.pois.size();
  sc.photo_rate_per_hour = 12.0;
  PhotoGenerator gen(sc, s.pois);
  Rng photo_rng = rng.split("photos");
  s.events = gen.generate(s.trace.horizon(), 5, photo_rng);
  return s;
}

/// One simulation under one fault plan, with every global invariant checked
/// through the event stream. Returns the result for determinism comparison.
SimResult run_checked(const ChaosScenario& sc, const CoverageModel& model,
                      const FaultConfig& faults, const std::string& scheme_name,
                      std::uint64_t seed) {
  SimConfig cfg;
  cfg.node_storage_bytes = 3 * 4'000'000;
  cfg.bandwidth_bytes_per_s = 5'000.0;
  cfg.sample_interval_s = 3.0 * 3600.0;
  cfg.seed = seed;
  cfg.faults = faults;
  std::unique_ptr<Scheme> scheme = make_scheme(scheme_name);
  if (scheme->wants_unlimited_storage()) cfg.unlimited_storage = true;
  if (scheme->wants_unlimited_bandwidth()) cfg.unlimited_bandwidth = true;

  std::map<PhotoId, std::uint64_t> size_of;
  for (const PhotoEvent& e : sc.events) size_of[e.photo.id] = e.photo.size_bytes;

  Simulator sim(model, sc.trace, sc.events, cfg);

  std::set<PhotoId> taken, delivered_seen;
  std::uint64_t transfer_bytes = 0;
  std::size_t interrupt_events = 0;
  sim.set_event_listener([&](const SimEvent& e) {
    switch (e.type) {
      case SimEvent::Type::kPhotoTaken:
        taken.insert(e.photo);
        break;
      case SimEvent::Type::kTransfer: {
        const auto it = size_of.find(e.photo);
        ASSERT_NE(it, size_of.end()) << "transfer of a photo never taken";
        transfer_bytes += it->second;
        break;
      }
      case SimEvent::Type::kDelivery:
        EXPECT_TRUE(delivered_seen.insert(e.photo).second)
            << "photo " << e.photo << " delivered twice";
        break;
      case SimEvent::Type::kContactInterrupted:
        ++interrupt_events;
        break;
      default:
        break;
    }
  });

  const SimResult r = sim.run(*scheme);
  sim.faults().audit();

  // Deliveries: unique, known ids only, a subset of what was ever taken.
  EXPECT_EQ(r.delivered_ids.size(), r.delivered_photos);
  const std::set<PhotoId> unique(r.delivered_ids.begin(), r.delivered_ids.end());
  EXPECT_EQ(unique.size(), r.delivered_ids.size());
  for (const PhotoId id : unique)
    EXPECT_TRUE(taken.count(id)) << "delivered photo " << id << " never taken";
  EXPECT_EQ(delivered_seen, unique);

  // Byte accounting is exact: completed transfers seen on the event stream
  // sum to the counter; partial bytes never leak into it.
  EXPECT_EQ(transfer_bytes, r.counters.bytes_transferred) << scheme_name;
  EXPECT_EQ(interrupt_events, r.counters.interrupted_contacts);

  // Every trace contact was either held or charged to downtime, and every
  // capture either reached the scheme or was charged to a downed node.
  EXPECT_EQ(r.counters.contacts + r.counters.missed_contacts, sc.trace.size());
  EXPECT_EQ(r.counters.photos_taken + r.counters.photos_missed_down,
            sc.events.size());

  // Coverage and deliveries at the center are monotone: the center never
  // drops, crashes never touch node 0, and samples accumulate.
  for (std::size_t i = 1; i < r.samples.size(); ++i) {
    EXPECT_GE(r.samples[i].delivered_photos, r.samples[i - 1].delivered_photos);
    EXPECT_GE(r.samples[i].bytes_transferred, r.samples[i - 1].bytes_transferred);
    EXPECT_GE(r.samples[i].point_coverage, r.samples[i - 1].point_coverage);
  }
  return r;
}

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.delivered_ids, b.delivered_ids) << label;
  EXPECT_EQ(a.counters.transfers, b.counters.transfers) << label;
  EXPECT_EQ(a.counters.failed_transfers, b.counters.failed_transfers) << label;
  EXPECT_EQ(a.counters.bytes_transferred, b.counters.bytes_transferred) << label;
  EXPECT_EQ(a.counters.partial_bytes, b.counters.partial_bytes) << label;
  EXPECT_EQ(a.counters.interrupted_contacts, b.counters.interrupted_contacts)
      << label;
  EXPECT_EQ(a.counters.interrupted_transfers, b.counters.interrupted_transfers)
      << label;
  EXPECT_EQ(a.counters.missed_contacts, b.counters.missed_contacts) << label;
  EXPECT_EQ(a.counters.node_crashes, b.counters.node_crashes) << label;
  EXPECT_EQ(a.counters.gossip_losses, b.counters.gossip_losses) << label;
  EXPECT_EQ(a.counters.drops, b.counters.drops) << label;
  ASSERT_EQ(a.samples.size(), b.samples.size()) << label;
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].point_coverage, b.samples[i].point_coverage) << label;
    EXPECT_EQ(a.samples[i].aspect_coverage, b.samples[i].aspect_coverage) << label;
  }
  EXPECT_EQ(a.final_point_norm, b.final_point_norm) << label;
  EXPECT_EQ(a.final_aspect_norm, b.final_aspect_norm) << label;
}

TEST(ChaosMatrix, AllSchemesKeepInvariantsUnderSampledFaultPlans) {
  // 200 sampled fault plans, each run against every factory scheme (1600
  // simulations) over small but nontrivial scenarios. Scenarios cycle
  // through 25 distinct trace/workload builds; the fault plan and sim seed
  // are fresh per plan, which is where the matrix earns its coverage.
  constexpr std::uint64_t kPlans = 200;
  for (std::uint64_t plan = 1; plan <= kPlans; ++plan) {
    const ChaosScenario sc = build_chaos_scenario(1 + (plan - 1) % 25);
    const CoverageModel model(sc.pois, deg_to_rad(30.0));
    Rng plan_rng(0xC4A05 + plan * 977);
    const FaultConfig faults = random_fault_plan(plan_rng, plan);
    for (const std::string& name : all_factory_schemes()) {
      SCOPED_TRACE("plan " + std::to_string(plan) + " scheme " + name);
      run_checked(sc, model, faults, name, plan * 31 + 7);
    }
  }
}

TEST(ChaosMatrix, IdenticalSeedAndFaultPlanReproduceByteIdenticalResults) {
  for (std::uint64_t plan : {3u, 11u, 19u}) {
    const ChaosScenario sc = build_chaos_scenario(plan);
    const CoverageModel model(sc.pois, deg_to_rad(30.0));
    Rng plan_rng(0xDE7E0 + plan);
    const FaultConfig faults = random_fault_plan(plan_rng, plan);
    for (const std::string& name : {std::string("OurScheme"), std::string("Epidemic"),
                                    std::string("PROPHET")}) {
      const SimResult a = run_checked(sc, model, faults, name, plan);
      const SimResult b = run_checked(sc, model, faults, name, plan);
      expect_identical(a, b, "plan " + std::to_string(plan) + " " + name);
    }
  }
}

}  // namespace
}  // namespace photodtn
