// The fault-injection layer (dtn/fault.h): budget clamping, deterministic
// schedules, churn semantics in the simulator, and the partial-transfer
// contract of an interrupted ContactSession.
#include "dtn/fault.h"

#include <gtest/gtest.h>

#include "dtn/simulator.h"
#include "schemes/factory.h"
#include "test_util.h"
#include "trace/synthetic_trace.h"
#include "util/rng.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"
#include "workload/scenario.h"

namespace photodtn {
namespace {

using test::make_photo;
using test::make_poi;

// --------------------------------------------------- contact_payload_budget

TEST(ContactPayloadBudget, ClampsToExactlyZeroWhenSetupSwallowsContact) {
  EXPECT_EQ(contact_payload_budget(2.0e6, 10.0, 10.0), 0u);
  EXPECT_EQ(contact_payload_budget(2.0e6, 10.0, 15.0), 0u);
  EXPECT_EQ(contact_payload_budget(2.0e6, 0.0, 0.0), 0u);
  // Degenerate inputs clamp instead of wrapping through the conversion.
  EXPECT_EQ(contact_payload_budget(2.0e6, -5.0, 0.0), 0u);
  EXPECT_EQ(contact_payload_budget(-2.0e6, 10.0, 0.0), 0u);
}

TEST(ContactPayloadBudget, MatchesBandwidthTimesPayloadTime) {
  EXPECT_EQ(contact_payload_budget(10.0, 25.0, 0.0), 250u);
  EXPECT_EQ(contact_payload_budget(10.0, 25.0, 5.0), 200u);
  EXPECT_EQ(contact_payload_budget(10.0, 25.0, 5.0, 0.5), 100u);
}

TEST(ContactPayloadBudget, SaturatesInsteadOfOverflowingTheConversion) {
  // 1e19 > 2^64 - 1: the double -> uint64 cast would be UB; we saturate.
  EXPECT_EQ(contact_payload_budget(1.0e18, 100.0, 0.0), ~0ULL);
  const std::uint64_t near = contact_payload_budget(1.0e15, 100.0, 0.0);
  EXPECT_EQ(near, static_cast<std::uint64_t>(1.0e17));
}

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjector, DefaultConfigIsInert) {
  const FaultConfig cfg;
  EXPECT_FALSE(cfg.any());
  const FaultInjector inj(cfg, 10, 1000.0, 42);
  EXPECT_FALSE(inj.enabled());
  EXPECT_TRUE(inj.transitions().empty());
  const ContactFault f = inj.contact_fault(7);
  EXPECT_FALSE(f.interrupted);
  EXPECT_FALSE(f.gossip_lost_ab);
  EXPECT_FALSE(f.gossip_lost_ba);
  EXPECT_DOUBLE_EQ(f.bandwidth_factor, 1.0);
  inj.audit();
}

TEST(FaultInjector, SameSeedSamePlanDifferentSaltDifferentPlan) {
  FaultConfig cfg;
  cfg.crash_rate_per_hour = 0.5;
  cfg.mean_downtime_s = 1800.0;
  cfg.contact_interrupt_prob = 0.4;
  cfg.bandwidth_jitter = 0.3;
  cfg.gossip_loss_prob = 0.3;
  const double horizon = 48.0 * 3600.0;

  const FaultInjector x(cfg, 12, horizon, 7);
  const FaultInjector y(cfg, 12, horizon, 7);
  ASSERT_EQ(x.transitions().size(), y.transitions().size());
  for (std::size_t i = 0; i < x.transitions().size(); ++i) {
    EXPECT_EQ(x.transitions()[i].time, y.transitions()[i].time);
    EXPECT_EQ(x.transitions()[i].node, y.transitions()[i].node);
    EXPECT_EQ(x.transitions()[i].up, y.transitions()[i].up);
  }
  bool contact_diff = false;
  for (std::size_t i = 0; i < 50; ++i) {
    const ContactFault a = x.contact_fault(i);
    const ContactFault b = y.contact_fault(i);
    EXPECT_EQ(a.interrupted, b.interrupted);
    EXPECT_EQ(a.keep_fraction, b.keep_fraction);
    EXPECT_EQ(a.bandwidth_factor, b.bandwidth_factor);
    EXPECT_EQ(a.gossip_lost_ab, b.gossip_lost_ab);
    EXPECT_EQ(a.gossip_lost_ba, b.gossip_lost_ba);
  }

  FaultConfig salted = cfg;
  salted.salt = 1;
  const FaultInjector z(salted, 12, horizon, 7);
  for (std::size_t i = 0; i < 50 && !contact_diff; ++i) {
    const ContactFault a = x.contact_fault(i);
    const ContactFault b = z.contact_fault(i);
    contact_diff = a.interrupted != b.interrupted ||
                   a.bandwidth_factor != b.bandwidth_factor ||
                   a.gossip_lost_ab != b.gossip_lost_ab;
  }
  EXPECT_TRUE(contact_diff) << "salt must decorrelate the fault streams";
}

TEST(FaultInjector, ChurnScheduleAlternatesAndSparesTheCenter) {
  FaultConfig cfg;
  cfg.crash_rate_per_hour = 2.0;  // busy schedule
  cfg.mean_downtime_s = 900.0;
  const double horizon = 72.0 * 3600.0;
  const FaultInjector inj(cfg, 8, horizon, 3);
  ASSERT_FALSE(inj.transitions().empty());
  inj.audit();  // alternation, sortedness, center exclusion
  double prev = 0.0;
  for (const ChurnTransition& tr : inj.transitions()) {
    EXPECT_GT(tr.node, kCommandCenter);
    EXPECT_LT(tr.node, 8);
    EXPECT_GE(tr.time, prev);
    EXPECT_LT(tr.time, horizon);
    prev = tr.time;
  }
}

TEST(FaultInjector, ScriptedOverlapsMergeIntoOneOutage) {
  FaultConfig cfg;
  cfg.scripted_downtime = {{2, 100.0, 300.0}, {2, 200.0, 400.0}, {3, 50.0, 60.0}};
  const FaultInjector inj(cfg, 5, 1000.0, 1);
  inj.audit();
  // Node 2: one merged outage [100, 400); node 3: [50, 60).
  std::vector<ChurnTransition> node2;
  for (const ChurnTransition& tr : inj.transitions())
    if (tr.node == 2) node2.push_back(tr);
  ASSERT_EQ(node2.size(), 2u);
  EXPECT_DOUBLE_EQ(node2[0].time, 100.0);
  EXPECT_FALSE(node2[0].up);
  EXPECT_DOUBLE_EQ(node2[1].time, 400.0);
  EXPECT_TRUE(node2[1].up);
}

TEST(FaultInjector, OutageRunningToHorizonNeverReboots) {
  FaultConfig cfg;
  cfg.scripted_downtime = {{1, 500.0, 5000.0}};
  const FaultInjector inj(cfg, 3, 1000.0, 1);
  ASSERT_EQ(inj.transitions().size(), 1u);
  EXPECT_FALSE(inj.transitions()[0].up);
}

// ----------------------------------------------------- simulator integration

/// Keep everything, flood everything — the simplest contact user.
class FloodScheme : public Scheme {
 public:
  std::string name() const override { return "Flood"; }
  void on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) override {
    ctx.store_photo(node, photo);
  }
  void on_contact(SimContext& ctx, ContactSession& s) override {
    for (const NodeId src : {s.a(), s.b()}) {
      const NodeId dst = s.peer(src);
      for (const PhotoMeta& p : ctx.node(src).store().photos()) {
        if (ctx.node(dst).store().contains(p.id)) continue;
        s.transfer(p.id, src, dst, true);
      }
    }
  }
};

CoverageModel test_model() {
  return CoverageModel{{make_poi(0.0, 0.0)}, deg_to_rad(30.0)};
}

SimConfig small_config() {
  SimConfig cfg;
  cfg.node_storage_bytes = 1000;
  cfg.bandwidth_bytes_per_s = 10.0;
  cfg.sample_interval_s = 1000.0;
  return cfg;
}

PhotoEvent ev(double t, NodeId node, PhotoId id, std::uint64_t size = 100) {
  PhotoMeta p = make_photo(100.0, 0.0, 180.0, 200.0, 60.0, id, node, size, t);
  return PhotoEvent{t, node, p};
}

TEST(SimulatorFaults, DownNodeMissesContactsAndCaptures) {
  const CoverageModel model = test_model();
  // Node 1 is down [15, 60): it misses the capture at 20 and the contact at
  // 30, then attends the contact at 80 with only its second photo.
  const ContactTrace trace{{{30.0, 50.0, 0, 1}, {80.0, 50.0, 0, 1}}, 2, 400.0};
  SimConfig cfg = small_config();
  cfg.faults.scripted_downtime = {{1, 15.0, 60.0}};
  std::vector<SimEvent> events;
  Simulator sim(model, trace, {ev(10.0, 1, 1), ev(20.0, 1, 2), ev(70.0, 1, 3)}, cfg);
  sim.set_event_listener([&](const SimEvent& e) { events.push_back(e); });
  FloodScheme scheme;
  const SimResult r = sim.run(scheme);

  EXPECT_EQ(r.counters.missed_contacts, 1u);
  EXPECT_EQ(r.counters.contacts, 1u);
  EXPECT_EQ(r.counters.photos_missed_down, 1u);
  EXPECT_EQ(r.counters.photos_taken, 2u);
  EXPECT_EQ(r.counters.node_crashes, 1u);
  // The wipe (default) destroyed photo 1; photos 3 (and nothing else)
  // survive to the second contact — photo 2 was never captured.
  EXPECT_EQ(r.counters.photos_lost_to_crash, 1u);
  EXPECT_EQ(r.delivered_photos, 1u);
  ASSERT_EQ(r.delivered_ids.size(), 1u);
  EXPECT_EQ(r.delivered_ids[0], 3u);

  // Down/up events bracket the outage, in order.
  std::vector<SimEvent> churn;
  for (const SimEvent& e : events)
    if (e.type == SimEvent::Type::kNodeDown || e.type == SimEvent::Type::kNodeUp)
      churn.push_back(e);
  ASSERT_EQ(churn.size(), 2u);
  EXPECT_EQ(churn[0].type, SimEvent::Type::kNodeDown);
  EXPECT_DOUBLE_EQ(churn[0].time, 15.0);
  EXPECT_EQ(churn[0].a, 1);
  EXPECT_EQ(churn[1].type, SimEvent::Type::kNodeUp);
  EXPECT_DOUBLE_EQ(churn[1].time, 60.0);
}

TEST(SimulatorFaults, CrashWithoutWipeKeepsTheBuffer) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{80.0, 50.0, 0, 1}}, 2, 400.0};
  SimConfig cfg = small_config();
  cfg.faults.scripted_downtime = {{1, 15.0, 60.0}};
  cfg.faults.crash_wipes_storage = false;
  Simulator sim(model, trace, {ev(10.0, 1, 1)}, cfg);
  FloodScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.photos_lost_to_crash, 0u);
  EXPECT_EQ(r.delivered_photos, 1u);  // the pre-crash photo survived the outage
}

TEST(SimulatorFaults, InterruptedTransferBurnsWireBytesWithoutMaterializing) {
  const CoverageModel model = test_model();
  // Budget 10 B/s * 25 s = 250 bytes; the link dies at 50% = 125 bytes.
  // Photo 1 (100 B) completes; photo 2 is cut 25 bytes in.
  const ContactTrace trace{{{20.0, 25.0, 1, 2}}, 3, 100.0};
  SimConfig cfg = small_config();
  cfg.faults.contact_interrupt_prob = 1.0;
  cfg.faults.interrupt_fraction_min = 0.5;
  cfg.faults.interrupt_fraction_max = 0.5;
  std::vector<SimEvent> events;
  Simulator sim(model, trace, {ev(1.0, 1, 1), ev(2.0, 1, 2), ev(3.0, 1, 3)}, cfg);
  sim.set_event_listener([&](const SimEvent& e) { events.push_back(e); });
  FloodScheme scheme;
  const SimResult r = sim.run(scheme);

  EXPECT_EQ(r.counters.transfers, 1u);
  EXPECT_EQ(r.counters.bytes_transferred, 100u);
  EXPECT_EQ(r.counters.interrupted_contacts, 1u);
  EXPECT_EQ(r.counters.interrupted_transfers, 1u);
  EXPECT_EQ(r.counters.partial_bytes, 25u);
  EXPECT_GE(r.counters.failed_transfers, 2u);  // the cut one + the dead-link one

  std::size_t cuts = 0;
  for (const SimEvent& e : events)
    if (e.type == SimEvent::Type::kContactInterrupted) {
      ++cuts;
      EXPECT_EQ(e.photo, 2u) << "the cut must name the in-flight photo";
    }
  EXPECT_EQ(cuts, 1u);
}

TEST(SimulatorFaults, SetupSwallowingContactMovesNothing) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{20.0, 5.0, 1, 2}}, 3, 100.0};
  SimConfig cfg = small_config();
  cfg.contact_setup_s = 5.0;  // setup == duration: payload budget exactly 0
  Simulator sim(model, trace, {ev(1.0, 1, 1)}, cfg);
  FloodScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.transfers, 0u);
  EXPECT_EQ(r.counters.bytes_transferred, 0u);
}

TEST(SimulatorFaults, FaultedRunIsByteIdenticallyReproducible) {
  auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    Rng poi_rng = rng.split("pois");
    const PoiList pois = generate_uniform_pois(10, 2000.0, poi_rng);
    const CoverageModel model(pois, deg_to_rad(30.0));
    SyntheticTraceConfig tc;
    tc.num_participants = 6;
    tc.duration_s = 24.0 * 3600.0;
    tc.base_pair_rate_per_hour = 0.6;
    tc.seed = seed;
    const ContactTrace trace = generate_synthetic_trace(tc);
    ScenarioConfig sc = ScenarioConfig::mit(seed);
    sc.region_m = 2000.0;
    sc.num_pois = pois.size();
    sc.photo_rate_per_hour = 20.0;
    PhotoGenerator gen(sc, pois);
    Rng photo_rng = rng.split("photos");
    std::vector<PhotoEvent> events = gen.generate(trace.horizon(), 6, photo_rng);
    SimConfig cfg;
    cfg.node_storage_bytes = 5 * 4'000'000;
    cfg.sample_interval_s = 6.0 * 3600.0;
    cfg.seed = seed;
    cfg.faults.contact_interrupt_prob = 0.3;
    cfg.faults.crash_rate_per_hour = 0.2;
    cfg.faults.mean_downtime_s = 3600.0;
    cfg.faults.bandwidth_jitter = 0.4;
    cfg.faults.gossip_loss_prob = 0.25;
    Simulator sim(model, trace, std::move(events), cfg);
    auto scheme = make_scheme("OurScheme");
    return sim.run(*scheme);
  };
  const SimResult a = run_once(11);
  const SimResult b = run_once(11);
  EXPECT_EQ(a.delivered_ids, b.delivered_ids);
  EXPECT_EQ(a.counters.transfers, b.counters.transfers);
  EXPECT_EQ(a.counters.bytes_transferred, b.counters.bytes_transferred);
  EXPECT_EQ(a.counters.interrupted_contacts, b.counters.interrupted_contacts);
  EXPECT_EQ(a.counters.missed_contacts, b.counters.missed_contacts);
  EXPECT_EQ(a.counters.node_crashes, b.counters.node_crashes);
  EXPECT_EQ(a.counters.gossip_losses, b.counters.gossip_losses);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].point_coverage, b.samples[i].point_coverage);
    EXPECT_EQ(a.samples[i].bytes_transferred, b.samples[i].bytes_transferred);
  }
}

TEST(SimulatorFaults, CleanConfigLeavesFaultCountersZero) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{20.0, 100.0, 1, 2}, {50.0, 100.0, 0, 2}}, 3, 400.0};
  Simulator sim(model, trace, {ev(10.0, 1, 1)}, small_config());
  FloodScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.interrupted_contacts, 0u);
  EXPECT_EQ(r.counters.interrupted_transfers, 0u);
  EXPECT_EQ(r.counters.partial_bytes, 0u);
  EXPECT_EQ(r.counters.missed_contacts, 0u);
  EXPECT_EQ(r.counters.node_crashes, 0u);
  EXPECT_EQ(r.counters.photos_lost_to_crash, 0u);
  EXPECT_EQ(r.counters.photos_missed_down, 0u);
  EXPECT_EQ(r.counters.gossip_losses, 0u);
  EXPECT_FALSE(sim.faults().enabled());
}

}  // namespace
}  // namespace photodtn
