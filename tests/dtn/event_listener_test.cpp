// The SimEvent stream: ordering, completeness, and agreement with the
// counters.
#include <gtest/gtest.h>

#include "dtn/simulator.h"
#include "schemes/factory.h"
#include "test_util.h"

namespace photodtn {
namespace {

using test::make_poi;
using test::photo_viewing;

TEST(EventListener, StreamsAllEventTypesInOrder) {
  test::reset_photo_ids();
  const CoverageModel model({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  const PhotoMeta photo = [&] {
    PhotoMeta p = photo_viewing(model.pois()[0], 0.0);
    p.taken_by = 1;
    p.taken_at = 10.0;
    return p;
  }();
  const ContactTrace trace{{{100.0, 600.0, 1, 2}, {200.0, 600.0, 0, 2}}, 3, 1000.0};
  SimConfig cfg;
  cfg.node_storage_bytes = 5ULL * 4'000'000;
  cfg.bandwidth_bytes_per_s = 2.0e6;
  cfg.sample_interval_s = 1e9;
  Simulator sim(model, trace, {PhotoEvent{10.0, 1, photo}}, cfg);
  std::vector<SimEvent> events;
  sim.set_event_listener([&](const SimEvent& e) { events.push_back(e); });

  auto scheme = make_scheme("OurScheme");
  const SimResult r = sim.run(*scheme);

  // Time-ordered stream.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].time, events[i].time);

  auto count = [&](SimEvent::Type t) {
    std::size_t n = 0;
    for (const auto& e : events)
      if (e.type == t) ++n;
    return n;
  };
  EXPECT_EQ(count(SimEvent::Type::kPhotoTaken), r.counters.photos_taken);
  EXPECT_EQ(count(SimEvent::Type::kContact), r.counters.contacts);
  EXPECT_EQ(count(SimEvent::Type::kTransfer), r.counters.transfers);
  EXPECT_EQ(count(SimEvent::Type::kDrop), r.counters.drops);
  EXPECT_EQ(count(SimEvent::Type::kDelivery), r.delivered_photos);

  // The delivery event names the photo and the gateway that carried it.
  bool saw_delivery = false;
  for (const auto& e : events) {
    if (e.type != SimEvent::Type::kDelivery) continue;
    saw_delivery = true;
    EXPECT_EQ(e.photo, photo.id);
    EXPECT_EQ(e.a, 2);  // relayed through node 2
    EXPECT_EQ(e.b, kCommandCenter);
    EXPECT_DOUBLE_EQ(e.time, 200.0);
  }
  EXPECT_TRUE(saw_delivery);
}

TEST(EventListener, DisabledListenerCostsNothingAndRunsIdentically) {
  const CoverageModel model({make_poi(0.0, 0.0)}, deg_to_rad(30.0));
  const ContactTrace trace{{{100.0, 600.0, 1, 2}}, 3, 500.0};
  auto run_with = [&](bool with_listener) {
    test::reset_photo_ids();
    PhotoMeta p = photo_viewing(model.pois()[0], 0.0);
    p.taken_by = 1;
    SimConfig cfg;
    cfg.sample_interval_s = 1e9;
    Simulator sim(model, trace, {PhotoEvent{1.0, 1, p}}, cfg);
    if (with_listener) sim.set_event_listener([](const SimEvent&) {});
    auto scheme = make_scheme("OurScheme");
    return sim.run(*scheme);
  };
  const SimResult a = run_with(false);
  const SimResult b = run_with(true);
  EXPECT_EQ(a.delivered_ids, b.delivered_ids);
  EXPECT_EQ(a.counters.transfers, b.counters.transfers);
}

}  // namespace
}  // namespace photodtn
