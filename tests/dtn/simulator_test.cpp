#include "dtn/simulator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace photodtn {
namespace {

using test::make_photo;
using test::make_poi;

/// Minimal scheme: keep every photo that fits; on contact push everything
/// to the peer (flood).
class FloodScheme : public Scheme {
 public:
  std::string name() const override { return "Flood"; }
  void on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) override {
    ctx.store_photo(node, photo);
  }
  void on_contact(SimContext& ctx, ContactSession& s) override {
    for (const NodeId src : {s.a(), s.b()}) {
      const NodeId dst = s.peer(src);
      for (const PhotoMeta& p : ctx.node(src).store().photos()) {
        if (ctx.node(dst).store().contains(p.id)) continue;
        s.transfer(p.id, src, dst, true);
      }
    }
  }
};

CoverageModel test_model() {
  return CoverageModel{{make_poi(0.0, 0.0)}, deg_to_rad(30.0)};
}

SimConfig small_config() {
  SimConfig cfg;
  cfg.node_storage_bytes = 1000;
  cfg.bandwidth_bytes_per_s = 10.0;  // 10 B/s
  cfg.sample_interval_s = 100.0;
  return cfg;
}

PhotoEvent ev(double t, NodeId node, PhotoId id, std::uint64_t size = 100) {
  PhotoMeta p = make_photo(100.0, 0.0, 180.0, 200.0, 60.0, id, node, size, t);
  return PhotoEvent{t, node, p};
}

TEST(Simulator, DeliversPhotoThroughRelayToCenter) {
  const CoverageModel model = test_model();
  // Node 1 takes a photo at t=10; meets node 2 at t=20; node 2 meets the
  // command center at t=50.
  const ContactTrace trace{{{20.0, 100.0, 1, 2}, {50.0, 100.0, 0, 2}}, 3, 400.0};
  Simulator sim(model, trace, {ev(10.0, 1, 1)}, small_config());
  FloodScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.delivered_photos, 1u);
  EXPECT_DOUBLE_EQ(r.final_point_norm, 1.0);
  EXPECT_GT(r.final_aspect_norm, 0.0);
  EXPECT_EQ(r.counters.photos_taken, 1u);
  EXPECT_EQ(r.counters.contacts, 2u);
  EXPECT_EQ(r.counters.transfers, 2u);  // 1->2, 2->0
}

TEST(Simulator, ByteBudgetLimitsTransfers) {
  const CoverageModel model = test_model();
  // 10 B/s * 25 s = 250 bytes: only two 100-byte photos fit the contact.
  const ContactTrace trace{{{20.0, 25.0, 1, 2}}, 3, 100.0};
  Simulator sim(model, trace,
                {ev(1.0, 1, 1), ev(2.0, 1, 2), ev(3.0, 1, 3)}, small_config());
  FloodScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.transfers, 2u);
  EXPECT_EQ(r.counters.bytes_transferred, 200u);
  EXPECT_GE(r.counters.failed_transfers, 1u);
}

TEST(Simulator, UnlimitedBandwidthIgnoresDuration) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{20.0, 0.0, 1, 2}}, 3, 100.0};  // zero duration!
  SimConfig cfg = small_config();
  cfg.unlimited_bandwidth = true;
  Simulator sim(model, trace, {ev(1.0, 1, 1), ev(2.0, 1, 2)}, cfg);
  FloodScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.transfers, 2u);
}

TEST(Simulator, StorageLimitRejectsOverflow) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{50.0, 1000.0, 1, 2}}, 3, 100.0};
  SimConfig cfg = small_config();
  cfg.node_storage_bytes = 250;  // fits two 100-byte photos per node
  std::vector<PhotoEvent> events;
  for (PhotoId i = 1; i <= 5; ++i) events.push_back(ev(static_cast<double>(i), 1, i));
  Simulator sim(model, trace, std::move(events), cfg);
  FloodScheme scheme;
  const SimResult r = sim.run(scheme);
  // Node 1 keeps only 2 photos; node 2 receives at most 2.
  EXPECT_LE(r.counters.transfers, 2u);
}

TEST(Simulator, CommandCenterNeverDrops) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{10.0, 100.0, 0, 1}}, 2, 50.0};
  Simulator sim(model, trace, {ev(1.0, 1, 1)}, small_config());

  class DropAtCenter : public Scheme {
   public:
    std::string name() const override { return "DropAtCenter"; }
    void on_photo_taken(SimContext& ctx, NodeId n, const PhotoMeta& p) override {
      ctx.store_photo(n, p);
    }
    void on_contact(SimContext& ctx, ContactSession& s) override {
      s.transfer(1, 1, kCommandCenter, true);
      EXPECT_FALSE(ctx.drop_photo(kCommandCenter, 1));
      EXPECT_TRUE(ctx.node(kCommandCenter).store().contains(1));
    }
  } scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.delivered_photos, 1u);
}

TEST(Simulator, TransferValidation) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{10.0, 100.0, 1, 2}}, 3, 50.0};
  Simulator sim(model, trace, {ev(1.0, 1, 1)}, small_config());

  class Prober : public Scheme {
   public:
    std::string name() const override { return "Prober"; }
    void on_photo_taken(SimContext& ctx, NodeId n, const PhotoMeta& p) override {
      ctx.store_photo(n, p);
    }
    void on_contact(SimContext&, ContactSession& s) override {
      EXPECT_FALSE(s.transfer(99, s.a(), s.b(), true));  // missing photo
      EXPECT_TRUE(s.transfer(1, 1, 2, true));
      EXPECT_FALSE(s.transfer(1, 1, 2, true));  // duplicate at destination
      // Endpoints must match the contact.
      EXPECT_THROW(s.transfer(1, 1, 0, true), std::logic_error);
    }
  } scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.failed_transfers, 2u);
  EXPECT_EQ(r.counters.transfers, 1u);
}

TEST(Simulator, MoveSemanticsRemoveSourceCopy) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{10.0, 100.0, 1, 2}}, 3, 50.0};
  Simulator sim(model, trace, {ev(1.0, 1, 1)}, small_config());

  class Mover : public Scheme {
   public:
    std::string name() const override { return "Mover"; }
    void on_photo_taken(SimContext& ctx, NodeId n, const PhotoMeta& p) override {
      ctx.store_photo(n, p);
    }
    void on_contact(SimContext& ctx, ContactSession& s) override {
      ASSERT_TRUE(s.transfer(1, 1, 2, /*keep_source=*/false));
      EXPECT_FALSE(ctx.node(1).store().contains(1));
      EXPECT_TRUE(ctx.node(2).store().contains(1));
    }
  } scheme;
  sim.run(scheme);
}

TEST(Simulator, ContactSetupTimeShrinksBudget) {
  const CoverageModel model = test_model();
  // 10 B/s, 25 s contact, 15 s setup: only 100 payload bytes -> 1 photo.
  const ContactTrace trace{{{20.0, 25.0, 1, 2}}, 3, 100.0};
  SimConfig cfg = small_config();
  cfg.contact_setup_s = 15.0;
  Simulator sim(model, trace, {ev(1.0, 1, 1), ev(2.0, 1, 2)}, cfg);
  FloodScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.transfers, 1u);
}

TEST(Simulator, SetupLongerThanContactMeansNoTransfers) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{20.0, 10.0, 1, 2}}, 3, 100.0};
  SimConfig cfg = small_config();
  cfg.contact_setup_s = 30.0;
  Simulator sim(model, trace, {ev(1.0, 1, 1)}, cfg);
  FloodScheme scheme;
  const SimResult r = sim.run(scheme);
  EXPECT_EQ(r.counters.transfers, 0u);
}

TEST(Simulator, ConsumeChargesBudget) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{20.0, 30.0, 1, 2}}, 3, 100.0};  // 300-byte budget

  class Consumer : public Scheme {
   public:
    std::string name() const override { return "Consumer"; }
    void on_photo_taken(SimContext& ctx, NodeId n, const PhotoMeta& p) override {
      ctx.store_photo(n, p);
    }
    void on_contact(SimContext&, ContactSession& s) override {
      EXPECT_TRUE(s.consume(250));           // metadata eats most of it
      EXPECT_EQ(s.budget_bytes(), 50u);
      EXPECT_FALSE(s.transfer(1, 1, 2, true));  // 100-byte photo no longer fits
      EXPECT_FALSE(s.consume(100));          // overdraw zeroes the budget
      EXPECT_EQ(s.budget_bytes(), 0u);
    }
  } scheme;
  Simulator sim(model, trace, {ev(1.0, 1, 1)}, small_config());
  sim.run(scheme);
}

TEST(Simulator, SamplesCoverGridIncludingHorizon) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{10.0, 10.0, 1, 2}}, 3, 500.0};
  Simulator sim(model, trace, {}, small_config());  // sample every 100 s
  FloodScheme scheme;
  const SimResult r = sim.run(scheme);
  ASSERT_EQ(r.samples.size(), 6u);  // t = 0, 100, ..., 500
  EXPECT_DOUBLE_EQ(r.samples.front().time, 0.0);
  EXPECT_DOUBLE_EQ(r.samples.back().time, 500.0);
  for (std::size_t i = 1; i < r.samples.size(); ++i)
    EXPECT_GE(r.samples[i].delivered_photos, r.samples[i - 1].delivered_photos);
}

TEST(Simulator, ProphetUpdatedOnContacts) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{10.0, 10.0, 0, 1}}, 2, 50.0};
  Simulator sim(model, trace, {}, small_config());

  class Checker : public Scheme {
   public:
    std::string name() const override { return "Checker"; }
    void on_photo_taken(SimContext&, NodeId, const PhotoMeta&) override {}
    void on_contact(SimContext& ctx, ContactSession&) override {
      // After the encounter update, node 1 has direct predictability to 0.
      EXPECT_DOUBLE_EQ(ctx.node(1).delivery_prob(ctx.now()), 0.75);
      EXPECT_EQ(ctx.node(1).rates().total_contacts(), 1u);
    }
  } scheme;
  sim.run(scheme);
}

TEST(Simulator, RunIsSingleShot) {
  const CoverageModel model = test_model();
  const ContactTrace trace{{{10.0, 10.0, 1, 2}}, 3, 50.0};
  Simulator sim(model, trace, {}, small_config());
  FloodScheme scheme;
  sim.run(scheme);
  EXPECT_THROW(sim.run(scheme), std::logic_error);
}

}  // namespace
}  // namespace photodtn
