#include "dtn/photo_store.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace photodtn {
namespace {

PhotoMeta photo(PhotoId id, std::uint64_t size = 100) {
  return test::make_photo(0, 0, 0, 200, 60, id, 1, size);
}

TEST(PhotoStore, AddAndFind) {
  PhotoStore s(1000);
  EXPECT_TRUE(s.add(photo(1)));
  EXPECT_TRUE(s.contains(1));
  ASSERT_NE(s.find(1), nullptr);
  EXPECT_EQ(s.find(1)->id, 1u);
  EXPECT_EQ(s.find(2), nullptr);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.used_bytes(), 100u);
}

TEST(PhotoStore, RejectsDuplicates) {
  PhotoStore s(1000);
  EXPECT_TRUE(s.add(photo(1)));
  EXPECT_FALSE(s.add(photo(1)));
  EXPECT_EQ(s.used_bytes(), 100u);
}

TEST(PhotoStore, EnforcesCapacityExactly) {
  PhotoStore s(250);
  EXPECT_TRUE(s.add(photo(1, 100)));
  EXPECT_TRUE(s.add(photo(2, 150)));  // exactly full
  EXPECT_FALSE(s.can_fit(1));
  EXPECT_FALSE(s.add(photo(3, 1)));
  EXPECT_EQ(s.free_bytes(), 0u);
}

TEST(PhotoStore, RemoveFreesSpace) {
  PhotoStore s(200);
  s.add(photo(1, 150));
  EXPECT_FALSE(s.add(photo(2, 100)));
  EXPECT_TRUE(s.remove(1));
  EXPECT_FALSE(s.remove(1));
  EXPECT_TRUE(s.add(photo(2, 100)));
  EXPECT_EQ(s.used_bytes(), 100u);
}

TEST(PhotoStore, UnlimitedCapacity) {
  PhotoStore s;  // default unlimited
  for (PhotoId i = 1; i <= 100; ++i)
    EXPECT_TRUE(s.add(photo(i, 1'000'000'000)));
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s.free_bytes(), PhotoStore::kUnlimited);
}

TEST(PhotoStore, SnapshotAndClear) {
  PhotoStore s(1000);
  s.add(photo(1));
  s.add(photo(2));
  EXPECT_EQ(s.photos().size(), 2u);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.used_bytes(), 0u);
}

TEST(PhotoStore, UsedBytesTracksMixedOperations) {
  PhotoStore s(1000);
  s.add(photo(1, 300));
  s.add(photo(2, 200));
  s.remove(1);
  s.add(photo(3, 100));
  EXPECT_EQ(s.used_bytes(), 300u);
  EXPECT_EQ(s.size(), 2u);
}

}  // namespace
}  // namespace photodtn
