#include "dtn/photo_store.h"

#include <gtest/gtest.h>

#include <map>

#include "test_util.h"
#include "util/rng.h"

namespace photodtn {
namespace {

PhotoMeta photo(PhotoId id, std::uint64_t size = 100) {
  return test::make_photo(0, 0, 0, 200, 60, id, 1, size);
}

TEST(PhotoStore, AddAndFind) {
  PhotoStore s(1000);
  EXPECT_TRUE(s.add(photo(1)));
  EXPECT_TRUE(s.contains(1));
  ASSERT_NE(s.find(1), nullptr);
  EXPECT_EQ(s.find(1)->id, 1u);
  EXPECT_EQ(s.find(2), nullptr);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.used_bytes(), 100u);
}

TEST(PhotoStore, RejectsDuplicates) {
  PhotoStore s(1000);
  EXPECT_TRUE(s.add(photo(1)));
  EXPECT_FALSE(s.add(photo(1)));
  EXPECT_EQ(s.used_bytes(), 100u);
}

TEST(PhotoStore, EnforcesCapacityExactly) {
  PhotoStore s(250);
  EXPECT_TRUE(s.add(photo(1, 100)));
  EXPECT_TRUE(s.add(photo(2, 150)));  // exactly full
  EXPECT_FALSE(s.can_fit(1));
  EXPECT_FALSE(s.add(photo(3, 1)));
  EXPECT_EQ(s.free_bytes(), 0u);
}

TEST(PhotoStore, RemoveFreesSpace) {
  PhotoStore s(200);
  s.add(photo(1, 150));
  EXPECT_FALSE(s.add(photo(2, 100)));
  EXPECT_TRUE(s.remove(1));
  EXPECT_FALSE(s.remove(1));
  EXPECT_TRUE(s.add(photo(2, 100)));
  EXPECT_EQ(s.used_bytes(), 100u);
}

TEST(PhotoStore, UnlimitedCapacity) {
  PhotoStore s;  // default unlimited
  for (PhotoId i = 1; i <= 100; ++i)
    EXPECT_TRUE(s.add(photo(i, 1'000'000'000)));
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s.free_bytes(), PhotoStore::kUnlimited);
}

TEST(PhotoStore, SnapshotAndClear) {
  PhotoStore s(1000);
  s.add(photo(1));
  s.add(photo(2));
  EXPECT_EQ(s.photos().size(), 2u);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.used_bytes(), 0u);
}

TEST(PhotoStore, SnapshotIsIdSortedRegardlessOfInsertionOrder) {
  // photos() must present canonical id order, never the hash table's: the
  // snapshot feeds footprint loads and demo output where iteration order is
  // observable. Scrambled insertion over enough keys that hash order would
  // almost surely differ from sorted order.
  PhotoStore s;
  Rng rng(0xD15C0);
  std::vector<PhotoId> ids;
  for (PhotoId i = 1; i <= 64; ++i) ids.push_back(i * 37 % 1009);
  rng.shuffle(ids);
  for (const PhotoId id : ids) ASSERT_TRUE(s.add(photo(id, 1)));
  const std::vector<PhotoMeta> snap = s.photos();
  ASSERT_EQ(snap.size(), ids.size());
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LT(snap[i - 1].id, snap[i].id) << "photos() not id-sorted at " << i;
}

TEST(PhotoStore, UsedBytesTracksMixedOperations) {
  PhotoStore s(1000);
  s.add(photo(1, 300));
  s.add(photo(2, 200));
  s.remove(1);
  s.add(photo(3, 100));
  EXPECT_EQ(s.used_bytes(), 300u);
  EXPECT_EQ(s.size(), 2u);
}

TEST(PhotoStoreAudit, AccountingMatchesContentsUnderRandomChurn) {
  // Property: after any add/remove/clear sequence (including rejected adds),
  // used_bytes() equals the sum of stored sizes and never exceeds capacity —
  // exactly what audit() asserts.
  Rng rng(0xBEEF);
  PhotoStore s(5000);
  std::uint64_t expected = 0;
  std::map<PhotoId, std::uint64_t> live;
  for (int step = 0; step < 500; ++step) {
    const PhotoId id = static_cast<PhotoId>(rng.uniform_int(1, 40));
    if (rng.bernoulli(0.6)) {
      const auto size = static_cast<std::uint64_t>(rng.uniform_int(50, 400));
      if (s.add(photo(id, size))) {
        expected += size;
        live[id] = size;
      }
    } else if (s.remove(id)) {
      expected -= live.at(id);
      live.erase(id);
    }
    ASSERT_NO_THROW(s.audit());
    ASSERT_EQ(s.used_bytes(), expected);
    ASSERT_LE(s.used_bytes(), s.capacity_bytes());
  }
  s.clear();
  EXPECT_NO_THROW(s.audit());
  EXPECT_EQ(s.used_bytes(), 0u);
}

TEST(PhotoStoreAudit, UnlimitedStorePassesAudit) {
  PhotoStore s;  // kUnlimited
  for (PhotoId id = 1; id <= 64; ++id) s.add(photo(id, 1'000'000));
  EXPECT_NO_THROW(s.audit());
  EXPECT_EQ(s.used_bytes(), 64u * 1'000'000u);
}

}  // namespace
}  // namespace photodtn
