#include "routing/prophet.h"

#include <cmath>

#include "util/check.h"
#include "util/prob.h"

namespace photodtn {

void ProphetTable::age(double now) {
  PHOTODTN_CHECK_MSG(now + 1e-9 >= last_aged_, "time moved backwards in PROPHET aging");
  if (now <= last_aged_) return;
  const double k = (now - last_aged_) / cfg_.aging_time_unit_s;
  const double factor = std::pow(cfg_.gamma, k);
  // With gamma in (0, 1] the factor cannot exceed 1, so aging is monotone
  // non-increasing; the clamp guards misconfigured gamma > 1.
  // photodtn-lint: allow(unordered-iter): per-key independent decay, no cross-entry state
  for (auto& [node, p] : table_) p = clamp01(p * factor);
  last_aged_ = now;
  PHOTODTN_AUDIT(audit());
}

double ProphetTable::delivery_prob(NodeId dest) const {
  if (dest == self_) return 1.0;
  const auto it = table_.find(dest);
  return it == table_.end() ? 0.0 : it->second;
}

void ProphetTable::direct_update(NodeId peer) {
  double& p = table_[peer];
  // p + (1-p)*p_init stays in [0, 1] in exact arithmetic; clamp the rounded
  // result so repeated encounters can never drift above 1.
  p = clamp01(p + (1.0 - p) * cfg_.p_init);
}

void ProphetTable::transitive_update(
    const std::unordered_map<NodeId, double>& peer_snapshot, NodeId peer) {
  const double p_ab = table_[peer];
  // photodtn-lint: allow(unordered-iter): each key updates only its own table_[c]
  for (const auto& [c, p_bc] : peer_snapshot) {
    if (c == self_ || c == peer) continue;
    double& p_ac = table_[c];
    p_ac = clamp01(p_ac + (1.0 - p_ac) * p_ab * p_bc * cfg_.beta);
  }
}

void ProphetTable::encounter(ProphetTable& a, ProphetTable& b, double now) {
  PHOTODTN_CHECK_MSG(a.self_ != b.self_, "node encountering itself");
  a.age(now);
  b.age(now);
  // Snapshot both tables before the direct updates so the transitive rule
  // uses the peer's pre-encounter predictabilities symmetrically.
  const auto snap_a = a.table_;
  const auto snap_b = b.table_;
  a.direct_update(b.self_);
  b.direct_update(a.self_);
  a.transitive_update(snap_b, b.self_);
  b.transitive_update(snap_a, a.self_);
  PHOTODTN_AUDIT(a.audit());
  PHOTODTN_AUDIT(b.audit());
}

void ProphetTable::audit() const {
  PHOTODTN_CHECK_MSG(is_probability(cfg_.p_init), "PROPHET p_init must be in [0, 1]");
  PHOTODTN_CHECK_MSG(is_probability(cfg_.beta), "PROPHET beta must be in [0, 1]");
  PHOTODTN_CHECK_MSG(cfg_.gamma > 0.0 && cfg_.gamma <= 1.0,
                     "PROPHET gamma must be in (0, 1] for monotone decay");
  PHOTODTN_CHECK_MSG(cfg_.aging_time_unit_s > 0.0,
                     "PROPHET aging time unit must be positive");
  PHOTODTN_CHECK_MSG(std::isfinite(last_aged_), "PROPHET aging clock must be finite");
  // photodtn-lint: allow(unordered-iter): per-entry audit checks, no accumulation
  for (const auto& [node, p] : table_) {
    PHOTODTN_CHECK_MSG(node != self_, "PROPHET table must not hold an entry for self");
    PHOTODTN_CHECK_MSG(is_probability(p),
                       "PROPHET delivery predictability must be in [0, 1]");
  }
}

}  // namespace photodtn
