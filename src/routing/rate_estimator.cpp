#include "routing/rate_estimator.h"

#include <algorithm>

namespace photodtn {

void RateEstimator::record_contact(NodeId peer, double now) {
  (void)now;
  ++counts_[peer];
  ++total_;
}

double RateEstimator::observation_time(double now) const {
  return std::max(now - start_, 1.0);  // floor at 1 s to avoid division blowup
}

double RateEstimator::rate_with(NodeId peer, double now) const {
  const auto it = counts_.find(peer);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / observation_time(now);
}

double RateEstimator::aggregate_rate(double now) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(total_) / observation_time(now);
}

}  // namespace photodtn
