// Binary Spray-and-Wait copy accounting (Spyropoulos et al., the baseline
// of Sections IV-B and V-B). Each photo starts with L logical copies at its
// source. A node holding c > 1 copies hands floor(c/2) to a peer that does
// not hold the photo and keeps ceil(c/2); a node with c == 1 is in the wait
// phase and only transmits directly to the destination (command center).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "coverage/photo.h"
#include "persist/fwd.h"

namespace photodtn {

class SprayCounter {
 public:
  /// L: copies allowed per photo (the paper uses 4).
  explicit SprayCounter(std::uint32_t initial_copies = 4)
      : initial_copies_(initial_copies) {}

  /// Registers a newly taken photo at its source.
  void on_create(PhotoId photo) { copies_[photo] = initial_copies_; }

  std::uint32_t copies(PhotoId photo) const {
    const auto it = copies_.find(photo);
    return it == copies_.end() ? 0 : it->second;
  }

  /// Whether this holder may spray (fork a copy) to a peer lacking the photo.
  bool can_spray(PhotoId photo) const { return copies(photo) > 1; }

  /// Splits copies for a spray to a peer; returns the number of copies the
  /// receiving side records. Caller must have checked can_spray().
  std::uint32_t spray(PhotoId photo);

  /// Records receipt of `n` copies of a photo.
  void on_receive(PhotoId photo, std::uint32_t n) { copies_[photo] += n; }

  /// Photo dropped from this node's buffer: its copies are forgotten.
  void on_drop(PhotoId photo) { copies_.erase(photo); }

  std::uint32_t initial_copies() const noexcept { return initial_copies_; }

 private:
  friend struct persist::StateAccess;  // checkpoint/restore of the copy map

  std::uint32_t initial_copies_;
  std::unordered_map<PhotoId, std::uint32_t> copies_;
};

}  // namespace photodtn
