// Online estimation of pairwise inter-contact rates lambda_ab and of the
// aggregate rate lambda_a = sum_b lambda_ab (Section III-B). The paper's
// metadata-validity rule (eq. 1) evaluates P{T_a < t} = 1 - exp(-lambda_a t)
// with lambda_a shared by node a during contacts.
//
// Estimator: the Poisson-process MLE lambda = N / T, where N is the number
// of observed contacts with the peer and T the observation time (time since
// this estimator started observing). This converges to the true pairwise
// rate for exponential inter-contact processes and degrades gracefully on
// real traces (no distributional fitting step).
#pragma once

#include <unordered_map>

#include "coverage/photo.h"  // NodeId
#include "persist/fwd.h"

namespace photodtn {

class RateEstimator {
 public:
  /// `start_time`: when this node began observing (usually 0).
  explicit RateEstimator(double start_time = 0.0) : start_(start_time) {}

  void record_contact(NodeId peer, double now);

  /// Estimated lambda_ab in contacts per second; 0 before any observation.
  double rate_with(NodeId peer, double now) const;

  /// Aggregate lambda_a = sum over peers; equals (total contacts)/T.
  double aggregate_rate(double now) const;

  std::size_t total_contacts() const noexcept { return total_; }

 private:
  friend struct persist::StateAccess;  // checkpoint/restore of the counts

  double observation_time(double now) const;

  double start_ = 0.0;
  std::size_t total_ = 0;
  std::unordered_map<NodeId, std::size_t> counts_;
};

}  // namespace photodtn
