#include "routing/spray_counter.h"

#include "util/check.h"

namespace photodtn {

std::uint32_t SprayCounter::spray(PhotoId photo) {
  auto it = copies_.find(photo);
  PHOTODTN_CHECK_MSG(it != copies_.end() && it->second > 1,
                     "spray() requires more than one copy");
  const std::uint32_t give = it->second / 2;
  it->second -= give;
  return give;
}

}  // namespace photodtn
