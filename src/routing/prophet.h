// PROPHET delivery predictability (Lindgren, Doria, Schelén — the protocol
// referenced in Section III-C). Each node keeps P(self, x) for every other
// node, updated by three rules:
//   encounter:    P(a,b) <- P(a,b) + (1 - P(a,b)) * P_init
//   aging:        P(a,x) <- P(a,x) * gamma^k        (k time units elapsed)
//   transitivity: P(a,c) <- P(a,c) + (1 - P(a,c)) * P(a,b) * P(b,c) * beta
// The paper uses P(n_i, command center) as the delivery probability p_i.
#pragma once

#include <unordered_map>

#include "coverage/photo.h"  // NodeId
#include "persist/fwd.h"

namespace photodtn {

struct ProphetConfig {
  double p_init = 0.75;
  double beta = 0.25;
  double gamma = 0.98;
  /// Length of one aging time unit in seconds. The original protocol leaves
  /// the unit abstract; we default to 10 minutes, which with gamma = 0.98
  /// halves a predictability in about 5.7 hours.
  double aging_time_unit_s = 600.0;
};

class ProphetTable {
 public:
  ProphetTable() = default;
  ProphetTable(ProphetConfig cfg, NodeId self) : cfg_(cfg), self_(self) {}

  NodeId self() const noexcept { return self_; }

  /// Applies aging to all entries up to `now`. Idempotent for equal `now`.
  void age(double now);

  /// Delivery predictability from self to dest (aged to the last update
  /// time). Unknown destinations have probability 0; self has 1.
  double delivery_prob(NodeId dest) const;

  /// Symmetric encounter update of both tables at time `now`: aging, the
  /// direct-encounter rule on each side, then the transitive rule each way
  /// using a pre-update snapshot of the peer (the standard formulation).
  static void encounter(ProphetTable& a, ProphetTable& b, double now);

  const std::unordered_map<NodeId, double>& entries() const noexcept { return table_; }
  const ProphetConfig& config() const noexcept { return cfg_; }

  /// Deep invariant check (audit builds / tests): every predictability is a
  /// finite value in [0, 1], the table holds no entry for self (self is
  /// implicitly 1), the config parameters are valid probabilities with
  /// gamma in (0, 1] (so aging decays monotonically), and the aging clock is
  /// finite. Throws std::logic_error on violation.
  void audit() const;

 private:
  friend struct persist::StateAccess;  // checkpoint/restore of aging clock + table

  void direct_update(NodeId peer);
  void transitive_update(const std::unordered_map<NodeId, double>& peer_snapshot,
                         NodeId peer);

  ProphetConfig cfg_;
  NodeId self_ = -1;
  double last_aged_ = 0.0;
  std::unordered_map<NodeId, double> table_;
};

}  // namespace photodtn
