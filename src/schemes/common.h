// Helpers shared by the dissemination schemes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "coverage/coverage_model.h"
#include "coverage/coverage_value.h"
#include "dtn/photo_store.h"
#include "persist/fwd.h"
#include "routing/spray_counter.h"

namespace photodtn {

/// Deterministic snapshot of a store: photos sorted by (taken_at, id).
/// Stores are hash maps, so iteration order is unspecified; every scheme
/// that walks a store must use this to keep runs reproducible.
std::vector<PhotoMeta> sorted_photos(const PhotoStore& store);

/// Standalone photo coverage of a single photo, ignoring every other photo:
/// (sum of covered PoI weights, sum of weighted arc lengths). This is the
/// per-photo utility ModifiedSpray ranks by, and the eviction heuristic our
/// scheme uses when a photo is taken while the buffer is full.
CoverageValue standalone_value(const CoverageModel& model, const PhotoMeta& photo);

/// Union pool F_a ∪ F_b, deduplicated by photo id, deterministic order.
std::vector<PhotoMeta> union_pool(const PhotoStore& a, const PhotoStore& b);

/// Checkpoint serialization of a spray scheme's per-node counters (sorted
/// by node id), shared by Spray&Wait and ModifiedSpray.
void save_spray_counters(
    persist::StateWriter& w,
    const std::unordered_map<NodeId, SprayCounter>& counters);
/// Restores the counters; fails (SnapshotError) on duplicate nodes or a
/// counter whose configured L disagrees with `expected_copies` — that means
/// the snapshot came from a differently parameterized scheme.
void load_spray_counters(persist::StateReader& r,
                         std::unordered_map<NodeId, SprayCounter>& counters,
                         std::uint32_t expected_copies);

}  // namespace photodtn
