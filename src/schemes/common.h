// Helpers shared by the dissemination schemes.
#pragma once

#include <vector>

#include "coverage/coverage_model.h"
#include "coverage/coverage_value.h"
#include "dtn/photo_store.h"

namespace photodtn {

/// Deterministic snapshot of a store: photos sorted by (taken_at, id).
/// Stores are hash maps, so iteration order is unspecified; every scheme
/// that walks a store must use this to keep runs reproducible.
std::vector<PhotoMeta> sorted_photos(const PhotoStore& store);

/// Standalone photo coverage of a single photo, ignoring every other photo:
/// (sum of covered PoI weights, sum of weighted arc lengths). This is the
/// per-photo utility ModifiedSpray ranks by, and the eviction heuristic our
/// scheme uses when a photo is taken while the buffer is full.
CoverageValue standalone_value(const CoverageModel& model, const PhotoMeta& photo);

/// Union pool F_a ∪ F_b, deduplicated by photo id, deterministic order.
std::vector<PhotoMeta> union_pool(const PhotoStore& a, const PhotoStore& b);

}  // namespace photodtn
