#include "schemes/epidemic.h"

#include "schemes/common.h"

namespace photodtn {

void EpidemicScheme::on_photo_taken(SimContext& ctx, NodeId node,
                                    const PhotoMeta& photo) {
  // Drop-tail: epidemic routing has no value model to justify eviction.
  ctx.store_photo(node, photo);
}

void EpidemicScheme::flood(SimContext& ctx, ContactSession& session, NodeId src,
                           NodeId dst) {
  const bool to_center = dst == kCommandCenter;
  for (const PhotoMeta& p : sorted_photos(ctx.node(src).store())) {
    if (ctx.node(dst).store().contains(p.id)) {
      if (to_center) ctx.drop_photo(src, p.id);  // immunity: already delivered
      continue;
    }
    if (!session.can_transfer(p.size_bytes)) break;
    if (!to_center && !ctx.node(dst).store().can_fit(p.size_bytes)) break;
    // Delivery transfers custody (immunity list); relays keep their copy.
    if (!session.transfer(p.id, src, dst, /*keep_source=*/!to_center)) break;
  }
}

void EpidemicScheme::on_contact(SimContext& ctx, ContactSession& session) {
  flood(ctx, session, session.a(), session.b());
  flood(ctx, session, session.b(), session.a());
}

}  // namespace photodtn
