// BestPossible (Section V-B): the performance upper bound. Storage and
// bandwidth constraints are lifted (the experiment runner honours the
// wants_unlimited_* flags); the only remaining constraint is contact
// opportunity. Every *useful* photo — one that covers at least one PoI — is
// replicated to everyone on every contact, so the command center ends up
// with the best coverage the contact graph permits.
#pragma once

#include "dtn/scheme.h"
#include "dtn/simulator.h"

namespace photodtn {

class BestPossibleScheme : public Scheme {
 public:
  std::string name() const override { return "BestPossible"; }

  bool wants_unlimited_storage() const override { return true; }
  bool wants_unlimited_bandwidth() const override { return true; }

  void on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) override;
  void on_contact(SimContext& ctx, ContactSession& session) override;

 private:
  void replicate(SimContext& ctx, ContactSession& session, NodeId src, NodeId dst);
};

}  // namespace photodtn
