#include "schemes/modified_spray.h"

#include <algorithm>

#include "schemes/common.h"

namespace photodtn {

namespace {

/// Store snapshot ordered by standalone coverage, highest first.
std::vector<std::pair<CoverageValue, PhotoMeta>> by_value_desc(
    const CoverageModel& model, const PhotoStore& store) {
  std::vector<std::pair<CoverageValue, PhotoMeta>> out;
  for (const PhotoMeta& p : sorted_photos(store))
    out.push_back({standalone_value(model, p), p});
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& x, const auto& y) { return y.first < x.first; });
  return out;
}

}  // namespace

SprayCounter& ModifiedSprayScheme::counter(NodeId node) {
  auto it = counters_.find(node);
  if (it == counters_.end()) it = counters_.emplace(node, SprayCounter{copies_}).first;
  return it->second;
}

bool ModifiedSprayScheme::make_room(SimContext& ctx, NodeId node, std::uint64_t bytes,
                                    const CoverageValue& incoming_value) {
  Node& n = ctx.node(node);
  if (n.store().can_fit(bytes)) return true;
  auto ranked = by_value_desc(ctx.model(), n.store());
  // Walk from the weakest photo upward.
  for (auto it = ranked.rbegin(); it != ranked.rend(); ++it) {
    if (n.store().can_fit(bytes)) break;
    if (!(it->first < incoming_value)) return false;  // nothing weaker left
    ctx.drop_photo(node, it->second.id);
    counter(node).on_drop(it->second.id);
  }
  return n.store().can_fit(bytes);
}

void ModifiedSprayScheme::on_photo_taken(SimContext& ctx, NodeId node,
                                         const PhotoMeta& photo) {
  if (ctx.store_photo(node, photo)) {
    counter(node).on_create(photo.id);
    return;
  }
  const CoverageValue v = standalone_value(ctx.model(), photo);
  if (v.is_zero()) return;
  if (make_room(ctx, node, photo.size_bytes, v) && ctx.store_photo(node, photo))
    counter(node).on_create(photo.id);
}

void ModifiedSprayScheme::deliver_by_value(SimContext& ctx, ContactSession& session,
                                           NodeId src) {
  for (const auto& [value, p] : by_value_desc(ctx.model(), ctx.node(src).store())) {
    if (ctx.node(kCommandCenter).store().contains(p.id)) {
      ctx.drop_photo(src, p.id);
      counter(src).on_drop(p.id);
      continue;
    }
    if (!session.transfer(p.id, src, kCommandCenter, /*keep_source=*/false)) break;
    counter(src).on_drop(p.id);
  }
}

void ModifiedSprayScheme::spray_direction(SimContext& ctx, ContactSession& session,
                                          NodeId src, NodeId dst) {
  SprayCounter& src_counter = counter(src);
  for (const auto& [value, p] : by_value_desc(ctx.model(), ctx.node(src).store())) {
    if (!src_counter.can_spray(p.id)) continue;
    if (ctx.node(dst).store().contains(p.id)) continue;
    if (!session.can_transfer(p.size_bytes)) break;
    if (!make_room(ctx, dst, p.size_bytes, value)) continue;
    if (!session.transfer(p.id, src, dst, /*keep_source=*/true)) break;
    counter(dst).on_receive(p.id, src_counter.spray(p.id));
  }
}

void ModifiedSprayScheme::on_contact(SimContext& ctx, ContactSession& session) {
  if (session.involves_command_center()) {
    deliver_by_value(ctx, session, session.peer(kCommandCenter));
    return;
  }
  spray_direction(ctx, session, session.a(), session.b());
  spray_direction(ctx, session, session.b(), session.a());
}

void ModifiedSprayScheme::save_persist_state(persist::StateWriter& w) const {
  save_spray_counters(w, counters_);
}

void ModifiedSprayScheme::load_persist_state(persist::StateReader& r,
                                             SimContext& /*ctx*/) {
  load_spray_counters(r, counters_, copies_);
}

}  // namespace photodtn
