// Epidemic routing (Vahdat & Becker) under real storage/bandwidth
// constraints — the classic content-agnostic flooding baseline the early
// DTN literature cited in Section VI builds on. Unlike BestPossible (which
// gets unconstrained resources and filters by relevance), Epidemic floods
// *every* photo within the same limits the other schemes face.
#pragma once

#include "dtn/scheme.h"
#include "dtn/simulator.h"

namespace photodtn {

class EpidemicScheme : public Scheme {
 public:
  std::string name() const override { return "Epidemic"; }

  void on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) override;
  void on_contact(SimContext& ctx, ContactSession& session) override;

 private:
  void flood(SimContext& ctx, ContactSession& session, NodeId src, NodeId dst);
};

}  // namespace photodtn
