#include "schemes/factory.h"

#include <stdexcept>

#include "schemes/best_possible.h"
#include "schemes/epidemic.h"
#include "schemes/modified_spray.h"
#include "schemes/prophet_routing.h"
#include "schemes/our_scheme.h"
#include "schemes/photonet.h"
#include "schemes/spray_and_wait.h"

namespace photodtn {

std::unique_ptr<Scheme> make_scheme(const std::string& name,
                                    const SchemeOptions& options) {
  if (name == "OurScheme") {
    OurSchemeConfig cfg;
    cfg.p_thld = options.p_thld;
    return std::make_unique<OurScheme>(cfg);
  }
  if (name == "NoMetadata") {
    OurSchemeConfig cfg;
    cfg.p_thld = options.p_thld;
    cfg.metadata_enabled = false;
    return std::make_unique<OurScheme>(cfg);
  }
  if (name == "Spray&Wait")
    return std::make_unique<SprayAndWaitScheme>(options.spray_copies);
  if (name == "ModifiedSpray")
    return std::make_unique<ModifiedSprayScheme>(options.spray_copies);
  if (name == "PhotoNet") return std::make_unique<PhotoNetScheme>();
  if (name == "BestPossible") return std::make_unique<BestPossibleScheme>();
  if (name == "Epidemic") return std::make_unique<EpidemicScheme>();
  if (name == "PROPHET") return std::make_unique<ProphetRoutingScheme>();
  throw std::invalid_argument("unknown scheme: " + name);
}

std::vector<std::string> simulation_scheme_names() {
  return {"BestPossible", "OurScheme", "NoMetadata", "ModifiedSpray", "Spray&Wait"};
}

std::vector<std::string> demo_scheme_names() {
  return {"OurScheme", "PhotoNet", "Spray&Wait"};
}

}  // namespace photodtn
