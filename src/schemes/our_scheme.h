// The paper's resource-aware photo selection scheme (Section III), and — via
// a configuration switch — the NoMetadata ablation of Section V-B.
//
// On every contact the two nodes:
//   1. exchange metadata snapshots of their own collections (plus gossip of
//      cached third-party metadata) and prune entries invalidated by eq. (1);
//   2. assemble the node set M: themselves, the command center's cached
//      acknowledgment snapshot, and every other validly cached node;
//   3. run the two-phase greedy reallocation of the union pool F_a ∪ F_b
//      (higher delivery probability selects first);
//   4. transmit photos in selection order until the plan is realized or the
//      contact's byte budget runs out; evictions make room on demand, and —
//      when the plan completed untruncated — pool photos left outside a
//      node's target are dropped (the collections become the solution).
//
// Contacts with the command center follow the same algorithm with p_0 = 1
// and the center's collection treated as a fixed environment (it never drops
// photos, so it never "reselects" its own storage).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "dtn/scheme.h"
#include "dtn/simulator.h"
#include "obs/obs.h"
#include "selection/greedy_selector.h"
#include "selection/metadata_cache.h"
#include "selection/selection_env.h"

namespace photodtn {

struct OurSchemeConfig {
  /// Metadata validity threshold P_thld (Table I: 0.8).
  double p_thld = 0.8;
  /// Disable metadata caching/management entirely -> the NoMetadata baseline:
  /// M degenerates to the two contact parties (plus the center when it is a
  /// party itself).
  bool metadata_enabled = true;
  GreedyParams greedy;
};

class OurScheme : public Scheme {
 public:
  explicit OurScheme(OurSchemeConfig cfg = {});

  static std::unique_ptr<OurScheme> no_metadata();

  std::string name() const override {
    return cfg_.metadata_enabled ? "OurScheme" : "NoMetadata";
  }

  /// Registers the scheme's metric handles on the run's registry when the
  /// context carries one with metrics enabled; otherwise instrumentation
  /// stays a null-pointer test per contact.
  void init(SimContext& ctx) override;

  void on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) override;
  void on_contact(SimContext& ctx, ContactSession& session) override;
  /// Churn: every cache drops the downed node's entry immediately (the
  /// liveness beacon beats eq. (1)'s timer — §III-B's invalidation exists
  /// precisely to hedge against nodes that never show up again); a wiped
  /// node additionally loses its own cache and persistent engine.
  void on_node_down(SimContext& ctx, NodeId node, bool storage_wiped) override;

  /// Checkpoint/restore of the scheme's run state: selector counters,
  /// per-node metadata caches, and the persistent selection engines with
  /// their revision bookkeeping (dtn/scheme.h for the contract).
  void save_persist_state(persist::StateWriter& w) const override;
  void load_persist_state(persist::StateReader& r, SimContext& ctx) override;

  /// Test access.
  const MetadataCache& cache_of(NodeId node) const;

 private:
  MetadataCache& cache(NodeId node);
  /// `b_to_a` / `a_to_b`: whether each gossip direction survived the fault
  /// layer (both true on a clean contact).
  void exchange_metadata(SimContext& ctx, NodeId a, NodeId b, double now,
                         bool b_to_a, bool a_to_b);
  /// Snapshot entry describing `node`'s current state.
  MetadataEntry snapshot(SimContext& ctx, NodeId node, double now) const;
  /// Reconciles `viewer`'s persistent selection engine with its metadata
  /// cache: collections whose cached entry disappeared or was restamped are
  /// removed/reloaded, untouched ones keep their cached per-PoI factors.
  /// Returns the engine holding every validly cached collection except the
  /// contact parties.
  SelectionEnvironment& sync_engine(SimContext& ctx, NodeId viewer,
                                    NodeId exclude_a, NodeId exclude_b, double now);
  void contact_with_center(SimContext& ctx, ContactSession& session);
  void contact_between_participants(SimContext& ctx, ContactSession& session);

  /// Realizes one node's target list: transfers missing photos from the
  /// peer in selection order, evicting non-target photos on demand. Returns
  /// false if the byte budget truncated the plan.
  bool realize_target(SimContext& ctx, ContactSession& session, NodeId holder,
                      const std::vector<PhotoId>& target,
                      const std::vector<PhotoId>& peer_target,
                      const std::unordered_map<PhotoId, PhotoMeta>& pool_by_id);

  /// One persistent incremental engine per node, kept in sync with the
  /// node's metadata cache via revision stamps (schemes live for exactly one
  /// simulation run, so the engine's model reference stays valid). Between
  /// contacts only the collections that actually changed are reloaded —
  /// unchanged PoI factors survive untouched.
  struct EngineState {
    explicit EngineState(const CoverageModel& model) : env(model) {}
    SelectionEnvironment env;
    std::unordered_map<NodeId, std::uint64_t> loaded_revs;
    std::uint64_t last_rebuilds = 0;  // env.rebuild_count() at last reading
  };

  /// Metric handles, registered by init() when metrics are on (obs is the
  /// on/off switch: nullptr = disabled, one branch per site).
  struct ObsHooks {
    obs::Obs* obs = nullptr;
    obs::MetricsRegistry::Counter gossip_records, gossip_accepted,
        cache_invalidations, cache_updates, engine_syncs, engine_loads,
        engine_unloads, poi_rebuilds, gain_evals, reevals, commits;
    obs::MetricsRegistry::Histogram pool_size, gossip_per_contact;
  };

  /// Accounts rebuilds the viewer's engine performed since the last reading
  /// (sync reconciliation + the selection queries it served).
  void record_engine_rebuilds(NodeId viewer);
  /// Accounts selector work since the last reading (diff of totals()).
  void record_selection_delta();

  OurSchemeConfig cfg_;
  GreedySelector selector_;
  std::unordered_map<NodeId, MetadataCache> caches_;
  std::unordered_map<NodeId, EngineState> engines_;
  ObsHooks hooks_;
  SelectionStats last_totals_;
};

}  // namespace photodtn
