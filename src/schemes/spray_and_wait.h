// Binary Spray-and-Wait (Spyropoulos et al.), the content-agnostic DTN
// routing baseline of Sections IV-B and V-B. Photos are plain packets:
// L = 4 logical copies each, sprayed by halves, delivered directly to the
// command center in the wait phase. No coverage knowledge anywhere.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "dtn/scheme.h"
#include "dtn/simulator.h"
#include "routing/spray_counter.h"

namespace photodtn {

class SprayAndWaitScheme : public Scheme {
 public:
  explicit SprayAndWaitScheme(std::uint32_t copies = 4) : copies_(copies) {}

  std::string name() const override { return "Spray&Wait"; }

  void on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) override;
  void on_contact(SimContext& ctx, ContactSession& session) override;

  /// Checkpoint/restore of the per-node spray counters.
  void save_persist_state(persist::StateWriter& w) const override;
  void load_persist_state(persist::StateReader& r, SimContext& ctx) override;

 private:
  SprayCounter& counter(NodeId node);
  /// One direction of a participant contact: spray from `src` to `dst`.
  void spray_direction(SimContext& ctx, ContactSession& session, NodeId src, NodeId dst);
  /// Direct delivery of everything to the command center.
  void deliver_all(SimContext& ctx, ContactSession& session, NodeId src);

  std::uint32_t copies_;
  std::unordered_map<NodeId, SprayCounter> counters_;
};

}  // namespace photodtn
