#include "schemes/photonet.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "schemes/common.h"
#include "util/rng.h"

namespace photodtn {

std::array<double, 6> PhotoNetScheme::features(const PhotoMeta& photo) const {
  // Synthetic color histogram: three uniform components seeded by photo id.
  std::uint64_t s = photo.id * 0x9e3779b97f4a7c15ULL + 1;
  const auto c1 = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  const auto c2 = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  const auto c3 = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  return {photo.location.x / cfg_.location_scale_m,
          photo.location.y / cfg_.location_scale_m,
          photo.taken_at / cfg_.time_scale_s,
          cfg_.color_weight * c1,
          cfg_.color_weight * c2,
          cfg_.color_weight * c3};
}

double PhotoNetScheme::distance(const PhotoMeta& a, const PhotoMeta& b) const {
  const auto fa = features(a);
  const auto fb = features(b);
  double d2 = 0.0;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const double d = fa[i] - fb[i];
    d2 += d * d;
  }
  return std::sqrt(d2);
}

double PhotoNetScheme::min_distance_to(SimContext& ctx, const PhotoMeta& photo,
                                       NodeId node) const {
  double best = std::numeric_limits<double>::infinity();
  // photodtn-lint: allow(unordered-iter): min over finite distances commutes exactly
  for (const auto& [id, p] : ctx.node(node).store().map()) {
    if (id == photo.id) continue;
    best = std::min(best, distance(photo, p));
  }
  return best;
}

bool PhotoNetScheme::evict_least_diverse(SimContext& ctx, NodeId node,
                                         std::uint64_t bytes) {
  Node& n = ctx.node(node);
  while (!n.store().can_fit(bytes)) {
    PhotoId victim = 0;
    bool found = false;
    double worst = std::numeric_limits<double>::infinity();
    for (const PhotoMeta& p : sorted_photos(n.store())) {
      const double d = min_distance_to(ctx, p, node);
      if (!found || d < worst) {
        worst = d;
        victim = p.id;
        found = true;
      }
    }
    if (!found) return false;
    ctx.drop_photo(node, victim);
  }
  return true;
}

void PhotoNetScheme::on_photo_taken(SimContext& ctx, NodeId node,
                                    const PhotoMeta& photo) {
  if (ctx.store_photo(node, photo)) return;
  if (evict_least_diverse(ctx, node, photo.size_bytes)) ctx.store_photo(node, photo);
}

void PhotoNetScheme::send_diverse(SimContext& ctx, ContactSession& session, NodeId src,
                                  NodeId dst) {
  // Repeatedly send the photo that is farthest from the receiver's current
  // collection (remote-first max-min diversity).
  for (;;) {
    const PhotoMeta* best = nullptr;
    double best_d = -1.0;
    std::vector<PhotoMeta> candidates = sorted_photos(ctx.node(src).store());
    for (const PhotoMeta& p : candidates) {
      if (ctx.node(dst).store().contains(p.id)) continue;
      const double d = min_distance_to(ctx, p, dst);
      if (d > best_d) {
        best_d = d;
        best = &p;
      }
    }
    if (best == nullptr) return;
    if (!session.can_transfer(best->size_bytes)) return;
    if (dst != kCommandCenter &&
        !ctx.node(dst).store().can_fit(best->size_bytes) &&
        !evict_least_diverse(ctx, dst, best->size_bytes))
      return;
    if (!session.transfer(best->id, src, dst, /*keep_source=*/true)) return;
  }
}

void PhotoNetScheme::on_contact(SimContext& ctx, ContactSession& session) {
  if (session.involves_command_center()) {
    send_diverse(ctx, session, session.peer(kCommandCenter), kCommandCenter);
    return;
  }
  send_diverse(ctx, session, session.a(), session.b());
  send_diverse(ctx, session, session.b(), session.a());
}

}  // namespace photodtn
