#include "schemes/our_scheme.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "persist/state_access.h"
#include "schemes/common.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace photodtn {

namespace {

/// Defaults the batched-sweep pool to the process-shared one. Config-level
/// nullptr means "unspecified", not "serial": tests that need a fixed pool
/// size pass an explicit pool (or PHOTODTN_THREADS=1); either way the
/// selection output is bit-identical.
GreedyParams with_default_pool(GreedyParams greedy) {
  if (greedy.pool == nullptr) greedy.pool = &ThreadPool::shared();
  return greedy;
}

}  // namespace

OurScheme::OurScheme(OurSchemeConfig cfg)
    : cfg_(cfg), selector_(with_default_pool(cfg.greedy)) {}

std::unique_ptr<OurScheme> OurScheme::no_metadata() {
  OurSchemeConfig cfg;
  cfg.metadata_enabled = false;
  return std::make_unique<OurScheme>(cfg);
}

void OurScheme::init(SimContext& ctx) {
  hooks_ = ObsHooks{};
  last_totals_ = SelectionStats{};
  obs::Obs* o = ctx.obs();
  if (o == nullptr || !o->metrics_on()) return;
  hooks_.obs = o;
  obs::MetricsRegistry& reg = o->registry();
  hooks_.gossip_records = reg.counter("scheme.gossip_records");
  hooks_.gossip_accepted = reg.counter("scheme.gossip_accepted");
  hooks_.cache_invalidations = reg.counter("scheme.cache_invalidations");
  hooks_.cache_updates = reg.counter("scheme.cache_updates");
  hooks_.engine_syncs = reg.counter("scheme.engine_syncs");
  hooks_.engine_loads = reg.counter("scheme.engine_loads");
  hooks_.engine_unloads = reg.counter("scheme.engine_unloads");
  hooks_.poi_rebuilds = reg.counter("scheme.poi_rebuilds");
  hooks_.gain_evals = reg.counter("selection.gain_evals");
  hooks_.reevals = reg.counter("selection.reevals");
  hooks_.commits = reg.counter("selection.commits");
  hooks_.pool_size =
      reg.histogram("selection.pool_size", obs::MetricsRegistry::exp_bounds(1, 2.0, 12));
  hooks_.gossip_per_contact = reg.histogram(
      "scheme.gossip_records_per_contact", obs::MetricsRegistry::exp_bounds(1, 4.0, 10));
}

void OurScheme::record_engine_rebuilds(NodeId viewer) {
  if (hooks_.obs == nullptr) return;
  const auto it = engines_.find(viewer);
  if (it == engines_.end()) return;
  EngineState& st = it->second;
  const std::uint64_t rb = st.env.rebuild_count();
  hooks_.obs->registry().add(hooks_.poi_rebuilds, rb - st.last_rebuilds);
  st.last_rebuilds = rb;
}

void OurScheme::record_selection_delta() {
  if (hooks_.obs == nullptr) return;
  const SelectionStats& t = selector_.totals();
  obs::MetricsRegistry& reg = hooks_.obs->registry();
  reg.add(hooks_.gain_evals, t.gain_evals - last_totals_.gain_evals);
  reg.add(hooks_.reevals, t.reevals - last_totals_.reevals);
  reg.add(hooks_.commits, t.commits - last_totals_.commits);
  last_totals_ = t;
}

MetadataCache& OurScheme::cache(NodeId node) {
  auto it = caches_.find(node);
  if (it == caches_.end()) it = caches_.emplace(node, MetadataCache{cfg_.p_thld}).first;
  return it->second;
}

const MetadataCache& OurScheme::cache_of(NodeId node) const {
  const auto it = caches_.find(node);
  PHOTODTN_CHECK_MSG(it != caches_.end(), "no cache for node yet");
  return it->second;
}

void OurScheme::on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) {
  if (ctx.store_photo(node, photo)) return;
  // Buffer full. Keep the new photo only if it beats the weakest stored
  // photos by standalone coverage; the redundancy-aware reshuffle happens at
  // the next contact (Section III-D enforces storage at contacts — capture-
  // time policy is an engineering choice documented in DESIGN.md).
  const CoverageModel& model = ctx.model();
  const CoverageValue incoming = standalone_value(model, photo);
  if (incoming.is_zero()) return;  // irrelevant: never keep under pressure
  Node& n = ctx.node(node);
  std::vector<std::pair<CoverageValue, PhotoId>> ranked;
  for (const PhotoMeta& p : sorted_photos(n.store()))
    ranked.push_back({standalone_value(model, p), p.id});
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::size_t i = 0;
  while (!n.store().can_fit(photo.size_bytes) && i < ranked.size() &&
         ranked[i].first < incoming) {
    ctx.drop_photo(node, ranked[i].second);
    ++i;
  }
  if (n.store().can_fit(photo.size_bytes)) ctx.store_photo(node, photo);
}

void OurScheme::on_node_down(SimContext& ctx, NodeId node, bool storage_wiped) {
  (void)ctx;
  if (!cfg_.metadata_enabled) return;
  // photodtn-lint: allow(unordered-iter): per-cache erase of one key, caches independent
  for (auto& [holder, c] : caches_) c.erase(node);
  // Holders' engines reconcile lazily: the erased entry falls out of `want`
  // on their next sync_engine and the collection is unloaded there.
  if (storage_wiped) {
    // The crashed node's own soft state is gone. clear() keeps its revision
    // counter monotone and the engine is dropped outright, so post-reboot
    // gossip can never stamp-match pre-crash engine contents.
    if (auto it = caches_.find(node); it != caches_.end()) it->second.clear();
    engines_.erase(node);
  }
}

MetadataEntry OurScheme::snapshot(SimContext& ctx, NodeId node, double now) const {
  Node& n = ctx.node(node);
  MetadataEntry e;
  e.owner = node;
  e.photos = sorted_photos(n.store());
  e.observed_at = now;
  e.lambda = n.rates().aggregate_rate(now);
  e.delivery_prob = n.delivery_prob(now);
  return e;
}

void OurScheme::exchange_metadata(SimContext& ctx, NodeId a, NodeId b, double now,
                                  bool b_to_a, bool a_to_b) {
  (void)ctx;
  MetadataCache& ca = cache(a);
  MetadataCache& cb = cache(b);
  // Gossip cached third-party metadata both ways — unless the fault layer
  // lost a direction, leaving the caches stale and asymmetric (the scheme
  // carries on; eq. (1) bounds how long the staleness can mislead it). Then
  // drop entries eq. (1) invalidates. The parties' own fresh snapshots are
  // exchanged after the reallocation (on_contact), so caches reflect
  // post-contact collections.
  std::size_t accepted = 0;
  if (b_to_a) accepted += ca.merge_from(cb, a);
  if (a_to_b) accepted += cb.merge_from(ca, b);
  const std::size_t invalidated = ca.prune(now) + cb.prune(now);
  if (hooks_.obs != nullptr) {
    obs::MetricsRegistry& reg = hooks_.obs->registry();
    reg.add(hooks_.gossip_accepted, accepted);
    reg.add(hooks_.cache_invalidations, invalidated);
  }
}

SelectionEnvironment& OurScheme::sync_engine(SimContext& ctx, NodeId viewer,
                                             NodeId exclude_a, NodeId exclude_b,
                                             double now) {
  auto it = engines_.find(viewer);
  if (it == engines_.end()) it = engines_.try_emplace(viewer, ctx.model()).first;
  EngineState& st = it->second;
  if (hooks_.obs != nullptr) hooks_.obs->registry().add(hooks_.engine_syncs);

  // Desired contents: the viewer's validly cached collections, minus the
  // contact parties (they are live in the reallocation, not environment).
  std::unordered_map<NodeId, const MetadataEntry*> want;
  if (cfg_.metadata_enabled) {
    if (const auto cit = caches_.find(viewer); cit != caches_.end()) {
      for (const MetadataEntry* e : cit->second.valid_entries(now)) {
        if (e->owner == exclude_a || e->owner == exclude_b) continue;
        want.emplace(e->owner, e);
      }
    }
  }

  // Unload collections that disappeared (pruned/excluded) or were restamped
  // by a fresher snapshot; keep the ones whose revision still matches — their
  // per-PoI factors are exactly the cached ones.
  std::uint64_t unloads = 0;
  // photodtn-lint: allow(unordered-iter): per-key keep/erase decision; surviving set is order-independent
  for (auto lit = st.loaded_revs.begin(); lit != st.loaded_revs.end();) {
    const auto wit = want.find(lit->first);
    if (wit != want.end() && wit->second->revision == lit->second) {
      want.erase(wit);
      ++lit;
    } else {
      st.env.remove_collection(lit->first);
      lit = st.loaded_revs.erase(lit);
      ++unloads;
    }
  }

  // Load what is new or refreshed, in owner order for reproducible engine
  // state regardless of cache hash order.
  std::vector<const MetadataEntry*> fresh;
  fresh.reserve(want.size());
  // photodtn-lint: allow(unordered-iter): extract-and-sort — owner-sorted below
  for (const auto& [owner, e] : want) fresh.push_back(e);
  std::sort(fresh.begin(), fresh.end(),
            [](const MetadataEntry* x, const MetadataEntry* y) {
              return x->owner < y->owner;
            });
  std::uint64_t loads = 0;
  for (const MetadataEntry* e : fresh) {
    NodeCollection nc;
    nc.node = e->owner;
    nc.delivery_prob = e->owner == kCommandCenter ? 1.0 : e->delivery_prob;
    for (const PhotoMeta& p : e->photos) {
      const PhotoFootprint& fp = ctx.model().footprint_cached(p);
      if (fp.relevant()) nc.footprints.push_back(&fp);
    }
    if (nc.footprints.empty() || nc.delivery_prob <= 0.0) continue;
    st.env.add_collection(nc);
    st.loaded_revs.emplace(e->owner, e->revision);
    ++loads;
  }
  if (hooks_.obs != nullptr) {
    obs::MetricsRegistry& reg = hooks_.obs->registry();
    reg.add(hooks_.engine_unloads, unloads);
    reg.add(hooks_.engine_loads, loads);
  }
  PHOTODTN_AUDIT(st.env.audit());
  return st.env;
}

void OurScheme::on_contact(SimContext& ctx, ContactSession& session) {
  const double now = ctx.now();
  if (cfg_.metadata_enabled) {
    // Metadata is nearly free but not literally free: when the simulator
    // prices it, charge one record per photo in the snapshots and gossiped
    // cache entries before any payload moves.
    if (const std::uint64_t per_photo = ctx.config().metadata_bytes_per_photo;
        per_photo > 0 || hooks_.obs != nullptr) {
      std::uint64_t records = ctx.node(session.a()).store().size() +
                              ctx.node(session.b()).store().size();
      for (const NodeId n : {session.a(), session.b()})
        // photodtn-lint: allow(unordered-iter): commutative integer sum
        for (const auto& [owner, entry] : cache(n).entries())
          records += entry.photos.size();
      if (per_photo > 0) session.consume(records * per_photo);
      if (hooks_.obs != nullptr) {
        obs::MetricsRegistry& reg = hooks_.obs->registry();
        reg.add(hooks_.gossip_records, records);
        reg.record(hooks_.gossip_per_contact, records);
      }
    }
    // A direction's gossip is lost when the fault layer dropped it — or when
    // the link died while the metadata itself was on the wire.
    exchange_metadata(ctx, session.a(), session.b(), now,
                      !session.severed() && !session.gossip_lost_from(session.b()),
                      !session.severed() && !session.gossip_lost_from(session.a()));
  }

  if (session.involves_command_center()) {
    contact_with_center(ctx, session);
  } else {
    contact_between_participants(ctx, session);
  }

  if (cfg_.metadata_enabled) {
    // Post-contact snapshots: each side leaves knowing the other's final
    // collection; a center snapshot doubles as the delivery acknowledgment.
    // A cut link (possibly severed mid-payload above) or a lost gossip
    // direction forfeits the closing snapshot too — the holder keeps
    // whatever stale view it had.
    std::size_t updates = 0;
    if (!session.severed() && !session.gossip_lost_from(session.b()))
      updates += cache(session.a()).update(snapshot(ctx, session.b(), now)) ? 1 : 0;
    if (!session.severed() && !session.gossip_lost_from(session.a()))
      updates += cache(session.b()).update(snapshot(ctx, session.a(), now)) ? 1 : 0;
    if (hooks_.obs != nullptr)
      hooks_.obs->registry().add(hooks_.cache_updates, updates);
  }
  record_selection_delta();
}

void OurScheme::contact_with_center(SimContext& ctx, ContactSession& session) {
  const double now = ctx.now();
  const NodeId part = session.peer(kCommandCenter);
  Node& center = ctx.node(kCommandCenter);
  Node& np = ctx.node(part);
  const CoverageModel& model = ctx.model();

  // The participant's persistent engine holds the cached third-party
  // collections; the center's *live* collection (not its cached snapshot)
  // joins for the duration of the contact and is removed before returning.
  SelectionEnvironment& senv = sync_engine(ctx, part, part, kCommandCenter, now);
  NodeCollection cc;
  cc.node = kCommandCenter;
  cc.delivery_prob = 1.0;
  // Id order, not hash order: footprint load order must not depend on the
  // store's hashing even though ArcSet unions are insertion-order-invariant.
  for (const PhotoMeta& p : center.store().photos()) {
    const PhotoFootprint& fp = model.footprint_cached(p);
    if (fp.relevant()) cc.footprints.push_back(&fp);
  }
  senv.add_collection(cc);

  // Phase 1 — the center (p = 1) selects which of the participant's photos
  // are worth delivering, against its own collection plus cached metadata.
  const std::vector<PhotoMeta> pool = sorted_photos(np.store());
  if (hooks_.obs != nullptr)
    hooks_.obs->registry().record(hooks_.pool_size, pool.size());
  std::vector<const PhotoFootprint*> delivered;
  {
    GreedyPhase phase(senv, 1.0);
    const std::vector<PhotoId> to_deliver =
        selector_.select(model, pool, PhotoStore::kUnlimited, phase);
    for (const PhotoId id : to_deliver) {
      if (center.store().contains(id)) continue;
      if (!session.transfer(id, part, kCommandCenter, /*keep_source=*/true)) break;
      delivered.push_back(&model.footprint_cached(center.store().map().at(id)));
    }
  }

  // Phase 2 — the participant reselects its own buffer against the updated
  // center collection (freshly delivered photos now have zero further value
  // and are evicted, freeing space). Purely local: no bandwidth needed. The
  // center never drops photos, so the deliveries extend its live collection
  // in place — only the PoIs they cover get rebuilt.
  senv.extend_collection(kCommandCenter, 1.0, delivered);
  {
    GreedyPhase phase(senv, std::max(np.delivery_prob(now), cfg_.greedy.p_floor));
    const std::vector<PhotoMeta> own_pool = sorted_photos(np.store());
    const std::vector<PhotoId> keep =
        selector_.select(model, own_pool, np.store().capacity_bytes(), phase);
    const std::unordered_set<PhotoId> keep_set(keep.begin(), keep.end());
    for (const PhotoMeta& p : own_pool)
      if (!keep_set.contains(p.id)) ctx.drop_photo(part, p.id);
  }
  senv.remove_collection(kCommandCenter);
  record_engine_rebuilds(part);
  PHOTODTN_OBS_TRACE(
      ctx.obs(),
      instant("select", "selection", now, static_cast<std::int32_t>(part),
              {{"pool", static_cast<double>(pool.size())},
               {"delivered", static_cast<double>(delivered.size())}}));
}

void OurScheme::contact_between_participants(SimContext& ctx, ContactSession& session) {
  const double now = ctx.now();
  const NodeId a = session.a();
  const NodeId b = session.b();
  Node& na = ctx.node(a);
  Node& nb = ctx.node(b);
  const CoverageModel& model = ctx.model();

  const double pa = na.delivery_prob(now);
  const double pb = nb.delivery_prob(now);
  const std::vector<PhotoMeta> pool = union_pool(na.store(), nb.store());
  if (pool.empty()) return;
  if (hooks_.obs != nullptr)
    hooks_.obs->registry().record(hooks_.pool_size, pool.size());
  SelectionEnvironment& env = sync_engine(ctx, a, a, b, now);

  const ReallocationPlan plan = selector_.reallocate(
      model, pool, a, pa, na.store().capacity_bytes(), b, pb,
      nb.store().capacity_bytes(), env);
  record_engine_rebuilds(a);
  PHOTODTN_OBS_TRACE(
      ctx.obs(),
      instant("reallocate", "selection", now, static_cast<std::int32_t>(a),
              {{"pool", static_cast<double>(pool.size())},
               {"peer", static_cast<double>(b)},
               {"first_target", static_cast<double>(plan.first_target.size())},
               {"second_target", static_cast<double>(plan.second_target.size())}}));

  std::unordered_map<PhotoId, PhotoMeta> by_id;
  by_id.reserve(pool.size());
  for (const PhotoMeta& p : pool) by_id.emplace(p.id, p);

  const bool ok_first = realize_target(ctx, session, plan.first, plan.first_target,
                                       plan.second_target, by_id);
  const bool ok_second =
      ok_first && realize_target(ctx, session, plan.second, plan.second_target,
                                 plan.first_target, by_id);

  if (ok_first && ok_second) {
    // Untruncated: the collections become exactly the solution — pool photos
    // outside a node's target are dropped (this is where acknowledged and
    // redundant photos leave the network).
    auto drop_leftovers = [&](NodeId holder, const std::vector<PhotoId>& target) {
      const std::unordered_set<PhotoId> t(target.begin(), target.end());
      Node& h = ctx.node(holder);
      for (const PhotoMeta& p : pool)
        if (!t.contains(p.id) && h.store().contains(p.id)) ctx.drop_photo(holder, p.id);
    };
    drop_leftovers(plan.first, plan.first_target);
    drop_leftovers(plan.second, plan.second_target);
  }
}

bool OurScheme::realize_target(SimContext& ctx, ContactSession& session, NodeId holder,
                               const std::vector<PhotoId>& target,
                               const std::vector<PhotoId>& peer_target,
                               const std::unordered_map<PhotoId, PhotoMeta>& pool_by_id) {
  Node& h = ctx.node(holder);
  const NodeId peer = session.peer(holder);
  Node& hp = ctx.node(peer);
  const std::unordered_set<PhotoId> target_set(target.begin(), target.end());
  const std::unordered_set<PhotoId> peer_set(peer_target.begin(), peer_target.end());

  // Eviction preference when making room: (1) photos no plan wants,
  // (2) photos the peer's plan wants but the peer already holds, (3) photos
  // the peer's plan wants that only we hold (last resort — may lose them).
  auto pick_victim = [&]() -> std::optional<PhotoId> {
    std::optional<PhotoId> best;
    int best_rank = 4;
    CoverageValue best_value;
    // Strict-minimum selection over the total order (rank, value, id): the
    // id tie-break makes the winner unique, so hash order cannot pick it.
    // photodtn-lint: allow(unordered-iter): selects the unique (rank, value, id) minimum
    for (const auto& [id, p] : h.store().map()) {
      if (target_set.contains(id)) continue;
      int rank = 3;
      if (!peer_set.contains(id)) {
        rank = 1;
      } else if (hp.store().contains(id)) {
        rank = 2;
      }
      const CoverageValue v = standalone_value(ctx.model(), p);
      if (rank < best_rank || (rank == best_rank && v < best_value) ||
          (rank == best_rank && v == best_value && (!best || id < *best))) {
        best_rank = rank;
        best_value = v;
        best = id;
      }
    }
    return best;
  };

  for (const PhotoId id : target) {
    if (h.store().contains(id)) continue;
    const PhotoMeta& meta = pool_by_id.at(id);
    if (!session.can_transfer(meta.size_bytes)) return false;  // budget exhausted
    while (!h.store().can_fit(meta.size_bytes)) {
      const auto victim = pick_victim();
      if (!victim) return false;  // cannot make room
      ctx.drop_photo(holder, *victim);
    }
    if (!session.transfer(id, peer, holder, /*keep_source=*/true)) return false;
  }
  return true;
}

void OurScheme::save_persist_state(persist::StateWriter& w) const {
  using persist::StateAccess;
  StateAccess::save(w, selector_);
  StateAccess::save(w, last_totals_);
  const auto cache_nodes = StateAccess::sorted_keys(caches_);
  w.u64(cache_nodes.size());
  for (const NodeId node : cache_nodes) {
    w.i32(node);
    StateAccess::save(w, caches_.at(node));
  }
  const auto engine_nodes = StateAccess::sorted_keys(engines_);
  w.u64(engine_nodes.size());
  for (const NodeId node : engine_nodes) {
    const EngineState& es = engines_.at(node);
    w.i32(node);
    w.u64(es.last_rebuilds);
    const auto owners = StateAccess::sorted_keys(es.loaded_revs);
    w.u64(owners.size());
    for (const NodeId owner : owners) {
      w.i32(owner);
      w.u64(es.loaded_revs.at(owner));
    }
    StateAccess::save(w, es.env);
  }
}

void OurScheme::load_persist_state(persist::StateReader& r, SimContext& ctx) {
  using persist::StateAccess;
  StateAccess::load(r, selector_);
  StateAccess::load(r, last_totals_);
  const std::size_t ncaches = r.count(28);
  caches_.clear();
  for (std::size_t i = 0; i < ncaches; ++i) {
    const NodeId node = r.i32();
    if (caches_.count(node) != 0) r.fail("duplicate metadata-cache node");
    StateAccess::load(r, cache(node));
  }
  const std::size_t nengines = r.count(28);
  engines_.clear();
  for (std::size_t i = 0; i < nengines; ++i) {
    const NodeId node = r.i32();
    if (engines_.count(node) != 0) r.fail("duplicate selection-engine node");
    EngineState& es =
        engines_.emplace(node, EngineState(ctx.model())).first->second;
    es.last_rebuilds = r.u64();
    const std::size_t owners = r.count(12);
    for (std::size_t k = 0; k < owners; ++k) {
      const NodeId owner = r.i32();
      if (es.loaded_revs.count(owner) != 0) r.fail("duplicate engine revision");
      es.loaded_revs[owner] = r.u64();
    }
    StateAccess::load(r, es.env);
  }
}

}  // namespace photodtn
