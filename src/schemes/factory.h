// Scheme factory used by the experiment runner and benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dtn/scheme.h"

namespace photodtn {

/// Scheme parameters the scenario controls (Table I).
struct SchemeOptions {
  /// Metadata validity threshold for OurScheme/NoMetadata.
  double p_thld = 0.8;
  /// Copies per photo for the spray baselines.
  std::uint32_t spray_copies = 4;
};

/// Names: "OurScheme", "NoMetadata", "Spray&Wait", "ModifiedSpray",
/// "PhotoNet", "BestPossible", plus the extra content-agnostic baselines
/// "Epidemic" and "PROPHET". Throws std::invalid_argument on an unknown
/// name.
std::unique_ptr<Scheme> make_scheme(const std::string& name,
                                    const SchemeOptions& options = {});

/// The five schemes of the Section V comparison, in the paper's order.
std::vector<std::string> simulation_scheme_names();

/// The three schemes of the Section IV prototype demo.
std::vector<std::string> demo_scheme_names();

}  // namespace photodtn
