#include "schemes/best_possible.h"

#include "schemes/common.h"

namespace photodtn {

void BestPossibleScheme::on_photo_taken(SimContext& ctx, NodeId node,
                                        const PhotoMeta& photo) {
  // Irrelevant photos can never contribute coverage; keeping them out makes
  // the epidemic replication tractable without changing the bound.
  if (!ctx.model().footprint_cached(photo).relevant()) return;
  ctx.store_photo(node, photo);
}

void BestPossibleScheme::replicate(SimContext& ctx, ContactSession& session, NodeId src,
                                   NodeId dst) {
  for (const PhotoMeta& p : sorted_photos(ctx.node(src).store())) {
    if (ctx.node(dst).store().contains(p.id)) continue;
    session.transfer(p.id, src, dst, /*keep_source=*/true);
  }
}

void BestPossibleScheme::on_contact(SimContext& ctx, ContactSession& session) {
  replicate(ctx, session, session.a(), session.b());
  replicate(ctx, session, session.b(), session.a());
}

}  // namespace photodtn
