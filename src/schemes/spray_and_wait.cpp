#include "schemes/spray_and_wait.h"

#include "schemes/common.h"

namespace photodtn {

SprayCounter& SprayAndWaitScheme::counter(NodeId node) {
  auto it = counters_.find(node);
  if (it == counters_.end()) it = counters_.emplace(node, SprayCounter{copies_}).first;
  return it->second;
}

void SprayAndWaitScheme::on_photo_taken(SimContext& ctx, NodeId node,
                                        const PhotoMeta& photo) {
  // Drop-tail buffer: a full node discards the new photo (the protocol has
  // no notion of photo value to justify anything smarter).
  if (ctx.store_photo(node, photo)) counter(node).on_create(photo.id);
}

void SprayAndWaitScheme::deliver_all(SimContext& ctx, ContactSession& session,
                                     NodeId src) {
  // Direct transmission to the destination is allowed in any phase; custody
  // ends on delivery, so the local copy is released.
  for (const PhotoMeta& p : sorted_photos(ctx.node(src).store())) {
    if (ctx.node(kCommandCenter).store().contains(p.id)) {
      // Already delivered by another replica: release ours.
      ctx.drop_photo(src, p.id);
      counter(src).on_drop(p.id);
      continue;
    }
    if (!session.transfer(p.id, src, kCommandCenter, /*keep_source=*/false)) break;
    counter(src).on_drop(p.id);
  }
}

void SprayAndWaitScheme::spray_direction(SimContext& ctx, ContactSession& session,
                                         NodeId src, NodeId dst) {
  SprayCounter& src_counter = counter(src);
  SprayCounter& dst_counter = counter(dst);
  for (const PhotoMeta& p : sorted_photos(ctx.node(src).store())) {
    if (!src_counter.can_spray(p.id)) continue;
    if (ctx.node(dst).store().contains(p.id)) continue;
    if (!session.can_transfer(p.size_bytes)) break;
    if (!ctx.node(dst).store().can_fit(p.size_bytes)) break;  // receiver full
    if (!session.transfer(p.id, src, dst, /*keep_source=*/true)) break;
    dst_counter.on_receive(p.id, src_counter.spray(p.id));
  }
}

void SprayAndWaitScheme::on_contact(SimContext& ctx, ContactSession& session) {
  if (session.involves_command_center()) {
    deliver_all(ctx, session, session.peer(kCommandCenter));
    return;
  }
  spray_direction(ctx, session, session.a(), session.b());
  spray_direction(ctx, session, session.b(), session.a());
}

void SprayAndWaitScheme::save_persist_state(persist::StateWriter& w) const {
  save_spray_counters(w, counters_);
}

void SprayAndWaitScheme::load_persist_state(persist::StateReader& r,
                                            SimContext& /*ctx*/) {
  load_spray_counters(r, counters_, copies_);
}

}  // namespace photodtn
