// ModifiedSpray (Section V-B): Spray-and-Wait made coverage-aware, standing
// in for prior utility-driven routing. Two changes from plain Spray&Wait:
//   * transmissions are ordered by *individual* photo coverage, highest
//     first;
//   * a full receiver evicts its lowest-coverage photo to admit a
//     higher-coverage incoming one.
// Crucially, it ranks by each photo's standalone coverage — it never looks
// at overlap between photos, which is exactly the limitation the paper's
// scheme fixes.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "dtn/scheme.h"
#include "dtn/simulator.h"
#include "routing/spray_counter.h"

namespace photodtn {

class ModifiedSprayScheme : public Scheme {
 public:
  explicit ModifiedSprayScheme(std::uint32_t copies = 4) : copies_(copies) {}

  std::string name() const override { return "ModifiedSpray"; }

  void on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) override;
  void on_contact(SimContext& ctx, ContactSession& session) override;

  /// Checkpoint/restore of the per-node spray counters.
  void save_persist_state(persist::StateWriter& w) const override;
  void load_persist_state(persist::StateReader& r, SimContext& ctx) override;

 private:
  SprayCounter& counter(NodeId node);
  void spray_direction(SimContext& ctx, ContactSession& session, NodeId src, NodeId dst);
  void deliver_by_value(SimContext& ctx, ContactSession& session, NodeId src);
  /// Evicts lowest-value photos from `node` until `bytes` fit, but only
  /// while the victims are worth less than `incoming_value`. Returns true
  /// if the bytes now fit.
  bool make_room(SimContext& ctx, NodeId node, std::uint64_t bytes,
                 const CoverageValue& incoming_value);

  std::uint32_t copies_;
  std::unordered_map<NodeId, SprayCounter> counters_;
};

}  // namespace photodtn
