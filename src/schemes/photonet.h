// PhotoNet-style diversity routing (Uddin et al., the prototype-demo
// baseline of Section IV-B). Photos are prioritized to maximize the
// *diversity* of the receiver's collection in a feature space of capture
// location, time stamp, and color histogram. Pixel data is not simulated,
// so the color histogram is replaced by a synthetic 3-vector derived
// deterministically from the photo id (documented in DESIGN.md); location
// and time come from real metadata. Diversity is the classic max-min
// (remote-first) criterion: transmit the photo farthest from the receiver's
// current set; evict the photo closest to its nearest neighbor.
#pragma once

#include <array>

#include "dtn/scheme.h"
#include "dtn/simulator.h"

namespace photodtn {

struct PhotoNetConfig {
  /// Feature-space scales: meters and seconds that count as "one unit" of
  /// difference, so location, time, and color contribute comparably.
  double location_scale_m = 500.0;
  double time_scale_s = 3600.0;
  double color_weight = 1.0;
};

class PhotoNetScheme : public Scheme {
 public:
  explicit PhotoNetScheme(PhotoNetConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "PhotoNet"; }

  void on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) override;
  void on_contact(SimContext& ctx, ContactSession& session) override;

  /// Feature vector (x, y, t, c1, c2, c3) after scaling; exposed for tests.
  std::array<double, 6> features(const PhotoMeta& photo) const;

 private:
  double distance(const PhotoMeta& a, const PhotoMeta& b) const;
  /// Min distance from `photo` to any photo in `store` (infinity if empty).
  double min_distance_to(SimContext& ctx, const PhotoMeta& photo, NodeId node) const;
  void send_diverse(SimContext& ctx, ContactSession& session, NodeId src, NodeId dst);
  /// Drops the least-diverse photo (smallest nearest-neighbor distance).
  bool evict_least_diverse(SimContext& ctx, NodeId node, std::uint64_t bytes);

  PhotoNetConfig cfg_;
};

}  // namespace photodtn
