#include "schemes/common.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "geometry/angle.h"
#include "persist/state_access.h"

namespace photodtn {

std::vector<PhotoMeta> sorted_photos(const PhotoStore& store) {
  std::vector<PhotoMeta> out = store.photos();
  std::sort(out.begin(), out.end(), [](const PhotoMeta& x, const PhotoMeta& y) {
    if (x.taken_at != y.taken_at) return x.taken_at < y.taken_at;
    return x.id < y.id;
  });
  return out;
}

CoverageValue standalone_value(const CoverageModel& model, const PhotoMeta& photo) {
  static const ArcSet kNothing;
  const PhotoFootprint& fp = model.footprint_cached(photo);
  CoverageValue v;
  for (const PoiArc& pa : fp.arcs) {
    const PointOfInterest& poi = model.pois()[pa.poi_index];
    v.point += poi.weight;
    v.aspect += poi.weight * profile_gain(poi.profile(), pa.arc, kNothing);
  }
  return v;
}

std::vector<PhotoMeta> union_pool(const PhotoStore& a, const PhotoStore& b) {
  std::vector<PhotoMeta> pool = sorted_photos(a);
  std::unordered_set<PhotoId> seen;
  seen.reserve(pool.size());
  for (const PhotoMeta& p : pool) seen.insert(p.id);
  for (const PhotoMeta& p : sorted_photos(b))
    if (seen.insert(p.id).second) pool.push_back(p);
  return pool;
}

void save_spray_counters(
    persist::StateWriter& w,
    const std::unordered_map<NodeId, SprayCounter>& counters) {
  using persist::StateAccess;
  const auto nodes = StateAccess::sorted_keys(counters);
  w.u64(nodes.size());
  for (const NodeId node : nodes) {
    w.i32(node);
    StateAccess::save(w, counters.at(node));
  }
}

void load_spray_counters(persist::StateReader& r,
                         std::unordered_map<NodeId, SprayCounter>& counters,
                         std::uint32_t expected_copies) {
  using persist::StateAccess;
  const std::size_t n = r.count(16);
  counters.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = r.i32();
    if (counters.count(node) != 0) r.fail("duplicate spray-counter node");
    SprayCounter& c = counters.emplace(node, SprayCounter{expected_copies}).first->second;
    StateAccess::load(r, c);
    if (c.initial_copies() != expected_copies) {
      r.fail("spray counter L=" + std::to_string(c.initial_copies()) +
             " does not match the scheme's configured L=" +
             std::to_string(expected_copies));
    }
  }
}

}  // namespace photodtn
