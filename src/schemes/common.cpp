#include "schemes/common.h"

#include <algorithm>
#include <unordered_set>

#include "geometry/angle.h"

namespace photodtn {

std::vector<PhotoMeta> sorted_photos(const PhotoStore& store) {
  std::vector<PhotoMeta> out = store.photos();
  std::sort(out.begin(), out.end(), [](const PhotoMeta& x, const PhotoMeta& y) {
    if (x.taken_at != y.taken_at) return x.taken_at < y.taken_at;
    return x.id < y.id;
  });
  return out;
}

CoverageValue standalone_value(const CoverageModel& model, const PhotoMeta& photo) {
  static const ArcSet kNothing;
  const PhotoFootprint& fp = model.footprint_cached(photo);
  CoverageValue v;
  for (const PoiArc& pa : fp.arcs) {
    const PointOfInterest& poi = model.pois()[pa.poi_index];
    v.point += poi.weight;
    v.aspect += poi.weight * profile_gain(poi.profile(), pa.arc, kNothing);
  }
  return v;
}

std::vector<PhotoMeta> union_pool(const PhotoStore& a, const PhotoStore& b) {
  std::vector<PhotoMeta> pool = sorted_photos(a);
  std::unordered_set<PhotoId> seen;
  seen.reserve(pool.size());
  for (const PhotoMeta& p : pool) seen.insert(p.id);
  for (const PhotoMeta& p : sorted_photos(b))
    if (seen.insert(p.id).second) pool.push_back(p);
  return pool;
}

}  // namespace photodtn
