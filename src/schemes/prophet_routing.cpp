#include "schemes/prophet_routing.h"

#include "schemes/common.h"

namespace photodtn {

void ProphetRoutingScheme::on_photo_taken(SimContext& ctx, NodeId node,
                                          const PhotoMeta& photo) {
  ctx.store_photo(node, photo);
}

void ProphetRoutingScheme::forward(SimContext& ctx, ContactSession& session, NodeId src,
                                   NodeId dst) {
  const double now = ctx.now();
  if (dst == kCommandCenter) {
    for (const PhotoMeta& p : sorted_photos(ctx.node(src).store())) {
      if (ctx.node(kCommandCenter).store().contains(p.id)) {
        ctx.drop_photo(src, p.id);
        continue;
      }
      if (!session.transfer(p.id, src, kCommandCenter, /*keep_source=*/false)) break;
    }
    return;
  }
  // GRTR: replicate to the peer only if it is a strictly better custodian.
  const double p_src = ctx.node(src).delivery_prob(now);
  const double p_dst = ctx.node(dst).delivery_prob(now);
  if (p_dst < p_src + min_advantage_ || p_dst == 0.0) return;
  for (const PhotoMeta& p : sorted_photos(ctx.node(src).store())) {
    if (ctx.node(dst).store().contains(p.id)) continue;
    if (!session.can_transfer(p.size_bytes)) break;
    if (!ctx.node(dst).store().can_fit(p.size_bytes)) break;
    if (!session.transfer(p.id, src, dst, /*keep_source=*/true)) break;
  }
}

void ProphetRoutingScheme::on_contact(SimContext& ctx, ContactSession& session) {
  forward(ctx, session, session.a(), session.b());
  forward(ctx, session, session.b(), session.a());
}

}  // namespace photodtn
