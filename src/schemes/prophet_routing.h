// PROPHET forwarding (Lindgren et al., reference [16] of the paper) used as
// a *routing* baseline: a node replicates a photo to a peer only when the
// peer's delivery predictability toward the command center exceeds its own
// (the GRTR forwarding strategy), and delivers everything on direct center
// contact. Content-agnostic — photos are opaque packets.
#pragma once

#include "dtn/scheme.h"
#include "dtn/simulator.h"

namespace photodtn {

class ProphetRoutingScheme : public Scheme {
 public:
  /// `min_advantage`: required margin P(peer) - P(self) before forwarding
  /// (0 reproduces plain GRTR).
  explicit ProphetRoutingScheme(double min_advantage = 0.0)
      : min_advantage_(min_advantage) {}

  std::string name() const override { return "PROPHET"; }

  void on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) override;
  void on_contact(SimContext& ctx, ContactSession& session) override;

 private:
  void forward(SimContext& ctx, ContactSession& session, NodeId src, NodeId dst);

  double min_advantage_;
};

}  // namespace photodtn
