// Deterministic fault injection for the DTN simulator (disruption is the
// paper's whole operating regime — §I — yet an unperturbed trace replay
// never exercises it). A FaultInjector derives every perturbation from
// (seed, FaultConfig) alone, so a faulted run is exactly as reproducible as
// a clean one:
//
//   * contact interruption — a contact's link dies after a sampled fraction
//     of its physical byte capacity; whether that manifests as a clean early
//     end or a mid-transfer cut depends on where transfer boundaries land
//     (ContactSession implements the partial-transfer semantics);
//   * node churn — participants crash (optionally wiping storage and
//     routing soft state), stay down for a sampled interval during which
//     they miss contacts and captures, then reboot;
//   * degraded links — per-contact bandwidth jitter and per-direction
//     metadata-gossip loss (payload transfers are acknowledged end-to-end;
//     metadata rides best-effort datagrams, so only it can silently vanish).
//
// The schedule is precomputed at construction: churn transitions are merged
// into disjoint per-node downtime intervals, and per-contact faults are a
// pure hash of (seed, contact index), so they are independent of call order
// and of how many contacts a scheme actually uses.
#pragma once

#include <cstdint>
#include <vector>

#include "coverage/photo.h"  // NodeId, kCommandCenter

namespace photodtn {

/// A scripted outage: `node` is down in [start, end). Used by tests and
/// hand-built disruption scenarios; merged with the randomly sampled churn.
struct Downtime {
  NodeId node = -1;
  double start = 0.0;
  double end = 0.0;
};

struct FaultConfig {
  /// Probability a contact's link dies before the contact's nominal end.
  double contact_interrupt_prob = 0.0;
  /// Surviving fraction of the link's byte capacity when interrupted,
  /// sampled uniformly from [min, max). 0 = dies immediately.
  double interrupt_fraction_min = 0.0;
  double interrupt_fraction_max = 1.0;
  /// Per-participant crash rate (Poisson). The command center is
  /// infrastructure and never churns.
  double crash_rate_per_hour = 0.0;
  /// Mean of the exponentially distributed downtime after a crash.
  double mean_downtime_s = 4.0 * 3600.0;
  /// true: a crash wipes the node's photo buffer and routing soft state
  /// (PROPHET table, rate estimator, scheme caches — flash reformat);
  /// false: only the downtime is suffered (battery pull, storage intact).
  bool crash_wipes_storage = true;
  /// Per-contact bandwidth multiplier sampled uniformly from [1 - jitter, 1].
  double bandwidth_jitter = 0.0;
  /// Probability, per contact *direction*, that the metadata gossip flowing
  /// that way is lost (schemes see it via ContactSession::gossip_lost_from).
  double gossip_loss_prob = 0.0;
  /// Deterministic outages merged with the sampled churn.
  std::vector<Downtime> scripted_downtime;
  /// Extra stream separation: two configs differing only in salt draw
  /// independent fault schedules from the same simulation seed.
  std::uint64_t salt = 0;

  /// True when any perturbation can fire.
  bool any() const noexcept {
    return contact_interrupt_prob > 0.0 || crash_rate_per_hour > 0.0 ||
           bandwidth_jitter > 0.0 || gossip_loss_prob > 0.0 ||
           !scripted_downtime.empty();
  }
};

/// The perturbations applied to one contact.
struct ContactFault {
  double bandwidth_factor = 1.0;
  bool interrupted = false;
  /// Fraction of the link's byte capacity carried before it dies
  /// (meaningful only when `interrupted`).
  double keep_fraction = 1.0;
  bool gossip_lost_ab = false;  // a -> b metadata direction lost
  bool gossip_lost_ba = false;  // b -> a metadata direction lost
};

/// One churn edge, in simulation-time order. Per node, transitions strictly
/// alternate down/up (overlapping sampled + scripted outages are merged).
struct ChurnTransition {
  double time = 0.0;
  NodeId node = -1;
  bool up = false;    // false: node goes down; true: node reboots
  bool wipe = false;  // down only: storage/soft state wiped
};

class FaultInjector {
 public:
  /// Disabled injector: no transitions, every contact fault is clean.
  FaultInjector() = default;

  /// Samples the full churn schedule for `num_nodes` nodes over [0,
  /// horizon). `seed` is mixed with cfg.salt; the injector draws from its
  /// own streams and never perturbs the simulation Rng.
  FaultInjector(const FaultConfig& cfg, NodeId num_nodes, double horizon,
                std::uint64_t seed);

  bool enabled() const noexcept { return enabled_; }
  const FaultConfig& config() const noexcept { return cfg_; }

  /// All churn transitions, sorted by (time, node, down-before-up).
  const std::vector<ChurnTransition>& transitions() const noexcept {
    return transitions_;
  }

  /// Faults for the contact at `contact_index` in trace order. A pure
  /// function of (seed, index): independent of evaluation order.
  ContactFault contact_fault(std::size_t contact_index) const;

  /// Deep invariant check (audit builds / tests): config probabilities,
  /// fractions, and rates are valid; transitions are time-sorted with
  /// finite non-negative times; per node they strictly alternate
  /// down/up starting with down; the command center never churns. Throws
  /// std::logic_error on violation.
  void audit() const;

 private:
  FaultConfig cfg_;
  bool enabled_ = false;
  NodeId num_nodes_ = 0;
  std::uint64_t contact_seed_ = 0;
  std::vector<ChurnTransition> transitions_;
};

/// Payload byte budget of a contact: bandwidth * bandwidth_factor *
/// (duration - setup). Clamps to exactly 0 when setup >= duration (or any
/// input is degenerate) and saturates to 2^64-1 instead of invoking the UB
/// of an out-of-range double -> uint64 conversion.
std::uint64_t contact_payload_budget(double bandwidth_bytes_per_s, double duration_s,
                                     double setup_s, double bandwidth_factor = 1.0);

}  // namespace photodtn
