// Event-driven DTN simulator. Replays a contact trace plus a photo-capture
// workload against a pluggable dissemination Scheme, enforcing the paper's
// three resource constraints: contact opportunities (the trace), per-contact
// transmission capacity (bandwidth x duration), and per-node storage.
// Node 0 is the command center; its store is unbounded and photos arriving
// there count as delivered (it never drops — Section III-C).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "coverage/coverage_map.h"
#include "coverage/coverage_model.h"
#include "dtn/fault.h"
#include "dtn/node.h"
#include "dtn/scheme.h"
#include "obs/obs.h"
#include "persist/fwd.h"
#include "trace/contact_trace.h"
#include "util/rng.h"

namespace photodtn {

struct SimConfig {
  /// Participant storage S_i in bytes (Table I sweeps 0.15–1.2 GB).
  std::uint64_t node_storage_bytes = 600ULL * 1000 * 1000;
  /// Pairwise transmission bandwidth (Section V-C uses 2 MB/s).
  double bandwidth_bytes_per_s = 2.0e6;
  /// Lift the per-contact byte budget entirely (BestPossible).
  bool unlimited_bandwidth = false;
  /// Lift participant storage limits (BestPossible).
  bool unlimited_storage = false;
  /// Link setup overhead per contact (neighbor discovery, pairing): the
  /// first `contact_setup_s` seconds of every contact carry no payload.
  /// The paper idealizes this away (0); the ablation bench sweeps it.
  double contact_setup_s = 0.0;
  /// Bandwidth cost of metadata, per photo record exchanged. The paper
  /// treats metadata as free ("just a couple of floating point numbers");
  /// schemes that exchange metadata charge this against the contact budget
  /// via ContactSession::consume.
  std::uint64_t metadata_bytes_per_photo = 0;
  /// Interval between coverage samples recorded in the result.
  double sample_interval_s = 10.0 * 3600.0;
  ProphetConfig prophet;
  /// Deterministic disruption plan (dtn/fault.h). Defaults to no faults, in
  /// which case behaviour is bit-identical to a simulator without the fault
  /// layer (the injector draws from its own streams, never from `seed`'s
  /// scheme-visible Rng).
  FaultConfig faults;
  /// Observability switches (obs/obs.h). The simulator always merges the
  /// PHOTODTN_OBS environment switch in, so either side can enable metrics
  /// and tracing; both default off and cost one branch per site when off.
  obs::ObsConfig obs;
  std::uint64_t seed = 1;
};

/// A photo-capture event in the workload.
struct PhotoEvent {
  double time = 0.0;
  NodeId node = -1;
  PhotoMeta photo;
};

/// One point of the coverage-vs-time series (normalized per Section V-B).
struct SimSample {
  double time = 0.0;
  double point_coverage = 0.0;   // fraction of PoI weight point-covered
  double aspect_coverage = 0.0;  // mean weighted aspect radians per PoI
  double full_view_coverage = 0.0;  // fraction of PoIs with the full 2*pi ring
  std::uint64_t delivered_photos = 0;
  std::uint64_t bytes_transferred = 0;
};

/// One observable simulator event, for debugging, tracing, and timeline
/// tools. Delivered to the listener synchronously, in simulation order.
struct SimEvent {
  enum class Type {
    kContact,     // a/b: endpoints
    kPhotoTaken,  // a: photographer, photo
    kTransfer,    // a: source, b: destination, photo
    kDrop,        // a: holder, photo
    kDelivery,    // a: source, photo (arrived at the command center)
    kContactInterrupted,  // a/b: endpoints; photo: the cut transfer (0 if
                          // the link died between transfers)
    kNodeDown,    // a: the node that crashed
    kNodeUp,      // a: the node that rebooted
  };
  Type type{};
  double time = 0.0;
  NodeId a = -1;
  NodeId b = -1;
  PhotoId photo = 0;
};

using SimEventListener = std::function<void(const SimEvent&)>;

struct SimCounters {
  std::uint64_t contacts = 0;  // contacts actually held (missed ones excluded)
  std::uint64_t photos_taken = 0;
  std::uint64_t transfers = 0;
  std::uint64_t bytes_transferred = 0;  // completed transfers only
  std::uint64_t failed_transfers = 0;
  std::uint64_t drops = 0;
  // Fault-layer observability (all zero on a clean run).
  std::uint64_t interrupted_contacts = 0;  // links that died with traffic pending
  std::uint64_t interrupted_transfers = 0;  // photo transfers cut mid-flight
  std::uint64_t partial_bytes = 0;  // wire bytes burned by cut transfers/gossip
  std::uint64_t missed_contacts = 0;   // skipped: an endpoint was down
  std::uint64_t node_crashes = 0;
  std::uint64_t photos_lost_to_crash = 0;  // wiped from crashed buffers
  std::uint64_t photos_missed_down = 0;    // captures skipped: photographer down
  std::uint64_t gossip_losses = 0;  // lost metadata directions across contacts
};

struct SimResult {
  std::vector<SimSample> samples;
  CoverageValue final_coverage;
  double final_point_norm = 0.0;
  double final_aspect_norm = 0.0;
  std::uint64_t delivered_photos = 0;
  /// Ids of the photos the command center received, in delivery order.
  /// Lets callers re-evaluate the delivered set against ground-truth
  /// metadata when the workload applied sensor noise.
  std::vector<PhotoId> delivered_ids;
  SimCounters counters;
  /// Metrics snapshot + merged trace events; empty unless the run enabled
  /// the corresponding ObsConfig switch. Never feeds golden comparisons.
  obs::ObsReport obs;
};

class Simulator;

/// The services a Scheme may use. Implemented by Simulator; split out so
/// schemes can be unit-tested against a mock.
class SimContext {
 public:
  virtual ~SimContext() = default;

  virtual double now() const = 0;
  virtual const CoverageModel& model() const = 0;
  virtual Node& node(NodeId id) = 0;
  virtual NodeId num_nodes() const = 0;
  virtual const SimConfig& config() const = 0;
  virtual Rng& rng() = 0;

  /// Stores a photo at a node if it fits (no eviction); counts storage-full
  /// rejections. Used from on_photo_taken.
  virtual bool store_photo(NodeId node, const PhotoMeta& photo) = 0;

  /// Drops a photo from a node's buffer. The command center never drops
  /// (returns false).
  virtual bool drop_photo(NodeId node, PhotoId photo) = 0;

  /// The run's observability bundle, or nullptr when the context has none
  /// (the default keeps scheme unit-test mocks source-compatible). Schemes
  /// must check metrics_on()/trace_on() before paying any instrumentation
  /// cost beyond the null test.
  virtual obs::Obs* obs() { return nullptr; }
};

/// A live contact: byte budget plus transfer primitive. When the fault
/// layer interrupts the contact, the link carries `cut_after_bytes` of
/// traffic (payload + metadata) and then dies: the transfer in flight at
/// that instant consumes its wire bytes but does NOT materialize at the
/// receiver, and every later operation fails. A severed session stays
/// severed — schemes cannot observe the cut in advance (can_transfer only
/// reflects the budget), exactly like a real link drop.
class ContactSession {
 public:
  /// `cut_after_bytes` == kNoCut: the link survives the whole contact.
  static constexpr std::uint64_t kNoCut = ~0ULL;

  ContactSession(Simulator& sim, const Contact& contact, std::uint64_t budget,
                 bool unlimited, std::uint64_t cut_after_bytes = kNoCut,
                 bool gossip_lost_ab = false, bool gossip_lost_ba = false);

  NodeId a() const noexcept { return contact_.a; }
  NodeId b() const noexcept { return contact_.b; }
  NodeId peer(NodeId n) const noexcept { return contact_.a == n ? contact_.b : contact_.a; }
  double start() const noexcept { return contact_.start; }
  double duration() const noexcept { return contact_.duration; }
  bool involves_command_center() const noexcept {
    return contact_.involves(kCommandCenter);
  }

  bool unlimited() const noexcept { return unlimited_; }
  std::uint64_t budget_bytes() const noexcept { return budget_; }
  /// Whether the budget admits `bytes` more. Deliberately blind to a
  /// pending interruption: the cut reveals itself only when traffic hits it.
  bool can_transfer(std::uint64_t bytes) const noexcept {
    return !severed_ && (unlimited_ || bytes <= budget_);
  }

  /// True once the fault layer cut this contact's link.
  bool severed() const noexcept { return severed_; }
  /// Total wire bytes this session moved (completed + partial).
  std::uint64_t bytes_used() const noexcept { return spent_; }
  /// True when the metadata gossip flowing from `from` to its peer was lost
  /// by the fault layer. Payload transfers are unaffected (acknowledged
  /// end-to-end); best-effort metadata is not.
  bool gossip_lost_from(NodeId from) const noexcept {
    return from == contact_.a ? gossip_lost_ab_ : gossip_lost_ba_;
  }

  /// Charges non-payload bytes (metadata exchange) against the budget.
  /// Returns false (consuming whatever remained) if the budget ran dry or
  /// the link was cut mid-exchange — the contact then has no capacity left
  /// for photos either.
  bool consume(std::uint64_t bytes);

  /// Copies `photo` from `from` to `to`, consuming budget. With
  /// keep_source=false the source's copy is removed after a successful
  /// transfer (a hand-off, e.g. spraying half the copies does NOT use this —
  /// only full relinquishment). Returns false without side effects if the
  /// photo is missing at the source, already present at the destination,
  /// the budget is insufficient, or the destination lacks space.
  bool transfer(PhotoId photo, NodeId from, NodeId to, bool keep_source = true);

 private:
  /// Charges `bytes` of wire traffic against the pending cut. Returns the
  /// bytes the link actually carried; severs the session (recording the
  /// interruption against `photo`) when the cut point is crossed.
  std::uint64_t wire_carry(std::uint64_t bytes, PhotoId photo);

  Simulator& sim_;
  Contact contact_;
  std::uint64_t budget_;
  bool unlimited_;
  std::uint64_t cut_after_;
  std::uint64_t spent_ = 0;
  bool severed_ = false;
  bool gossip_lost_ab_;
  bool gossip_lost_ba_;
};

class Simulator : public SimContext {
 public:
  /// `model` and `trace` must outlive the simulator.
  Simulator(const CoverageModel& model, const ContactTrace& trace,
            std::vector<PhotoEvent> photo_events, SimConfig config);

  /// Runs the whole trace under `scheme` and returns the metric series.
  /// A Simulator instance is single-shot: construct a fresh one per run.
  /// After persist::restore() the same call resumes from the checkpointed
  /// event instead of the start (and skips scheme.init(), which restore
  /// already ran); the completed run is byte-identical to an uninterrupted
  /// one.
  SimResult run(Scheme& scheme);

  /// Called at the top of every event-loop iteration with the number of
  /// events already processed, *before* the next event executes — the
  /// instant at which the simulator's state is a consistent checkpoint
  /// surface. persist-aware runners snapshot from here. Set before run();
  /// nullptr (the default) costs one branch per event.
  void set_checkpoint_hook(std::function<void(std::uint64_t)> hook) {
    checkpoint_hook_ = std::move(hook);
  }

  /// Events processed so far (event-loop iterations completed). Identifies
  /// a checkpoint position.
  std::uint64_t event_index() const noexcept { return event_index_; }

  /// Observes every simulation event (contacts, captures, transfers, drops,
  /// deliveries). Set before run(); pass nullptr to disable. The listener
  /// must not mutate simulation state.
  void set_event_listener(SimEventListener listener) {
    listener_ = std::move(listener);
  }

  // SimContext interface.
  double now() const override { return now_; }
  const CoverageModel& model() const override { return *model_; }
  Node& node(NodeId id) override;
  NodeId num_nodes() const override { return static_cast<NodeId>(nodes_.size()); }
  const SimConfig& config() const override { return config_; }
  Rng& rng() override { return rng_; }
  bool store_photo(NodeId node, const PhotoMeta& photo) override;
  bool drop_photo(NodeId node, PhotoId photo) override;
  obs::Obs* obs() override { return &obs_; }

  /// Coverage achieved by the command center so far (read-only; schemes
  /// must not consult this — they only see metadata acknowledgments).
  const CoverageMap& command_center_coverage() const noexcept { return cc_coverage_; }

  /// The fault plan this run executes (disabled when config().faults is
  /// all-default). Read-only; exposed for tests and tooling.
  const FaultInjector& faults() const noexcept { return faults_; }
  /// True while `id` is crashed (always false for the command center).
  bool is_down(NodeId id) const;

 private:
  friend class ContactSession;
  friend struct persist::StateAccess;  // checkpoint/restore of all run state

  /// The simulator's own counters, pre-registered on the obs registry (the
  /// registry is the single source of truth; SimCounters is materialized
  /// from it at the end of run()). Registration order fixes the handle
  /// indices; the snapshot sorts by name, so output never depends on it.
  struct CounterIds {
    obs::MetricsRegistry::Counter contacts, photos_taken, transfers,
        bytes_transferred, failed_transfers, drops, delivered,
        interrupted_contacts, interrupted_transfers, partial_bytes,
        missed_contacts, node_crashes, photos_lost_to_crash,
        photos_missed_down, gossip_losses;
  };

  void register_delivery(NodeId from, const PhotoMeta& photo);
  void apply_churn(const ChurnTransition& tr, Scheme& scheme);
  void take_sample();
  SimCounters read_counters() const;
  void bump(obs::MetricsRegistry::Counter c, std::uint64_t n = 1) {
    obs_.registry().add(c, n);
  }
  void emit(SimEvent::Type type, NodeId a, NodeId b, PhotoId photo) const {
    if (listener_) listener_(SimEvent{type, now_, a, b, photo});
  }

  const CoverageModel* model_;
  const ContactTrace* trace_;
  std::vector<PhotoEvent> photo_events_;
  SimConfig config_;
  Rng rng_;

  FaultInjector faults_;
  std::vector<char> down_;  // per node: currently crashed
  std::vector<Node> nodes_;
  CoverageMap cc_coverage_;
  double now_ = 0.0;
  bool ran_ = false;
  // Event-loop cursors, members (not run() locals) so a checkpoint can
  // capture them and a restore can resume the loop mid-trace.
  std::size_t ci_ = 0;           // next contact
  std::size_t pi_ = 0;           // next photo event
  std::size_t fi_ = 0;           // next churn transition
  double next_sample_ = 0.0;     // next coverage-sample time
  std::uint64_t event_index_ = 0;  // loop iterations completed
  bool restored_ = false;        // run() resumes; scheme.init already ran
  std::function<void(std::uint64_t)> checkpoint_hook_;
  obs::Obs obs_;  // after config_: seeded from config_.obs + environment
  CounterIds ids_;
  obs::MetricsRegistry::Histogram h_contact_bytes_;  // metrics tier only
  std::uint64_t delivered_ = 0;
  std::vector<PhotoId> delivered_ids_;
  std::vector<SimSample> samples_;
  SimEventListener listener_;
};

}  // namespace photodtn
