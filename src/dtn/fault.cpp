#include "dtn/fault.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/prob.h"
#include "util/rng.h"

namespace photodtn {

namespace {

/// Mixes a base seed with a tag into an independent stream seed. SplitMix64
/// over the sum decorrelates neighbouring tags (the Rng constructor mixes
/// again, so even weak separation here would not correlate the streams).
std::uint64_t sub_seed(std::uint64_t base, std::uint64_t tag) noexcept {
  std::uint64_t s = base + 0x9e3779b97f4a7c15ULL * (tag + 1);
  return splitmix64(s);
}

void validate_config(const FaultConfig& cfg, NodeId num_nodes) {
  PHOTODTN_CHECK_MSG(is_probability(cfg.contact_interrupt_prob),
                     "contact_interrupt_prob must be in [0, 1]");
  PHOTODTN_CHECK_MSG(is_probability(cfg.gossip_loss_prob),
                     "gossip_loss_prob must be in [0, 1]");
  PHOTODTN_CHECK_MSG(cfg.bandwidth_jitter >= 0.0 && cfg.bandwidth_jitter < 1.0,
                     "bandwidth_jitter must be in [0, 1)");
  PHOTODTN_CHECK_MSG(0.0 <= cfg.interrupt_fraction_min &&
                         cfg.interrupt_fraction_min <= cfg.interrupt_fraction_max &&
                         cfg.interrupt_fraction_max <= 1.0,
                     "interrupt fractions must satisfy 0 <= min <= max <= 1");
  PHOTODTN_CHECK_MSG(cfg.crash_rate_per_hour >= 0.0 &&
                         std::isfinite(cfg.crash_rate_per_hour),
                     "crash_rate_per_hour must be finite and >= 0");
  PHOTODTN_CHECK_MSG(cfg.mean_downtime_s >= 0.0 && std::isfinite(cfg.mean_downtime_s),
                     "mean_downtime_s must be finite and >= 0");
  for (const Downtime& d : cfg.scripted_downtime) {
    PHOTODTN_CHECK_MSG(d.node > kCommandCenter && d.node < num_nodes,
                       "scripted downtime must name a participant in range");
    PHOTODTN_CHECK_MSG(std::isfinite(d.start) && d.start >= 0.0 && d.end > d.start,
                       "scripted downtime needs 0 <= start < end");
  }
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& cfg, NodeId num_nodes, double horizon,
                             std::uint64_t seed)
    : cfg_(cfg), enabled_(cfg.any()), num_nodes_(num_nodes) {
  validate_config(cfg_, num_nodes);
  std::uint64_t base = seed ^ (0xFA0175EEDULL + cfg_.salt * 0x9e3779b97f4a7c15ULL);
  contact_seed_ = splitmix64(base);
  if (!enabled_) return;

  // Per-node downtime intervals: sampled crash/reboot cycles plus scripted
  // outages, merged so overlaps collapse into one longer outage.
  using Interval = std::pair<double, double>;  // [down, up)
  std::vector<std::vector<Interval>> per_node(static_cast<std::size_t>(num_nodes));
  const double rate = cfg_.crash_rate_per_hour / 3600.0;
  if (rate > 0.0) {
    for (NodeId n = kCommandCenter + 1; n < num_nodes; ++n) {
      Rng rng(sub_seed(contact_seed_, 0xC4A54000ULL + static_cast<std::uint64_t>(n)));
      double t = rng.exponential(rate);
      while (t < horizon) {
        const double down_len =
            cfg_.mean_downtime_s > 0.0 ? rng.exponential(1.0 / cfg_.mean_downtime_s) : 0.0;
        const double up = t + down_len;
        if (down_len > 0.0)
          per_node[static_cast<std::size_t>(n)].push_back({t, std::min(up, horizon)});
        t = up + rng.exponential(rate);
      }
    }
  }
  for (const Downtime& d : cfg_.scripted_downtime) {
    if (d.start >= horizon) continue;
    per_node[static_cast<std::size_t>(d.node)].push_back({d.start, std::min(d.end, horizon)});
  }

  for (NodeId n = 0; n < num_nodes; ++n) {
    auto& iv = per_node[static_cast<std::size_t>(n)];
    if (iv.empty()) continue;
    std::sort(iv.begin(), iv.end());
    std::vector<Interval> merged;
    for (const Interval& i : iv) {
      if (!merged.empty() && i.first <= merged.back().second) {
        merged.back().second = std::max(merged.back().second, i.second);
      } else {
        merged.push_back(i);
      }
    }
    for (const Interval& i : merged) {
      transitions_.push_back({i.first, n, /*up=*/false, cfg_.crash_wipes_storage});
      // An outage running to the horizon never reboots inside the run.
      if (i.second < horizon) transitions_.push_back({i.second, n, /*up=*/true, false});
    }
  }
  std::sort(transitions_.begin(), transitions_.end(),
            [](const ChurnTransition& x, const ChurnTransition& y) {
              if (x.time != y.time) return x.time < y.time;
              if (x.node != y.node) return x.node < y.node;
              return x.up < y.up;  // a zero-length outage: down before up
            });
  PHOTODTN_AUDIT(audit());
}

ContactFault FaultInjector::contact_fault(std::size_t contact_index) const {
  ContactFault f;
  if (!enabled_) return f;
  // One private stream per contact: a pure function of (seed, index), so
  // faults are identical no matter how many contacts a run actually reaches.
  Rng rng(sub_seed(contact_seed_, 0xC047AC7ULL + contact_index));
  if (cfg_.bandwidth_jitter > 0.0)
    f.bandwidth_factor = rng.uniform(1.0 - cfg_.bandwidth_jitter, 1.0);
  if (cfg_.contact_interrupt_prob > 0.0 && rng.bernoulli(cfg_.contact_interrupt_prob)) {
    f.interrupted = true;
    f.keep_fraction =
        cfg_.interrupt_fraction_min == cfg_.interrupt_fraction_max
            ? cfg_.interrupt_fraction_min
            : rng.uniform(cfg_.interrupt_fraction_min, cfg_.interrupt_fraction_max);
  }
  if (cfg_.gossip_loss_prob > 0.0) {
    f.gossip_lost_ab = rng.bernoulli(cfg_.gossip_loss_prob);
    f.gossip_lost_ba = rng.bernoulli(cfg_.gossip_loss_prob);
  }
  return f;
}

void FaultInjector::audit() const {
  validate_config(cfg_, num_nodes_ == 0 ? std::numeric_limits<NodeId>::max() : num_nodes_);
  double prev = -1.0;
  std::vector<char> down(static_cast<std::size_t>(std::max<NodeId>(num_nodes_, 1)), 0);
  for (const ChurnTransition& tr : transitions_) {
    PHOTODTN_CHECK_MSG(std::isfinite(tr.time) && tr.time >= 0.0,
                       "churn transition time must be finite and >= 0");
    PHOTODTN_CHECK_MSG(tr.time >= prev, "churn transitions must be time-sorted");
    prev = tr.time;
    PHOTODTN_CHECK_MSG(tr.node > kCommandCenter && tr.node < num_nodes_,
                       "churn must hit a participant, never the command center");
    char& d = down[static_cast<std::size_t>(tr.node)];
    PHOTODTN_CHECK_MSG(d == (tr.up ? 1 : 0),
                       "per-node churn transitions must alternate down/up");
    d = tr.up ? 0 : 1;
    PHOTODTN_CHECK_MSG(tr.up || tr.wipe == cfg_.crash_wipes_storage,
                       "down transitions must carry the configured wipe policy");
  }
}

std::uint64_t contact_payload_budget(double bandwidth_bytes_per_s, double duration_s,
                                     double setup_s, double bandwidth_factor) {
  const double payload_time = duration_s - setup_s;
  // !(x > 0) also catches NaN from degenerate inputs: the budget is 0, not
  // whatever the double->uint64 conversion of garbage would produce.
  if (!(payload_time > 0.0)) return 0;
  const double cap = bandwidth_bytes_per_s * bandwidth_factor * payload_time;
  if (!(cap > 0.0)) return 0;
  // 2^64 as a double; conversions of values >= this (or infinity) are UB.
  if (cap >= 18446744073709551616.0) return ~0ULL;
  return static_cast<std::uint64_t>(cap);
}

}  // namespace photodtn
