// A DTN node: photo buffer plus the routing state every scheme may consult
// (PROPHET delivery predictabilities toward the command center and the
// online inter-contact rate estimate used by metadata validation).
// Scheme-specific state (metadata caches, spray counters) lives inside the
// scheme objects, keyed by NodeId, keeping this layer protocol-agnostic.
#pragma once

#include "dtn/photo_store.h"
#include "routing/prophet.h"
#include "routing/rate_estimator.h"

namespace photodtn {

class Node {
 public:
  Node(NodeId id, std::uint64_t storage_bytes, const ProphetConfig& prophet_cfg)
      : id_(id), store_(storage_bytes), prophet_(prophet_cfg, id) {}

  NodeId id() const noexcept { return id_; }
  bool is_command_center() const noexcept { return id_ == kCommandCenter; }

  PhotoStore& store() noexcept { return store_; }
  const PhotoStore& store() const noexcept { return store_; }

  ProphetTable& prophet() noexcept { return prophet_; }
  const ProphetTable& prophet() const noexcept { return prophet_; }

  RateEstimator& rates() noexcept { return rates_; }
  const RateEstimator& rates() const noexcept { return rates_; }

  /// Delivery probability p_i toward the command center (1 for the center).
  double delivery_prob(double now) {
    if (is_command_center()) return 1.0;
    prophet_.age(now);
    return prophet_.delivery_prob(kCommandCenter);
  }

 private:
  NodeId id_;
  PhotoStore store_;
  ProphetTable prophet_;
  RateEstimator rates_;
};

}  // namespace photodtn
