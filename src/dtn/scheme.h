// The strategy interface every photo-dissemination scheme implements.
// The simulator drives the trace and byte/storage accounting; schemes decide
// *which* photos move or get dropped at each opportunity.
#pragma once

#include <string>

#include "coverage/photo.h"
#include "persist/fwd.h"

namespace photodtn {

class SimContext;
class ContactSession;

class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  /// Called once before the event loop (after nodes are constructed).
  virtual void init(SimContext& /*ctx*/) {}

  /// A participant just took a photo. The photo is NOT stored automatically:
  /// the scheme decides whether to keep it and what to evict. Default
  /// implementations in subclasses typically store if space allows.
  virtual void on_photo_taken(SimContext& ctx, NodeId node, const PhotoMeta& photo) = 0;

  /// A contact opportunity. `session` enforces the byte budget and storage
  /// constraints; the scheme issues transfers/drops through it.
  virtual void on_contact(SimContext& ctx, ContactSession& session) = 0;

  /// Fault-layer churn (dtn/fault.h): `node` crashed and will miss every
  /// contact until on_node_up. `storage_wiped` reports whether its photo
  /// buffer and routing soft state were lost. Churn is observable out of
  /// band (a liveness beacon on the control channel), so schemes may react
  /// immediately — e.g. invalidating cached metadata — but must never move
  /// payload here. Default: ignore; every scheme must survive arbitrary
  /// churn without crashing or double-counting either way.
  virtual void on_node_down(SimContext& /*ctx*/, NodeId /*node*/,
                            bool /*storage_wiped*/) {}
  /// `node` rebooted and attends contacts again (empty-handed if wiped).
  virtual void on_node_up(SimContext& /*ctx*/, NodeId /*node*/) {}

  /// BestPossible sets these: the experiment runner lifts storage and
  /// bandwidth constraints for schemes that request it (Section V-B).
  virtual bool wants_unlimited_storage() const { return false; }
  virtual bool wants_unlimited_bandwidth() const { return false; }

  /// Checkpoint/restore hooks (src/persist/): a stateful scheme serializes
  /// its private mid-run state (caches, counters, engines) into the
  /// snapshot's scheme section and reloads it after init(). Containers must
  /// be written in a deterministic order (sorted by key); load may assume
  /// the section passed its CRC but must still validate semantic invariants
  /// (restore runs audits afterward). Stateless schemes keep the empty
  /// defaults and snapshot/restore cleanly with a zero-byte section.
  virtual void save_persist_state(persist::StateWriter& /*w*/) const {}
  virtual void load_persist_state(persist::StateReader& /*r*/, SimContext& /*ctx*/) {}
};

}  // namespace photodtn
