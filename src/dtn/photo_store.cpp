#include "dtn/photo_store.h"

#include <algorithm>

#include "util/check.h"

namespace photodtn {

const PhotoMeta* PhotoStore::find(PhotoId id) const {
  const auto it = photos_.find(id);
  return it == photos_.end() ? nullptr : &it->second;
}

bool PhotoStore::add(const PhotoMeta& photo) {
  if (contains(photo.id)) return false;
  if (!can_fit(photo.size_bytes)) return false;
  photos_.emplace(photo.id, photo);
  used_ += photo.size_bytes;
  PHOTODTN_AUDIT(audit());
  return true;
}

bool PhotoStore::remove(PhotoId id) {
  const auto it = photos_.find(id);
  if (it == photos_.end()) return false;
  PHOTODTN_CHECK(used_ >= it->second.size_bytes);
  used_ -= it->second.size_bytes;
  photos_.erase(it);
  PHOTODTN_AUDIT(audit());
  return true;
}

std::vector<PhotoMeta> PhotoStore::photos() const {
  std::vector<PhotoMeta> out;
  out.reserve(photos_.size());
  // photodtn-lint: allow(unordered-iter): extract-and-sort — id-sorted below
  for (const auto& [id, p] : photos_) out.push_back(p);
  // Canonical id order: callers must never observe hash order.
  std::sort(out.begin(), out.end(),
            [](const PhotoMeta& a, const PhotoMeta& b) { return a.id < b.id; });
  return out;
}

void PhotoStore::clear() {
  photos_.clear();
  used_ = 0;
  PHOTODTN_AUDIT(audit());
}

void PhotoStore::audit() const {
  std::uint64_t sum = 0;
  // photodtn-lint: allow(unordered-iter): per-entry checks + commutative u64 sum
  for (const auto& [id, photo] : photos_) {
    PHOTODTN_CHECK_MSG(id == photo.id, "PhotoStore entry keyed by a different photo id");
    sum += photo.size_bytes;
  }
  PHOTODTN_CHECK_MSG(sum == used_,
                     "PhotoStore byte accounting diverged from stored photo sizes");
  PHOTODTN_CHECK_MSG(capacity_ == kUnlimited || used_ <= capacity_,
                     "PhotoStore exceeds its byte capacity");
}

}  // namespace photodtn
