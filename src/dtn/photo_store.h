// A node's photo buffer with a byte-capacity budget (the storage constraint
// S_a of Section III-D). Stores full metadata; payload bytes are accounted,
// not materialized.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "coverage/photo.h"

namespace photodtn {

class PhotoStore {
 public:
  static constexpr std::uint64_t kUnlimited = ~0ULL;

  explicit PhotoStore(std::uint64_t capacity_bytes = kUnlimited)
      : capacity_(capacity_bytes) {}

  bool contains(PhotoId id) const { return photos_.count(id) != 0; }
  /// nullptr when absent; pointer invalidated by add/remove.
  const PhotoMeta* find(PhotoId id) const;

  bool can_fit(std::uint64_t bytes) const noexcept {
    return capacity_ == kUnlimited || used_ + bytes <= capacity_;
  }

  /// Adds a photo. Returns false (no side effects) if a duplicate or if it
  /// does not fit.
  bool add(const PhotoMeta& photo);

  /// Removes a photo; returns false if absent.
  bool remove(PhotoId id);

  std::uint64_t used_bytes() const noexcept { return used_; }
  std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  std::uint64_t free_bytes() const noexcept {
    return capacity_ == kUnlimited ? kUnlimited : capacity_ - used_;
  }
  std::size_t size() const noexcept { return photos_.size(); }
  bool empty() const noexcept { return photos_.empty(); }

  /// Snapshot of stored photos (unordered).
  std::vector<PhotoMeta> photos() const;

  /// Direct iteration without copying.
  const std::unordered_map<PhotoId, PhotoMeta>& map() const noexcept { return photos_; }

  void clear();

  /// Deep invariant check (audit builds / tests): the byte accounting in
  /// used_bytes() equals the sum of stored photo sizes, the map key of every
  /// photo matches its id, and a bounded store never exceeds its capacity.
  /// Throws std::logic_error on violation.
  void audit() const;

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::unordered_map<PhotoId, PhotoMeta> photos_;
};

}  // namespace photodtn
