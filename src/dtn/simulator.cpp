#include "dtn/simulator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace photodtn {

ContactSession::ContactSession(Simulator& sim, const Contact& contact,
                               std::uint64_t budget, bool unlimited)
    : sim_(sim), contact_(contact), budget_(budget), unlimited_(unlimited) {}

bool ContactSession::consume(std::uint64_t bytes) noexcept {
  if (unlimited_) return true;
  if (bytes > budget_) {
    budget_ = 0;
    return false;
  }
  budget_ -= bytes;
  return true;
}

bool ContactSession::transfer(PhotoId photo, NodeId from, NodeId to, bool keep_source) {
  PHOTODTN_CHECK_MSG((from == contact_.a && to == contact_.b) ||
                         (from == contact_.b && to == contact_.a),
                     "transfer endpoints must match the contact");
  Node& src = sim_.node(from);
  Node& dst = sim_.node(to);
  const PhotoMeta* meta = src.store().find(photo);
  if (meta == nullptr) {
    ++sim_.counters_.failed_transfers;
    return false;
  }
  if (dst.store().contains(photo)) {
    ++sim_.counters_.failed_transfers;
    return false;
  }
  const std::uint64_t bytes = meta->size_bytes;
  if (!can_transfer(bytes) || !dst.store().can_fit(bytes)) {
    ++sim_.counters_.failed_transfers;
    return false;
  }
  const PhotoMeta copy = *meta;  // copy before any mutation invalidates `meta`
  const bool added = dst.store().add(copy);
  PHOTODTN_CHECK(added);
  if (!unlimited_) budget_ -= bytes;
  ++sim_.counters_.transfers;
  sim_.counters_.bytes_transferred += bytes;
  sim_.emit(SimEvent::Type::kTransfer, from, to, photo);
  if (!keep_source) src.store().remove(photo);
  if (to == kCommandCenter) sim_.register_delivery(from, copy);
  return true;
}

Simulator::Simulator(const CoverageModel& model, const ContactTrace& trace,
                     std::vector<PhotoEvent> photo_events, SimConfig config)
    : model_(&model),
      trace_(&trace),
      photo_events_(std::move(photo_events)),
      config_(config),
      rng_(config.seed),
      cc_coverage_(model) {
  std::sort(photo_events_.begin(), photo_events_.end(),
            [](const PhotoEvent& x, const PhotoEvent& y) { return x.time < y.time; });
  const std::uint64_t storage =
      config_.unlimited_storage ? PhotoStore::kUnlimited : config_.node_storage_bytes;
  nodes_.reserve(static_cast<std::size_t>(trace.num_nodes()));
  for (NodeId i = 0; i < trace.num_nodes(); ++i) {
    nodes_.emplace_back(i, i == kCommandCenter ? PhotoStore::kUnlimited : storage,
                        config_.prophet);
  }
}

Node& Simulator::node(NodeId id) {
  PHOTODTN_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                     "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

bool Simulator::store_photo(NodeId id, const PhotoMeta& photo) {
  return node(id).store().add(photo);
}

bool Simulator::drop_photo(NodeId id, PhotoId photo) {
  if (id == kCommandCenter) return false;  // the center never drops (§III-C)
  const bool removed = node(id).store().remove(photo);
  if (removed) {
    ++counters_.drops;
    emit(SimEvent::Type::kDrop, id, -1, photo);
  }
  return removed;
}

void Simulator::register_delivery(NodeId from, const PhotoMeta& photo) {
  ++delivered_;
  delivered_ids_.push_back(photo.id);
  cc_coverage_.add(model_->footprint_cached(photo));
  emit(SimEvent::Type::kDelivery, from, kCommandCenter, photo.id);
}

void Simulator::take_sample() {
  SimSample s;
  s.time = now_;
  s.point_coverage = cc_coverage_.normalized_point();
  s.aspect_coverage = cc_coverage_.normalized_aspect();
  s.full_view_coverage = cc_coverage_.full_view_fraction();
  s.delivered_photos = delivered_;
  s.bytes_transferred = counters_.bytes_transferred;
  samples_.push_back(s);
}

SimResult Simulator::run(Scheme& scheme) {
  PHOTODTN_CHECK_MSG(!ran_, "Simulator::run is single-shot; construct a new instance");
  ran_ = true;

  scheme.init(*this);

  const auto& contacts = trace_->contacts();
  std::size_t ci = 0;  // next contact
  std::size_t pi = 0;  // next photo event
  double next_sample = 0.0;

  auto next_event_time = [&]() {
    double t = trace_->horizon();
    if (ci < contacts.size()) t = std::min(t, contacts[ci].start);
    if (pi < photo_events_.size()) t = std::min(t, photo_events_[pi].time);
    return t;
  };

  while (ci < contacts.size() || pi < photo_events_.size()) {
    const double t = next_event_time();
    while (next_sample <= t) {
      now_ = next_sample;
      take_sample();
      next_sample += config_.sample_interval_s;
    }
    now_ = t;
    // Photo events strictly before concurrent contacts: a photo taken at the
    // instant of a contact is available to that contact.
    if (pi < photo_events_.size() && photo_events_[pi].time <= t &&
        (ci >= contacts.size() || photo_events_[pi].time <= contacts[ci].start)) {
      const PhotoEvent& ev = photo_events_[pi++];
      PHOTODTN_CHECK_MSG(ev.node > kCommandCenter && ev.node < num_nodes(),
                         "photo taken by unknown node");
      ++counters_.photos_taken;
      emit(SimEvent::Type::kPhotoTaken, ev.node, -1, ev.photo.id);
      scheme.on_photo_taken(*this, ev.node, ev.photo);
      continue;
    }
    const Contact& c = contacts[ci++];
    ++counters_.contacts;
    emit(SimEvent::Type::kContact, c.a, c.b, 0);
    Node& na = node(c.a);
    Node& nb = node(c.b);
    na.rates().record_contact(c.b, c.start);
    nb.rates().record_contact(c.a, c.start);
    ProphetTable::encounter(na.prophet(), nb.prophet(), c.start);

    const bool unlimited = config_.unlimited_bandwidth;
    const double payload_time = std::max(0.0, c.duration - config_.contact_setup_s);
    const double cap = config_.bandwidth_bytes_per_s * payload_time;
    const auto budget =
        unlimited ? ~0ULL : static_cast<std::uint64_t>(std::max(0.0, cap));
    ContactSession session(*this, c, budget, unlimited);
    scheme.on_contact(*this, session);
  }

  // Trailing samples up to and including the horizon.
  while (next_sample <= trace_->horizon() + 1e-9) {
    now_ = next_sample;
    take_sample();
    next_sample += config_.sample_interval_s;
  }

  SimResult result;
  result.samples = std::move(samples_);
  result.final_coverage = cc_coverage_.total();
  result.final_point_norm = cc_coverage_.normalized_point();
  result.final_aspect_norm = cc_coverage_.normalized_aspect();
  result.delivered_photos = delivered_;
  result.delivered_ids = std::move(delivered_ids_);
  result.counters = counters_;
  return result;
}

}  // namespace photodtn
