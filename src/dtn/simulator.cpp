#include "dtn/simulator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace photodtn {

ContactSession::ContactSession(Simulator& sim, const Contact& contact,
                               std::uint64_t budget, bool unlimited,
                               std::uint64_t cut_after_bytes, bool gossip_lost_ab,
                               bool gossip_lost_ba)
    : sim_(sim),
      contact_(contact),
      budget_(budget),
      unlimited_(unlimited),
      cut_after_(cut_after_bytes),
      gossip_lost_ab_(gossip_lost_ab),
      gossip_lost_ba_(gossip_lost_ba) {}

std::uint64_t ContactSession::wire_carry(std::uint64_t bytes, PhotoId photo) {
  PHOTODTN_DCHECK_MSG(!severed_, "a severed session carries no traffic");
  const std::uint64_t remaining = cut_after_ - spent_;  // cut_after_ >= spent_
  if (bytes <= remaining) {
    spent_ += bytes;
    return bytes;
  }
  // The link dies mid-operation: `remaining` wire bytes were transmitted
  // and are gone, but the operation never completes.
  spent_ = cut_after_;
  severed_ = true;
  sim_.bump(sim_.ids_.interrupted_contacts);
  sim_.bump(sim_.ids_.partial_bytes, remaining);
  sim_.emit(SimEvent::Type::kContactInterrupted, contact_.a, contact_.b, photo);
  PHOTODTN_OBS_TRACE(&sim_.obs_,
                     instant("linkcut", "fault", sim_.now_, contact_.a,
                             {{"peer", static_cast<double>(contact_.b)},
                              {"photo", static_cast<double>(photo)}}));
  return remaining;
}

bool ContactSession::consume(std::uint64_t bytes) {
  if (severed_) return false;
  // The budget bounds what the wire can still carry; the cut may bound it
  // tighter. Charge only bytes that physically left an antenna.
  const std::uint64_t sendable = unlimited_ ? bytes : std::min(bytes, budget_);
  const std::uint64_t carried = wire_carry(sendable, 0);
  if (!unlimited_) budget_ -= carried;
  if (severed_) return false;
  if (sendable < bytes) {  // budget ran dry mid-exchange
    budget_ = 0;
    return false;
  }
  return true;
}

bool ContactSession::transfer(PhotoId photo, NodeId from, NodeId to, bool keep_source) {
  PHOTODTN_CHECK_MSG((from == contact_.a && to == contact_.b) ||
                         (from == contact_.b && to == contact_.a),
                     "transfer endpoints must match the contact");
  Node& src = sim_.node(from);
  Node& dst = sim_.node(to);
  const PhotoMeta* meta = src.store().find(photo);
  if (meta == nullptr) {
    sim_.bump(sim_.ids_.failed_transfers);
    return false;
  }
  if (dst.store().contains(photo)) {
    sim_.bump(sim_.ids_.failed_transfers);
    return false;
  }
  const std::uint64_t bytes = meta->size_bytes;
  if (!can_transfer(bytes) || !dst.store().can_fit(bytes)) {
    sim_.bump(sim_.ids_.failed_transfers);
    return false;
  }
  const std::uint64_t carried = wire_carry(bytes, photo);
  if (!unlimited_) budget_ -= carried;
  if (carried < bytes) {
    // Interrupted mid-flight: the wire bytes are spent, the photo never
    // materializes at the receiver, and the source keeps its copy (a
    // half-received file is discarded, a half-sent one is still whole).
    sim_.bump(sim_.ids_.interrupted_transfers);
    sim_.bump(sim_.ids_.failed_transfers);
    return false;
  }
  const PhotoMeta copy = *meta;  // copy before any mutation invalidates `meta`
  const bool added = dst.store().add(copy);
  PHOTODTN_CHECK(added);
  sim_.bump(sim_.ids_.transfers);
  sim_.bump(sim_.ids_.bytes_transferred, bytes);
  sim_.emit(SimEvent::Type::kTransfer, from, to, photo);
  PHOTODTN_OBS_TRACE(&sim_.obs_,
                     instant("transfer", "photo", sim_.now_, from,
                             {{"photo", static_cast<double>(photo)},
                              {"to", static_cast<double>(to)},
                              {"bytes", static_cast<double>(bytes)}}));
  if (!keep_source) src.store().remove(photo);
  if (to == kCommandCenter) sim_.register_delivery(from, copy);
  return true;
}

Simulator::Simulator(const CoverageModel& model, const ContactTrace& trace,
                     std::vector<PhotoEvent> photo_events, SimConfig config)
    : model_(&model),
      trace_(&trace),
      photo_events_(std::move(photo_events)),
      config_(config),
      rng_(config.seed),
      faults_(config.faults, trace.num_nodes(), trace.horizon(), config.seed),
      down_(static_cast<std::size_t>(trace.num_nodes()), 0),
      cc_coverage_(model),
      obs_(config_.obs.merged_with_env()) {
  // The sim's own counters live on the registry unconditionally: golden
  // outputs read them through SimCounters, and an indexed add costs what
  // the old struct increment did.
  obs::MetricsRegistry& reg = obs_.registry();
  ids_.contacts = reg.counter("sim.contacts");
  ids_.photos_taken = reg.counter("sim.photos_taken");
  ids_.transfers = reg.counter("sim.transfers");
  ids_.bytes_transferred = reg.counter("sim.bytes_transferred");
  ids_.failed_transfers = reg.counter("sim.failed_transfers");
  ids_.drops = reg.counter("sim.drops");
  ids_.delivered = reg.counter("sim.delivered");
  ids_.interrupted_contacts = reg.counter("sim.interrupted_contacts");
  ids_.interrupted_transfers = reg.counter("sim.interrupted_transfers");
  ids_.partial_bytes = reg.counter("sim.partial_bytes");
  ids_.missed_contacts = reg.counter("sim.missed_contacts");
  ids_.node_crashes = reg.counter("sim.node_crashes");
  ids_.photos_lost_to_crash = reg.counter("sim.photos_lost_to_crash");
  ids_.photos_missed_down = reg.counter("sim.photos_missed_down");
  ids_.gossip_losses = reg.counter("sim.gossip_losses");
  if (obs_.metrics_on()) {
    h_contact_bytes_ = reg.histogram(
        "sim.contact_bytes", obs::MetricsRegistry::exp_bounds(1024, 4.0, 12));
  }
  std::sort(photo_events_.begin(), photo_events_.end(),
            [](const PhotoEvent& x, const PhotoEvent& y) { return x.time < y.time; });
  const std::uint64_t storage =
      config_.unlimited_storage ? PhotoStore::kUnlimited : config_.node_storage_bytes;
  nodes_.reserve(static_cast<std::size_t>(trace.num_nodes()));
  for (NodeId i = 0; i < trace.num_nodes(); ++i) {
    nodes_.emplace_back(i, i == kCommandCenter ? PhotoStore::kUnlimited : storage,
                        config_.prophet);
  }
}

Node& Simulator::node(NodeId id) {
  PHOTODTN_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                     "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

bool Simulator::is_down(NodeId id) const {
  PHOTODTN_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < down_.size(),
                     "node id out of range");
  return down_[static_cast<std::size_t>(id)] != 0;
}

bool Simulator::store_photo(NodeId id, const PhotoMeta& photo) {
  return node(id).store().add(photo);
}

bool Simulator::drop_photo(NodeId id, PhotoId photo) {
  if (id == kCommandCenter) return false;  // the center never drops (§III-C)
  const bool removed = node(id).store().remove(photo);
  if (removed) {
    bump(ids_.drops);
    emit(SimEvent::Type::kDrop, id, -1, photo);
    PHOTODTN_OBS_TRACE(&obs_, instant("drop", "photo", now_, id,
                                      {{"photo", static_cast<double>(photo)}}));
  }
  return removed;
}

void Simulator::register_delivery(NodeId from, const PhotoMeta& photo) {
  ++delivered_;
  bump(ids_.delivered);
  delivered_ids_.push_back(photo.id);
  cc_coverage_.add(model_->footprint_cached(photo));
  emit(SimEvent::Type::kDelivery, from, kCommandCenter, photo.id);
  PHOTODTN_OBS_TRACE(&obs_,
                     instant("delivery", "delivery", now_, kCommandCenter,
                             {{"photo", static_cast<double>(photo.id)},
                              {"from", static_cast<double>(from)}}));
}

void Simulator::apply_churn(const ChurnTransition& tr, Scheme& scheme) {
  char& d = down_[static_cast<std::size_t>(tr.node)];
  if (!tr.up) {
    PHOTODTN_DCHECK_MSG(d == 0, "down transition for an already-down node");
    d = 1;
    bump(ids_.node_crashes);
    PHOTODTN_OBS_TRACE(&obs_, instant("crash", "fault", now_, tr.node,
                                      {{"wipe", tr.wipe ? 1.0 : 0.0}}));
    Node& n = node(tr.node);
    if (tr.wipe) {
      bump(ids_.photos_lost_to_crash, n.store().size());
      n.store().clear();
      // Routing soft state dies with the flash: the reboot re-learns rates
      // and predictabilities from scratch (peers keep their view of us —
      // only real absence ages it, which is exactly the §III-B regime the
      // metadata-validity rule hedges against).
      n.prophet() = ProphetTable(config_.prophet, tr.node);
      n.rates() = RateEstimator(now_);
    }
    emit(SimEvent::Type::kNodeDown, tr.node, -1, 0);
    scheme.on_node_down(*this, tr.node, tr.wipe);
  } else {
    PHOTODTN_DCHECK_MSG(d == 1, "up transition for a node that is not down");
    d = 0;
    PHOTODTN_OBS_TRACE(&obs_, instant("reboot", "fault", now_, tr.node));
    emit(SimEvent::Type::kNodeUp, tr.node, -1, 0);
    scheme.on_node_up(*this, tr.node);
  }
}

void Simulator::take_sample() {
  SimSample s;
  s.time = now_;
  s.point_coverage = cc_coverage_.normalized_point();
  s.aspect_coverage = cc_coverage_.normalized_aspect();
  s.full_view_coverage = cc_coverage_.full_view_fraction();
  s.delivered_photos = delivered_;
  s.bytes_transferred = obs_.registry().value(ids_.bytes_transferred);
  samples_.push_back(s);
  // Counter tracks for the trace timeline (Chrome renders them as area
  // charts above the event lanes).
  PHOTODTN_OBS_TRACE(&obs_, counter("delivered_photos", now_,
                                    static_cast<double>(s.delivered_photos)));
  PHOTODTN_OBS_TRACE(&obs_, counter("bytes_transferred", now_,
                                    static_cast<double>(s.bytes_transferred)));
  PHOTODTN_OBS_TRACE(&obs_, counter("point_coverage", now_, s.point_coverage));
  PHOTODTN_OBS_TRACE(&obs_, counter("aspect_coverage", now_, s.aspect_coverage));
}

SimResult Simulator::run(Scheme& scheme) {
  PHOTODTN_CHECK_MSG(!ran_, "Simulator::run is single-shot; construct a new instance");
  ran_ = true;

  // A restored simulator already had scheme.init() run by persist::restore
  // (the scheme's loaded state would be clobbered by a second init).
  if (!restored_) scheme.init(*this);

  const auto& contacts = trace_->contacts();
  const auto& churn = faults_.transitions();

  auto next_event_time = [&]() {
    double t = trace_->horizon();
    if (ci_ < contacts.size()) t = std::min(t, contacts[ci_].start);
    if (pi_ < photo_events_.size()) t = std::min(t, photo_events_[pi_].time);
    if (fi_ < churn.size()) t = std::min(t, churn[fi_].time);
    return t;
  };

  while (ci_ < contacts.size() || pi_ < photo_events_.size() || fi_ < churn.size()) {
    // Iteration top = the checkpoint surface: every cursor names the *next*
    // event, so a snapshot here plus a resume replays the remaining trace
    // exactly. event_index_ counts completed iterations; the first firing
    // after a restore re-checkpoints the restored position (harmless — the
    // bytes are identical).
    if (checkpoint_hook_) checkpoint_hook_(event_index_);
    ++event_index_;
    const double t = next_event_time();
    while (next_sample_ <= t) {
      now_ = next_sample_;
      take_sample();
      next_sample_ += config_.sample_interval_s;
    }
    now_ = t;
    // Churn strictly before concurrent photos and contacts: a node down at
    // instant t misses the contact at t; one rebooting at t attends it.
    if (fi_ < churn.size() && churn[fi_].time <= t) {
      apply_churn(churn[fi_++], scheme);
      continue;
    }
    // Photo events strictly before concurrent contacts: a photo taken at the
    // instant of a contact is available to that contact.
    if (pi_ < photo_events_.size() && photo_events_[pi_].time <= t &&
        (ci_ >= contacts.size() || photo_events_[pi_].time <= contacts[ci_].start)) {
      const PhotoEvent& ev = photo_events_[pi_++];
      PHOTODTN_CHECK_MSG(ev.node > kCommandCenter && ev.node < num_nodes(),
                         "photo taken by unknown node");
      if (down_[static_cast<std::size_t>(ev.node)]) {
        bump(ids_.photos_missed_down);  // a crashed device takes no photos
        continue;
      }
      bump(ids_.photos_taken);
      emit(SimEvent::Type::kPhotoTaken, ev.node, -1, ev.photo.id);
      PHOTODTN_OBS_TRACE(&obs_,
                         instant("capture", "photo", now_, ev.node,
                                 {{"photo", static_cast<double>(ev.photo.id)}}));
      scheme.on_photo_taken(*this, ev.node, ev.photo);
      continue;
    }
    const std::size_t contact_index = ci_;
    const Contact& c = contacts[ci_++];
    if (down_[static_cast<std::size_t>(c.a)] || down_[static_cast<std::size_t>(c.b)]) {
      // Real absence: no rate/PROPHET update, no metadata, no payload — the
      // surviving peer does not even know the opportunity existed.
      bump(ids_.missed_contacts);
      continue;
    }
    bump(ids_.contacts);
    emit(SimEvent::Type::kContact, c.a, c.b, 0);
    Node& na = node(c.a);
    Node& nb = node(c.b);
    na.rates().record_contact(c.b, c.start);
    nb.rates().record_contact(c.a, c.start);
    ProphetTable::encounter(na.prophet(), nb.prophet(), c.start);

    const bool unlimited = config_.unlimited_bandwidth;
    // Faults are keyed by trace position, not processing order, so one
    // contact's plan never shifts because an earlier one was missed.
    const ContactFault cf =
        faults_.enabled() ? faults_.contact_fault(contact_index) : ContactFault{};
    const std::uint64_t budget =
        unlimited ? ~0ULL
                  : contact_payload_budget(config_.bandwidth_bytes_per_s, c.duration,
                                           config_.contact_setup_s, cf.bandwidth_factor);
    std::uint64_t cut = ContactSession::kNoCut;
    if (cf.interrupted) {
      // The cut is a fraction of the link's *physical* capacity (nominal
      // bandwidth x jittered rate x airtime) — an unlimited-budget oracle
      // still suffers it; radios fail regardless of accounting policy.
      const std::uint64_t capacity =
          contact_payload_budget(config_.bandwidth_bytes_per_s, c.duration,
                                 config_.contact_setup_s, cf.bandwidth_factor);
      const double scaled = cf.keep_fraction * static_cast<double>(capacity);
      cut = scaled >= static_cast<double>(capacity)
                ? capacity
                : static_cast<std::uint64_t>(scaled);
    }
    bump(ids_.gossip_losses, static_cast<std::uint64_t>(cf.gossip_lost_ab) +
                                 (cf.gossip_lost_ba ? 1u : 0u));
    ContactSession session(*this, c, budget, unlimited, cut, cf.gossip_lost_ab,
                           cf.gossip_lost_ba);
    scheme.on_contact(*this, session);
    if (obs_.metrics_on()) {
      obs_.registry().record(h_contact_bytes_, session.bytes_used());
    }
    PHOTODTN_OBS_TRACE(
        &obs_, complete("contact", "contact", c.start, c.duration, c.a,
                        {{"peer", static_cast<double>(c.b)},
                         {"bytes", static_cast<double>(session.bytes_used())},
                         {"budget", session.unlimited()
                                        ? -1.0
                                        : static_cast<double>(budget)}}));
  }

  // Trailing samples up to and including the horizon.
  while (next_sample_ <= trace_->horizon() + 1e-9) {
    now_ = next_sample_;
    take_sample();
    next_sample_ += config_.sample_interval_s;
  }

  SimResult result;
  result.samples = std::move(samples_);
  result.final_coverage = cc_coverage_.total();
  result.final_point_norm = cc_coverage_.normalized_point();
  result.final_aspect_norm = cc_coverage_.normalized_aspect();
  result.delivered_photos = delivered_;
  result.delivered_ids = std::move(delivered_ids_);
  result.counters = read_counters();
  PHOTODTN_AUDIT(obs_.audit());
  if (obs_.metrics_on()) result.obs.metrics = obs_.registry().snapshot();
  if (obs_.trace_on()) result.obs.trace_events = obs_.trace().merged();
  return result;
}

SimCounters Simulator::read_counters() const {
  const obs::MetricsRegistry& reg = obs_.registry();
  SimCounters c;
  c.contacts = reg.value(ids_.contacts);
  c.photos_taken = reg.value(ids_.photos_taken);
  c.transfers = reg.value(ids_.transfers);
  c.bytes_transferred = reg.value(ids_.bytes_transferred);
  c.failed_transfers = reg.value(ids_.failed_transfers);
  c.drops = reg.value(ids_.drops);
  c.interrupted_contacts = reg.value(ids_.interrupted_contacts);
  c.interrupted_transfers = reg.value(ids_.interrupted_transfers);
  c.partial_bytes = reg.value(ids_.partial_bytes);
  c.missed_contacts = reg.value(ids_.missed_contacts);
  c.node_crashes = reg.value(ids_.node_crashes);
  c.photos_lost_to_crash = reg.value(ids_.photos_lost_to_crash);
  c.photos_missed_down = reg.value(ids_.photos_missed_down);
  c.gossip_losses = reg.value(ids_.gossip_losses);
  return c;
}

}  // namespace photodtn
