#include "dtn/simulator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace photodtn {

ContactSession::ContactSession(Simulator& sim, const Contact& contact,
                               std::uint64_t budget, bool unlimited,
                               std::uint64_t cut_after_bytes, bool gossip_lost_ab,
                               bool gossip_lost_ba)
    : sim_(sim),
      contact_(contact),
      budget_(budget),
      unlimited_(unlimited),
      cut_after_(cut_after_bytes),
      gossip_lost_ab_(gossip_lost_ab),
      gossip_lost_ba_(gossip_lost_ba) {}

std::uint64_t ContactSession::wire_carry(std::uint64_t bytes, PhotoId photo) {
  PHOTODTN_DCHECK_MSG(!severed_, "a severed session carries no traffic");
  const std::uint64_t remaining = cut_after_ - spent_;  // cut_after_ >= spent_
  if (bytes <= remaining) {
    spent_ += bytes;
    return bytes;
  }
  // The link dies mid-operation: `remaining` wire bytes were transmitted
  // and are gone, but the operation never completes.
  spent_ = cut_after_;
  severed_ = true;
  ++sim_.counters_.interrupted_contacts;
  sim_.counters_.partial_bytes += remaining;
  sim_.emit(SimEvent::Type::kContactInterrupted, contact_.a, contact_.b, photo);
  return remaining;
}

bool ContactSession::consume(std::uint64_t bytes) {
  if (severed_) return false;
  // The budget bounds what the wire can still carry; the cut may bound it
  // tighter. Charge only bytes that physically left an antenna.
  const std::uint64_t sendable = unlimited_ ? bytes : std::min(bytes, budget_);
  const std::uint64_t carried = wire_carry(sendable, 0);
  if (!unlimited_) budget_ -= carried;
  if (severed_) return false;
  if (sendable < bytes) {  // budget ran dry mid-exchange
    budget_ = 0;
    return false;
  }
  return true;
}

bool ContactSession::transfer(PhotoId photo, NodeId from, NodeId to, bool keep_source) {
  PHOTODTN_CHECK_MSG((from == contact_.a && to == contact_.b) ||
                         (from == contact_.b && to == contact_.a),
                     "transfer endpoints must match the contact");
  Node& src = sim_.node(from);
  Node& dst = sim_.node(to);
  const PhotoMeta* meta = src.store().find(photo);
  if (meta == nullptr) {
    ++sim_.counters_.failed_transfers;
    return false;
  }
  if (dst.store().contains(photo)) {
    ++sim_.counters_.failed_transfers;
    return false;
  }
  const std::uint64_t bytes = meta->size_bytes;
  if (!can_transfer(bytes) || !dst.store().can_fit(bytes)) {
    ++sim_.counters_.failed_transfers;
    return false;
  }
  const std::uint64_t carried = wire_carry(bytes, photo);
  if (!unlimited_) budget_ -= carried;
  if (carried < bytes) {
    // Interrupted mid-flight: the wire bytes are spent, the photo never
    // materializes at the receiver, and the source keeps its copy (a
    // half-received file is discarded, a half-sent one is still whole).
    ++sim_.counters_.interrupted_transfers;
    ++sim_.counters_.failed_transfers;
    return false;
  }
  const PhotoMeta copy = *meta;  // copy before any mutation invalidates `meta`
  const bool added = dst.store().add(copy);
  PHOTODTN_CHECK(added);
  ++sim_.counters_.transfers;
  sim_.counters_.bytes_transferred += bytes;
  sim_.emit(SimEvent::Type::kTransfer, from, to, photo);
  if (!keep_source) src.store().remove(photo);
  if (to == kCommandCenter) sim_.register_delivery(from, copy);
  return true;
}

Simulator::Simulator(const CoverageModel& model, const ContactTrace& trace,
                     std::vector<PhotoEvent> photo_events, SimConfig config)
    : model_(&model),
      trace_(&trace),
      photo_events_(std::move(photo_events)),
      config_(config),
      rng_(config.seed),
      faults_(config.faults, trace.num_nodes(), trace.horizon(), config.seed),
      down_(static_cast<std::size_t>(trace.num_nodes()), 0),
      cc_coverage_(model) {
  std::sort(photo_events_.begin(), photo_events_.end(),
            [](const PhotoEvent& x, const PhotoEvent& y) { return x.time < y.time; });
  const std::uint64_t storage =
      config_.unlimited_storage ? PhotoStore::kUnlimited : config_.node_storage_bytes;
  nodes_.reserve(static_cast<std::size_t>(trace.num_nodes()));
  for (NodeId i = 0; i < trace.num_nodes(); ++i) {
    nodes_.emplace_back(i, i == kCommandCenter ? PhotoStore::kUnlimited : storage,
                        config_.prophet);
  }
}

Node& Simulator::node(NodeId id) {
  PHOTODTN_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                     "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

bool Simulator::is_down(NodeId id) const {
  PHOTODTN_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < down_.size(),
                     "node id out of range");
  return down_[static_cast<std::size_t>(id)] != 0;
}

bool Simulator::store_photo(NodeId id, const PhotoMeta& photo) {
  return node(id).store().add(photo);
}

bool Simulator::drop_photo(NodeId id, PhotoId photo) {
  if (id == kCommandCenter) return false;  // the center never drops (§III-C)
  const bool removed = node(id).store().remove(photo);
  if (removed) {
    ++counters_.drops;
    emit(SimEvent::Type::kDrop, id, -1, photo);
  }
  return removed;
}

void Simulator::register_delivery(NodeId from, const PhotoMeta& photo) {
  ++delivered_;
  delivered_ids_.push_back(photo.id);
  cc_coverage_.add(model_->footprint_cached(photo));
  emit(SimEvent::Type::kDelivery, from, kCommandCenter, photo.id);
}

void Simulator::apply_churn(const ChurnTransition& tr, Scheme& scheme) {
  char& d = down_[static_cast<std::size_t>(tr.node)];
  if (!tr.up) {
    PHOTODTN_DCHECK_MSG(d == 0, "down transition for an already-down node");
    d = 1;
    ++counters_.node_crashes;
    Node& n = node(tr.node);
    if (tr.wipe) {
      counters_.photos_lost_to_crash += n.store().size();
      n.store().clear();
      // Routing soft state dies with the flash: the reboot re-learns rates
      // and predictabilities from scratch (peers keep their view of us —
      // only real absence ages it, which is exactly the §III-B regime the
      // metadata-validity rule hedges against).
      n.prophet() = ProphetTable(config_.prophet, tr.node);
      n.rates() = RateEstimator(now_);
    }
    emit(SimEvent::Type::kNodeDown, tr.node, -1, 0);
    scheme.on_node_down(*this, tr.node, tr.wipe);
  } else {
    PHOTODTN_DCHECK_MSG(d == 1, "up transition for a node that is not down");
    d = 0;
    emit(SimEvent::Type::kNodeUp, tr.node, -1, 0);
    scheme.on_node_up(*this, tr.node);
  }
}

void Simulator::take_sample() {
  SimSample s;
  s.time = now_;
  s.point_coverage = cc_coverage_.normalized_point();
  s.aspect_coverage = cc_coverage_.normalized_aspect();
  s.full_view_coverage = cc_coverage_.full_view_fraction();
  s.delivered_photos = delivered_;
  s.bytes_transferred = counters_.bytes_transferred;
  samples_.push_back(s);
}

SimResult Simulator::run(Scheme& scheme) {
  PHOTODTN_CHECK_MSG(!ran_, "Simulator::run is single-shot; construct a new instance");
  ran_ = true;

  scheme.init(*this);

  const auto& contacts = trace_->contacts();
  const auto& churn = faults_.transitions();
  std::size_t ci = 0;  // next contact
  std::size_t pi = 0;  // next photo event
  std::size_t fi = 0;  // next churn transition
  double next_sample = 0.0;

  auto next_event_time = [&]() {
    double t = trace_->horizon();
    if (ci < contacts.size()) t = std::min(t, contacts[ci].start);
    if (pi < photo_events_.size()) t = std::min(t, photo_events_[pi].time);
    if (fi < churn.size()) t = std::min(t, churn[fi].time);
    return t;
  };

  while (ci < contacts.size() || pi < photo_events_.size() || fi < churn.size()) {
    const double t = next_event_time();
    while (next_sample <= t) {
      now_ = next_sample;
      take_sample();
      next_sample += config_.sample_interval_s;
    }
    now_ = t;
    // Churn strictly before concurrent photos and contacts: a node down at
    // instant t misses the contact at t; one rebooting at t attends it.
    if (fi < churn.size() && churn[fi].time <= t) {
      apply_churn(churn[fi++], scheme);
      continue;
    }
    // Photo events strictly before concurrent contacts: a photo taken at the
    // instant of a contact is available to that contact.
    if (pi < photo_events_.size() && photo_events_[pi].time <= t &&
        (ci >= contacts.size() || photo_events_[pi].time <= contacts[ci].start)) {
      const PhotoEvent& ev = photo_events_[pi++];
      PHOTODTN_CHECK_MSG(ev.node > kCommandCenter && ev.node < num_nodes(),
                         "photo taken by unknown node");
      if (down_[static_cast<std::size_t>(ev.node)]) {
        ++counters_.photos_missed_down;  // a crashed device takes no photos
        continue;
      }
      ++counters_.photos_taken;
      emit(SimEvent::Type::kPhotoTaken, ev.node, -1, ev.photo.id);
      scheme.on_photo_taken(*this, ev.node, ev.photo);
      continue;
    }
    const std::size_t contact_index = ci;
    const Contact& c = contacts[ci++];
    if (down_[static_cast<std::size_t>(c.a)] || down_[static_cast<std::size_t>(c.b)]) {
      // Real absence: no rate/PROPHET update, no metadata, no payload — the
      // surviving peer does not even know the opportunity existed.
      ++counters_.missed_contacts;
      continue;
    }
    ++counters_.contacts;
    emit(SimEvent::Type::kContact, c.a, c.b, 0);
    Node& na = node(c.a);
    Node& nb = node(c.b);
    na.rates().record_contact(c.b, c.start);
    nb.rates().record_contact(c.a, c.start);
    ProphetTable::encounter(na.prophet(), nb.prophet(), c.start);

    const bool unlimited = config_.unlimited_bandwidth;
    // Faults are keyed by trace position, not processing order, so one
    // contact's plan never shifts because an earlier one was missed.
    const ContactFault cf =
        faults_.enabled() ? faults_.contact_fault(contact_index) : ContactFault{};
    const std::uint64_t budget =
        unlimited ? ~0ULL
                  : contact_payload_budget(config_.bandwidth_bytes_per_s, c.duration,
                                           config_.contact_setup_s, cf.bandwidth_factor);
    std::uint64_t cut = ContactSession::kNoCut;
    if (cf.interrupted) {
      // The cut is a fraction of the link's *physical* capacity (nominal
      // bandwidth x jittered rate x airtime) — an unlimited-budget oracle
      // still suffers it; radios fail regardless of accounting policy.
      const std::uint64_t capacity =
          contact_payload_budget(config_.bandwidth_bytes_per_s, c.duration,
                                 config_.contact_setup_s, cf.bandwidth_factor);
      const double scaled = cf.keep_fraction * static_cast<double>(capacity);
      cut = scaled >= static_cast<double>(capacity)
                ? capacity
                : static_cast<std::uint64_t>(scaled);
    }
    counters_.gossip_losses +=
        static_cast<std::uint64_t>(cf.gossip_lost_ab) + (cf.gossip_lost_ba ? 1u : 0u);
    ContactSession session(*this, c, budget, unlimited, cut, cf.gossip_lost_ab,
                           cf.gossip_lost_ba);
    scheme.on_contact(*this, session);
  }

  // Trailing samples up to and including the horizon.
  while (next_sample <= trace_->horizon() + 1e-9) {
    now_ = next_sample;
    take_sample();
    next_sample += config_.sample_interval_s;
  }

  SimResult result;
  result.samples = std::move(samples_);
  result.final_coverage = cc_coverage_.total();
  result.final_point_norm = cc_coverage_.normalized_point();
  result.final_aspect_norm = cc_coverage_.normalized_aspect();
  result.delivered_photos = delivered_;
  result.delivered_ids = std::move(delivered_ids_);
  result.counters = counters_;
  return result;
}

}  // namespace photodtn
