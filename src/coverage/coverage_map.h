// CoverageMap accumulates the photo coverage C_ph of a concrete photo
// collection over the model's PoI list: per-PoI point-coverage flags and
// aspect ArcSets, with incremental add and non-mutating gain queries. The
// command center's achieved coverage and every scheme's bookkeeping are
// CoverageMaps.
#pragma once

#include <vector>

#include "coverage/coverage_model.h"
#include "coverage/coverage_value.h"

namespace photodtn {

class CoverageMap {
 public:
  explicit CoverageMap(const CoverageModel& model);

  /// Adds a photo's footprint; returns the coverage gained (weighted).
  CoverageValue add(const PhotoFootprint& fp);

  /// Coverage that adding `fp` would contribute, without mutating.
  CoverageValue gain(const PhotoFootprint& fp) const;

  /// Current total (weighted) coverage.
  CoverageValue total() const noexcept { return total_; }

  /// Point coverage normalized by total PoI weight, in [0, 1].
  double normalized_point() const noexcept;
  /// Mean aspect coverage per PoI in radians, weight-normalized: total
  /// weighted aspect divided by total weight.
  double normalized_aspect() const noexcept;

  /// Per-PoI accessors (unweighted by PoI importance; aspect honors the
  /// PoI's AspectProfile when set).
  bool poi_covered(std::size_t poi_index) const;
  double poi_aspect(std::size_t poi_index) const;
  const ArcSet& poi_arcs(std::size_t poi_index) const;

  /// Full-view coverage (Wang et al., cited in Section VI): a PoI is
  /// full-view covered when its whole 2*pi aspect ring is covered.
  bool poi_full_view(std::size_t poi_index) const;
  /// Weighted fraction of PoIs that are full-view covered.
  double full_view_fraction() const noexcept;

  const CoverageModel& model() const noexcept { return *model_; }

  void clear();

  /// Deep invariant check (audit builds / tests): per-PoI arc sets are
  /// canonical, point flags match arc presence for point-implying adds, and
  /// the accumulated totals equal a from-scratch recomputation of the per-PoI
  /// state. Throws std::logic_error on violation.
  void audit() const;

 private:
  const CoverageModel* model_;
  std::vector<ArcSet> arcs_;       // one per PoI
  std::vector<char> covered_;      // point-coverage flags
  CoverageValue total_;
  double total_weight_ = 0.0;
};

/// Convenience: coverage of a set of footprints from scratch.
CoverageValue coverage_of(const CoverageModel& model,
                          const std::vector<PhotoFootprint>& fps);

}  // namespace photodtn
