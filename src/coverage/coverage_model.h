// CoverageModel binds a PoI list and the effective angle theta, and reduces
// each photo to its *footprint*: the set of PoIs it point-covers together
// with the aspect arc it contributes to each (Section II-B). Footprints are
// the unit every higher layer works with — they are cheap to cache and make
// coverage computation independent of raw geometry.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "coverage/photo.h"
#include "coverage/poi.h"
#include "coverage/poi_index.h"
#include "geometry/arc_set.h"

namespace photodtn {

/// One PoI covered by a photo: which PoI and the covered aspect arc
/// (centered on the PoI->camera heading, width 2*theta).
struct PoiArc {
  std::size_t poi_index = 0;
  Arc arc;
};

/// All PoIs a photo covers. An empty footprint means the photo is irrelevant
/// to the task (covers no PoI) and can never contribute coverage.
struct PhotoFootprint {
  PhotoId photo = 0;
  std::vector<PoiArc> arcs;

  bool relevant() const noexcept { return !arcs.empty(); }
};

class CoverageModel {
 public:
  /// `effective_angle` is theta in radians (Table I uses 30 degrees).
  CoverageModel(PoiList pois, double effective_angle);

  const PoiList& pois() const noexcept { return pois_; }
  double effective_angle() const noexcept { return theta_; }

  /// Binary quality gate (Section II-C): photos with quality strictly below
  /// the threshold get an empty footprint — they are never worth storage or
  /// bandwidth. Default 0 admits everything. Must be set before any
  /// footprint is computed (the footprint cache is keyed by photo id only).
  void set_quality_threshold(double threshold);
  double quality_threshold() const noexcept { return quality_threshold_; }

  /// Computes the footprint of a photo: for every PoI inside the photo's
  /// sector, the arc of aspects the photo covers.
  PhotoFootprint footprint(const PhotoMeta& photo) const;

  /// Memoizing variant — footprints are immutable per photo id, so repeated
  /// lookups during selection hit the cache. Thread-compatible (not
  /// thread-safe; each simulation run owns its model).
  const PhotoFootprint& footprint_cached(const PhotoMeta& photo) const;

  /// Batch variant of footprint_cached: fills `out` with one pointer per
  /// photo in `pool`, same order. Pointers stay valid for the model's
  /// lifetime (node-based cache). Lets selection resolve a whole candidate
  /// pool once instead of hashing per greedy evaluation.
  void footprints_cached(std::span<const PhotoMeta> pool,
                         std::vector<const PhotoFootprint*>& out) const;

  /// Whether a single photo point-covers the given PoI.
  bool covers(const PhotoMeta& photo, const PointOfInterest& poi) const;

 private:
  PoiList pois_;
  double theta_;
  double quality_threshold_ = 0.0;
  PoiIndex index_;
  mutable std::vector<std::size_t> query_buf_;
  mutable std::unordered_map<PhotoId, PhotoFootprint> cache_;
};

}  // namespace photodtn
