// The lexicographically ordered (point, aspect) pair of Definition 1.
// Point coverage dominates: any point-coverage gain beats any aspect gain.
#pragma once

#include <cmath>
#include <compare>

#include "util/check.h"

namespace photodtn {

struct CoverageValue {
  /// Sum of point coverage over the PoI list (weighted count of covered PoIs).
  double point = 0.0;
  /// Sum of aspect coverage over the PoI list (weighted radians).
  double aspect = 0.0;

  constexpr CoverageValue operator+(CoverageValue o) const noexcept {
    return {point + o.point, aspect + o.aspect};
  }
  constexpr CoverageValue operator-(CoverageValue o) const noexcept {
    return {point - o.point, aspect - o.aspect};
  }
  constexpr CoverageValue& operator+=(CoverageValue o) noexcept {
    point += o.point;
    aspect += o.aspect;
    return *this;
  }
  constexpr CoverageValue operator*(double s) const noexcept {
    return {point * s, aspect * s};
  }

  /// Lexicographic order: compare point coverage first, then aspect coverage
  /// (Definition 1). Defaulted member-order comparison implements exactly
  /// this because `point` is declared first.
  constexpr auto operator<=>(const CoverageValue&) const noexcept = default;

  constexpr bool is_zero() const noexcept { return point == 0.0 && aspect == 0.0; }

  /// True when this value exceeds `o` by more than the given slacks in the
  /// lexicographic sense — used by greedy loops to ignore floating-point
  /// dust when deciding whether a photo still adds value.
  constexpr bool exceeds(CoverageValue o, double eps = 1e-9) const noexcept {
    if (point > o.point + eps) return true;
    if (point < o.point - eps) return false;
    return aspect > o.aspect + eps;
  }

  /// Deep invariant check (audit builds / tests): both components are finite.
  /// A NaN component silently breaks the lexicographic order of Definition 1
  /// (operator<=> becomes non-transitive and exceeds() inconsistent with it),
  /// so finiteness IS the ordering-consistency invariant. Throws
  /// std::logic_error on violation.
  void audit() const {
    PHOTODTN_CHECK_MSG(std::isfinite(point), "CoverageValue.point must be finite");
    PHOTODTN_CHECK_MSG(std::isfinite(aspect), "CoverageValue.aspect must be finite");
  }
};

}  // namespace photodtn
