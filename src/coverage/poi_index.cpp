#include "coverage/poi_index.h"

#include <cmath>

#include "util/check.h"

namespace photodtn {

PoiIndex::PoiIndex(const PoiList& pois, double cell_m) : cell_m_(cell_m) {
  PHOTODTN_CHECK_MSG(cell_m > 0.0, "grid pitch must be positive");
  points_.reserve(pois.size());
  for (const PointOfInterest& p : pois) points_.push_back(p.location);

  table_size_ = points_.size() * 2 + 1;
  buckets_.resize(table_size_);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Cell c = cell_of(points_[i]);
    auto& bucket = buckets_[bucket_of(c)];
    bool placed = false;
    for (auto& [cell, ids] : bucket) {
      if (cell.x == c.x && cell.y == c.y) {
        ids.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) bucket.push_back({c, {i}});
  }
}

PoiIndex::Cell PoiIndex::cell_of(Vec2 p) const noexcept {
  return {static_cast<std::int64_t>(std::floor(p.x / cell_m_)),
          static_cast<std::int64_t>(std::floor(p.y / cell_m_))};
}

std::size_t PoiIndex::bucket_of(Cell c) const noexcept {
  // 2-D cell hash (Szudzik-style mix).
  const auto ux = static_cast<std::uint64_t>(c.x) * 0x9e3779b97f4a7c15ULL;
  const auto uy = static_cast<std::uint64_t>(c.y) * 0xc2b2ae3d27d4eb4fULL;
  return static_cast<std::size_t>((ux ^ uy) % table_size_);
}

void PoiIndex::audit() const {
  PHOTODTN_CHECK_MSG(cell_m_ > 0.0, "PoiIndex grid pitch must be positive");
  PHOTODTN_CHECK_MSG(buckets_.size() == table_size_,
                     "PoiIndex bucket table size out of sync");
  std::vector<char> seen(points_.size(), 0);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    for (const auto& [cell, ids] : buckets_[b]) {
      PHOTODTN_CHECK_MSG(bucket_of(cell) == b,
                         "PoiIndex cell stored in the wrong bucket");
      PHOTODTN_CHECK_MSG(!ids.empty(), "PoiIndex cells must hold at least one PoI");
      for (const std::size_t i : ids) {
        PHOTODTN_CHECK_MSG(i < points_.size(), "PoiIndex entry out of range");
        PHOTODTN_CHECK_MSG(!seen[i], "PoiIndex entry indexed twice");
        seen[i] = 1;
        const Cell c = cell_of(points_[i]);
        PHOTODTN_CHECK_MSG(c.x == cell.x && c.y == cell.y,
                           "PoiIndex entry filed under the wrong cell");
      }
    }
  }
  for (std::size_t i = 0; i < points_.size(); ++i)
    PHOTODTN_CHECK_MSG(seen[i], "PoiIndex entry missing from the grid");
}

void PoiIndex::query(Vec2 center, double radius, std::vector<std::size_t>& out) const {
  out.clear();
  if (points_.empty()) return;
  const Cell lo = cell_of({center.x - radius, center.y - radius});
  const Cell hi = cell_of({center.x + radius, center.y + radius});
  const double r2 = radius * radius;
  for (std::int64_t cx = lo.x; cx <= hi.x; ++cx) {
    for (std::int64_t cy = lo.y; cy <= hi.y; ++cy) {
      const Cell c{cx, cy};
      const auto& bucket = buckets_[bucket_of(c)];
      for (const auto& [cell, ids] : bucket) {
        if (cell.x != cx || cell.y != cy) continue;
        for (const std::size_t i : ids) {
          if ((points_[i] - center).norm_sq() <= r2) out.push_back(i);
        }
      }
    }
  }
}

}  // namespace photodtn
