// Points of Interest issued by the command center (Section II-A), with the
// optional per-PoI weights discussed at the end of Section II-C.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coverage/aspect_profile.h"
#include "geometry/vec2.h"

namespace photodtn {

struct PointOfInterest {
  std::int32_t id = 0;
  Vec2 location;
  /// Importance weight; a covering photo earns `weight` point coverage and
  /// aspect arcs are scaled by `weight` (default 1 reproduces the unweighted
  /// model of Definition 1).
  double weight = 1.0;
  /// Optional per-aspect weighting (Section II-C: "assign different weights
  /// to different aspects of a PoI", e.g. a building's main entrance).
  /// nullptr means uniform weight 1 — the paper's base model.
  std::shared_ptr<const AspectProfile> aspect_profile;

  const AspectProfile* profile() const noexcept { return aspect_profile.get(); }

  bool operator==(const PointOfInterest&) const = default;
};

using PoiList = std::vector<PointOfInterest>;

}  // namespace photodtn
