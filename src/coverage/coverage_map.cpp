#include "coverage/coverage_map.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace photodtn {

CoverageMap::CoverageMap(const CoverageModel& model)
    : model_(&model),
      arcs_(model.pois().size()),
      covered_(model.pois().size(), 0) {
  for (const PointOfInterest& poi : model.pois()) total_weight_ += poi.weight;
}

CoverageValue CoverageMap::add(const PhotoFootprint& fp) {
  CoverageValue gained;
  for (const PoiArc& pa : fp.arcs) {
    PHOTODTN_CHECK(pa.poi_index < arcs_.size());
    const PointOfInterest& poi = model_->pois()[pa.poi_index];
    if (!covered_[pa.poi_index]) {
      covered_[pa.poi_index] = 1;
      gained.point += poi.weight;
    }
    gained.aspect +=
        poi.weight * profile_gain(poi.profile(), pa.arc, arcs_[pa.poi_index]);
    arcs_[pa.poi_index].add(pa.arc);
  }
  total_ += gained;
  PHOTODTN_AUDIT(gained.audit());
  PHOTODTN_AUDIT(audit());
  return gained;
}

CoverageValue CoverageMap::gain(const PhotoFootprint& fp) const {
  CoverageValue g;
  for (const PoiArc& pa : fp.arcs) {
    PHOTODTN_CHECK(pa.poi_index < arcs_.size());
    const PointOfInterest& poi = model_->pois()[pa.poi_index];
    if (!covered_[pa.poi_index]) g.point += poi.weight;
    g.aspect += poi.weight * profile_gain(poi.profile(), pa.arc, arcs_[pa.poi_index]);
  }
  return g;
}

double CoverageMap::normalized_point() const noexcept {
  return total_weight_ > 0.0 ? total_.point / total_weight_ : 0.0;
}

double CoverageMap::normalized_aspect() const noexcept {
  return total_weight_ > 0.0 ? total_.aspect / total_weight_ : 0.0;
}

bool CoverageMap::poi_covered(std::size_t poi_index) const {
  PHOTODTN_CHECK(poi_index < covered_.size());
  return covered_[poi_index] != 0;
}

double CoverageMap::poi_aspect(std::size_t poi_index) const {
  PHOTODTN_CHECK(poi_index < arcs_.size());
  return profile_measure(model_->pois()[poi_index].profile(), arcs_[poi_index]);
}

bool CoverageMap::poi_full_view(std::size_t poi_index) const {
  PHOTODTN_CHECK(poi_index < arcs_.size());
  return arcs_[poi_index].full();
}

double CoverageMap::full_view_fraction() const noexcept {
  if (total_weight_ <= 0.0) return 0.0;
  double covered_weight = 0.0;
  for (std::size_t i = 0; i < arcs_.size(); ++i)
    if (arcs_[i].full()) covered_weight += model_->pois()[i].weight;
  return covered_weight / total_weight_;
}

const ArcSet& CoverageMap::poi_arcs(std::size_t poi_index) const {
  PHOTODTN_CHECK(poi_index < arcs_.size());
  return arcs_[poi_index];
}

void CoverageMap::clear() {
  for (auto& a : arcs_) a = ArcSet{};
  std::fill(covered_.begin(), covered_.end(), 0);
  total_ = CoverageValue{};
}

void CoverageMap::audit() const {
  PHOTODTN_CHECK_MSG(arcs_.size() == covered_.size() &&
                         arcs_.size() == model_->pois().size(),
                     "CoverageMap per-PoI state must match the model");
  total_.audit();
  CoverageValue expect;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    arcs_[i].audit();
    // Point coverage and aspect arcs always arrive together: a footprint
    // entry for a PoI both sets the flag and adds an arc of width 2*theta.
    PHOTODTN_CHECK_MSG((covered_[i] != 0) == !arcs_[i].empty(),
                       "CoverageMap point flag out of sync with aspect arcs");
    const PointOfInterest& poi = model_->pois()[i];
    if (covered_[i]) expect.point += poi.weight;
    expect.aspect += poi.weight * profile_measure(poi.profile(), arcs_[i]);
  }
  PHOTODTN_CHECK_MSG(
      std::fabs(expect.point - total_.point) <=
              1e-9 * std::max(1.0, std::fabs(expect.point)) &&
          std::fabs(expect.aspect - total_.aspect) <=
              1e-9 * std::max(1.0, std::fabs(expect.aspect)),
      "CoverageMap accumulated totals diverge from per-PoI state");
}

CoverageValue coverage_of(const CoverageModel& model,
                          const std::vector<PhotoFootprint>& fps) {
  CoverageMap map(model);
  for (const auto& fp : fps) map.add(fp);
  return map.total();
}

}  // namespace photodtn
