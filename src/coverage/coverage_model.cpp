#include "coverage/coverage_model.h"

#include <algorithm>

#include "geometry/angle.h"
#include "util/check.h"

namespace photodtn {

CoverageModel::CoverageModel(PoiList pois, double effective_angle)
    : pois_(std::move(pois)), theta_(effective_angle), index_(pois_) {
  PHOTODTN_CHECK_MSG(theta_ > 0.0 && theta_ <= kTwoPi,
                     "effective angle must be in (0, 2*pi]");
}

void CoverageModel::set_quality_threshold(double threshold) {
  PHOTODTN_CHECK_MSG(threshold >= 0.0 && threshold <= 1.0,
                     "quality threshold must be in [0, 1]");
  PHOTODTN_CHECK_MSG(cache_.empty(),
                     "set the quality threshold before computing footprints");
  quality_threshold_ = threshold;
}

bool CoverageModel::covers(const PhotoMeta& photo, const PointOfInterest& poi) const {
  if (photo.quality < quality_threshold_) return false;
  return photo.sector().contains(poi.location);
}

PhotoFootprint CoverageModel::footprint(const PhotoMeta& photo) const {
  PhotoFootprint fp;
  fp.photo = photo.id;
  if (photo.quality < quality_threshold_) return fp;  // disqualified (§II-C)
  const Sector sector = photo.sector();
  // The grid prunes to PoIs inside the sector's bounding circle; the exact
  // sector test below decides. Candidates come back unordered, but PoiArcs
  // must be sorted by index (CoverageMap and the evaluators rely on
  // deterministic footprints).
  index_.query(photo.location, photo.range, query_buf_);
  std::sort(query_buf_.begin(), query_buf_.end());
  for (const std::size_t i : query_buf_) {
    const PointOfInterest& poi = pois_[i];
    if (!sector.contains(poi.location)) continue;
    // Viewing direction: vector from the PoI to the camera (x->l in the
    // paper). An aspect v is covered iff angle(v, x->l) < theta.
    const double view = (photo.location - poi.location).heading();
    fp.arcs.push_back(PoiArc{i, Arc::centered(view, theta_)});
  }
  return fp;
}

const PhotoFootprint& CoverageModel::footprint_cached(const PhotoMeta& photo) const {
  auto it = cache_.find(photo.id);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(photo.id, footprint(photo)).first->second;
}

void CoverageModel::footprints_cached(std::span<const PhotoMeta> pool,
                                      std::vector<const PhotoFootprint*>& out) const {
  out.clear();
  out.reserve(pool.size());
  for (const PhotoMeta& photo : pool) out.push_back(&footprint_cached(photo));
}

}  // namespace photodtn
