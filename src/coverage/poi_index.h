// Uniform-grid spatial index over a PoI list. Footprint computation tests
// each photo's sector against candidate PoIs; with hundreds of PoIs and a
// sector radius far below the region size, scanning every PoI per photo is
// the hot loop of the whole framework. The grid returns only PoIs within
// the sector's bounding circle.
#pragma once

#include <cstddef>
#include <vector>

#include "coverage/poi.h"
#include "geometry/vec2.h"

namespace photodtn {

class PoiIndex {
 public:
  /// `cell_m` is the grid pitch; a good default is the typical query
  /// radius (photo coverage range).
  explicit PoiIndex(const PoiList& pois, double cell_m = 250.0);

  /// Indices (into the PoiList) of all PoIs within `radius` of `center`
  /// — plus possibly a few just outside (callers re-check exactly), never
  /// missing one inside.
  void query(Vec2 center, double radius, std::vector<std::size_t>& out) const;

  std::size_t size() const noexcept { return points_.size(); }

  /// Deep invariant check (audit builds / tests): every PoI appears in
  /// exactly one bucket, in the bucket its cell hashes to, and cell
  /// coordinates match the stored location. Throws std::logic_error on
  /// violation.
  void audit() const;

 private:
  struct Cell {
    std::int64_t x;
    std::int64_t y;
  };
  Cell cell_of(Vec2 p) const noexcept;
  std::size_t bucket_of(Cell c) const noexcept;

  double cell_m_;
  std::vector<Vec2> points_;
  // Open-addressed bucket table: cell -> list of poi indices. Sized to the
  // number of distinct occupied cells; collisions chain within buckets_.
  std::size_t table_size_ = 0;
  std::vector<std::vector<std::pair<Cell, std::vector<std::size_t>>>> buckets_;
};

}  // namespace photodtn
