// Aspect weighting (the Section II-C discussion): "when a particular angle
// of a target (e.g., main entrance of a building) is more important than
// others, we can assign different weights to different aspects of a PoI."
//
// An AspectProfile is a piecewise-constant weight function on a PoI's
// aspect circle. The default profile is uniform weight 1, which reproduces
// the unweighted model exactly. With a profile, a PoI's aspect coverage is
// the *weighted* measure of the covered aspect set — covering the main
// entrance earns more than covering the back wall.
#pragma once

#include <memory>
#include <vector>

#include "geometry/arc_set.h"

namespace photodtn {

class AspectProfile {
 public:
  /// Uniform weight 1 everywhere.
  AspectProfile() = default;

  /// Sets the weight on `arc` to `weight` (overriding previous values on
  /// that arc; later bands win). Weight must be >= 0.
  void set_band(Arc arc, double weight);

  /// Weight at an angle.
  double weight_at(double angle) const noexcept;

  /// Integral of the weight over the whole circle (the PoI's maximum
  /// attainable aspect coverage).
  double total() const noexcept;

  /// Integral of the weight over [lo, hi] minus the parts covered by
  /// `exclude`, for 0 <= lo <= hi <= 2*pi.
  double integrate_excluding(double lo, double hi, const ArcSet& exclude) const;

  /// Integral of the weight over a covered set.
  double integrate_set(const ArcSet& set) const;

  bool is_uniform() const noexcept { return bps_.empty(); }

  /// Segment breakpoints, normalized to [0, 2*pi), sorted ascending; empty
  /// for the uniform profile. The selection engine merges these into its
  /// per-PoI segmentation so weighted integrals stay piecewise-constant.
  const std::vector<double>& breakpoints() const noexcept { return bps_; }

 private:
  // Empty bps_ means constant weight 1. Otherwise vals_[k] applies on
  // [bps_[k], bps_[k+1]) with the last segment wrapping to bps_[0] + 2*pi.
  std::vector<double> bps_;
  std::vector<double> vals_;
};

/// Weighted measure `arc` would add beyond `existing` under `profile`
/// (nullptr profile = uniform weight 1, i.e. existing.gain(arc)). Handles
/// wrapping arcs.
double profile_gain(const AspectProfile* profile, Arc arc, const ArcSet& existing);

/// Weighted measure of a covered set (nullptr profile = set.measure()).
double profile_measure(const AspectProfile* profile, const ArcSet& set);

}  // namespace photodtn
