#include "coverage/photo.h"

#include <cmath>

#include "util/check.h"

namespace photodtn {

Sector PhotoMeta::sector() const { return Sector{location, range, fov, orientation}; }

double coverage_range_from_fov(double fov, double c) noexcept {
  return c / std::tan(fov / 2.0);
}

}  // namespace photodtn
