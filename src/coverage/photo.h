// Photo metadata — the (l, r, phi, d) tuple of Section II-A plus the
// bookkeeping identity/size/time fields the DTN layer needs. Metadata is the
// only thing the framework ever inspects; pixel payloads are represented by
// size_bytes alone.
#pragma once

#include <cstdint>
#include <compare>

#include "geometry/sector.h"
#include "geometry/vec2.h"

namespace photodtn {

using PhotoId = std::uint64_t;
using NodeId = std::int32_t;

/// Reserved node id of the command center (n_0 in the paper).
inline constexpr NodeId kCommandCenter = 0;

struct PhotoMeta {
  PhotoId id = 0;
  /// Node that originally took the photo.
  NodeId taken_by = -1;
  /// Camera location l (meters, local plane).
  Vec2 location;
  /// Coverage range r (meters): distance beyond which objects in the photo
  /// are no longer recognizable.
  double range = 0.0;
  /// Field-of-view phi (radians).
  double fov = 0.0;
  /// Orientation d (radians): heading of the optical axis.
  double orientation = 0.0;
  /// Payload size in bytes (the full image, not the metadata).
  std::uint64_t size_bytes = 0;
  /// Capture time in seconds since the start of the crowdsourcing event.
  double taken_at = 0.0;
  /// Image quality in [0, 1] (sharpness/exposure score computed on-device).
  /// Section II-C: quality is application-dependent; the model supports a
  /// binary threshold that disqualifies bad photos before coverage is
  /// computed (see CoverageModel::set_quality_threshold).
  double quality = 1.0;

  /// The coverage area of Fig. 1(a).
  Sector sector() const;

  bool operator==(const PhotoMeta&) const = default;
};

/// Coverage range from field-of-view, r = c * cot(phi/2) (Section IV-A):
/// focal length grows with cot(phi/2) and recognizability scales with focal
/// length. `c` in meters (the paper uses 50 m for buildings).
double coverage_range_from_fov(double fov, double c) noexcept;

}  // namespace photodtn
