#include "coverage/aspect_profile.h"

#include <algorithm>
#include <cmath>

#include "geometry/angle.h"
#include "util/check.h"

namespace photodtn {

namespace {
constexpr double kEps = 1e-12;
}

void AspectProfile::set_band(Arc arc, double weight) {
  PHOTODTN_CHECK_MSG(weight >= 0.0, "aspect weight must be non-negative");
  PHOTODTN_CHECK_MSG(arc.length >= 0.0, "band length must be non-negative");
  if (arc.length <= kEps) return;

  // The band as a set of linear pieces.
  ArcSet band;
  band.add(arc);

  // New breakpoints: existing ones plus the band's endpoints.
  std::vector<double> bps = bps_;
  for (const double b : band.boundaries()) bps.push_back(b);
  if (bps.empty()) bps.push_back(0.0);  // full-circle band: one segment
  std::sort(bps.begin(), bps.end());
  bps.erase(std::unique(bps.begin(), bps.end(),
                        [](double a, double b) { return std::fabs(a - b) <= kEps; }),
            bps.end());

  std::vector<double> vals(bps.size());
  for (std::size_t k = 0; k < bps.size(); ++k) {
    const double lo = bps[k];
    const double hi = (k + 1 < bps.size()) ? bps[k + 1] : bps[0] + kTwoPi;
    const double mid = normalize_angle(lo + (hi - lo) / 2.0);
    vals[k] = band.contains(mid) ? weight : weight_at(mid);
  }
  bps_ = std::move(bps);
  vals_ = std::move(vals);
}

double AspectProfile::weight_at(double angle) const noexcept {
  if (bps_.empty()) return 1.0;
  const double a = normalize_angle(angle);
  const auto it = std::upper_bound(bps_.begin(), bps_.end(), a);
  const std::size_t k =
      it == bps_.begin() ? bps_.size() - 1
                         : static_cast<std::size_t>(std::distance(bps_.begin(), it)) - 1;
  return vals_[k];
}

double AspectProfile::total() const noexcept {
  if (bps_.empty()) return kTwoPi;
  double sum = 0.0;
  for (std::size_t k = 0; k < bps_.size(); ++k) {
    const double lo = bps_[k];
    const double hi = (k + 1 < bps_.size()) ? bps_[k + 1] : bps_[0] + kTwoPi;
    sum += vals_[k] * (hi - lo);
  }
  return sum;
}

double AspectProfile::integrate_excluding(double lo, double hi,
                                          const ArcSet& exclude) const {
  PHOTODTN_CHECK(lo >= -1e-12 && hi <= kTwoPi + 1e-12 && lo <= hi + 1e-12);
  lo = std::max(lo, 0.0);
  hi = std::min(hi, kTwoPi);
  if (hi <= lo) return 0.0;
  auto piece = [&](double l, double h, double w) {
    if (h <= l || w == 0.0) return 0.0;
    const double len = (h - l) - exclude.overlap_linear(l, h);
    return w * std::max(0.0, len);
  };
  if (bps_.empty()) return piece(lo, hi, 1.0);
  double sum = 0.0;
  const std::size_t n = bps_.size();
  for (std::size_t k = 0; k + 1 < n; ++k)
    sum += piece(std::max(lo, bps_[k]), std::min(hi, bps_[k + 1]), vals_[k]);
  // Wrapping last segment: [bps_[n-1], 2*pi) and [0, bps_[0]).
  sum += piece(std::max(lo, bps_[n - 1]), hi, vals_[n - 1]);
  sum += piece(lo, std::min(hi, bps_[0]), vals_[n - 1]);
  return sum;
}

double AspectProfile::integrate_set(const ArcSet& set) const {
  static const ArcSet kNothing;
  double sum = 0.0;
  for (const auto& [lo, hi] : set.intervals())
    sum += integrate_excluding(lo, hi, kNothing);
  return sum;
}

double profile_gain(const AspectProfile* profile, Arc arc, const ArcSet& existing) {
  if (profile == nullptr || profile->is_uniform()) return existing.gain(arc);
  if (arc.length <= kEps) return 0.0;
  const double start = normalize_angle(arc.start);
  const double end = start + std::min(arc.length, kTwoPi);
  if (end <= kTwoPi) return profile->integrate_excluding(start, end, existing);
  return profile->integrate_excluding(start, kTwoPi, existing) +
         profile->integrate_excluding(0.0, end - kTwoPi, existing);
}

double profile_measure(const AspectProfile* profile, const ArcSet& set) {
  if (profile == nullptr || profile->is_uniform()) return set.measure();
  return profile->integrate_set(set);
}

}  // namespace photodtn
