#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace photodtn {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_tag(std::string_view tag) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : tag) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split(std::string_view tag) noexcept {
  return Rng{next() ^ hash_tag(tag)};
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % range);
  std::uint64_t v = next();
  while (v > limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::exponential(double lambda) noexcept {
  // 1 - uniform() is in (0,1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::normal(double mean, double stddev) noexcept {
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace photodtn
