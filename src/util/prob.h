// Probability bookkeeping helpers. PROPHET updates, metadata staleness, and
// the expected-coverage estimator all carry probabilities that must stay in
// [0, 1]; floating-point rounding in long update chains can drift a hair
// outside, so mutation sites clamp with clamp01 and audits verify with
// is_probability.
#pragma once

#include <cmath>

namespace photodtn {

/// Clamps to [0, 1]. NaN propagates (audits catch it; silently mapping NaN
/// to a valid probability would hide the bug the clamp exists to contain).
constexpr double clamp01(double p) noexcept {
  return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
}

/// True for a finite value in [0, 1].
inline bool is_probability(double p) noexcept {
  return std::isfinite(p) && 0.0 <= p && p <= 1.0;
}

}  // namespace photodtn
