#include "util/env.h"

#include <cstdlib>

namespace photodtn {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  // getenv is MT-safe as long as nothing calls setenv concurrently; the
  // process never mutates its environment, so the glibc caveat is moot.
  const char* v = std::getenv(name.c_str());  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

double env_double(const std::string& name, double fallback) {
  // Same single-writer-environment argument as env_int.
  const char* v = std::getenv(name.c_str());  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

}  // namespace photodtn
