#include "util/json.h"

#include <cmath>
#include <iomanip>

#include "persist/file_io.h"

namespace photodtn {

void JsonWriter::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key":
  }
  if (comma_stack_.back()) out_ << ',';
  comma_stack_.back() = true;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ << '{';
  comma_stack_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  comma_stack_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ << '[';
  comma_stack_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  comma_stack_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  separator();
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  separator();
  out_ << '"' << escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  separator();
  if (!std::isfinite(d)) {
    out_ << "null";
  } else {
    out_ << std::setprecision(17) << d;
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  separator();
  out_ << i;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  separator();
  out_ << u;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separator();
  out_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separator();
  out_ << "null";
  return *this;
}

JsonWriter& JsonWriter::kv_array(const std::string& name,
                                 const std::vector<double>& values) {
  key(name);
  begin_array();
  for (const double v : values) value(v);
  return end_array();
}

bool JsonWriter::write_file(const std::string& path) const {
  return persist::checked_write_file(path, str() + "\n");
}

}  // namespace photodtn
