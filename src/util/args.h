// Minimal command-line parsing for the CLI tools: a subcommand followed by
// `--key value` options and bare positionals. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace photodtn {

class Args {
 public:
  /// Parses argv[1..). The first non-option token is the subcommand; later
  /// non-option tokens are positionals. `--key value` pairs become options
  /// (a trailing `--key` with no value, or one followed by another option,
  /// is treated as a boolean flag).
  static Args parse(int argc, const char* const* argv);

  const std::string& command() const noexcept { return command_; }
  const std::vector<std::string>& positionals() const noexcept { return positionals_; }

  bool has(const std::string& key) const { return options_.count(key) != 0; }

  /// Typed getters with defaults; throw std::runtime_error on malformed
  /// values (so the CLI can report them instead of silently defaulting).
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Keys the program never queried — used to reject typos.
  std::vector<std::string> unused_keys() const;

 private:
  std::string command_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace photodtn
