// Lightweight contract checks. These guard invariants and preconditions that
// indicate programming errors (not runtime conditions a caller can recover
// from), so they throw std::logic_error with the failing expression.
//
// Three tiers:
//   PHOTODTN_CHECK        — always on; cheap conditions on hot-but-not-critical
//                           paths (a dropped check here hides corruption).
//   PHOTODTN_DCHECK       — on in debug (!NDEBUG) and audit builds, compiled
//                           out (expression not evaluated) otherwise; for
//                           conditions too hot to check in release.
//   PHOTODTN_AUDIT        — on only when PHOTODTN_AUDIT_INVARIANTS is defined
//                           (cmake -DPHOTODTN_AUDIT_INVARIANTS=ON); runs deep
//                           structural validation such as the audit() methods
//                           on ArcSet / MetadataCache / ProphetTable /
//                           PhotoStore at mutation sites. O(n) or worse per
//                           call, so never enabled in normal builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace photodtn {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

/// True when PHOTODTN_DCHECK is active in this translation unit's build.
constexpr bool dchecks_enabled() noexcept {
#if defined(PHOTODTN_AUDIT_INVARIANTS) || !defined(NDEBUG)
  return true;
#else
  return false;
#endif
}

/// True when PHOTODTN_AUDIT is active in this translation unit's build.
constexpr bool audits_enabled() noexcept {
#ifdef PHOTODTN_AUDIT_INVARIANTS
  return true;
#else
  return false;
#endif
}

}  // namespace photodtn

// Always-on check (cheap conditions on hot-but-not-critical paths).
#define PHOTODTN_CHECK(expr)                                              \
  do {                                                                    \
    if (!(expr)) ::photodtn::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PHOTODTN_CHECK_MSG(expr, msg)                                        \
  do {                                                                       \
    if (!(expr)) ::photodtn::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#if defined(PHOTODTN_AUDIT_INVARIANTS) || !defined(NDEBUG)
#define PHOTODTN_DCHECK(expr) PHOTODTN_CHECK(expr)
#define PHOTODTN_DCHECK_MSG(expr, msg) PHOTODTN_CHECK_MSG(expr, (msg))
#else
// Compiled out: the expression is parsed (so it cannot bit-rot) but never
// evaluated, and variables it names do not trigger -Wunused warnings.
#define PHOTODTN_DCHECK(expr)         \
  do {                                \
    if (false) { (void)(expr); }      \
  } while (0)
#define PHOTODTN_DCHECK_MSG(expr, msg) \
  do {                                 \
    if (false) {                       \
      (void)(expr);                    \
      (void)(msg);                     \
    }                                  \
  } while (0)
#endif

// Deep-invariant hook: evaluates the expression (typically `obj.audit()`)
// only in audit builds. Place at the end of mutating operations.
#ifdef PHOTODTN_AUDIT_INVARIANTS
#define PHOTODTN_AUDIT(expr) \
  do {                       \
    (expr);                  \
  } while (0)
#else
#define PHOTODTN_AUDIT(expr)     \
  do {                           \
    if (false) { (void)(expr); } \
  } while (0)
#endif
