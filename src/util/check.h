// Lightweight contract checks. These guard invariants and preconditions that
// indicate programming errors (not runtime conditions a caller can recover
// from), so they throw std::logic_error with the failing expression.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace photodtn {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace photodtn

// Always-on check (cheap conditions on hot-but-not-critical paths).
#define PHOTODTN_CHECK(expr)                                              \
  do {                                                                    \
    if (!(expr)) ::photodtn::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PHOTODTN_CHECK_MSG(expr, msg)                                       \
  do {                                                                      \
    if (!(expr)) ::photodtn::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
