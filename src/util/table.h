// Console table / CSV emitter for benchmark harnesses. Every figure bench
// prints the same rows the paper plots; Table keeps them aligned and can
// mirror the data to a CSV file for external plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace photodtn {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  using Cell = std::variant<std::string, double, std::int64_t>;

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> cells);

  /// Number of data rows.
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(std::ostream& os) const;

  /// Convenience: writes CSV to `path`; returns false (and leaves no partial
  /// file guarantee) if the file cannot be opened.
  bool write_csv_file(const std::string& path) const;

  /// Controls floating point precision in both renderings (default 4).
  void set_precision(int digits) noexcept { precision_ = digits; }

 private:
  std::string format_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace photodtn
