#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace photodtn {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n + m;
  mean_ += delta * m / total;
  m2_ += other.m2_ + delta * delta * n * m / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci95_half_width() const noexcept { return 1.96 * stderr_mean(); }

void SeriesStats::add_series(const std::vector<double>& series) {
  if (cells_.empty() && runs_ == 0) cells_.resize(series.size());
  PHOTODTN_CHECK_MSG(series.size() == cells_.size(),
                     "series length mismatch when averaging runs");
  for (std::size_t i = 0; i < series.size(); ++i) cells_[i].add(series[i]);
  ++runs_;
}

std::vector<double> SeriesStats::means() const {
  std::vector<double> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) out[i] = cells_[i].mean();
  return out;
}

std::vector<double> SeriesStats::ci95() const {
  std::vector<double> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) out[i] = cells_[i].ci95_half_width();
  return out;
}

double pearson_correlation(const std::vector<double>& x, const std::vector<double>& y) {
  PHOTODTN_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  RunningStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  cov /= static_cast<double>(n - 1);
  return cov / (sx.stddev() * sy.stddev());
}

}  // namespace photodtn
