// Clang thread-safety capability annotations, no-op on every other compiler.
//
// These macros make the locking rules written in DESIGN.md ("Threading &
// determinism model") machine-checked: a field tagged PHOTODTN_GUARDED_BY(mu)
// can only be touched while `mu` is held, a function tagged
// PHOTODTN_REQUIRES(mu) can only be called with `mu` held, and the analysis
// runs at compile time with zero runtime cost. Enforcement is opt-in through
// the `analysis` CMake preset / PHOTODTN_ANALYSIS=ON, which turns
// -Wthread-safety -Wthread-safety-beta into errors (Clang only; see the CI
// `analysis` job). GCC and MSVC see empty macros and compile the exact same
// code.
//
// The annotated primitives that go with these macros live in util/sync.h
// (Mutex, MutexLock, CondVar); std::mutex itself carries no capability
// attributes under libstdc++, so annotated code must use those wrappers.
// CONTRIBUTING.md ("Annotating a new mutex") shows the recipe.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define PHOTODTN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PHOTODTN_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Tags a type as a capability ("mutex"): something that can be acquired,
/// held, and released, and that other annotations can reference.
#define PHOTODTN_CAPABILITY(x) PHOTODTN_THREAD_ANNOTATION(capability(x))

/// Tags a RAII type whose constructor acquires and destructor releases a
/// capability (util/sync.h MutexLock).
#define PHOTODTN_SCOPED_CAPABILITY PHOTODTN_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding the given capability.
#define PHOTODTN_GUARDED_BY(x) PHOTODTN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* may only be touched while holding the
/// capability (the pointer itself is unguarded).
#define PHOTODTN_PT_GUARDED_BY(x) PHOTODTN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry and exit.
#define PHOTODTN_REQUIRES(...) \
  PHOTODTN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define PHOTODTN_EXCLUDES(...) \
  PHOTODTN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (held on exit, not on entry).
#define PHOTODTN_ACQUIRE(...) \
  PHOTODTN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define PHOTODTN_RELEASE(...) \
  PHOTODTN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function conditionally acquires: holds the capability iff it returned
/// the given value.
#define PHOTODTN_TRY_ACQUIRE(...) \
  PHOTODTN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Declares acquisition order between two capabilities (deadlock freedom).
#define PHOTODTN_ACQUIRED_BEFORE(...) \
  PHOTODTN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PHOTODTN_ACQUIRED_AFTER(...) \
  PHOTODTN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Returns a reference to the given capability (accessor functions).
#define PHOTODTN_RETURN_CAPABILITY(x) \
  PHOTODTN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is deliberately outside the analysis.
/// Every use needs a comment explaining why the access is safe anyway.
#define PHOTODTN_NO_THREAD_SAFETY_ANALYSIS \
  PHOTODTN_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Runtime assertion to the analysis that the capability is already held
/// (e.g. on a code path the analysis cannot follow).
#define PHOTODTN_ASSERT_CAPABILITY(x) \
  PHOTODTN_THREAD_ANNOTATION(assert_capability(x))
