// Minimal JSON writer (no parsing, no external deps): enough to export
// experiment results for plotting pipelines. Produces compact, valid JSON;
// strings are escaped, doubles are emitted round-trippably, and NaN/inf are
// rendered as null (JSON has no representation for them).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace photodtn {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value (or container begin).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s) { return value(std::string(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(bool b);
  JsonWriter& null();

  /// Convenience: key + value.
  template <typename T>
  JsonWriter& kv(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// Convenience: key + array of doubles.
  JsonWriter& kv_array(const std::string& name, const std::vector<double>& values);

  /// The document so far. Valid JSON once every container is closed.
  std::string str() const { return out_.str(); }
  bool write_file(const std::string& path) const;

 private:
  void separator();
  static std::string escape(const std::string& s);

  std::ostringstream out_;
  // Per-depth "needs comma before next element" flags.
  std::vector<bool> comma_stack_{false};
  bool pending_key_ = false;
};

}  // namespace photodtn
