// Environment-variable knobs for the bench harness (run counts, scale).
#pragma once

#include <cstdint>
#include <string>

namespace photodtn {

/// Reads an integer environment variable, returning `fallback` when unset
/// or unparsable. Used by benches for PHOTODTN_BENCH_RUNS etc.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Reads a double environment variable with the same fallback semantics.
double env_double(const std::string& name, double fallback);

}  // namespace photodtn
