// Deterministic, splittable random number generation.
//
// Simulations must be reproducible run-to-run and independent across streams
// (e.g. the photo-generation stream must not perturb the mobility stream when
// a parameter changes). We use xoshiro256** seeded via SplitMix64, with a
// `split()` operation deriving decorrelated child streams.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "persist/fwd.h"

namespace photodtn {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through SplitMix64 so that any 64-bit seed
  /// (including 0) yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Derives an independent child stream. The child's seed mixes this
  /// stream's next output with `tag`, so calling split("photos") and
  /// split("mobility") yields decorrelated generators even from the same
  /// parent state.
  Rng split(std::string_view tag) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Exponential with rate lambda (> 0); mean 1/lambda.
  double exponential(double lambda) noexcept;
  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    const auto n = static_cast<std::int64_t>(c.size());
    for (std::int64_t i = n - 1; i > 0; --i) {
      const auto j = uniform_int(0, i);
      using std::swap;
      swap(c[static_cast<std::size_t>(i)], c[static_cast<std::size_t>(j)]);
    }
  }

 private:
  friend struct persist::StateAccess;  // checkpoint/restore of the state words

  std::array<std::uint64_t, 4> state_{};
};

/// SplitMix64 step: used for seeding and for hashing tags.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// FNV-1a hash of a string, for deriving stream tags.
std::uint64_t hash_tag(std::string_view tag) noexcept;

}  // namespace photodtn
