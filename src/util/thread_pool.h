// Deterministic shared thread pool: a fixed set of workers executing
// *chunked* jobs whose chunk -> data mapping is decided entirely by the
// caller. The pool never reorders, splits, or merges chunks; which worker
// runs a chunk is scheduling noise that must not be observable. Determinism
// therefore rests on two caller-side rules, used throughout the repo:
//
//   1. Each chunk writes only its own output slots (out[i] per candidate,
//      results[k] per run). Writes to disjoint slots commute, so the result
//      is bit-identical for any worker count, including zero workers.
//   2. Reductions fold the per-chunk partials *in chunk order* after the
//      barrier (parallel_reduce), or combine with an order-free exact
//      comparator (the greedy argmax honors the lowest-PhotoId tie-break,
//      making the winner independent of chunk boundaries).
//
// The shared() pool is sized by PHOTODTN_THREADS (default: hardware
// concurrency) and replaces the old per-seed std::async fan-out — bounded
// oversubscription instead of one OS thread per seed. parallel_chunks is
// re-entrant: a chunk body may itself call parallel_chunks on the same pool
// (the caller always participates, so nested calls make progress even when
// every worker is busy with long outer tasks).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace photodtn {

/// Wall-clock execution stats, collected only when PHOTODTN_OBS=1 (see
/// obs/wall_clock.h) — otherwise every field stays zero and the hot loop
/// pays one predictable branch per chunk. Non-deterministic by nature:
/// surfaced only through the non-golden wallPerf trace section.
struct ThreadPoolStats {
  struct Lane {
    std::uint64_t chunks = 0;   // chunks this lane executed
    std::uint64_t busy_ns = 0;  // wall time spent inside chunk bodies
  };
  /// One entry per dedicated worker, then one aggregating every calling
  /// thread (the caller always participates in parallel_chunks).
  std::vector<Lane> lanes;
  /// Per-chunk wall-latency histogram shared by all lanes; counts has one
  /// trailing overflow bucket.
  std::vector<std::uint64_t> task_latency_bounds_ns;
  std::vector<std::uint64_t> task_latency_counts;
};

class ThreadPool {
 public:
  /// `concurrency` counts the calling thread: a pool built with 1 spawns no
  /// workers and runs every chunk inline on the caller, in chunk order.
  /// 0 is clamped to 1.
  explicit ThreadPool(std::size_t concurrency);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, sized by PHOTODTN_THREADS at first use
  /// (unset or <= 0 falls back to std::thread::hardware_concurrency).
  static ThreadPool& shared();

  std::size_t concurrency() const noexcept { return concurrency_; }

  /// Runs fn(chunk) for every chunk in [0, chunks), blocking until all
  /// complete. The caller participates; with no workers (or from inside a
  /// busy pool) it simply runs the chunks itself in ascending order. The
  /// first exception a chunk throws is rethrown here after the barrier.
  void parallel_chunks(std::size_t chunks,
                       const std::function<void(std::size_t)>& fn);

  /// Chunked parallel-for over [0, n): body(begin, end) per chunk, with
  /// chunk boundaries fixed by `grain` alone — never by the worker count —
  /// so any per-chunk accumulation order is reproducible across pools.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Ordered reduction: partial = map(chunk) for each chunk in parallel,
  /// then acc = combine(acc, partial) serially *in ascending chunk order*.
  /// With a deterministic map and this fixed fold order, the result is
  /// bit-identical for any concurrency.
  template <typename T, typename MapFn, typename CombineFn>
  T parallel_reduce(std::size_t chunks, T init, const MapFn& map,
                    const CombineFn& combine) {
    std::vector<T> parts(chunks);
    parallel_chunks(chunks,
                    [&](std::size_t c) { parts[c] = map(c); });
    T acc = std::move(init);
    for (std::size_t c = 0; c < chunks; ++c)
      acc = combine(std::move(acc), std::move(parts[c]));
    return acc;
  }

  /// Snapshot of the wall-clock execution stats (all-zero unless
  /// PHOTODTN_OBS=1). Excludes the inline fast path (single-chunk or
  /// single-thread jobs), which never enters the queue.
  ThreadPoolStats stats() const;

 private:
  /// One parallel_chunks invocation: workers and the caller race on `next`
  /// (claiming chunks), and the caller waits until `done` reaches `total`.
  /// `fn` and `total` are written once before the job is published and read
  /// lock-free afterwards; the mutable progress state is capability-checked.
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t total = 0;
    Mutex mu;
    std::size_t next PHOTODTN_GUARDED_BY(mu) = 0;
    std::size_t done PHOTODTN_GUARDED_BY(mu) = 0;
    std::exception_ptr error PHOTODTN_GUARDED_BY(mu);
    CondVar all_done;
  };

  /// Per-lane wall-clock counters (relaxed atomics: each is a monotone sum,
  /// read only by stats()).
  struct LaneCounters {
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };
  static constexpr std::array<std::uint64_t, 7> kTaskLatencyBoundsNs = {
      1'000,         10'000,        100'000,      1'000'000,
      10'000'000,    100'000'000,   1'000'000'000};

  void worker_loop(std::size_t lane);
  /// Claims and runs chunks of `job` until none are left, accounting the
  /// work to `lane` when wall metrics are enabled.
  void drain(Job& job, LaneCounters& lane);

  std::size_t concurrency_;
  /// concurrency_ entries: one per worker plus the shared caller lane.
  std::vector<LaneCounters> lanes_;
  std::array<std::atomic<std::uint64_t>, kTaskLatencyBoundsNs.size() + 1>
      latency_counts_{};
  std::vector<std::thread> workers_;
  Mutex queue_mu_;
  CondVar queue_cv_;
  /// One entry per pending helper slot of a published job.
  std::deque<std::shared_ptr<Job>> queue_ PHOTODTN_GUARDED_BY(queue_mu_);
  bool stopping_ PHOTODTN_GUARDED_BY(queue_mu_) = false;
};

}  // namespace photodtn
