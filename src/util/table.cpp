#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "persist/file_io.h"
#include "util/check.h"

namespace photodtn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PHOTODTN_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  PHOTODTN_CHECK_MSG(cells.size() == headers_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(format_cell(row[i]));
      widths[i] = std::max(widths[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto line = [&] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  line();
  os << '|';
  for (std::size_t i = 0; i < headers_.size(); ++i)
    os << ' ' << std::setw(static_cast<int>(widths[i])) << std::left << headers_[i] << " |";
  os << '\n';
  line();
  for (const auto& r : rendered) {
    os << '|';
    for (std::size_t i = 0; i < r.size(); ++i)
      os << ' ' << std::setw(static_cast<int>(widths[i])) << std::right << r[i] << " |";
    os << '\n';
  }
  line();
}

void Table::write_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  for (std::size_t i = 0; i < headers_.size(); ++i)
    os << (i ? "," : "") << quote(headers_[i]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i)
      os << (i ? "," : "") << quote(format_cell(row[i]));
    os << '\n';
  }
}

bool Table::write_csv_file(const std::string& path) const {
  std::ostringstream os;
  write_csv(os);
  return persist::checked_write_file(path, os.str());
}

}  // namespace photodtn
