#include "util/thread_pool.h"

#include <algorithm>

#include "obs/wall_clock.h"
#include "util/check.h"
#include "util/env.h"

namespace photodtn {

ThreadPool::ThreadPool(std::size_t concurrency)
    : concurrency_(std::max<std::size_t>(1, concurrency)),
      lanes_(concurrency_) {
  workers_.reserve(concurrency_ - 1);
  for (std::size_t i = 0; i + 1 < concurrency_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    const std::int64_t n = env_int("PHOTODTN_THREADS", 0);
    if (n > 0) return static_cast<std::size_t>(std::min<std::int64_t>(n, 256));
    return static_cast<std::size_t>(
        std::max(1u, std::thread::hardware_concurrency()));
  }());
  return pool;
}

void ThreadPool::drain(Job& job, LaneCounters& lane) {
  // Wall-clock accounting is opt-in (PHOTODTN_OBS=1): scheduling remains
  // identical either way, the readings feed only the non-golden wallPerf
  // trace section (obs/chrome_trace.h).
  const bool timed = obs::wall_metrics_enabled();
  for (;;) {
    std::size_t chunk;
    {
      MutexLock lk(job.mu);
      if (job.next >= job.total) return;
      chunk = job.next++;
    }
    const std::int64_t t0 = timed ? obs::wall_now_ns() : 0;
    std::exception_ptr err;
    try {
      (*job.fn)(chunk);
    } catch (...) {
      err = std::current_exception();
    }
    if (timed) {
      const std::int64_t dt = obs::wall_now_ns() - t0;
      const std::uint64_t ns = dt > 0 ? static_cast<std::uint64_t>(dt) : 0;
      lane.chunks.fetch_add(1, std::memory_order_relaxed);
      lane.busy_ns.fetch_add(ns, std::memory_order_relaxed);
      std::size_t bucket = kTaskLatencyBoundsNs.size();
      for (std::size_t i = 0; i < kTaskLatencyBoundsNs.size(); ++i) {
        if (ns <= kTaskLatencyBoundsNs[i]) {
          bucket = i;
          break;
        }
      }
      latency_counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    }
    MutexLock lk(job.mu);
    if (err && !job.error) job.error = err;
    if (++job.done == job.total) job.all_done.notify_all();
  }
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats out;
  out.lanes.resize(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    out.lanes[i].chunks = lanes_[i].chunks.load(std::memory_order_relaxed);
    out.lanes[i].busy_ns = lanes_[i].busy_ns.load(std::memory_order_relaxed);
  }
  out.task_latency_bounds_ns.assign(kTaskLatencyBoundsNs.begin(),
                                    kTaskLatencyBoundsNs.end());
  out.task_latency_counts.resize(latency_counts_.size());
  for (std::size_t i = 0; i < latency_counts_.size(); ++i) {
    out.task_latency_counts[i] = latency_counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void ThreadPool::worker_loop(std::size_t lane) {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      // Predicate-free wait loop: the guarded reads stay in this scope, where
      // the capability analysis can see queue_mu_ is held.
      MutexLock lk(queue_mu_);
      while (!stopping_ && queue_.empty()) queue_cv_.wait(queue_mu_);
      if (queue_.empty()) return;  // stopping, nothing left to help with
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    drain(*job, lanes_[lane]);
  }
}

void ThreadPool::parallel_chunks(std::size_t chunks,
                                 const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  if (chunks == 1 || concurrency_ == 1) {
    // Inline fast path: ascending chunk order on the caller, no queue
    // traffic. This is also the PHOTODTN_THREADS=1 reference execution the
    // determinism tests compare the parallel runs against.
    for (std::size_t c = 0; c < chunks; ++c) fn(c);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->total = chunks;
  const std::size_t helpers = std::min(concurrency_ - 1, chunks - 1);
  {
    MutexLock lk(queue_mu_);
    for (std::size_t i = 0; i < helpers; ++i) queue_.push_back(job);
  }
  if (helpers == 1) {
    queue_cv_.notify_one();
  } else {
    queue_cv_.notify_all();
  }
  drain(*job, lanes_.back());  // the caller is always one of the executors
  MutexLock lk(job->mu);
  while (job->done != job->total) job->all_done.wait(job->mu);
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  PHOTODTN_CHECK_MSG(grain > 0, "parallel_for grain must be positive");
  const std::size_t chunks = (n + grain - 1) / grain;
  parallel_chunks(chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    body(begin, std::min(n, begin + grain));
  });
}

}  // namespace photodtn
