#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"
#include "util/env.h"

namespace photodtn {

ThreadPool::ThreadPool(std::size_t concurrency)
    : concurrency_(std::max<std::size_t>(1, concurrency)) {
  workers_.reserve(concurrency_ - 1);
  for (std::size_t i = 0; i + 1 < concurrency_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    const std::int64_t n = env_int("PHOTODTN_THREADS", 0);
    if (n > 0) return static_cast<std::size_t>(std::min<std::int64_t>(n, 256));
    return static_cast<std::size_t>(
        std::max(1u, std::thread::hardware_concurrency()));
  }());
  return pool;
}

void ThreadPool::drain(Job& job) {
  for (;;) {
    std::size_t chunk;
    {
      std::lock_guard<std::mutex> lk(job.mu);
      if (job.next >= job.total) return;
      chunk = job.next++;
    }
    std::exception_ptr err;
    try {
      (*job.fn)(chunk);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(job.mu);
    if (err && !job.error) job.error = err;
    if (++job.done == job.total) job.all_done.notify_all();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, nothing left to help with
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    drain(*job);
  }
}

void ThreadPool::parallel_chunks(std::size_t chunks,
                                 const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  if (chunks == 1 || concurrency_ == 1) {
    // Inline fast path: ascending chunk order on the caller, no queue
    // traffic. This is also the PHOTODTN_THREADS=1 reference execution the
    // determinism tests compare the parallel runs against.
    for (std::size_t c = 0; c < chunks; ++c) fn(c);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->total = chunks;
  const std::size_t helpers = std::min(concurrency_ - 1, chunks - 1);
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    for (std::size_t i = 0; i < helpers; ++i) queue_.push_back(job);
  }
  if (helpers == 1) {
    queue_cv_.notify_one();
  } else {
    queue_cv_.notify_all();
  }
  drain(*job);  // the caller is always one of the executors
  std::unique_lock<std::mutex> lk(job->mu);
  job->all_done.wait(lk, [&] { return job->done == job->total; });
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  PHOTODTN_CHECK_MSG(grain > 0, "parallel_for grain must be positive");
  const std::size_t chunks = (n + grain - 1) / grain;
  parallel_chunks(chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    body(begin, std::min(n, begin + grain));
  });
}

}  // namespace photodtn
