#include "util/args.h"

#include <stdexcept>

namespace photodtn {

Args Args::parse(int argc, const char* const* argv) {
  Args out;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok.size() > 1 && tok[0] == '-' && tok.rfind("--", 0) != 0) {
      // A single-dash token would otherwise pass as a positional and the
      // intended option would silently keep its default.
      throw std::runtime_error("unknown option '" + tok +
                               "' (options are spelled --name)");
    }
    if (tok.rfind("--", 0) == 0) {
      const std::string key = tok.substr(2);
      if (key.empty()) throw std::runtime_error("empty option name '--'");
      const bool has_value =
          i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0;
      if (has_value) {
        out.options_[key] = argv[++i];
      } else {
        out.options_[key] = "true";  // boolean flag
      }
    } else if (out.command_.empty()) {
      out.command_ = tok;
    } else {
      out.positionals_.push_back(tok);
    }
  }
  return out;
}

std::string Args::get(const std::string& key, const std::string& fallback) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t fallback) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  // stoll itself throws bare invalid_argument/out_of_range ("stoll") —
  // useless in a CLI error; re-raise with the option name and value.
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("option --" + key + " expects an integer, got '" +
                             it->second + "'");
  }
}

double Args::get_double(const std::string& key, double fallback) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("option --" + key + " expects a number, got '" +
                             it->second + "'");
  }
}

std::vector<std::string> Args::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_)
    if (!queried_.count(key)) out.push_back(key);
  return out;
}

}  // namespace photodtn
