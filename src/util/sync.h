// Annotated synchronization primitives: std::mutex / std::condition_variable
// with Clang thread-safety capability attributes attached (see
// util/thread_annotations.h). libstdc++'s std::mutex carries no capability
// attributes, so code that wants the static analysis must hold its state
// behind these wrappers; under PHOTODTN_ANALYSIS=ON (Clang) any access to a
// PHOTODTN_GUARDED_BY field without the lock held is a compile error.
//
// Zero-overhead by construction: Mutex is exactly a std::mutex, MutexLock is
// exactly a lock_guard-shaped RAII scope. CondVar uses
// std::condition_variable_any so it can wait on the annotated Mutex directly
// (the predicate-free wait keeps guarded-field reads in the caller's scope,
// where the analysis can see the lock is held — see ThreadPool::worker_loop).
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace photodtn {

/// A std::mutex the thread-safety analysis can reason about.
class PHOTODTN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PHOTODTN_ACQUIRE() { mu_.lock(); }
  void unlock() PHOTODTN_RELEASE() { mu_.unlock(); }
  bool try_lock() PHOTODTN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock scope over Mutex (lock_guard with capability annotations).
class PHOTODTN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PHOTODTN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PHOTODTN_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. wait() atomically releases and
/// re-acquires the mutex, so callers annotate nothing beyond holding the
/// lock: the capability is held on entry and on return, which is exactly
/// PHOTODTN_REQUIRES. Use the predicate-free form in a caller-side loop so
/// the guarded predicate reads stay visible to the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; `mu` must be held (released while blocked,
  /// re-acquired before returning). Spurious wakeups possible — always call
  /// from a `while (!predicate)` loop.
  void wait(Mutex& mu) PHOTODTN_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait and
    // release ownership again before returning, so the caller's MutexLock
    // remains the sole unlocker.
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // condition_variable (not _any): wait() adapts the annotated Mutex's inner
  // std::mutex, keeping the fast native-handle path.
  std::condition_variable cv_;
};

}  // namespace photodtn
