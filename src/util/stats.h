// Streaming statistics used by the experiment runner to average metric
// series across simulation runs and report confidence intervals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace photodtn {

/// Welford online mean/variance accumulator. Numerically stable; O(1) space.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderr_mean() const noexcept;
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_half_width() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A column of RunningStats, one per sample index — used for averaging
/// time-series curves (same sampling grid) across runs.
class SeriesStats {
 public:
  explicit SeriesStats(std::size_t length = 0) : cells_(length) {}

  /// Adds one run's series. The series must have the configured length
  /// (the first call fixes the length if constructed empty).
  void add_series(const std::vector<double>& series);

  std::size_t length() const noexcept { return cells_.size(); }
  std::size_t runs() const noexcept { return runs_; }
  std::vector<double> means() const;
  std::vector<double> ci95() const;
  const RunningStats& at(std::size_t i) const { return cells_.at(i); }

 private:
  std::vector<RunningStats> cells_;
  std::size_t runs_ = 0;
};

/// Pearson correlation of two equal-length samples; 0 if degenerate.
double pearson_correlation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace photodtn
