#include "obs/chrome_trace.h"

#include <string>

#include "persist/file_io.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace photodtn::obs {

namespace {

void write_event(JsonWriter& w, const TraceEvent& ev) {
  w.begin_object();
  w.kv("name", ev.name);
  if (ev.cat[0] != '\0') w.kv("cat", ev.cat);
  w.kv("ph", std::string(1, static_cast<char>(ev.phase)));
  // 1 simulation second == 1e6 trace "microseconds": the timeline is the
  // simulation clock, so the document never depends on wall time.
  w.kv("ts", ev.ts_s * 1e6);
  if (ev.phase == TraceEvent::Phase::kComplete) w.kv("dur", ev.dur_s * 1e6);
  if (ev.phase == TraceEvent::Phase::kInstant) w.kv("s", "t");  // thread scope
  w.kv("pid", std::uint64_t{0});
  w.kv("tid", static_cast<std::int64_t>(ev.tid));
  if (ev.nargs > 0) {
    w.key("args").begin_object();
    for (std::uint32_t i = 0; i < ev.nargs; ++i) {
      w.kv(ev.args[i].first, ev.args[i].second);
    }
    w.end_object();
  }
  w.end_object();
}

void write_wall_perf(JsonWriter& w, const WallPerfSection& wall) {
  w.begin_object();
  w.key("lanes").begin_array();
  for (const WallPerfSection::Lane& lane : wall.lanes) {
    w.begin_object();
    w.kv("name", lane.name);
    w.kv("chunks", lane.chunks);
    w.kv("busy_ns", lane.busy_ns);
    w.end_object();
  }
  w.end_array();
  w.key("taskLatencyNs").begin_object();
  w.key("bounds").begin_array();
  for (std::uint64_t b : wall.task_latency_bounds_ns) w.value(b);
  w.end_array();
  w.key("counts").begin_array();
  for (std::uint64_t c : wall.task_latency_counts) w.value(c);
  w.end_array();
  w.end_object();
  w.end_object();
}

}  // namespace

WallPerfSection wall_section_from_pool(const ThreadPoolStats& stats) {
  WallPerfSection out;
  out.lanes.reserve(stats.lanes.size());
  for (std::size_t i = 0; i < stats.lanes.size(); ++i) {
    WallPerfSection::Lane lane;
    // The last lane aggregates the calling threads (see util/thread_pool.h).
    lane.name = i + 1 == stats.lanes.size() ? "callers"
                                            : "worker-" + std::to_string(i);
    lane.chunks = stats.lanes[i].chunks;
    lane.busy_ns = stats.lanes[i].busy_ns;
    out.lanes.push_back(std::move(lane));
  }
  out.task_latency_bounds_ns = stats.task_latency_bounds_ns;
  out.task_latency_counts = stats.task_latency_counts;
  return out;
}

std::string chrome_trace_json(std::span<const TraceEvent> events,
                              const MetricsSnapshot* metrics,
                              const WallPerfSection* wall) {
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  // A process-name metadata record so viewers label the single pid.
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", std::uint64_t{0});
  w.key("args").begin_object();
  w.kv("name", "photodtn simulation (ts = sim microseconds)");
  w.end_object();
  w.end_object();
  for (const TraceEvent& ev : events) write_event(w, ev);
  w.end_array();
  if (metrics != nullptr && !metrics->empty()) {
    w.key("photodtnMetrics");
    metrics->write_json(w);
  }
  if (wall != nullptr) {
    w.key("wallPerf");
    write_wall_perf(w, *wall);
  }
  w.end_object();
  return w.str();
}

bool write_chrome_trace(const std::string& path, std::span<const TraceEvent> events,
                        const MetricsSnapshot* metrics, const WallPerfSection* wall) {
  return persist::checked_write_file(path,
                                     chrome_trace_json(events, metrics, wall) + "\n");
}

}  // namespace photodtn::obs
