// Lock-cheap in-sim metrics registry: named counters, gauges, and
// fixed-bucket histograms behind typed index handles. Registration returns a
// handle once (typically at init/ctor time); the hot-path record calls are a
// bounds-checked array add — no hashing, no locking, no allocation.
//
// Determinism: counters and histograms are integer-valued (std::uint64_t),
// so merging snapshots is commutative and associative bit-for-bit —
// experiment runs merged in seed order produce the same JSON regardless of
// how many pool workers computed them (PHOTODTN_THREADS=1/4 byte-identity).
// Gauges are double-valued and merged by summation; the JSON sink divides by
// the run count, which is order-sensitive in the last ulp — gauges are for
// advisory readings, never for golden-compared output.
//
// A registry belongs to one simulation run (like SelectionEnvironment:
// thread-compatible, not thread-safe). Cross-run aggregation happens on
// immutable MetricsSnapshot values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "persist/fwd.h"
#include "util/check.h"

namespace photodtn {

class JsonWriter;

namespace obs {

/// Immutable distribution summary: counts[i] counts recorded values v with
/// v <= bounds[i] (and > bounds[i-1]); counts.back() is the overflow bucket
/// (v > bounds.back()). All integer arithmetic, so merge order is invisible.
struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // meaningful only when count > 0
  std::uint64_t max = 0;

  /// Adds `other` in. Bounds must match (a name always registers the same
  /// buckets); throws std::logic_error otherwise.
  void merge(const HistogramSnapshot& other);
};

/// Point-in-time copy of a registry (or a merge of several).
struct MetricsSnapshot {
  std::uint64_t runs = 0;  // registries merged in (1 for a fresh snapshot)
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;  // summed; sink divides by runs
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const noexcept {
    return runs == 0 && counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Accumulates `other` (same-name entries add; new names insert).
  void merge(const MetricsSnapshot& other);

  /// Emits {"runs":N,"counters":{...},"gauges":{...},"histograms":{...}}
  /// with keys in sorted (map) order — deterministic given equal contents.
  void write_json(JsonWriter& w) const;
};

class MetricsRegistry {
 public:
  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  struct Counter {
    std::uint32_t idx = kInvalidIndex;
    bool valid() const noexcept { return idx != kInvalidIndex; }
  };
  struct Gauge {
    std::uint32_t idx = kInvalidIndex;
    bool valid() const noexcept { return idx != kInvalidIndex; }
  };
  struct Histogram {
    std::uint32_t idx = kInvalidIndex;
    bool valid() const noexcept { return idx != kInvalidIndex; }
  };

  /// Find-or-create by name; re-registering a name returns the same handle.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bounds` must be non-empty and strictly increasing; re-registering a
  /// histogram name must pass identical bounds.
  Histogram histogram(std::string_view name, std::vector<std::uint64_t> bounds);

  /// Geometric bucket boundaries: first, first*factor, ... (n values,
  /// rounded, strictly increasing — equal neighbors are bumped by one).
  static std::vector<std::uint64_t> exp_bounds(std::uint64_t first, double factor,
                                               std::size_t n);

  void add(Counter c, std::uint64_t n = 1) {
    PHOTODTN_DCHECK_MSG(c.idx < counter_values_.size(), "invalid counter handle");
    counter_values_[c.idx] += n;
  }
  std::uint64_t value(Counter c) const {
    PHOTODTN_DCHECK_MSG(c.idx < counter_values_.size(), "invalid counter handle");
    return counter_values_[c.idx];
  }

  void set(Gauge g, double v) {
    PHOTODTN_DCHECK_MSG(g.idx < gauge_values_.size(), "invalid gauge handle");
    gauge_values_[g.idx] = v;
  }
  double value(Gauge g) const {
    PHOTODTN_DCHECK_MSG(g.idx < gauge_values_.size(), "invalid gauge handle");
    return gauge_values_[g.idx];
  }

  void record(Histogram h, std::uint64_t v);

  std::size_t counter_count() const noexcept { return counter_names_.size(); }
  std::size_t gauge_count() const noexcept { return gauge_names_.size(); }
  std::size_t histogram_count() const noexcept { return histogram_names_.size(); }

  /// Copies the current values out (snapshot.runs == 1).
  MetricsSnapshot snapshot() const;

  /// Deep invariant check (audit builds / tests): name/value arrays aligned,
  /// names unique and non-empty, histogram bounds strictly increasing and
  /// bucket counts consistent with count/sum/min/max. Throws
  /// std::logic_error on violation.
  void audit() const;

 private:
  // Checkpoint/restore writes values (and histogram states) by name via the
  // public find-or-create handles; serialization sorts by name, so handle
  // indices — which depend on registration order — never leak into output.
  friend struct persist::StateAccess;

  struct HistogramState {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
  };

  std::vector<std::string> counter_names_;
  std::vector<std::uint64_t> counter_values_;
  std::vector<std::string> gauge_names_;
  std::vector<double> gauge_values_;
  std::vector<std::string> histogram_names_;
  std::vector<HistogramState> histograms_;
};

}  // namespace obs
}  // namespace photodtn
