#include "obs/trace_recorder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/check.h"

namespace photodtn::obs {

namespace {
std::atomic<std::uint64_t> g_next_recorder_serial{1};
}  // namespace

TraceRecorder::TraceRecorder()
    : serial_(g_next_recorder_serial.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::Buffer& TraceRecorder::local() {
  // One cached (recorder, buffer) pair per thread: the common case — a
  // simulation run recording from one or a few pool threads — hits the
  // cache; alternating between recorders just registers an extra buffer,
  // which merged() folds in like any other.
  struct Cache {
    const TraceRecorder* rec = nullptr;
    std::uint64_t serial = 0;
    Buffer* buf = nullptr;
  };
  thread_local Cache cache;
  if (cache.rec == this && cache.serial == serial_) return *cache.buf;
  MutexLock lk(mu_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer* buf = buffers_.back().get();
  cache = Cache{this, serial_, buf};
  return *buf;
}

void TraceRecorder::push(TraceEvent ev, std::initializer_list<TraceArg> args) {
  PHOTODTN_DCHECK_MSG(args.size() <= TraceEvent::kMaxArgs,
                      "too many trace event args");
  ev.nargs = 0;
  for (const TraceArg& a : args) {
    if (ev.nargs >= TraceEvent::kMaxArgs) break;
    ev.args[ev.nargs++] = a;
  }
  ev.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  local().events.push_back(ev);
}

void TraceRecorder::complete(const char* name, const char* cat, double ts_s,
                             double dur_s, std::int32_t tid,
                             std::initializer_list<TraceArg> args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kComplete;
  ev.name = name;
  ev.cat = cat;
  ev.ts_s = ts_s;
  ev.dur_s = dur_s;
  ev.tid = tid;
  push(ev, args);
}

void TraceRecorder::instant(const char* name, const char* cat, double ts_s,
                            std::int32_t tid, std::initializer_list<TraceArg> args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.name = name;
  ev.cat = cat;
  ev.ts_s = ts_s;
  ev.tid = tid;
  push(ev, args);
}

void TraceRecorder::counter(const char* name, double ts_s, double value) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kCounter;
  ev.name = name;
  ev.cat = "counter";
  ev.ts_s = ts_s;
  push(ev, {{"value", value}});
}

const char* TraceRecorder::intern(const std::string& s) {
  MutexLock lk(mu_);
  return interned_.insert(s).first->c_str();
}

void TraceRecorder::restore_events(std::vector<TraceEvent> events,
                                   std::uint64_t next_seq) {
  MutexLock lk(mu_);
  // Empty the registered buffers rather than destroying them: a thread-local
  // cache in local() may still point into this list, and an emptied buffer
  // stays a valid append target while a freed one would dangle.
  for (auto& b : buffers_) b->events.clear();
  buffers_.push_back(std::make_unique<Buffer>());
  buffers_.back()->events = std::move(events);
  next_seq_.store(next_seq, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::merged() const {
  std::vector<TraceEvent> out;
  {
    MutexLock lk(mu_);
    std::size_t total = 0;
    for (const auto& b : buffers_) total += b->events.size();
    out.reserve(total);
    for (const auto& b : buffers_) {
      out.insert(out.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& x, const TraceEvent& y) {
    if (x.ts_s != y.ts_s) return x.ts_s < y.ts_s;
    return x.seq < y.seq;
  });
  return out;
}

std::size_t TraceRecorder::event_count() const {
  MutexLock lk(mu_);
  std::size_t total = 0;
  for (const auto& b : buffers_) total += b->events.size();
  return total;
}

void TraceRecorder::audit() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::logic_error(std::string("TraceRecorder::audit: ") + what);
  };
  MutexLock lk(mu_);
  std::unordered_set<std::uint64_t> seqs;
  for (const auto& b : buffers_) {
    check(b != nullptr, "null buffer");
    for (const TraceEvent& ev : b->events) {
      check(ev.name != nullptr && ev.name[0] != '\0', "unnamed event");
      check(ev.cat != nullptr, "null category");
      check(std::isfinite(ev.ts_s), "non-finite timestamp");
      check(std::isfinite(ev.dur_s) && ev.dur_s >= 0.0, "bad duration");
      check(ev.phase == TraceEvent::Phase::kComplete || ev.dur_s == 0.0,
            "duration on a non-span event");
      check(ev.nargs <= TraceEvent::kMaxArgs, "arg count out of range");
      for (std::uint32_t i = 0; i < ev.nargs; ++i) {
        check(ev.args[i].first != nullptr && ev.args[i].first[0] != '\0',
              "unnamed event arg");
      }
      check(seqs.insert(ev.seq).second, "duplicate sequence stamp");
    }
  }
}

}  // namespace photodtn::obs
