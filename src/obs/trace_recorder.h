// Deterministic span/instant recorder feeding the Chrome trace sink.
//
// Events are stamped with *simulation time* (seconds), never wall-clock —
// the rule that keeps traces byte-identical across reruns and thread counts
// (wall-clock perf data lives in the separate, non-golden wallPerf section;
// see obs/chrome_trace.h and the banned-wallclock lint rule). Each recording
// thread appends to its own buffer (registered once through a thread-local
// cache keyed by the recorder's unique serial, so a recorder living at a
// reused address never inherits a stale buffer); merged() interleaves the
// buffers by (timestamp, global sequence stamp). The sequence stamp is a
// relaxed atomic fetch-add: within one thread it preserves program order,
// and in the deterministic pool regime (each chunk records only its own
// work, chunk -> data mapping fixed by the caller) any cross-thread
// interleaving difference is confined to identical-timestamp events from
// independent chunks — which the simulator never emits, as all its events
// come from the single event loop thread.
//
// Event names and categories are `const char*` and must point to storage
// outliving the recorder (string literals in practice): recording must not
// allocate.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "persist/fwd.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace photodtn::obs {

/// One numeric event argument (rendered into the Chrome "args" object).
using TraceArg = std::pair<const char*, double>;

struct TraceEvent {
  enum class Phase : char {
    kComplete = 'X',  // span: ts + dur
    kInstant = 'i',
    kCounter = 'C',
  };
  static constexpr std::size_t kMaxArgs = 4;

  Phase phase = Phase::kInstant;
  const char* name = "";
  const char* cat = "";
  double ts_s = 0.0;   // simulation seconds
  double dur_s = 0.0;  // kComplete only
  std::int32_t tid = 0;
  std::uint64_t seq = 0;  // global emission stamp; merge tie-break
  std::uint32_t nargs = 0;
  std::array<TraceArg, kMaxArgs> args{};
};

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// A span covering [ts_s, ts_s + dur_s] of simulation time.
  void complete(const char* name, const char* cat, double ts_s, double dur_s,
                std::int32_t tid, std::initializer_list<TraceArg> args = {});

  /// A point event at ts_s.
  void instant(const char* name, const char* cat, double ts_s, std::int32_t tid,
               std::initializer_list<TraceArg> args = {});

  /// A counter track sample ("C" phase) at ts_s.
  void counter(const char* name, double ts_s, double value);

  /// All events from every thread's buffer, sorted by (ts_s, seq).
  std::vector<TraceEvent> merged() const;

  std::size_t event_count() const;

  /// Deep invariant check (audit builds / tests): buffers non-null, every
  /// event has a name, finite non-negative duration, args within kMaxArgs,
  /// and sequence stamps unique across buffers. Throws std::logic_error on
  /// violation.
  void audit() const;

 private:
  // Checkpoint reads merged() + the sequence clock; restore re-injects the
  // events through restore_events(). Snapshot strings become interned copies
  // (the recorder normally borrows string literals and owns nothing).
  friend struct persist::StateAccess;

  struct Buffer {
    std::vector<TraceEvent> events;
  };

  Buffer& local();
  void push(TraceEvent ev, std::initializer_list<TraceArg> args);

  /// Returns a stable pointer to an owned copy of `s`, deduplicated — event
  /// name/cat/arg-key fields restored from a snapshot point here instead of
  /// at string literals.
  const char* intern(const std::string& s);
  /// Replaces every buffer with one holding `events` (whose string fields
  /// must already be interned or literal) and sets the sequence clock, so
  /// post-restore recording continues with fresh unique stamps.
  void restore_events(std::vector<TraceEvent> events, std::uint64_t next_seq);

  const std::uint64_t serial_;  // distinguishes recorders at reused addresses
  std::atomic<std::uint64_t> next_seq_{0};
  /// Guards the buffer registry (registration in local(), enumeration in
  /// merged()/event_count()/audit()). Buffer *contents* are single-writer:
  /// each Buffer is appended to only by the thread that registered it, so
  /// appends happen outside the lock by design (see local()).
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_ PHOTODTN_GUARDED_BY(mu_);
  // Owned storage for restored event strings; std::set node addresses are
  // stable, so the const char* handed out by intern() stay valid for the
  // recorder's lifetime.
  std::set<std::string> interned_ PHOTODTN_GUARDED_BY(mu_);
};

}  // namespace photodtn::obs
