// The repo's only sanctioned wall-clock access point. Simulation logic must
// never read a real clock (the banned-wallclock lint rule enforces it:
// std::chrono::*_clock::now() is allowed only under src/obs/ and bench/);
// components that want wall-clock *perf* readings — the thread pool's lane
// utilization and task-latency buckets — call through here, and the data
// only ever surfaces in the non-golden wallPerf trace section.
//
// Header-only so photodtn_util can time itself without linking photodtn_obs
// (obs depends on util, not the other way around).
#pragma once

#include <chrono>
#include <cstdint>

#include "util/env.h"

namespace photodtn::obs {

/// Monotonic wall-clock nanoseconds (epoch unspecified; differences only).
inline std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Whether wall-clock perf collection is on (PHOTODTN_OBS=1), read once:
/// with it off, instrumented hot loops pay a single predictable branch.
inline bool wall_metrics_enabled() {
  static const bool on = env_int("PHOTODTN_OBS", 0) != 0;
  return on;
}

}  // namespace photodtn::obs
