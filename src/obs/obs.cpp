#include "obs/obs.h"

#include "util/env.h"

namespace photodtn::obs {

ObsConfig ObsConfig::from_env() {
  ObsConfig cfg;
  const bool on = env_int("PHOTODTN_OBS", 0) != 0;
  cfg.metrics = on;
  cfg.trace = on;
  return cfg;
}

ObsConfig ObsConfig::merged_with_env() const {
  const ObsConfig env = from_env();
  ObsConfig out = *this;
  out.metrics = out.metrics || env.metrics;
  out.trace = out.trace || env.trace;
  return out;
}

}  // namespace photodtn::obs
