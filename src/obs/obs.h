// Observability bundle: one MetricsRegistry + one TraceRecorder per
// simulation run, switched by ObsConfig.
//
// Cost tiers:
//   * Always-on: the simulator's own counters (SimCounters) live on the
//     registry unconditionally — a handle-indexed add costs what the old
//     struct increment cost, and golden outputs depend on them.
//   * PHOTODTN_OBS=1 (or ObsConfig::metrics): scheme/selection metrics,
//     histograms, and the metrics JSON sink. Disabled cost: one branch per
//     instrumentation site.
//   * ObsConfig::trace (implied by a --trace-out sink): simulation-time
//     span/instant events. Additionally compiled out entirely when the
//     build sets PHOTODTN_OBS_SPANS=0 (cmake -DPHOTODTN_OBS_SPANS=OFF).
#pragma once

#include <vector>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace photodtn::obs {

struct ObsConfig {
  bool metrics = false;  // scheme/selection metrics + metrics JSON sink
  bool trace = false;    // simulation-time trace events

  /// PHOTODTN_OBS=1 turns metrics AND tracing on; unset/0 leaves both off.
  static ObsConfig from_env();

  /// This config with the environment switch OR-ed in (env can enable,
  /// never disable — explicit sinks stay wired regardless of PHOTODTN_OBS).
  ObsConfig merged_with_env() const;
};

/// What a run hands back: a metrics snapshot (empty when metrics were off)
/// and the deterministically merged trace events (empty when tracing off).
struct ObsReport {
  MetricsSnapshot metrics;
  std::vector<TraceEvent> trace_events;
};

class Obs {
 public:
  Obs() = default;
  explicit Obs(ObsConfig cfg) : cfg_(cfg) {}

  bool metrics_on() const noexcept { return cfg_.metrics; }
  bool trace_on() const noexcept { return cfg_.trace; }

  MetricsRegistry& registry() noexcept { return registry_; }
  const MetricsRegistry& registry() const noexcept { return registry_; }
  TraceRecorder& trace() noexcept { return trace_; }
  const TraceRecorder& trace() const noexcept { return trace_; }

  void audit() const {
    registry_.audit();
    trace_.audit();
  }

 private:
  ObsConfig cfg_;
  MetricsRegistry registry_;
  TraceRecorder trace_;
};

}  // namespace photodtn::obs

// Compile-time span tier: PHOTODTN_OBS_SPANS=0 strips every trace-emission
// site to a no-op (the runtime metrics tier is unaffected).
#ifndef PHOTODTN_OBS_SPANS
#define PHOTODTN_OBS_SPANS 1
#endif

/// Emits a trace event when `obs_ptr` is non-null and tracing is on:
///   PHOTODTN_OBS_TRACE(ctx.obs(), instant("capture", "photo", t, node, {...}));
#if PHOTODTN_OBS_SPANS
#define PHOTODTN_OBS_TRACE(obs_ptr, call)                          \
  do {                                                             \
    ::photodtn::obs::Obs* photodtn_obs_trace_o_ = (obs_ptr);       \
    if (photodtn_obs_trace_o_ != nullptr &&                        \
        photodtn_obs_trace_o_->trace_on()) {                       \
      photodtn_obs_trace_o_->trace().call;                         \
    }                                                              \
  } while (0)
#else
#define PHOTODTN_OBS_TRACE(obs_ptr, call) \
  do {                                    \
  } while (0)
#endif
