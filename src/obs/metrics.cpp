#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/json.h"

namespace photodtn::obs {

namespace {

std::uint32_t find_or_add(std::vector<std::string>& names, std::string_view name) {
  PHOTODTN_CHECK_MSG(!name.empty(), "metric names must be non-empty");
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  PHOTODTN_CHECK_MSG(names.size() < MetricsRegistry::kInvalidIndex,
                     "metric registry overflow");
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

void check_bounds(const std::vector<std::uint64_t>& bounds) {
  PHOTODTN_CHECK_MSG(!bounds.empty(), "histogram bounds must be non-empty");
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    PHOTODTN_CHECK_MSG(bounds[i - 1] < bounds[i],
                       "histogram bounds must be strictly increasing");
  }
}

}  // namespace

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0 && other.counts.empty()) return;
  if (counts.empty()) {
    *this = other;
    return;
  }
  if (bounds != other.bounds || counts.size() != other.counts.size()) {
    throw std::logic_error("HistogramSnapshot::merge: bucket layouts differ");
  }
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  if (other.count > 0) {
    min = count > 0 ? std::min(min, other.min) : other.min;
    max = count > 0 ? std::max(max, other.max) : other.max;
  }
  count += other.count;
  sum += other.sum;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  runs += other.runs;
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
}

void MetricsSnapshot::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("runs", runs);
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) {
    w.kv(name, runs > 0 ? v / static_cast<double>(runs) : v);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (std::uint64_t b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (std::uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    if (h.count > 0) {
      w.kv("min", h.min);
      w.kv("max", h.max);
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

MetricsRegistry::Counter MetricsRegistry::counter(std::string_view name) {
  const std::uint32_t idx = find_or_add(counter_names_, name);
  if (idx == counter_values_.size()) counter_values_.push_back(0);
  return Counter{idx};
}

MetricsRegistry::Gauge MetricsRegistry::gauge(std::string_view name) {
  const std::uint32_t idx = find_or_add(gauge_names_, name);
  if (idx == gauge_values_.size()) gauge_values_.push_back(0.0);
  return Gauge{idx};
}

MetricsRegistry::Histogram MetricsRegistry::histogram(
    std::string_view name, std::vector<std::uint64_t> bounds) {
  check_bounds(bounds);
  const std::uint32_t idx = find_or_add(histogram_names_, name);
  if (idx == histograms_.size()) {
    HistogramState st;
    st.counts.assign(bounds.size() + 1, 0);
    st.bounds = std::move(bounds);
    histograms_.push_back(std::move(st));
  } else {
    PHOTODTN_CHECK_MSG(histograms_[idx].bounds == bounds,
                       "histogram re-registered with different bounds");
  }
  return Histogram{idx};
}

std::vector<std::uint64_t> MetricsRegistry::exp_bounds(std::uint64_t first,
                                                       double factor,
                                                       std::size_t n) {
  PHOTODTN_CHECK_MSG(n > 0 && factor > 1.0 && first > 0,
                     "exp_bounds needs n > 0, factor > 1, first > 0");
  std::vector<std::uint64_t> out;
  out.reserve(n);
  double v = static_cast<double>(first);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t b = static_cast<std::uint64_t>(std::llround(v));
    if (!out.empty() && b <= out.back()) b = out.back() + 1;
    out.push_back(b);
    v *= factor;
  }
  return out;
}

void MetricsRegistry::record(Histogram h, std::uint64_t v) {
  PHOTODTN_DCHECK_MSG(h.idx < histograms_.size(), "invalid histogram handle");
  HistogramState& st = histograms_[h.idx];
  std::size_t bucket = st.bounds.size();  // overflow by default
  for (std::size_t i = 0; i < st.bounds.size(); ++i) {
    if (v <= st.bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++st.counts[bucket];
  st.min = st.count > 0 ? std::min(st.min, v) : v;
  st.max = st.count > 0 ? std::max(st.max, v) : v;
  ++st.count;
  st.sum += v;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.runs = 1;
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    s.counters.emplace(counter_names_[i], counter_values_[i]);
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    s.gauges.emplace(gauge_names_[i], gauge_values_[i]);
  }
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    const HistogramState& st = histograms_[i];
    HistogramSnapshot h;
    h.bounds = st.bounds;
    h.counts = st.counts;
    h.count = st.count;
    h.sum = st.sum;
    h.min = st.min;
    h.max = st.max;
    s.histograms.emplace(histogram_names_[i], std::move(h));
  }
  return s;
}

void MetricsRegistry::audit() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::logic_error(std::string("MetricsRegistry::audit: ") + what);
  };
  auto unique_names = [&](const std::vector<std::string>& names) {
    std::unordered_set<std::string_view> seen;
    for (const std::string& n : names) {
      check(!n.empty(), "empty metric name");
      check(seen.insert(n).second, "duplicate metric name");
    }
  };
  unique_names(counter_names_);
  unique_names(gauge_names_);
  unique_names(histogram_names_);
  check(counter_names_.size() == counter_values_.size(), "counter arrays misaligned");
  check(gauge_names_.size() == gauge_values_.size(), "gauge arrays misaligned");
  check(histogram_names_.size() == histograms_.size(), "histogram arrays misaligned");
  for (const HistogramState& st : histograms_) {
    check(!st.bounds.empty(), "histogram with no bounds");
    check(st.counts.size() == st.bounds.size() + 1, "bucket count mismatch");
    for (std::size_t i = 1; i < st.bounds.size(); ++i) {
      check(st.bounds[i - 1] < st.bounds[i], "bounds not strictly increasing");
    }
    std::uint64_t total = 0;
    for (std::uint64_t c : st.counts) total += c;
    check(total == st.count, "bucket totals disagree with count");
    if (st.count > 0) {
      check(st.min <= st.max, "min above max");
      check(st.sum >= st.min && st.sum >= st.max, "sum below an observed value");
    } else {
      check(st.sum == 0, "empty histogram with non-zero sum");
    }
  }
}

}  // namespace photodtn::obs
