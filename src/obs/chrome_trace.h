// Chrome trace-event sink: renders merged TraceEvents (plus an optional
// metrics snapshot and an optional wall-clock perf section) into the JSON
// format chrome://tracing and Perfetto open directly.
//
// Timestamps: Chrome wants microseconds; we map 1 simulation second to 1e6
// "microseconds", so the trace timeline *is* the simulation clock. Because
// every event is keyed by simulation time and the merge order is
// deterministic, the emitted document is byte-identical across reruns and
// thread counts. The only wall-clock data allowed anywhere near a trace is
// the `wallPerf` top-level section (thread-pool lane utilization and task
// latency) — explicitly opt-in, never golden-compared.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace photodtn {

struct ThreadPoolStats;

namespace obs {

/// Non-golden wall-clock perf data rendered under the "wallPerf" key.
struct WallPerfSection {
  struct Lane {
    std::string name;
    std::uint64_t chunks = 0;
    std::uint64_t busy_ns = 0;
  };
  std::vector<Lane> lanes;
  std::vector<std::uint64_t> task_latency_bounds_ns;
  std::vector<std::uint64_t> task_latency_counts;  // bounds + 1 (overflow)
};

/// Converts a thread pool's lane/latency readings into a wallPerf section.
WallPerfSection wall_section_from_pool(const ThreadPoolStats& stats);

/// The full document: {"displayTimeUnit":"ms","traceEvents":[...]} plus
/// optional "photodtnMetrics" and "wallPerf" top-level keys.
std::string chrome_trace_json(std::span<const TraceEvent> events,
                              const MetricsSnapshot* metrics = nullptr,
                              const WallPerfSection* wall = nullptr);

/// Writes chrome_trace_json to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path, std::span<const TraceEvent> events,
                        const MetricsSnapshot* metrics = nullptr,
                        const WallPerfSection* wall = nullptr);

}  // namespace obs
}  // namespace photodtn
