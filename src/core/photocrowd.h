// photodtn public API facade.
//
// The library implements the resource-aware photo crowdsourcing framework of
// Wu et al. (ICDCS'16). The facade wraps the three things a downstream
// application needs:
//
//   PhotoCrowdTask    — a crowdsourcing event: PoI list + model parameters;
//                       evaluates the coverage of photo collections.
//   DeviceAgent       — per-device decision logic: which photos to keep and
//                       which to hand over during a contact (the Section III
//                       algorithm, usable outside the simulator).
//   (simulation)      — sim/experiment.h replays whole traces for studies.
//
// Everything here is metadata-only: photos are (location, range, fov,
// orientation) tuples plus size/time bookkeeping; pixels never enter the
// framework.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "coverage/coverage_map.h"
#include "coverage/coverage_model.h"
#include "coverage/coverage_value.h"
#include "coverage/photo.h"
#include "coverage/poi.h"
#include "selection/greedy_selector.h"
#include "selection/metadata_cache.h"

namespace photodtn {

/// A crowdsourcing event issued by a command center.
class PhotoCrowdTask {
 public:
  /// `effective_angle` is theta (radians); `deadline_s` bounds the event
  /// (informational: coverage queries do not depend on it).
  PhotoCrowdTask(PoiList pois, double effective_angle, double deadline_s = 0.0);

  const CoverageModel& model() const noexcept { return model_; }
  double deadline() const noexcept { return deadline_s_; }

  /// Photo coverage (Definition 1) of a photo collection.
  CoverageValue coverage(std::span<const PhotoMeta> photos) const;

  /// Point coverage fraction and mean per-PoI aspect radians of a collection.
  std::pair<double, double> normalized_coverage(std::span<const PhotoMeta> photos) const;

  /// True if the photo covers at least one PoI (worth carrying at all).
  bool is_relevant(const PhotoMeta& photo) const;

 private:
  CoverageModel model_;
  double deadline_s_;
};

/// A contact peer's view used by DeviceAgent::plan_contact.
struct PeerView {
  NodeId id = -1;
  double delivery_prob = 0.0;
  std::vector<PhotoMeta> photos;
  std::uint64_t storage_bytes = 0;
};

/// What a device should do after a contact: the ordered list of photos it
/// should end up holding, and which of those must be fetched from the peer.
struct ContactDecision {
  std::vector<PhotoId> keep_in_order;
  std::vector<PhotoId> fetch_from_peer;
};

/// On-device decision logic for one participant.
class DeviceAgent {
 public:
  DeviceAgent(const PhotoCrowdTask& task, NodeId self, std::uint64_t storage_bytes,
              double p_thld = 0.8);

  NodeId id() const noexcept { return self_; }

  /// Records metadata learned from a peer (own snapshot or gossip).
  void learn_metadata(MetadataEntry entry);

  /// Decides which photos this device should keep and which to fetch when
  /// meeting `peer`, given this device's current photos and delivery
  /// probability. Pure planning: the caller performs the transfers.
  ContactDecision plan_contact(std::span<const PhotoMeta> own_photos,
                               double own_delivery_prob, const PeerView& peer,
                               double now) const;

  /// Picks the photos worth keeping from `pool` under the storage budget,
  /// against everything this device knows (cached metadata), assuming the
  /// device delivers with `own_delivery_prob`.
  std::vector<PhotoId> select_storage(std::span<const PhotoMeta> pool,
                                      double own_delivery_prob, double now) const;

  const MetadataCache& cache() const noexcept { return cache_; }

 private:
  std::vector<NodeCollection> environment(NodeId exclude_a, NodeId exclude_b,
                                          double now) const;

  const PhotoCrowdTask* task_;
  NodeId self_;
  std::uint64_t storage_bytes_;
  MetadataCache cache_;
  GreedySelector selector_;
};

}  // namespace photodtn
