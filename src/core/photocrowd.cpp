#include "core/photocrowd.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/thread_pool.h"

namespace photodtn {

PhotoCrowdTask::PhotoCrowdTask(PoiList pois, double effective_angle, double deadline_s)
    : model_(std::move(pois), effective_angle), deadline_s_(deadline_s) {}

CoverageValue PhotoCrowdTask::coverage(std::span<const PhotoMeta> photos) const {
  CoverageMap map(model_);
  for (const PhotoMeta& p : photos) map.add(model_.footprint_cached(p));
  return map.total();
}

std::pair<double, double> PhotoCrowdTask::normalized_coverage(
    std::span<const PhotoMeta> photos) const {
  CoverageMap map(model_);
  for (const PhotoMeta& p : photos) map.add(model_.footprint_cached(p));
  return {map.normalized_point(), map.normalized_aspect()};
}

bool PhotoCrowdTask::is_relevant(const PhotoMeta& photo) const {
  return model_.footprint_cached(photo).relevant();
}

namespace {

/// Device agents run the same batched gain sweeps as OurScheme; the shared
/// pool bounds total threads no matter how many agents a simulation holds,
/// and the sweep output is bit-identical for any pool size.
GreedyParams pooled_greedy_params() {
  GreedyParams params;
  params.pool = &ThreadPool::shared();
  return params;
}

}  // namespace

DeviceAgent::DeviceAgent(const PhotoCrowdTask& task, NodeId self,
                         std::uint64_t storage_bytes, double p_thld)
    : task_(&task),
      self_(self),
      storage_bytes_(storage_bytes),
      cache_(p_thld),
      selector_(pooled_greedy_params()) {}

void DeviceAgent::learn_metadata(MetadataEntry entry) {
  PHOTODTN_CHECK_MSG(entry.owner != self_, "a device is the authority on itself");
  cache_.update(std::move(entry));
}

std::vector<NodeCollection> DeviceAgent::environment(NodeId exclude_a, NodeId exclude_b,
                                                     double now) const {
  std::vector<NodeCollection> env;
  for (const MetadataEntry* e : cache_.valid_entries(now)) {
    if (e->owner == exclude_a || e->owner == exclude_b) continue;
    NodeCollection nc;
    nc.node = e->owner;
    nc.delivery_prob = e->owner == kCommandCenter ? 1.0 : e->delivery_prob;
    for (const PhotoMeta& p : e->photos) {
      const PhotoFootprint& fp = task_->model().footprint_cached(p);
      if (fp.relevant()) nc.footprints.push_back(&fp);
    }
    if (!nc.footprints.empty() && nc.delivery_prob > 0.0) env.push_back(std::move(nc));
  }
  return env;
}

std::vector<PhotoId> DeviceAgent::select_storage(std::span<const PhotoMeta> pool,
                                                 double own_delivery_prob,
                                                 double now) const {
  const auto env = environment(self_, self_, now);
  SelectionEnvironment senv(task_->model(), env);
  GreedyPhase phase(senv,
                    std::max(own_delivery_prob, selector_.params().p_floor));
  return selector_.select(task_->model(), pool, storage_bytes_, phase);
}

ContactDecision DeviceAgent::plan_contact(std::span<const PhotoMeta> own_photos,
                                          double own_delivery_prob, const PeerView& peer,
                                          double now) const {
  // Union pool, deduplicated by id, own photos first.
  std::vector<PhotoMeta> pool(own_photos.begin(), own_photos.end());
  std::unordered_set<PhotoId> own_ids;
  for (const PhotoMeta& p : pool) own_ids.insert(p.id);
  for (const PhotoMeta& p : peer.photos)
    if (!own_ids.contains(p.id)) pool.push_back(p);

  const auto env = environment(self_, peer.id, now);
  const ReallocationPlan plan = selector_.reallocate(
      task_->model(), pool, self_, own_delivery_prob, storage_bytes_, peer.id,
      peer.delivery_prob, peer.storage_bytes, env);

  ContactDecision d;
  d.keep_in_order = self_ == plan.first ? plan.first_target : plan.second_target;
  for (const PhotoId id : d.keep_in_order)
    if (!own_ids.contains(id)) d.fetch_from_peer.push_back(id);
  return d;
}

}  // namespace photodtn
