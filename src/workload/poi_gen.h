// PoI list generators.
#pragma once

#include "coverage/poi.h"
#include "util/rng.h"

namespace photodtn {

/// `n` PoIs uniformly random in the square [0, region]^2, unit weight
/// (Section V-A).
PoiList generate_uniform_pois(std::size_t n, double region_m, Rng& rng);

/// PoIs clustered around `centers` hotspots (e.g. damaged blocks in a
/// disaster scenario); `spread_m` is the per-cluster normal std-dev.
/// Positions are clamped to the region.
PoiList generate_clustered_pois(std::size_t n, double region_m, std::size_t centers,
                                double spread_m, Rng& rng);

/// Assigns each PoI a weight uniform in [w_min, w_max] (the weighted
/// extension of Section II-C).
void randomize_weights(PoiList& pois, double w_min, double w_max, Rng& rng);

}  // namespace photodtn
