// ScenarioConfig bundles every Table I parameter so experiments and
// examples share one source of truth.
#pragma once

#include <cstdint>

#include "dtn/simulator.h"
#include "geometry/angle.h"
#include "trace/synthetic_trace.h"

namespace photodtn {

struct ScenarioConfig {
  /// 6300 m x 6300 m region (Section V-A).
  double region_m = 6300.0;
  std::size_t num_pois = 250;
  /// Effective angle theta (Table I: 30 degrees).
  double effective_angle = deg_to_rad(30.0);

  /// Photo workload: 250 photos/h across all participants, 4 MB each.
  double photo_rate_per_hour = 250.0;
  std::uint64_t photo_size_bytes = 4ULL * 1000 * 1000;
  /// Field-of-view uniform in [30°, 60°] (Table I).
  double fov_min = deg_to_rad(30.0);
  double fov_max = deg_to_rad(60.0);
  /// Coverage range r = c * cot(fov/2) with c uniform in [50, 100] m.
  double range_coeff_min_m = 50.0;
  double range_coeff_max_m = 100.0;

  /// Metadata validity threshold P_thld (Table I: 0.8).
  double p_thld = 0.8;
  /// Section II-C binary quality gate: photos below this quality never
  /// count as covering anything (0 admits every photo, the paper's default).
  double quality_threshold = 0.0;

  SyntheticTraceConfig trace;
  SimConfig sim;

  /// Presets reproducing the two Table I columns. `seed` controls trace,
  /// workload, and simulator randomness together.
  static ScenarioConfig mit(std::uint64_t seed);
  static ScenarioConfig cambridge(std::uint64_t seed);
};

}  // namespace photodtn
