// Sensor noise model substituting for the Android prototype of Section IV:
// metadata is never perfect — GPS adds meters of error and the fused
// accelerometer/magnetometer/gyroscope orientation is within ~5 degrees.
// Applying this to ground-truth metadata exercises the same pipeline as the
// paper's prototype and lets the ablation bench quantify the effect of
// sensor error on coverage.
#pragma once

#include "coverage/photo.h"
#include "util/rng.h"

namespace photodtn {

struct SensorNoise {
  /// GPS horizontal error std-dev; the paper cites common errors of
  /// 5–8.5 m, so the default sigma reproduces that band.
  double gps_sigma_m = 4.0;
  /// Maximum orientation error (uniform in [-max, +max]); Section IV-A
  /// reports a 5-degree maximum after sensor fusion.
  double orientation_max_err_rad = 5.0 * 3.14159265358979323846 / 180.0;
  /// Relative error on the field-of-view reported by the camera API.
  double fov_rel_sigma = 0.0;
};

/// Returns a copy of `truth` with sensor noise applied (same id/size/time).
PhotoMeta apply_sensor_noise(const PhotoMeta& truth, const SensorNoise& noise, Rng& rng);

}  // namespace photodtn
