#include "workload/photo_gen.h"

#include <algorithm>
#include <cmath>

#include "coverage/photo.h"
#include "geometry/angle.h"
#include "util/check.h"

namespace photodtn {

PhotoGenerator::PhotoGenerator(const ScenarioConfig& cfg, const PoiList& pois,
                               PhotoGenOptions options)
    : cfg_(&cfg), pois_(&pois), options_(options) {
  PHOTODTN_CHECK(options_.aimed_fraction >= 0.0 && options_.aimed_fraction <= 1.0);
}

Vec2 PhotoGenerator::pick_location(double t, NodeId node, Rng& rng) {
  if (options_.mobility != nullptr) return options_.mobility->position(node, t);
  if (options_.location_hotspots == 0)
    return {rng.uniform(0.0, cfg_->region_m), rng.uniform(0.0, cfg_->region_m)};
  if (hotspots_.empty()) {
    for (std::size_t h = 0; h < options_.location_hotspots; ++h)
      hotspots_.push_back({rng.uniform(0.0, cfg_->region_m),
                           rng.uniform(0.0, cfg_->region_m)});
  }
  const Vec2 hub = hotspots_[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(hotspots_.size()) - 1))];
  return {std::clamp(hub.x + rng.normal(0.0, options_.hotspot_sigma_m), 0.0,
                     cfg_->region_m),
          std::clamp(hub.y + rng.normal(0.0, options_.hotspot_sigma_m), 0.0,
                     cfg_->region_m)};
}

PhotoMeta PhotoGenerator::make_photo(double t, NodeId node, Rng& rng) {
  PhotoMeta p;
  p.id = next_id_++;
  p.taken_by = node;
  p.taken_at = t;
  p.size_bytes = cfg_->photo_size_bytes;
  p.location = pick_location(t, node, rng);
  p.fov = rng.uniform(cfg_->fov_min, cfg_->fov_max);
  const double c = rng.uniform(cfg_->range_coeff_min_m, cfg_->range_coeff_max_m);
  p.range = coverage_range_from_fov(p.fov, c);
  p.quality = options_.low_quality_fraction > 0.0 &&
                      rng.bernoulli(options_.low_quality_fraction)
                  ? rng.uniform(0.0, 0.5)
                  : rng.uniform(0.5, 1.0);

  p.orientation = rng.uniform(0.0, kTwoPi);
  if (options_.aimed_fraction > 0.0 && rng.bernoulli(options_.aimed_fraction)) {
    // Aim at a random PoI within the search radius, if any.
    std::vector<const PointOfInterest*> nearby;
    for (const PointOfInterest& poi : *pois_)
      if (poi.location.distance_to(p.location) <= options_.aim_search_radius_m)
        nearby.push_back(&poi);
    if (!nearby.empty()) {
      const auto* target = nearby[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nearby.size()) - 1))];
      const double heading = (target->location - p.location).heading();
      p.orientation = normalize_angle(heading + rng.uniform(-deg_to_rad(5.0),
                                                            deg_to_rad(5.0)));
    }
  }
  if (options_.sensor_noise) {
    truth_.emplace(p.id, p);
    p = apply_sensor_noise(p, *options_.sensor_noise, rng);
  }
  return p;
}

PhotoEvent PhotoGenerator::generate_one(double t, NodeId node, Rng& rng) {
  return PhotoEvent{t, node, make_photo(t, node, rng)};
}

void apply_mit_calibration(ScenarioConfig& scenario, PhotoGenOptions& photos) {
  scenario.trace.mean_on_s = 8.0 * 3600.0;
  scenario.trace.mean_off_s = 16.0 * 3600.0;
  photos.location_hotspots = 20;
  photos.hotspot_sigma_m = 450.0;
}

std::vector<PhotoEvent> PhotoGenerator::generate(double horizon_s,
                                                 NodeId num_participants, Rng& rng) {
  PHOTODTN_CHECK(num_participants >= 1 && horizon_s > 0.0);
  PHOTODTN_CHECK(options_.burst_size >= 1);
  const double burst = static_cast<double>(options_.burst_size);
  // Burst arrivals at rate/burst keep the long-run photo rate unchanged.
  const double rate_per_s = cfg_->photo_rate_per_hour / 3600.0 / burst;
  std::vector<PhotoEvent> events;
  if (rate_per_s <= 0.0) return events;
  double t = rng.exponential(rate_per_s);
  while (t < horizon_s) {
    const auto node =
        static_cast<NodeId>(rng.uniform_int(1, static_cast<std::int64_t>(num_participants)));
    const PhotoEvent first{t, node, make_photo(t, node, rng)};
    events.push_back(first);
    for (std::uint32_t k = 1; k < options_.burst_size; ++k) {
      const double tk = t + rng.uniform(0.0, options_.burst_spread_s);
      if (tk >= horizon_s) break;
      PhotoMeta p = make_photo(tk, node, rng);
      // Burst photos cluster on the first shot's pose.
      p.location = first.photo.location +
                   Vec2{rng.normal(0.0, options_.burst_location_jitter_m),
                        rng.normal(0.0, options_.burst_location_jitter_m)};
      p.orientation = normalize_angle(
          first.photo.orientation +
          rng.uniform(-options_.burst_orientation_jitter_rad,
                      options_.burst_orientation_jitter_rad));
      events.push_back(PhotoEvent{tk, node, p});
    }
    t += rng.exponential(rate_per_s);
  }
  std::sort(events.begin(), events.end(),
            [](const PhotoEvent& x, const PhotoEvent& y) { return x.time < y.time; });
  return events;
}

}  // namespace photodtn
