#include "workload/poi_gen.h"

#include <algorithm>

#include "util/check.h"

namespace photodtn {

PoiList generate_uniform_pois(std::size_t n, double region_m, Rng& rng) {
  PHOTODTN_CHECK(region_m > 0.0);
  PoiList pois;
  pois.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PointOfInterest poi;
    poi.id = static_cast<std::int32_t>(i);
    poi.location = {rng.uniform(0.0, region_m), rng.uniform(0.0, region_m)};
    pois.push_back(std::move(poi));
  }
  return pois;
}

PoiList generate_clustered_pois(std::size_t n, double region_m, std::size_t centers,
                                double spread_m, Rng& rng) {
  PHOTODTN_CHECK(centers >= 1);
  std::vector<Vec2> hubs;
  hubs.reserve(centers);
  for (std::size_t c = 0; c < centers; ++c)
    hubs.push_back({rng.uniform(0.0, region_m), rng.uniform(0.0, region_m)});
  PoiList pois;
  pois.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 hub = hubs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(centers) - 1))];
    PointOfInterest poi;
    poi.id = static_cast<std::int32_t>(i);
    poi.location = {std::clamp(hub.x + rng.normal(0.0, spread_m), 0.0, region_m),
                    std::clamp(hub.y + rng.normal(0.0, spread_m), 0.0, region_m)};
    pois.push_back(std::move(poi));
  }
  return pois;
}

void randomize_weights(PoiList& pois, double w_min, double w_max, Rng& rng) {
  PHOTODTN_CHECK(w_min > 0.0 && w_max >= w_min);
  for (PointOfInterest& p : pois) p.weight = rng.uniform(w_min, w_max);
}

}  // namespace photodtn
