#include "workload/scenario.h"

namespace photodtn {

namespace {

ScenarioConfig base(std::uint64_t seed, SyntheticTraceConfig trace_cfg) {
  ScenarioConfig cfg;
  cfg.trace = trace_cfg;
  cfg.trace.seed = seed;
  cfg.sim.seed = seed ^ 0xDA7A5EEDULL;
  cfg.sim.prophet = ProphetConfig{};  // Table I: 0.75 / 0.25 / 0.98
  cfg.sim.node_storage_bytes = 600ULL * 1000 * 1000;
  cfg.sim.bandwidth_bytes_per_s = 2.0e6;
  return cfg;
}

}  // namespace

ScenarioConfig ScenarioConfig::mit(std::uint64_t seed) {
  ScenarioConfig cfg = base(seed, SyntheticTraceConfig::mit_reality(seed));
  cfg.sim.sample_interval_s = 10.0 * 3600.0;  // 30 samples across 300 h
  return cfg;
}

ScenarioConfig ScenarioConfig::cambridge(std::uint64_t seed) {
  ScenarioConfig cfg = base(seed, SyntheticTraceConfig::cambridge06(seed));
  cfg.sim.sample_interval_s = 10.0 * 3600.0;  // 20 samples across 200 h
  return cfg;
}

}  // namespace photodtn
