#include "workload/sensor_model.h"

#include <algorithm>

#include "geometry/angle.h"

namespace photodtn {

PhotoMeta apply_sensor_noise(const PhotoMeta& truth, const SensorNoise& noise, Rng& rng) {
  PhotoMeta out = truth;
  if (noise.gps_sigma_m > 0.0) {
    out.location.x += rng.normal(0.0, noise.gps_sigma_m);
    out.location.y += rng.normal(0.0, noise.gps_sigma_m);
  }
  if (noise.orientation_max_err_rad > 0.0) {
    out.orientation = normalize_angle(
        out.orientation +
        rng.uniform(-noise.orientation_max_err_rad, noise.orientation_max_err_rad));
  }
  if (noise.fov_rel_sigma > 0.0) {
    const double factor = std::max(0.5, 1.0 + rng.normal(0.0, noise.fov_rel_sigma));
    out.fov = std::clamp(out.fov * factor, deg_to_rad(5.0), deg_to_rad(175.0));
  }
  return out;
}

}  // namespace photodtn
