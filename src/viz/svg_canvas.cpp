#include "viz/svg_canvas.h"

#include <cmath>
#include <iomanip>

#include "geometry/angle.h"
#include "persist/file_io.h"
#include "util/check.h"

namespace photodtn {

namespace {

std::string style_attrs(const SvgStyle& s) {
  std::ostringstream os;
  os << "fill=\"" << s.fill << "\" stroke=\"" << s.stroke << "\" stroke-width=\""
     << s.stroke_width << "\"";
  if (s.opacity < 1.0) os << " opacity=\"" << s.opacity << "\"";
  return os.str();
}

}  // namespace

SvgCanvas::SvgCanvas(Vec2 world_min, Vec2 world_max, double width_px, double margin_px)
    : world_min_(world_min), world_max_(world_max), margin_(margin_px),
      width_px_(width_px) {
  PHOTODTN_CHECK_MSG(world_max.x > world_min.x && world_max.y > world_min.y,
                     "world rectangle must have positive extent");
  PHOTODTN_CHECK_MSG(width_px > 2 * margin_px, "canvas too small for its margin");
  scale_ = (width_px - 2 * margin_px) / (world_max.x - world_min.x);
  height_px_ = (world_max.y - world_min.y) * scale_ + 2 * margin_px;
  body_ << std::fixed << std::setprecision(2);
}

Vec2 SvgCanvas::to_pixels(Vec2 world) const noexcept {
  return {margin_ + (world.x - world_min_.x) * scale_,
          // SVG y grows downward.
          height_px_ - margin_ - (world.y - world_min_.y) * scale_};
}

void SvgCanvas::circle(Vec2 center, double radius_m, const SvgStyle& style) {
  const Vec2 p = to_pixels(center);
  body_ << "<circle cx=\"" << p.x << "\" cy=\"" << p.y << "\" r=\""
        << radius_m * scale_ << "\" " << style_attrs(style) << "/>\n";
}

void SvgCanvas::line(Vec2 from, Vec2 to, const SvgStyle& style) {
  const Vec2 a = to_pixels(from);
  const Vec2 b = to_pixels(to);
  body_ << "<line x1=\"" << a.x << "\" y1=\"" << a.y << "\" x2=\"" << b.x
        << "\" y2=\"" << b.y << "\" " << style_attrs(style) << "/>\n";
}

void SvgCanvas::sector(Vec2 apex, double range_m, double fov_rad,
                       double orientation_rad, const SvgStyle& style) {
  const Vec2 a = to_pixels(apex);
  const double r = range_m * scale_;
  const double lo = orientation_rad - fov_rad / 2.0;
  const double hi = orientation_rad + fov_rad / 2.0;
  // Pixel-space endpoints (y flipped).
  const double x1 = a.x + r * std::cos(lo);
  const double y1 = a.y - r * std::sin(lo);
  const double x2 = a.x + r * std::cos(hi);
  const double y2 = a.y - r * std::sin(hi);
  const int large = fov_rad > std::numbers::pi ? 1 : 0;
  // Sweep flag 0: with flipped y, counter-clockwise world arcs are drawn
  // "negative" in SVG space.
  body_ << "<path d=\"M " << a.x << ' ' << a.y << " L " << x1 << ' ' << y1 << " A "
        << r << ' ' << r << " 0 " << large << " 0 " << x2 << ' ' << y2 << " Z\" "
        << style_attrs(style) << "/>\n";
}

void SvgCanvas::aspect_ring(Vec2 center, double radius_m, const ArcSet& covered,
                            double thickness_m, const SvgStyle& style) {
  const Vec2 c = to_pixels(center);
  const double r = radius_m * scale_;
  for (const auto& [lo, hi] : covered.intervals()) {
    if (hi - lo >= kTwoPi - 1e-9) {
      // Full ring: a circle outline at ring thickness.
      SvgStyle ring = style;
      ring.fill = "none";
      ring.stroke = style.fill != "none" ? style.fill : style.stroke;
      ring.stroke_width = thickness_m * scale_;
      body_ << "<circle cx=\"" << c.x << "\" cy=\"" << c.y << "\" r=\"" << r
            << "\" " << style_attrs(ring) << "/>\n";
      continue;
    }
    const double x1 = c.x + r * std::cos(lo);
    const double y1 = c.y - r * std::sin(lo);
    const double x2 = c.x + r * std::cos(hi);
    const double y2 = c.y - r * std::sin(hi);
    const int large = (hi - lo) > std::numbers::pi ? 1 : 0;
    SvgStyle ring = style;
    ring.fill = "none";
    ring.stroke = style.fill != "none" ? style.fill : style.stroke;
    ring.stroke_width = thickness_m * scale_;
    body_ << "<path d=\"M " << x1 << ' ' << y1 << " A " << r << ' ' << r << " 0 "
          << large << " 0 " << x2 << ' ' << y2 << "\" " << style_attrs(ring)
          << "/>\n";
  }
}

void SvgCanvas::text(Vec2 pos, const std::string& label, double size_px,
                     const std::string& color) {
  const Vec2 p = to_pixels(pos);
  body_ << "<text x=\"" << p.x << "\" y=\"" << p.y << "\" font-size=\"" << size_px
        << "\" fill=\"" << color << "\" font-family=\"sans-serif\">" << label
        << "</text>\n";
}

std::string SvgCanvas::str() const {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
     << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px_
     << "\" height=\"" << height_px_ << "\" viewBox=\"0 0 " << width_px_ << ' '
     << height_px_ << "\">\n"
     << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
     << body_.str() << "</svg>\n";
  return os.str();
}

bool SvgCanvas::write_file(const std::string& path) const {
  return persist::checked_write_file(path, str());
}

}  // namespace photodtn
