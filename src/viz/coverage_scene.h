// Renders a crowdsourcing scene — PoIs, photo wedges, and covered aspect
// rings — as the Fig. 2(b)/Fig. 3-style map.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "coverage/coverage_map.h"
#include "coverage/coverage_model.h"
#include "viz/svg_canvas.h"

namespace photodtn {

struct SceneOptions {
  double width_px = 800.0;
  /// Radius of the aspect ring drawn around each PoI, in meters.
  double ring_radius_m = 40.0;
  double ring_thickness_m = 12.0;
  /// Color per photo owner (cycled); photos by unknown owners use gray.
  std::vector<std::string> palette{"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
                                   "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"};
  bool label_pois = true;
};

/// Draws PoIs (crosses + covered aspect rings from `covered`, which may be
/// null for "no coverage overlay") and the photos as camera wedges colored
/// by owner. The canvas bounds are fitted to the drawn geometry.
SvgCanvas render_coverage_scene(const CoverageModel& model,
                                std::span<const PhotoMeta> photos,
                                const CoverageMap* covered,
                                const SceneOptions& options = {});

}  // namespace photodtn
