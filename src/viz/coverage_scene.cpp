#include "viz/coverage_scene.h"

#include <algorithm>

#include "util/check.h"

namespace photodtn {

SvgCanvas render_coverage_scene(const CoverageModel& model,
                                std::span<const PhotoMeta> photos,
                                const CoverageMap* covered,
                                const SceneOptions& options) {
  // Fit the canvas to everything drawn: PoIs (plus their rings) and photo
  // sectors.
  PHOTODTN_CHECK_MSG(!model.pois().empty() || !photos.empty(),
                     "nothing to render");
  Vec2 lo{1e18, 1e18}, hi{-1e18, -1e18};
  auto extend = [&](Vec2 p, double pad) {
    lo.x = std::min(lo.x, p.x - pad);
    lo.y = std::min(lo.y, p.y - pad);
    hi.x = std::max(hi.x, p.x + pad);
    hi.y = std::max(hi.y, p.y + pad);
  };
  for (const PointOfInterest& poi : model.pois())
    extend(poi.location, options.ring_radius_m * 2.0);
  for (const PhotoMeta& p : photos) extend(p.location, p.range);

  SvgCanvas canvas(lo, hi, options.width_px);

  // Photo wedges first (background), colored by owner.
  for (const PhotoMeta& p : photos) {
    SvgStyle wedge;
    const auto owner = static_cast<std::size_t>(std::max<NodeId>(p.taken_by, 0));
    wedge.fill = options.palette[owner % options.palette.size()];
    wedge.stroke = wedge.fill;
    wedge.opacity = 0.25;
    canvas.sector(p.location, p.range, p.fov, p.orientation, wedge);
    // Optical-axis line, like the dashed viewing directions in Fig. 3.
    SvgStyle axis;
    axis.stroke = wedge.fill;
    axis.stroke_width = 0.8;
    canvas.line(p.location,
                p.location + Vec2::from_heading(p.orientation) * p.range, axis);
  }

  // PoIs: cross markers plus the covered aspect rings.
  for (std::size_t i = 0; i < model.pois().size(); ++i) {
    const PointOfInterest& poi = model.pois()[i];
    SvgStyle cross;
    cross.stroke = "black";
    cross.stroke_width = 1.5;
    const double s = options.ring_radius_m * 0.3;
    canvas.line(poi.location - Vec2{s, 0}, poi.location + Vec2{s, 0}, cross);
    canvas.line(poi.location - Vec2{0, s}, poi.location + Vec2{0, s}, cross);
    if (covered != nullptr) {
      SvgStyle ring;
      ring.fill = "#444444";
      ring.opacity = 0.7;
      canvas.aspect_ring(poi.location, options.ring_radius_m, covered->poi_arcs(i),
                         options.ring_thickness_m, ring);
    }
    if (options.label_pois) {
      canvas.text(poi.location + Vec2{s * 1.5, s * 1.5},
                  "PoI " + std::to_string(poi.id));
    }
  }
  return canvas;
}

}  // namespace photodtn
