// Minimal SVG emitter for coverage scenes (the Fig. 2/3-style maps). World
// coordinates are meters with y growing north; the canvas flips y for SVG.
// No external dependencies; output is a standalone .svg file.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

#include "geometry/arc_set.h"
#include "geometry/vec2.h"

namespace photodtn {

struct SvgStyle {
  std::string fill = "none";
  std::string stroke = "black";
  double stroke_width = 1.0;  // in pixels
  double opacity = 1.0;
};

class SvgCanvas {
 public:
  /// Maps the world rectangle [min, max] onto a pixel canvas of the given
  /// width; height follows the aspect ratio. `margin_px` padding all around.
  SvgCanvas(Vec2 world_min, Vec2 world_max, double width_px = 800.0,
            double margin_px = 20.0);

  void circle(Vec2 center, double radius_m, const SvgStyle& style);
  void line(Vec2 from, Vec2 to, const SvgStyle& style);
  /// Camera wedge: the Fig. 1(a)/2(b) "V" shape.
  void sector(Vec2 apex, double range_m, double fov_rad, double orientation_rad,
              const SvgStyle& style);
  /// Covered aspect intervals drawn as ring segments of `radius_m` around
  /// `center` (the gray areas of Fig. 3).
  void aspect_ring(Vec2 center, double radius_m, const ArcSet& covered,
                   double thickness_m, const SvgStyle& style);
  void text(Vec2 pos, const std::string& label, double size_px = 12.0,
            const std::string& color = "black");

  /// Complete SVG document.
  std::string str() const;
  bool write_file(const std::string& path) const;

  /// Pixel position of a world point (exposed for tests).
  Vec2 to_pixels(Vec2 world) const noexcept;

 private:
  Vec2 world_min_;
  Vec2 world_max_;
  double scale_;
  double margin_;
  double width_px_;
  double height_px_;
  std::ostringstream body_;
};

}  // namespace photodtn
