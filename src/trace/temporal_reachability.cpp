#include "trace/temporal_reachability.h"

#include <limits>

#include "util/check.h"

namespace photodtn {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<double> earliest_arrival(const ContactTrace& trace, NodeId target) {
  // One forward sweep per origin: O(nodes x contacts). Traces here are tens
  // of thousands of contacts at most, so the simple exact form wins over a
  // cleverer single-sweep formulation.
  std::vector<double> arrival(static_cast<std::size_t>(trace.num_nodes()), kInf);
  for (NodeId n = 0; n < trace.num_nodes(); ++n)
    arrival[static_cast<std::size_t>(n)] =
        earliest_arrival_from(trace, n, 0.0, target);
  return arrival;
}

double earliest_arrival_from(const ContactTrace& trace, NodeId origin,
                             double origin_time, NodeId target) {
  PHOTODTN_CHECK(origin >= 0 && origin < trace.num_nodes());
  PHOTODTN_CHECK(target >= 0 && target < trace.num_nodes());
  if (origin == target) return origin_time;
  std::vector<double> holds(static_cast<std::size_t>(trace.num_nodes()), kInf);
  holds[static_cast<std::size_t>(origin)] = origin_time;
  // Contacts are sorted by (start, a, b); transfers happen at contact start,
  // matching the simulator's processing order exactly (including chains of
  // equal-time contacts, which resolve in the same deterministic order).
  for (const Contact& c : trace.contacts()) {
    double& ha = holds[static_cast<std::size_t>(c.a)];
    double& hb = holds[static_cast<std::size_t>(c.b)];
    if (ha <= c.start && c.start < hb) hb = c.start;
    if (hb <= c.start && c.start < ha) ha = c.start;
  }
  return holds[static_cast<std::size_t>(target)];
}

std::vector<bool> reachable_to_center(
    const ContactTrace& trace, const std::vector<std::pair<NodeId, double>>& items) {
  // Backward sweep: deadline[n] = the latest time t such that data present
  // at n at time <= t still reaches the center through later contacts.
  std::vector<double> deadline(static_cast<std::size_t>(trace.num_nodes()),
                               -kInf);
  deadline[static_cast<std::size_t>(kCommandCenter)] = kInf;
  const auto& contacts = trace.contacts();
  for (auto it = contacts.rbegin(); it != contacts.rend(); ++it) {
    const Contact& c = *it;
    double& da = deadline[static_cast<std::size_t>(c.a)];
    double& db = deadline[static_cast<std::size_t>(c.b)];
    // Data at b existing by c.start hops to a at c.start; it still makes it
    // if a's deadline admits time c.start.
    if (da >= c.start) db = std::max(db, c.start);
    if (db >= c.start) da = std::max(da, c.start);
  }
  std::vector<bool> out(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& [node, t] = items[i];
    PHOTODTN_CHECK(node >= 0 && node < trace.num_nodes());
    out[i] = deadline[static_cast<std::size_t>(node)] >= t;
  }
  return out;
}

}  // namespace photodtn
