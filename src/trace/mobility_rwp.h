// Random-waypoint mobility over the paper's 6300 m x 6300 m region.
// Provides (i) a geometrically grounded contact trace (contacts happen when
// two participants are within radio range at a scan instant) and (ii) a
// position query so photo workloads can be taken from where the
// photographer actually stands. Used by examples and ablation benches; the
// figure benches use the synthetic trace generator to mirror the paper's
// trace-driven setup.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/vec2.h"
#include "trace/contact_trace.h"

namespace photodtn {

struct RwpConfig {
  NodeId num_participants = 40;
  double region_m = 6300.0;
  double duration_s = 100.0 * 3600.0;
  /// Walking-speed band in m/s.
  double speed_min = 1.0;
  double speed_max = 2.0;
  /// Uniform pause at each waypoint, [0, pause_max_s].
  double pause_max_s = 900.0;
  /// Radio range for contact detection (Bluetooth/WiFi-Direct class).
  double comm_range_m = 50.0;
  /// Sampling step for contact detection (device scan interval).
  double scan_interval_s = 120.0;

  double gateway_fraction = 0.05;
  double gateway_mean_interval_s = 2.0 * 3600.0;
  double gateway_contact_duration_s = 600.0;

  std::uint64_t seed = 1;
};

class RwpMobility {
 public:
  explicit RwpMobility(const RwpConfig& cfg);

  /// Position of a participant (1..N) at time t, clamped to [0, duration].
  Vec2 position(NodeId participant, double t) const;

  /// Scans trajectories at the configured interval and emits the contact
  /// trace (plus scheduled gateway contacts with the command center).
  ContactTrace extract_contacts() const;

  const std::vector<NodeId>& gateways() const noexcept { return gateways_; }
  const RwpConfig& config() const noexcept { return cfg_; }

 private:
  struct Knot {
    double time;
    Vec2 pos;
  };

  RwpConfig cfg_;
  /// Per-participant piecewise-linear trajectories (index 0 unused; the
  /// command center does not move on the field).
  std::vector<std::vector<Knot>> trajectories_;
  std::vector<NodeId> gateways_;
};

}  // namespace photodtn
