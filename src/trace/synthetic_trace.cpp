#include "trace/synthetic_trace.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace photodtn {

SyntheticTraceConfig SyntheticTraceConfig::mit_reality(std::uint64_t seed) {
  SyntheticTraceConfig cfg;
  cfg.num_participants = 97;
  cfg.duration_s = 300.0 * 3600.0;
  cfg.scan_interval_s = 300.0;  // 5-minute Bluetooth scans
  cfg.seed = seed;
  return cfg;
}

SyntheticTraceConfig SyntheticTraceConfig::cambridge06(std::uint64_t seed) {
  SyntheticTraceConfig cfg;
  cfg.num_participants = 54;
  cfg.duration_s = 200.0 * 3600.0;
  cfg.scan_interval_s = 120.0;  // 2-minute scans
  // Cambridge06 (Haggle iMotes) is a denser trace: smaller population in
  // closer quarters.
  cfg.base_pair_rate_per_hour = 0.03;
  cfg.seed = seed;
  return cfg;
}

namespace {

std::vector<double> activity_levels(const SyntheticTraceConfig& cfg, Rng& rng) {
  std::vector<double> act(static_cast<std::size_t>(cfg.num_participants));
  for (auto& a : act) {
    // Lognormal with unit median; normalize mean to 1 so base_pair_rate is
    // interpretable as the average-pair rate.
    a = std::exp(rng.normal(0.0, cfg.activity_sigma));
  }
  const double mean_correction = std::exp(0.5 * cfg.activity_sigma * cfg.activity_sigma);
  for (auto& a : act) a /= mean_correction;
  return act;
}

}  // namespace

namespace {

/// Per-node availability schedule: sorted "on" intervals covering [0, T].
class Availability {
 public:
  Availability(const SyntheticTraceConfig& cfg, Rng& rng) {
    if (cfg.mean_on_s <= 0.0) return;  // always on
    const double duty = cfg.mean_on_s / (cfg.mean_on_s + cfg.mean_off_s);
    double t = 0.0;
    bool on = rng.bernoulli(duty);
    while (t < cfg.duration_s) {
      const double len =
          rng.exponential(1.0 / (on ? cfg.mean_on_s : cfg.mean_off_s));
      if (on) on_intervals_.push_back({t, t + len});
      t += len;
      on = !on;
    }
    cycled_ = true;
  }

  bool is_on(double t) const {
    if (!cycled_) return true;
    auto it = std::upper_bound(
        on_intervals_.begin(), on_intervals_.end(), t,
        [](double v, const std::pair<double, double>& iv) { return v < iv.first; });
    if (it == on_intervals_.begin()) return false;
    return t < std::prev(it)->second;
  }

 private:
  bool cycled_ = false;
  std::vector<std::pair<double, double>> on_intervals_;
};

}  // namespace

std::vector<NodeId> synthetic_gateways(const SyntheticTraceConfig& cfg) {
  Rng rng(cfg.seed);
  Rng gw_rng = rng.split("gateways");
  const auto n = cfg.num_participants;
  auto count = static_cast<NodeId>(
      std::max(1.0, std::round(cfg.gateway_fraction * static_cast<double>(n))));
  std::vector<NodeId> ids(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i + 1;
  gw_rng.shuffle(ids);
  ids.resize(static_cast<std::size_t>(count));
  std::sort(ids.begin(), ids.end());
  return ids;
}

ContactTrace generate_synthetic_trace(const SyntheticTraceConfig& cfg) {
  PHOTODTN_CHECK(cfg.num_participants >= 2);
  PHOTODTN_CHECK(cfg.duration_s > 0.0 && cfg.scan_interval_s > 0.0);

  Rng root(cfg.seed);
  Rng act_rng = root.split("activity");
  Rng pair_rng = root.split("pairs");
  Rng gw_time_rng = root.split("gateway-times");
  Rng avail_rng = root.split("availability");

  const std::vector<double> act = activity_levels(cfg, act_rng);
  std::vector<Availability> avail;
  avail.reserve(static_cast<std::size_t>(cfg.num_participants) + 1);
  for (NodeId n = 0; n <= cfg.num_participants; ++n) {
    Rng node_rng = avail_rng.split("node-" + std::to_string(n));
    // The command center (node 0) is always reachable when a gateway is up.
    if (n == kCommandCenter) {
      SyntheticTraceConfig always_on = cfg;
      always_on.mean_on_s = 0.0;
      avail.emplace_back(always_on, node_rng);
    } else {
      avail.emplace_back(cfg, node_rng);
    }
  }
  auto both_on = [&](NodeId a, NodeId b, double t) {
    return avail[static_cast<std::size_t>(a)].is_on(t) &&
           avail[static_cast<std::size_t>(b)].is_on(t);
  };
  const double base_rate = cfg.base_pair_rate_per_hour / 3600.0;  // per second

  auto team_of = [&](NodeId participant) {
    return (participant - 1) / cfg.team_size;
  };
  auto quantize = [&](double t) {
    return std::floor(t / cfg.scan_interval_s) * cfg.scan_interval_s;
  };

  std::vector<Contact> contacts;
  // Pairwise Poisson processes among participants (ids 1..N).
  for (NodeId a = 1; a <= cfg.num_participants; ++a) {
    for (NodeId b = a + 1; b <= cfg.num_participants; ++b) {
      double rate = base_rate * act[static_cast<std::size_t>(a - 1)] *
                    act[static_cast<std::size_t>(b - 1)];
      if (team_of(a) == team_of(b)) rate *= cfg.intra_team_boost;
      if (rate <= 0.0) continue;
      double t = pair_rng.exponential(rate);
      while (t < cfg.duration_s) {
        const double dur = std::max(cfg.scan_interval_s,
                                    pair_rng.exponential(1.0 / cfg.mean_contact_duration_s));
        if (both_on(a, b, t)) contacts.push_back(Contact{quantize(t), dur, a, b});
        t += dur + pair_rng.exponential(rate);
      }
    }
  }

  // Gateway contacts with the command center (node 0).
  for (const NodeId g : synthetic_gateways(cfg)) {
    double t = gw_time_rng.exponential(1.0 / cfg.gateway_mean_interval_s);
    while (t < cfg.duration_s) {
      if (both_on(kCommandCenter, g, t))
        contacts.push_back(
            Contact{quantize(t), cfg.gateway_contact_duration_s, kCommandCenter, g});
      t += cfg.gateway_contact_duration_s +
           gw_time_rng.exponential(1.0 / cfg.gateway_mean_interval_s);
    }
  }

  return ContactTrace{std::move(contacts), cfg.num_participants + 1, cfg.duration_s};
}

}  // namespace photodtn
