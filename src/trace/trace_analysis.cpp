#include "trace/trace_analysis.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace photodtn {

namespace {

std::map<std::pair<NodeId, NodeId>, std::vector<double>> starts_by_pair(
    const ContactTrace& trace) {
  std::map<std::pair<NodeId, NodeId>, std::vector<double>> by_pair;
  for (const Contact& c : trace.contacts()) {
    const auto key = std::minmax(c.a, c.b);
    by_pair[{key.first, key.second}].push_back(c.start);
  }
  return by_pair;
}

}  // namespace

std::vector<PairRate> pairwise_rates(const ContactTrace& trace) {
  std::vector<PairRate> out;
  const double horizon = std::max(trace.horizon(), 1.0);
  for (const auto& [pair, starts] : starts_by_pair(trace)) {
    PairRate pr;
    pr.a = pair.first;
    pr.b = pair.second;
    pr.contacts = starts.size();
    pr.rate = static_cast<double>(starts.size()) / horizon;
    out.push_back(pr);
  }
  return out;
}

InterContactDiagnostics inter_contact_diagnostics(const ContactTrace& trace) {
  InterContactDiagnostics d;
  std::vector<double> normalized;  // gap / pair mean
  std::vector<double> raw;
  for (auto& [pair, starts] : starts_by_pair(trace)) {
    if (starts.size() < 3) continue;  // need >= 2 gaps for a meaningful mean
    std::sort(starts.begin(), starts.end());
    std::vector<double> gaps;
    for (std::size_t i = 1; i < starts.size(); ++i)
      gaps.push_back(starts[i] - starts[i - 1]);
    double mean = 0.0;
    for (const double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    if (mean <= 0.0) continue;
    for (const double g : gaps) {
      normalized.push_back(g / mean);
      raw.push_back(g);
    }
  }
  d.samples = normalized.size();
  if (normalized.empty()) return d;

  double mean = 0.0;
  for (const double g : raw) mean += g;
  mean /= static_cast<double>(raw.size());
  d.mean_s = mean;
  double var = 0.0;
  for (const double g : raw) var += (g - mean) * (g - mean);
  var /= static_cast<double>(raw.size() > 1 ? raw.size() - 1 : 1);
  d.cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;

  // KS distance of the normalized sample against Exp(1):
  // F(x) = 1 - exp(-x).
  std::sort(normalized.begin(), normalized.end());
  double ks = 0.0;
  const auto n = static_cast<double>(normalized.size());
  for (std::size_t i = 0; i < normalized.size(); ++i) {
    const double f = 1.0 - std::exp(-normalized[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    ks = std::max({ks, std::fabs(f - lo), std::fabs(f - hi)});
  }
  d.ks_distance = ks;
  return d;
}

std::vector<std::size_t> node_degrees(const ContactTrace& trace) {
  std::vector<std::set<NodeId>> peers(static_cast<std::size_t>(trace.num_nodes()));
  for (const Contact& c : trace.contacts()) {
    peers[static_cast<std::size_t>(c.a)].insert(c.b);
    peers[static_cast<std::size_t>(c.b)].insert(c.a);
  }
  std::vector<std::size_t> out(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) out[i] = peers[i].size();
  return out;
}

}  // namespace photodtn
