#include "trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "persist/file_io.h"

namespace photodtn {

void write_trace(std::ostream& os, const ContactTrace& trace) {
  os << "# photodtn-trace v1 nodes=" << trace.num_nodes()
     << " horizon=" << trace.horizon() << '\n';
  os << "start,duration,a,b\n";
  os.precision(17);
  for (const Contact& c : trace.contacts())
    os << c.start << ',' << c.duration << ',' << c.a << ',' << c.b << '\n';
}

bool write_trace_file(const std::string& path, const ContactTrace& trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return persist::checked_write_file(path, os.str());
}

namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("malformed trace file: " + what);
}

}  // namespace

ContactTrace read_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) malformed("empty input");
  NodeId nodes = 0;
  double horizon = 0.0;
  {
    std::istringstream header(line);
    std::string tok;
    while (header >> tok) {
      if (tok.rfind("nodes=", 0) == 0) nodes = static_cast<NodeId>(std::stol(tok.substr(6)));
      if (tok.rfind("horizon=", 0) == 0) horizon = std::stod(tok.substr(8));
    }
  }
  if (nodes < 2) malformed("missing or invalid nodes= in header");
  if (!std::getline(is, line)) malformed("missing column header");

  std::vector<Contact> contacts;
  std::size_t line_no = 2;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    Contact c;
    char comma = 0;
    if (!(row >> c.start >> comma >> c.duration >> comma >> c.a >> comma >> c.b))
      malformed("bad row at line " + std::to_string(line_no));
    contacts.push_back(c);
  }
  return ContactTrace{std::move(contacts), nodes, horizon};
}

ContactTrace read_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(f);
}

}  // namespace photodtn
