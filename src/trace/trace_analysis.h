// Diagnostics over contact traces. Section III-B's metadata-validity rule
// rests on inter-contact times being (approximately) exponential; these
// helpers quantify how well a trace — synthetic or imported — satisfies
// that, and expose the pairwise rate estimates the rule consumes.
#pragma once

#include <vector>

#include "trace/contact_trace.h"

namespace photodtn {

struct PairRate {
  NodeId a = -1;
  NodeId b = -1;
  std::size_t contacts = 0;
  /// Maximum-likelihood contact rate over the trace horizon (contacts/s).
  double rate = 0.0;
};

/// Per-pair contact counts and MLE rates, for every pair with at least one
/// contact, ordered by (a, b).
std::vector<PairRate> pairwise_rates(const ContactTrace& trace);

struct InterContactDiagnostics {
  std::size_t samples = 0;          // pooled inter-contact gaps
  double mean_s = 0.0;
  /// Coefficient of variation: 1 for exponential, >1 heavy-tailed,
  /// <1 more regular than Poisson.
  double cv = 0.0;
  /// Kolmogorov–Smirnov distance between the pooled *normalized* gaps
  /// (each divided by its pair's mean) and Exp(1). Small (< ~0.1) means the
  /// exponential assumption of eq. (1) is reasonable.
  double ks_distance = 1.0;
};

/// Pools inter-contact gaps across pairs (normalizing out pairwise rate
/// heterogeneity) and tests them against the exponential law.
InterContactDiagnostics inter_contact_diagnostics(const ContactTrace& trace);

/// Number of distinct peers each node ever contacts (index = node id).
std::vector<std::size_t> node_degrees(const ContactTrace& trace);

}  // namespace photodtn
