#include "trace/contact_trace.h"

#include <algorithm>

#include "util/check.h"

namespace photodtn {

ContactTrace::ContactTrace(std::vector<Contact> contacts, NodeId num_nodes,
                           double horizon)
    : contacts_(std::move(contacts)), num_nodes_(num_nodes), horizon_(horizon) {
  // Total deterministic order: equal start times (common after scan-interval
  // quantization) are broken by endpoints so replays and round-trips through
  // trace files process contacts identically.
  std::sort(contacts_.begin(), contacts_.end(), [](const Contact& x, const Contact& y) {
    if (x.start != y.start) return x.start < y.start;
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    return x.duration < y.duration;
  });
  validate();
}

void ContactTrace::validate() const {
  PHOTODTN_CHECK_MSG(num_nodes_ >= 2, "a trace needs the command center plus one node");
  PHOTODTN_CHECK_MSG(horizon_ >= 0.0, "horizon must be non-negative");
  for (const Contact& c : contacts_) {
    PHOTODTN_CHECK_MSG(c.a >= 0 && c.a < num_nodes_, "contact endpoint out of range");
    PHOTODTN_CHECK_MSG(c.b >= 0 && c.b < num_nodes_, "contact endpoint out of range");
    PHOTODTN_CHECK_MSG(c.a != c.b, "self-contact");
    PHOTODTN_CHECK_MSG(c.start >= 0.0 && c.duration >= 0.0, "negative contact time");
  }
}

TraceStats ContactTrace::stats() const {
  TraceStats s;
  s.contacts = contacts_.size();
  double dur_sum = 0.0;
  std::map<std::pair<NodeId, NodeId>, std::vector<double>> pair_starts;
  for (const Contact& c : contacts_) {
    dur_sum += c.duration;
    const auto key = std::minmax(c.a, c.b);
    pair_starts[{key.first, key.second}].push_back(c.start);
    if (c.involves(kCommandCenter)) ++s.command_center_contacts;
  }
  if (s.contacts > 0) s.mean_duration = dur_sum / static_cast<double>(s.contacts);
  s.pairs_with_contact = pair_starts.size();
  double ict_sum = 0.0;
  std::size_t ict_n = 0;
  for (auto& [pair, starts] : pair_starts) {
    std::sort(starts.begin(), starts.end());
    for (std::size_t i = 1; i < starts.size(); ++i) {
      ict_sum += starts[i] - starts[i - 1];
      ++ict_n;
    }
  }
  if (ict_n > 0) s.mean_inter_contact = ict_sum / static_cast<double>(ict_n);
  return s;
}

std::vector<Contact> ContactTrace::contacts_of(NodeId n) const {
  std::vector<Contact> out;
  for (const Contact& c : contacts_)
    if (c.involves(n)) out.push_back(c);
  return out;
}

ContactTrace ContactTrace::window(double t0, double t1) const {
  PHOTODTN_CHECK(t1 >= t0);
  std::vector<Contact> out;
  for (const Contact& c : contacts_) {
    if (c.start >= t0 && c.start < t1) {
      Contact shifted = c;
      shifted.start -= t0;
      out.push_back(shifted);
    }
  }
  return ContactTrace{std::move(out), num_nodes_, t1 - t0};
}

ContactTrace ContactTrace::with_max_duration(double max_duration) const {
  PHOTODTN_CHECK(max_duration >= 0.0);
  std::vector<Contact> out = contacts_;
  for (Contact& c : out) c.duration = std::min(c.duration, max_duration);
  return ContactTrace{std::move(out), num_nodes_, horizon_};
}

}  // namespace photodtn
