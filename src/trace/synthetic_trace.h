// Synthetic contact-trace generator substituting for the MIT Reality and
// Cambridge06 Bluetooth traces (see DESIGN.md, Substitutions).
//
// Mechanism: every pair (a, b) of participants gets an exponential
// inter-contact rate lambda_ab = base * act_a * act_b * (boost if same team),
// where per-node activity levels act_i are lognormal. This yields (i) the
// exponential pairwise inter-contact times the paper's metadata-validation
// model assumes, (ii) the heavy-tailed heterogeneity of real Bluetooth
// traces, and (iii) community structure ("rescuers in the same team contact
// more often", Section III-B). Contact start times are quantized to the scan
// interval like the real traces (5 min MIT / 2 min Cambridge06).
//
// Gateways: a configurable fraction of participants (~2% in Section V-A)
// additionally contact the command center (node 0) as a Poisson process,
// modelling satellite radios / data mules.
#pragma once

#include <cstdint>

#include "trace/contact_trace.h"

namespace photodtn {

struct SyntheticTraceConfig {
  /// Participants, excluding the command center.
  NodeId num_participants = 97;
  double duration_s = 300.0 * 3600.0;
  double scan_interval_s = 300.0;

  /// Team structure.
  NodeId team_size = 8;
  double intra_team_boost = 12.0;

  /// Mean pairwise contact rate scale: expected contacts per pair per hour
  /// for two average-activity nodes in different teams.
  double base_pair_rate_per_hour = 0.012;
  /// Lognormal sigma of per-node activity (0 = homogeneous).
  double activity_sigma = 0.6;

  /// Contact duration: exponential with this mean, floored at the scan
  /// interval (a Bluetooth scan cannot observe shorter contacts).
  double mean_contact_duration_s = 600.0;

  /// Availability duty cycling: real trace devices are off/absent for long
  /// stretches (overnight, out of area). When mean_on_s > 0, each
  /// participant alternates exponential on/off periods and a contact is
  /// only observed when *both* endpoints are on. 0 disables (always on) —
  /// the pure-exponential regime eq. (1) assumes.
  double mean_on_s = 0.0;
  double mean_off_s = 0.0;

  /// Fraction of participants that can reach the command center.
  double gateway_fraction = 0.02;
  /// Mean time between a gateway's command-center contacts.
  double gateway_mean_interval_s = 2.0 * 3600.0;
  /// Duration of command-center contacts (uplink sessions).
  double gateway_contact_duration_s = 600.0;

  std::uint64_t seed = 1;

  /// Presets matching the two traces in Table I.
  static SyntheticTraceConfig mit_reality(std::uint64_t seed);
  static SyntheticTraceConfig cambridge06(std::uint64_t seed);
};

/// Generates the full trace. Node 0 is the command center.
ContactTrace generate_synthetic_trace(const SyntheticTraceConfig& cfg);

/// The gateway node ids the generator selected for a given config (depends
/// only on the seed and participant count). Exposed so experiments can
/// report or vary the gateway set.
std::vector<NodeId> synthetic_gateways(const SyntheticTraceConfig& cfg);

}  // namespace photodtn
