// Contact traces: the sequence of pairwise encounter opportunities that
// drives the DTN simulation. Node 0 is always the command center; nodes
// 1..N are participants. Times are seconds since the start of the event.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "coverage/photo.h"  // NodeId, kCommandCenter

namespace photodtn {

struct Contact {
  double start = 0.0;
  double duration = 0.0;
  NodeId a = -1;
  NodeId b = -1;

  double end() const noexcept { return start + duration; }
  bool involves(NodeId n) const noexcept { return a == n || b == n; }
  bool operator==(const Contact&) const = default;
};

/// Aggregate statistics used by tests and by the trace generator's
/// self-calibration.
struct TraceStats {
  std::size_t contacts = 0;
  double mean_duration = 0.0;
  double mean_inter_contact = 0.0;  // across all pairs with >= 2 contacts
  std::size_t pairs_with_contact = 0;
  std::size_t command_center_contacts = 0;
};

class ContactTrace {
 public:
  ContactTrace() = default;
  /// `num_nodes` counts participants + the command center (ids 0..num_nodes-1).
  ContactTrace(std::vector<Contact> contacts, NodeId num_nodes, double horizon);

  const std::vector<Contact>& contacts() const noexcept { return contacts_; }
  NodeId num_nodes() const noexcept { return num_nodes_; }
  /// End of the observation window in seconds.
  double horizon() const noexcept { return horizon_; }

  TraceStats stats() const;

  /// All contacts of one node, in time order.
  std::vector<Contact> contacts_of(NodeId n) const;

  /// A copy containing only contacts starting in [t0, t1), with times
  /// rebased so the first retained instant t0 maps to 0.
  ContactTrace window(double t0, double t1) const;

  /// Caps every contact's duration at `max_duration` seconds (used by the
  /// Fig. 6 contact-duration sweep).
  ContactTrace with_max_duration(double max_duration) const;

  bool empty() const noexcept { return contacts_.empty(); }
  std::size_t size() const noexcept { return contacts_.size(); }

 private:
  void validate() const;

  std::vector<Contact> contacts_;
  NodeId num_nodes_ = 0;
  double horizon_ = 0.0;
};

}  // namespace photodtn
