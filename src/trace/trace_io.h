// CSV persistence for contact traces, so experiments can be replayed on
// identical inputs and externally collected traces can be imported.
//
// Format:
//   # photodtn-trace v1 nodes=<N> horizon=<seconds>
//   start,duration,a,b
//   <double>,<double>,<int>,<int>
#pragma once

#include <iosfwd>
#include <string>

#include "trace/contact_trace.h"

namespace photodtn {

void write_trace(std::ostream& os, const ContactTrace& trace);
bool write_trace_file(const std::string& path, const ContactTrace& trace);

/// Throws std::runtime_error on malformed input.
ContactTrace read_trace(std::istream& is);
ContactTrace read_trace_file(const std::string& path);

}  // namespace photodtn
