// Time-respecting reachability over a contact trace. A photo taken by node
// `n` at time `t` can reach the command center iff there is a sequence of
// contacts c_1, ..., c_k with non-decreasing times starting at or after t,
// hopping n -> ... -> 0. With storage and bandwidth unconstrained this is
// *exactly* the set BestPossible delivers, which makes this module both an
// analysis tool (what was achievable at all?) and a differential oracle for
// the whole simulator (tests compare the two).
#pragma once

#include <vector>

#include "trace/contact_trace.h"

namespace photodtn {

/// Earliest time each node's data (present from time 0) can reach `target`.
/// Entry is +inf when unreachable within the trace.
std::vector<double> earliest_arrival(const ContactTrace& trace, NodeId target);

/// Earliest time data originating at `origin` at time `origin_time` can
/// reach `target`; +inf if never. A contact can forward data that exists at
/// or before the contact's start.
double earliest_arrival_from(const ContactTrace& trace, NodeId origin,
                             double origin_time, NodeId target);

/// For a batch of (origin node, creation time) items: whether each can reach
/// the command center within the trace horizon. Runs one backward sweep over
/// the contacts, O(contacts + items), rather than per-item searches.
std::vector<bool> reachable_to_center(const ContactTrace& trace,
                                      const std::vector<std::pair<NodeId, double>>& items);

}  // namespace photodtn
