#include "trace/mobility_rwp.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace photodtn {

RwpMobility::RwpMobility(const RwpConfig& cfg) : cfg_(cfg) {
  PHOTODTN_CHECK(cfg.num_participants >= 1);
  PHOTODTN_CHECK(cfg.speed_min > 0.0 && cfg.speed_max >= cfg.speed_min);
  PHOTODTN_CHECK(cfg.region_m > 0.0 && cfg.duration_s > 0.0);

  Rng root(cfg.seed);
  trajectories_.resize(static_cast<std::size_t>(cfg.num_participants) + 1);
  for (NodeId n = 1; n <= cfg.num_participants; ++n) {
    Rng rng = root.split("rwp-node-" + std::to_string(n));
    auto& traj = trajectories_[static_cast<std::size_t>(n)];
    double t = 0.0;
    Vec2 pos{rng.uniform(0.0, cfg.region_m), rng.uniform(0.0, cfg.region_m)};
    traj.push_back({t, pos});
    while (t < cfg.duration_s) {
      const Vec2 dest{rng.uniform(0.0, cfg.region_m), rng.uniform(0.0, cfg.region_m)};
      const double speed = rng.uniform(cfg.speed_min, cfg.speed_max);
      const double travel = pos.distance_to(dest) / speed;
      t += travel;
      traj.push_back({t, dest});
      const double pause = rng.uniform(0.0, cfg.pause_max_s);
      if (pause > 0.0) {
        t += pause;
        traj.push_back({t, dest});
      }
      pos = dest;
    }
  }

  // Gateway selection mirrors the synthetic generator's approach.
  Rng gw_rng = root.split("gateways");
  auto count = static_cast<NodeId>(std::max(
      1.0, std::round(cfg.gateway_fraction * static_cast<double>(cfg.num_participants))));
  std::vector<NodeId> ids(static_cast<std::size_t>(cfg.num_participants));
  for (NodeId i = 0; i < cfg.num_participants; ++i)
    ids[static_cast<std::size_t>(i)] = i + 1;
  gw_rng.shuffle(ids);
  ids.resize(static_cast<std::size_t>(count));
  std::sort(ids.begin(), ids.end());
  gateways_ = std::move(ids);
}

Vec2 RwpMobility::position(NodeId participant, double t) const {
  PHOTODTN_CHECK_MSG(participant >= 1 && participant <= cfg_.num_participants,
                     "position() is defined for participants only");
  const auto& traj = trajectories_[static_cast<std::size_t>(participant)];
  const double tc = std::clamp(t, 0.0, traj.back().time);
  auto it = std::upper_bound(traj.begin(), traj.end(), tc,
                             [](double v, const Knot& k) { return v < k.time; });
  if (it == traj.begin()) return traj.front().pos;
  if (it == traj.end()) return traj.back().pos;
  const Knot& hi = *it;
  const Knot& lo = *std::prev(it);
  const double span = hi.time - lo.time;
  if (span <= 0.0) return hi.pos;
  const double f = (tc - lo.time) / span;
  return lo.pos + (hi.pos - lo.pos) * f;
}

ContactTrace RwpMobility::extract_contacts() const {
  std::vector<Contact> contacts;
  const auto n = cfg_.num_participants;
  const double dt = cfg_.scan_interval_s;
  const double range2 = cfg_.comm_range_m * cfg_.comm_range_m;

  // For each pair, track the currently-open contact window.
  std::vector<double> open_since(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                                 -1.0);
  auto idx = [n](NodeId a, NodeId b) {
    return static_cast<std::size_t>(a - 1) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(b - 1);
  };

  std::vector<Vec2> pos(static_cast<std::size_t>(n) + 1);
  for (double t = 0.0; t <= cfg_.duration_s; t += dt) {
    for (NodeId i = 1; i <= n; ++i) pos[static_cast<std::size_t>(i)] = position(i, t);
    for (NodeId a = 1; a <= n; ++a) {
      for (NodeId b = a + 1; b <= n; ++b) {
        const bool near =
            (pos[static_cast<std::size_t>(a)] - pos[static_cast<std::size_t>(b)]).norm_sq() <=
            range2;
        double& open = open_since[idx(a, b)];
        if (near && open < 0.0) {
          open = t;
        } else if (!near && open >= 0.0) {
          contacts.push_back(Contact{open, t - open, a, b});
          open = -1.0;
        }
      }
    }
  }
  // Close any windows still open at the horizon.
  for (NodeId a = 1; a <= n; ++a)
    for (NodeId b = a + 1; b <= n; ++b) {
      const double open = open_since[idx(a, b)];
      if (open >= 0.0)
        contacts.push_back(Contact{open, cfg_.duration_s - open, a, b});
    }

  // Scheduled gateway uplink sessions.
  Rng root(cfg_.seed);
  Rng gw_time_rng = root.split("gateway-times");
  for (const NodeId g : gateways_) {
    double t = gw_time_rng.exponential(1.0 / cfg_.gateway_mean_interval_s);
    while (t < cfg_.duration_s) {
      contacts.push_back(Contact{t, cfg_.gateway_contact_duration_s, kCommandCenter, g});
      t += cfg_.gateway_contact_duration_s +
           gw_time_rng.exponential(1.0 / cfg_.gateway_mean_interval_s);
    }
  }

  return ContactTrace{std::move(contacts), n + 1, cfg_.duration_s};
}

}  // namespace photodtn
