// Machine-readable export of experiment results (JSON), for plotting
// pipelines and archival of reproduction runs.
#pragma once

#include <span>
#include <string>

#include "sim/experiment.h"

namespace photodtn {

/// Serializes one result: scheme, sample grid, mean curves with 95% CIs,
/// and final-value statistics.
std::string experiment_result_to_json(const ExperimentResult& result);

/// Serializes a whole comparison: {"results": [...]}.
std::string comparison_to_json(std::span<const ExperimentResult> results);

/// Writes comparison JSON to `path`; returns false if the file cannot be
/// written.
bool write_comparison_json(const std::string& path,
                           std::span<const ExperimentResult> results);

/// Metrics-only export: {"schema":"photodtn-metrics/1","results":[{scheme,
/// metrics}...]} — one merged registry snapshot per scheme (empty object
/// when a result carries none). The bench/CI pipeline reads this shape.
std::string metrics_to_json(std::span<const ExperimentResult> results);
bool write_metrics_json(const std::string& path,
                        std::span<const ExperimentResult> results);

}  // namespace photodtn
