#include "sim/result_io.h"

#include "persist/file_io.h"
#include "util/json.h"

namespace photodtn {

namespace {

void write_result(JsonWriter& w, const ExperimentResult& r) {
  w.begin_object();
  w.kv("scheme", r.scheme);
  w.kv("runs", static_cast<std::uint64_t>(r.point.runs()));
  w.kv_array("sample_times_s", r.sample_times);
  w.kv_array("point_mean", r.point.means());
  w.kv_array("point_ci95", r.point.ci95());
  w.kv_array("aspect_mean", r.aspect.means());
  w.kv_array("aspect_ci95", r.aspect.ci95());
  w.kv_array("delivered_mean", r.delivered.means());
  w.key("final");
  w.begin_object();
  w.kv("point_mean", r.final_point.mean());
  w.kv("point_ci95", r.final_point.ci95_half_width());
  w.kv("aspect_mean", r.final_aspect.mean());
  w.kv("aspect_ci95", r.final_aspect.ci95_half_width());
  w.kv("delivered_mean", r.final_delivered.mean());
  w.kv("transfers_mean", r.total_transfers.mean());
  w.kv("drops_mean", r.total_drops.mean());
  w.kv("interrupted_contacts_mean", r.total_interrupted_contacts.mean());
  w.kv("missed_contacts_mean", r.total_missed_contacts.mean());
  w.kv("node_crashes_mean", r.total_node_crashes.mean());
  w.kv("gossip_losses_mean", r.total_gossip_losses.mean());
  w.end_object();
  // Structured metrics block (obs runs only): merged per-run registry
  // snapshots. Omitted entirely when obs was off, so existing golden
  // comparison files are byte-identical with or without the obs layer.
  if (!r.metrics.empty()) {
    w.key("metrics");
    r.metrics.write_json(w);
  }
  w.end_object();
}

}  // namespace

std::string experiment_result_to_json(const ExperimentResult& result) {
  JsonWriter w;
  write_result(w, result);
  return w.str();
}

std::string comparison_to_json(std::span<const ExperimentResult> results) {
  JsonWriter w;
  w.begin_object();
  w.key("results");
  w.begin_array();
  for (const ExperimentResult& r : results) write_result(w, r);
  w.end_array();
  w.end_object();
  return w.str();
}

bool write_comparison_json(const std::string& path,
                           std::span<const ExperimentResult> results) {
  return persist::checked_write_file(path, comparison_to_json(results) + "\n");
}

std::string metrics_to_json(std::span<const ExperimentResult> results) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "photodtn-metrics/1");
  w.key("results");
  w.begin_array();
  for (const ExperimentResult& r : results) {
    w.begin_object();
    w.kv("scheme", r.scheme);
    w.key("metrics");
    r.metrics.write_json(w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool write_metrics_json(const std::string& path,
                        std::span<const ExperimentResult> results) {
  return persist::checked_write_file(path, metrics_to_json(results) + "\n");
}

}  // namespace photodtn
