// Experiment runner: (scenario x scheme x seeds) -> averaged metric curves.
// Each run builds its own PoI list, trace, workload, and simulator from the
// run seed, so runs are independent and reproducible; runs execute on the
// shared thread pool (util/thread_pool.h) — bounded oversubscription instead
// of one OS thread per seed — and merge in seed order, so the aggregate is
// byte-identical for any worker count (PHOTODTN_THREADS=1 included).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dtn/simulator.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "workload/photo_gen.h"
#include "workload/scenario.h"

namespace photodtn {

struct ExperimentSpec {
  ScenarioConfig scenario;
  /// Scheme factory name (see schemes/factory.h).
  std::string scheme = "OurScheme";
  /// Number of independent runs (the paper averages 50; benches default
  /// lower and honour PHOTODTN_BENCH_RUNS).
  std::size_t runs = 5;
  std::uint64_t seed_base = 1;
  /// Cap on contact duration (Fig. 6); nullopt = use the trace as-is.
  std::optional<double> max_contact_duration_s;
  /// Options forwarded to the photo generator.
  PhotoGenOptions photo_options;
  /// When non-empty, replay this trace file (trace/trace_io.h format)
  /// instead of generating a synthetic trace. Runs then differ only in PoI
  /// placement, the photo workload, and scheme randomness — exactly the
  /// paper's "trace-driven" methodology with a real imported trace.
  std::string trace_file;
};

/// Checkpoint/restore policy for a single run (persist/snapshot.h).
struct RunPersistence {
  /// Snapshot every N event-loop iterations (0 = never checkpoint).
  std::uint64_t checkpoint_every = 0;
  /// Where periodic snapshots land, written crash-safely (write-to-temp,
  /// rename) so a SIGKILL mid-write leaves the previous snapshot intact.
  /// Required when checkpoint_every > 0.
  std::string checkpoint_path;
  /// When non-empty, restore this snapshot before running; the run resumes
  /// from the checkpointed event and finishes byte-identically to an
  /// uninterrupted run of the same spec and seed.
  std::string restore_path;

  bool enabled() const {
    return checkpoint_every > 0 || !restore_path.empty();
  }
};

struct ExperimentResult {
  std::string scheme;
  std::vector<double> sample_times;
  SeriesStats point;      // normalized point coverage over time
  SeriesStats aspect;     // normalized aspect coverage (radians) over time
  SeriesStats delivered;  // photos delivered over time
  RunningStats final_point;
  RunningStats final_aspect;
  RunningStats final_full_view;
  RunningStats final_delivered;
  RunningStats total_transfers;
  RunningStats total_drops;
  // Fault-layer observability (all zero when the scenario runs clean);
  // lets the disruption ablations plot coverage against realized fault
  // intensity rather than only against the configured rates.
  RunningStats total_interrupted_contacts;
  RunningStats total_missed_contacts;
  RunningStats total_node_crashes;
  RunningStats total_gossip_losses;
  // Observability payloads (empty unless the scenario enables obs —
  // spec.scenario.sim.obs or PHOTODTN_OBS=1). Metrics are the per-run
  // snapshots merged in seed order (integer-valued, so byte-identical for
  // any pool size); trace_events are run 0's, the run a trace file depicts.
  obs::MetricsSnapshot metrics;
  std::vector<obs::TraceEvent> trace_events;
};

/// One full simulation run; exposed so tests can drive single runs.
SimResult run_single(const ExperimentSpec& spec, std::uint64_t seed);

/// Same, with checkpoint/restore. Throws persist::SnapshotError when the
/// restore file is unreadable, corrupt, or from a different scenario; exits
/// non-zero paths are the caller's concern. A checkpoint that fails to
/// write (ENOSPC, bad directory) aborts the run with SnapshotError rather
/// than continuing silently un-checkpointed.
SimResult run_single(const ExperimentSpec& spec, std::uint64_t seed,
                     const RunPersistence& persistence);

/// Folds per-seed results (in seed order) into the aggregate. Exposed so a
/// checkpoint-resumed single run can be aggregated through the exact code
/// path run_experiment uses — its JSON output is then byte-comparable to
/// an uninterrupted --runs 1 experiment.
ExperimentResult aggregate_results(const ExperimentSpec& spec,
                                   std::vector<SimResult> results);

/// Runs `spec.runs` seeds (seed_base, seed_base+1, ...) in parallel on
/// `pool` (nullptr = the shared pool) and aggregates in seed order. Results
/// are byte-identical across pool sizes: each run writes its own slot and
/// the ordered merge folds them deterministically.
ExperimentResult run_experiment(const ExperimentSpec& spec, ThreadPool* pool);
ExperimentResult run_experiment(const ExperimentSpec& spec);

/// Convenience: the same scenario under several schemes.
std::vector<ExperimentResult> run_comparison(const ExperimentSpec& base,
                                             const std::vector<std::string>& schemes);

}  // namespace photodtn
