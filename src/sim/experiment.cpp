#include "sim/experiment.h"

#include "persist/file_io.h"
#include "persist/snapshot.h"
#include "schemes/factory.h"
#include "trace/trace_io.h"
#include "util/check.h"
#include "workload/poi_gen.h"

namespace photodtn {

SimResult run_single(const ExperimentSpec& spec, std::uint64_t seed) {
  return run_single(spec, seed, RunPersistence{});
}

SimResult run_single(const ExperimentSpec& spec, std::uint64_t seed,
                     const RunPersistence& persistence) {
  const ScenarioConfig& sc = spec.scenario;

  Rng root(seed);
  Rng poi_rng = root.split("pois");
  Rng photo_rng = root.split("photos");

  const PoiList pois = generate_uniform_pois(sc.num_pois, sc.region_m, poi_rng);
  CoverageModel model(pois, sc.effective_angle);
  model.set_quality_threshold(sc.quality_threshold);

  SyntheticTraceConfig trace_cfg = sc.trace;
  trace_cfg.seed = seed ^ 0x7ace5eedULL;
  ContactTrace trace = spec.trace_file.empty() ? generate_synthetic_trace(trace_cfg)
                                               : read_trace_file(spec.trace_file);
  if (spec.max_contact_duration_s)
    trace = trace.with_max_duration(*spec.max_contact_duration_s);

  PhotoGenerator gen(sc, pois, spec.photo_options);
  std::vector<PhotoEvent> events =
      gen.generate(trace.horizon(), trace.num_nodes() - 1, photo_rng);

  SchemeOptions scheme_opts;
  scheme_opts.p_thld = sc.p_thld;
  std::unique_ptr<Scheme> scheme = make_scheme(spec.scheme, scheme_opts);
  SimConfig sim_cfg = sc.sim;
  sim_cfg.seed = seed ^ 0x51eedbeefULL;
  if (scheme->wants_unlimited_storage()) sim_cfg.unlimited_storage = true;
  if (scheme->wants_unlimited_bandwidth()) sim_cfg.unlimited_bandwidth = true;

  Simulator sim(model, trace, std::move(events), sim_cfg);

  if (!persistence.restore_path.empty()) {
    std::string snapshot;
    if (!persist::read_file(persistence.restore_path, snapshot)) {
      throw persist::SnapshotError("cannot read snapshot file '" +
                                   persistence.restore_path + "'");
    }
    persist::restore(sim, *scheme, snapshot);
  }
  if (persistence.checkpoint_every > 0) {
    PHOTODTN_CHECK_MSG(!persistence.checkpoint_path.empty(),
                       "checkpoint_every needs a checkpoint_path");
    sim.set_checkpoint_hook([&](std::uint64_t event) {
      if (event == 0 || event % persistence.checkpoint_every != 0) return;
      const std::string data = persist::checkpoint(sim, *scheme);
      if (!persist::atomic_write_file(persistence.checkpoint_path, data)) {
        // Continuing would mean the run silently loses its recovery points.
        throw persist::SnapshotError("cannot write checkpoint '" +
                                     persistence.checkpoint_path + "'");
      }
    });
  }
  return sim.run(*scheme);
}

ExperimentResult run_experiment(const ExperimentSpec& spec, ThreadPool* pool) {
  PHOTODTN_CHECK(spec.runs >= 1);
  if (pool == nullptr) pool = &ThreadPool::shared();
  // One chunk per seed, each writing its own slot; the merge below then
  // folds the slots in seed order — the same order the old per-seed
  // std::async fan-out consumed its futures in, but with the pool's bounded
  // worker set instead of runs-many OS threads.
  std::vector<SimResult> results(spec.runs);
  pool->parallel_chunks(spec.runs, [&](std::size_t k) {
    results[k] = run_single(spec, spec.seed_base + k);
  });
  return aggregate_results(spec, std::move(results));
}

ExperimentResult aggregate_results(const ExperimentSpec& spec,
                                   std::vector<SimResult> results) {
  PHOTODTN_CHECK(!results.empty());
  ExperimentResult out;
  out.scheme = spec.scheme;
  for (const SimResult& r : results) {
    if (out.sample_times.empty()) {
      out.sample_times.reserve(r.samples.size());
      for (const SimSample& s : r.samples) out.sample_times.push_back(s.time);
    }
    std::vector<double> point, aspect, delivered;
    point.reserve(r.samples.size());
    for (const SimSample& s : r.samples) {
      point.push_back(s.point_coverage);
      aspect.push_back(s.aspect_coverage);
      delivered.push_back(static_cast<double>(s.delivered_photos));
    }
    out.point.add_series(point);
    out.aspect.add_series(aspect);
    out.delivered.add_series(delivered);
    out.final_point.add(r.final_point_norm);
    out.final_aspect.add(r.final_aspect_norm);
    if (!r.samples.empty()) out.final_full_view.add(r.samples.back().full_view_coverage);
    out.final_delivered.add(static_cast<double>(r.delivered_photos));
    out.total_transfers.add(static_cast<double>(r.counters.transfers));
    out.total_drops.add(static_cast<double>(r.counters.drops));
    out.total_interrupted_contacts.add(
        static_cast<double>(r.counters.interrupted_contacts));
    out.total_missed_contacts.add(static_cast<double>(r.counters.missed_contacts));
    out.total_node_crashes.add(static_cast<double>(r.counters.node_crashes));
    out.total_gossip_losses.add(static_cast<double>(r.counters.gossip_losses));
    if (!r.obs.metrics.empty()) out.metrics.merge(r.obs.metrics);
  }
  if (!results.front().obs.trace_events.empty())
    out.trace_events = std::move(results.front().obs.trace_events);
  return out;
}

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  return run_experiment(spec, nullptr);
}

std::vector<ExperimentResult> run_comparison(const ExperimentSpec& base,
                                             const std::vector<std::string>& schemes) {
  std::vector<ExperimentResult> out;
  out.reserve(schemes.size());
  for (const std::string& name : schemes) {
    ExperimentSpec spec = base;
    spec.scheme = name;
    out.push_back(run_experiment(spec));
  }
  return out;
}

}  // namespace photodtn
