#include "geometry/angle.h"

#include <cmath>

namespace photodtn {

double normalize_angle(double radians) noexcept {
  double a = std::fmod(radians, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  // fmod of a value just below a multiple of 2*pi can round to exactly 2*pi
  // after the correction; clamp so the result stays in [0, 2*pi).
  if (a >= kTwoPi) a = 0.0;
  return a;
}

double angle_distance(double a, double b) noexcept {
  const double d = std::fabs(normalize_angle(a) - normalize_angle(b));
  return d > std::numbers::pi ? kTwoPi - d : d;
}

}  // namespace photodtn
