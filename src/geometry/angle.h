// Angle helpers. All angles in this codebase are radians; the aspect circle
// of a PoI is parameterized by [0, 2*pi) as in Section II-B of the paper
// (the paper measures clockwise from east on a map; in our x/y plane the
// parameterization direction is irrelevant as long as it is consistent).
#pragma once

#include <numbers>

namespace photodtn {

inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Normalizes any finite angle to [0, 2*pi).
double normalize_angle(double radians) noexcept;

/// Smallest absolute difference between two angles, in [0, pi].
double angle_distance(double a, double b) noexcept;

constexpr double deg_to_rad(double deg) noexcept {
  return deg * std::numbers::pi / 180.0;
}
constexpr double rad_to_deg(double rad) noexcept {
  return rad * 180.0 / std::numbers::pi;
}

}  // namespace photodtn
