// Camera coverage area: the circular sector of Fig. 1(a), determined by the
// camera location l, coverage range r, field-of-view phi, and orientation d.
#pragma once

#include "geometry/vec2.h"

namespace photodtn {

class Sector {
 public:
  /// `orientation` is the heading (radians) of the optical axis; `fov` the
  /// full field-of-view angle (radians, in (0, 2*pi]); `range` in meters > 0.
  Sector(Vec2 apex, double range, double fov, double orientation);

  /// Whether point p lies inside the sector (boundary inclusive).
  bool contains(Vec2 p) const noexcept;

  Vec2 apex() const noexcept { return apex_; }
  double range() const noexcept { return range_; }
  double fov() const noexcept { return fov_; }
  double orientation() const noexcept { return orientation_; }
  /// Area of the sector in square meters: fov/2 * r^2.
  double area() const noexcept;

 private:
  Vec2 apex_;
  double range_;
  double fov_;
  double orientation_;
};

}  // namespace photodtn
