// 2-D planar vector. The paper works in a local metric plane (a 6300 m x
// 6300 m region), so we use Cartesian coordinates in meters rather than
// geodetic lat/lon; workload::SensorModel converts GPS-style noise to meters.
#pragma once

#include <cmath>

namespace photodtn {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) noexcept { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) noexcept { x -= o.x; y -= o.y; return *this; }
  constexpr bool operator==(const Vec2&) const noexcept = default;

  constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; >0 when `o` is counter-clockwise
  /// from *this.
  constexpr double cross(Vec2 o) const noexcept { return x * o.y - y * o.x; }
  double norm() const noexcept { return std::hypot(x, y); }
  constexpr double norm_sq() const noexcept { return x * x + y * y; }
  double distance_to(Vec2 o) const noexcept { return (*this - o).norm(); }

  /// Unit vector in the same direction; the zero vector maps to (1, 0) so
  /// callers never receive NaNs (coverage code treats a camera placed exactly
  /// on a PoI as viewing it from the east).
  Vec2 normalized() const noexcept;

  /// Heading of this vector in radians, normalized to [0, 2*pi).
  /// 0 = east (+x); angles grow counter-clockwise (standard math convention).
  double heading() const noexcept;

  /// Unit vector at the given heading.
  static Vec2 from_heading(double radians) noexcept;
};

constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

}  // namespace photodtn
