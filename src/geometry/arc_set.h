// A set of arcs on the unit circle, kept as a canonical union of disjoint
// intervals. This is the data structure behind aspect coverage (Section II-B):
// each photo covering a PoI contributes an arc of width 2*theta centered on
// the PoI->camera heading, and the PoI's aspect coverage is the measure of
// the union of those arcs.
#pragma once

#include <utility>
#include <vector>

#include "persist/fwd.h"

namespace photodtn {

/// A single arc, by start heading (radians, any finite value — normalized on
/// use) and length in [0, 2*pi].
struct Arc {
  double start = 0.0;
  double length = 0.0;

  /// Arc of width 2*half_width centered on `center`.
  static Arc centered(double center, double half_width) noexcept;
};

class ArcSet {
 public:
  ArcSet() = default;

  /// Builds the union of the given arcs.
  static ArcSet from_arcs(const std::vector<Arc>& arcs);

  /// Inserts an arc, merging with existing intervals.
  void add(Arc arc);

  /// Union with another set.
  void unite(const ArcSet& other);

  /// Total angular measure covered, in [0, 2*pi].
  double measure() const noexcept;

  /// Whether the (normalized) angle lies in the covered set. Boundary points
  /// count as covered.
  bool contains(double angle) const noexcept;

  /// Measure that `arc` would add beyond the current coverage, without
  /// mutating the set. Equivalent to union-measure minus measure.
  double gain(Arc arc) const noexcept;

  /// Measure of the intersection with the linear interval [lo, hi],
  /// where 0 <= lo <= hi <= 2*pi (no wrap; split wrapping queries yourself).
  double overlap_linear(double lo, double hi) const noexcept;

  /// All interval endpoints, normalized to [0, 2*pi), sorted ascending and
  /// deduplicated. Used by the expected-coverage breakpoint integration.
  std::vector<double> boundaries() const;

  bool empty() const noexcept { return intervals_.empty(); }
  /// True when the whole circle is covered.
  bool full() const noexcept;

  /// Disjoint covered intervals as [start, end) pairs with
  /// 0 <= start < end <= 2*pi, sorted by start. A set covering the wrap point
  /// appears as two pieces (one ending at 2*pi, one starting at 0).
  const std::vector<std::pair<double, double>>& intervals() const noexcept {
    return intervals_;
  }

  bool operator==(const ArcSet&) const = default;

  /// Deep invariant check (audit builds / tests): intervals are sorted by
  /// start, pairwise disjoint, each normalized to 0 <= start < end <= 2*pi,
  /// and the total measure does not exceed the circle. Throws std::logic_error
  /// on violation.
  void audit() const;

 private:
  // Restore writes the canonical intervals back verbatim (then audits):
  // re-adding them through add() could renormalize with different rounding.
  friend struct persist::StateAccess;

  void insert_linear(double lo, double hi);

  std::vector<std::pair<double, double>> intervals_;
};

}  // namespace photodtn
