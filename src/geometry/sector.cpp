#include "geometry/sector.h"

#include "geometry/angle.h"
#include "util/check.h"

namespace photodtn {

Sector::Sector(Vec2 apex, double range, double fov, double orientation)
    : apex_(apex), range_(range), fov_(fov), orientation_(normalize_angle(orientation)) {
  PHOTODTN_CHECK_MSG(range > 0.0, "sector range must be positive");
  PHOTODTN_CHECK_MSG(fov > 0.0 && fov <= kTwoPi, "fov must be in (0, 2*pi]");
}

bool Sector::contains(Vec2 p) const noexcept {
  const Vec2 rel = p - apex_;
  const double d2 = rel.norm_sq();
  if (d2 > range_ * range_) return false;
  if (d2 == 0.0) return true;  // the apex itself counts as covered
  return angle_distance(rel.heading(), orientation_) <= fov_ / 2.0 + 1e-12;
}

double Sector::area() const noexcept { return 0.5 * fov_ * range_ * range_; }

}  // namespace photodtn
