#include "geometry/vec2.h"

#include "geometry/angle.h"

namespace photodtn {

Vec2 Vec2::normalized() const noexcept {
  const double n = norm();
  if (n == 0.0) return {1.0, 0.0};
  return {x / n, y / n};
}

double Vec2::heading() const noexcept {
  if (x == 0.0 && y == 0.0) return 0.0;
  return normalize_angle(std::atan2(y, x));
}

Vec2 Vec2::from_heading(double radians) noexcept {
  return {std::cos(radians), std::sin(radians)};
}

}  // namespace photodtn
