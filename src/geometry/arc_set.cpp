#include "geometry/arc_set.h"

#include <algorithm>
#include <cmath>

#include "geometry/angle.h"
#include "util/check.h"

namespace photodtn {

namespace {
// Intervals closer than this are merged; keeps the canonical form stable
// under floating-point noise from repeated normalization.
constexpr double kEps = 1e-12;
}  // namespace

Arc Arc::centered(double center, double half_width) noexcept {
  return Arc{center - half_width, 2.0 * half_width};
}

ArcSet ArcSet::from_arcs(const std::vector<Arc>& arcs) {
  ArcSet s;
  for (const Arc& a : arcs) s.add(a);
  return s;
}

void ArcSet::audit() const {
  double total = 0.0;
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    const auto& [s, e] = intervals_[i];
    PHOTODTN_CHECK_MSG(std::isfinite(s) && std::isfinite(e),
                       "ArcSet interval endpoints must be finite");
    PHOTODTN_CHECK_MSG(s >= 0.0 && s < kTwoPi, "ArcSet interval start outside [0, 2*pi)");
    PHOTODTN_CHECK_MSG(e > s, "ArcSet interval must have positive length");
    PHOTODTN_CHECK_MSG(e <= kTwoPi + kEps, "ArcSet interval end beyond 2*pi");
    if (i > 0) {
      // Strictly after the previous interval: sorted and disjoint. Touching
      // within kEps would have been merged by insert_linear.
      PHOTODTN_CHECK_MSG(s > intervals_[i - 1].second,
                         "ArcSet intervals must be sorted and disjoint");
    }
    total += e - s;
  }
  PHOTODTN_CHECK_MSG(total <= kTwoPi + intervals_.size() * kEps,
                     "ArcSet total measure exceeds the circle");
}

void ArcSet::insert_linear(double lo, double hi) {
  // Inserts [lo, hi) with 0 <= lo < hi <= 2*pi into the sorted disjoint list.
  if (hi - lo <= kEps) return;
  std::vector<std::pair<double, double>> out;
  out.reserve(intervals_.size() + 1);
  bool placed = false;
  for (const auto& [s, e] : intervals_) {
    if (e < lo - kEps) {
      out.push_back({s, e});
    } else if (s > hi + kEps) {
      if (!placed) {
        out.push_back({lo, hi});
        placed = true;
      }
      out.push_back({s, e});
    } else {
      // Overlaps or touches: absorb into the pending interval.
      lo = std::min(lo, s);
      hi = std::max(hi, e);
    }
  }
  if (!placed) out.push_back({lo, hi});
  std::sort(out.begin(), out.end());
  intervals_ = std::move(out);
}

void ArcSet::add(Arc arc) {
  PHOTODTN_CHECK_MSG(arc.length >= 0.0, "arc length must be non-negative");
  if (arc.length <= kEps) return;
  if (arc.length >= kTwoPi - kEps) {
    intervals_ = {{0.0, kTwoPi}};
    return;
  }
  const double start = normalize_angle(arc.start);
  const double end = start + arc.length;
  if (end <= kTwoPi) {
    insert_linear(start, end);
  } else {
    insert_linear(start, kTwoPi);
    insert_linear(0.0, end - kTwoPi);
    // The two pieces may now both touch the wrap point; measure/contains
    // handle that without further canonicalization.
  }
  PHOTODTN_AUDIT(audit());
}

void ArcSet::unite(const ArcSet& other) {
  for (const auto& [s, e] : other.intervals_) insert_linear(s, e);
  PHOTODTN_AUDIT(audit());
}

double ArcSet::measure() const noexcept {
  double total = 0.0;
  for (const auto& [s, e] : intervals_) total += e - s;
  return std::min(total, kTwoPi);
}

bool ArcSet::contains(double angle) const noexcept {
  const double a = normalize_angle(angle);
  // Binary search for the last interval with start <= a.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), a,
      [](double v, const std::pair<double, double>& iv) { return v < iv.first; });
  if (it != intervals_.begin()) {
    const auto& [s, e] = *std::prev(it);
    if (a >= s - kEps && a <= e + kEps) return true;
  }
  // Boundary case: a == start of *it within eps.
  if (it != intervals_.end() && std::fabs(it->first - a) <= kEps) return true;
  return false;
}

double ArcSet::overlap_linear(double lo, double hi) const noexcept {
  double ov = 0.0;
  for (const auto& [s, e] : intervals_) {
    const double l = std::max(lo, s);
    const double h = std::min(hi, e);
    if (h > l) ov += h - l;
  }
  return ov;
}

double ArcSet::gain(Arc arc) const noexcept {
  if (arc.length <= kEps) return 0.0;
  if (full()) return 0.0;
  // Overlap of the (possibly wrapping) arc with existing intervals.
  const double start = normalize_angle(arc.start);
  const double len = std::min(arc.length, kTwoPi);
  double overlap = 0.0;
  const double end = start + len;
  if (end <= kTwoPi) {
    overlap = overlap_linear(start, end);
  } else {
    overlap = overlap_linear(start, kTwoPi) + overlap_linear(0.0, end - kTwoPi);
  }
  const double g = len - overlap;
  // Normalization of wrapping arcs leaves sub-epsilon residue; a gain below
  // the canonicalization epsilon is indistinguishable from zero.
  return g <= kEps ? 0.0 : g;
}

std::vector<double> ArcSet::boundaries() const {
  std::vector<double> out;
  out.reserve(intervals_.size() * 2);
  for (const auto& [s, e] : intervals_) {
    out.push_back(normalize_angle(s));
    out.push_back(e >= kTwoPi - kEps ? 0.0 : normalize_angle(e));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end(),
                        [](double a, double b) { return std::fabs(a - b) <= kEps; }),
            out.end());
  return out;
}

bool ArcSet::full() const noexcept { return measure() >= kTwoPi - 1e-9; }

}  // namespace photodtn
