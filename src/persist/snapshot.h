// Versioned, checksummed mid-run snapshots of a Simulator + Scheme pair.
//
// Format (all little-endian):
//   magic "PDTNSNP1" (8 bytes)
//   u32 version (currently 1)
//   sections, in this fixed order: META SIM NODE OBS TRCE SCHM END
//     each: u32 fourcc | u64 payload length | u32 CRC-32 of payload | payload
//   (END has an empty payload; nothing may follow it)
//
// Contract — resume equals continuous: restore(snapshot at event k) followed
// by run() produces byte-identical results (samples, counters, metrics,
// traces, delivered ids) to the uninterrupted run, for any k and any
// PHOTODTN_THREADS setting. Everything order- or rounding-sensitive is
// serialized in the order the run produced it; everything that is a pure
// function of the scenario (fault plans, coverage footprints, per-PoI
// caches) is reconstructed, with a META fingerprint guarding against
// restoring into a different scenario.
//
// Contract — adversary-proof restore: any truncated, bit-flipped,
// version-skewed, or semantically inconsistent snapshot throws
// SnapshotError with a diagnostic; it never crashes, reads out of bounds,
// or silently installs wrong state. A restore that throws leaves the
// simulator partially written — discard it and construct a fresh one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "persist/codec.h"

namespace photodtn {
class Scheme;
class Simulator;
}  // namespace photodtn

namespace photodtn::persist {

inline constexpr std::string_view kSnapshotMagic = "PDTNSNP1";
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// The snapshot's self-description (META section).
struct SnapshotMeta {
  std::uint32_t version = 0;
  std::string scheme;            // Scheme::name() at checkpoint time
  std::uint64_t seed = 0;        // SimConfig::seed
  std::uint64_t event_index = 0; // event-loop iterations completed
  double now = 0.0;              // simulation clock at the checkpoint
  std::uint32_t fingerprint = 0; // scenario/config identity CRC
};

/// Serializes the complete deterministic state of a mid-run simulator and
/// its scheme. Valid only at the event-loop boundary — i.e. from inside a
/// Simulator checkpoint hook, or before run() starts.
std::string checkpoint(Simulator& sim, const Scheme& scheme);

/// Loads a snapshot into a freshly constructed simulator (same model, trace,
/// workload, and config as the checkpointed run — enforced via the META
/// fingerprint) and the matching scheme instance. Runs scheme.init() first,
/// then installs state, then deep-audits. After this, sim.run(scheme)
/// resumes from the checkpointed event. Throws SnapshotError on any
/// corruption, mismatch, or failed audit.
void restore(Simulator& sim, Scheme& scheme, std::string_view data);

/// Parses and checksums the container, returning the META section without
/// touching any simulator. Throws SnapshotError on malformed input.
SnapshotMeta peek_meta(std::string_view data);

}  // namespace photodtn::persist
