// Checked file I/O for every artifact the toolchain writes (snapshots,
// result JSON, traces, CSV tables). Raw `std::ofstream << ...` silently
// truncates on ENOSPC or a bad path; these helpers verify open, write, AND
// flush, and surface the OS error. The repo lint
// (tools/lint/photodtn_lint.py, rule raw-file-write) routes all raw
// ofstream/fwrite use in src/ through here.
#pragma once

#include <string>
#include <string_view>

namespace photodtn::persist {

/// Writes `data` to `path`, replacing any existing file. Returns true on
/// success; on failure prints one clear diagnostic line (path + errno
/// string) to stderr and returns false. The file may be left partially
/// written on failure — use atomic_write_file when that matters.
bool checked_write_file(const std::string& path, std::string_view data);

/// Crash-safe replace: writes to `path + ".tmp"`, flushes, then renames over
/// `path`. A reader never observes a half-written file — it sees either the
/// old content or the new, which is what lets a checkpoint written every N
/// events survive a SIGKILL at any instant. Diagnostics as above.
bool atomic_write_file(const std::string& path, std::string_view data);

/// Reads the whole file in binary mode into `out`. Returns true on success;
/// on failure prints a diagnostic to stderr and returns false.
bool read_file(const std::string& path, std::string& out);

}  // namespace photodtn::persist
