#include "persist/file_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace photodtn::persist {

namespace {

void report(const std::string& path, const char* verb) {
  // errno may already be clobbered by stream teardown; capture first.
  const int err = errno;
  std::fprintf(stderr, "photodtn: failed to %s '%s': %s\n", verb, path.c_str(),
               err != 0 ? std::strerror(err) : "stream error");
}

}  // namespace

bool checked_write_file(const std::string& path, std::string_view data) {
  errno = 0;
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    report(path, "open for writing");
    return false;
  }
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  // flush() pushes buffered bytes to the OS so ENOSPC surfaces here, not in
  // a destructor that swallows it.
  f.flush();
  if (!f) {
    report(path, "write");
    return false;
  }
  f.close();
  if (f.fail()) {
    report(path, "close after writing");
    return false;
  }
  return true;
}

bool atomic_write_file(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  if (!checked_write_file(tmp, data)) return false;
  errno = 0;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    report(path, "rename temporary file onto");
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  errno = 0;
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    report(path, "open for reading");
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  if (f.bad()) {
    report(path, "read");
    return false;
  }
  out = std::move(ss).str();
  return true;
}

}  // namespace photodtn::persist
