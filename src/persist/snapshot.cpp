#include "persist/snapshot.h"

#include <array>
#include <stdexcept>
#include <utility>

#include "dtn/scheme.h"
#include "dtn/simulator.h"
#include "persist/state_access.h"

namespace photodtn::persist {

namespace {

constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24);
}

constexpr std::uint32_t kMeta = fourcc('M', 'E', 'T', 'A');
constexpr std::uint32_t kSim = fourcc('S', 'I', 'M', ' ');
constexpr std::uint32_t kNode = fourcc('N', 'O', 'D', 'E');
constexpr std::uint32_t kObs = fourcc('O', 'B', 'S', ' ');
constexpr std::uint32_t kTrce = fourcc('T', 'R', 'C', 'E');
constexpr std::uint32_t kSchm = fourcc('S', 'C', 'H', 'M');
constexpr std::uint32_t kEnd = fourcc('E', 'N', 'D', ' ');

struct SectionSpec {
  std::uint32_t id;
  const char* name;
};

constexpr std::array<SectionSpec, 7> kSections{{
    {kMeta, "META"},
    {kSim, "SIM"},
    {kNode, "NODE"},
    {kObs, "OBS"},
    {kTrce, "TRCE"},
    {kSchm, "SCHM"},
    {kEnd, "END"},
}};

void append_section(StateWriter& out, std::uint32_t id, std::string_view payload) {
  out.u32(id);
  out.u64(payload.size());
  out.u32(crc32(payload));
  out.raw(payload);
}

/// The section payloads, in kSections order (END's is empty).
struct Parsed {
  std::array<std::string_view, kSections.size()> payloads;
};

Parsed parse(std::string_view data) {
  StateReader r(data, "snapshot container");
  if (data.size() < kSnapshotMagic.size() ||
      data.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    throw SnapshotError("snapshot container: bad magic (not a photodtn snapshot)");
  }
  r.raw(kSnapshotMagic.size());
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("snapshot container: unsupported version " +
                        std::to_string(version) + " (this build reads version " +
                        std::to_string(kSnapshotVersion) + ")");
  }
  Parsed parsed;
  for (std::size_t i = 0; i < kSections.size(); ++i) {
    const SectionSpec& spec = kSections[i];
    const std::uint32_t id = r.u32();
    if (id != spec.id) {
      r.fail(std::string("expected section ") + spec.name +
             " (sections are fixed-order)");
    }
    const std::uint64_t len = r.u64();
    if (r.remaining() < 4 || len > r.remaining() - 4) {
      r.fail(std::string("section ") + spec.name + " length " +
             std::to_string(len) + " exceeds the file");
    }
    const std::uint32_t stored_crc = r.u32();
    const std::string_view payload = r.raw(static_cast<std::size_t>(len));
    if (crc32(payload) != stored_crc) {
      throw SnapshotError(std::string("snapshot container: CRC mismatch in section ") +
                          spec.name + " (corrupt or tampered payload)");
    }
    parsed.payloads[i] = payload;
  }
  if (!parsed.payloads.back().empty()) {
    throw SnapshotError("snapshot container: END section must be empty");
  }
  r.expect_end();
  return parsed;
}

SnapshotMeta read_meta(std::string_view payload) {
  StateReader r(payload, "snapshot META section");
  SnapshotMeta m;
  m.version = kSnapshotVersion;
  m.scheme = r.str();
  m.seed = r.u64();
  m.event_index = r.u64();
  m.now = r.f64();
  m.fingerprint = r.u32();
  r.expect_end();
  return m;
}

std::uint32_t compute_fingerprint(Simulator& sim, const Scheme& scheme) {
  StateWriter basis;
  basis.str(scheme.name());
  StateAccess::write_fingerprint_basis(basis, sim);
  return crc32(basis.bytes());
}

}  // namespace

std::string checkpoint(Simulator& sim, const Scheme& scheme) {
  StateWriter meta;
  meta.str(scheme.name());
  meta.u64(sim.config().seed);
  meta.u64(sim.event_index());
  meta.f64(sim.now());
  meta.u32(compute_fingerprint(sim, scheme));

  StateWriter sim_w;
  StateAccess::save_sim(sim_w, sim);
  StateWriter node_w;
  StateAccess::save_nodes(node_w, sim);
  StateWriter obs_w;
  StateAccess::save_obs(obs_w, sim);
  StateWriter trce_w;
  StateAccess::save_trace(trce_w, sim);
  StateWriter schm_w;
  scheme.save_persist_state(schm_w);

  StateWriter out;
  out.raw(kSnapshotMagic);
  out.u32(kSnapshotVersion);
  append_section(out, kMeta, meta.bytes());
  append_section(out, kSim, sim_w.bytes());
  append_section(out, kNode, node_w.bytes());
  append_section(out, kObs, obs_w.bytes());
  append_section(out, kTrce, trce_w.bytes());
  append_section(out, kSchm, schm_w.bytes());
  append_section(out, kEnd, {});
  return out.take();
}

void restore(Simulator& sim, Scheme& scheme, std::string_view data) {
  const Parsed parsed = parse(data);
  const SnapshotMeta meta = read_meta(parsed.payloads[0]);

  if (StateAccess::has_run(sim)) {
    throw SnapshotError(
        "snapshot: restore requires a freshly constructed simulator");
  }
  if (meta.scheme != scheme.name()) {
    throw SnapshotError("snapshot: taken under scheme '" + meta.scheme +
                        "', cannot restore into '" + scheme.name() + "'");
  }
  if (meta.fingerprint != compute_fingerprint(sim, scheme)) {
    throw SnapshotError(
        "snapshot: scenario fingerprint mismatch — the simulator was built "
        "from a different model/trace/workload/config than the checkpoint");
  }

  try {
    // init() first: it wires obs handles and resets scheme state, exactly as
    // the original run's init did; the loads below then overwrite the parts
    // the checkpoint captured. run() skips init for a restored simulator.
    scheme.init(sim);

    StateReader sim_r(parsed.payloads[1], "snapshot SIM section");
    StateAccess::load_sim(sim_r, sim);
    sim_r.expect_end();
    if (StateAccess::sim_event_index(sim) != meta.event_index) {
      throw SnapshotError("snapshot: META/SIM event index disagreement");
    }

    StateReader node_r(parsed.payloads[2], "snapshot NODE section");
    StateAccess::load_nodes(node_r, sim);
    node_r.expect_end();

    StateAccess::rebuild_cc_coverage(sim);

    StateReader obs_r(parsed.payloads[3], "snapshot OBS section");
    StateAccess::load_obs(obs_r, sim);
    obs_r.expect_end();

    StateReader trce_r(parsed.payloads[4], "snapshot TRCE section");
    StateAccess::load_trace(trce_r, sim);
    trce_r.expect_end();

    StateReader schm_r(parsed.payloads[5], "snapshot SCHM section");
    scheme.load_persist_state(schm_r, sim);
    schm_r.expect_end();

    StateAccess::mark_restored(sim);
  } catch (const std::logic_error& e) {
    // Contract checks and deep audits report programming errors; coming from
    // deserialized input they mean the snapshot is inconsistent, which is a
    // runtime condition the caller handles.
    throw SnapshotError(std::string("snapshot failed deep validation: ") +
                        e.what());
  }
}

SnapshotMeta peek_meta(std::string_view data) {
  return read_meta(parse(data).payloads[0]);
}

}  // namespace photodtn::persist
