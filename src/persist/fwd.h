// Forward declarations for the persistence layer, so state-bearing classes
// can grant `friend struct persist::StateAccess;` without pulling snapshot
// machinery into their headers.
#pragma once

namespace photodtn::persist {

/// The single friend the snapshot codec uses to reach private state. Keeping
/// all privileged access behind one named struct makes the serialization
/// surface greppable and keeps classes from exposing restore-only mutators
/// in their public APIs.
struct StateAccess;

class StateWriter;
class StateReader;

}  // namespace photodtn::persist
