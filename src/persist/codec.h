// Binary snapshot codec: bounds-checked little-endian readers/writers and
// the CRC32 used to seal every snapshot section.
//
// Determinism contract: a StateWriter emits a pure function of the values
// written — fixed-width little-endian integers, IEEE-754 doubles by bit
// pattern, length-prefixed strings — so byte-comparing two snapshots
// compares the serialized state exactly. Containers must be written in a
// deterministic order by the caller (sorted by key for hash maps).
//
// Failure contract: a StateReader never crashes or reads out of bounds on
// adversarial input. Every malformed condition (truncation, length overflow,
// trailing garbage) throws SnapshotError with a diagnostic message; the
// caller decides whether that aborts a restore or fails a corpus test.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace photodtn::persist {

/// Any malformed, truncated, version-skewed, or checksum-failing snapshot
/// condition. Deliberately distinct from std::logic_error (programming
/// errors): corrupt input is an expected runtime condition callers handle.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`. Standard zlib-style
/// parameters: init 0xffffffff, final xor 0xffffffff.
std::uint32_t crc32(std::string_view data) noexcept;

/// Append-only little-endian byte sink.
class StateWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern: round-trips every value (NaN payloads included).
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed (u32) raw bytes.
  void str(std::string_view s);
  void raw(std::string_view bytes) { out_.append(bytes.data(), bytes.size()); }

  const std::string& bytes() const noexcept { return out_; }
  std::string take() { return std::move(out_); }
  std::size_t size() const noexcept { return out_.size(); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a byte view. The view must outlive the reader.
class StateReader {
 public:
  explicit StateReader(std::string_view data, std::string context = "snapshot")
      : data_(data), context_(std::move(context)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean();
  std::string str();
  /// Reads exactly `n` raw bytes.
  std::string_view raw(std::size_t n);

  std::size_t offset() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

  /// Throws SnapshotError unless every byte has been consumed — trailing
  /// garbage in a sealed section means the payload is not what its length
  /// claims.
  void expect_end() const;

  /// Reads a u64 element count and validates it against the bytes actually
  /// left (each element needs at least `min_element_bytes`), so a corrupted
  /// count cannot drive a multi-gigabyte allocation before the bounds
  /// checks would catch it.
  std::size_t count(std::size_t min_element_bytes);

  [[noreturn]] void fail(const std::string& what) const;

 private:
  void need(std::size_t n) const;

  std::string_view data_;
  std::string context_;
  std::size_t pos_ = 0;
};

}  // namespace photodtn::persist
