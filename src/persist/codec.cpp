#include "persist/codec.h"

#include <array>
#include <cstring>

namespace photodtn::persist {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void StateWriter::u32(std::uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xffu);
  b[1] = static_cast<char>((v >> 8) & 0xffu);
  b[2] = static_cast<char>((v >> 16) & 0xffu);
  b[3] = static_cast<char>((v >> 24) & 0xffu);
  out_.append(b, 4);
}

void StateWriter::u64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  out_.append(b, 8);
}

void StateWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void StateWriter::str(std::string_view s) {
  if (s.size() > 0xffffffffu) {
    throw SnapshotError("persist: string too long to serialize (" +
                        std::to_string(s.size()) + " bytes)");
  }
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

void StateReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw SnapshotError(context_ + ": truncated at offset " +
                        std::to_string(pos_) + " (need " + std::to_string(n) +
                        " bytes, have " + std::to_string(remaining()) + ")");
  }
}

std::uint8_t StateReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t StateReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t StateReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double StateReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool StateReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) fail("boolean byte out of range (" + std::to_string(v) + ")");
  return v == 1;
}

std::string StateReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::string_view StateReader::raw(std::size_t n) {
  need(n);
  std::string_view v = data_.substr(pos_, n);
  pos_ += n;
  return v;
}

void StateReader::expect_end() const {
  if (!at_end()) {
    throw SnapshotError(context_ + ": " + std::to_string(remaining()) +
                        " trailing bytes after last field");
  }
}

std::size_t StateReader::count(std::size_t min_element_bytes) {
  const std::uint64_t n = u64();
  const std::size_t per = min_element_bytes == 0 ? 1 : min_element_bytes;
  if (n > remaining() / per) {
    fail("element count " + std::to_string(n) +
         " exceeds remaining payload (" + std::to_string(remaining()) +
         " bytes, >= " + std::to_string(per) + " per element)");
  }
  return static_cast<std::size_t>(n);
}

void StateReader::fail(const std::string& what) const {
  throw SnapshotError(context_ + ": " + what + " (offset " +
                      std::to_string(pos_) + ")");
}

}  // namespace photodtn::persist
