// The snapshot codec's single privileged accessor (declared in persist/fwd.h,
// befriended by every state-bearing class). All checkpoint/restore field
// access funnels through the static methods here, so the serialization
// surface is greppable in one place and no class grows restore-only public
// mutators.
//
// Header-only on purpose: scheme translation units serialize their own
// private state (metadata caches, selection engines, spray counters) through
// these methods while linking only the low-level persist codec — the
// full-snapshot assembly (persist/snapshot.h) is the only code that needs
// the simulator-level methods.
//
// Determinism rules, enforced here:
//   * unordered containers serialize sorted by key (insertion order is an
//     implementation detail the output must not depend on);
//   * SelectionEnvironment cover lists serialize in *list order* — refresh()
//     folds floating-point miss products in that order, so preserving it is
//     what makes the rebuilt cached state bit-identical;
//   * ArcSet intervals restore verbatim (re-adding could renormalize with
//     different rounding), then audit.
//
// Failure rules: every load validates what the CRC cannot — semantic
// invariants like matching element counts, probabilities in range, monotone
// ids — and reports through StateReader::fail (SnapshotError). Deep audit()
// checks run at the end of each structured load.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dtn/simulator.h"
#include "geometry/arc_set.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "persist/codec.h"
#include "routing/prophet.h"
#include "routing/rate_estimator.h"
#include "routing/spray_counter.h"
#include "selection/greedy_selector.h"
#include "selection/metadata_cache.h"
#include "selection/selection_env.h"
#include "util/rng.h"

namespace photodtn::persist {

struct StateAccess {
  // ------------------------------------------------------------- primitives

  template <typename Map>
  static std::vector<typename Map::key_type> sorted_keys(const Map& m) {
    std::vector<typename Map::key_type> keys;
    keys.reserve(m.size());
    for (const auto& kv : m) keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  static void save(StateWriter& w, const Rng& rng) {
    for (const std::uint64_t word : rng.state_) w.u64(word);
  }
  static void load(StateReader& r, Rng& rng) {
    for (std::uint64_t& word : rng.state_) word = r.u64();
  }

  static void save(StateWriter& w, const ArcSet& arcs) {
    w.u64(arcs.intervals_.size());
    for (const auto& [lo, hi] : arcs.intervals_) {
      w.f64(lo);
      w.f64(hi);
    }
  }
  static void load(StateReader& r, ArcSet& arcs) {
    const std::size_t n = r.count(16);
    arcs.intervals_.clear();
    arcs.intervals_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double lo = r.f64();
      const double hi = r.f64();
      arcs.intervals_.emplace_back(lo, hi);
    }
    arcs.audit();  // canonical form: sorted, disjoint, normalized
  }

  static void save(StateWriter& w, const PhotoMeta& m) {
    w.u64(m.id);
    w.i32(m.taken_by);
    w.f64(m.location.x);
    w.f64(m.location.y);
    w.f64(m.range);
    w.f64(m.fov);
    w.f64(m.orientation);
    w.u64(m.size_bytes);
    w.f64(m.taken_at);
    w.f64(m.quality);
  }
  static void load(StateReader& r, PhotoMeta& m) {
    m.id = r.u64();
    m.taken_by = r.i32();
    m.location.x = r.f64();
    m.location.y = r.f64();
    m.range = r.f64();
    m.fov = r.f64();
    m.orientation = r.f64();
    m.size_bytes = r.u64();
    m.taken_at = r.f64();
    m.quality = r.f64();
  }

  // Capacity is reconstruction state (node config), not snapshot state: only
  // the stored photos serialize, sorted by id.
  static void save(StateWriter& w, const PhotoStore& store) {
    const auto ids = sorted_keys(store.map());
    w.u64(ids.size());
    for (const PhotoId id : ids) save(w, store.map().at(id));
  }
  static void load(StateReader& r, PhotoStore& store) {
    if (!store.empty()) r.fail("photo store not empty before restore");
    const std::size_t n = r.count(8);
    PhotoId prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      PhotoMeta m;
      load(r, m);
      if (i > 0 && m.id <= prev) r.fail("photo store ids not strictly increasing");
      prev = m.id;
      if (!store.add(m)) {
        r.fail("photo " + std::to_string(m.id) +
               " rejected by the store (duplicate or over capacity)");
      }
    }
    store.audit();
  }

  // Config and self id are reconstruction state; the aging clock and the
  // predictability table are the run state.
  static void save(StateWriter& w, const ProphetTable& p) {
    w.f64(p.last_aged_);
    const auto peers = sorted_keys(p.table_);
    w.u64(peers.size());
    for (const NodeId peer : peers) {
      w.i32(peer);
      w.f64(p.table_.at(peer));
    }
  }
  static void load(StateReader& r, ProphetTable& p) {
    p.last_aged_ = r.f64();
    const std::size_t n = r.count(12);
    p.table_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId peer = r.i32();
      if (p.table_.count(peer) != 0) r.fail("duplicate PROPHET peer entry");
      p.table_[peer] = r.f64();
    }
    p.audit();
  }

  static void save(StateWriter& w, const RateEstimator& e) {
    w.f64(e.start_);
    w.u64(e.total_);
    const auto peers = sorted_keys(e.counts_);
    w.u64(peers.size());
    for (const NodeId peer : peers) {
      w.i32(peer);
      w.u64(e.counts_.at(peer));
    }
  }
  static void load(StateReader& r, RateEstimator& e) {
    e.start_ = r.f64();
    e.total_ = r.u64();
    const std::size_t n = r.count(12);
    e.counts_.clear();
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId peer = r.i32();
      if (e.counts_.count(peer) != 0) r.fail("duplicate rate-estimator peer");
      const std::uint64_t c = r.u64();
      if (c == 0) r.fail("zero-count rate-estimator entry");
      e.counts_[peer] = static_cast<std::size_t>(c);
      sum += c;
    }
    if (sum != e.total_) r.fail("rate-estimator total does not match per-peer sum");
  }

  static void save(StateWriter& w, const SprayCounter& c) {
    w.u32(c.initial_copies_);
    const auto photos = sorted_keys(c.copies_);
    w.u64(photos.size());
    for (const PhotoId id : photos) {
      w.u64(id);
      w.u32(c.copies_.at(id));
    }
  }
  static void load(StateReader& r, SprayCounter& c) {
    c.initial_copies_ = r.u32();
    const std::size_t n = r.count(12);
    c.copies_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const PhotoId id = r.u64();
      if (c.copies_.count(id) != 0) r.fail("duplicate spray-counter photo");
      const std::uint32_t copies = r.u32();
      if (copies == 0) r.fail("zero-copy spray-counter entry");
      c.copies_[id] = copies;
    }
  }

  static void save(StateWriter& w, const MetadataCache& c) {
    w.f64(c.p_thld_);
    w.u64(c.next_revision_);
    const auto owners = sorted_keys(c.entries_);
    w.u64(owners.size());
    for (const NodeId owner : owners) {
      const MetadataEntry& e = c.entries_.at(owner);
      w.i32(e.owner);
      w.f64(e.observed_at);
      w.f64(e.lambda);
      w.f64(e.delivery_prob);
      w.u64(e.revision);
      w.u64(e.photos.size());
      for (const PhotoMeta& m : e.photos) save(w, m);
    }
  }
  static void load(StateReader& r, MetadataCache& c) {
    c.p_thld_ = r.f64();
    c.next_revision_ = r.u64();
    const std::size_t n = r.count(36);
    c.entries_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      MetadataEntry e;
      e.owner = r.i32();
      e.observed_at = r.f64();
      e.lambda = r.f64();
      e.delivery_prob = r.f64();
      e.revision = r.u64();
      const std::size_t photos = r.count(8);
      e.photos.reserve(photos);
      for (std::size_t k = 0; k < photos; ++k) {
        PhotoMeta m;
        load(r, m);
        e.photos.push_back(m);
      }
      if (c.entries_.count(e.owner) != 0) r.fail("duplicate metadata-cache owner");
      c.entries_[e.owner] = std::move(e);
    }
    c.audit();
  }

  // Cover lists serialize in list order and the cached per-PoI factors are
  // *recomputed* through refresh() — a pure function of the ordered list —
  // rather than serialized, so the restored floating-point state is the
  // product of the same multiplications in the same order.
  static void save(StateWriter& w, const SelectionEnvironment& env) {
    w.u64(env.rebuilds_);
    w.u64(env.covers_.size());
    for (std::size_t poi = 0; poi < env.covers_.size(); ++poi) {
      const auto& covers = env.covers_[poi];
      w.u64(covers.size());
      for (const NodePoiCover& c : covers) {
        w.i32(c.node);
        w.f64(c.p);
        save(w, c.arcs);
      }
      w.boolean(env.dirty_[poi] != 0);
    }
    const auto nodes = sorted_keys(env.loaded_);
    w.u64(nodes.size());
    for (const NodeId node : nodes) {
      const auto& entry = env.loaded_.at(node);
      w.i32(node);
      w.f64(entry.delivery_prob);
      w.u64(entry.touched.size());
      for (const std::size_t poi : entry.touched) w.u64(poi);
    }
  }
  static void load(StateReader& r, SelectionEnvironment& env) {
    const std::size_t pois = env.covers_.size();  // sized by the model at construction
    env.rebuilds_ = 0;
    const std::uint64_t saved_rebuilds = r.u64();
    if (r.u64() != pois) r.fail("selection environment PoI count mismatch");
    for (std::size_t poi = 0; poi < pois; ++poi) {
      const std::size_t covers = r.count(12);
      env.covers_[poi].clear();
      env.covers_[poi].reserve(covers);
      for (std::size_t i = 0; i < covers; ++i) {
        NodePoiCover c;
        c.node = r.i32();
        c.p = r.f64();
        load(r, c.arcs);
        env.covers_[poi].push_back(std::move(c));
      }
      env.dirty_[poi] = r.boolean() ? 1 : 0;
    }
    const std::size_t nodes = r.count(12);
    env.loaded_.clear();
    for (std::size_t i = 0; i < nodes; ++i) {
      const NodeId node = r.i32();
      if (env.loaded_.count(node) != 0) r.fail("duplicate environment collection");
      auto& entry = env.loaded_[node];
      entry.delivery_prob = r.f64();
      const std::size_t touched = r.count(8);
      entry.touched.reserve(touched);
      for (std::size_t k = 0; k < touched; ++k) {
        const std::uint64_t poi = r.u64();
        if (poi >= pois) r.fail("environment touched-PoI index out of range");
        entry.touched.push_back(static_cast<std::size_t>(poi));
      }
    }
    // Rebuild the cached factors of every clean PoI now (dirty ones rebuild
    // lazily, exactly as they would have mid-run), then pin the rebuild
    // counter back to the checkpointed reading — consumers diff it.
    for (std::size_t poi = 0; poi < pois; ++poi) {
      if (!env.dirty_[poi]) env.refresh(poi);
    }
    env.rebuilds_ = saved_rebuilds;
    env.audit();
  }

  static void save(StateWriter& w, const SelectionStats& s) {
    w.u64(s.gain_evals);
    w.u64(s.reevals);
    w.u64(s.commits);
  }
  static void load(StateReader& r, SelectionStats& s) {
    s.gain_evals = r.u64();
    s.reevals = r.u64();
    s.commits = r.u64();
  }

  static void save(StateWriter& w, const GreedySelector& sel) {
    save(w, sel.stats_);
    save(w, sel.totals_);
  }
  static void load(StateReader& r, GreedySelector& sel) {
    load(r, sel.stats_);
    load(r, sel.totals_);
  }

  // ---------------------------------------------------------- observability

  static void save(StateWriter& w, const obs::MetricsRegistry& reg) {
    // Serialize by sorted name: handle indices depend on registration order,
    // which restore does not replay.
    auto sorted_index = [](const std::vector<std::string>& names) {
      std::vector<std::size_t> idx(names.size());
      for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return names[a] < names[b];
      });
      return idx;
    };
    const auto cidx = sorted_index(reg.counter_names_);
    w.u64(cidx.size());
    for (const std::size_t i : cidx) {
      w.str(reg.counter_names_[i]);
      w.u64(reg.counter_values_[i]);
    }
    const auto gidx = sorted_index(reg.gauge_names_);
    w.u64(gidx.size());
    for (const std::size_t i : gidx) {
      w.str(reg.gauge_names_[i]);
      w.f64(reg.gauge_values_[i]);
    }
    const auto hidx = sorted_index(reg.histogram_names_);
    w.u64(hidx.size());
    for (const std::size_t i : hidx) {
      const auto& h = reg.histograms_[i];
      w.str(reg.histogram_names_[i]);
      w.u64(h.bounds.size());
      for (const std::uint64_t b : h.bounds) w.u64(b);
      w.u64(h.counts.size());
      for (const std::uint64_t c : h.counts) w.u64(c);
      w.u64(h.count);
      w.u64(h.sum);
      w.u64(h.min);
      w.u64(h.max);
    }
  }
  static void load(StateReader& r, obs::MetricsRegistry& reg) {
    // Find-or-create by name, then write the value through the handle: names
    // already registered (simulator ctor, scheme init) are updated in place,
    // snapshot-only names register fresh.
    const std::size_t counters = r.count(12);
    for (std::size_t i = 0; i < counters; ++i) {
      const std::string name = r.str();
      if (name.empty()) r.fail("empty counter name");
      const std::uint64_t value = r.u64();
      reg.counter_values_[reg.counter(name).idx] = value;
    }
    const std::size_t gauges = r.count(12);
    for (std::size_t i = 0; i < gauges; ++i) {
      const std::string name = r.str();
      if (name.empty()) r.fail("empty gauge name");
      const double value = r.f64();
      reg.set(reg.gauge(name), value);
    }
    const std::size_t histograms = r.count(28);
    for (std::size_t i = 0; i < histograms; ++i) {
      const std::string name = r.str();
      if (name.empty()) r.fail("empty histogram name");
      const std::size_t nbounds = r.count(8);
      std::vector<std::uint64_t> bounds;
      bounds.reserve(nbounds);
      for (std::size_t k = 0; k < nbounds; ++k) bounds.push_back(r.u64());
      const std::size_t ncounts = r.count(8);
      if (ncounts != nbounds + 1) r.fail("histogram bucket count mismatch");
      obs::MetricsRegistry::HistogramState st;
      st.bounds = bounds;
      st.counts.reserve(ncounts);
      for (std::size_t k = 0; k < ncounts; ++k) st.counts.push_back(r.u64());
      st.count = r.u64();
      st.sum = r.u64();
      st.min = r.u64();
      st.max = r.u64();
      // histogram() validates the bounds (and bounds-equality when the name
      // was pre-registered); bad bounds throw logic_error, which the restore
      // wrapper converts to SnapshotError.
      const auto h = reg.histogram(name, std::move(bounds));
      reg.histograms_[h.idx] = std::move(st);
    }
    reg.audit();
  }

  static void save(StateWriter& w, const obs::TraceRecorder& rec) {
    w.u64(rec.next_seq_.load(std::memory_order_relaxed));
    const std::vector<obs::TraceEvent> events = rec.merged();
    w.u64(events.size());
    for (const obs::TraceEvent& ev : events) {
      w.u8(static_cast<std::uint8_t>(ev.phase));
      w.str(ev.name);
      w.str(ev.cat);
      w.f64(ev.ts_s);
      w.f64(ev.dur_s);
      w.i32(ev.tid);
      w.u64(ev.seq);
      w.u32(ev.nargs);
      for (std::uint32_t i = 0; i < ev.nargs && i < obs::TraceEvent::kMaxArgs; ++i) {
        w.str(ev.args[i].first);
        w.f64(ev.args[i].second);
      }
    }
  }
  static void load(StateReader& r, obs::TraceRecorder& rec) {
    const std::uint64_t next_seq = r.u64();
    const std::size_t n = r.count(41);
    std::vector<obs::TraceEvent> events;
    events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      obs::TraceEvent ev;
      const std::uint8_t phase = r.u8();
      if (phase != 'X' && phase != 'i' && phase != 'C') {
        r.fail("unknown trace event phase");
      }
      ev.phase = static_cast<obs::TraceEvent::Phase>(phase);
      ev.name = rec.intern(r.str());
      ev.cat = rec.intern(r.str());
      ev.ts_s = r.f64();
      ev.dur_s = r.f64();
      ev.tid = r.i32();
      ev.seq = r.u64();
      if (ev.seq >= next_seq) r.fail("trace sequence stamp beyond the clock");
      ev.nargs = r.u32();
      if (ev.nargs > obs::TraceEvent::kMaxArgs) r.fail("trace arg count out of range");
      for (std::uint32_t k = 0; k < ev.nargs; ++k) {
        ev.args[k].first = rec.intern(r.str());
        ev.args[k].second = r.f64();
      }
      events.push_back(ev);
    }
    rec.restore_events(std::move(events), next_seq);
    rec.audit();
  }

  // ----------------------------------------------------------- simulator

  static void save_sim(StateWriter& w, Simulator& sim) {
    w.u64(sim.event_index_);
    w.f64(sim.now_);
    w.u64(sim.ci_);
    w.u64(sim.pi_);
    w.u64(sim.fi_);
    w.f64(sim.next_sample_);
    save(w, sim.rng_);
    w.u64(sim.down_.size());
    for (const char d : sim.down_) w.boolean(d != 0);
    w.u64(sim.delivered_);
    w.u64(sim.delivered_ids_.size());
    for (const PhotoId id : sim.delivered_ids_) w.u64(id);
    w.u64(sim.samples_.size());
    for (const SimSample& s : sim.samples_) {
      w.f64(s.time);
      w.f64(s.point_coverage);
      w.f64(s.aspect_coverage);
      w.f64(s.full_view_coverage);
      w.u64(s.delivered_photos);
      w.u64(s.bytes_transferred);
    }
  }
  static void load_sim(StateReader& r, Simulator& sim) {
    sim.event_index_ = r.u64();
    sim.now_ = r.f64();
    sim.ci_ = static_cast<std::size_t>(r.u64());
    sim.pi_ = static_cast<std::size_t>(r.u64());
    sim.fi_ = static_cast<std::size_t>(r.u64());
    sim.next_sample_ = r.f64();
    load(r, sim.rng_);
    if (sim.ci_ > sim.trace_->contacts().size()) r.fail("contact cursor out of range");
    if (sim.pi_ > sim.photo_events_.size()) r.fail("photo cursor out of range");
    if (sim.fi_ > sim.faults_.transitions().size()) r.fail("churn cursor out of range");
    const std::size_t down = r.count(1);
    if (down != sim.down_.size()) r.fail("node count mismatch in down flags");
    for (std::size_t i = 0; i < down; ++i) sim.down_[i] = r.boolean() ? 1 : 0;
    sim.delivered_ = r.u64();
    const std::size_t ids = r.count(8);
    if (ids != sim.delivered_) r.fail("delivered count does not match id list");
    sim.delivered_ids_.clear();
    sim.delivered_ids_.reserve(ids);
    for (std::size_t i = 0; i < ids; ++i) sim.delivered_ids_.push_back(r.u64());
    const std::size_t samples = r.count(48);
    sim.samples_.clear();
    sim.samples_.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i) {
      SimSample s;
      s.time = r.f64();
      s.point_coverage = r.f64();
      s.aspect_coverage = r.f64();
      s.full_view_coverage = r.f64();
      s.delivered_photos = r.u64();
      s.bytes_transferred = r.u64();
      sim.samples_.push_back(s);
    }
  }

  static void save_nodes(StateWriter& w, Simulator& sim) {
    w.u64(sim.nodes_.size());
    for (const Node& n : sim.nodes_) {
      save(w, n.store());
      save(w, n.prophet());
      save(w, n.rates());
    }
  }
  static void load_nodes(StateReader& r, Simulator& sim) {
    const std::size_t n = r.count(24);
    if (n != sim.nodes_.size()) r.fail("node count mismatch");
    for (Node& node : sim.nodes_) {
      load(r, node.store());
      load(r, node.prophet());
      load(r, node.rates());
    }
  }

  static void save_obs(StateWriter& w, Simulator& sim) {
    save(w, sim.obs_.registry());
  }
  static void load_obs(StateReader& r, Simulator& sim) {
    load(r, sim.obs_.registry());
  }
  static void save_trace(StateWriter& w, Simulator& sim) {
    save(w, sim.obs_.trace());
  }
  static void load_trace(StateReader& r, Simulator& sim) {
    load(r, sim.obs_.trace());
  }

  /// Replays the delivered-id list against the restored command-center store
  /// to rebuild the coverage map in original delivery order — the same adds
  /// in the same order produce the same floating-point accumulation.
  static void rebuild_cc_coverage(Simulator& sim) {
    const Node& center = sim.nodes_.at(0);
    for (const PhotoId id : sim.delivered_ids_) {
      const PhotoMeta* meta = center.store().find(id);
      if (meta == nullptr) {
        throw SnapshotError("snapshot: delivered photo " + std::to_string(id) +
                            " missing from the command-center store");
      }
      sim.cc_coverage_.add(sim.model_->footprint_cached(*meta));
    }
  }

  static bool has_run(const Simulator& sim) { return sim.ran_; }
  static void mark_restored(Simulator& sim) { sim.restored_ = true; }
  static std::uint64_t sim_event_index(const Simulator& sim) {
    return sim.event_index_;
  }

  /// The scenario identity a snapshot is only valid against: everything that
  /// shapes the event sequence. Serialized canonically and CRC'd into the
  /// META fingerprint; a restore against a different scenario/config fails
  /// fast with a diagnostic instead of deep in an audit.
  static void write_fingerprint_basis(StateWriter& w, Simulator& sim) {
    w.i32(sim.trace_->num_nodes());
    w.f64(sim.trace_->horizon());
    w.u64(sim.trace_->contacts().size());
    w.u64(sim.photo_events_.size());
    w.u64(sim.faults_.transitions().size());
    w.u64(sim.config_.seed);
    w.u64(sim.config_.node_storage_bytes);
    w.f64(sim.config_.bandwidth_bytes_per_s);
    w.boolean(sim.config_.unlimited_bandwidth);
    w.boolean(sim.config_.unlimited_storage);
    w.f64(sim.config_.contact_setup_s);
    w.u64(sim.config_.metadata_bytes_per_photo);
    w.f64(sim.config_.sample_interval_s);
    w.u64(sim.model_->pois().size());
    w.boolean(sim.obs_.metrics_on());
    w.boolean(sim.obs_.trace_on());
  }
};

}  // namespace photodtn::persist
