#include "selection/exact_solver.h"

#include <unordered_set>

#include "util/check.h"

namespace photodtn {

namespace {

/// Expected coverage of environment + the two candidate collections.
CoverageValue evaluate(const CoverageModel& model,
                       std::span<const NodeCollection> environment,
                       const NodeCollection& a, const NodeCollection& b) {
  std::vector<NodeCollection> nodes(environment.begin(), environment.end());
  if (!a.footprints.empty()) nodes.push_back(a);
  if (!b.footprints.empty()) nodes.push_back(b);
  return expected_coverage_exact(model, nodes);
}

}  // namespace

ExactSelection exact_select(const CoverageModel& model, std::span<const PhotoMeta> pool,
                            NodeId node, double delivery_prob,
                            std::uint64_t capacity_bytes,
                            std::span<const NodeCollection> environment) {
  PHOTODTN_CHECK_MSG(pool.size() <= 20, "exact_select is limited to 20 photos");
  const std::size_t k = pool.size();
  ExactSelection best;
  best.value = evaluate(model, environment, NodeCollection{}, NodeCollection{});
  for (std::uint32_t mask = 0; mask < (1u << k); ++mask) {
    std::uint64_t bytes = 0;
    NodeCollection cand{node, delivery_prob, {}};
    bool feasible = true;
    for (std::size_t i = 0; i < k; ++i) {
      if (!((mask >> i) & 1u)) continue;
      bytes += pool[i].size_bytes;
      if (bytes > capacity_bytes) {
        feasible = false;
        break;
      }
      cand.footprints.push_back(&model.footprint_cached(pool[i]));
    }
    if (!feasible) continue;
    const CoverageValue v = evaluate(model, environment, cand, NodeCollection{});
    if (v > best.value) {
      best.value = v;
      best.chosen.clear();
      for (std::size_t i = 0; i < k; ++i)
        if ((mask >> i) & 1u) best.chosen.push_back(pool[i].id);
    }
  }
  return best;
}

CoverageValue allocation_value(const CoverageModel& model,
                               std::span<const PhotoMeta> pool,
                               std::span<const PhotoId> at_a, double p_a,
                               std::span<const PhotoId> at_b, double p_b,
                               NodeId node_a, NodeId node_b,
                               std::span<const NodeCollection> environment) {
  auto collect = [&](std::span<const PhotoId> ids, NodeId node, double p) {
    const std::unordered_set<PhotoId> want(ids.begin(), ids.end());
    NodeCollection nc{node, p, {}};
    for (const PhotoMeta& photo : pool)
      if (want.contains(photo.id))
        nc.footprints.push_back(&model.footprint_cached(photo));
    return nc;
  };
  return evaluate(model, environment, collect(at_a, node_a, p_a),
                  collect(at_b, node_b, p_b));
}

ExactReallocation exact_reallocate(const CoverageModel& model,
                                   std::span<const PhotoMeta> pool, NodeId node_a,
                                   double p_a, std::uint64_t cap_a, NodeId node_b,
                                   double p_b, std::uint64_t cap_b,
                                   std::span<const NodeCollection> environment) {
  PHOTODTN_CHECK_MSG(pool.size() <= 10, "exact_reallocate is limited to 10 photos");
  const std::size_t k = pool.size();
  std::uint64_t states = 1;
  for (std::size_t i = 0; i < k; ++i) states *= 4;

  ExactReallocation best;
  best.value = evaluate(model, environment, NodeCollection{}, NodeCollection{});
  std::vector<int> assign(k, 0);  // 0 = neither, 1 = a, 2 = b, 3 = both
  for (std::uint64_t state = 0; state < states; ++state) {
    std::uint64_t s = state;
    std::uint64_t bytes_a = 0, bytes_b = 0;
    bool feasible = true;
    NodeCollection ca{node_a, p_a, {}};
    NodeCollection cb{node_b, p_b, {}};
    for (std::size_t i = 0; i < k && feasible; ++i) {
      assign[i] = static_cast<int>(s % 4);
      s /= 4;
      if (assign[i] & 1) {
        bytes_a += pool[i].size_bytes;
        if (bytes_a > cap_a) feasible = false;
        ca.footprints.push_back(&model.footprint_cached(pool[i]));
      }
      if (assign[i] & 2) {
        bytes_b += pool[i].size_bytes;
        if (bytes_b > cap_b) feasible = false;
        cb.footprints.push_back(&model.footprint_cached(pool[i]));
      }
    }
    if (!feasible) continue;
    const CoverageValue v = evaluate(model, environment, ca, cb);
    if (v > best.value) {
      best.value = v;
      best.node_a.clear();
      best.node_b.clear();
      for (std::size_t i = 0; i < k; ++i) {
        if (assign[i] & 1) best.node_a.push_back(pool[i].id);
        if (assign[i] & 2) best.node_b.push_back(pool[i].id);
      }
    }
  }
  return best;
}

}  // namespace photodtn
