#include "selection/metadata_cache.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/prob.h"

namespace photodtn {

bool MetadataCache::update(MetadataEntry entry) {
  PHOTODTN_CHECK_MSG(entry.owner >= 0, "metadata entry needs an owner");
  PHOTODTN_DCHECK_MSG(entry.lambda >= 0.0 && std::isfinite(entry.lambda),
                      "metadata entry lambda must be finite and non-negative");
  PHOTODTN_DCHECK_MSG(is_probability(entry.delivery_prob),
                      "metadata entry delivery probability must be in [0, 1]");
  auto it = entries_.find(entry.owner);
  if (it != entries_.end() && it->second.observed_at >= entry.observed_at) return false;
  entry.revision = ++next_revision_;
  entries_[entry.owner] = std::move(entry);
  PHOTODTN_AUDIT(audit());
  return true;
}

double MetadataCache::staleness_probability(double lambda, double elapsed) {
  if (elapsed <= 0.0 || lambda <= 0.0) return 0.0;
  return 1.0 - std::exp(-lambda * elapsed);
}

bool MetadataCache::is_valid(const MetadataEntry& entry, double now) const {
  if (entry.owner == kCommandCenter) return true;
  return staleness_probability(entry.lambda, now - entry.observed_at) <= p_thld_;
}

std::size_t MetadataCache::prune(double now) {
  std::size_t removed = 0;
  // photodtn-lint: allow(unordered-iter): per-entry keep/erase, no cross-entry state
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (!is_valid(it->second, now)) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  PHOTODTN_AUDIT(audit());
  return removed;
}

std::vector<const MetadataEntry*> MetadataCache::valid_entries(double now) const {
  std::vector<const MetadataEntry*> out;
  out.reserve(entries_.size());
  // photodtn-lint: allow(unordered-iter): extract-and-sort — owner-sorted below
  for (const auto& [owner, entry] : entries_)
    if (is_valid(entry, now)) out.push_back(&entry);
  // Owner order: consumers fold these into selection environments, where
  // float-product update order must not depend on hash layout.
  std::sort(out.begin(), out.end(),
            [](const MetadataEntry* a, const MetadataEntry* b) {
              return a->owner < b->owner;
            });
  return out;
}

void MetadataCache::clear() {
  entries_.clear();  // next_revision_ deliberately survives (see header)
}

const MetadataEntry* MetadataCache::find(NodeId owner) const {
  const auto it = entries_.find(owner);
  return it == entries_.end() ? nullptr : &it->second;
}

std::size_t MetadataCache::merge_from(const MetadataCache& other, NodeId self) {
  std::size_t accepted = 0;
  // photodtn-lint: allow(unordered-iter): per-owner acceptance is independent; revision stamps are compared only for equality, never ordered
  for (const auto& [owner, entry] : other.entries_) {
    if (owner == self) continue;
    if (update(entry)) ++accepted;
  }
  PHOTODTN_AUDIT(audit());
  return accepted;
}

void MetadataCache::audit() const {
  PHOTODTN_CHECK_MSG(is_probability(p_thld_),
                     "MetadataCache validity threshold must be in [0, 1]");
  // photodtn-lint: allow(unordered-iter): per-entry audit checks, no accumulation
  for (const auto& [owner, entry] : entries_) {
    PHOTODTN_CHECK_MSG(owner == entry.owner,
                       "MetadataCache entry keyed by a different owner");
    PHOTODTN_CHECK_MSG(entry.owner >= 0, "MetadataCache entry owner must be valid");
    PHOTODTN_CHECK_MSG(std::isfinite(entry.lambda) && entry.lambda >= 0.0,
                       "MetadataCache entry lambda must be finite and >= 0");
    PHOTODTN_CHECK_MSG(is_probability(entry.delivery_prob),
                       "MetadataCache entry delivery probability must be in [0, 1]");
    PHOTODTN_CHECK_MSG(std::isfinite(entry.observed_at) && entry.observed_at >= 0.0,
                       "MetadataCache entry observation time must be finite and >= 0");
    PHOTODTN_CHECK_MSG(entry.revision >= 1 && entry.revision <= next_revision_,
                       "MetadataCache entry revision outside the issued range");
  }
  // Revisions are never reused: each accepted entry gets a fresh stamp.
  std::unordered_map<std::uint64_t, int> seen;
  // photodtn-lint: allow(unordered-iter): uniqueness check holds in any visit order
  for (const auto& [owner, entry] : entries_)
    PHOTODTN_CHECK_MSG(++seen[entry.revision] == 1,
                       "MetadataCache revision stamps must be unique");
}

}  // namespace photodtn
