#include "selection/metadata_cache.h"

#include <cmath>

#include "util/check.h"

namespace photodtn {

bool MetadataCache::update(MetadataEntry entry) {
  PHOTODTN_CHECK_MSG(entry.owner >= 0, "metadata entry needs an owner");
  auto it = entries_.find(entry.owner);
  if (it != entries_.end() && it->second.observed_at >= entry.observed_at) return false;
  entries_[entry.owner] = std::move(entry);
  return true;
}

double MetadataCache::staleness_probability(double lambda, double elapsed) {
  if (elapsed <= 0.0 || lambda <= 0.0) return 0.0;
  return 1.0 - std::exp(-lambda * elapsed);
}

bool MetadataCache::is_valid(const MetadataEntry& entry, double now) const {
  if (entry.owner == kCommandCenter) return true;
  return staleness_probability(entry.lambda, now - entry.observed_at) <= p_thld_;
}

void MetadataCache::prune(double now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (!is_valid(it->second, now)) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<const MetadataEntry*> MetadataCache::valid_entries(double now) const {
  std::vector<const MetadataEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [owner, entry] : entries_)
    if (is_valid(entry, now)) out.push_back(&entry);
  return out;
}

const MetadataEntry* MetadataCache::find(NodeId owner) const {
  const auto it = entries_.find(owner);
  return it == entries_.end() ? nullptr : &it->second;
}

void MetadataCache::merge_from(const MetadataCache& other, NodeId self) {
  for (const auto& [owner, entry] : other.entries_) {
    if (owner == self) continue;
    update(entry);
  }
}

}  // namespace photodtn
