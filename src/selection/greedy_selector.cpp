#include "selection/greedy_selector.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace photodtn {

namespace {

bool gain_worth_taking(const CoverageValue& g, double eps) {
  return g.point > eps || g.aspect > eps;
}

}  // namespace

std::vector<PhotoId> GreedySelector::select(const CoverageModel& model,
                                            std::span<const PhotoMeta> pool,
                                            std::uint64_t capacity_bytes,
                                            GreedyPhase& phase) const {
  return params_.lazy ? select_lazy(model, pool, capacity_bytes, phase)
                      : select_plain(model, pool, capacity_bytes, phase);
}

std::vector<PhotoId> GreedySelector::select_plain(const CoverageModel& model,
                                                  std::span<const PhotoMeta> pool,
                                                  std::uint64_t capacity_bytes,
                                                  GreedyPhase& phase) const {
  std::vector<PhotoId> chosen;
  std::vector<char> taken(pool.size(), 0);
  std::uint64_t used = 0;
  for (;;) {
    CoverageValue best_gain;
    std::size_t best = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i] || used + pool[i].size_bytes > capacity_bytes) continue;
      const CoverageValue g = phase.gain(model.footprint_cached(pool[i]));
      if (best == pool.size() || g > best_gain) {
        best_gain = g;
        best = i;
      }
    }
    if (best == pool.size() || !gain_worth_taking(best_gain, params_.eps)) break;
    taken[best] = 1;
    used += pool[best].size_bytes;
    phase.commit(model.footprint_cached(pool[best]));
    chosen.push_back(pool[best].id);
  }
  return chosen;
}

std::vector<PhotoId> GreedySelector::select_lazy(const CoverageModel& model,
                                                 std::span<const PhotoMeta> pool,
                                                 std::uint64_t capacity_bytes,
                                                 GreedyPhase& phase) const {
  struct Cand {
    CoverageValue gain;
    std::size_t idx;
    std::uint64_t stamp;
  };
  struct Less {
    bool operator()(const Cand& x, const Cand& y) const {
      // Ties broken toward the lower pool index so the lazy path selects
      // exactly what plain greedy would.
      if (x.gain != y.gain) return x.gain < y.gain;
      return x.idx > y.idx;
    }
  };
  std::priority_queue<Cand, std::vector<Cand>, Less> heap;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const CoverageValue g = phase.gain(model.footprint_cached(pool[i]));
    if (gain_worth_taking(g, params_.eps)) heap.push({g, i, 0});
  }
  std::vector<PhotoId> chosen;
  std::uint64_t used = 0;
  std::uint64_t commit_stamp = 0;
  while (!heap.empty()) {
    Cand top = heap.top();
    heap.pop();
    if (used + pool[top.idx].size_bytes > capacity_bytes) continue;  // never fits again
    if (top.stamp != commit_stamp) {
      // Stale: re-evaluate against the current selection. Submodularity
      // guarantees the fresh gain is <= the cached one, so reinsertion keeps
      // the heap order consistent with plain greedy.
      top.gain = phase.gain(model.footprint_cached(pool[top.idx]));
      top.stamp = commit_stamp;
      if (gain_worth_taking(top.gain, params_.eps)) heap.push(top);
      continue;
    }
    phase.commit(model.footprint_cached(pool[top.idx]));
    used += pool[top.idx].size_bytes;
    chosen.push_back(pool[top.idx].id);
    ++commit_stamp;
  }
  return chosen;
}

ReallocationPlan GreedySelector::reallocate(
    const CoverageModel& model, std::span<const PhotoMeta> pool, NodeId node_a,
    double p_a, std::uint64_t cap_a, NodeId node_b, double p_b, std::uint64_t cap_b,
    std::span<const NodeCollection> environment) const {
  // Higher delivery probability selects first; the command center (p = 1,
  // id 0) always wins ties by id for determinism.
  bool a_first = p_a > p_b || (p_a == p_b && node_a < node_b);
  ReallocationPlan plan;
  plan.first = a_first ? node_a : node_b;
  plan.second = a_first ? node_b : node_a;
  const double p_first = std::max(a_first ? p_a : p_b, params_.p_floor);
  const double p_second = std::max(a_first ? p_b : p_a, params_.p_floor);
  const std::uint64_t cap_first = a_first ? cap_a : cap_b;
  const std::uint64_t cap_second = a_first ? cap_b : cap_a;

  // Phase 1: maximize C_ex(F_first, ∅) — the peer's collection is excluded,
  // the rest of M stays.
  SelectionEnvironment env_first(model, environment);
  GreedyPhase phase_first(env_first, p_first);
  plan.first_target = select(model, pool, cap_first, phase_first);

  // Phase 2: the second node selects from the SAME pool, now against the
  // environment plus the first node's tentative selection.
  std::vector<NodeCollection> env2(environment.begin(), environment.end());
  NodeCollection first_sel;
  first_sel.node = plan.first;
  // The environment must weigh the first node's photos by its *actual*
  // delivery probability (not the floored one): if p_first is truly tiny,
  // the second node should still duplicate valuable photos (Section III-D).
  first_sel.delivery_prob = a_first ? p_a : p_b;
  std::vector<char> in_first(pool.size(), 0);
  for (const PhotoId id : plan.first_target)
    for (std::size_t i = 0; i < pool.size(); ++i)
      if (pool[i].id == id) in_first[i] = 1;
  for (std::size_t i = 0; i < pool.size(); ++i)
    if (in_first[i]) first_sel.footprints.push_back(&model.footprint_cached(pool[i]));
  env2.push_back(std::move(first_sel));

  SelectionEnvironment env_second(model, env2);
  GreedyPhase phase_second(env_second, p_second);
  plan.second_target = select(model, pool, cap_second, phase_second);
  return plan;
}

}  // namespace photodtn
