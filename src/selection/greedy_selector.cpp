#include "selection/greedy_selector.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "util/check.h"

namespace photodtn {

namespace {

bool gain_worth_taking(const CoverageValue& g, double eps) {
  return g.point > eps || g.aspect > eps;
}

/// Removes a temporarily-added collection even when selection throws, so a
/// persistent engine is never left polluted with a tentative phase-1 set.
class ScopedCollection {
 public:
  ScopedCollection(SelectionEnvironment& env, const NodeCollection& collection)
      : env_(&env), node_(collection.node) {
    env_->add_collection(collection);
  }
  ~ScopedCollection() { env_->remove_collection(node_); }
  ScopedCollection(const ScopedCollection&) = delete;
  ScopedCollection& operator=(const ScopedCollection&) = delete;

 private:
  SelectionEnvironment* env_;
  NodeId node_;
};

}  // namespace

std::vector<PhotoId> GreedySelector::select(const CoverageModel& model,
                                            std::span<const PhotoMeta> pool,
                                            std::uint64_t capacity_bytes,
                                            GreedyPhase& phase) const {
  // Resolve every candidate's footprint once up front — gain evaluation then
  // never touches the model's hash cache (the greedy inner loop re-evaluates
  // candidates many times).
  std::vector<const PhotoFootprint*> fps;
  model.footprints_cached(pool, fps);
  stats_ = SelectionStats{};
  std::vector<PhotoId> chosen =
      params_.lazy ? select_lazy(pool, fps, capacity_bytes, phase)
                   : select_plain(pool, fps, capacity_bytes, phase);
  totals_.gain_evals += stats_.gain_evals;
  totals_.reevals += stats_.reevals;
  totals_.commits += stats_.commits;
  return chosen;
}

std::vector<PhotoId> GreedySelector::select_plain(
    std::span<const PhotoMeta> pool, std::span<const PhotoFootprint* const> fps,
    std::uint64_t capacity_bytes, GreedyPhase& phase) const {
  std::vector<PhotoId> chosen;
  std::vector<char> taken(pool.size(), 0);
  std::vector<std::size_t> active;
  std::vector<const PhotoFootprint*> afps;
  std::vector<CoverageValue> gains;
  std::uint64_t used = 0;
  for (;;) {
    // One batched sweep over the still-eligible candidates per round, then
    // an ordered argmax in pool order. Exact ties go to the lower PhotoId
    // (see the header's determinism note); ids are unique within a pool, so
    // the winner is unambiguous and identical to the per-candidate scan.
    active.clear();
    afps.clear();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i] || used + pool[i].size_bytes > capacity_bytes) continue;
      active.push_back(i);
      afps.push_back(fps[i]);
    }
    if (active.empty()) break;
    gains.resize(active.size());
    phase.gains_batch(afps, gains, params_.pool);
    stats_.gain_evals += active.size();
    std::size_t best = 0;
    for (std::size_t k = 1; k < active.size(); ++k) {
      if (gains[k] > gains[best] ||
          (gains[k] == gains[best] && pool[active[k]].id < pool[active[best]].id))
        best = k;
    }
    if (!gain_worth_taking(gains[best], params_.eps)) break;
    const std::size_t idx = active[best];
    taken[idx] = 1;
    used += pool[idx].size_bytes;
    phase.commit(*fps[idx]);
    chosen.push_back(pool[idx].id);
    ++stats_.commits;
  }
  return chosen;
}

std::vector<PhotoId> GreedySelector::select_lazy(
    std::span<const PhotoMeta> pool, std::span<const PhotoFootprint* const> fps,
    std::uint64_t capacity_bytes, GreedyPhase& phase) const {
  struct Cand {
    CoverageValue gain;
    PhotoId id;
    std::size_t idx;
    std::uint64_t stamp;
  };
  struct Less {
    bool operator()(const Cand& x, const Cand& y) const {
      // Exact ties broken toward the lower PhotoId, matching plain greedy
      // (which scans the pool but prefers the smaller id on equal gain).
      if (x.gain != y.gain) return x.gain < y.gain;
      return x.id > y.id;
    }
  };
  // Seed the CELF heap with one batched sweep — same values in the same
  // push order as per-candidate seeding, so the heap state is identical.
  std::vector<CoverageValue> gains(pool.size());
  phase.gains_batch(fps, gains, params_.pool);
  stats_.gain_evals += pool.size();
  std::priority_queue<Cand, std::vector<Cand>, Less> heap;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (gain_worth_taking(gains[i], params_.eps))
      heap.push({gains[i], pool[i].id, i, 0});
  }
  std::vector<PhotoId> chosen;
  std::uint64_t used = 0;
  std::uint64_t commit_stamp = 0;
  while (!heap.empty()) {
    Cand top = heap.top();
    heap.pop();
    if (used + pool[top.idx].size_bytes > capacity_bytes) continue;  // never fits again
    if (top.stamp != commit_stamp) {
      // Stale: re-evaluate against the current selection. Submodularity
      // guarantees the fresh gain is <= the cached one, so reinsertion keeps
      // the heap order consistent with plain greedy.
      top.gain = phase.gain(*fps[top.idx]);
      top.stamp = commit_stamp;
      ++stats_.gain_evals;
      ++stats_.reevals;
      if (gain_worth_taking(top.gain, params_.eps)) heap.push(top);
      continue;
    }
    phase.commit(*fps[top.idx]);
    used += pool[top.idx].size_bytes;
    chosen.push_back(top.id);
    ++commit_stamp;
    ++stats_.commits;
  }
  return chosen;
}

ReallocationPlan GreedySelector::reallocate(
    const CoverageModel& model, std::span<const PhotoMeta> pool, NodeId node_a,
    double p_a, std::uint64_t cap_a, NodeId node_b, double p_b, std::uint64_t cap_b,
    SelectionEnvironment& env) const {
  PHOTODTN_CHECK_MSG(!env.has_collection(node_a) && !env.has_collection(node_b),
                     "reallocation environment must exclude the contact parties");
  // Higher delivery probability selects first; the command center (p = 1,
  // id 0) always wins ties by id for determinism.
  bool a_first = p_a > p_b || (p_a == p_b && node_a < node_b);
  ReallocationPlan plan;
  plan.first = a_first ? node_a : node_b;
  plan.second = a_first ? node_b : node_a;
  const double p_first = std::max(a_first ? p_a : p_b, params_.p_floor);
  const double p_second = std::max(a_first ? p_b : p_a, params_.p_floor);
  const std::uint64_t cap_first = a_first ? cap_a : cap_b;
  const std::uint64_t cap_second = a_first ? cap_b : cap_a;

  // Phase 1: maximize C_ex(F_first, ∅) — the peer's collection is excluded,
  // the rest of M stays.
  GreedyPhase phase_first(env, p_first);
  plan.first_target = select(model, pool, cap_first, phase_first);

  // Phase 2: the second node selects from the SAME pool, now against the
  // environment plus the first node's tentative selection. The engine only
  // rebuilds the PoIs that selection touches; the guard removes the
  // tentative collection on every exit path.
  NodeCollection first_sel;
  first_sel.node = plan.first;
  // The environment must weigh the first node's photos by its *actual*
  // delivery probability (not the floored one): if p_first is truly tiny,
  // the second node should still duplicate valuable photos (Section III-D).
  first_sel.delivery_prob = a_first ? p_a : p_b;
  // Footprints in pool order (one hash probe per photo, not a pool scan per
  // selected id — contact pools reach hundreds of photos).
  const std::unordered_set<PhotoId> in_first(plan.first_target.begin(),
                                             plan.first_target.end());
  for (std::size_t i = 0; i < pool.size(); ++i)
    if (in_first.contains(pool[i].id))
      first_sel.footprints.push_back(&model.footprint_cached(pool[i]));

  ScopedCollection guard(env, first_sel);
  GreedyPhase phase_second(env, p_second);
  plan.second_target = select(model, pool, cap_second, phase_second);
  return plan;
}

ReallocationPlan GreedySelector::reallocate(
    const CoverageModel& model, std::span<const PhotoMeta> pool, NodeId node_a,
    double p_a, std::uint64_t cap_a, NodeId node_b, double p_b, std::uint64_t cap_b,
    std::span<const NodeCollection> environment) const {
  SelectionEnvironment env(model, environment);
  return reallocate(model, pool, node_a, p_a, cap_a, node_b, p_b, cap_b, env);
}

}  // namespace photodtn
