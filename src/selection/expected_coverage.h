// Expected coverage C_ex (Definition 2): the delivery-probability-weighted
// photo coverage of a node set M. Three evaluators:
//
//  * expected_coverage_exact — polynomial-time exact value. Definition 2
//    sums over 2^m delivery outcomes, but coverage decomposes per PoI and
//    expectation is linear, so per PoI:
//      E[point]  = w * (1 - prod_i (1 - p_i))        over nodes covering it
//      E[aspect] = w * integral over the aspect circle of
//                  (1 - prod_{i: v in A_i} (1 - p_i)) dv   (Fubini),
//    computed exactly by splitting the circle at all arc endpoints.
//  * expected_coverage_enumerate — the literal 2^m sum (m <= 20), used as
//    the test oracle.
//  * expected_coverage_monte_carlo — sampling estimator, for validating the
//    other two and for profiling.
//
// Nodes appearing multiple times (same id) are treated as independent
// sources — callers should deduplicate.
#pragma once

#include <span>
#include <vector>

#include "coverage/coverage_model.h"
#include "coverage/coverage_value.h"
#include "util/rng.h"

namespace photodtn {

/// A node's photo collection (as footprints) plus its delivery probability
/// toward the command center. Footprint pointers must outlive the call.
struct NodeCollection {
  NodeId node = -1;
  double delivery_prob = 0.0;
  std::vector<const PhotoFootprint*> footprints;
};

CoverageValue expected_coverage_exact(const CoverageModel& model,
                                      std::span<const NodeCollection> nodes);

/// C_ex via the incremental per-PoI engine (selection_env.h): collections
/// are added one at a time through the engine's dirty-tracking path and the
/// value is assembled from its cached per-PoI factors. Agrees with
/// expected_coverage_exact to floating-point dust; the differential test
/// battery pins all three evaluators together.
CoverageValue expected_coverage_incremental(const CoverageModel& model,
                                            std::span<const NodeCollection> nodes);

/// Literal Definition 2; requires nodes.size() <= 20.
CoverageValue expected_coverage_enumerate(const CoverageModel& model,
                                          std::span<const NodeCollection> nodes);

CoverageValue expected_coverage_monte_carlo(const CoverageModel& model,
                                            std::span<const NodeCollection> nodes,
                                            Rng& rng, std::size_t samples);

}  // namespace photodtn
