// The photo reallocation algorithm of Section III-D. On a contact between
// n_a and n_b, the union pool F_a ∪ F_b is redistributed to maximize
// C_ex(F_a, F_b) under both storage budgets. The problem is NP-hard
// (knapsack reduces to it) and non-convex (coverage overlap), so — exactly
// as the paper does — the node with the higher delivery probability greedily
// fills its storage first against the fixed environment (other nodes' valid
// metadata + the command center), then the other node selects against the
// environment *plus* the first node's tentative selection.
//
// Greedy acceleration: the marginal gains are monotone non-increasing in
// the selected set (coverage is submodular for a fixed environment), so we
// use CELF lazy evaluation (Minoux): a max-heap of cached stale upper
// bounds, re-evaluated only when a candidate tops the heap with an outdated
// stamp. The heap is seeded by one batched gain sweep (GreedyPhase::
// gains_batch), and the plain path evaluates each round through the same
// batched kernel with an ordered argmax — both produce selections
// bit-identical to the candidate-at-a-time scan.
//
// Determinism: candidates whose gains tie exactly are taken in PhotoId
// order (lowest id first). Pool order, the plain/lazy switch, the
// incremental-engine path, and any thread count therefore all produce the
// same selection — ties are common in practice (identical burst photos,
// symmetric scenes), and index-based tie-breaking would let two evaluation
// paths diverge on them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coverage/coverage_model.h"
#include "persist/fwd.h"
#include "selection/expected_coverage.h"
#include "selection/selection_env.h"

namespace photodtn {

struct GreedyParams {
  /// Delivery probabilities are floored to this value inside gain
  /// computations. A common positive factor never reorders candidates, but a
  /// literal p = 0 (a node that has never met the command center) would
  /// zero every gain and stall selection before any contact history exists.
  double p_floor = 0.02;
  /// Gains at or below this (lexicographically, on both components) stop
  /// the selection: "no more benefit can be achieved". The boundary is
  /// *exclusive* — a candidate whose gain equals eps exactly is never
  /// taken, so a pool whose gains all sit at the boundary terminates
  /// immediately instead of stalling on tie-churn.
  double eps = 1e-9;
  /// Use lazy greedy re-evaluation (exact same output as the plain greedy;
  /// exposed so tests can compare both paths).
  bool lazy = true;
  /// Pool for the batched gain sweeps on large candidate sets; nullptr runs
  /// them serially. Results are bit-identical either way (see
  /// util/thread_pool.h), so this is purely a throughput knob — OurScheme
  /// and PhotoCrowd wire ThreadPool::shared() here.
  ThreadPool* pool = nullptr;
};

/// Evaluation counters of the most recent select() call, for benches and
/// the perf pipeline (the CELF re-evaluation rate is reeval / gain_evals).
struct SelectionStats {
  std::uint64_t gain_evals = 0;  // all gain evaluations, batched or single
  std::uint64_t reevals = 0;     // lazy-path stale re-evaluations (subset)
  std::uint64_t commits = 0;     // photos selected
};

/// Outcome of the two-phase reallocation. Photo ids are listed in the order
/// they were selected — the transmission order under short contacts.
struct ReallocationPlan {
  NodeId first = -1;   // the higher-delivery-probability node; selects first
  NodeId second = -1;
  std::vector<PhotoId> first_target;
  std::vector<PhotoId> second_target;
};

class GreedySelector {
 public:
  explicit GreedySelector(GreedyParams params = {}) : params_(params) {}

  /// Single-node greedy selection: choose from `pool` (each photo counted
  /// once; ids must be unique) at most `capacity_bytes` worth of photos
  /// maximizing expected coverage against `phase`'s environment. `phase` is
  /// advanced by the commits; the chosen ids are returned in order.
  std::vector<PhotoId> select(const CoverageModel& model,
                              std::span<const PhotoMeta> pool,
                              std::uint64_t capacity_bytes, GreedyPhase& phase) const;

  /// Two-phase reallocation for a contact against an incremental
  /// environment engine. `env` holds every other collection of the node set
  /// M (cached valid metadata + command center) and must not contain n_a or
  /// n_b. Phase 2 temporarily adds the first node's tentative selection to
  /// the engine (touching only the PoIs it covers) and removes it before
  /// returning, so a persistent engine can be reused across contacts.
  ReallocationPlan reallocate(const CoverageModel& model,
                              std::span<const PhotoMeta> pool, NodeId node_a,
                              double p_a, std::uint64_t cap_a, NodeId node_b,
                              double p_b, std::uint64_t cap_b,
                              SelectionEnvironment& env) const;

  /// Convenience overload building a throwaway engine from the collection
  /// list (the pre-engine call shape; kept for callers and oracles that
  /// start from plain NodeCollections).
  ReallocationPlan reallocate(const CoverageModel& model,
                              std::span<const PhotoMeta> pool, NodeId node_a,
                              double p_a, std::uint64_t cap_a, NodeId node_b,
                              double p_b, std::uint64_t cap_b,
                              std::span<const NodeCollection> environment) const;

  const GreedyParams& params() const noexcept { return params_; }

  /// Counters of the most recent select() on this selector (reallocate
  /// leaves the second phase's). Like the engine caches: thread-compatible,
  /// not thread-safe — each simulation run owns its selector.
  const SelectionStats& last_stats() const noexcept { return stats_; }

  /// Lifetime accumulation across every select() on this selector (both
  /// phases of each reallocate). Consumers tracking per-contact work (the
  /// selection.* metrics) diff successive readings instead of racing to
  /// copy last_stats() before the next phase resets it.
  const SelectionStats& totals() const noexcept { return totals_; }

 private:
  // Restore must set both counter sets: consumers diff totals() against a
  // saved copy, and a zeroed side would make that diff wrap.
  friend struct persist::StateAccess;

  std::vector<PhotoId> select_plain(std::span<const PhotoMeta> pool,
                                    std::span<const PhotoFootprint* const> fps,
                                    std::uint64_t capacity_bytes,
                                    GreedyPhase& phase) const;
  std::vector<PhotoId> select_lazy(std::span<const PhotoMeta> pool,
                                   std::span<const PhotoFootprint* const> fps,
                                   std::uint64_t capacity_bytes,
                                   GreedyPhase& phase) const;

  GreedyParams params_;
  mutable SelectionStats stats_;
  mutable SelectionStats totals_;
};

}  // namespace photodtn
