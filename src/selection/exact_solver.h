// Exhaustive reference solvers for the photo selection problems of
// Section III-D. The reallocation problem is NP-hard (0-1 knapsack reduces
// to it) and non-convex, which is why the production path is greedy; these
// solvers enumerate tiny instances exactly so tests and benches can measure
// how far greedy lands from the true optimum.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coverage/coverage_model.h"
#include "selection/expected_coverage.h"

namespace photodtn {

/// Exhaustive single-node selection: max C_ex over all subsets of `pool`
/// that fit `capacity_bytes`, against the fixed environment. O(2^k);
/// requires pool.size() <= 20.
struct ExactSelection {
  std::vector<PhotoId> chosen;
  CoverageValue value;
};

ExactSelection exact_select(const CoverageModel& model, std::span<const PhotoMeta> pool,
                            NodeId node, double delivery_prob,
                            std::uint64_t capacity_bytes,
                            std::span<const NodeCollection> environment);

/// Exhaustive two-node reallocation: max C_ex(F_a, F_b) over every
/// assignment of each pool photo to {neither, a, b, both} respecting both
/// capacities. O(4^k); requires pool.size() <= 10.
struct ExactReallocation {
  std::vector<PhotoId> node_a;
  std::vector<PhotoId> node_b;
  CoverageValue value;
};

ExactReallocation exact_reallocate(const CoverageModel& model,
                                   std::span<const PhotoMeta> pool, NodeId node_a,
                                   double p_a, std::uint64_t cap_a, NodeId node_b,
                                   double p_b, std::uint64_t cap_b,
                                   std::span<const NodeCollection> environment);

/// Value of a concrete two-node allocation under Definition 2 (used to
/// score greedy's plan with the same yardstick as the exact solver).
CoverageValue allocation_value(const CoverageModel& model,
                               std::span<const PhotoMeta> pool,
                               std::span<const PhotoId> at_a, double p_a,
                               std::span<const PhotoId> at_b, double p_b,
                               NodeId node_a, NodeId node_b,
                               std::span<const NodeCollection> environment);

}  // namespace photodtn
