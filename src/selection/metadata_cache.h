// Metadata management (Section III-B). Every node caches snapshots of other
// nodes' photo metadata, learned directly during contacts and gossiped
// transitively. A cached snapshot of node `a` observed at time t0 is valid
// at time `now` while
//     P{T_a < now - t0} = 1 - exp(-lambda_a * (now - t0)) <= P_thld,
// i.e. while it is unlikely that `a` has met anyone (and hence reshuffled
// its photos) since the snapshot. The command center's snapshot never
// expires — the center never drops photos, so its metadata acts as a
// monotone acknowledgment set.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "coverage/photo.h"
#include "persist/fwd.h"

namespace photodtn {

struct MetadataEntry {
  NodeId owner = -1;
  /// Snapshot of the owner's photo collection metadata.
  std::vector<PhotoMeta> photos;
  /// When the owner was last *directly* observed (by whoever produced the
  /// snapshot). Gossip forwards this original timestamp unchanged.
  double observed_at = 0.0;
  /// The owner's aggregate inter-contact rate lambda_a, as reported by the
  /// owner at observation time.
  double lambda = 0.0;
  /// The owner's delivery probability p_a at observation time (used when
  /// building the expected-coverage node set from cached entries).
  double delivery_prob = 0.0;
  /// Cache-local revision stamp, assigned when the caching MetadataCache
  /// accepts the entry (monotone per cache, never reused). A persistent
  /// selection engine compares stamps to detect that its loaded copy of this
  /// owner's collection went stale, without diffing photo lists. Not carried
  /// by gossip — each cache restamps on acceptance.
  std::uint64_t revision = 0;
};

class MetadataCache {
 public:
  /// `p_thld`: validity threshold from Table I (0.8).
  explicit MetadataCache(double p_thld = 0.8) : p_thld_(p_thld) {}

  double p_thld() const noexcept { return p_thld_; }

  /// Inserts/replaces the entry for `entry.owner` if it is fresher than the
  /// currently cached one. Returns true if the cache changed.
  bool update(MetadataEntry entry);

  /// Probability that the owner has met another node within `elapsed`
  /// seconds, per eq. (1).
  static double staleness_probability(double lambda, double elapsed);

  /// Validity per eq. (1); the command center is always valid.
  bool is_valid(const MetadataEntry& entry, double now) const;

  /// Removes all invalid entries (the paper removes entries once they cross
  /// the threshold). Returns how many were removed (cache invalidations —
  /// feeds the scheme.cache_invalidations metric).
  std::size_t prune(double now);

  /// All entries currently valid at `now` (does not prune).
  std::vector<const MetadataEntry*> valid_entries(double now) const;

  const MetadataEntry* find(NodeId owner) const;
  void erase(NodeId owner) { entries_.erase(owner); }

  /// Drops every entry but keeps the revision counter monotone: entries
  /// accepted after the clear always carry stamps no pre-clear consumer ever
  /// saw, so a persistent selection engine can never mistake post-crash
  /// gossip for the state it loaded before the crash. (Used on churn: a
  /// crashed node's own cache dies with its flash.)
  void clear();

  /// Gossip: absorbs every entry of `other` that is fresher than ours.
  /// `self` is excluded — a node is the authority on its own collection.
  /// Returns how many entries were accepted (fresher than the cached copy).
  std::size_t merge_from(const MetadataCache& other, NodeId self);

  std::size_t size() const noexcept { return entries_.size(); }
  const std::unordered_map<NodeId, MetadataEntry>& entries() const noexcept {
    return entries_;
  }

  /// Deep invariant check (audit builds / tests): every entry is keyed by its
  /// own owner id, owners are valid (>= 0), inter-contact rates satisfy
  /// lambda >= 0 and are finite, delivery probabilities lie in [0, 1],
  /// observation timestamps are finite and non-negative (update() only ever
  /// replaces an entry with a fresher one, so observed_at is monotone per
  /// owner), revision stamps are unique and within the issued range, and the
  /// validity threshold is a probability. Throws std::logic_error on
  /// violation.
  void audit() const;

 private:
  friend struct persist::StateAccess;  // checkpoint/restore of entries + revision clock

  double p_thld_;
  std::uint64_t next_revision_ = 0;  // last revision issued; 0 = none yet
  std::unordered_map<NodeId, MetadataEntry> entries_;
};

}  // namespace photodtn
