#include "selection/expected_coverage.h"

#include <algorithm>
#include <cmath>

#include "coverage/coverage_map.h"
#include "geometry/angle.h"
#include "geometry/arc_set.h"
#include "selection/poi_cover.h"
#include "selection/selection_env.h"
#include "util/check.h"

namespace photodtn {

CoverageValue expected_coverage_exact(const CoverageModel& model,
                                      std::span<const NodeCollection> nodes) {
  const auto index = build_poi_cover_index(model, nodes);
  CoverageValue total;
  std::vector<double> bps;
  for (std::size_t poi = 0; poi < index.size(); ++poi) {
    const auto& covers = index[poi];
    if (covers.empty()) continue;
    const double w = model.pois()[poi].weight;

    // Expected point coverage: covered unless every covering node fails.
    double miss_all = 1.0;
    for (const auto& c : covers) miss_all *= 1.0 - c.p;
    total.point += w * (1.0 - miss_all);

    // Expected aspect coverage: integrate coverage probability over the
    // circle, piecewise-constant between arc endpoints.
    bps.clear();
    for (const auto& c : covers)
      for (const double b : c.arcs.boundaries()) bps.push_back(b);
    std::sort(bps.begin(), bps.end());
    bps.erase(std::unique(bps.begin(), bps.end()), bps.end());
    if (bps.empty()) {
      // Some node covers the full circle (no endpoints); treat as one segment.
      bps.push_back(0.0);
    }
    // With an aspect profile, every breakpoint of the profile must also
    // split the integration (the weight is constant between breakpoints).
    const AspectProfile* profile = model.pois()[poi].profile();
    double aspect = 0.0;
    for (std::size_t k = 0; k < bps.size(); ++k) {
      const double lo = bps[k];
      const double hi = (k + 1 < bps.size()) ? bps[k + 1] : bps[0] + kTwoPi;
      const double len = hi - lo;
      if (len <= 0.0) continue;
      const double mid = normalize_angle(lo + len / 2.0);
      double miss = 1.0;
      for (const auto& c : covers)
        if (c.arcs.contains(mid)) miss *= 1.0 - c.p;
      if (miss == 1.0) continue;
      if (profile == nullptr || profile->is_uniform()) {
        aspect += len * (1.0 - miss);
      } else {
        // The coverage probability is constant on [lo, hi); integrate the
        // profile weight over that span (may wrap past 2*pi).
        static const ArcSet kNothing;
        const double span_hi = std::min(hi, kTwoPi);
        double weighted = profile->integrate_excluding(lo, span_hi, kNothing);
        if (hi > kTwoPi)
          weighted += profile->integrate_excluding(0.0, hi - kTwoPi, kNothing);
        aspect += weighted * (1.0 - miss);
      }
    }
    total.aspect += w * aspect;
  }
  return total;
}

CoverageValue expected_coverage_incremental(const CoverageModel& model,
                                            std::span<const NodeCollection> nodes) {
  SelectionEnvironment env(model);
  for (const NodeCollection& nc : nodes) env.add_collection(nc);
  PHOTODTN_AUDIT(env.audit());
  return env.total();
}

CoverageValue expected_coverage_enumerate(const CoverageModel& model,
                                          std::span<const NodeCollection> nodes) {
  PHOTODTN_CHECK_MSG(nodes.size() <= 20, "enumeration oracle limited to 20 nodes");
  const std::size_t m = nodes.size();
  CoverageValue total;
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    double prob = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double p = nodes[i].delivery_prob;
      prob *= (mask >> i) & 1u ? p : 1.0 - p;
    }
    if (prob == 0.0) continue;
    CoverageMap map(model);
    for (std::size_t i = 0; i < m; ++i) {
      if (!((mask >> i) & 1u)) continue;
      for (const PhotoFootprint* fp : nodes[i].footprints) map.add(*fp);
    }
    total += map.total() * prob;
  }
  return total;
}

CoverageValue expected_coverage_monte_carlo(const CoverageModel& model,
                                            std::span<const NodeCollection> nodes,
                                            Rng& rng, std::size_t samples) {
  PHOTODTN_CHECK(samples > 0);
  CoverageValue total;
  for (std::size_t s = 0; s < samples; ++s) {
    CoverageMap map(model);
    for (const NodeCollection& nc : nodes) {
      if (!rng.bernoulli(nc.delivery_prob)) continue;
      for (const PhotoFootprint* fp : nc.footprints) map.add(*fp);
    }
    total += map.total();
  }
  return total * (1.0 / static_cast<double>(samples));
}

}  // namespace photodtn
