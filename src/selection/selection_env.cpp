#include "selection/selection_env.h"

#include <algorithm>
#include <cmath>

#include "geometry/angle.h"
#include "selection/poi_cover.h"
#include "util/check.h"

namespace photodtn {

std::vector<std::vector<NodePoiCover>> build_poi_cover_index(
    const CoverageModel& model, std::span<const NodeCollection> nodes) {
  std::vector<std::vector<NodePoiCover>> index(model.pois().size());
  std::vector<ArcSet> per_poi(model.pois().size());
  std::vector<char> seen(model.pois().size(), 0);
  std::vector<std::size_t> touched;
  for (const NodeCollection& nc : nodes) {
    touched.clear();
    for (const PhotoFootprint* fp : nc.footprints) {
      for (const PoiArc& pa : fp->arcs) {
        if (!seen[pa.poi_index]) {
          seen[pa.poi_index] = 1;
          touched.push_back(pa.poi_index);
        }
        per_poi[pa.poi_index].add(pa.arc);
      }
    }
    for (const std::size_t poi : touched) {
      index[poi].push_back(NodePoiCover{nc.node, nc.delivery_prob,
                                        std::move(per_poi[poi])});
      per_poi[poi] = ArcSet{};
      seen[poi] = 0;
    }
  }
  return index;
}

PiecewiseMiss PiecewiseMiss::build(
    std::span<const std::pair<double, const ArcSet*>> covers) {
  PiecewiseMiss out;
  for (const auto& [p, arcs] : covers) {
    for (const double b : arcs->boundaries()) out.bps_.push_back(b);
  }
  std::sort(out.bps_.begin(), out.bps_.end());
  out.bps_.erase(std::unique(out.bps_.begin(), out.bps_.end()), out.bps_.end());
  if (out.bps_.empty()) {
    // Either nothing covers this PoI (constant 1) or some set is the full
    // circle (constant product).
    double miss = 1.0;
    for (const auto& [p, arcs] : covers)
      if (arcs->full()) miss *= 1.0 - p;
    out.constant_ = miss;
    return out;
  }
  out.vals_.resize(out.bps_.size());
  const std::size_t n = out.bps_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double lo = out.bps_[k];
    const double hi = (k + 1 < n) ? out.bps_[k + 1] : out.bps_[0] + kTwoPi;
    const double mid = normalize_angle(lo + (hi - lo) / 2.0);
    double miss = 1.0;
    for (const auto& [p, arcs] : covers)
      if (arcs->contains(mid)) miss *= 1.0 - p;
    out.vals_[k] = miss;
  }
  return out;
}

double PiecewiseMiss::value_at(double angle) const noexcept {
  if (bps_.empty()) return constant_;
  const double a = normalize_angle(angle);
  // Find the last breakpoint <= a; if a precedes the first breakpoint the
  // wrapping last segment applies.
  const auto it = std::upper_bound(bps_.begin(), bps_.end(), a);
  const std::size_t k =
      it == bps_.begin() ? bps_.size() - 1
                         : static_cast<std::size_t>(std::distance(bps_.begin(), it)) - 1;
  return vals_[k];
}

double PiecewiseMiss::integrate_excluding(double lo, double hi, const ArcSet& exclude,
                                          const AspectProfile* profile) const {
  PHOTODTN_CHECK(lo >= -1e-12 && hi <= kTwoPi + 1e-12 && lo <= hi + 1e-12);
  lo = std::max(lo, 0.0);
  hi = std::min(hi, kTwoPi);
  if (hi <= lo) return 0.0;
  const bool weighted = profile != nullptr && !profile->is_uniform();
  auto piece = [&](double l, double h, double val) {
    if (h <= l || val == 0.0) return 0.0;
    if (weighted) return val * profile->integrate_excluding(l, h, exclude);
    const double len = (h - l) - exclude.overlap_linear(l, h);
    return val * std::max(0.0, len);
  };
  if (bps_.empty()) return piece(lo, hi, constant_);
  double total = 0.0;
  const std::size_t n = bps_.size();
  for (std::size_t k = 0; k + 1 < n; ++k) {
    total += piece(std::max(lo, bps_[k]), std::min(hi, bps_[k + 1]), vals_[k]);
  }
  // Wrapping last segment: [bps_[n-1], 2*pi) and [0, bps_[0]).
  total += piece(std::max(lo, bps_[n - 1]), hi, vals_[n - 1]);
  total += piece(lo, std::min(hi, bps_[0]), vals_[n - 1]);
  return total;
}

SelectionEnvironment::SelectionEnvironment(const CoverageModel& model,
                                           std::span<const NodeCollection> others)
    : model_(&model),
      pt_miss_(model.pois().size(), 1.0),
      env_(model.pois().size()) {
  const auto index = build_poi_cover_index(model, others);
  std::vector<std::pair<double, const ArcSet*>> covers;
  for (std::size_t poi = 0; poi < index.size(); ++poi) {
    if (index[poi].empty()) continue;
    double miss = 1.0;
    covers.clear();
    for (const NodePoiCover& c : index[poi]) {
      miss *= 1.0 - c.p;
      covers.push_back({c.p, &c.arcs});
    }
    pt_miss_[poi] = miss;
    env_[poi] = PiecewiseMiss::build(covers);
  }
}

GreedyPhase::GreedyPhase(const SelectionEnvironment& env, double delivery_prob)
    : env_(&env),
      p_(delivery_prob),
      own_arcs_(env.model().pois().size()),
      own_covered_(env.model().pois().size(), 0) {
  PHOTODTN_CHECK_MSG(p_ > 0.0 && p_ <= 1.0, "selection needs p in (0, 1]");
}

CoverageValue GreedyPhase::gain(const PhotoFootprint& fp) const {
  CoverageValue g;
  for (const PoiArc& pa : fp.arcs) {
    const PointOfInterest& poi = env_->model().pois()[pa.poi_index];
    if (!own_covered_[pa.poi_index])
      g.point += poi.weight * env_->point_miss(pa.poi_index) * p_;
    // Split a wrapping arc into linear pieces.
    const double start = normalize_angle(pa.arc.start);
    const double end = start + std::min(pa.arc.length, kTwoPi);
    const PiecewiseMiss& env_fn = env_->aspect_miss(pa.poi_index);
    const ArcSet& own = own_arcs_[pa.poi_index];
    const AspectProfile* profile = poi.profile();
    double integral = 0.0;
    if (end <= kTwoPi) {
      integral = env_fn.integrate_excluding(start, end, own, profile);
    } else {
      integral = env_fn.integrate_excluding(start, kTwoPi, own, profile) +
                 env_fn.integrate_excluding(0.0, end - kTwoPi, own, profile);
    }
    g.aspect += poi.weight * p_ * integral;
  }
  return g;
}

void GreedyPhase::commit(const PhotoFootprint& fp) {
  for (const PoiArc& pa : fp.arcs) {
    own_covered_[pa.poi_index] = 1;
    own_arcs_[pa.poi_index].add(pa.arc);
  }
}

}  // namespace photodtn
