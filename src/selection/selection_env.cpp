#include "selection/selection_env.h"

#include <algorithm>
#include <cmath>

#include "geometry/angle.h"
#include "util/check.h"
#include "util/prob.h"

namespace photodtn {

std::vector<std::vector<NodePoiCover>> build_poi_cover_index(
    const CoverageModel& model, std::span<const NodeCollection> nodes) {
  std::vector<std::vector<NodePoiCover>> index(model.pois().size());
  std::vector<ArcSet> per_poi(model.pois().size());
  std::vector<char> seen(model.pois().size(), 0);
  std::vector<std::size_t> touched;
  for (const NodeCollection& nc : nodes) {
    touched.clear();
    for (const PhotoFootprint* fp : nc.footprints) {
      for (const PoiArc& pa : fp->arcs) {
        if (!seen[pa.poi_index]) {
          seen[pa.poi_index] = 1;
          touched.push_back(pa.poi_index);
        }
        per_poi[pa.poi_index].add(pa.arc);
      }
    }
    for (const std::size_t poi : touched) {
      index[poi].push_back(NodePoiCover{nc.node, nc.delivery_prob,
                                        std::move(per_poi[poi])});
      per_poi[poi] = ArcSet{};
      seen[poi] = 0;
    }
  }
  return index;
}

// ------------------------------------------------------------ PiecewiseMiss

PiecewiseMiss PiecewiseMiss::build(
    std::span<const std::pair<double, const ArcSet*>> covers,
    const AspectProfile* profile) {
  const bool weighted = profile != nullptr && !profile->is_uniform();
  PiecewiseMiss out;
  std::vector<double> cuts;
  for (const auto& [p, arcs] : covers)
    for (const double b : arcs->boundaries()) cuts.push_back(b);
  if (weighted)
    for (const double b : profile->breakpoints()) cuts.push_back(b);

  if (cuts.empty()) {
    // Either nothing covers this PoI (constant 1) or some set is the full
    // circle (constant product); the profile is uniform here, since a
    // non-uniform one always contributes breakpoints.
    double miss = 1.0;
    for (const auto& [p, arcs] : covers)
      if (arcs->full()) miss *= 1.0 - p;
    out.constant_ = miss;
    return out;
  }

  cuts.push_back(0.0);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Sweep the circle once: each cover interval opens at its start and
  // closes at its end; the running product of active (1 - p) factors is the
  // segment value. A zero factor (p = 1, the command center) is tracked as
  // a count so closing it never divides by zero.
  struct Event {
    double angle;
    double factor;
    bool open;
  };
  std::vector<Event> events;
  for (const auto& [p, arcs] : covers) {
    const double f = 1.0 - p;
    for (const auto& [s, e] : arcs->intervals()) {
      events.push_back({s, f, true});
      if (e < kTwoPi) events.push_back({e, f, false});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& x, const Event& y) { return x.angle < y.angle; });

  const std::size_t n = cuts.size();
  out.cuts_ = std::move(cuts);
  out.vals_.resize(n);
  if (weighted) out.weights_.resize(n);
  double product = 1.0;
  int zeros = 0;
  std::size_t next_event = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double lo = out.cuts_[k];
    // Interval endpoints are a subset of the cuts (up to the boundary
    // dedup epsilon, whose slivers the old midpoint sampling misclassified
    // the same way); apply everything up to and including this cut.
    while (next_event < events.size() && events[next_event].angle <= lo) {
      const Event& ev = events[next_event++];
      if (ev.factor == 0.0) {
        zeros += ev.open ? 1 : -1;
      } else if (ev.open) {
        product *= ev.factor;
      } else {
        product /= ev.factor;
      }
    }
    out.vals_[k] = zeros > 0 ? 0.0 : product;
    if (weighted) {
      const double hi = (k + 1 < n) ? out.cuts_[k + 1] : kTwoPi;
      out.weights_[k] = profile->weight_at(normalize_angle(lo + (hi - lo) / 2.0));
    }
  }

  // Fused rate array: rate(k) on the integration hot path reads one dense
  // double instead of re-multiplying value by weight per probe.
  out.rates_.resize(n);
  for (std::size_t k = 0; k < n; ++k)
    out.rates_[k] = out.vals_[k] * (weighted ? out.weights_[k] : 1.0);

  out.prefix_.resize(n + 1);
  out.prefix_[0] = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double hi = (k + 1 < n) ? out.cuts_[k + 1] : kTwoPi;
    out.prefix_[k + 1] = out.prefix_[k] + out.rate(k) * (hi - out.cuts_[k]);
  }

  // Bucketized segment finder. lut_[b] is the highest segment whose cut
  // falls in an earlier bucket: for any angle a in bucket b this gives
  // cuts_[lut_[b]] < a (monotone multiply by the shared scale), so
  // segment_of starts there and only advances forward. One bucket per
  // segment keeps the advance to ~1 step on average. Sparse functions
  // skip the table: below kLutMinSegments a binary search is already cheap,
  // and the simulator rebuilds thousands of such small functions per run —
  // the table's build cost would dominate its lookups. (Bucket count and
  // threshold are a rebuild-vs-query tradeoff: the greedy sweeps probe each
  // dense function hundreds of times per rebuild, the simulator's sparse
  // ones often zero times.)
  if (n >= kLutMinSegments) {
    const std::size_t buckets = std::min<std::size_t>(4096, 2 * n);
    out.lut_scale_ = static_cast<double>(buckets) / kTwoPi;
    out.lut_.resize(buckets);
    std::size_t seg = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
      while (seg + 1 < n &&
             static_cast<std::size_t>(out.cuts_[seg + 1] * out.lut_scale_) < b)
        ++seg;
      out.lut_[b] = static_cast<std::uint32_t>(seg);
    }
  }
  return out;
}

std::size_t PiecewiseMiss::segment_of(double a) const noexcept {
  // Same result as upper_bound(cuts_, a) - 1 (cuts_[0] == 0 <= a): dense
  // functions use a table lookup plus a short forward walk instead of
  // ~log B data-dependent probes; sparse ones (no LUT built) just binary
  // search. a == 2*pi (an integral's hi end) clamps to the last bucket /
  // lands in the final segment.
  if (lut_.empty()) {
    return static_cast<std::size_t>(
               std::upper_bound(cuts_.begin(), cuts_.end(), a) - cuts_.begin()) -
           1;
  }
  std::size_t b = static_cast<std::size_t>(a * lut_scale_);
  if (b >= lut_.size()) b = lut_.size() - 1;
  std::size_t s = lut_[b];
  const std::size_t n = cuts_.size();
  while (s + 1 < n && cuts_[s + 1] <= a) ++s;
  return s;
}

double PiecewiseMiss::value_at(double angle) const noexcept {
  if (cuts_.empty()) return constant_;
  return vals_[segment_of(normalize_angle(angle))];
}

double PiecewiseMiss::integral(double lo, double hi) const noexcept {
  if (hi <= lo) return 0.0;
  if (cuts_.empty()) return constant_ * (hi - lo);
  const std::size_t a = segment_of(lo);
  const std::size_t b = segment_of(hi);  // hi == 2*pi lands in the last segment
  if (a == b) return rate(a) * (hi - lo);
  double total = rate(a) * (cuts_[a + 1] - lo);
  total += prefix_[b] - prefix_[a + 1];
  total += rate(b) * (hi - cuts_[b]);
  return total;
}

double PiecewiseMiss::integrate_excluding(double lo, double hi,
                                          const ArcSet& exclude) const {
  PHOTODTN_CHECK(lo >= -1e-12 && hi <= kTwoPi + 1e-12 && lo <= hi + 1e-12);
  lo = std::max(lo, 0.0);
  hi = std::min(hi, kTwoPi);
  if (hi <= lo) return 0.0;
  double total = integral(lo, hi);
  // Subtract the excluded intervals' weighted mass. Intervals are disjoint
  // and sorted, so both starts and ends are sorted: binary-search the first
  // interval ending after lo and walk while intervals start before hi.
  const auto& iv = exclude.intervals();
  auto it = std::lower_bound(
      iv.begin(), iv.end(), lo,
      [](const std::pair<double, double>& seg, double v) { return seg.second <= v; });
  for (; it != iv.end() && it->first < hi; ++it)
    total -= integral(std::max(lo, it->first), std::min(hi, it->second));
  return std::max(0.0, total);
}

double PiecewiseMiss::integrate_excluding_scan(double lo, double hi,
                                               const ArcSet& exclude) const {
  PHOTODTN_CHECK(lo >= -1e-12 && hi <= kTwoPi + 1e-12 && lo <= hi + 1e-12);
  lo = std::max(lo, 0.0);
  hi = std::min(hi, kTwoPi);
  if (hi <= lo) return 0.0;
  auto piece = [&](double l, double h, double val) {
    if (h <= l || val == 0.0) return 0.0;
    const double len = (h - l) - exclude.overlap_linear(l, h);
    return val * std::max(0.0, len);
  };
  if (cuts_.empty()) return piece(lo, hi, constant_);
  double total = 0.0;
  const std::size_t n = cuts_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double seg_hi = (k + 1 < n) ? cuts_[k + 1] : kTwoPi;
    total += piece(std::max(lo, cuts_[k]), std::min(hi, seg_hi), rate(k));
  }
  return total;
}

double PiecewiseMiss::full_integral() const noexcept {
  if (cuts_.empty()) return constant_ * kTwoPi;
  return prefix_.back();
}

void PiecewiseMiss::audit() const {
  PHOTODTN_CHECK_MSG(std::isfinite(constant_) && constant_ >= 0.0 && constant_ <= 1.0,
                     "PiecewiseMiss constant must be a probability");
  if (cuts_.empty()) {
    PHOTODTN_CHECK_MSG(vals_.empty() && weights_.empty() && rates_.empty() &&
                           prefix_.empty() && lut_.empty(),
                       "constant PiecewiseMiss must carry no segments");
    return;
  }
  PHOTODTN_CHECK_MSG(cuts_.front() == 0.0, "PiecewiseMiss cuts must start at 0");
  PHOTODTN_CHECK_MSG(vals_.size() == cuts_.size() &&
                         rates_.size() == cuts_.size() &&
                         prefix_.size() == cuts_.size() + 1 &&
                         (weights_.empty() || weights_.size() == cuts_.size()),
                     "PiecewiseMiss parallel arrays must agree in size");
  PHOTODTN_CHECK_MSG(
      (cuts_.size() >= kLutMinSegments) == !lut_.empty(),
      "PiecewiseMiss must carry a LUT exactly when dense enough");
  PHOTODTN_CHECK_MSG(lut_.empty() == (lut_scale_ == 0.0),
                     "LUT scale must accompany the LUT");
  for (std::size_t b = 0; b < lut_.size(); ++b) {
    const std::size_t s = lut_[b];
    PHOTODTN_CHECK_MSG(s < cuts_.size(), "LUT segment index out of range");
    // The walk in segment_of only moves forward, so the table entry must
    // undershoot (or hit) the true segment of every angle in its bucket.
    PHOTODTN_CHECK_MSG(
        s == 0 || static_cast<std::size_t>(cuts_[s] * lut_scale_) < b,
        "LUT entry overshoots its bucket");
    PHOTODTN_CHECK_MSG(b == 0 || lut_[b - 1] <= s, "LUT must be monotone");
  }
  for (std::size_t k = 0; k < cuts_.size(); ++k) {
    PHOTODTN_CHECK_MSG(cuts_[k] >= 0.0 && cuts_[k] < kTwoPi,
                       "PiecewiseMiss cut outside [0, 2*pi)");
    if (k > 0)
      PHOTODTN_CHECK_MSG(cuts_[k - 1] < cuts_[k], "PiecewiseMiss cuts must ascend");
    // The sweep's multiply/divide bookkeeping may leave ~ulp dust just
    // outside [0, 1]; anything beyond that is a real invariant break.
    PHOTODTN_CHECK_MSG(std::isfinite(vals_[k]) && vals_[k] >= -1e-12 &&
                           vals_[k] <= 1.0 + 1e-9,
                       "PiecewiseMiss value must be a probability");
    if (!weights_.empty())
      PHOTODTN_CHECK_MSG(std::isfinite(weights_[k]) && weights_[k] >= 0.0,
                         "PiecewiseMiss weight must be non-negative");
    PHOTODTN_CHECK_MSG(
        rates_[k] == vals_[k] * (weights_.empty() ? 1.0 : weights_[k]),
        "fused rate out of sync with value * weight");
    const double hi = (k + 1 < cuts_.size()) ? cuts_[k + 1] : kTwoPi;
    const double expect = prefix_[k] + rate(k) * (hi - cuts_[k]);
    PHOTODTN_CHECK_MSG(std::fabs(prefix_[k + 1] - expect) <=
                           1e-9 * std::max(1.0, std::fabs(expect)),
                       "PiecewiseMiss prefix sums inconsistent with rates");
  }
}

// ----------------------------------------------------- SelectionEnvironment

SelectionEnvironment::SelectionEnvironment(const CoverageModel& model)
    : model_(&model),
      covers_(model.pois().size()),
      pt_miss_(model.pois().size(), 1.0),
      miss_(model.pois().size()),
      dirty_(model.pois().size(), 1) {}

SelectionEnvironment::SelectionEnvironment(const CoverageModel& model,
                                           std::span<const NodeCollection> others)
    : SelectionEnvironment(model) {
  for (const NodeCollection& nc : others) add_collection(nc);
}

void SelectionEnvironment::add_collection(const NodeCollection& collection) {
  PHOTODTN_CHECK_MSG(!loaded_.contains(collection.node),
                     "environment already holds this node's collection");
  PHOTODTN_CHECK_MSG(is_probability(collection.delivery_prob),
                     "collection delivery probability must be in [0, 1]");
  Loaded& entry = loaded_[collection.node];
  entry.delivery_prob = collection.delivery_prob;
  // Union the collection's arcs per PoI first, then append one cover entry
  // per touched PoI (mirrors build_poi_cover_index, without the full-index
  // allocation).
  std::unordered_map<std::size_t, ArcSet> arcs_by_poi;
  for (const PhotoFootprint* fp : collection.footprints)
    for (const PoiArc& pa : fp->arcs) arcs_by_poi[pa.poi_index].add(pa.arc);
  entry.touched.reserve(arcs_by_poi.size());
  // photodtn-lint: allow(unordered-iter): one append per distinct PoI; touched is sorted below
  for (auto& [poi, arcs] : arcs_by_poi) {
    covers_[poi].push_back(
        NodePoiCover{collection.node, collection.delivery_prob, std::move(arcs)});
    dirty_[poi] = 1;
    entry.touched.push_back(poi);
  }
  // Deterministic order keeps audits and rebuild sweeps reproducible.
  std::sort(entry.touched.begin(), entry.touched.end());
}

void SelectionEnvironment::extend_collection(
    NodeId node, double delivery_prob, std::span<const PhotoFootprint* const> extra) {
  const auto it = loaded_.find(node);
  if (it == loaded_.end()) {
    NodeCollection nc;
    nc.node = node;
    nc.delivery_prob = delivery_prob;
    nc.footprints.assign(extra.begin(), extra.end());
    add_collection(nc);
    return;
  }
  PHOTODTN_CHECK_MSG(it->second.delivery_prob == delivery_prob,
                     "extend_collection must keep the delivery probability");
  std::unordered_map<std::size_t, ArcSet> arcs_by_poi;
  for (const PhotoFootprint* fp : extra)
    for (const PoiArc& pa : fp->arcs) arcs_by_poi[pa.poi_index].add(pa.arc);
  // photodtn-lint: allow(unordered-iter): per-PoI find-or-extend of this node's single cover entry
  for (auto& [poi, arcs] : arcs_by_poi) {
    std::vector<NodePoiCover>& covers = covers_[poi];
    auto cover = std::find_if(covers.begin(), covers.end(),
                              [&](const NodePoiCover& c) { return c.node == node; });
    if (cover == covers.end()) {
      covers.push_back(NodePoiCover{node, delivery_prob, std::move(arcs)});
      dirty_[poi] = 1;
      it->second.touched.insert(
          std::upper_bound(it->second.touched.begin(), it->second.touched.end(), poi),
          poi);
      continue;
    }
    ArcSet merged = cover->arcs;
    merged.unite(arcs);
    if (merged == cover->arcs) continue;  // nothing new on this PoI
    cover->arcs = std::move(merged);
    dirty_[poi] = 1;
  }
}

bool SelectionEnvironment::remove_collection(NodeId node) {
  const auto it = loaded_.find(node);
  if (it == loaded_.end()) return false;
  for (const std::size_t poi : it->second.touched) {
    std::vector<NodePoiCover>& covers = covers_[poi];
    const auto cover = std::find_if(covers.begin(), covers.end(),
                                    [&](const NodePoiCover& c) { return c.node == node; });
    PHOTODTN_CHECK_MSG(cover != covers.end(),
                       "environment cover list out of sync with registry");
    covers.erase(cover);
    dirty_[poi] = 1;
  }
  loaded_.erase(it);
  return true;
}

void SelectionEnvironment::refresh(std::size_t poi) const {
  ++rebuilds_;
  double miss = 1.0;
  std::vector<std::pair<double, const ArcSet*>> covers;
  covers.reserve(covers_[poi].size());
  for (const NodePoiCover& c : covers_[poi]) {
    miss *= 1.0 - c.p;
    covers.push_back({c.p, &c.arcs});
  }
  pt_miss_[poi] = miss;
  miss_[poi] = PiecewiseMiss::build(covers, model_->pois()[poi].profile());
  dirty_[poi] = 0;
  PHOTODTN_AUDIT(miss_[poi].audit());
}

double SelectionEnvironment::point_miss(std::size_t poi) const {
  if (dirty_.at(poi)) refresh(poi);
  return pt_miss_[poi];
}

const PiecewiseMiss& SelectionEnvironment::aspect_miss(std::size_t poi) const {
  if (dirty_.at(poi)) refresh(poi);
  return miss_[poi];
}

CoverageValue SelectionEnvironment::total() const {
  CoverageValue out;
  for (std::size_t poi = 0; poi < dirty_.size(); ++poi) {
    if (dirty_[poi]) refresh(poi);
    const PointOfInterest& p = model_->pois()[poi];
    const double w_max =
        p.profile() != nullptr && !p.profile()->is_uniform() ? p.profile()->total()
                                                             : kTwoPi;
    out.point += p.weight * (1.0 - pt_miss_[poi]);
    out.aspect += p.weight * (w_max - miss_[poi].full_integral());
  }
  return out;
}

void SelectionEnvironment::audit() const {
  PHOTODTN_CHECK_MSG(covers_.size() == model_->pois().size() &&
                         pt_miss_.size() == covers_.size() &&
                         miss_.size() == covers_.size() &&
                         dirty_.size() == covers_.size(),
                     "environment per-PoI arrays must match the model");
  std::vector<std::size_t> cover_counts(covers_.size(), 0);
  // photodtn-lint: allow(unordered-iter): per-entry audit checks + commutative counts
  for (const auto& [node, entry] : loaded_) {
    PHOTODTN_CHECK_MSG(is_probability(entry.delivery_prob),
                       "loaded collection delivery probability must be in [0, 1]");
    PHOTODTN_CHECK_MSG(std::is_sorted(entry.touched.begin(), entry.touched.end()) &&
                           std::adjacent_find(entry.touched.begin(),
                                              entry.touched.end()) == entry.touched.end(),
                       "loaded touched-PoI lists must be sorted and unique");
    for (const std::size_t poi : entry.touched) {
      PHOTODTN_CHECK_MSG(poi < covers_.size(), "touched PoI out of range");
      const auto& covers = covers_[poi];
      const auto it = std::find_if(covers.begin(), covers.end(),
                                   [&](const NodePoiCover& c) { return c.node == node; });
      PHOTODTN_CHECK_MSG(it != covers.end(),
                         "touched PoI missing this node's cover entry");
      PHOTODTN_CHECK_MSG(it->p == entry.delivery_prob && !it->arcs.empty(),
                         "cover entry must carry the collection's p and arcs");
      it->arcs.audit();
      ++cover_counts[poi];
    }
  }
  for (std::size_t poi = 0; poi < covers_.size(); ++poi) {
    PHOTODTN_CHECK_MSG(covers_[poi].size() == cover_counts[poi],
                       "cover list holds entries no loaded collection owns");
    if (dirty_[poi]) continue;  // cached terms not built yet — nothing to verify
    double miss = 1.0;
    for (const NodePoiCover& c : covers_[poi]) miss *= 1.0 - c.p;
    PHOTODTN_CHECK_MSG(std::fabs(pt_miss_[poi] - miss) <= 1e-12,
                       "cached point-miss product out of date");
    miss_[poi].audit();
    // Cross-check the cached miss function against direct products at the
    // covers' interval midpoints (the same probe the pre-sweep builder used).
    for (const NodePoiCover& c : covers_[poi]) {
      for (const auto& [s, e] : c.arcs.intervals()) {
        const double mid = s + (e - s) / 2.0;
        double expect = 1.0;
        for (const NodePoiCover& o : covers_[poi])
          if (o.arcs.contains(mid)) expect *= 1.0 - o.p;
        PHOTODTN_CHECK_MSG(std::fabs(miss_[poi].value_at(mid) - expect) <= 1e-9,
                           "cached miss function out of date");
      }
    }
  }
}

// ------------------------------------------------------------- GreedyPhase

GreedyPhase::GreedyPhase(const SelectionEnvironment& env, double delivery_prob)
    : env_(&env),
      p_(delivery_prob),
      own_arcs_(env.model().pois().size()),
      own_covered_(env.model().pois().size(), 0) {
  PHOTODTN_CHECK_MSG(p_ > 0.0 && p_ <= 1.0, "selection needs p in (0, 1]");
}

CoverageValue GreedyPhase::gain(const PhotoFootprint& fp) const {
  CoverageValue g;
  for (const PoiArc& pa : fp.arcs) {
    const PointOfInterest& poi = env_->model().pois()[pa.poi_index];
    if (!own_covered_[pa.poi_index])
      g.point += poi.weight * env_->point_miss(pa.poi_index) * p_;
    // Split a wrapping arc into linear pieces.
    const double start = normalize_angle(pa.arc.start);
    const double end = start + std::min(pa.arc.length, kTwoPi);
    const PiecewiseMiss& env_fn = env_->aspect_miss(pa.poi_index);
    const ArcSet& own = own_arcs_[pa.poi_index];
    double integral = 0.0;
    if (end <= kTwoPi) {
      integral = env_fn.integrate_excluding(start, end, own);
    } else {
      integral = env_fn.integrate_excluding(start, kTwoPi, own) +
                 env_fn.integrate_excluding(0.0, end - kTwoPi, own);
    }
    g.aspect += poi.weight * p_ * integral;
  }
  return g;
}

void GreedyPhase::gains_batch(std::span<const PhotoFootprint* const> fps,
                              std::span<CoverageValue> out,
                              ThreadPool* pool) const {
  PHOTODTN_CHECK_MSG(out.size() == fps.size(),
                     "gains_batch output span must match the candidate span");
  if (fps.empty()) return;
  // Small batches skip the counting sort: the PoI-major restructuring (and
  // its scratch allocations) only pays for itself once many candidates
  // share PoIs. gain() computes the identical sums in the identical order,
  // so the cutover is invisible in the output bytes — contact-time pools in
  // the simulator are often this small, the dense benches never are.
  constexpr std::size_t kSmallBatch = 32;
  if (fps.size() <= kSmallBatch) {
    for (std::size_t i = 0; i < fps.size(); ++i) out[i] = gain(*fps[i]);
    return;
  }
  // Serial prepass: zero the outputs and rebuild every dirty PoI the sweep
  // touches (aspect_miss refreshes the point miss too). After this, the
  // chunked sweep only reads cached state — safe to fan out.
  for (std::size_t i = 0; i < fps.size(); ++i) {
    out[i] = CoverageValue{};
    for (const PoiArc& pa : fps[i]->arcs) env_->aspect_miss(pa.poi_index);
  }

  // PoI-major sweep over one candidate chunk. Footprint arcs are sorted by
  // PoI index, so accumulating bucket-by-bucket adds each candidate's terms
  // in exactly the order gain() does — the sums are bit-identical.
  const auto& pois = env_->model().pois();
  auto sweep = [&](std::size_t begin, std::size_t end) {
    const std::size_t npois = own_arcs_.size();
    // Counting sort of the chunk's arcs into per-PoI buckets.
    std::vector<std::uint32_t> offset(npois + 1, 0);
    for (std::size_t i = begin; i < end; ++i)
      for (const PoiArc& pa : fps[i]->arcs) ++offset[pa.poi_index + 1];
    for (std::size_t p = 0; p < npois; ++p) offset[p + 1] += offset[p];
    struct Entry {
      std::uint32_t cand;  // global candidate index (owns out[cand])
      double lo, hi;       // normalized span; hi > 2*pi means it wraps
    };
    std::vector<Entry> entries(offset[npois]);
    std::vector<std::uint32_t> fill(offset.begin(), offset.end() - 1);
    for (std::size_t i = begin; i < end; ++i) {
      for (const PoiArc& pa : fps[i]->arcs) {
        const double lo = normalize_angle(pa.arc.start);
        entries[fill[pa.poi_index]++] = {
            static_cast<std::uint32_t>(i), lo,
            lo + std::min(pa.arc.length, kTwoPi)};
      }
    }
    for (std::size_t p = 0; p < npois; ++p) {
      const std::uint32_t lo_e = offset[p], hi_e = offset[p + 1];
      if (lo_e == hi_e) continue;
      // Everything the per-arc loop of gain() would recompute, hoisted once
      // per PoI: weight, point term, miss function, committed arcs.
      const PointOfInterest& poi = pois[p];
      const PiecewiseMiss& env_fn = env_->aspect_miss(p);
      const ArcSet& own = own_arcs_[p];
      const bool covered = own_covered_[p] != 0;
      const double pt_add = covered ? 0.0 : poi.weight * env_->point_miss(p) * p_;
      const double wp = poi.weight * p_;
      for (std::uint32_t k = lo_e; k < hi_e; ++k) {
        const Entry& en = entries[k];
        CoverageValue& g = out[en.cand];
        if (!covered) g.point += pt_add;
        double integral = 0.0;
        if (en.hi <= kTwoPi) {
          integral = env_fn.integrate_excluding(en.lo, en.hi, own);
        } else {
          integral = env_fn.integrate_excluding(en.lo, kTwoPi, own) +
                     env_fn.integrate_excluding(0.0, en.hi - kTwoPi, own);
        }
        g.aspect += wp * integral;
      }
    }
  };

  // Chunk grain is fixed (never derived from the worker count): each chunk
  // writes only its candidates' slots, so any pool size — including none —
  // produces the same bytes.
  constexpr std::size_t kGrain = 64;
  if (pool != nullptr && pool->concurrency() > 1 && fps.size() > kGrain) {
    pool->parallel_for(fps.size(), kGrain, sweep);
  } else {
    sweep(0, fps.size());
  }
}

void GreedyPhase::commit(const PhotoFootprint& fp) {
  for (const PoiArc& pa : fp.arcs) {
    own_covered_[pa.poi_index] = 1;
    own_arcs_[pa.poi_index].add(pa.arc);
  }
  PHOTODTN_AUDIT(audit());
}

void GreedyPhase::audit() const {
  PHOTODTN_CHECK_MSG(own_arcs_.size() == own_covered_.size(),
                     "GreedyPhase parallel arrays must agree in size");
  for (std::size_t poi = 0; poi < own_arcs_.size(); ++poi) {
    own_arcs_[poi].audit();
    PHOTODTN_CHECK_MSG((own_covered_[poi] != 0) == !own_arcs_[poi].empty(),
                       "point-covered flag must match committed arc presence");
  }
}

}  // namespace photodtn
