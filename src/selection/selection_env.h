// SelectionEnvironment + GreedyPhase: the incremental machinery behind the
// greedy photo selection of Section III-D.
//
// When node n selects photos, every *other* collection in the node set M is
// fixed. Their effect on the expected coverage of each PoI is captured by:
//   * a point "miss factor"  prod_{i != n covering PoI} (1 - p_i), and
//   * a piecewise-constant aspect "miss function"
//       env(v) = prod_{i != n: v in A_i} (1 - p_i)
// on the aspect circle. Adding one of n's photos then changes the expected
// coverage by exactly
//   dPoint  = w * miss * p_n                  (first covering photo only)
//   dAspect = w * p_n * integral over (arc minus n's already-selected arcs)
//             of env(v) dv,
// so each greedy step is a cheap local computation instead of a full C_ex
// re-evaluation. GreedyPhase tracks n's tentative selection and exposes
// gain()/commit().
#pragma once

#include <span>
#include <vector>

#include "coverage/coverage_model.h"
#include "coverage/coverage_value.h"
#include "selection/expected_coverage.h"

namespace photodtn {

/// Piecewise-constant product-of-misses on the aspect circle of one PoI.
class PiecewiseMiss {
 public:
  /// Constant 1 (no other node covers this PoI).
  PiecewiseMiss() = default;

  /// Builds from the covering nodes' arc sets and delivery probabilities.
  static PiecewiseMiss build(std::span<const std::pair<double, const ArcSet*>> covers);

  /// env value at an angle.
  double value_at(double angle) const noexcept;

  /// Integral of env (optionally times an aspect-weight profile) over
  /// [lo, hi] minus the parts covered by `exclude`, for
  /// 0 <= lo <= hi <= 2*pi (linear; callers split wrapping arcs).
  double integrate_excluding(double lo, double hi, const ArcSet& exclude,
                             const AspectProfile* profile = nullptr) const;

  bool is_constant_one() const noexcept { return bps_.empty() && constant_ == 1.0; }

 private:
  std::vector<double> bps_;   // sorted breakpoints in [0, 2*pi)
  std::vector<double> vals_;  // vals_[k] on [bps_[k], bps_[k+1]) (last wraps)
  double constant_ = 1.0;     // value when bps_ is empty
};

class SelectionEnvironment {
 public:
  /// `others`: every collection in M except the node that will select.
  SelectionEnvironment(const CoverageModel& model,
                       std::span<const NodeCollection> others);

  const CoverageModel& model() const noexcept { return *model_; }
  double point_miss(std::size_t poi) const { return pt_miss_.at(poi); }
  const PiecewiseMiss& aspect_miss(std::size_t poi) const { return env_.at(poi); }

 private:
  const CoverageModel* model_;
  std::vector<double> pt_miss_;
  std::vector<PiecewiseMiss> env_;
};

class GreedyPhase {
 public:
  /// `delivery_prob` is the selecting node's p, already floored by the
  /// caller if desired (a common positive factor never changes the greedy
  /// order, but a literal 0 would make every gain zero and stall selection).
  GreedyPhase(const SelectionEnvironment& env, double delivery_prob);

  /// Expected-coverage gain of adding this footprint to the tentative
  /// selection (lexicographic CoverageValue).
  CoverageValue gain(const PhotoFootprint& fp) const;

  /// Adds the footprint to the tentative selection.
  void commit(const PhotoFootprint& fp);

  double delivery_prob() const noexcept { return p_; }

  /// The tentative selection's arcs on a PoI (for tests).
  const ArcSet& own_arcs(std::size_t poi) const { return own_arcs_.at(poi); }

 private:
  const SelectionEnvironment* env_;
  double p_;
  std::vector<ArcSet> own_arcs_;
  std::vector<char> own_covered_;
};

}  // namespace photodtn
