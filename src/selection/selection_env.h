// SelectionEnvironment + GreedyPhase: the incremental machinery behind the
// greedy photo selection of Section III-D.
//
// When node n selects photos, every *other* collection in the node set M is
// fixed. The expected coverage C_ex factors per PoI (Definition 2 +
// linearity of expectation), so the environment's effect on each PoI is
// captured by:
//   * a point "miss factor"  prod_{i != n covering PoI} (1 - p_i), and
//   * a piecewise-constant aspect "miss function"
//       env(v) = prod_{i != n: v in A_i} (1 - p_i)
// on the aspect circle. Adding one of n's photos then changes the expected
// coverage by exactly
//   dPoint  = w * miss * p_n                  (first covering photo only)
//   dAspect = w * p_n * integral over (arc minus n's already-selected arcs)
//             of env(v) * weight(v) dv,
// so each greedy step is a cheap local computation instead of a full C_ex
// re-evaluation, touching only the PoIs the candidate photo point-covers.
//
// The environment is *incremental*: collections can be added, extended and
// removed (metadata cached, expired, or photos committed at a contact), and
// only the PoIs the changed collection covers are marked dirty; their
// cached per-PoI state is rebuilt lazily on the next query. PiecewiseMiss
// carries prefix-sum integrals (with the PoI's aspect-weight profile baked
// into the segments), making one marginal-gain integral O(log B) in the
// number of environment breakpoints instead of O(B).
//
// Batched gain kernel: the greedy selector evaluates every candidate's gain
// over and over, and candidate-at-a-time evaluation streams each PoI's
// segment arrays through cache once *per candidate*. gains_batch flips the
// loop PoI-major — all candidate arcs touching a PoI are processed while
// that PoI's structure-of-arrays state (cuts / fused rates / prefix sums /
// segment lookup table) is hot — and writes each candidate's gain to its own
// output slot, so the sweep parallelizes over candidate chunks with
// bit-identical results (see util/thread_pool.h for the determinism rules).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "coverage/coverage_model.h"
#include "coverage/coverage_value.h"
#include "persist/fwd.h"
#include "selection/expected_coverage.h"
#include "selection/poi_cover.h"
#include "util/thread_pool.h"

namespace photodtn {

/// Piecewise-constant product-of-misses on the aspect circle of one PoI,
/// with prefix-sum integrals of env(v) * weight(v) for O(log B) range
/// integration. When built with a non-uniform AspectProfile, the profile's
/// breakpoints are merged into the segmentation and its weight multiplies
/// the stored integrals (value_at still returns the unweighted env value).
class PiecewiseMiss {
 public:
  /// Constant 1 (no other node covers this PoI, uniform weight).
  PiecewiseMiss() = default;

  /// Builds from the covering nodes' arc sets and delivery probabilities.
  /// `profile` (optional) bakes the PoI's aspect weighting into the
  /// integrals; a null or uniform profile means weight 1 everywhere.
  static PiecewiseMiss build(std::span<const std::pair<double, const ArcSet*>> covers,
                             const AspectProfile* profile = nullptr);

  /// env value at an angle (unweighted miss product).
  double value_at(double angle) const noexcept;

  /// Integral of env(v) * weight(v) over [lo, hi], 0 <= lo <= hi <= 2*pi.
  /// O(log B) via the prefix sums.
  double integral(double lo, double hi) const noexcept;

  /// integral(lo, hi) minus the parts covered by `exclude`, for
  /// 0 <= lo <= hi <= 2*pi (linear; callers split wrapping arcs).
  /// O((1 + excluded intervals in range) * log B).
  double integrate_excluding(double lo, double hi, const ArcSet& exclude) const;

  /// Reference implementation of integrate_excluding that scans every
  /// segment (the pre-prefix-sum algorithm). Kept as the recorded perf
  /// baseline for the bench pipeline and as the audit cross-check; results
  /// agree with integrate_excluding to floating-point dust.
  double integrate_excluding_scan(double lo, double hi, const ArcSet& exclude) const;

  /// Integral of env(v) * weight(v) over the whole circle. The environment's
  /// expected *uncovered* aspect mass of the PoI; C_ex factors through it.
  double full_integral() const noexcept;

  bool is_constant_one() const noexcept { return cuts_.empty() && constant_ == 1.0; }

  /// Number of constant segments (0 for the constant function). The scan
  /// baseline is O(segment_count()) per integral; the prefix path O(log).
  std::size_t segment_count() const noexcept { return cuts_.size(); }

  /// Deep invariant check (audit builds / tests): cuts sorted, starting at
  /// 0, inside [0, 2*pi); values are probabilities; weights non-negative;
  /// prefix sums consistent with the per-segment rates. Throws
  /// std::logic_error on violation.
  void audit() const;

 private:
  double rate(std::size_t seg) const noexcept { return rates_[seg]; }
  std::size_t segment_of(double a) const noexcept;

  // Linear segmentation of [0, 2*pi): segment k spans
  // [cuts_[k], cuts_[k+1]) with the last ending at 2*pi; cuts_[0] == 0.
  // Empty cuts_ means "constant_ everywhere, uniform weight".
  std::vector<double> cuts_;
  std::vector<double> vals_;     // env miss product per segment
  std::vector<double> weights_;  // profile weight per segment; empty = 1
  std::vector<double> rates_;    // fused vals * weights (weight 1 if none)
  std::vector<double> prefix_;   // prefix_[k] = integral of env*w on [0, cuts_[k]);
                                 // size cuts_.size() + 1, last = full circle
  // Bucketized segment finder: lut_[b] is a segment index s with
  // cuts_[s] <= every angle in bucket b, so segment_of starts there and
  // advances at most a few cuts instead of binary-searching ~log B probes.
  // Buckets partition [0, 2*pi) evenly; lut_scale_ = bucket count / 2*pi.
  // Built only for dense functions (>= kLutMinSegments segments): sparse
  // ones rebuild far more often than they are probed, so they binary
  // search and lut_ stays empty with lut_scale_ == 0.
  static constexpr std::size_t kLutMinSegments = 32;
  std::vector<std::uint32_t> lut_;
  double lut_scale_ = 0.0;
  double constant_ = 1.0;        // value when cuts_ is empty
};

class SelectionEnvironment {
 public:
  /// Empty environment (no other collections yet); grow with
  /// add_collection.
  explicit SelectionEnvironment(const CoverageModel& model);

  /// `others`: every collection in M except the node that will select.
  /// Equivalent to adding each collection in order.
  SelectionEnvironment(const CoverageModel& model,
                       std::span<const NodeCollection> others);

  /// Adds a collection (node ids must be unique; footprint pointers only
  /// need to live for the duration of the call — arcs are copied). Marks
  /// exactly the PoIs the collection point-covers dirty.
  void add_collection(const NodeCollection& collection);

  /// Adds photos to an existing collection (or adds the collection when the
  /// node is not loaded). Used when a collection grows in place — e.g. the
  /// command center receiving deliveries mid-contact. Only PoIs whose
  /// covered arcs actually change are marked dirty.
  void extend_collection(NodeId node, double delivery_prob,
                         std::span<const PhotoFootprint* const> extra);

  /// Removes a collection; returns false when the node was not loaded.
  /// Marks only the PoIs the collection covered dirty.
  bool remove_collection(NodeId node);

  bool has_collection(NodeId node) const noexcept { return loaded_.contains(node); }
  std::size_t collection_count() const noexcept { return loaded_.size(); }

  /// Lifetime count of lazy per-PoI rebuilds (refresh() calls): how much
  /// cached state the dirty-marking actually recomputed. Deterministic —
  /// rebuilds happen on first query of a dirty PoI, never on a pool worker
  /// (gains_batch rebuilds serially before fanning out). Feeds the
  /// scheme.poi_rebuilds metric.
  std::uint64_t rebuild_count() const noexcept { return rebuilds_; }

  const CoverageModel& model() const noexcept { return *model_; }

  /// Per-PoI cached terms; dirty PoIs are rebuilt on access (lazily, so a
  /// burst of invalidations followed by queries touching few PoIs only pays
  /// for those). Thread-compatible, not thread-safe — like CoverageModel's
  /// footprint cache, each simulation run owns its environment.
  double point_miss(std::size_t poi) const;
  const PiecewiseMiss& aspect_miss(std::size_t poi) const;

  /// C_ex of the loaded collections (Definition 2), assembled from the
  /// per-PoI factors: point = sum w * (1 - miss), aspect = sum
  /// w * (W_profile - full_integral). Equals expected_coverage_exact on the
  /// same collections.
  CoverageValue total() const;

  /// Deep invariant check (audit builds / tests): per-PoI cover lists
  /// consistent with the loaded-collection registry, point-miss products
  /// and piecewise miss functions match a from-scratch recomputation, arc
  /// sets canonical. Throws std::logic_error on violation.
  void audit() const;

 private:
  // Checkpoint/restore serializes the per-PoI cover lists *in list order*:
  // refresh() folds miss products in that order, so preserving it keeps the
  // rebuilt FP state bit-identical to the uninterrupted run's.
  friend struct persist::StateAccess;

  struct Loaded {
    double delivery_prob = 0.0;
    std::vector<std::size_t> touched;  // PoIs this collection covers
  };

  void refresh(std::size_t poi) const;

  const CoverageModel* model_;
  // Per-PoI state as parallel arrays (structure-of-arrays): the hot queries
  // — point_miss reads and the dirty checks of a batched gain sweep — then
  // stream dense double/char arrays instead of striding over a struct that
  // drags each PoI's cover list and miss function through cache with it.
  // dirty_ starts all-1: the initial rebuild must bake in the PoI profile.
  mutable std::vector<std::vector<NodePoiCover>> covers_;
  mutable std::vector<double> pt_miss_;
  mutable std::vector<PiecewiseMiss> miss_;
  mutable std::vector<char> dirty_;
  mutable std::uint64_t rebuilds_ = 0;
  std::unordered_map<NodeId, Loaded> loaded_;
};

class GreedyPhase {
 public:
  /// `delivery_prob` is the selecting node's p, already floored by the
  /// caller if desired (a common positive factor never changes the greedy
  /// order, but a literal 0 would make every gain zero and stall selection).
  GreedyPhase(const SelectionEnvironment& env, double delivery_prob);

  /// Expected-coverage gain of adding this footprint to the tentative
  /// selection (lexicographic CoverageValue).
  CoverageValue gain(const PhotoFootprint& fp) const;

  /// Batched gain sweep: out[i] = gain(*fps[i]) for every candidate,
  /// bit-identical to the one-at-a-time calls (footprint arcs are sorted by
  /// PoI, so the PoI-major accumulation adds each candidate's terms in the
  /// same order). With a pool, candidate chunks run on the workers after a
  /// serial pass rebuilds every dirty PoI the sweep touches; each chunk
  /// writes only its own output slots, so results do not depend on the
  /// worker count (util/thread_pool.h).
  void gains_batch(std::span<const PhotoFootprint* const> fps,
                   std::span<CoverageValue> out, ThreadPool* pool = nullptr) const;

  /// Adds the footprint to the tentative selection.
  void commit(const PhotoFootprint& fp);

  double delivery_prob() const noexcept { return p_; }

  /// The tentative selection's arcs on a PoI (for tests).
  const ArcSet& own_arcs(std::size_t poi) const { return own_arcs_.at(poi); }

  /// Deep invariant check (audit builds / tests): committed arc sets are
  /// canonical and the point-covered flags match arc presence exactly.
  void audit() const;

 private:
  const SelectionEnvironment* env_;
  double p_;
  std::vector<ArcSet> own_arcs_;
  std::vector<char> own_covered_;
};

}  // namespace photodtn
