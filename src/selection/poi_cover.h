// Shared helper: reduce a set of NodeCollections to a per-PoI view — for
// each PoI, the list of covering nodes with their delivery probability and
// their unioned aspect arcs. Used by the exact expected-coverage evaluator
// and by the selection environment.
#pragma once

#include <span>
#include <vector>

#include "geometry/arc_set.h"
#include "selection/expected_coverage.h"

namespace photodtn {

struct NodePoiCover {
  NodeId node = -1;
  double p = 0.0;
  ArcSet arcs;
};

/// poi index -> covering nodes. Nodes contributing no arcs to a PoI do not
/// appear in that PoI's list.
std::vector<std::vector<NodePoiCover>> build_poi_cover_index(
    const CoverageModel& model, std::span<const NodeCollection> nodes);

}  // namespace photodtn
