// Disaster-recovery scenario (the paper's motivating application): a town's
// cellular network is down after an earthquake. The command center needs
// imagery of damaged blocks (clustered PoIs, weighted by criticality);
// rescuers walk the area (random-waypoint mobility), photograph what is
// around them (mobility-coupled, partially aimed photo workload with sensor
// noise), and a few carry satellite radios (gateways). Runs OurScheme
// against Spray&Wait on the *same* inputs and reports what the command
// center learned, hour by hour.
//
// Run: ./disaster_recovery
#include <cstdio>

#include "geometry/angle.h"
#include "schemes/factory.h"
#include "trace/mobility_rwp.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"

using namespace photodtn;

int main() {
  std::printf("Disaster recovery: 30 rescuers, 24 hours, cellular down.\n\n");

  // The town: 3 km x 3 km, 80 PoIs clustered around 4 damaged blocks,
  // criticality weights 1-3.
  Rng rng(2026);
  Rng poi_rng = rng.split("pois");
  PoiList pois = generate_clustered_pois(80, 3000.0, 4, 200.0, poi_rng);
  randomize_weights(pois, 1.0, 3.0, poi_rng);
  const CoverageModel model(pois, deg_to_rad(30.0));

  // Rescuer mobility: walking speed, 3 km x 3 km, Bluetooth-class radios.
  RwpConfig mob_cfg;
  mob_cfg.num_participants = 30;
  mob_cfg.region_m = 3000.0;
  mob_cfg.duration_s = 24.0 * 3600.0;
  mob_cfg.comm_range_m = 60.0;
  mob_cfg.scan_interval_s = 60.0;
  mob_cfg.gateway_fraction = 0.1;  // 3 satellite radios
  mob_cfg.gateway_mean_interval_s = 2.0 * 3600.0;
  mob_cfg.seed = 7;
  const RwpMobility mobility(mob_cfg);
  const ContactTrace trace = mobility.extract_contacts();
  const TraceStats ts = trace.stats();
  std::printf("Contact trace from mobility: %zu contacts (%zu with the center), "
              "mean duration %.0fs\n",
              ts.contacts, ts.command_center_contacts, ts.mean_duration);

  // Photo workload: rescuers shoot where they stand; 70%% of shots
  // deliberately frame a nearby damaged building; prototype sensor noise.
  ScenarioConfig wl = ScenarioConfig::mit(1);
  wl.region_m = 3000.0;
  wl.num_pois = pois.size();
  wl.photo_rate_per_hour = 120.0;
  PhotoGenOptions po;
  po.mobility = &mobility;
  po.aimed_fraction = 0.7;
  po.aim_search_radius_m = 300.0;
  po.sensor_noise = SensorNoise{};

  SimConfig sim_cfg;
  sim_cfg.node_storage_bytes = 20ULL * 4'000'000;  // 20 photos per phone
  sim_cfg.bandwidth_bytes_per_s = 2.0e6;
  sim_cfg.sample_interval_s = 4.0 * 3600.0;

  for (const std::string& name : {std::string("OurScheme"), std::string("Spray&Wait")}) {
    Rng photo_rng = Rng(2026).split("photos");  // identical workload per scheme
    PhotoGenerator gen(wl, pois, po);
    std::vector<PhotoEvent> events =
        gen.generate(trace.horizon(), mob_cfg.num_participants, photo_rng);
    Simulator sim(model, trace, std::move(events), sim_cfg);
    auto scheme = make_scheme(name);
    const SimResult r = sim.run(*scheme);

    std::printf("\n--- %s ---\n", name.c_str());
    std::printf("  %-6s  %-18s  %-22s  %s\n", "hour", "blocks seen (wt %)",
                "mean view angle (deg)", "photos at center");
    for (const SimSample& s : r.samples) {
      std::printf("  %-6.0f  %-18.1f  %-22.1f  %llu\n", s.time / 3600.0,
                  100.0 * s.point_coverage, rad_to_deg(s.aspect_coverage),
                  (unsigned long long)s.delivered_photos);
    }
    std::printf("  final: %.1f%% of weighted PoIs covered, %.0f deg mean aspect, "
                "%llu photos delivered, %llu photos dropped en route\n",
                100.0 * r.final_point_norm, rad_to_deg(r.final_aspect_norm),
                (unsigned long long)r.delivered_photos,
                (unsigned long long)r.counters.drops);
  }

  std::printf("\nThe resource-aware scheme reaches the same situational picture\n"
              "with a fraction of the traffic — exactly the paper's argument for\n"
              "metadata-driven selection under DTN constraints.\n");
  return 0;
}
