// Battlefield patrol scenario: squads patrol sectors of an area of
// operations and must report imagery of designated targets back to the
// command post. Demonstrates (i) weighted PoIs — high-value targets earn
// double weight and are prioritized automatically by the lexicographic
// coverage model; (ii) team-structured contact patterns (squad members meet
// constantly, squads rarely); (iii) the effect of how many soldiers carry a
// SATCOM uplink.
//
// Run: ./battlefield_patrol
#include <cstdio>

#include "geometry/angle.h"
#include "schemes/factory.h"
#include "sim/experiment.h"
#include "workload/poi_gen.h"

using namespace photodtn;

int main() {
  std::printf("Battlefield patrol: 4 squads x 8 soldiers, 48h operation.\n\n");

  ScenarioConfig sc = ScenarioConfig::mit(1);
  sc.region_m = 4000.0;
  sc.num_pois = 40;
  sc.photo_rate_per_hour = 100.0;
  sc.trace.num_participants = 32;
  sc.trace.team_size = 8;              // squads
  sc.trace.intra_team_boost = 30.0;    // squad members move together
  sc.trace.duration_s = 48.0 * 3600.0;
  sc.trace.base_pair_rate_per_hour = 0.05;
  sc.trace.gateway_mean_interval_s = 4.0 * 3600.0;
  sc.sim.node_storage_bytes = 15ULL * 4'000'000;
  sc.sim.sample_interval_s = 8.0 * 3600.0;

  // Target deck: 40 targets; every fifth is high-value (weight 2).
  // run_single generates uniform unit-weight PoIs internally, so this
  // example drives the pipeline manually where weights matter.
  std::printf("Effect of SATCOM density on what the command post sees\n");
  std::printf("  %-22s  %-14s  %-16s  %s\n", "uplinks (gateway frac)",
              "targets seen", "aspect (deg)", "photos received");
  for (const double frac : {1.0 / 32.0, 2.0 / 32.0, 4.0 / 32.0}) {
    ExperimentSpec spec;
    spec.scenario = sc;
    spec.scenario.trace.gateway_fraction = frac;
    spec.scheme = "OurScheme";
    spec.runs = 3;
    const ExperimentResult r = run_experiment(spec);
    char seen[32];
    std::snprintf(seen, sizeof seen, "%.1f%%", 100.0 * r.final_point.mean());
    std::printf("  %-22.3f  %-14s  %-16.1f  %.0f\n", frac, seen,
                rad_to_deg(r.final_aspect.mean()), r.final_delivered.mean());
  }

  // Weighted targets: rerun the coverage model directly to show the
  // high-value targets get covered first.
  std::printf("\nWeighted target prioritization (same photos, one uplink):\n");
  Rng rng(99);
  Rng poi_rng = rng.split("pois");
  PoiList targets = generate_uniform_pois(sc.num_pois, sc.region_m, poi_rng);
  for (std::size_t i = 0; i < targets.size(); i += 5) targets[i].weight = 2.0;

  const CoverageModel model(targets, sc.effective_angle);
  SyntheticTraceConfig tc = sc.trace;
  tc.gateway_fraction = 1.0 / 32.0;
  tc.seed = 5;
  const ContactTrace trace = generate_synthetic_trace(tc);
  PhotoGenerator gen(sc, targets);
  Rng photo_rng = rng.split("photos");
  std::vector<PhotoEvent> events = gen.generate(trace.horizon(), 32, photo_rng);
  SimConfig sim_cfg = sc.sim;
  Simulator sim(model, trace, std::move(events), sim_cfg);
  auto scheme = make_scheme("OurScheme");
  const SimResult r = sim.run(*scheme);

  std::size_t hv_total = 0, hv_seen = 0, lv_total = 0, lv_seen = 0;
  const CoverageMap& cc = sim.command_center_coverage();
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const bool high_value = targets[i].weight > 1.0;
    (high_value ? hv_total : lv_total) += 1;
    if (cc.poi_covered(i)) (high_value ? hv_seen : lv_seen) += 1;
  }
  std::printf("  high-value targets covered: %zu/%zu (%.0f%%)\n", hv_seen, hv_total,
              100.0 * static_cast<double>(hv_seen) / static_cast<double>(hv_total));
  std::printf("  regular targets covered:    %zu/%zu (%.0f%%)\n", lv_seen, lv_total,
              100.0 * static_cast<double>(lv_seen) / static_cast<double>(lv_total));
  std::printf("\nUnder contention, the doubled weight pulls coverage toward the\n"
              "high-value targets — the weighted extension of Section II-C.\n");
  return 0;
}
