// Quickstart: the photodtn public API in five minutes.
//
//  1. A command center issues a crowdsourcing task: a PoI list + model
//     parameters (PhotoCrowdTask).
//  2. Photos are metadata tuples (location, range, field-of-view,
//     orientation) — evaluate the coverage of any collection.
//  3. Devices run the Section III selection logic through DeviceAgent:
//     which photos to keep, which to fetch from a contact peer.
//
// Build & run:  ./quickstart
#include <cstdio>

#include "core/photocrowd.h"
#include "geometry/angle.h"

using namespace photodtn;

namespace {

/// A photo standing `dist` meters from `poi` in compass direction `dir_deg`
/// (degrees, 0 = east), looking straight at it.
PhotoMeta snap(PhotoId id, NodeId who, const PointOfInterest& poi, double dir_deg,
               double dist = 100.0) {
  PhotoMeta p;
  p.id = id;
  p.taken_by = who;
  const double dir = deg_to_rad(dir_deg);
  p.location = poi.location + Vec2::from_heading(dir) * dist;
  p.orientation = normalize_angle(dir + std::numbers::pi);  // look back at the PoI
  p.fov = deg_to_rad(60.0);
  p.range = coverage_range_from_fov(p.fov, 100.0);  // r = c*cot(fov/2), c=100m
  p.size_bytes = 4'000'000;
  return p;
}

}  // namespace

int main() {
  // ---- 1. The command center issues a task: two damaged buildings.
  const PoiList pois{{0, {500.0, 500.0}, 1.0, nullptr},      // city hall
                     {1, {1200.0, 800.0}, 2.0, nullptr}};    // hospital, double weight
  const PhotoCrowdTask task(pois, /*effective angle theta=*/deg_to_rad(30.0),
                            /*deadline=*/48.0 * 3600.0);
  std::printf("Task issued: %zu PoIs, theta=30deg, deadline=%.0fh\n",
              task.model().pois().size(), task.deadline() / 3600.0);

  // ---- 2. Photo coverage of a collection (Definition 1).
  const std::vector<PhotoMeta> photos{
      snap(1, 1, pois[0], 0.0),     // city hall from the east
      snap(2, 1, pois[0], 10.0),    // nearly the same view — mostly redundant
      snap(3, 1, pois[0], 180.0),   // city hall from the west
      snap(4, 1, pois[1], 90.0)};   // hospital from the north
  const CoverageValue c = task.coverage(photos);
  std::printf("Collection coverage: point=%.1f (of %.1f weight), aspect=%.1f deg\n",
              c.point, 3.0, rad_to_deg(c.aspect));
  std::printf("Photo 2 relevant? %s  A photo of nothing relevant? %s\n",
              task.is_relevant(photos[1]) ? "yes" : "no",
              task.is_relevant(snap(99, 1, {2, {9000.0, 9000.0}, 1.0, nullptr}, 0.0)) ? "yes"
                                                                             : "no");

  // ---- 3. On-device selection: keep the best photos under a storage cap.
  DeviceAgent alice(task, /*node id=*/1, /*storage=*/2 * 4'000'000);
  const std::vector<PhotoId> keep =
      alice.select_storage(photos, /*own delivery prob=*/0.6, /*now=*/0.0);
  std::printf("Alice keeps %zu of %zu photos under a 2-photo budget:", keep.size(),
              photos.size());
  for (const PhotoId id : keep) std::printf(" #%llu", (unsigned long long)id);
  std::printf("   (the near-duplicate was not worth a slot)\n");

  // ---- 4. A contact: Bob carries different views; plan the exchange.
  PeerView bob;
  bob.id = 2;
  bob.delivery_prob = 0.2;
  bob.photos = {snap(10, 2, pois[0], 90.0), snap(11, 2, pois[1], 270.0)};
  bob.storage_bytes = 2 * 4'000'000;
  const ContactDecision d = alice.plan_contact(photos, 0.6, bob, /*now=*/60.0);
  std::printf("Meeting Bob: Alice should hold %zu photos and fetch %zu from Bob.\n",
              d.keep_in_order.size(), d.fetch_from_peer.size());

  // ---- 5. Acknowledgments: once the center has a view, it stops mattering.
  MetadataEntry ack;
  ack.owner = kCommandCenter;
  ack.photos = {photos[0]};
  ack.observed_at = 120.0;
  alice.learn_metadata(ack);
  const std::vector<PhotoId> keep2 = alice.select_storage(photos, 0.6, 130.0);
  std::printf("After the center acknowledges photo #1, Alice keeps:");
  for (const PhotoId id : keep2) std::printf(" #%llu", (unsigned long long)id);
  std::printf("\n");
  return 0;
}
