// The Section IV prototype demonstration as a narrated example: 8
// participants photograph a historic church; a data mule (the command
// center) passes by four times; at most 3 photos move per contact and each
// phone stores 5. Shows photo-by-photo what the center receives and which
// aspects of the church each delivered photo covers — the textual analogue
// of Fig. 3/4.
//
// Run: ./church_demo
// Besides the console report, writes church_demo_<scheme>.svg — the Fig. 3
// style map of the delivered photos and the covered aspect ring.
#include <cstdio>

#include "dtn/simulator.h"
#include "geometry/angle.h"
#include "schemes/factory.h"
#include "util/rng.h"
#include "viz/coverage_scene.h"

using namespace photodtn;

namespace {

constexpr double kHistoryHours = 150.0;

ContactTrace make_trace(Rng& rng) {
  std::vector<Contact> contacts;
  for (int i = 0; i < 180; ++i) {  // learning prefix for PROPHET/rates
    const double t = rng.uniform(0.0, kHistoryHours * 3600.0);
    NodeId a = 0, b = 0;
    if (i % 15 == 0) {
      b = static_cast<NodeId>(rng.uniform_int(1, 2));
    } else {
      a = static_cast<NodeId>(rng.uniform_int(1, 8));
      do {
        b = static_cast<NodeId>(rng.uniform_int(1, 8));
      } while (b == a);
    }
    contacts.push_back(Contact{t, 600.0, a, b});
  }
  const double t0 = kHistoryHours * 3600.0;
  int mule = 0;
  for (int i = 0; i < 48; ++i) {
    const double t = t0 + (i + 1) * 3600.0;
    NodeId a = 0, b = 0;
    if (mule < 4 && i % 12 == 10) {
      b = static_cast<NodeId>(rng.uniform_int(1, 2));
      ++mule;
    } else {
      a = static_cast<NodeId>(rng.uniform_int(1, 8));
      do {
        b = static_cast<NodeId>(rng.uniform_int(1, 8));
      } while (b == a);
    }
    contacts.push_back(Contact{t, 600.0, a, b});
  }
  return ContactTrace{std::move(contacts), 9, (kHistoryHours + 50.0) * 3600.0};
}

std::vector<PhotoEvent> make_photos(Vec2 church, Rng& rng) {
  std::vector<PhotoEvent> events;
  PhotoId id = 1;
  const double t0 = kHistoryHours * 3600.0;
  for (NodeId node = 1; node <= 8; ++node) {
    for (int k = 0; k < 5; ++k) {
      PhotoMeta p;
      p.id = id++;
      p.taken_by = node;
      p.taken_at = t0;
      p.size_bytes = 4'000'000;
      p.fov = deg_to_rad(rng.uniform(40.0, 60.0));
      p.range = 200.0;
      if (rng.bernoulli(0.55)) {
        const double dir = rng.uniform(0.0, kTwoPi);
        p.location = church + Vec2::from_heading(dir) * rng.uniform(60.0, 150.0);
        p.orientation = normalize_angle(dir + std::numbers::pi + rng.uniform(-0.1, 0.1));
      } else {
        p.location = church + Vec2{rng.uniform(300.0, 900.0), rng.uniform(300.0, 900.0)};
        p.orientation = rng.uniform(0.0, kTwoPi);
      }
      events.push_back(PhotoEvent{t0, node, p});
    }
  }
  return events;
}

}  // namespace

int main() {
  std::printf("Church demo (Section IV): 8 photographers, 1 target, 48 contacts,\n"
              "4 data-mule visits, <=3 photos per contact, <=5 photos per phone.\n\n");

  const Vec2 church{0.0, 0.0};
  const CoverageModel model({PointOfInterest{0, church, 1.0, nullptr}}, deg_to_rad(40.0));
  SimConfig cfg;
  cfg.node_storage_bytes = 5ULL * 4'000'000;
  cfg.bandwidth_bytes_per_s = 3.0 * 4'000'000.0 / 600.0;
  cfg.sample_interval_s = 1e9;

  for (const std::string& name : demo_scheme_names()) {
    Rng rng(11);  // identical inputs per scheme
    const ContactTrace trace = make_trace(rng);
    std::vector<PhotoEvent> photos = make_photos(church, rng);
    Simulator sim(model, trace, photos, cfg);
    auto scheme = make_scheme(name);
    const SimResult r = sim.run(*scheme);

    std::printf("--- %s ---\n", name.c_str());
    std::printf("delivered %llu photos; the church's aspect ring is %.0f deg covered\n",
                (unsigned long long)r.delivered_photos, rad_to_deg(r.final_coverage.aspect));
    for (const PhotoMeta& p : sim.node(kCommandCenter).store().photos()) {
      const PhotoFootprint& fp = model.footprint_cached(p);
      if (!fp.relevant()) {
        std::printf("  photo #%-3llu  (does not show the church)\n",
                    (unsigned long long)p.id);
        continue;
      }
      const double view_from = (p.location - church).heading();
      std::printf("  photo #%-3llu  shot from %3.0f deg, %3.0f m away -> covers "
                  "[%.0f..%.0f] deg\n",
                  (unsigned long long)p.id, rad_to_deg(view_from),
                  p.location.distance_to(church),
                  rad_to_deg(normalize_angle(view_from - deg_to_rad(40.0))),
                  rad_to_deg(normalize_angle(view_from + deg_to_rad(40.0))));
    }
    // Fig. 3-style map of what the center received.
    CoverageMap delivered_map(model);
    const std::vector<PhotoMeta> delivered = sim.node(kCommandCenter).store().photos();
    for (const PhotoMeta& p : delivered) delivered_map.add(model.footprint_cached(p));
    const SvgCanvas scene = render_coverage_scene(model, delivered, &delivered_map);
    std::string file = "church_demo_" + name + ".svg";
    for (char& ch : file)
      if (ch == '&') ch = '_';
    if (scene.write_file(file)) std::printf("  map written to %s\n", file.c_str());
    std::printf("\n");
  }
  std::printf("Compare: the paper's prototype delivered 6 useful photos covering\n"
              "346 deg with our scheme, vs 12 photos covering 160/171 deg for\n"
              "PhotoNet / Spray&Wait.\n");
  return 0;
}
