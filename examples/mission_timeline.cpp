// Observability demo: hook the simulator's event stream and narrate a small
// crowdsourcing mission minute by minute — who photographed what, which
// contacts moved which photos, what got dropped as redundant, and when the
// command center received each view. Useful for debugging schemes and for
// teaching how the Section III algorithm behaves contact by contact.
//
// Run: ./mission_timeline
// Besides the console narration, the run records the obs layer's metrics
// and span stream and writes mission_trace.json — open it in
// chrome://tracing or https://ui.perfetto.dev to scrub the same mission on
// a timeline (EXPERIMENTS.md has the recipe).
#include <cstdio>
#include <string>

#include "dtn/simulator.h"
#include "geometry/angle.h"
#include "obs/chrome_trace.h"
#include "schemes/factory.h"
#include "util/rng.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"

using namespace photodtn;

namespace {

const char* type_name(SimEvent::Type t) {
  switch (t) {
    case SimEvent::Type::kContact: return "CONTACT ";
    case SimEvent::Type::kPhotoTaken: return "CAPTURE ";
    case SimEvent::Type::kTransfer: return "TRANSFER";
    case SimEvent::Type::kDrop: return "DROP    ";
    case SimEvent::Type::kDelivery: return "DELIVERY";
    case SimEvent::Type::kContactInterrupted: return "LINKCUT ";
    case SimEvent::Type::kNodeDown: return "CRASH   ";
    case SimEvent::Type::kNodeUp: return "REBOOT  ";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("Mission timeline: 6 scouts, 3 targets, 12 hours, one uplink.\n\n");

  Rng rng(404);
  Rng poi_rng = rng.split("pois");
  const PoiList pois = generate_uniform_pois(3, 1200.0, poi_rng);
  const CoverageModel model(pois, deg_to_rad(30.0));

  SyntheticTraceConfig tc;
  tc.num_participants = 6;
  tc.duration_s = 12.0 * 3600.0;
  tc.base_pair_rate_per_hour = 1.2;
  tc.team_size = 3;
  tc.gateway_fraction = 1.0 / 6.0;
  tc.gateway_mean_interval_s = 3.0 * 3600.0;
  tc.seed = 404;
  const ContactTrace trace = generate_synthetic_trace(tc);

  ScenarioConfig wl = ScenarioConfig::mit(1);
  wl.region_m = 1200.0;
  wl.num_pois = pois.size();
  wl.photo_rate_per_hour = 6.0;
  PhotoGenOptions po;
  po.aimed_fraction = 0.9;
  po.aim_search_radius_m = 700.0;
  PhotoGenerator gen(wl, pois, po);
  Rng photo_rng = rng.split("photos");
  std::vector<PhotoEvent> events = gen.generate(trace.horizon(), 6, photo_rng);

  SimConfig cfg;
  cfg.node_storage_bytes = 4ULL * 4'000'000;  // four photos per scout
  cfg.bandwidth_bytes_per_s = 2.0e6;
  cfg.sample_interval_s = 1e9;
  // A taste of disruption (dtn/fault.h): scout 3's device dies mid-mission
  // and comes back empty three hours later; one contact in ten loses its
  // link partway through. Everything below stays deterministic.
  cfg.faults.scripted_downtime.push_back({3, 4.0 * 3600.0, 7.0 * 3600.0});
  cfg.faults.contact_interrupt_prob = 0.1;
  cfg.faults.interrupt_fraction_min = 0.2;
  cfg.faults.interrupt_fraction_max = 0.8;
  cfg.obs.metrics = true;  // record sim.*/scheme.* metrics ...
  cfg.obs.trace = true;    // ... and the span stream for the Chrome trace
  Simulator sim(model, trace, std::move(events), cfg);

  std::size_t shown = 0;
  sim.set_event_listener([&](const SimEvent& e) {
    if (shown >= 60) return;  // keep the console readable
    ++shown;
    const double h = e.time / 3600.0;
    switch (e.type) {
      case SimEvent::Type::kContact:
        std::printf("[%5.2fh] %s node %d <-> node %d\n", h, type_name(e.type), e.a,
                    e.b);
        break;
      case SimEvent::Type::kPhotoTaken:
        std::printf("[%5.2fh] %s scout %d takes photo #%llu\n", h, type_name(e.type),
                    e.a, (unsigned long long)e.photo);
        break;
      case SimEvent::Type::kTransfer:
        std::printf("[%5.2fh] %s photo #%llu: %d -> %d\n", h, type_name(e.type),
                    (unsigned long long)e.photo, e.a, e.b);
        break;
      case SimEvent::Type::kDrop:
        std::printf("[%5.2fh] %s node %d drops photo #%llu (redundant/acked)\n", h,
                    type_name(e.type), e.a, (unsigned long long)e.photo);
        break;
      case SimEvent::Type::kDelivery:
        std::printf("[%5.2fh] %s photo #%llu reaches the command center via %d\n", h,
                    type_name(e.type), (unsigned long long)e.photo, e.a);
        break;
      case SimEvent::Type::kContactInterrupted:
        std::printf("[%5.2fh] %s link %d <-> %d dies%s\n", h, type_name(e.type), e.a,
                    e.b, e.photo != 0 ? " mid-transfer (photo lost in flight)" : "");
        break;
      case SimEvent::Type::kNodeDown:
        std::printf("[%5.2fh] %s scout %d goes dark\n", h, type_name(e.type), e.a);
        break;
      case SimEvent::Type::kNodeUp:
        std::printf("[%5.2fh] %s scout %d back online\n", h, type_name(e.type), e.a);
        break;
    }
  });

  auto scheme = make_scheme("OurScheme");
  const SimResult r = sim.run(*scheme);
  if (shown >= 60) std::printf("... (%s)\n", "timeline truncated at 60 events");
  std::printf("\nMission result: %.0f%% of targets covered, %.0f deg mean aspect, "
              "%llu photos delivered, %llu transfers, %llu drops.\n",
              100.0 * r.final_point_norm, rad_to_deg(r.final_aspect_norm),
              (unsigned long long)r.delivered_photos,
              (unsigned long long)r.counters.transfers,
              (unsigned long long)r.counters.drops);
  std::printf("Disruption: %llu link cuts, %llu contacts missed to downtime, "
              "%llu photos wiped in the crash.\n",
              (unsigned long long)r.counters.interrupted_contacts,
              (unsigned long long)r.counters.missed_contacts,
              (unsigned long long)r.counters.photos_lost_to_crash);
  const char* trace_path = "mission_trace.json";
  if (obs::write_chrome_trace(trace_path, r.obs.trace_events, &r.obs.metrics))
    std::printf("Trace: %zu events written to %s — open in chrome://tracing "
                "or ui.perfetto.dev.\n",
                r.obs.trace_events.size(), trace_path);
  return 0;
}
