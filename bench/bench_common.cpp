#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <iostream>

#include "geometry/angle.h"
#include "util/env.h"

namespace photodtn::bench {

BenchOptions options() {
  BenchOptions o;
  o.runs = static_cast<std::size_t>(std::max<std::int64_t>(1, env_int("PHOTODTN_BENCH_RUNS", 3)));
  o.scale = std::clamp(env_double("PHOTODTN_BENCH_SCALE", 0.3), 0.01, 1.0);
  if (const char* dir = std::getenv("PHOTODTN_BENCH_CSV"); dir != nullptr) o.csv_dir = dir;
  o.calibrated = env_int("PHOTODTN_BENCH_CALIBRATED", 0) != 0;
  return o;
}

namespace {

ScenarioConfig scale_scenario(ScenarioConfig cfg, double s) {
  cfg.trace.num_participants =
      std::max<NodeId>(10, static_cast<NodeId>(std::lround(cfg.trace.num_participants * s)));
  cfg.trace.duration_s *= s;
  cfg.photo_rate_per_hour *= s;
  // Scale per-node storage too: the paper's resource contention is set by
  // the ratio of generated photo bytes to total fleet storage (~5:1 for
  // Table I); keeping storage fixed while shrinking the workload would
  // remove the contention the schemes are being compared under.
  cfg.sim.node_storage_bytes =
      static_cast<std::uint64_t>(static_cast<double>(cfg.sim.node_storage_bytes) * s);
  // Keep at least one gateway and hourly-ish sampling resolution.
  cfg.sim.sample_interval_s = std::max(3600.0, cfg.sim.sample_interval_s * s);
  return cfg;
}

}  // namespace

ScenarioConfig scaled_mit(const BenchOptions& opts) {
  return scale_scenario(ScenarioConfig::mit(1), opts.scale);
}

ScenarioConfig scaled_cambridge(const BenchOptions& opts) {
  return scale_scenario(ScenarioConfig::cambridge(1), opts.scale);
}

std::uint64_t scaled_bytes(const BenchOptions& opts, double gigabytes) {
  return static_cast<std::uint64_t>(gigabytes * 1e9 * opts.scale);
}

double scaled_rate(const BenchOptions& opts, double photos_per_hour) {
  return photos_per_hour * opts.scale;
}

void maybe_calibrate(const BenchOptions& opts, ExperimentSpec& spec) {
  if (!opts.calibrated) return;
  apply_mit_calibration(spec.scenario, spec.photo_options);
}

void print_header(const std::string& figure, const std::string& claim,
                  const ScenarioConfig& cfg, const BenchOptions& opts) {
  std::cout << "==============================================================\n"
            << figure << "\n"
            << claim << "\n"
            << "--------------------------------------------------------------\n"
            << "Table I parameters in effect (scale=" << opts.scale
            << ", runs/point=" << opts.runs << "):\n"
            << "  participants=" << cfg.trace.num_participants
            << "  duration=" << cfg.trace.duration_s / 3600.0 << "h"
            << "  scan=" << cfg.trace.scan_interval_s << "s\n"
            << "  PoIs=" << cfg.num_pois << "  theta=" << rad_to_deg(cfg.effective_angle)
            << "deg  photo=" << cfg.photo_size_bytes / 1e6 << "MB  rate="
            << cfg.photo_rate_per_hour << "/h\n"
            << "  storage=" << static_cast<double>(cfg.sim.node_storage_bytes) / 1e9
            << "GB  bandwidth=" << cfg.sim.bandwidth_bytes_per_s / 1e6 << "MB/s"
            << "  P_thld=" << cfg.p_thld << "  PROPHET=(" << cfg.sim.prophet.p_init
            << "," << cfg.sim.prophet.beta << "," << cfg.sim.prophet.gamma << ")\n"
            << "==============================================================\n";
}

void emit(const Table& table, const BenchOptions& opts, const std::string& name) {
  table.print(std::cout);
  if (!opts.csv_dir.empty()) {
    const std::string path = opts.csv_dir + "/" + name + ".csv";
    if (table.write_csv_file(path)) {
      std::cout << "(csv mirrored to " << path << ")\n";
    } else {
      std::cout << "(could not write csv to " << path << ")\n";
    }
  }
  std::cout << std::endl;
}

}  // namespace photodtn::bench
