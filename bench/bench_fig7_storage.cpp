// Figure 7 — the effect of storage capacity. Six panels: final point
// coverage, final aspect coverage, and delivered photo count (log scale in
// the paper) for the MIT-like (a-c) and Cambridge06-like (d-f) traces,
// sweeping per-node storage over the paper's 0.15-1.2 GB band.
//
// Paper claims reproduced:
//   * more storage improves coverage for the coverage-aware schemes
//     (useful photos get more replicas);
//   * Spray&Wait / ModifiedSpray barely react (copies capped at 4);
//   * our scheme and NoMetadata deliver dramatically fewer photos than the
//     spray schemes while covering far more.
#include <iostream>

#include "bench_common.h"
#include "schemes/factory.h"
#include "sim/experiment.h"
#include "util/table.h"

using namespace photodtn;

namespace {

void run_trace_panel(const bench::BenchOptions& opts, const ScenarioConfig& scenario,
                     const std::string& trace_name, const std::string& panel_ids) {
  const std::vector<double> storages_gb{0.15, 0.3, 0.6, 0.9, 1.2};
  const std::vector<std::string> schemes = simulation_scheme_names();

  // results[storage][scheme]
  std::vector<std::vector<ExperimentResult>> results;
  for (const double gb : storages_gb) {
    ExperimentSpec spec;
    spec.scenario = scenario;
    spec.scenario.sim.node_storage_bytes = bench::scaled_bytes(opts, gb);
    spec.runs = opts.runs;
    bench::maybe_calibrate(opts, spec);
    results.push_back(run_comparison(spec, schemes));
  }

  struct Panel {
    std::string title;
    std::string csv;
    double (*metric)(const ExperimentResult&);
  };
  const std::vector<Panel> panels{
      {"final point coverage", "point",
       [](const ExperimentResult& r) { return r.final_point.mean(); }},
      {"final aspect coverage (rad)", "aspect",
       [](const ExperimentResult& r) { return r.final_aspect.mean(); }},
      {"delivered photos (paper plots log scale)", "delivered",
       [](const ExperimentResult& r) { return r.final_delivered.mean(); }}};

  for (std::size_t p = 0; p < panels.size(); ++p) {
    std::vector<std::string> headers{"storage(GB, paper scale)"};
    for (const auto& s : schemes) headers.push_back(s);
    Table table(std::move(headers));
    for (std::size_t i = 0; i < storages_gb.size(); ++i) {
      std::vector<Table::Cell> row{storages_gb[i]};
      for (std::size_t s = 0; s < schemes.size(); ++s)
        row.push_back(panels[p].metric(results[i][s]));
      table.add_row(std::move(row));
    }
    std::cout << "\nFig. 7(" << panel_ids[p] << ") " << trace_name << " — "
              << panels[p].title << ":\n";
    bench::emit(table, opts, "fig7" + std::string(1, panel_ids[p]) + "_" + panels[p].csv);
  }
}

}  // namespace

int main() {
  const bench::BenchOptions opts = bench::options();
  const ScenarioConfig mit = bench::scaled_mit(opts);
  bench::print_header(
      "Figure 7: effect of storage capacity (both traces, five schemes)",
      "Claim: storage helps coverage-aware schemes; sprays flat; ours delivers few photos",
      mit, opts);
  run_trace_panel(opts, mit, "MIT-like", "abc");
  const ScenarioConfig cam = bench::scaled_cambridge(opts);
  run_trace_panel(opts, cam, "Cambridge06-like", "def");
  return 0;
}
