// Figure 8 — the effect of the photo generation rate at fixed 0.6 GB
// storage, sweeping the paper's 50-400 photos/h band on both traces.
//
// Paper claims reproduced:
//   * coverage-aware schemes (ours, NoMetadata, ModifiedSpray) improve with
//     more generated photos — more candidates outweigh more contention;
//   * Spray&Wait does not improve (fluctuates): it cannot pick the useful
//     photos out of the growing pile;
//   * ours delivers far fewer photos (Fig. 8(c)(f)), and the delivered set
//     is low-redundancy: the paper works out ~12 degrees of overlap per PoI
//     at 250 photos/h; we report the same derived quantity.
#include <iostream>

#include "bench_common.h"
#include "geometry/angle.h"
#include "schemes/factory.h"
#include "sim/experiment.h"
#include "util/table.h"

using namespace photodtn;

namespace {

void run_trace_panel(const bench::BenchOptions& opts, const ScenarioConfig& scenario,
                     const std::string& trace_name, const std::string& panel_ids) {
  const std::vector<double> rates{50.0, 100.0, 150.0, 250.0, 400.0};
  const std::vector<std::string> schemes = simulation_scheme_names();

  std::vector<std::vector<ExperimentResult>> results;
  for (const double rate : rates) {
    ExperimentSpec spec;
    spec.scenario = scenario;
    spec.scenario.photo_rate_per_hour = bench::scaled_rate(opts, rate);
    spec.runs = opts.runs;
    bench::maybe_calibrate(opts, spec);
    results.push_back(run_comparison(spec, schemes));
  }

  struct Panel {
    std::string title;
    std::string csv;
    double (*metric)(const ExperimentResult&);
  };
  const std::vector<Panel> panels{
      {"final point coverage", "point",
       [](const ExperimentResult& r) { return r.final_point.mean(); }},
      {"final aspect coverage (rad)", "aspect",
       [](const ExperimentResult& r) { return r.final_aspect.mean(); }},
      {"delivered photos (paper plots log scale)", "delivered",
       [](const ExperimentResult& r) { return r.final_delivered.mean(); }}};

  for (std::size_t p = 0; p < panels.size(); ++p) {
    std::vector<std::string> headers{"photos/h (paper scale)"};
    for (const auto& s : schemes) headers.push_back(s);
    Table table(std::move(headers));
    for (std::size_t i = 0; i < rates.size(); ++i) {
      std::vector<Table::Cell> row{rates[i]};
      for (std::size_t s = 0; s < schemes.size(); ++s)
        row.push_back(panels[p].metric(results[i][s]));
      table.add_row(std::move(row));
    }
    std::cout << "\nFig. 8(" << panel_ids[p] << ") " << trace_name << " — "
              << panels[p].title << ":\n";
    bench::emit(table, opts, "fig8" + std::string(1, panel_ids[p]) + "_" + panels[p].csv);
  }

  // The redundancy computation the paper does for 250 photos/h: photos
  // delivered per PoI x 2*theta, minus the achieved aspect coverage, is the
  // wasted (overlapping) angle.
  Table redundancy(
      {"photos/h", "delivered/PoI", "if disjoint (deg)", "achieved (deg)", "overlap (deg)"});
  const std::size_t ours_idx = 1;  // simulation_scheme_names()[1] == OurScheme
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const ExperimentResult& ours = results[i][ours_idx];
    const double per_poi =
        ours.final_delivered.mean() / static_cast<double>(scenario.num_pois);
    const double disjoint_deg =
        std::min(360.0, per_poi * 2.0 * rad_to_deg(scenario.effective_angle));
    const double achieved_deg = rad_to_deg(ours.final_aspect.mean());
    redundancy.add_row({rates[i], per_poi, disjoint_deg, achieved_deg,
                        std::max(0.0, disjoint_deg - achieved_deg)});
  }
  std::cout << "\nFig. 8 redundancy analysis for OurScheme (" << trace_name
            << "; paper: ~12 deg overlap at 250/h):\n";
  bench::emit(redundancy, opts, std::string("fig8_redundancy_") + panel_ids);
}

}  // namespace

int main() {
  const bench::BenchOptions opts = bench::options();
  const ScenarioConfig mit = bench::scaled_mit(opts);
  bench::print_header(
      "Figure 8: effect of the photo generation rate (both traces, five schemes)",
      "Claim: coverage-aware schemes improve with more photos; Spray&Wait fluctuates",
      mit, opts);
  run_trace_panel(opts, mit, "MIT-like", "abc");
  const ScenarioConfig cam = bench::scaled_cambridge(opts);
  run_trace_panel(opts, cam, "Cambridge06-like", "def");
  return 0;
}
