// Ablations for the design choices the paper fixes by simulation (not a
// paper figure): the metadata validity threshold P_thld, the effective
// angle theta, the gateway fraction, and sensor noise on the metadata.
// OurScheme on the scaled MIT-like trace.
#include <iostream>
#include <unordered_map>

#include "bench_common.h"
#include "geometry/angle.h"
#include "schemes/factory.h"
#include "sim/experiment.h"
#include "util/table.h"
#include "workload/poi_gen.h"

using namespace photodtn;

namespace {

ExperimentResult run_with(const bench::BenchOptions& opts, const ScenarioConfig& scenario) {
  ExperimentSpec spec;
  spec.scenario = scenario;
  spec.scheme = "OurScheme";
  spec.runs = opts.runs;
  return run_experiment(spec);
}

}  // namespace

int main() {
  const bench::BenchOptions opts = bench::options();
  const ScenarioConfig base = bench::scaled_mit(opts);
  bench::print_header("Ablations (OurScheme, MIT-like trace)",
                      "Design knobs: P_thld, effective angle, gateways, sensor noise",
                      base, opts);

  // Contention-heavy variant for the knobs whose effect only shows when
  // storage/bandwidth actually bind (more photos, half the storage): with
  // slack resources every relevant photo is kept and third-party metadata
  // cannot change any greedy decision.
  ScenarioConfig contended = base;
  contended.photo_rate_per_hour *= 3.0;
  contended.sim.node_storage_bytes /= 2;

  {
    // P_thld sweep: the paper picks 0.8 by simulation. Low thresholds expire
    // third-party metadata aggressively; 1.0 never expires it (stale views).
    // Note the command-center acknowledgment entry is valid at *any*
    // threshold, and it is the dominant effect — expect modest deltas here.
    Table t({"P_thld", "final point", "final aspect (rad)", "delivered"});
    for (const double p : {0.2, 0.5, 0.8, 0.95, 1.0}) {
      ScenarioConfig sc = contended;
      sc.p_thld = p;
      const ExperimentResult r = run_with(opts, sc);
      t.add_row({p, r.final_point.mean(), r.final_aspect.mean(),
                 r.final_delivered.mean()});
    }
    std::cout << "\nAblation A: metadata validity threshold P_thld (paper uses 0.8;\n"
                 "contention-heavy config — 3x photos, half storage):\n";
    bench::emit(t, opts, "ablation_pthld");
  }

  {
    // Effective angle theta: wider theta counts a single photo as covering
    // more aspects — raw aspect radians rise, but the per-view information
    // is coarser. Table I uses 30 degrees.
    Table t({"theta(deg)", "final point", "final aspect (rad)", "aspect/2theta",
             "full-view frac"});
    for (const double deg : {15.0, 30.0, 45.0, 60.0}) {
      ScenarioConfig sc = base;
      sc.effective_angle = deg_to_rad(deg);
      const ExperimentResult r = run_with(opts, sc);
      t.add_row({deg, r.final_point.mean(), r.final_aspect.mean(),
                 r.final_aspect.mean() / (2.0 * deg_to_rad(deg)),
                 r.final_full_view.mean()});
    }
    std::cout << "\nAblation B: effective angle theta (paper uses 30 deg):\n";
    bench::emit(t, opts, "ablation_theta");
  }

  {
    // Gateway fraction: Section V-A assumes ~2% of participants can reach
    // the command center.
    Table t({"gateway fraction", "final point", "final aspect (rad)", "delivered"});
    for (const double f : {0.02, 0.05, 0.10, 0.20}) {
      ScenarioConfig sc = base;
      sc.trace.gateway_fraction = f;
      const ExperimentResult r = run_with(opts, sc);
      t.add_row({f, r.final_point.mean(), r.final_aspect.mean(),
                 r.final_delivered.mean()});
    }
    std::cout << "\nAblation C: fraction of gateway participants (paper ~2%):\n";
    bench::emit(t, opts, "ablation_gateways");
  }

  {
    // Sensor noise: metadata is measured, not exact (Section IV-A: GPS
    // 5-8.5 m, orientation <= 5 deg after fusion). The system selects and
    // routes photos by the *measured* metadata, but the information value
    // the center actually obtains depends on what the photos *really* show
    // — so the delivered set is re-scored against the noise-free ground
    // truth. (Scoring on measured metadata would let noise inflate claimed
    // coverage.)
    Table t({"sensor noise", "claimed point", "claimed aspect", "true point",
             "true aspect"});
    struct NoiseCase {
      std::string label;
      std::optional<SensorNoise> noise;
    };
    SensorNoise prototype;  // defaults reproduce the prototype's error band
    SensorNoise coarse;
    coarse.gps_sigma_m = 15.0;
    coarse.orientation_max_err_rad = deg_to_rad(20.0);
    for (const NoiseCase& c :
         {NoiseCase{"none (ground truth)", std::nullopt},
          NoiseCase{"prototype (4m GPS, 5deg)", prototype},
          NoiseCase{"coarse (15m GPS, 20deg)", coarse}}) {
      RunningStats claimed_pt, claimed_as, true_pt, true_as;
      for (std::size_t run = 0; run < opts.runs; ++run) {
        const std::uint64_t seed = 1 + run;
        Rng root(seed);
        Rng poi_rng = root.split("pois");
        Rng photo_rng = root.split("photos");
        const PoiList pois = generate_uniform_pois(base.num_pois, base.region_m, poi_rng);
        const CoverageModel model(pois, base.effective_angle);
        SyntheticTraceConfig tc = base.trace;
        tc.seed = seed ^ 0x7ace5eedULL;
        const ContactTrace trace = generate_synthetic_trace(tc);
        PhotoGenOptions po;
        po.sensor_noise = c.noise;
        PhotoGenerator gen(base, pois, po);
        std::vector<PhotoEvent> events =
            gen.generate(trace.horizon(), tc.num_participants, photo_rng);
        // Keep the measured metadata by id so delivered ids can be mapped.
        std::unordered_map<PhotoId, PhotoMeta> measured;
        for (const auto& e : events) measured.emplace(e.photo.id, e.photo);

        auto scheme = make_scheme("OurScheme");
        SimConfig sim_cfg = base.sim;
        sim_cfg.seed = seed ^ 0x51eedbeefULL;
        Simulator sim(model, trace, std::move(events), sim_cfg);
        const SimResult r = sim.run(*scheme);
        claimed_pt.add(r.final_point_norm);
        claimed_as.add(r.final_aspect_norm);

        CoverageMap truth_map(model);
        for (const PhotoId id : r.delivered_ids) {
          const auto it = gen.ground_truth().find(id);
          const PhotoMeta& meta =
              it != gen.ground_truth().end() ? it->second : measured.at(id);
          truth_map.add(model.footprint(meta));
        }
        true_pt.add(truth_map.normalized_point());
        true_as.add(truth_map.normalized_aspect());
      }
      t.add_row({c.label, claimed_pt.mean(), claimed_as.mean(), true_pt.mean(),
                 true_as.mean()});
    }
    std::cout << "\nAblation D: sensor error on metadata (Section IV-A error band;\n"
                 "claimed = coverage by measured metadata, true = by ground truth):\n";
    bench::emit(t, opts, "ablation_noise");
  }

  {
    // Quality gate (Section II-C discussion): with 30% of photos blurred,
    // routing them wastes resources unless the binary threshold filters
    // them out of the coverage model up front. "True" columns score the
    // delivered photos counting only sharp (quality >= 0.5) ones.
    Table t({"quality gate", "claimed point", "true point", "true aspect"});
    for (const bool gated : {false, true}) {
      RunningStats claimed_pt, true_pt, true_as;
      for (std::size_t run = 0; run < opts.runs; ++run) {
        const std::uint64_t seed = 1 + run;
        Rng root(seed);
        Rng poi_rng = root.split("pois");
        Rng photo_rng = root.split("photos");
        const PoiList pois = generate_uniform_pois(base.num_pois, base.region_m, poi_rng);
        CoverageModel model(pois, base.effective_angle);
        if (gated) model.set_quality_threshold(0.5);
        SyntheticTraceConfig tc = base.trace;
        tc.seed = seed ^ 0x7ace5eedULL;
        const ContactTrace trace = generate_synthetic_trace(tc);
        PhotoGenOptions po;
        po.low_quality_fraction = 0.3;
        PhotoGenerator gen(base, pois, po);
        std::vector<PhotoEvent> events =
            gen.generate(trace.horizon(), tc.num_participants, photo_rng);
        std::unordered_map<PhotoId, PhotoMeta> by_id;
        for (const auto& e : events) by_id.emplace(e.photo.id, e.photo);
        auto scheme = make_scheme("OurScheme");
        SimConfig sim_cfg = base.sim;
        sim_cfg.seed = seed ^ 0x51eedbeefULL;
        Simulator sim(model, trace, std::move(events), sim_cfg);
        const SimResult r = sim.run(*scheme);
        claimed_pt.add(r.final_point_norm);
        // True coverage: only sharp delivered photos actually inform.
        CoverageModel truth_model(pois, base.effective_angle);
        truth_model.set_quality_threshold(0.5);
        CoverageMap truth(truth_model);
        for (const PhotoId id : r.delivered_ids)
          truth.add(truth_model.footprint(by_id.at(id)));
        true_pt.add(truth.normalized_point());
        true_as.add(truth.normalized_aspect());
      }
      t.add_row({std::string(gated ? "threshold 0.5" : "off (paper default)"),
                 claimed_pt.mean(), true_pt.mean(), true_as.mean()});
    }
    std::cout << "\nAblation E: binary quality gate with 30% blurred photos:\n";
    bench::emit(t, opts, "ablation_quality");
  }

  {
    // Aspect-weight profiles (Section II-C: weighting a building's main
    // entrance). Every PoI gets a 90-degree "entrance" band worth 4x. The
    // metric of interest: how much of the *entrance-weighted* aspect value
    // each scheme collects.
    Table t({"scheme", "weighted aspect collected", "entrance share (%)"});
    for (const std::string& name : {std::string("OurScheme"), std::string("ModifiedSpray")}) {
      RunningStats collected, entrance_share;
      for (std::size_t run = 0; run < opts.runs; ++run) {
        const std::uint64_t seed = 1 + run;
        Rng root(seed);
        Rng poi_rng = root.split("pois");
        Rng photo_rng = root.split("photos");
        PoiList pois = generate_uniform_pois(base.num_pois, base.region_m, poi_rng);
        Rng dir_rng = root.split("entrances");
        std::vector<Arc> entrances(pois.size());
        for (std::size_t i = 0; i < pois.size(); ++i) {
          auto profile = std::make_shared<AspectProfile>();
          entrances[i] = Arc::centered(dir_rng.uniform(0.0, kTwoPi), deg_to_rad(45.0));
          profile->set_band(entrances[i], 4.0);
          pois[i].aspect_profile = std::move(profile);
        }
        const CoverageModel model(pois, base.effective_angle);
        SyntheticTraceConfig tc = base.trace;
        tc.seed = seed ^ 0x7ace5eedULL;
        const ContactTrace trace = generate_synthetic_trace(tc);
        PhotoGenerator gen(base, pois);
        std::vector<PhotoEvent> events =
            gen.generate(trace.horizon(), tc.num_participants, photo_rng);
        auto scheme = make_scheme(name);
        SimConfig sim_cfg = base.sim;
        sim_cfg.seed = seed ^ 0x51eedbeefULL;
        Simulator sim(model, trace, std::move(events), sim_cfg);
        const SimResult r = sim.run(*scheme);
        collected.add(r.final_aspect_norm);
        // Of the covered aspect mass, how much lies inside entrance bands?
        double entrance_mass = 0.0, total_mass = 0.0;
        const CoverageMap& cc = sim.command_center_coverage();
        for (std::size_t i = 0; i < pois.size(); ++i) {
          const ArcSet& arcs = cc.poi_arcs(i);
          total_mass += profile_measure(pois[i].profile(), arcs);
          ArcSet entrance_only;
          entrance_only.add(entrances[i]);
          const double plain = arcs.measure();
          ArcSet merged = arcs;
          merged.unite(entrance_only);
          // covered ∩ entrance = covered + entrance − covered∪entrance.
          const double inter =
              plain + entrance_only.measure() - merged.measure();
          entrance_mass += 4.0 * std::max(0.0, inter);
        }
        if (total_mass > 0.0) entrance_share.add(100.0 * entrance_mass / total_mass);
      }
      t.add_row({name, collected.mean(), entrance_share.mean()});
    }
    std::cout << "\nAblation F: aspect-weight profiles (4x 90-deg entrance bands);\n"
                 "the overlap-aware scheme should chase the weighted views:\n";
    bench::emit(t, opts, "ablation_profiles");
  }

  {
    // Link-layer realism the paper idealizes away: per-contact setup time
    // (neighbor discovery / pairing) and priced metadata exchange.
    Table t({"overhead model", "final point", "final aspect (rad)"});
    struct OverheadCase {
      std::string label;
      double setup_s;
      std::uint64_t meta_bytes;
    };
    for (const OverheadCase& c :
         {OverheadCase{"ideal (paper)", 0.0, 0},
          OverheadCase{"5s setup", 5.0, 0},
          OverheadCase{"30s setup", 30.0, 0},
          OverheadCase{"64B/photo metadata", 0.0, 64},
          OverheadCase{"30s setup + 64B metadata", 30.0, 64}}) {
      ExperimentSpec spec;
      spec.scenario = base;
      spec.scenario.sim.contact_setup_s = c.setup_s;
      spec.scenario.sim.metadata_bytes_per_photo = c.meta_bytes;
      spec.scheme = "OurScheme";
      spec.runs = opts.runs;
      // Overheads only matter relative to contact length; run in the
      // short-contact regime of Fig. 6 (60 s cap) where they bite.
      spec.max_contact_duration_s = 60.0;
      const ExperimentResult r = run_experiment(spec);
      t.add_row({c.label, r.final_point.mean(), r.final_aspect.mean()});
    }
    std::cout << "\nAblation H: link-layer overheads (contact setup, metadata cost)\n"
                 "under 60 s contacts (overheads are negligible at full Fig. 6\n"
                 "durations — 30 s of setup against a 10 min contact is noise):\n";
    bench::emit(t, opts, "ablation_overheads");
  }

  {
    // Burst workloads: people photograph interesting scenes in bursts of
    // near-identical shots. Bursts multiply redundancy without adding
    // information, so the gap between overlap-aware selection (ours) and
    // individual-utility ranking (ModifiedSpray) should WIDEN with burst
    // size — the sharpest test of the paper's core claim.
    Table t({"burst size", "ours aspect", "mspray aspect", "ours/mspray"});
    for (const std::uint32_t burst : {1u, 3u, 6u}) {
      double ours = 0.0, mspray = 0.0;
      for (const std::string& name :
           {std::string("OurScheme"), std::string("ModifiedSpray")}) {
        ExperimentSpec spec;
        spec.scenario = base;
        spec.scheme = name;
        spec.runs = opts.runs;
        spec.photo_options.burst_size = burst;
        const ExperimentResult r = run_experiment(spec);
        (name == "OurScheme" ? ours : mspray) = r.final_aspect.mean();
      }
      t.add_row({static_cast<std::int64_t>(burst), ours, mspray,
                 mspray > 0.0 ? ours / mspray : 0.0});
    }
    std::cout << "\nAblation I: burst workloads (redundancy stress; same total "
                 "photo rate):\n";
    bench::emit(t, opts, "ablation_bursts");
  }

  {
    // Extra content-agnostic baselines beyond the paper's comparison set.
    Table t({"scheme", "final point", "final aspect (rad)", "delivered"});
    for (const std::string& name :
         {std::string("OurScheme"), std::string("Epidemic"), std::string("PROPHET"),
          std::string("Spray&Wait")}) {
      ExperimentSpec spec;
      spec.scenario = base;
      spec.scheme = name;
      spec.runs = opts.runs;
      const ExperimentResult r = run_experiment(spec);
      t.add_row({name, r.final_point.mean(), r.final_aspect.mean(),
                 r.final_delivered.mean()});
    }
    std::cout << "\nAblation G: extra routing baselines (Epidemic, PROPHET/GRTR):\n";
    bench::emit(t, opts, "ablation_baselines");
  }

  return 0;
}
