// Figure 5 — point & aspect coverage vs. time for the five schemes on the
// MIT-Reality-like trace (0.6 GB storage, 250 photos/h, Table I defaults).
//
// Paper claims reproduced (shape, not absolute values):
//   * ordering: BestPossible >= OurScheme > NoMetadata > ModifiedSpray >
//     Spray&Wait on both metrics;
//   * OurScheme tracks BestPossible closely (paper: at most ~10% less point
//     and ~17% less aspect coverage);
//   * Spray&Wait ends far below OurScheme (paper: -49% point, -69% aspect
//     at 150 h); ModifiedSpray in between (-26% / -38%).
#include <iostream>

#include "bench_common.h"
#include "schemes/factory.h"
#include "sim/experiment.h"
#include "util/table.h"

using namespace photodtn;

int main() {
  const bench::BenchOptions opts = bench::options();
  const ScenarioConfig scenario = bench::scaled_mit(opts);
  bench::print_header(
      "Figure 5: coverage vs. time, five schemes (MIT-like trace)",
      "Claim: BestPossible >= Ours > NoMetadata > ModifiedSpray > Spray&Wait",
      scenario, opts);

  ExperimentSpec base;
  base.scenario = scenario;
  base.runs = opts.runs;
  bench::maybe_calibrate(opts, base);
  const std::vector<std::string> schemes = simulation_scheme_names();
  const std::vector<ExperimentResult> results = run_comparison(base, schemes);

  // One table per panel, exactly like the two sub-figures.
  for (const bool aspect : {false, true}) {
    std::vector<std::string> headers{aspect ? "t(h) \\ aspect(rad)" : "t(h) \\ point"};
    for (const auto& r : results) headers.push_back(r.scheme);
    Table table(std::move(headers));
    const auto& times = results.front().sample_times;
    for (std::size_t i = 0; i < times.size(); ++i) {
      std::vector<Table::Cell> row{times[i] / 3600.0};
      for (const auto& r : results) {
        // Hoisted into a named double: GCC 12 raises a spurious
        // maybe-uninitialized on ternary-into-variant otherwise.
        const double v = aspect ? r.aspect.means()[i] : r.point.means()[i];
        row.push_back(v);
      }
      table.add_row(std::move(row));
    }
    std::cout << (aspect ? "\nFig. 5(b) normalized aspect coverage (radians/PoI):\n"
                         : "\nFig. 5(a) normalized point coverage:\n");
    bench::emit(table, opts, aspect ? "fig5b_aspect" : "fig5a_point");
  }

  // Shape checks against the paper's headline ratios.
  auto find = [&](const std::string& name) -> const ExperimentResult& {
    for (const auto& r : results)
      if (r.scheme == name) return r;
    throw std::logic_error("scheme missing");
  };
  const auto& best = find("BestPossible");
  const auto& ours = find("OurScheme");
  const auto& nometa = find("NoMetadata");
  const auto& mspray = find("ModifiedSpray");
  const auto& spray = find("Spray&Wait");

  Table summary({"claim", "paper", "measured(%)", "holds"});
  auto pct_below = [](double ref, double v) {
    return ref > 0.0 ? 100.0 * (ref - v) / ref : 0.0;
  };
  const double ours_vs_best_pt = pct_below(best.final_point.mean(), ours.final_point.mean());
  const double ours_vs_best_as =
      pct_below(best.final_aspect.mean(), ours.final_aspect.mean());
  const double spray_vs_ours_pt =
      pct_below(ours.final_point.mean(), spray.final_point.mean());
  const double spray_vs_ours_as =
      pct_below(ours.final_aspect.mean(), spray.final_aspect.mean());
  const double mspray_vs_ours_pt =
      pct_below(ours.final_point.mean(), mspray.final_point.mean());
  const double mspray_vs_ours_as =
      pct_below(ours.final_aspect.mean(), mspray.final_aspect.mean());

  summary.add_row({std::string("ours close to best (point)"), std::string("<=10% below"),
                   ours_vs_best_pt, std::string(ours_vs_best_pt <= 15.0 ? "yes" : "NO")});
  summary.add_row({std::string("ours close to best (aspect)"), std::string("<=17% below"),
                   ours_vs_best_as, std::string(ours_vs_best_as <= 25.0 ? "yes" : "NO")});
  summary.add_row({std::string("spray&wait far below ours (point)"), std::string("~49% below"),
                   spray_vs_ours_pt, std::string(spray_vs_ours_pt >= 25.0 ? "yes" : "NO")});
  summary.add_row({std::string("spray&wait far below ours (aspect)"), std::string("~69% below"),
                   spray_vs_ours_as, std::string(spray_vs_ours_as >= 35.0 ? "yes" : "NO")});
  summary.add_row({std::string("modified-spray below ours (point)"), std::string("~26% below"),
                   mspray_vs_ours_pt, std::string(mspray_vs_ours_pt >= 5.0 ? "yes" : "NO")});
  summary.add_row({std::string("modified-spray below ours (aspect)"), std::string("~38% below"),
                   mspray_vs_ours_as, std::string(mspray_vs_ours_as >= 10.0 ? "yes" : "NO")});
  summary.add_row({std::string("nometa below ours (aspect)"), std::string("below"),
                   pct_below(ours.final_aspect.mean(), nometa.final_aspect.mean()),
                   std::string(nometa.final_aspect.mean() <= ours.final_aspect.mean() + 1e-9
                                   ? "yes"
                                   : "NO")});
  std::cout << "Fig. 5 shape summary (percent below reference):\n";
  bench::emit(summary, opts, "fig5_summary");
  return 0;
}
