// Figure 3 / Section IV — the prototype demonstration, reproduced as a
// scripted scenario: 9 nodes (8 participants + the command center standing
// in for a data mule), 40 photos around a single target (the church), the
// last 48 contacts of a Reality-Mining-style trace, at most 3 photos
// transferred per contact and 5 photos stored per device, effective angle
// theta = 40 degrees.
//
// Paper outcome: Spray&Wait and PhotoNet each deliver 12 photos (4 center
// contacts x 3 photos) covering ~171 and ~160 degrees of the target; our
// scheme delivers only the useful photos (6 in the paper) covering ~346
// degrees. The claim checked here is the shape: our scheme covers far more
// of the target with no more delivered photos.
#include <iostream>

#include "bench_common.h"
#include "geometry/angle.h"
#include "schemes/factory.h"
#include "util/rng.h"
#include "util/table.h"

using namespace photodtn;

namespace {

constexpr double kHistoryHours = 200.0;  // PROPHET/rate learning period
constexpr double kDemoHours = 48.0;

/// The last-48-contacts trace: a learning prefix plus 48 scripted contacts,
/// exactly 4 of which reach the command center.
ContactTrace demo_trace(Rng& rng) {
  std::vector<Contact> contacts;
  // Learning prefix: random pair contacts, including occasional center
  // contacts for the mule-adjacent participants (1 and 2).
  for (int i = 0; i < 220; ++i) {
    const double t = rng.uniform(0.0, kHistoryHours * 3600.0);
    NodeId a, b;
    if (i % 18 == 0) {
      a = kCommandCenter;
      b = static_cast<NodeId>(rng.uniform_int(1, 2));
    } else {
      a = static_cast<NodeId>(rng.uniform_int(1, 8));
      do {
        b = static_cast<NodeId>(rng.uniform_int(1, 8));
      } while (b == a);
    }
    contacts.push_back(Contact{t, 600.0, a, b});
  }
  // The 48 demo contacts.
  const double t0 = kHistoryHours * 3600.0;
  int center_contacts = 0;
  for (int i = 0; i < 48; ++i) {
    const double t = t0 + (i + 1) * (kDemoHours * 3600.0 / 49.0);
    NodeId a, b;
    const bool center_due =
        center_contacts < 4 && (i % 12 == 10);  // 4 spread-out center visits
    if (center_due) {
      a = kCommandCenter;
      b = static_cast<NodeId>(rng.uniform_int(1, 2));
      ++center_contacts;
    } else {
      a = static_cast<NodeId>(rng.uniform_int(1, 8));
      do {
        b = static_cast<NodeId>(rng.uniform_int(1, 8));
      } while (b == a);
    }
    contacts.push_back(Contact{t, 600.0, a, b});
  }
  return ContactTrace{std::move(contacts), 9,
                      (kHistoryHours + kDemoHours + 1.0) * 3600.0};
}

/// 40 photos, 5 per participant: roughly half deliberately frame the church
/// from assorted directions, the rest miss it (background shots).
std::vector<PhotoEvent> demo_photos(const Vec2 church, Rng& rng) {
  std::vector<PhotoEvent> events;
  PhotoId next_id = 1;
  const double t0 = kHistoryHours * 3600.0;
  for (NodeId node = 1; node <= 8; ++node) {
    for (int k = 0; k < 5; ++k) {
      PhotoMeta p;
      p.id = next_id++;
      p.taken_by = node;
      p.taken_at = t0;
      p.size_bytes = 4'000'000;
      p.fov = deg_to_rad(rng.uniform(40.0, 60.0));
      p.range = 200.0;
      if (rng.bernoulli(0.5)) {
        // Frame the church from a random direction and distance.
        const double dir = rng.uniform(0.0, kTwoPi);
        p.location = church + Vec2::from_heading(dir) * rng.uniform(60.0, 150.0);
        p.orientation = normalize_angle(dir + std::numbers::pi +
                                        rng.uniform(-0.1, 0.1));
      } else {
        // Background shot somewhere else in the neighborhood.
        p.location = church + Vec2{rng.uniform(-800.0, 800.0), rng.uniform(-800.0, 800.0)};
        p.orientation = rng.uniform(0.0, kTwoPi);
        if (p.location.distance_to(church) < 250.0)
          p.location = church + Vec2{500.0, 500.0};
      }
      events.push_back(PhotoEvent{t0, node, p});
    }
  }
  return events;
}

}  // namespace

int main() {
  const bench::BenchOptions opts = bench::options();
  std::cout << "==============================================================\n"
               "Figure 3 / Section IV: prototype demo (9 nodes, 40 photos,\n"
               "48 contacts, <=3 photos/contact, <=5 photos stored, theta=40deg)\n"
               "Claim: our scheme delivers fewer-but-better photos covering far\n"
               "more of the target than PhotoNet or Spray&Wait (paper: 346deg\n"
               "with 6 photos vs 160deg/171deg with 12 photos).\n"
               "==============================================================\n";

  const Vec2 church{0.0, 0.0};
  const CoverageModel model({PointOfInterest{0, church, 1.0, nullptr}}, deg_to_rad(40.0));

  SimConfig cfg;
  cfg.node_storage_bytes = 5ULL * 4'000'000;              // five photos
  cfg.bandwidth_bytes_per_s = 3.0 * 4'000'000.0 / 600.0;  // three photos per contact
  cfg.sample_interval_s = 24.0 * 3600.0;

  Table table({"scheme", "delivered", "covering target", "aspect covered (deg)"});
  for (const std::string& name : demo_scheme_names()) {
    Rng rng(7);  // identical trace and photos for every scheme
    ContactTrace trace = demo_trace(rng);
    std::vector<PhotoEvent> photos = demo_photos(church, rng);
    Simulator sim(model, trace, photos, cfg);
    auto scheme = make_scheme(name);
    const SimResult r = sim.run(*scheme);
    std::int64_t covering = 0;
    // photodtn-lint: allow(unordered-iter): commutative integer count
    for (const auto& [id, p] : sim.node(kCommandCenter).store().map())
      if (model.footprint_cached(p).relevant()) ++covering;
    table.add_row({name, static_cast<std::int64_t>(r.delivered_photos), covering,
                   rad_to_deg(r.final_coverage.aspect)});
  }
  bench::emit(table, opts, "fig3_demo");
  std::cout << "(Paper reference: OurScheme 6 photos/346deg, PhotoNet 12/160deg,\n"
               " Spray&Wait 12/171deg — expect the same ordering, not the same\n"
               " absolute numbers, since the photo layout is synthesized.)\n";
  return 0;
}
