// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary runs with no arguments and prints the same rows/series
// the corresponding paper figure plots. Because the paper's full setup
// (97 nodes x 300 h x 50 runs per point) is a cluster-day of compute, the
// default configuration is a scaled-down scenario with the same *shape*;
// environment knobs restore fidelity:
//   PHOTODTN_BENCH_RUNS   — runs averaged per data point (default 3)
//   PHOTODTN_BENCH_SCALE  — scenario scale factor in (0, 1] (default 0.3):
//                           participants, trace duration, and photo rate all
//                           scale linearly; 1.0 reproduces Table I exactly
//   PHOTODTN_BENCH_CSV    — directory to mirror each table as CSV (optional)
#pragma once

#include <cstdint>
#include <string>

#include "sim/experiment.h"
#include "util/table.h"

namespace photodtn::bench {

struct BenchOptions {
  std::size_t runs = 3;
  double scale = 0.3;
  std::string csv_dir;
  /// PHOTODTN_BENCH_CALIBRATED=1: use the calibrated substitute (hotspot
  /// photo placement + device duty-cycling, workload/photo_gen.h) instead
  /// of the paper-literal uniform/always-on defaults.
  bool calibrated = false;
};

/// Reads the environment knobs.
BenchOptions options();

/// Table I scenario (MIT or Cambridge column) scaled by opts.scale.
ScenarioConfig scaled_mit(const BenchOptions& opts);
ScenarioConfig scaled_cambridge(const BenchOptions& opts);

/// A paper storage/rate value scaled consistently with the scenario.
std::uint64_t scaled_bytes(const BenchOptions& opts, double gigabytes);
double scaled_rate(const BenchOptions& opts, double photos_per_hour);

/// Applies the calibrated-substitute settings to a spec when opts ask for
/// it (no-op otherwise). Call after filling spec.scenario.
void maybe_calibrate(const BenchOptions& opts, ExperimentSpec& spec);

/// Prints the bench banner: figure id, claim being reproduced, and the
/// Table I parameters in effect.
void print_header(const std::string& figure, const std::string& claim,
                  const ScenarioConfig& cfg, const BenchOptions& opts);

/// Prints the table and mirrors it to CSV when PHOTODTN_BENCH_CSV is set.
void emit(const Table& table, const BenchOptions& opts, const std::string& name);

}  // namespace photodtn::bench
