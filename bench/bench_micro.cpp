// Micro-benchmarks (google-benchmark) for the algorithmic kernels: arc-set
// operations, footprint computation, expected-coverage evaluation (exact
// breakpoint integration vs literal 2^m enumeration vs Monte Carlo), the
// greedy selector (lazy vs plain), and PROPHET updates.
#include <benchmark/benchmark.h>

#include "geometry/arc_set.h"
#include "routing/prophet.h"
#include "selection/exact_solver.h"
#include "selection/expected_coverage.h"
#include "selection/greedy_selector.h"
#include "selection/selection_env.h"
#include "util/rng.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"

namespace photodtn {
namespace {

// ---------------------------------------------------------------- geometry

void BM_ArcSetAdd(benchmark::State& state) {
  Rng rng(1);
  std::vector<Arc> arcs;
  for (int i = 0; i < 64; ++i)
    arcs.push_back({rng.uniform(0.0, kTwoPi), rng.uniform(0.1, 1.0)});
  for (auto _ : state) {
    ArcSet s;
    for (const Arc& a : arcs) s.add(a);
    benchmark::DoNotOptimize(s.measure());
  }
}
BENCHMARK(BM_ArcSetAdd);

void BM_ArcSetGain(benchmark::State& state) {
  Rng rng(2);
  ArcSet s;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i)
    s.add({rng.uniform(0.0, kTwoPi), rng.uniform(0.05, 0.3)});
  const Arc probe{1.0, 0.8};
  for (auto _ : state) benchmark::DoNotOptimize(s.gain(probe));
}
BENCHMARK(BM_ArcSetGain)->Arg(4)->Arg(16)->Arg(64);

// ---------------------------------------------------------------- coverage

struct Workbench {
  Workbench(std::size_t pois, std::size_t photos, std::uint64_t seed = 42)
      : rng(seed),
        poi_list(generate_uniform_pois(pois, 6300.0, rng)),
        model(poi_list, deg_to_rad(30.0)) {
    ScenarioConfig cfg = ScenarioConfig::mit(seed);
    PhotoGenerator gen(cfg, poi_list);
    for (std::size_t i = 0; i < photos; ++i)
      pool.push_back(gen.generate_one(0.0, 1, rng).photo);
  }

  Rng rng;
  PoiList poi_list;
  CoverageModel model;
  std::vector<PhotoMeta> pool;
};

void BM_Footprint(benchmark::State& state) {
  Workbench wb(250, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wb.model.footprint(wb.pool[i % wb.pool.size()]));
    ++i;
  }
}
BENCHMARK(BM_Footprint);

// -------------------------------------------------------- expected coverage

std::vector<NodeCollection> make_collections(const Workbench& wb, std::size_t nodes,
                                             std::size_t photos_per_node) {
  std::vector<NodeCollection> out;
  std::size_t next = 0;
  for (std::size_t n = 0; n < nodes; ++n) {
    NodeCollection nc;
    nc.node = static_cast<NodeId>(n + 1);
    nc.delivery_prob = 0.2 + 0.6 * static_cast<double>(n) / static_cast<double>(nodes);
    for (std::size_t k = 0; k < photos_per_node && next < wb.pool.size(); ++k, ++next)
      nc.footprints.push_back(&wb.model.footprint_cached(wb.pool[next]));
    out.push_back(std::move(nc));
  }
  return out;
}

void BM_ExpectedCoverageExact(benchmark::State& state) {
  Workbench wb(250, 200);
  const auto nodes =
      make_collections(wb, static_cast<std::size_t>(state.range(0)), 20);
  for (auto _ : state)
    benchmark::DoNotOptimize(expected_coverage_exact(wb.model, nodes));
}
BENCHMARK(BM_ExpectedCoverageExact)->Arg(2)->Arg(6)->Arg(10);

void BM_ExpectedCoverageEnumerate(benchmark::State& state) {
  Workbench wb(50, 60);
  const auto nodes =
      make_collections(wb, static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state)
    benchmark::DoNotOptimize(expected_coverage_enumerate(wb.model, nodes));
}
BENCHMARK(BM_ExpectedCoverageEnumerate)->Arg(2)->Arg(6)->Arg(10);

void BM_ExpectedCoverageMonteCarlo(benchmark::State& state) {
  Workbench wb(50, 60);
  const auto nodes = make_collections(wb, 6, 6);
  Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(expected_coverage_monte_carlo(
        wb.model, nodes, rng, static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_ExpectedCoverageMonteCarlo)->Arg(100)->Arg(1000);

// ------------------------------------------------------- exact vs greedy

void BM_ExactReallocate(benchmark::State& state) {
  Workbench wb(10, static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_reallocate(wb.model, wb.pool, 1, 0.7,
                                              4ULL * 4'000'000, 2, 0.3,
                                              4ULL * 4'000'000, {}));
  }
}
BENCHMARK(BM_ExactReallocate)->Arg(4)->Arg(6)->Arg(8);

void BM_GreedyReallocateTiny(benchmark::State& state) {
  Workbench wb(10, static_cast<std::size_t>(state.range(0)), 7);
  const GreedySelector sel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel.reallocate(wb.model, wb.pool, 1, 0.7,
                                            4ULL * 4'000'000, 2, 0.3,
                                            4ULL * 4'000'000, {}));
  }
}
BENCHMARK(BM_GreedyReallocateTiny)->Arg(4)->Arg(6)->Arg(8);

// ------------------------------------------------------------------ greedy

void BM_GreedySelect(benchmark::State& state) {
  const bool lazy = state.range(1) != 0;
  Workbench wb(250, static_cast<std::size_t>(state.range(0)));
  GreedyParams params;
  params.lazy = lazy;
  const GreedySelector sel(params);
  for (auto _ : state) {
    SelectionEnvironment env(wb.model, {});
    GreedyPhase phase(env, 0.7);
    benchmark::DoNotOptimize(
        sel.select(wb.model, wb.pool, 150ULL * 4'000'000, phase));
  }
}
BENCHMARK(BM_GreedySelect)
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({400, 1});

void BM_Reallocate(benchmark::State& state) {
  Workbench wb(250, 300);
  const GreedySelector sel;
  const auto env = make_collections(wb, 4, 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel.reallocate(wb.model, wb.pool, 1, 0.6,
                                            150ULL * 4'000'000, 2, 0.3,
                                            150ULL * 4'000'000, env));
  }
}
BENCHMARK(BM_Reallocate);

// ----------------------------------------------------------------- routing

void BM_ProphetEncounter(benchmark::State& state) {
  ProphetConfig cfg;
  std::vector<ProphetTable> tables;
  for (NodeId i = 0; i < 50; ++i) tables.emplace_back(cfg, i);
  Rng rng(3);
  // Warm the tables so transitivity has entries to propagate.
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, 49));
    auto b = static_cast<std::size_t>(rng.uniform_int(0, 49));
    if (a == b) b = (b + 1) % 50;
    ProphetTable::encounter(tables[a], tables[b], t);
    t += 10.0;
  }
  for (auto _ : state) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, 49));
    auto b = static_cast<std::size_t>(rng.uniform_int(0, 49));
    if (a == b) b = (b + 1) % 50;
    ProphetTable::encounter(tables[a], tables[b], t);
    t += 10.0;
  }
}
BENCHMARK(BM_ProphetEncounter);

}  // namespace
}  // namespace photodtn

BENCHMARK_MAIN();
