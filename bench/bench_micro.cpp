// Micro-benchmarks (google-benchmark) for the algorithmic kernels: arc-set
// operations, footprint computation, expected-coverage evaluation (exact
// breakpoint integration vs literal 2^m enumeration vs Monte Carlo), the
// greedy selector (lazy vs plain), and PROPHET updates.
#include <benchmark/benchmark.h>

#include <optional>

#include "geometry/arc_set.h"
#include "routing/prophet.h"
#include "selection/exact_solver.h"
#include "selection/expected_coverage.h"
#include "selection/greedy_selector.h"
#include "selection/selection_env.h"
#include "sim/experiment.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/photo_gen.h"
#include "workload/poi_gen.h"

namespace photodtn {
namespace {

// ---------------------------------------------------------------- geometry

void BM_ArcSetAdd(benchmark::State& state) {
  Rng rng(1);
  std::vector<Arc> arcs;
  for (int i = 0; i < 64; ++i)
    arcs.push_back({rng.uniform(0.0, kTwoPi), rng.uniform(0.1, 1.0)});
  for (auto _ : state) {
    ArcSet s;
    for (const Arc& a : arcs) s.add(a);
    benchmark::DoNotOptimize(s.measure());
  }
}
BENCHMARK(BM_ArcSetAdd);

void BM_ArcSetGain(benchmark::State& state) {
  Rng rng(2);
  ArcSet s;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i)
    s.add({rng.uniform(0.0, kTwoPi), rng.uniform(0.05, 0.3)});
  const Arc probe{1.0, 0.8};
  for (auto _ : state) benchmark::DoNotOptimize(s.gain(probe));
}
BENCHMARK(BM_ArcSetGain)->Arg(4)->Arg(16)->Arg(64);

// ---------------------------------------------------------------- coverage

struct Workbench {
  Workbench(std::size_t pois, std::size_t photos, std::uint64_t seed = 42)
      : rng(seed),
        poi_list(generate_uniform_pois(pois, 6300.0, rng)),
        model(poi_list, deg_to_rad(30.0)) {
    ScenarioConfig cfg = ScenarioConfig::mit(seed);
    PhotoGenerator gen(cfg, poi_list);
    for (std::size_t i = 0; i < photos; ++i)
      pool.push_back(gen.generate_one(0.0, 1, rng).photo);
  }

  Rng rng;
  PoiList poi_list;
  CoverageModel model;
  std::vector<PhotoMeta> pool;
};

void BM_Footprint(benchmark::State& state) {
  Workbench wb(250, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wb.model.footprint(wb.pool[i % wb.pool.size()]));
    ++i;
  }
}
BENCHMARK(BM_Footprint);

// -------------------------------------------------------- expected coverage

std::vector<NodeCollection> make_collections(const Workbench& wb, std::size_t nodes,
                                             std::size_t photos_per_node) {
  std::vector<NodeCollection> out;
  std::size_t next = 0;
  for (std::size_t n = 0; n < nodes; ++n) {
    NodeCollection nc;
    nc.node = static_cast<NodeId>(n + 1);
    nc.delivery_prob = 0.2 + 0.6 * static_cast<double>(n) / static_cast<double>(nodes);
    for (std::size_t k = 0; k < photos_per_node && next < wb.pool.size(); ++k, ++next)
      nc.footprints.push_back(&wb.model.footprint_cached(wb.pool[next]));
    out.push_back(std::move(nc));
  }
  return out;
}

void BM_ExpectedCoverageExact(benchmark::State& state) {
  Workbench wb(250, 200);
  const auto nodes =
      make_collections(wb, static_cast<std::size_t>(state.range(0)), 20);
  for (auto _ : state)
    benchmark::DoNotOptimize(expected_coverage_exact(wb.model, nodes));
}
BENCHMARK(BM_ExpectedCoverageExact)->Arg(2)->Arg(6)->Arg(10);

void BM_ExpectedCoverageEnumerate(benchmark::State& state) {
  Workbench wb(50, 60);
  const auto nodes =
      make_collections(wb, static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state)
    benchmark::DoNotOptimize(expected_coverage_enumerate(wb.model, nodes));
}
BENCHMARK(BM_ExpectedCoverageEnumerate)->Arg(2)->Arg(6)->Arg(10);

void BM_ExpectedCoverageMonteCarlo(benchmark::State& state) {
  Workbench wb(50, 60);
  const auto nodes = make_collections(wb, 6, 6);
  Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(expected_coverage_monte_carlo(
        wb.model, nodes, rng, static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_ExpectedCoverageMonteCarlo)->Arg(100)->Arg(1000);

// ------------------------------------------------------- exact vs greedy

void BM_ExactReallocate(benchmark::State& state) {
  Workbench wb(10, static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_reallocate(wb.model, wb.pool, 1, 0.7,
                                              4ULL * 4'000'000, 2, 0.3,
                                              4ULL * 4'000'000, {}));
  }
}
BENCHMARK(BM_ExactReallocate)->Arg(4)->Arg(6)->Arg(8);

void BM_GreedyReallocateTiny(benchmark::State& state) {
  Workbench wb(10, static_cast<std::size_t>(state.range(0)), 7);
  const GreedySelector sel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel.reallocate(wb.model, wb.pool, 1, 0.7,
                                            4ULL * 4'000'000, 2, 0.3,
                                            4ULL * 4'000'000, {}));
  }
}
BENCHMARK(BM_GreedyReallocateTiny)->Arg(4)->Arg(6)->Arg(8);

// ------------------------------------------------------------------ greedy

void BM_GreedySelect(benchmark::State& state) {
  const bool lazy = state.range(1) != 0;
  Workbench wb(250, static_cast<std::size_t>(state.range(0)));
  GreedyParams params;
  params.lazy = lazy;
  const GreedySelector sel(params);
  for (auto _ : state) {
    SelectionEnvironment env(wb.model, {});
    GreedyPhase phase(env, 0.7);
    benchmark::DoNotOptimize(
        sel.select(wb.model, wb.pool, 150ULL * 4'000'000, phase));
  }
}
BENCHMARK(BM_GreedySelect)
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({400, 1});

void BM_Reallocate(benchmark::State& state) {
  Workbench wb(250, 300);
  const GreedySelector sel;
  const auto env = make_collections(wb, 4, 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel.reallocate(wb.model, wb.pool, 1, 0.6,
                                            150ULL * 4'000'000, 2, 0.3,
                                            150ULL * 4'000'000, env));
  }
}
BENCHMARK(BM_Reallocate);

// ------------------------------------------------- incremental engine (perf
// pipeline: tools/bench/bench_report.py consumes these by name)

/// Dense setting for the engine benches: PoIs packed into a small region so
/// every PoI is covered by many environment arcs — the regime where the
/// prefix-sum integration pays off over the per-segment scan.
struct DenseBench {
  DenseBench(std::size_t pois, std::size_t candidates, std::uint64_t seed = 42)
      : rng(seed),
        poi_list(generate_uniform_pois(pois, 300.0, rng)),
        model(poi_list, deg_to_rad(30.0)) {
    ScenarioConfig cfg = ScenarioConfig::mit(seed);
    cfg.region_m = 300.0;
    PhotoGenerator gen(cfg, poi_list);
    // Many small collections over a packed region: segment counts grow with
    // the number of *distinct-p collections* covering a PoI (each node's own
    // arcs merge inside its ArcSet), so a wide participant base — not a few
    // bulk uploaders — is what drives every PoI's miss function to O(100)
    // breakpoints, the regime the prefix-sum engine is built for.
    const std::size_t kNodes = 320, kPerNode = 8;
    for (std::size_t i = 0; i < kNodes * kPerNode + candidates; ++i)
      pool.push_back(gen.generate_one(0.0, 1, rng).photo);
    std::size_t next = 0;
    for (std::size_t n = 0; n < kNodes; ++n) {
      NodeCollection nc;
      nc.node = static_cast<NodeId>(n + 1);
      nc.delivery_prob =
          0.1 + 0.8 * static_cast<double>(n) / static_cast<double>(kNodes);
      for (std::size_t k = 0; k < kPerNode; ++k, ++next)
        nc.footprints.push_back(&model.footprint_cached(pool[next]));
      collections.push_back(std::move(nc));
    }
    for (std::size_t i = 0; i < candidates; ++i, ++next)
      cands.push_back(&model.footprint_cached(pool[next]));
  }

  Rng rng;
  PoiList poi_list;
  CoverageModel model;
  std::vector<PhotoMeta> pool;
  std::vector<NodeCollection> collections;
  std::vector<const PhotoFootprint*> cands;
};

/// GreedyPhase::gain with a switchable integral routine: the production
/// prefix-sum path or the legacy per-segment scan kept as the recorded
/// baseline. Mirrors GreedyPhase::gain exactly (audited by the differential
/// tests via PiecewiseMiss::integrate_excluding_scan).
CoverageValue gain_via(const SelectionEnvironment& env, const GreedyPhase& phase,
                       const PhotoFootprint& fp, double p, bool scan) {
  CoverageValue g;
  for (const PoiArc& pa : fp.arcs) {
    const PointOfInterest& poi = env.model().pois()[pa.poi_index];
    const ArcSet& own = phase.own_arcs(pa.poi_index);
    if (own.empty()) g.point += poi.weight * env.point_miss(pa.poi_index) * p;
    const double start = normalize_angle(pa.arc.start);
    const double end = start + std::min(pa.arc.length, kTwoPi);
    const PiecewiseMiss& pm = env.aspect_miss(pa.poi_index);
    auto integ = [&](double lo, double hi) {
      return scan ? pm.integrate_excluding_scan(lo, hi, own)
                  : pm.integrate_excluding(lo, hi, own);
    };
    double integral = 0.0;
    if (end <= kTwoPi) {
      integral = integ(start, end);
    } else {
      integral = integ(start, kTwoPi) + integ(0.0, end - kTwoPi);
    }
    g.aspect += poi.weight * p * integral;
  }
  return g;
}

/// One marginal-gain sweep over every candidate against a committed
/// selection — the greedy inner loop. range = {pois, candidates}.
void BM_GreedyGain(benchmark::State& state) {
  DenseBench db(static_cast<std::size_t>(state.range(0)),
                static_cast<std::size_t>(state.range(1)));
  SelectionEnvironment env(db.model, db.collections);
  GreedyPhase phase(env, 0.7);
  for (std::size_t i = 0; i < 8 && i < db.cands.size(); ++i)
    phase.commit(*db.cands[i]);
  for (auto _ : state) {
    CoverageValue sum;
    for (const PhotoFootprint* fp : db.cands) sum += phase.gain(*fp);
    benchmark::DoNotOptimize(sum);
  }
  // Density of the setting, so regressions in the workload generator that
  // would hollow out the bench show up in the report.
  std::size_t segs = 0, arcs = 0;
  for (std::size_t p = 0; p < db.model.pois().size(); ++p)
    segs += env.aspect_miss(p).segment_count();
  for (const PhotoFootprint* fp : db.cands) arcs += fp->arcs.size();
  state.counters["segs_per_poi"] =
      static_cast<double>(segs) / static_cast<double>(db.model.pois().size());
  state.counters["arcs_per_cand"] =
      db.cands.empty() ? 0.0
                       : static_cast<double>(arcs) / static_cast<double>(db.cands.size());
}
BENCHMARK(BM_GreedyGain)->Args({64, 256})->Args({250, 256});

/// The same sweep through the legacy full-scan integration — the perf
/// baseline the JSON report derives the speedup against.
void BM_GreedyGainScan(benchmark::State& state) {
  DenseBench db(static_cast<std::size_t>(state.range(0)),
                static_cast<std::size_t>(state.range(1)));
  SelectionEnvironment env(db.model, db.collections);
  GreedyPhase phase(env, 0.7);
  for (std::size_t i = 0; i < 8 && i < db.cands.size(); ++i)
    phase.commit(*db.cands[i]);
  for (auto _ : state) {
    CoverageValue sum;
    for (const PhotoFootprint* fp : db.cands)
      sum += gain_via(env, phase, *fp, 0.7, /*scan=*/true);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_GreedyGainScan)->Args({64, 256})->Args({250, 256});

/// The batched SoA sweep (GreedyPhase::gains_batch): all candidates in one
/// PoI-major pass. range = {pois, candidates, pool threads; 0 = serial}.
/// Bit-identical to the per-candidate loop of BM_GreedyGain for any thread
/// count — the thread axis only moves wall-clock time.
void BM_GainsBatch(benchmark::State& state) {
  DenseBench db(static_cast<std::size_t>(state.range(0)),
                static_cast<std::size_t>(state.range(1)));
  const auto threads = static_cast<std::size_t>(state.range(2));
  std::optional<ThreadPool> pool;
  if (threads > 0) pool.emplace(threads);
  SelectionEnvironment env(db.model, db.collections);
  GreedyPhase phase(env, 0.7);
  for (std::size_t i = 0; i < 8 && i < db.cands.size(); ++i)
    phase.commit(*db.cands[i]);
  std::vector<CoverageValue> gains(db.cands.size());
  for (auto _ : state) {
    phase.gains_batch(db.cands, gains, pool ? &*pool : nullptr);
    benchmark::DoNotOptimize(gains.data());
  }
}
BENCHMARK(BM_GainsBatch)
    ->Args({64, 256, 0})
    ->Args({250, 256, 0})
    ->Args({250, 256, 2})
    ->Args({250, 256, 4});

/// Full CELF selection against the dense environment, reporting the lazy
/// re-evaluation rate (reevals / gain_evals) — the fraction of heap pops
/// that had to be refreshed. Low is the whole point of CELF.
void BM_GreedyGainCelf(benchmark::State& state) {
  DenseBench db(static_cast<std::size_t>(state.range(0)),
                static_cast<std::size_t>(state.range(1)));
  std::vector<PhotoMeta> pool(db.pool.end() - static_cast<std::ptrdiff_t>(db.cands.size()),
                              db.pool.end());
  GreedyParams params;
  params.lazy = true;
  const GreedySelector sel(params);
  for (auto _ : state) {
    SelectionEnvironment env(db.model, db.collections);
    GreedyPhase phase(env, 0.7);
    benchmark::DoNotOptimize(sel.select(db.model, pool, 40ULL * 4'000'000, phase));
  }
  const SelectionStats& st = sel.last_stats();
  state.counters["reeval_rate"] =
      st.gain_evals == 0
          ? 0.0
          : static_cast<double>(st.reevals) / static_cast<double>(st.gain_evals);
  state.counters["commits"] = static_cast<double>(st.commits);
}
BENCHMARK(BM_GreedyGainCelf)->Args({64, 256})->Args({250, 256});

/// Cold build of the engine from a full collection list (what a throwaway
/// per-contact environment costs).
void BM_SelectionEnvBuild(benchmark::State& state) {
  DenseBench db(64, 0);
  for (auto _ : state) {
    SelectionEnvironment env(db.model, db.collections);
    benchmark::DoNotOptimize(env.total());
  }
}
BENCHMARK(BM_SelectionEnvBuild);

/// Persistent-engine reconcile: one collection churns (removed, re-added)
/// and the value is re-queried — only the touched PoIs rebuild.
void BM_SelectionEnvReconcile(benchmark::State& state) {
  DenseBench db(64, 0);
  SelectionEnvironment env(db.model, db.collections);
  benchmark::DoNotOptimize(env.total());
  std::size_t i = 0;
  for (auto _ : state) {
    const NodeCollection& nc = db.collections[i % db.collections.size()];
    env.remove_collection(nc.node);
    env.add_collection(nc);
    benchmark::DoNotOptimize(env.total());
    ++i;
  }
}
BENCHMARK(BM_SelectionEnvReconcile);

/// Full greedy selection against a dense environment (the per-contact hot
/// path of the scheme, minus simulator bookkeeping).
void BM_GreedySelectEnv(benchmark::State& state) {
  DenseBench db(64, static_cast<std::size_t>(state.range(0)));
  std::vector<PhotoMeta> pool(db.pool.end() - static_cast<std::ptrdiff_t>(db.cands.size()),
                              db.pool.end());
  const GreedySelector sel;
  for (auto _ : state) {
    SelectionEnvironment env(db.model, db.collections);
    GreedyPhase phase(env, 0.7);
    benchmark::DoNotOptimize(sel.select(db.model, pool, 40ULL * 4'000'000, phase));
  }
}
BENCHMARK(BM_GreedySelectEnv)->Arg(64)->Arg(256);

/// The fixed-seed tiny scenario shared by the e2e benches.
ExperimentSpec e2e_spec() {
  ExperimentSpec spec;
  spec.scenario = ScenarioConfig::mit(1);
  spec.scenario.num_pois = 40;
  spec.scenario.photo_rate_per_hour = 60.0;
  spec.scenario.trace.num_participants = 12;
  spec.scenario.trace.duration_s = 20.0 * 3600.0;
  spec.scenario.trace.base_pair_rate_per_hour = 0.3;
  spec.scenario.sim.node_storage_bytes = 40'000'000;
  spec.scheme = "OurScheme";
  return spec;
}

/// End-to-end: one tiny fixed-seed OurScheme run through the full simulator
/// (trace, workload, contacts, persistent engines). Tracked in
/// BENCH_e2e.json for trend regressions. With default (inert) faults this is
/// also the baseline for the fault-layer overhead check in BENCH_faults.json.
void BM_OurSchemeE2E(benchmark::State& state) {
  const ExperimentSpec spec = e2e_spec();
  for (auto _ : state) benchmark::DoNotOptimize(run_single(spec, 42));
}
BENCHMARK(BM_OurSchemeE2E);

/// The same scenario under an active fault plan (every class on:
/// interruptions, churn, jitter, gossip loss). The faulted/clean pair in
/// BENCH_faults.json separates "what disruption costs the mission" from
/// "what the fault layer costs the simulator".
void BM_OurSchemeE2E_Faults(benchmark::State& state) {
  ExperimentSpec spec = e2e_spec();
  FaultConfig& f = spec.scenario.sim.faults;
  f.contact_interrupt_prob = 0.25;
  f.interrupt_fraction_min = 0.2;
  f.interrupt_fraction_max = 0.9;
  f.crash_rate_per_hour = 0.05;
  f.mean_downtime_s = 2.0 * 3600.0;
  f.bandwidth_jitter = 0.3;
  f.gossip_loss_prob = 0.15;
  for (auto _ : state) benchmark::DoNotOptimize(run_single(spec, 42));
}
BENCHMARK(BM_OurSchemeE2E_Faults);

/// The same clean scenario with the obs layer fully on (metrics registry +
/// span recording). Paired with BM_OurSchemeE2E in BENCH_obs.json: the
/// enabled cost is advisory; the *disabled* cost is the gate — with obs off
/// (the plain BM_OurSchemeE2E, every record site a null/branch test),
/// BENCH_obs.json tracks the clean e2e median against its pre-obs prior.
void BM_OurSchemeE2E_Obs(benchmark::State& state) {
  ExperimentSpec spec = e2e_spec();
  spec.scenario.sim.obs.metrics = true;
  spec.scenario.sim.obs.trace = true;
  for (auto _ : state) benchmark::DoNotOptimize(run_single(spec, 42));
}
BENCHMARK(BM_OurSchemeE2E_Obs);

/// The same clean scenario with checkpointing enabled (a crash-safe
/// snapshot to disk every 500 events). Paired with BM_OurSchemeE2E in
/// BENCH_persist.json: the enabled cost is advisory (serialization + an
/// atomic file replace per checkpoint); the *disabled* cost — the plain
/// BM_OurSchemeE2E, where persistence is one unset-hook test per event —
/// is the gate against the pre-persist clean median.
void BM_OurSchemeE2E_Ckpt(benchmark::State& state) {
  const ExperimentSpec spec = e2e_spec();
  RunPersistence persistence;
  persistence.checkpoint_every = 500;
  persistence.checkpoint_path = "bench_ckpt.snap";
  for (auto _ : state)
    benchmark::DoNotOptimize(run_single(spec, 42, persistence));
}
BENCHMARK(BM_OurSchemeE2E_Ckpt);

/// Multi-seed experiment sweep on an explicit pool — the run_experiment hot
/// path that used to spawn one std::async thread per seed. range = pool
/// threads (0 = the shared pool). The aggregate is byte-identical across
/// thread counts; only wall-clock time moves.
void BM_ExperimentSweep(benchmark::State& state) {
  ExperimentSpec spec = e2e_spec();
  spec.runs = 4;
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::optional<ThreadPool> pool;
  if (threads > 0) pool.emplace(threads);
  for (auto _ : state)
    benchmark::DoNotOptimize(run_experiment(spec, pool ? &*pool : nullptr));
}
BENCHMARK(BM_ExperimentSweep)->Arg(1)->Arg(4);

// ----------------------------------------------------------------- routing

void BM_ProphetEncounter(benchmark::State& state) {
  ProphetConfig cfg;
  std::vector<ProphetTable> tables;
  for (NodeId i = 0; i < 50; ++i) tables.emplace_back(cfg, i);
  Rng rng(3);
  // Warm the tables so transitivity has entries to propagate.
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, 49));
    auto b = static_cast<std::size_t>(rng.uniform_int(0, 49));
    if (a == b) b = (b + 1) % 50;
    ProphetTable::encounter(tables[a], tables[b], t);
    t += 10.0;
  }
  for (auto _ : state) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, 49));
    auto b = static_cast<std::size_t>(rng.uniform_int(0, 49));
    if (a == b) b = (b + 1) % 50;
    ProphetTable::encounter(tables[a], tables[b], t);
    t += 10.0;
  }
}
BENCHMARK(BM_ProphetEncounter);

}  // namespace
}  // namespace photodtn

BENCHMARK_MAIN();
