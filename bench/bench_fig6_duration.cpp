// Figure 6 — the effect of short contact durations on OurScheme
// (MIT-like trace, 2 MB/s bandwidth; paper durations 10 min / 2 min /
// 1 min / 30 s).
//
// Paper claims reproduced:
//   * capping contacts at 2 min costs only ~1% coverage (the scheme moves
//     the most valuable photos first);
//   * performance collapses only under drastic truncation (30 s ~ 5% of
//     photos transferable), where it degrades toward ModifiedSpray levels.
#include <iostream>
#include <optional>

#include "bench_common.h"
#include "sim/experiment.h"
#include "util/table.h"

using namespace photodtn;

int main() {
  const bench::BenchOptions opts = bench::options();
  const ScenarioConfig scenario = bench::scaled_mit(opts);
  bench::print_header(
      "Figure 6: effect of contact duration (OurScheme, MIT-like trace)",
      "Claim: graceful degradation; ~1% loss at 2 min, cliff only below ~1 min",
      scenario, opts);

  struct Case {
    std::string label;
    std::optional<double> cap_s;
  };
  // The paper sweeps 10 min / 2 min / 1 min / 30 s; a 10 s point is added
  // beyond the paper to expose the full cliff (scaled storage shifts where
  // the "insufficient for important photos" regime begins).
  const std::vector<Case> cases{{"10min(full)", std::nullopt},
                                {"2min", 120.0},
                                {"1min", 60.0},
                                {"30s", 30.0},
                                {"10s", 10.0}};

  std::vector<ExperimentResult> results;
  for (const Case& c : cases) {
    ExperimentSpec spec;
    spec.scenario = scenario;
    spec.scheme = "OurScheme";
    spec.runs = opts.runs;
    spec.max_contact_duration_s = c.cap_s;
    bench::maybe_calibrate(opts, spec);
    results.push_back(run_experiment(spec));
  }
  // ModifiedSpray at full duration: the paper's reference level for the 30 s
  // case.
  ExperimentSpec mspec;
  mspec.scenario = scenario;
  mspec.scheme = "ModifiedSpray";
  mspec.runs = opts.runs;
  bench::maybe_calibrate(opts, mspec);
  const ExperimentResult mspray = run_experiment(mspec);

  for (const bool aspect : {false, true}) {
    std::vector<std::string> headers{aspect ? "t(h) \\ aspect(rad)" : "t(h) \\ point"};
    for (const Case& c : cases) headers.push_back("ours@" + c.label);
    headers.push_back("mspray@10min");
    Table table(std::move(headers));
    const auto& times = results.front().sample_times;
    for (std::size_t i = 0; i < times.size(); ++i) {
      std::vector<Table::Cell> row{times[i] / 3600.0};
      for (const auto& r : results) {
        // Named double avoids a GCC 12 ternary-into-variant false positive.
        const double v = aspect ? r.aspect.means()[i] : r.point.means()[i];
        row.push_back(v);
      }
      const double m = aspect ? mspray.aspect.means()[i] : mspray.point.means()[i];
      row.push_back(m);
      table.add_row(std::move(row));
    }
    std::cout << (aspect ? "\nFig. 6(b) aspect coverage under truncated contacts:\n"
                         : "\nFig. 6(a) point coverage under truncated contacts:\n");
    bench::emit(table, opts, aspect ? "fig6b_aspect" : "fig6a_point");
  }

  Table summary({"duration", "final point", "final aspect", "loss vs full (%)"});
  const double full_aspect = results.front().final_aspect.mean();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const double loss =
        full_aspect > 0.0
            ? 100.0 * (full_aspect - results[i].final_aspect.mean()) / full_aspect
            : 0.0;
    summary.add_row({cases[i].label, results[i].final_point.mean(),
                     results[i].final_aspect.mean(), loss});
  }
  summary.add_row({std::string("mspray@10min (reference)"), mspray.final_point.mean(),
                   mspray.final_aspect.mean(),
                   full_aspect > 0.0
                       ? 100.0 * (full_aspect - mspray.final_aspect.mean()) / full_aspect
                       : 0.0});
  std::cout << "Fig. 6 degradation summary:\n";
  bench::emit(summary, opts, "fig6_summary");
  return 0;
}
