// Translates photodtn_cli command-line options into an ExperimentSpec.
// Split from the binary so the option semantics are unit-testable.
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.h"
#include "util/args.h"

namespace photodtn::cli {

/// Builds the scenario from --trace/--scale/--pois/--theta-deg/--p-thld/
/// --rate/--storage-gb/--hours/--seed. Throws std::runtime_error with a
/// user-readable message on invalid values.
ScenarioConfig scenario_from(const Args& args);

/// Full simulate spec: scenario plus --runs/--seed/--max-contact-s/
/// --trace-file/--calibrated.
ExperimentSpec spec_from(const Args& args);

/// Parses the --scheme comma list (default "OurScheme,Spray&Wait").
std::vector<std::string> schemes_from(const Args& args);

/// Throws if any provided option was never consumed (typo protection).
void reject_unknown_options(const Args& args);

}  // namespace photodtn::cli
