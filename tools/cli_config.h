// Translates photodtn_cli command-line options into an ExperimentSpec.
// Split from the binary so the option semantics are unit-testable.
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.h"
#include "util/args.h"

namespace photodtn::cli {

/// Builds the scenario from --trace/--scale/--pois/--theta-deg/--p-thld/
/// --rate/--storage-gb/--hours/--seed. Throws std::runtime_error with a
/// user-readable message on invalid values.
ScenarioConfig scenario_from(const Args& args);

/// Full simulate spec: scenario plus --runs/--seed/--max-contact-s/
/// --trace-file/--calibrated.
ExperimentSpec spec_from(const Args& args);

/// Parses the --scheme comma list (default "OurScheme,Spray&Wait").
std::vector<std::string> schemes_from(const Args& args);

/// Parses --checkpoint-every/--checkpoint-out/--restore-from. Validates the
/// combination: an interval needs an output path, and either direction of
/// persistence is limited to --runs 1 with a single scheme (a snapshot
/// captures exactly one run).
RunPersistence persistence_from(const Args& args, std::size_t runs,
                                std::size_t num_schemes);

/// Throws if any provided option was never consumed (typo protection).
void reject_unknown_options(const Args& args);

/// Throws when the command received more bare (non-option) arguments than
/// it takes — a stray positional is usually a mistyped option value.
void reject_stray_positionals(const Args& args, std::size_t expected);

}  // namespace photodtn::cli
