// photodtn_cli — command-line driver for the photodtn library.
//
//   photodtn_cli simulate [--trace mit|cambridge] [--scheme A,B,...]
//                [--runs N] [--scale S] [--storage-gb G] [--rate R]
//                [--pois N] [--theta-deg D] [--p-thld P] [--hours H]
//                [--max-contact-s T] [--seed K] [--csv FILE] [--json FILE]
//                [--fault-interrupt P] [--fault-crash-rate R]
//                [--fault-gossip-loss P] [--metrics-out FILE]
//                [--trace-out FILE]
//                [--checkpoint-every N --checkpoint-out FILE]
//                [--restore-from FILE]
//       Run trace-driven simulations and print the coverage results.
//       --checkpoint-every writes a crash-safe snapshot to --checkpoint-out
//       every N simulator events; --restore-from resumes a snapshotted run
//       and finishes byte-identically to the uninterrupted one. Both are
//       limited to --runs 1 with a single --scheme.
//       --metrics-out writes the merged metrics registry snapshots as JSON;
//       --trace-out writes run 0 of the first scheme as a Chrome trace
//       (chrome://tracing / Perfetto). Either flag switches the obs layer on
//       for the run (as does PHOTODTN_OBS=1); PHOTODTN_OBS_WALL=1 appends
//       the non-deterministic wall-clock "wallPerf" section to the trace.
//
//   photodtn_cli trace-gen --out FILE [--trace mit|cambridge] [--scale S]
//                [--seed K]
//       Generate a synthetic contact trace and write it as CSV.
//
//   photodtn_cli trace-stats FILE
//       Print summary statistics of a trace file.
//
//   photodtn_cli schemes
//       List the available scheme names.
#include <cstdio>
#include <exception>
#include <iostream>
#include <sstream>

#include "cli_config.h"
#include "geometry/angle.h"
#include "obs/chrome_trace.h"
#include "schemes/factory.h"
#include "sim/experiment.h"
#include "sim/result_io.h"
#include "trace/trace_analysis.h"
#include "trace/trace_io.h"
#include "util/args.h"
#include "util/env.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace photodtn;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: photodtn_cli <simulate|trace-gen|trace-stats|schemes> "
               "[options]\n       (see the header of tools/photodtn_cli.cpp "
               "for the full option list)\n");
  return 2;
}

int cmd_simulate(const Args& args) {
  ExperimentSpec spec = cli::spec_from(args);
  const std::vector<std::string> schemes = cli::schemes_from(args);
  const std::string csv = args.get("csv", "");
  const std::string json = args.get("json", "");
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string trace_out = args.get("trace-out", "");
  const RunPersistence persistence =
      cli::persistence_from(args, spec.runs, schemes.size());
  cli::reject_unknown_options(args);
  cli::reject_stray_positionals(args, 0);
  if (!metrics_out.empty()) spec.scenario.sim.obs.metrics = true;
  if (!trace_out.empty()) {
    spec.scenario.sim.obs.metrics = true;
    spec.scenario.sim.obs.trace = true;
  }

  const ScenarioConfig& sc = spec.scenario;
  std::printf("simulate: %d participants, %.0fh, %zu PoIs, %.0f photos/h, "
              "%.2fGB storage, %zu run(s)\n",
              sc.trace.num_participants, sc.trace.duration_s / 3600.0, sc.num_pois,
              sc.photo_rate_per_hour,
              static_cast<double>(sc.sim.node_storage_bytes) / 1e9, spec.runs);

  Table table({"scheme", "point coverage", "aspect (rad)", "delivered", "ci95(point)"});
  std::vector<ExperimentResult> results;
  for (const std::string& name : schemes) {
    spec.scheme = name;
    if (persistence.enabled()) {
      // One checkpointed/resumed run, folded through the same aggregation
      // as run_experiment so the output stays byte-comparable.
      std::vector<SimResult> single;
      single.push_back(run_single(spec, spec.seed_base, persistence));
      results.push_back(aggregate_results(spec, std::move(single)));
    } else {
      results.push_back(run_experiment(spec));
    }
    const ExperimentResult& r = results.back();
    table.add_row({name, r.final_point.mean(), r.final_aspect.mean(),
                   r.final_delivered.mean(), r.final_point.ci95_half_width()});
  }
  table.print(std::cout);
  if (!csv.empty()) {
    if (!table.write_csv_file(csv))
      throw std::runtime_error("cannot write csv to " + csv);
    std::printf("csv written to %s\n", csv.c_str());
  }
  if (!json.empty()) {
    if (!write_comparison_json(json, results))
      throw std::runtime_error("cannot write json to " + json);
    std::printf("json written to %s\n", json.c_str());
  }
  if (!metrics_out.empty()) {
    if (!write_metrics_json(metrics_out, results))
      throw std::runtime_error("cannot write metrics to " + metrics_out);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    // Run 0 of the first scheme; the trace is keyed by simulation time and
    // stays byte-identical across thread counts unless the wall-clock
    // section is explicitly requested.
    const ExperimentResult& first = results.front();
    const obs::WallPerfSection wall =
        obs::wall_section_from_pool(ThreadPool::shared().stats());
    const bool with_wall = env_int("PHOTODTN_OBS_WALL", 0) != 0;
    if (!obs::write_chrome_trace(trace_out, first.trace_events, &first.metrics,
                                 with_wall ? &wall : nullptr))
      throw std::runtime_error("cannot write trace to " + trace_out);
    std::printf("trace written to %s (%zu events)\n", trace_out.c_str(),
                first.trace_events.size());
  }
  return 0;
}

int cmd_trace_gen(const Args& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) throw std::runtime_error("trace-gen requires --out FILE");
  const ScenarioConfig sc = cli::scenario_from(args);
  cli::reject_unknown_options(args);
  cli::reject_stray_positionals(args, 0);
  const ContactTrace trace = generate_synthetic_trace(sc.trace);
  if (!write_trace_file(out, trace))
    throw std::runtime_error("cannot write trace to " + out);
  const TraceStats s = trace.stats();
  std::printf("wrote %zu contacts (%zu with the command center) over %.0fh to %s\n",
              s.contacts, s.command_center_contacts, trace.horizon() / 3600.0,
              out.c_str());
  return 0;
}

int cmd_trace_stats(const Args& args) {
  if (args.positionals().empty())
    throw std::runtime_error("trace-stats requires a trace file argument");
  cli::reject_unknown_options(args);
  cli::reject_stray_positionals(args, 1);
  const ContactTrace trace = read_trace_file(args.positionals().front());
  const TraceStats s = trace.stats();
  const InterContactDiagnostics d = inter_contact_diagnostics(trace);
  Table table({"metric", "value"});
  table.add_row({std::string("nodes (incl. command center)"),
                 static_cast<std::int64_t>(trace.num_nodes())});
  table.add_row({std::string("horizon (h)"), trace.horizon() / 3600.0});
  table.add_row({std::string("contacts"), static_cast<std::int64_t>(s.contacts)});
  table.add_row({std::string("contacts with command center"),
                 static_cast<std::int64_t>(s.command_center_contacts)});
  table.add_row({std::string("pairs with >=1 contact"),
                 static_cast<std::int64_t>(s.pairs_with_contact)});
  table.add_row({std::string("mean contact duration (s)"), s.mean_duration});
  table.add_row({std::string("mean inter-contact time (h)"),
                 s.mean_inter_contact / 3600.0});
  table.add_row({std::string("inter-contact CV (1 = exponential)"), d.cv});
  table.add_row({std::string("KS distance vs exponential"), d.ks_distance});
  table.print(std::cout);
  std::printf("(eq. (1) metadata validation assumes exponential inter-contact "
              "times;\n KS distance below ~0.1 means the assumption is sound "
              "for this trace)\n");
  return 0;
}

int cmd_schemes(const Args& args) {
  cli::reject_unknown_options(args);
  cli::reject_stray_positionals(args, 0);
  for (const char* n :
       {"OurScheme", "NoMetadata", "Spray&Wait", "ModifiedSpray", "PhotoNet",
        "BestPossible", "Epidemic", "PROPHET"})
    std::printf("%s\n", n);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = Args::parse(argc, argv);
    if (args.command() == "simulate") return cmd_simulate(args);
    if (args.command() == "trace-gen") return cmd_trace_gen(args);
    if (args.command() == "trace-stats") return cmd_trace_stats(args);
    if (args.command() == "schemes") return cmd_schemes(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "photodtn_cli: %s\n", e.what());
    return 1;
  }
}
