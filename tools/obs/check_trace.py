#!/usr/bin/env python3
"""Validators for the obs layer's JSON artifacts (CI + local debugging).

  check_trace.py validate TRACE.json
      Structural check of a Chrome trace-event document as written by
      obs::write_chrome_trace: traceEvents is a list of objects with the
      required ph/ts/pid/tid fields, complete events carry a non-negative
      dur, timestamps are finite and non-decreasing in file order (the
      writer emits the deterministic (ts, seq) merge), and the optional
      photodtnMetrics block passes validate-metrics.

  check_trace.py validate-metrics METRICS.json
      Check a photodtn-metrics/1 document (photodtn_cli --metrics-out):
      schema tag, per-scheme metrics blocks with integer counters and
      layout-consistent histograms (len(counts) == len(bounds) + 1, bucket
      totals == count, strictly increasing bounds).

  check_trace.py compare A B [--ignore-metrics]
      Byte-level JSON equality of two documents; --ignore-metrics strips
      the observability-only keys ("metrics", "photodtnMetrics",
      "wallPerf") everywhere first, so a run with obs on can be compared
      against its obs-off golden twin.

Exit status: 0 ok, 1 check failed, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

KNOWN_PHASES = {"X", "i", "C", "M"}
OBS_ONLY_KEYS = {"metrics", "photodtnMetrics", "wallPerf"}


def fail(msg: str) -> int:
    print(f"check_trace: {msg}", file=sys.stderr)
    return 1


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def validate_histogram(name: str, h) -> str | None:
    if not isinstance(h, dict):
        return f"histogram {name!r} is not an object"
    bounds = h.get("bounds")
    counts = h.get("counts")
    if not isinstance(bounds, list) or not bounds:
        return f"histogram {name!r}: bounds missing or empty"
    if any(not isinstance(b, int) for b in bounds):
        return f"histogram {name!r}: non-integer bound"
    if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        return f"histogram {name!r}: bounds not strictly increasing"
    if not isinstance(counts, list) or len(counts) != len(bounds) + 1:
        return f"histogram {name!r}: counts must have len(bounds)+1 entries"
    if any(not isinstance(c, int) or c < 0 for c in counts):
        return f"histogram {name!r}: negative or non-integer bucket count"
    if sum(counts) != h.get("count"):
        return f"histogram {name!r}: bucket totals != count"
    return None


def validate_metrics_block(block, where: str) -> list[str]:
    errors = []
    if not isinstance(block, dict):
        return [f"{where}: metrics block is not an object"]
    for key in ("counters", "gauges", "histograms"):
        if key in block and not isinstance(block[key], dict):
            errors.append(f"{where}: {key} is not an object")
    for name, v in block.get("counters", {}).items():
        if not isinstance(v, int) or v < 0:
            errors.append(f"{where}: counter {name!r} is not a non-negative int")
    for name, v in block.get("gauges", {}).items():
        if not isinstance(v, (int, float)) or not math.isfinite(v):
            errors.append(f"{where}: gauge {name!r} is not a finite number")
    for name, h in block.get("histograms", {}).items():
        err = validate_histogram(name, h)
        if err:
            errors.append(f"{where}: {err}")
    return errors


def cmd_validate(path: str) -> int:
    doc = load(path)
    if not isinstance(doc, dict):
        return fail(f"{path}: top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(f"{path}: traceEvents missing or not a list")
    errors = []
    prev_ts = None
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not ev.get("name"):
            errors.append(f"{where}: missing name")
        if ph == "M":
            if "pid" not in ev:
                errors.append(f"{where}: metadata record missing pid")
            continue  # metadata records carry no timestamp/tid
        if "pid" not in ev or "tid" not in ev:
            errors.append(f"{where}: missing pid/tid")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts):
            errors.append(f"{where}: ts missing or not finite")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event needs dur >= 0")
        if prev_ts is not None and ts < prev_ts:
            errors.append(f"{where}: ts decreases ({ts} after {prev_ts}); the "
                          "writer emits the deterministic (ts, seq) order")
        prev_ts = ts
    if "photodtnMetrics" in doc:
        errors += validate_metrics_block(doc["photodtnMetrics"], path)
    for e in errors[:50]:
        print(f"check_trace: {e}", file=sys.stderr)
    if errors:
        return fail(f"{path}: {len(errors)} problem(s)")
    n_meta = sum(1 for e in events if e.get("ph") == "M")
    print(f"check_trace: {path} ok — {len(events) - n_meta} events, "
          f"{n_meta} metadata record(s)"
          + (", metrics block present" if "photodtnMetrics" in doc else "")
          + (", wallPerf present" if "wallPerf" in doc else ""))
    return 0


def cmd_validate_metrics(path: str) -> int:
    doc = load(path)
    if not isinstance(doc, dict) or doc.get("schema") != "photodtn-metrics/1":
        return fail(f"{path}: missing schema tag 'photodtn-metrics/1'")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        return fail(f"{path}: results missing or empty")
    errors = []
    for i, r in enumerate(results):
        where = f"{path}: results[{i}]"
        if not isinstance(r, dict) or "scheme" not in r:
            errors.append(f"{where}: missing scheme")
            continue
        errors += validate_metrics_block(r.get("metrics"), where)
    for e in errors[:50]:
        print(f"check_trace: {e}", file=sys.stderr)
    if errors:
        return fail(f"{path}: {len(errors)} problem(s)")
    print(f"check_trace: {path} ok — {len(results)} scheme(s)")
    return 0


def strip_obs_keys(doc):
    if isinstance(doc, dict):
        return {k: strip_obs_keys(v) for k, v in doc.items()
                if k not in OBS_ONLY_KEYS}
    if isinstance(doc, list):
        return [strip_obs_keys(v) for v in doc]
    return doc


def cmd_compare(a: str, b: str, ignore_metrics: bool) -> int:
    da, db = load(a), load(b)
    if ignore_metrics:
        da, db = strip_obs_keys(da), strip_obs_keys(db)
    if da != db:
        return fail(f"{a} and {b} differ"
                    + (" (after stripping obs keys)" if ignore_metrics else ""))
    print(f"check_trace: {a} == {b}"
          + (" (obs keys ignored)" if ignore_metrics else ""))
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="cmd", required=True)
    p = sub.add_parser("validate", help="check a Chrome trace document")
    p.add_argument("trace")
    p = sub.add_parser("validate-metrics", help="check a metrics export")
    p.add_argument("metrics")
    p = sub.add_parser("compare", help="JSON equality of two documents")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument("--ignore-metrics", action="store_true",
                   help="strip metrics/photodtnMetrics/wallPerf keys first")
    args = parser.parse_args()
    if args.cmd == "validate":
        return cmd_validate(args.trace)
    if args.cmd == "validate-metrics":
        return cmd_validate_metrics(args.metrics)
    return cmd_compare(args.a, args.b, args.ignore_metrics)


if __name__ == "__main__":
    sys.exit(main())
