#include "cli_config.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "geometry/angle.h"
#include "workload/photo_gen.h"

namespace photodtn::cli {

ScenarioConfig scenario_from(const Args& args) {
  const std::string trace = args.get("trace", "mit");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (trace != "mit" && trace != "cambridge")
    throw std::runtime_error("--trace must be 'mit' or 'cambridge'");
  ScenarioConfig sc = trace == "cambridge" ? ScenarioConfig::cambridge(seed)
                                           : ScenarioConfig::mit(seed);
  const double scale = args.get_double("scale", 0.3);
  if (scale <= 0.0 || scale > 1.0)
    throw std::runtime_error("--scale must be in (0, 1]");
  sc.trace.num_participants =
      std::max<NodeId>(10, static_cast<NodeId>(sc.trace.num_participants * scale));
  sc.trace.duration_s *= scale;
  sc.photo_rate_per_hour *= scale;
  sc.sim.node_storage_bytes =
      static_cast<std::uint64_t>(static_cast<double>(sc.sim.node_storage_bytes) * scale);

  sc.num_pois = static_cast<std::size_t>(
      args.get_int("pois", static_cast<std::int64_t>(sc.num_pois)));
  sc.effective_angle = deg_to_rad(args.get_double("theta-deg", 30.0));
  sc.p_thld = args.get_double("p-thld", sc.p_thld);
  if (sc.p_thld < 0.0 || sc.p_thld > 1.0)
    throw std::runtime_error("--p-thld must be in [0, 1]");
  if (args.has("rate")) sc.photo_rate_per_hour = args.get_double("rate", 0) * scale;
  if (args.has("storage-gb"))
    sc.sim.node_storage_bytes =
        static_cast<std::uint64_t>(args.get_double("storage-gb", 0.6) * 1e9 * scale);
  if (args.has("hours")) sc.trace.duration_s = args.get_double("hours", 0) * 3600.0;
  if (sc.trace.duration_s <= 0.0) throw std::runtime_error("--hours must be positive");
  sc.sim.sample_interval_s = std::max(3600.0, sc.trace.duration_s / 20.0);

  // Fault-layer knobs (dtn/fault.h); all default 0 = clean replay.
  FaultConfig& f = sc.sim.faults;
  f.contact_interrupt_prob =
      args.get_double("fault-interrupt", f.contact_interrupt_prob);
  if (f.contact_interrupt_prob < 0.0 || f.contact_interrupt_prob > 1.0)
    throw std::runtime_error("--fault-interrupt must be in [0, 1]");
  f.crash_rate_per_hour = args.get_double("fault-crash-rate", f.crash_rate_per_hour);
  if (f.crash_rate_per_hour < 0.0)
    throw std::runtime_error("--fault-crash-rate must be >= 0");
  f.gossip_loss_prob = args.get_double("fault-gossip-loss", f.gossip_loss_prob);
  if (f.gossip_loss_prob < 0.0 || f.gossip_loss_prob > 1.0)
    throw std::runtime_error("--fault-gossip-loss must be in [0, 1]");
  return sc;
}

ExperimentSpec spec_from(const Args& args) {
  ExperimentSpec spec;
  spec.scenario = scenario_from(args);
  spec.runs =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("runs", 3)));
  spec.seed_base = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (args.has("max-contact-s")) {
    const double cap = args.get_double("max-contact-s", 600.0);
    if (cap < 0.0) throw std::runtime_error("--max-contact-s must be >= 0");
    spec.max_contact_duration_s = cap;
  }
  spec.trace_file = args.get("trace-file", "");
  if (args.has("calibrated") && args.get("calibrated", "true") != "false")
    apply_mit_calibration(spec.scenario, spec.photo_options);
  return spec;
}

std::vector<std::string> schemes_from(const Args& args) {
  std::vector<std::string> schemes;
  std::stringstream list(args.get("scheme", "OurScheme,Spray&Wait"));
  std::string name;
  while (std::getline(list, name, ','))
    if (!name.empty()) schemes.push_back(name);
  if (schemes.empty()) throw std::runtime_error("--scheme needs at least one name");
  return schemes;
}

RunPersistence persistence_from(const Args& args, std::size_t runs,
                                std::size_t num_schemes) {
  RunPersistence p;
  const std::int64_t every = args.get_int("checkpoint-every", 0);
  if (every < 0)
    throw std::runtime_error("--checkpoint-every must be >= 0 events");
  p.checkpoint_every = static_cast<std::uint64_t>(every);
  p.checkpoint_path = args.get("checkpoint-out", "");
  p.restore_path = args.get("restore-from", "");
  if (p.checkpoint_every > 0 && p.checkpoint_path.empty())
    throw std::runtime_error("--checkpoint-every requires --checkpoint-out FILE");
  if (p.checkpoint_every == 0 && !p.checkpoint_path.empty())
    throw std::runtime_error("--checkpoint-out requires --checkpoint-every N");
  if (p.enabled() && (runs != 1 || num_schemes != 1))
    throw std::runtime_error(
        "checkpoint/restore works on exactly one run: use --runs 1 and a "
        "single --scheme");
  return p;
}

void reject_unknown_options(const Args& args) {
  if (const auto unused = args.unused_keys(); !unused.empty())
    throw std::runtime_error("unknown option --" + unused.front());
}

void reject_stray_positionals(const Args& args, std::size_t expected) {
  if (args.positionals().size() > expected)
    throw std::runtime_error("unexpected argument '" +
                             args.positionals()[expected] + "'");
}

}  // namespace photodtn::cli
