#!/usr/bin/env python3
"""Self-test for photodtn_lint.py.

Materialises the `.fixture` files into a temporary mini-repo (so the paired
header lookup, global accessor registry, and --root handling run exactly the
code paths the real sweep runs), lints it, and asserts the finding set —
every positive fixture line must fire its rule, every negative must stay
silent. Keeps the lint honest in both directions: a regex loosened until it
misses a hazard fails here just like one tightened until it spams.

Exit status: 0 all assertions hold, 1 otherwise.
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"

# fixture file -> path inside the mini-repo (all under src/demo/ so the
# paired-header and own-header-first machinery engage).
MANIFEST = {
    "store.h.fixture": "src/demo/store.h",
    "store.cpp.fixture": "src/demo/store.cpp",
    "widget.cpp.fixture": "src/demo/widget.cpp",
    "widget_ok.cpp.fixture": "src/demo/widget_ok.cpp",
    "hazards.cpp.fixture": "src/demo/hazards.cpp",
    "allows.cpp.fixture": "src/demo/allows.cpp",
}

EXPECT_RE = re.compile(r"//.*?EXPECT\s+([a-z-]+)")
FINDING_RE = re.compile(r"^(.*?):(\d+): \[([a-z-]+)\]")


def expected_findings(root: Path) -> set[tuple[str, int, str]]:
    """(relpath, line, rule) triples declared by EXPECT comments in fixtures."""
    out = set()
    for rel in MANIFEST.values():
        path = root / rel
        for i, line in enumerate(path.read_text().splitlines(), start=1):
            for m in EXPECT_RE.finditer(line):
                out.add((rel, i, m.group(1)))
    return out


def main() -> int:
    missing = [f for f in MANIFEST if not (FIXTURES / f).exists()]
    if missing:
        print(f"lint_selftest: missing fixtures: {missing}", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="photodtn-lint-selftest-") as tmp:
        root = Path(tmp)
        for fixture, rel in MANIFEST.items():
            dest = root / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(FIXTURES / fixture, dest)

        proc = subprocess.run(
            [sys.executable, str(HERE / "photodtn_lint.py"), "--root", str(root)],
            capture_output=True, text=True)

        actual = set()
        for line in proc.stdout.splitlines():
            m = FINDING_RE.match(line)
            if not m:
                continue
            rel = Path(m.group(1)).resolve().relative_to(root).as_posix()
            actual.add((rel, int(m.group(2)), m.group(3)))

        expected = expected_findings(root)

        ok = True
        for triple in sorted(expected - actual):
            print(f"MISSED  {triple[0]}:{triple[1]} expected [{triple[2]}]")
            ok = False
        for triple in sorted(actual - expected):
            print(f"SPURIOUS {triple[0]}:{triple[1]} reported [{triple[2]}]")
            ok = False
        if proc.returncode not in (0, 1):
            print(f"lint exited {proc.returncode}: {proc.stderr}", file=sys.stderr)
            ok = False
        if expected and proc.returncode != 1:
            print(f"lint should exit 1 with findings, got {proc.returncode}")
            ok = False

        # --list-allows must enumerate the fixtures' suppressions with their
        # justifications (CONTRIBUTING.md's allow-list is regenerated from it).
        listing = subprocess.run(
            [sys.executable, str(HERE / "photodtn_lint.py"), "--root", str(root),
             "--list-allows"],
            capture_output=True, text=True)
        if listing.returncode != 0:
            print(f"--list-allows exited {listing.returncode}", file=sys.stderr)
            ok = False
        if "commutative integer sum" not in listing.stdout:
            print("--list-allows lost a justification text")
            ok = False

        if ok:
            print(f"lint_selftest: {len(expected)} positives fired, "
                  "no spurious findings")
            return 0
        return 1


if __name__ == "__main__":
    sys.exit(main())
