#!/usr/bin/env python3
"""Repo-specific lint for photodtn.

Fast, dependency-free checks for rules that clang-tidy cannot express and
that have bitten floating-point/simulation codebases like this one:

  banned-random       rand()/srand()/random() — all randomness must flow
                      through util/rng.h so experiments stay reproducible.
  banned-time         std::time/time(nullptr)/clock() as entropy or sim time —
                      simulation time is explicit, wall clock is not allowed
                      in library code.
  banned-wallclock    std::chrono::*_clock::now() outside src/obs/ and bench/ —
                      wall-clock reads flow through obs/wall_clock.h so traces
                      and metrics stay deterministic (sim-time-keyed) and the
                      opt-in wallPerf section is the only wall-clock consumer.
  angle-compare       direct ==/!= on angle-ish floating-point identifiers
                      (angle/heading/theta/azimuth/bearing) — use the angle::
                      helpers (normalize_angle, angle_distance) instead.
  include-parent      #include "../..." — include paths are rooted at src/.
  include-bits        #include <bits/...> — non-portable libstdc++ internals.
  pragma-once         every header starts its include story with #pragma once.
  own-header-first    foo.cpp includes "module/foo.h" before anything else,
                      proving each header is self-contained.
  using-namespace     `using namespace` at namespace scope in a header leaks
                      into every includer.
  raw-file-write      std::ofstream / fwrite / fopen in src/ (outside
                      src/persist/) — artifact writes route through
                      persist::checked_write_file / atomic_write_file
                      (persist/file_io.h) so open/write/flush errors surface
                      instead of silently truncating on ENOSPC.

Determinism rules (ordering hazards that parallel simulators hit — each
suppression REQUIRES a justification, see below):

  unordered-iter      iteration (range-for or .begin()) over a
                      std::unordered_map/unordered_set. Hash iteration order
                      is implementation-defined: any result-affecting walk
                      must extract-and-sort (the repo idiom) or prove the
                      loop body order-invariant in an allow justification.
                      Tracks local declarations, members of the paired
                      module header, and accessors returning unordered refs
                      (e.g. store().map(), cache.entries()).
  pointer-key         std::map/set keyed by a pointer — iteration order is
                      address order, different every run under ASLR.
  atomic-float        std::atomic<float/double> — concurrent FP accumulation
                      commits rounding in scheduling order; keep sums integer
                      or reduce deterministically (ThreadPool::parallel_reduce).
  unordered-reduce    std::reduce (unspecified evaluation order), or
                      std::accumulate over an unordered container's range —
                      fold results depend on an order nobody pinned down.

Suppress a finding by appending:  // photodtn-lint: allow(<rule>)
Determinism rules additionally require a justification after a colon:
  // photodtn-lint: allow(unordered-iter): per-key updates commute
A suppression whose rule would no longer fire on that line is itself a
finding (stale-allow), so annotations cannot rot in place.

`--list-allows` prints every active suppression (file, rule, justification)
in a stable format — CONTRIBUTING.md's allow-list is regenerated from it.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

HEADER_EXTS = {".h", ".hpp"}
SOURCE_EXTS = {".cpp", ".cc", ".cxx"}
LINT_DIRS = ["src", "tools", "bench", "examples", "tests"]

ALLOW_RE = re.compile(
    r"photodtn-lint:\s*allow\(([a-z-]+)\)"
    r"(?::\s*(.*?)\s*(?=photodtn-lint:|$))?")

# Rules whose allow() must carry a justification text after a colon.
JUSTIFIED_RULES = {"unordered-iter", "pointer-key", "atomic-float", "unordered-reduce"}

# Rules that apply line by line:
# (rule, regex, message, applies_to_tests, exempt_prefixes) — a file whose
# repo-relative path starts with an exempt prefix skips the rule entirely.
LINE_RULES = [
    (
        "banned-random",
        re.compile(r"(?<![\w:.])(?:std::)?s?rand(?:om)?\s*\("),
        "raw C randomness; use photodtn::Rng (util/rng.h) so runs stay seeded "
        "and reproducible",
        True,
        (),
    ),
    (
        "banned-time",
        re.compile(r"(?<![\w:.])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&\w+)?\s*\)"
                   r"|(?<![\w:.])(?:std::)?clock\s*\(\s*\)"),
        "wall-clock time in library code; simulation time is explicit and "
        "entropy comes from util/rng.h",
        True,
        (),
    ),
    (
        "banned-wallclock",
        re.compile(r"(?<![\w.])(?:std::chrono::)?"
                   r"(?:steady|system|high_resolution)_clock\s*::\s*now\s*\("),
        "direct chrono clock read; go through obs/wall_clock.h (wall-clock is "
        "allowed only under src/obs/ and bench/ — traces and metrics must stay "
        "deterministic)",
        True,
        ("src/obs/", "bench/"),
    ),
    (
        "angle-compare",
        re.compile(
            r"[\w\].)]*(?:angle|heading|theta|azimuth|bearing)\w*(?:\(\))?"
            r"\s*[=!]=\s*[-\w.]"
        ),
        "direct ==/!= on an angle; compare via angle_distance()/normalize_angle() "
        "(geometry/angle.h) or an explicit epsilon",
        False,
        (),
    ),
    (
        "include-parent",
        re.compile(r'#\s*include\s*"\.\./'),
        'parent-relative include; include paths are rooted at src/ '
        '(e.g. "geometry/angle.h")',
        True,
        (),
    ),
    (
        "include-bits",
        re.compile(r"#\s*include\s*<bits/"),
        "libstdc++ internal header; include the standard header instead",
        True,
        (),
    ),
    (
        "pointer-key",
        re.compile(r"std::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*"),
        "ordered container keyed by a pointer; iteration order is address "
        "order (different every run under ASLR) — key by a stable id instead",
        False,
        (),
    ),
    (
        "atomic-float",
        re.compile(r"std::atomic\s*<\s*(?:float|double|long\s+double)\s*>"),
        "atomic floating-point accumulation commits rounding in scheduling "
        "order; keep concurrent sums integer-valued or fold per-chunk partials "
        "in chunk order (ThreadPool::parallel_reduce)",
        False,
        (),
    ),
    (
        "unordered-reduce",
        re.compile(r"(?<![\w:])std::reduce\s*\("),
        "std::reduce folds in unspecified order; use std::accumulate over a "
        "canonically ordered range or ThreadPool::parallel_reduce",
        False,
        (),
    ),
    (
        "raw-file-write",
        re.compile(r"(?<![\w:])(?:std::)?(?:ofstream\b|fwrite\s*\(|fopen\s*\()"),
        "raw file write; route artifacts through persist::checked_write_file "
        "or atomic_write_file (persist/file_io.h) so open/write/flush errors "
        "surface instead of silently truncating on ENOSPC",
        False,
        ("src/persist/", "tools/", "bench/", "examples/"),
    ),
]

STRING_OR_CHAR = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)\'')

# --- unordered-container tracking -------------------------------------------

UNORDERED = r"unordered_(?:multi)?(?:map|set)"
# A declaration that binds a name to an unordered container: variable, member,
# or reference parameter. Group 1: the name. Group 2: the terminator, which
# distinguishes accessor declarations (`>& name(` returning a reference) from
# variables (`> name;`, `> name =`, `> name(args...)`, `>& name,`).
TRACK_RE = re.compile(
    UNORDERED + r"\s*<[^;{}]*?>\s*(&?)\s*(\w+)\s*([;,=({\[)]|$)")
FOR_OPEN_RE = re.compile(r"\bfor\s*\(")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")


def range_for_exprs(code: str) -> list[str]:
    """Extracts the range expression of each range-for on the line.

    Walks the parenthesis balance so a same-line loop body
    (`for (x : vec) set.insert(x);`) never leaks into the range expression —
    a plain regex can't tell where the for-header's `)` is.
    """
    out = []
    for m in FOR_OPEN_RE.finditer(code):
        i = m.end()
        depth = 1
        colon = -1
        classic = False
        while i < len(code) and depth > 0:
            ch = code[i]
            if ch == "(" or ch == "[":
                depth += 1
            elif ch == ")" or ch == "]":
                depth -= 1
            elif ch == ";" and depth == 1:
                classic = True  # for(init; cond; step) — not a range-for
            elif ch == ":" and depth == 1 and colon < 0:
                if i + 1 < len(code) and code[i + 1] == ":":
                    i += 2  # skip `::` qualifiers
                    continue
                colon = i
            i += 1
        if depth == 0 and colon >= 0 and not classic:
            out.append(code[colon + 1:i - 1])
    return out
ACCUMULATE_RE = re.compile(r"(?<![\w:])(?:std::)?accumulate\s*\(\s*([^;]*)")


def unordered_decls(lines: list[str]) -> tuple[set[str], set[str]]:
    """Scans lines for unordered-container names: (variables, ref accessors).

    Variables covers members (`photos_`), locals (`want`), and reference
    parameters (`peer_snapshot`). Accessors are functions returning an
    unordered reference (`map()`, `entries()`); their *call sites* are what
    iteration must not touch.
    """
    variables: set[str] = set()
    accessors: set[str] = set()
    for raw in lines:
        code = strip_comment_and_strings(raw)
        for m in TRACK_RE.finditer(code):
            by_ref, name, term = m.group(1), m.group(2), m.group(3)
            if by_ref == "&" and term == "(":
                accessors.add(name)
            else:
                variables.add(name)
    return variables, accessors


def references_unordered(expr: str, variables: set[str], accessors: set[str]) -> bool:
    """True when `expr` names a tracked unordered variable or accessor call."""
    for name in re.findall(r"\b(\w+)\b(?!\s*\()", expr):
        if name in variables:
            return True
    for call in re.findall(r"\b(\w+)\s*\(", expr):
        if call in accessors:
            return True
    return False


def strip_comment_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents from a line.

    Keeps the structure (so column positions of code stay roughly stable) but
    prevents rules from firing inside literals or prose.
    """
    line = STRING_OR_CHAR.sub('""', line)
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


class Finding:
    def __init__(self, path: Path, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def allowed_rules(raw_line: str) -> dict[str, str]:
    """Maps each allow()'d rule on the line to its justification ('' if none)."""
    comment = raw_line.split("//", 1)
    tail = comment[1] if len(comment) > 1 else raw_line
    return {m.group(1): (m.group(2) or "").strip()
            for m in ALLOW_RE.finditer(tail)}


def in_tests(path: Path, root: Path) -> bool:
    return path.is_relative_to(root / "tests")


class FileContext:
    """Per-file lint context: tracked unordered names and active suppressions."""

    def __init__(self, path: Path, lines: list[str], root: Path,
                 global_accessors: set[str]):
        self.variables, self.accessors = unordered_decls(lines)
        self.accessors |= global_accessors
        # Members live in the module header but are iterated in the .cpp:
        # fold the paired header's declarations in.
        if path.suffix in SOURCE_EXTS and path.is_relative_to(root):
            rel = path.relative_to(root)
            if len(rel.parts) == 3 and rel.parts[0] == "src":
                header = root / "src" / rel.parts[1] / (path.stem + ".h")
                if header.exists():
                    try:
                        hvars, haccs = unordered_decls(
                            header.read_text(encoding="utf-8").splitlines())
                        self.variables |= hvars
                        self.accessors |= haccs
                    except (OSError, UnicodeDecodeError):
                        pass


def unordered_iter_hits(code: str, ctx: FileContext) -> bool:
    """Does this line iterate over a tracked unordered container?"""
    for expr in range_for_exprs(code):
        if references_unordered(expr, ctx.variables, ctx.accessors):
            return True
    if unordered_reduce_hits(code, ctx):
        return False  # a fold over .begin(): the unordered-reduce rule owns it
    for m in BEGIN_CALL_RE.finditer(code):
        if m.group(1) in ctx.variables:
            return True
    return False


def unordered_reduce_hits(code: str, ctx: FileContext) -> bool:
    """Does this line fold (accumulate) over a tracked unordered container?"""
    m = ACCUMULATE_RE.search(code)
    return bool(m) and references_unordered(m.group(1), ctx.variables,
                                            ctx.accessors)


def rule_fires(rule: str, code: str, line: str, ctx: FileContext) -> bool:
    """Whether `rule` would report this (comment/string-stripped) line.

    Used both for the main sweep and for stale-allow detection. `line` keeps
    string literals (include rules match the path literal), `code` does not.
    """
    if rule == "unordered-iter":
        return unordered_iter_hits(code, ctx)
    if rule == "unordered-reduce":
        if unordered_reduce_hits(code, ctx):
            return True
        # fall through: the std::reduce line-rule shares this name
    for r, rx, _msg, _tests, _exempt in LINE_RULES:
        if r == rule:
            haystack = line if rule.startswith("include-") else code
            if rx.search(haystack):
                return True
    if rule == "using-namespace":
        return bool(re.search(r"(?<!\w)using\s+namespace\b", code))
    if rule == "own-header-first":
        return bool(INCLUDE_RE.search(line))
    return False


KNOWN_RULES = ({r for r, *_ in LINE_RULES}
               | {"unordered-iter", "using-namespace", "own-header-first",
                  "pragma-once", "stale-allow", "allow-needs-reason"})


def check_allows(path: Path, i: int, raw: str, code: str, line: str,
                 ctx: FileContext, allows: dict[str, str]) -> list[Finding]:
    """Validates suppression comments: known rule, justified, not stale."""
    findings = []
    for rule, reason in allows.items():
        if rule not in KNOWN_RULES:
            findings.append(Finding(
                path, i, "stale-allow",
                f"allow({rule}) names no lint rule; remove or fix the name"))
            continue
        if rule in JUSTIFIED_RULES and not reason:
            findings.append(Finding(
                path, i, "allow-needs-reason",
                f"allow({rule}) must justify why this site is order-invariant: "
                f"`// photodtn-lint: allow({rule}): <reason>`"))
        if not rule_fires(rule, code, line, ctx):
            findings.append(Finding(
                path, i, "stale-allow",
                f"allow({rule}) suppresses nothing on this line anymore; "
                "remove the comment (and CONTRIBUTING.md's allow-list entry)"))
    return findings


def check_line_rules(path: Path, lines: list[str], root: Path,
                     ctx: FileContext) -> list[Finding]:
    findings = []
    is_test = in_tests(path, root)
    rel = path.relative_to(root).as_posix() if path.is_relative_to(root) else ""
    in_block_comment = False
    # An allow on a standalone comment line suppresses on the next line
    # (NOLINTNEXTLINE-style); an allow trailing code suppresses its own line.
    carried: dict[str, str] = {}
    for i, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and line.find("*/", start) < 0:
            in_block_comment = True
            line = line[:start]
        code = strip_comment_and_strings(line)
        own_allows = allowed_rules(raw)
        standalone = bool(own_allows) and not code.strip()
        if standalone:
            # Validity (known rule, justification, staleness) is checked
            # against the line the comment annotates, once we reach it.
            carried = own_allows
            continue
        allows = dict(carried) | own_allows
        carried = {}
        findings.extend(check_allows(path, i, raw, code, line, ctx, allows))
        for rule, rx, msg, applies_to_tests, exempt_prefixes in LINE_RULES:
            if is_test and not applies_to_tests:
                continue
            if any(rel.startswith(p) for p in exempt_prefixes):
                continue
            if rule in allows:
                continue
            # Include rules must see the path string literal; everything else
            # must not match inside literals.
            haystack = line if rule.startswith("include-") else code
            if rx.search(haystack):
                findings.append(Finding(path, i, rule, msg))
        if not is_test:
            if "unordered-iter" not in allows and unordered_iter_hits(code, ctx):
                findings.append(Finding(
                    path, i, "unordered-iter",
                    "iteration over a std::unordered_ container; hash order is "
                    "implementation-defined — extract-and-sort into a vector, "
                    "or justify order-invariance with "
                    "`// photodtn-lint: allow(unordered-iter): <reason>`"))
            if "unordered-reduce" not in allows and unordered_reduce_hits(code, ctx):
                findings.append(Finding(
                    path, i, "unordered-reduce",
                    "accumulate over an unordered container folds in hash "
                    "order; sort the range first or justify with an allow"))
    return findings


def check_header_rules(path: Path, lines: list[str]) -> list[Finding]:
    findings = []
    # pragma-once: first preprocessor directive in a header must be
    # `#pragma once` (leading comments are fine).
    first_directive = next(
        (l.strip() for l in lines if l.lstrip().startswith("#")), None)
    if first_directive != "#pragma once":
        findings.append(Finding(
            path, 1, "pragma-once",
            "headers must open with #pragma once before any other directive"))
    # using-namespace at namespace scope in a header.
    in_block_comment = False
    for i, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and line.find("*/", start) < 0:
            in_block_comment = True
            line = line[:start]
        code = strip_comment_and_strings(line)
        if "using-namespace" in allowed_rules(raw):
            continue
        if re.search(r"(?<!\w)using\s+namespace\b", code):
            findings.append(Finding(
                path, i, "using-namespace",
                "`using namespace` in a header leaks into every includer; "
                "qualify names instead"))
    return findings


INCLUDE_RE = re.compile(r'#\s*include\s*["<]([^">]+)[">]')


def check_own_header_first(path: Path, lines: list[str], root: Path) -> list[Finding]:
    """foo.cpp under src/<module>/ must include "<module>/foo.h" first."""
    rel = path.relative_to(root)
    if rel.parts[0] != "src" or len(rel.parts) != 3:
        return []
    own_header = f"{rel.parts[1]}/{path.stem}.h"
    if not (root / "src" / own_header).exists():
        return []
    for i, raw in enumerate(lines, start=1):
        m = INCLUDE_RE.search(raw)
        if not m:
            continue
        if "own-header-first" in allowed_rules(raw):
            return []
        if m.group(1) == own_header:
            return []
        return [Finding(
            path, i, "own-header-first",
            f'first include must be "{own_header}" so the header proves '
            "self-contained")]
    return []


def lint_file(path: Path, root: Path,
              global_accessors: set[str]) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(path, 1, "unreadable", str(e))]
    lines = text.splitlines()
    ctx = FileContext(path, lines, root, global_accessors)
    findings = check_line_rules(path, lines, root, ctx)
    if path.suffix in HEADER_EXTS:
        findings += check_header_rules(path, lines)
    else:
        findings += check_own_header_first(path, lines, root)
    return findings


def collect_allows(path: Path) -> list[tuple[Path, int, str, str]]:
    """All active suppressions in a file: (path, line, rule, justification)."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError):
        return []
    out = []
    for i, raw in enumerate(lines, start=1):
        for rule, reason in allowed_rules(raw).items():
            out.append((path, i, rule, reason))
    return out


def collect_files(root: Path, args_paths: list[str]) -> list[Path]:
    if args_paths:
        return [Path(p).resolve() for p in args_paths]
    files = []
    for d in LINT_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in HEADER_EXTS | SOURCE_EXTS:
                files.append(p)
    return files


def global_accessor_registry(root: Path) -> set[str]:
    """Accessor names returning unordered refs, from every src/ header.

    Lets the lint flag `for (... : store.map())` in a file that never sees
    the declaration. Only src/ headers feed the registry: test helpers do
    not put unordered refs into the public API.
    """
    accessors: set[str] = set()
    base = root / "src"
    if not base.is_dir():
        return accessors
    for p in sorted(base.rglob("*")):
        if p.suffix not in HEADER_EXTS:
            continue
        try:
            _vars, accs = unordered_decls(
                p.read_text(encoding="utf-8").splitlines())
        except (OSError, UnicodeDecodeError):
            continue
        accessors |= accs
    return accessors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: all C++ under "
                             f"{', '.join(LINT_DIRS)})")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this script)")
    parser.add_argument("--list-allows", action="store_true",
                        help="print active suppressions (file:line rule — "
                             "reason) instead of linting; regenerates "
                             "CONTRIBUTING.md's allow-list")
    args = parser.parse_args()

    root = Path(args.root).resolve() if args.root \
        else Path(__file__).resolve().parent.parent.parent
    if not (root / "src").is_dir():
        print(f"photodtn_lint: no src/ under {root}", file=sys.stderr)
        return 2

    files = collect_files(root, args.paths)

    if args.list_allows:
        for f in files:
            for path, line_no, rule, reason in collect_allows(f):
                rel = path.relative_to(root).as_posix() \
                    if path.is_relative_to(root) else str(path)
                suffix = f" — {reason}" if reason else ""
                print(f"- `{rel}:{line_no}` `{rule}`{suffix}")
        return 0

    global_accessors = global_accessor_registry(root)
    findings = []
    for f in files:
        findings.extend(lint_file(f, root, global_accessors))

    for finding in findings:
        print(finding)
    if findings:
        print(f"photodtn_lint: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    print(f"photodtn_lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
