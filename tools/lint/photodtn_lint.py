#!/usr/bin/env python3
"""Repo-specific lint for photodtn.

Fast, dependency-free checks for rules that clang-tidy cannot express and
that have bitten floating-point/simulation codebases like this one:

  banned-random       rand()/srand()/random() — all randomness must flow
                      through util/rng.h so experiments stay reproducible.
  banned-time         std::time/time(nullptr)/clock() as entropy or sim time —
                      simulation time is explicit, wall clock is not allowed
                      in library code.
  banned-wallclock    std::chrono::*_clock::now() outside src/obs/ and bench/ —
                      wall-clock reads flow through obs/wall_clock.h so traces
                      and metrics stay deterministic (sim-time-keyed) and the
                      opt-in wallPerf section is the only wall-clock consumer.
  angle-compare       direct ==/!= on angle-ish floating-point identifiers
                      (angle/heading/theta/azimuth/bearing) — use the angle::
                      helpers (normalize_angle, angle_distance) instead.
  include-parent      #include "../..." — include paths are rooted at src/.
  include-bits        #include <bits/...> — non-portable libstdc++ internals.
  pragma-once         every header starts its include story with #pragma once.
  own-header-first    foo.cpp includes "module/foo.h" before anything else,
                      proving each header is self-contained.
  using-namespace     `using namespace` at namespace scope in a header leaks
                      into every includer.

Suppress a finding by appending:  // photodtn-lint: allow(<rule>)

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

HEADER_EXTS = {".h", ".hpp"}
SOURCE_EXTS = {".cpp", ".cc", ".cxx"}
LINT_DIRS = ["src", "tools", "bench", "examples", "tests"]

ALLOW_RE = re.compile(r"photodtn-lint:\s*allow\(([a-z-]+)\)")

# Rules that apply line by line:
# (rule, regex, message, applies_to_tests, exempt_prefixes) — a file whose
# repo-relative path starts with an exempt prefix skips the rule entirely.
LINE_RULES = [
    (
        "banned-random",
        re.compile(r"(?<![\w:.])(?:std::)?s?rand(?:om)?\s*\("),
        "raw C randomness; use photodtn::Rng (util/rng.h) so runs stay seeded "
        "and reproducible",
        True,
        (),
    ),
    (
        "banned-time",
        re.compile(r"(?<![\w:.])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&\w+)?\s*\)"
                   r"|(?<![\w:.])(?:std::)?clock\s*\(\s*\)"),
        "wall-clock time in library code; simulation time is explicit and "
        "entropy comes from util/rng.h",
        True,
        (),
    ),
    (
        "banned-wallclock",
        re.compile(r"(?<![\w.])(?:std::chrono::)?"
                   r"(?:steady|system|high_resolution)_clock\s*::\s*now\s*\("),
        "direct chrono clock read; go through obs/wall_clock.h (wall-clock is "
        "allowed only under src/obs/ and bench/ — traces and metrics must stay "
        "deterministic)",
        True,
        ("src/obs/", "bench/"),
    ),
    (
        "angle-compare",
        re.compile(
            r"[\w\].)]*(?:angle|heading|theta|azimuth|bearing)\w*(?:\(\))?"
            r"\s*[=!]=\s*[-\w.]"
        ),
        "direct ==/!= on an angle; compare via angle_distance()/normalize_angle() "
        "(geometry/angle.h) or an explicit epsilon",
        False,
        (),
    ),
    (
        "include-parent",
        re.compile(r'#\s*include\s*"\.\./'),
        'parent-relative include; include paths are rooted at src/ '
        '(e.g. "geometry/angle.h")',
        True,
        (),
    ),
    (
        "include-bits",
        re.compile(r"#\s*include\s*<bits/"),
        "libstdc++ internal header; include the standard header instead",
        True,
        (),
    ),
]

STRING_OR_CHAR = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)\'')


def strip_comment_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents from a line.

    Keeps the structure (so column positions of code stay roughly stable) but
    prevents rules from firing inside literals or prose.
    """
    line = STRING_OR_CHAR.sub('""', line)
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


class Finding:
    def __init__(self, path: Path, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def allowed_rules(raw_line: str) -> set[str]:
    return set(ALLOW_RE.findall(raw_line))


def in_tests(path: Path, root: Path) -> bool:
    return path.is_relative_to(root / "tests")


def check_line_rules(path: Path, lines: list[str], root: Path) -> list[Finding]:
    findings = []
    is_test = in_tests(path, root)
    rel = path.relative_to(root).as_posix() if path.is_relative_to(root) else ""
    in_block_comment = False
    for i, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and line.find("*/", start) < 0:
            in_block_comment = True
            line = line[:start]
        code = strip_comment_and_strings(line)
        allows = allowed_rules(raw)
        for rule, rx, msg, applies_to_tests, exempt_prefixes in LINE_RULES:
            if is_test and not applies_to_tests:
                continue
            if any(rel.startswith(p) for p in exempt_prefixes):
                continue
            if rule in allows:
                continue
            # Include rules must see the path string literal; everything else
            # must not match inside literals.
            haystack = line if rule.startswith("include-") else code
            if rx.search(haystack):
                findings.append(Finding(path, i, rule, msg))
    return findings


def check_header_rules(path: Path, lines: list[str]) -> list[Finding]:
    findings = []
    # pragma-once: first preprocessor directive in a header must be
    # `#pragma once` (leading comments are fine).
    first_directive = next(
        (l.strip() for l in lines if l.lstrip().startswith("#")), None)
    if first_directive != "#pragma once":
        findings.append(Finding(
            path, 1, "pragma-once",
            "headers must open with #pragma once before any other directive"))
    # using-namespace at namespace scope in a header.
    in_block_comment = False
    for i, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and line.find("*/", start) < 0:
            in_block_comment = True
            line = line[:start]
        code = strip_comment_and_strings(line)
        if "using-namespace" in allowed_rules(raw):
            continue
        if re.search(r"(?<!\w)using\s+namespace\b", code):
            findings.append(Finding(
                path, i, "using-namespace",
                "`using namespace` in a header leaks into every includer; "
                "qualify names instead"))
    return findings


INCLUDE_RE = re.compile(r'#\s*include\s*["<]([^">]+)[">]')


def check_own_header_first(path: Path, lines: list[str], root: Path) -> list[Finding]:
    """foo.cpp under src/<module>/ must include "<module>/foo.h" first."""
    rel = path.relative_to(root)
    if rel.parts[0] != "src" or len(rel.parts) != 3:
        return []
    own_header = f"{rel.parts[1]}/{path.stem}.h"
    if not (root / "src" / own_header).exists():
        return []
    for i, raw in enumerate(lines, start=1):
        m = INCLUDE_RE.search(raw)
        if not m:
            continue
        if "own-header-first" in allowed_rules(raw):
            return []
        if m.group(1) == own_header:
            return []
        return [Finding(
            path, i, "own-header-first",
            f'first include must be "{own_header}" so the header proves '
            "self-contained")]
    return []


def lint_file(path: Path, root: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(path, 1, "unreadable", str(e))]
    lines = text.splitlines()
    findings = check_line_rules(path, lines, root)
    if path.suffix in HEADER_EXTS:
        findings += check_header_rules(path, lines)
    else:
        findings += check_own_header_first(path, lines, root)
    return findings


def collect_files(root: Path, args_paths: list[str]) -> list[Path]:
    if args_paths:
        return [Path(p).resolve() for p in args_paths]
    files = []
    for d in LINT_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in HEADER_EXTS | SOURCE_EXTS:
                files.append(p)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: all C++ under "
                             f"{', '.join(LINT_DIRS)})")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this script)")
    args = parser.parse_args()

    root = Path(args.root).resolve() if args.root \
        else Path(__file__).resolve().parent.parent.parent
    if not (root / "src").is_dir():
        print(f"photodtn_lint: no src/ under {root}", file=sys.stderr)
        return 2

    files = collect_files(root, args.paths)
    findings = []
    for f in files:
        findings.extend(lint_file(f, root))

    for finding in findings:
        print(finding)
    if findings:
        print(f"photodtn_lint: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    print(f"photodtn_lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
